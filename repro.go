// Package repro is the public API of the trace-cache virtual machine, a
// reproduction of "Dynamic Profiling and Trace Cache Generation for a Java
// Virtual Machine" (Berndl & Hendren, CGO 2003).
//
// The system has three layers, all reachable from here:
//
//   - A JVM-style bytecode virtual machine with a MiniJava compiler frontend
//     (CompileMiniJava) and a textual assembler (Assemble).
//   - A branch correlation graph profiler attached to the interpreter's
//     block-dispatch path.
//   - A trace cache that turns profiler signals into dispatchable traces cut
//     at a configurable expected completion probability.
//
// Quick start:
//
//	prog, err := repro.CompileMiniJava(src)
//	vm, err := repro.NewVM(prog, repro.WithMode(repro.ModeTrace), repro.WithOutput(os.Stdout))
//	err = vm.Run()
//	fmt.Println(vm.Metrics().Coverage)
package repro

import (
	"errors"
	"fmt"
	"io"
	"io/fs"

	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/jasm"
	"repro/internal/minijava"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/serve"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Program is a linked, executable program.
type Program = classfile.Program

// Counters is the raw execution event record of a run.
type Counters = stats.Counters

// Metrics are the derived dependent values (§5.2 of the paper): average
// completed-trace length, instruction stream coverage, completion rate,
// signal rate, and trace event interval.
type Metrics = stats.Metrics

// Mode selects the dispatch configuration.
type Mode = core.Mode

// Dispatch modes.
const (
	// ModePlain is the unprofiled threaded interpreter.
	ModePlain = core.ModePlain
	// ModeInstr is the per-instruction dispatch engine (Figure 1 model).
	ModeInstr = core.ModeInstr
	// ModeProfile profiles and builds traces but never dispatches them.
	ModeProfile = core.ModeProfile
	// ModeTrace dispatches traces with full in-trace profiling
	// (measurement fidelity).
	ModeTrace = core.ModeTrace
	// ModeTraceDeploy dispatches traces with one profiler hook per trace
	// (deployment overhead model).
	ModeTraceDeploy = core.ModeTraceDeploy
)

// CompileMiniJava compiles MiniJava source into a linked program. The entry
// point is the unique "static void main()".
func CompileMiniJava(src string) (*Program, error) { return minijava.Compile(src) }

// Assemble assembles jasm assembler source into a linked program.
func Assemble(src string) (*Program, error) { return jasm.Assemble(src) }

// LoadModule reads a serialized module and links it.
func LoadModule(r io.Reader) (*Program, error) {
	p, err := classfile.Read(r)
	if err != nil {
		return nil, err
	}
	if err := p.Link(); err != nil {
		return nil, err
	}
	return p, nil
}

// SaveModule serializes a program in module format.
func SaveModule(w io.Writer, p *Program) error { return classfile.Write(w, p) }

// WorkloadNames lists the built-in benchmark programs.
func WorkloadNames() []string { return workload.Names() }

// WorkloadSource returns the MiniJava source of a built-in benchmark.
func WorkloadSource(name string) (string, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return "", err
	}
	return w.Source, nil
}

// Params collects every tuning knob of the system in one value: the three
// profiler parameters of the paper (§4), the trace-cache budgets, and the
// serving layer's churn breaker. Zero-valued fields mean "keep the
// default", so a partial literal overrides only what it names:
//
//	vm, err := repro.NewVM(prog, repro.WithParams(repro.Params{Threshold: 0.9}))
type Params struct {
	// Threshold is the trace completion threshold (default 0.97).
	Threshold float64
	// StartDelay is the start-state delay in branch executions (default 64).
	StartDelay int32
	// DecayInterval is the decay period in node executions (default 256).
	DecayInterval uint32
	// MaxTraces bounds the live traces per session (default 0 = unbounded).
	MaxTraces int
	// MaxCachedBlocks bounds the total blocks held by live traces per
	// session (default 0 = unbounded).
	MaxCachedBlocks int
	// CompileTraces enables tier-2 execution: hot traces are compiled into
	// superinstruction form and dispatched as fused units (default off).
	CompileTraces bool
	// TierUpDispatches is the dispatch count at which a cached trace is
	// promoted to its compiled form (default 16 when CompileTraces is set;
	// 0 keeps the default).
	TierUpDispatches int64
	// TierDownGuardExits is the compiled-guard-exit count at which a
	// trace's compiled form is discarded again (default 8 when
	// CompileTraces is set; 0 keeps the default).
	TierDownGuardExits int64
	// Breaker tunes the per-program churn circuit breaker. It only takes
	// effect through ServiceConfig (a single VM has no breaker).
	Breaker BreakerConfig
	// SnapshotPath names a profile snapshot file for warm starts. When the
	// file exists, NewVM seeds the profiler and trace cache from it before
	// the first dispatch; a missing file is a silent cold start, while a
	// file that fails to decode, belongs to a different program, or was
	// recorded under different profiler parameters is an error. Write the
	// file with VM.SaveSnapshot. Ignored in unprofiled modes.
	SnapshotPath string
}

// DefaultParams returns the paper's configuration: threshold 0.97, start
// delay 64, decay interval 256, unbounded cache budgets, breaker disabled.
func DefaultParams() Params {
	d := profile.DefaultParams()
	return Params{Threshold: d.Threshold, StartDelay: d.StartDelay, DecayInterval: d.DecayInterval}
}

// ServiceConfig seeds a service configuration from the parameters: the
// cache budgets and breaker map directly; the per-run profiler fields
// (threshold, delay, decay) travel on each ServiceRequest instead.
func (p Params) ServiceConfig() ServiceConfig {
	return ServiceConfig{
		TraceCache: core.Config{
			MaxTraces:          p.MaxTraces,
			MaxCachedBlocks:    p.MaxCachedBlocks,
			CompileTraces:      p.CompileTraces,
			TierUpDispatches:   p.TierUpDispatches,
			TierDownGuardExits: p.TierDownGuardExits,
		},
		Breaker: p.Breaker,
	}
}

// Option configures NewVM.
type Option func(*config)

type config struct {
	mode     Mode
	params   profile.Params
	cache    core.Config
	out      io.Writer
	maxSteps int64
	events   int
	snapPath string
}

// WithMode selects the dispatch mode (default ModeTrace).
func WithMode(m Mode) Option { return func(c *config) { c.mode = m } }

// WithParams overrides the tuning parameters. Zero-valued fields keep
// whatever is already configured, so options compose field-wise and later
// options win for the fields they set.
func WithParams(p Params) Option {
	return func(c *config) {
		if p.Threshold != 0 {
			c.params.Threshold = p.Threshold
		}
		if p.StartDelay != 0 {
			c.params.StartDelay = p.StartDelay
		}
		if p.DecayInterval != 0 {
			c.params.DecayInterval = p.DecayInterval
		}
		if p.MaxTraces != 0 {
			c.cache.MaxTraces = p.MaxTraces
		}
		if p.MaxCachedBlocks != 0 {
			c.cache.MaxCachedBlocks = p.MaxCachedBlocks
		}
		if p.CompileTraces {
			c.cache.CompileTraces = true
		}
		if p.TierUpDispatches != 0 {
			c.cache.TierUpDispatches = p.TierUpDispatches
		}
		if p.TierDownGuardExits != 0 {
			c.cache.TierDownGuardExits = p.TierDownGuardExits
		}
		if p.SnapshotPath != "" {
			c.snapPath = p.SnapshotPath
		}
	}
}

// WithOutput directs program output (default: discarded).
func WithOutput(w io.Writer) Option { return func(c *config) { c.out = w } }

// WithMaxSteps bounds executed instructions (default: unlimited).
func WithMaxSteps(n int64) Option { return func(c *config) { c.maxSteps = n } }

// WithEventTrace attaches a fixed-capacity event ring to the VM: BCG node
// state transitions and trace build/reuse/retire/evict land in it as typed
// events, readable with Events. Capacity <= 0 disables tracing. An
// enabled-but-idle ring adds nothing to the dispatch path.
func WithEventTrace(capacity int) Option { return func(c *config) { c.events = capacity } }

// VM is a configured virtual machine for one program.
type VM struct {
	session *core.Session
	ring    *obs.Ring
	prog    *Program
}

// NewVM builds a machine (and, depending on the mode, the profiler and
// trace cache) for a linked program.
func NewVM(prog *Program, opts ...Option) (*VM, error) {
	c := config{mode: ModeTrace, params: profile.DefaultParams()}
	for _, o := range opts {
		o(&c)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		return nil, err
	}
	sopts := core.SessionOptions{
		Mode:     c.mode,
		Params:   c.params,
		Config:   c.cache,
		Out:      c.out,
		MaxSteps: c.maxSteps,
	}
	var ring *obs.Ring
	if c.events > 0 {
		ring = obs.NewRing(c.events)
		sopts.Sink = ring
	}
	if c.snapPath != "" && c.mode.Profiled() {
		warm, err := loadSnapshot(c.snapPath, prog, c.params)
		if err != nil {
			return nil, err
		}
		if warm != nil {
			sopts.Snapshot = warm
			emitSnapshotEvent(ring, obs.EvSnapshotLoaded, int64(len(warm.Nodes)))
		}
	}
	s, err := core.NewSession(prog, pcfg, sopts)
	if err != nil {
		return nil, err
	}
	return &VM{session: s, ring: ring, prog: prog}, nil
}

// loadSnapshot reads a warm-start snapshot for prog: a missing file is a
// cold start (nil, nil), everything else that fails to load is an error.
func loadSnapshot(path string, prog *Program, params profile.Params) (*snapshot.Snapshot, error) {
	s, err := snapshot.Load(path)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("repro: snapshot %s: %w", path, err)
	}
	key, err := snapshot.ProgramKey(prog)
	if err != nil {
		return nil, err
	}
	if err := s.VerifyKey(key); err != nil {
		return nil, fmt.Errorf("repro: snapshot %s: %w", path, err)
	}
	if s.Params != params {
		return nil, fmt.Errorf("repro: snapshot %s: recorded under different profiler parameters (threshold %.3f, delay %d, decay %d)",
			path, s.Params.Threshold, s.Params.StartDelay, s.Params.DecayInterval)
	}
	return s, nil
}

func emitSnapshotEvent(ring *obs.Ring, typ obs.EventType, val int64) {
	ring.Emit(obs.Event{
		Type: typ,
		X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
		Val: val,
	})
}

// SaveSnapshot writes the machine's learned profile — BCG node states and
// counters, the live trace set, loop-header anchors — to path as a
// tracevm/snapshot/v1 file, committed atomically. A later NewVM for the same
// program with Params.SnapshotPath pointing at the file warm-starts from it.
// It fails in unprofiled modes, which have no profile to save.
func (v *VM) SaveSnapshot(path string) error {
	if v.session.Graph == nil {
		return fmt.Errorf("repro: mode %s has no profile to snapshot", v.session.Mode)
	}
	key, err := snapshot.ProgramKey(v.prog)
	if err != nil {
		return err
	}
	snap := v.session.ExportSnapshot(key, "")
	if err := snapshot.Save(path, snap); err != nil {
		return err
	}
	emitSnapshotEvent(v.ring, obs.EvSnapshotSaved, int64(len(snap.Nodes)))
	return nil
}

// Run executes the program to completion.
func (v *VM) Run() error { return v.session.Run() }

// Counters returns the raw event counters accumulated so far.
func (v *VM) Counters() *Counters { return v.session.Counters }

// Metrics returns the derived dependent values.
func (v *VM) Metrics() Metrics { return v.session.Metrics() }

// Events returns the newest n observability events, oldest first. It
// returns nil unless the VM was built with WithEventTrace.
func (v *VM) Events(n int) []Event {
	if v.ring == nil {
		return nil
	}
	return v.ring.Tail(nil, n)
}

// EventRing exposes the underlying ring (nil without WithEventTrace), for
// callers that want filtered tails or live totals.
func (v *VM) EventRing() *obs.Ring { return v.ring }

// TraceInfo summarizes one cached trace.
type TraceInfo struct {
	ID                 int
	Blocks             int
	ExpectedCompletion float64
	Entered            int64
	Completed          int64
	// Tier is the trace's current execution tier: 1 (block-by-block) or 2
	// (compiled superinstruction form).
	Tier int
	// ProvenGuards counts side-exit guards statically proven dead.
	ProvenGuards int
	// CompiledEntered counts dispatches served by the compiled form.
	CompiledEntered int64
	// CompiledGuardExits counts guard exits taken out of the compiled form.
	CompiledGuardExits int64
}

// Traces lists the live traces in the cache (nil in ModePlain).
func (v *VM) Traces() []TraceInfo {
	if v.session.Cache == nil {
		return nil
	}
	var out []TraceInfo
	for _, t := range v.session.Cache.Traces() {
		out = append(out, TraceInfo{
			ID:                 t.ID,
			Blocks:             t.Len(),
			ExpectedCompletion: t.ExpectedCompletion,
			Entered:            t.Entered,
			Completed:          t.Completed,
			Tier:               t.Tier(),
			ProvenGuards:       t.ProvenGuards(),
			CompiledEntered:    t.CompiledEntered,
			CompiledGuardExits: t.CompiledGuardExits,
		})
	}
	return out
}

// DumpBCG renders the branch correlation graph as Graphviz DOT, keeping
// only nodes executed at least minTotal times. Empty in ModePlain.
func (v *VM) DumpBCG(minTotal int) string {
	if v.session.Graph == nil {
		return ""
	}
	return v.session.Graph.DumpDOT(minTotal)
}

// NumBCGNodes reports the number of branch contexts discovered (0 in
// ModePlain).
func (v *VM) NumBCGNodes() int {
	if v.session.Graph == nil {
		return 0
	}
	return v.session.Graph.NumNodes()
}

// Service is the concurrent multi-session execution service: a shared
// program registry (compile once, run many), a bounded worker pool with
// backpressure and per-request deadlines, and aggregated metrics across
// every completed session. cmd/tracevmd serves it over HTTP.
type Service = serve.Service

// ServiceConfig sizes and governs a Service: workers, queue depth, default
// timeout, step cap, trace-cache budgets, the churn circuit breaker, and
// panic quarantine.
type ServiceConfig = serve.Config

// BreakerConfig tunes the per-program churn circuit breaker.
type BreakerConfig = serve.BreakerConfig

// Backoff retries service submissions on backpressure with jittered
// exponential delays.
type Backoff = serve.Backoff

// ServiceRequest is one execution order submitted to a Service.
type ServiceRequest = serve.Request

// ServiceResponse is one completed run.
type ServiceResponse = serve.Response

// ServiceSnapshot is a point-in-time copy of a Service's aggregated
// metrics.
type ServiceSnapshot = serve.Snapshot

// SourceKind selects the frontend for ServiceRequest.Source.
type SourceKind = serve.SourceKind

// Source kinds.
const (
	SourceMiniJava = serve.KindMiniJava
	SourceJasm     = serve.KindJasm
)

// Service submission errors.
var (
	// ErrQueueFull is the service's backpressure signal.
	ErrQueueFull = serve.ErrQueueFull
	// ErrServiceClosed reports submission to a draining/closed service.
	ErrServiceClosed = serve.ErrClosed
	// ErrQuarantined reports a program refused after repeated VM panics.
	ErrQuarantined = serve.ErrQuarantined
)

// NewService starts a concurrent execution service. Submit with Do from
// any number of goroutines; Close drains it.
func NewService(cfg ServiceConfig) *Service { return serve.New(cfg) }

// Event is one typed observability record: a BCG node state transition, a
// trace lifecycle step, or (in a Service) a breaker/quarantine/queue event.
type Event = obs.Event

// EventType discriminates observability events.
type EventType = obs.EventType

// Event types.
const (
	EvNodeState      = obs.EvNodeState
	EvTraceBuilt     = obs.EvTraceBuilt
	EvTraceReused    = obs.EvTraceReused
	EvTraceRetired   = obs.EvTraceRetired
	EvTraceEvicted   = obs.EvTraceEvicted
	EvBreaker        = obs.EvBreaker
	EvQuarantine     = obs.EvQuarantine
	EvQueueSaturated = obs.EvQueueSaturated
	EvDemoted        = obs.EvDemoted
	// Snapshot lifecycle (profile persistence).
	EvSnapshotSaved    = obs.EvSnapshotSaved
	EvSnapshotLoaded   = obs.EvSnapshotLoaded
	EvSnapshotRejected = obs.EvSnapshotRejected
)

// ParseEventType maps a wire name like "trace-built" back to its type.
func ParseEventType(s string) (EventType, bool) { return obs.ParseEventType(s) }

// Verify runs quick internal consistency checks over the run's counters and
// trace accounting; it is primarily a debugging aid.
func (v *VM) Verify() error {
	c := v.session.Counters
	if c.TracesCompleted > c.TracesEntered {
		return fmt.Errorf("repro: completed traces (%d) exceed entered (%d)", c.TracesCompleted, c.TracesEntered)
	}
	if c.InstrsInCompletedTraces > c.InstrsInTraces {
		return fmt.Errorf("repro: completed-trace instructions exceed in-trace instructions")
	}
	if c.InstrsInTraces > c.Instrs {
		return fmt.Errorf("repro: in-trace instructions exceed total instructions")
	}
	return nil
}
