package repro

import "repro/internal/profile"

// ResolvedParams applies opts over the defaults and reports the resulting
// tuning parameters — test-only visibility into option merge order.
func ResolvedParams(opts ...Option) Params {
	c := config{mode: ModeTrace, params: profile.DefaultParams()}
	for _, o := range opts {
		o(&c)
	}
	return Params{
		Threshold:          c.params.Threshold,
		StartDelay:         c.params.StartDelay,
		DecayInterval:      c.params.DecayInterval,
		MaxTraces:          c.cache.MaxTraces,
		MaxCachedBlocks:    c.cache.MaxCachedBlocks,
		CompileTraces:      c.cache.CompileTraces,
		TierUpDispatches:   c.cache.TierUpDispatches,
		TierDownGuardExits: c.cache.TierDownGuardExits,
	}
}
