package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// statsAtomic enforces the counter-ownership invariant: fields of
// stats.Counters are plain int64s mutated without synchronization, which is
// only sound inside the subsystems that own a session's counters for its
// lifetime (the VM, profiler, trace cache, and the stats package's own
// merge/derive code). Any other package writing a counter field directly is
// either racing or bypassing aggregation — it must go through the
// Add/Snapshot API instead. Test files are exempt: they own their counters
// by construction.
var statsAtomic = &Analyzer{
	Name: "statsatomic",
	Run:  runStatsAtomic,
}

// countersPath is the package whose Counters struct is protected.
const countersPath = "repro/internal/stats"

// countersWriters are the packages allowed to mutate counter fields.
var countersWriters = map[string]bool{
	"repro/internal/stats":    true,
	"repro/internal/vm":       true,
	"repro/internal/profile":  true,
	"repro/internal/core":     true,
	"repro/internal/baseline": true,
	"repro/internal/snapshot": true,
}

func runStatsAtomic(pass *Pass) {
	if countersWriters[pass.Pkg.Path()] || strings.HasPrefix(pass.Pkg.Path(), countersPath) {
		return
	}
	for _, file := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(file.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					checkWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				checkWrite(pass, n.X)
			case *ast.UnaryExpr:
				// Taking a field's address hands out a mutable alias.
				if n.Op.String() == "&" {
					checkWrite(pass, n.X)
				}
			}
			return true
		})
	}
}

// checkWrite reports expr if it selects a field of stats.Counters.
func checkWrite(pass *Pass, expr ast.Expr) {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return
	}
	if !isCountersStruct(selection.Recv()) {
		return
	}
	pass.Reportf(expr.Pos(), "write to stats.Counters field %s outside its owning subsystems; use the Counters.Add/Snapshot API", sel.Sel.Name)
}

// isCountersStruct reports whether t (or what it points to) is the named
// struct stats.Counters.
func isCountersStruct(t types.Type) bool {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Counters" && obj.Pkg() != nil && obj.Pkg().Path() == countersPath
}
