// Command analyzers is the repository's vet tool: repo-invariant static
// checks run via `go vet -vettool=$(go env GOPATH)/../bin/analyzers` (CI
// builds it into ./bin). It speaks the cmd/go unit-checking protocol — the
// same one golang.org/x/tools/go/analysis/unitchecker implements — but is
// built from the standard library alone, so the repository stays
// dependency-free.
//
// Protocol (driven by cmd/go, one process per package):
//
//	analyzers -V=full          print "<name> version <id>" for the build cache
//	analyzers -flags           print the JSON flag schema (none)
//	analyzers <file>.cfg       analyze one package described by the JSON config
//
// Checks:
//
//	hotpathalloc  functions documented with //tracevm:hotpath must not
//	              contain allocating constructs (make, new, append,
//	              composite literals, closures); //tracevm:allow-alloc on
//	              the same or preceding line suppresses one site.
//	statsatomic   stats.Counters fields may be written only by the
//	              subsystems that own them (stats, vm, profile, core,
//	              baseline); everyone else must use the Add/Snapshot API.
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config is the JSON vet configuration cmd/go writes for each package. The
// field names mirror cmd/go/internal/work.vetConfig.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
	GoVersion                 string
}

// Pass is one analyzer's view of a typechecked package.
type Pass struct {
	Fset   *token.FileSet
	Files  []*ast.File
	Pkg    *types.Package
	Info   *types.Info
	report func(token.Pos, string)
}

// Reportf records one diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(pos, fmt.Sprintf(format, args...))
}

// Analyzer is one named check.
type Analyzer struct {
	Name string
	Run  func(*Pass)
}

var analyzers = []*Analyzer{hotpathAlloc, statsAtomic}

func main() {
	args := os.Args[1:]
	if len(args) == 1 && args[0] == "-V=full" {
		// cmd/go derives the action cache key from this line; bump the
		// version when an analyzer's behavior changes.
		name := strings.TrimSuffix(filepath.Base(os.Args[0]), ".exe")
		fmt.Printf("%s version 1 buildID=tracevm-analyzers-1\n", name)
		return
	}
	if len(args) == 1 && args[0] == "-flags" {
		fmt.Println("[]")
		return
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintf(os.Stderr, "usage: analyzers <config>.cfg (driven by go vet -vettool)\n")
		os.Exit(2)
	}
	diags, err := run(args[0])
	if err != nil {
		fmt.Fprintf(os.Stderr, "analyzers: %v\n", err)
		os.Exit(1)
	}
	if len(diags) > 0 {
		for _, d := range diags {
			fmt.Fprintln(os.Stderr, d)
		}
		os.Exit(2)
	}
}

func run(cfgPath string) ([]string, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgPath, err)
	}

	// Always produce the facts file cmd/go expects, even though these
	// analyzers export none: its presence is part of the protocol.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		// Dependency pass: cmd/go only wants the (empty) facts.
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil, nil
			}
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tcfg := &types.Config{
		Importer: importer.ForCompiler(fset, cfg.Compiler, lookupFunc(&cfg)),
		Sizes:    types.SizesFor(cfg.Compiler, "amd64"),
		Error:    func(error) {}, // collect nothing; the compiler reports these
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil && !cfg.SucceedOnTypecheckFailure {
		return nil, fmt.Errorf("typechecking %s: %w", cfg.ImportPath, err)
	}
	if pkg == nil {
		return nil, nil
	}

	var diags []string
	pass := &Pass{
		Fset:  fset,
		Files: files,
		Pkg:   pkg,
		Info:  info,
	}
	pass.report = func(pos token.Pos, msg string) {
		diags = append(diags, fmt.Sprintf("%s: %s", fset.Position(pos), msg))
	}
	for _, a := range analyzers {
		a.Run(pass)
	}
	sort.Strings(diags)
	return diags, nil
}

// lookupFunc opens the export data of an imported package: the source import
// path maps through ImportMap to the canonical path, whose compiled package
// file cmd/go names in PackageFile.
func lookupFunc(cfg *Config) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if canonical, ok := cfg.ImportMap[path]; ok {
			path = canonical
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	}
}
