package main

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// statsSrc is a stand-in for repro/internal/stats, typechecked in-process so
// the unit tests don't depend on compiled export data.
const statsSrc = `package stats

type Counters struct {
	Instrs       int64
	NodesCreated int64
}

func (c *Counters) Add(o Counters) {
	c.Instrs += o.Instrs
	c.NodesCreated += o.NodesCreated
}
`

// fakeImporter resolves repro/internal/stats to the in-process package and
// everything else through the default source importer.
type fakeImporter struct {
	stats *types.Package
}

func (f *fakeImporter) Import(path string) (*types.Package, error) {
	if path == "repro/internal/stats" {
		return f.stats, nil
	}
	return importer.Default().Import(path)
}

// analyze typechecks src as package path importPath, runs the single analyzer
// a over it, and returns the diagnostic messages.
func analyze(t *testing.T, a *Analyzer, importPath, filename, src string) []string {
	t.Helper()
	fset := token.NewFileSet()

	statsFile, err := parser.ParseFile(fset, "stats.go", statsSrc, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	statsPkg, err := (&types.Config{}).Check("repro/internal/stats", fset, []*ast.File{statsFile}, nil)
	if err != nil {
		t.Fatal(err)
	}

	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	cfg := &types.Config{Importer: &fakeImporter{stats: statsPkg}}
	pkg, err := cfg.Check(importPath, fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}

	var diags []string
	pass := &Pass{Fset: fset, Files: []*ast.File{file}, Pkg: pkg, Info: info}
	pass.report = func(pos token.Pos, msg string) {
		diags = append(diags, fmt.Sprintf("%s: %s", fset.Position(pos), msg))
	}
	a.Run(pass)
	return diags
}

func TestHotpathAllocFlagsAllocations(t *testing.T) {
	diags := analyze(t, hotpathAlloc, "example.com/p", "p.go", `package p

//tracevm:hotpath
func hot() {
	s := make([]int, 4)
	s = append(s, 1)
	_ = new(int)
	_ = []int{1, 2}
	f := func() {}
	f()
	_ = s
}
`)
	for _, want := range []string{"call to make", "call to append", "call to new", "composite literal", "function literal"} {
		found := false
		for _, d := range diags {
			if strings.Contains(d, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("missing diagnostic %q in %v", want, diags)
		}
	}
	if len(diags) != 5 {
		t.Errorf("want 5 diagnostics, got %d: %v", len(diags), diags)
	}
}

func TestHotpathAllocIgnoresUnmarkedAndSuppressed(t *testing.T) {
	diags := analyze(t, hotpathAlloc, "example.com/p", "p.go", `package p

func cold() { _ = make([]int, 4) }

//tracevm:hotpath
func hot() {
	//tracevm:allow-alloc
	s := make([]int, 4)
	t := append(s, 1) //tracevm:allow-alloc (cold path, see issue tracker)
	_ = t
}
`)
	if len(diags) != 0 {
		t.Errorf("want no diagnostics, got %v", diags)
	}
}

func TestHotpathAllocUserDefinedMakeOK(t *testing.T) {
	diags := analyze(t, hotpathAlloc, "example.com/p", "p.go", `package p

func make(n int) int { return n }

//tracevm:hotpath
func hot() { _ = make(4) }
`)
	if len(diags) != 0 {
		t.Errorf("shadowed make flagged: %v", diags)
	}
}

func TestStatsAtomicFlagsOutsideWriters(t *testing.T) {
	diags := analyze(t, statsAtomic, "example.com/outside", "o.go", `package outside

import "repro/internal/stats"

func bad(c *stats.Counters) {
	c.Instrs = 1
	c.Instrs += 2
	c.NodesCreated++
	p := &c.Instrs
	_ = p
}
`)
	if len(diags) != 4 {
		t.Fatalf("want 4 diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if !strings.Contains(d, "stats.Counters field") {
			t.Errorf("unexpected diagnostic text: %s", d)
		}
	}
}

func TestStatsAtomicAllowsOwnersLiteralsAndReads(t *testing.T) {
	// Owning package: writes allowed.
	if diags := analyze(t, statsAtomic, "repro/internal/vm", "v.go", `package vm

import "repro/internal/stats"

func ok(c *stats.Counters) { c.Instrs++ }
`); len(diags) != 0 {
		t.Errorf("owner package flagged: %v", diags)
	}

	// Outside package: whole-struct literals and field reads are fine.
	if diags := analyze(t, statsAtomic, "example.com/outside", "o.go", `package outside

import "repro/internal/stats"

type resp struct{ Counters stats.Counters }

func ok(c stats.Counters) (int64, resp) {
	r := resp{Counters: stats.Counters{Instrs: c.Instrs}}
	return c.Instrs + c.NodesCreated, r
}
`); len(diags) != 0 {
		t.Errorf("read/literal flagged: %v", diags)
	}
}

func TestStatsAtomicSkipsTestFiles(t *testing.T) {
	diags := analyze(t, statsAtomic, "example.com/outside", "o_test.go", `package outside

import "repro/internal/stats"

func bad(c *stats.Counters) { c.Instrs = 1 }
`)
	if len(diags) != 0 {
		t.Errorf("test file flagged: %v", diags)
	}
}

// TestVetToolOverRepo builds the vet tool binary and drives real go vet over
// the repository, exercising the unitchecker protocol end to end. The run
// must be clean: CI enforces the same invariant across ./... .
func TestVetToolOverRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "analyzers")
	build := exec.Command("go", "build", "-o", bin, "./tools/analyzers")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building vet tool: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/profile", "./internal/trace", "./internal/serve", "./cmd/tracevmd")
	vet.Dir = root
	vet.Env = append(os.Environ(), "GOFLAGS=")
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool failed: %v\n%s", err, out)
	}
}
