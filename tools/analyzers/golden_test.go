package main

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the analyzer golden files from current output")

// goldenCases maps each committed fixture to the analyzer that runs over it
// and the import path it is typechecked as (statsatomic's verdict depends on
// whether the package is in the counter-owner set).
var goldenCases = []struct {
	name       string
	analyzer   *Analyzer
	importPath string
}{
	{"hotpathalloc", hotpathAlloc, "example.com/p"},
	{"statsatomic", statsAtomic, "example.com/outside"},
}

// TestAnalyzerGoldenFiles runs each analyzer over its committed fixture and
// compares the full diagnostic listing — positions and messages — against
// testdata/<name>.golden. A drift in either direction (new, lost, moved, or
// reworded diagnostics) fails without anyone hand-running vet; regenerate
// deliberately with `go test ./tools/analyzers -run Golden -update`.
func TestAnalyzerGoldenFiles(t *testing.T) {
	for _, tc := range goldenCases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			srcPath := filepath.Join("testdata", tc.name+".src")
			src, err := os.ReadFile(srcPath)
			if err != nil {
				t.Fatal(err)
			}
			diags := analyze(t, tc.analyzer, tc.importPath, tc.name+".src", string(src))
			got := strings.Join(diags, "\n") + "\n"
			if len(diags) == 0 {
				t.Fatalf("fixture %s produced no diagnostics; the golden test would be vacuous", srcPath)
			}

			goldenPath := filepath.Join("testdata", tc.name+".golden")
			if *update {
				if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("%v (run with -update to create it)", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics drifted from %s (run with -update to accept):\n--- want\n%s--- got\n%s",
					goldenPath, want, got)
			}
		})
	}
}
