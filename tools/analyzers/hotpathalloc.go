package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotpathAlloc enforces the dispatch-path allocation discipline: a function
// whose doc comment carries the //tracevm:hotpath directive must not contain
// constructs that can allocate — make, new, append, composite literals, or
// function literals (closures capture onto the heap). A deliberate cold-path
// allocation inside a hot function is suppressed by //tracevm:allow-alloc on
// the same line or the line directly above the construct.
//
// The check is syntactic and intraprocedural on purpose: escape analysis
// would be both unstable across toolchains and invisible in review, while
// "no allocating syntax on the marked function" is a discipline a reader can
// verify by eye.
var hotpathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Run:  runHotpathAlloc,
}

const (
	hotpathDirective = "//tracevm:hotpath"
	allowDirective   = "//tracevm:allow-alloc"
)

func runHotpathAlloc(pass *Pass) {
	for _, file := range pass.Files {
		allowed := allowedLines(pass.Fset, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !hasDirective(fn.Doc, hotpathDirective) {
				continue
			}
			checkHotFunc(pass, fn, allowed)
		}
	}
}

// hasDirective reports whether the doc group contains the exact directive
// comment (directives are whole-line, unspaced, per Go convention).
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// allowedLines collects the lines covered by an allow-alloc directive: the
// directive's own line and the one below it (so both trailing and preceding
// comment styles work). The directive may be followed by a space and an
// explanation of why the allocation is deliberate.
func allowedLines(fset *token.FileSet, file *ast.File) map[int]bool {
	allowed := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if text == allowDirective || strings.HasPrefix(text, allowDirective+" ") {
				line := fset.Position(c.Pos()).Line
				allowed[line] = true
				allowed[line+1] = true
			}
		}
	}
	return allowed
}

func checkHotFunc(pass *Pass, fn *ast.FuncDecl, allowed map[int]bool) {
	report := func(pos token.Pos, what string) {
		if allowed[pass.Fset.Position(pos).Line] {
			return
		}
		pass.Reportf(pos, "%s in //tracevm:hotpath function %s (suppress a deliberate cold path with //tracevm:allow-alloc)", what, fn.Name.Name)
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := builtinName(pass.Info, n.Fun); ok {
				switch name {
				case "make", "new", "append":
					report(n.Pos(), "call to "+name)
				}
			}
		case *ast.CompositeLit:
			report(n.Pos(), "composite literal")
			// Nested literals would double-report; the outermost site is
			// the one to fix.
			return false
		case *ast.FuncLit:
			report(n.Pos(), "function literal")
			return false
		}
		return true
	})
}

// builtinName resolves fun to a predeclared builtin function name, seeing
// through parentheses; user-defined functions named "make" etc. do not count.
func builtinName(info *types.Info, fun ast.Expr) (string, bool) {
	fun = ast.Unparen(fun)
	id, ok := fun.(*ast.Ident)
	if !ok {
		return "", false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return "", false
	}
	return id.Name, true
}
