package repro_test

import (
	"context"
	"fmt"
	"log"
	"sync"

	"repro"
)

// ExampleCompileMiniJava compiles and runs a program under the full
// trace-dispatching VM.
func ExampleCompileMiniJava() {
	prog, err := repro.CompileMiniJava(`
class Main {
    static void main() {
        int sum = 0;
        for (int i = 1; i <= 100; i = i + 1) { sum = sum + i; }
        Sys.printlnInt(sum);
    }
}`)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := repro.NewVM(prog, repro.WithOutput(exampleStdout{}))
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	// Output: 5050
}

// exampleStdout routes VM output through fmt so the example harness sees it.
type exampleStdout struct{}

func (exampleStdout) Write(p []byte) (int, error) {
	fmt.Print(string(p))
	return len(p), nil
}

// ExampleNewVM_metrics shows the paper's dependent values after a run.
func ExampleNewVM_metrics() {
	prog, err := repro.CompileMiniJava(`
class Main {
    static void main() {
        int acc = 0;
        for (int i = 0; i < 100000; i = i + 1) { acc = acc + i % 3; }
        Sys.printlnInt(acc);
    }
}`)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModeTrace),
		repro.WithParams(repro.Params{Threshold: 0.97, StartDelay: 64}),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	m := vm.Metrics()
	fmt.Printf("high coverage: %v\n", m.Coverage > 0.9)
	fmt.Printf("completion above threshold: %v\n", m.CompletionRate >= 0.97)
	// Output:
	// high coverage: true
	// completion above threshold: true
}

// ExampleAssemble runs a hand-written bytecode module.
func ExampleAssemble() {
	prog, err := repro.Assemble(`
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 6 iconst 7 imul invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	if err != nil {
		log.Fatal(err)
	}
	vm, err := repro.NewVM(prog, repro.WithMode(repro.ModePlain), repro.WithOutput(exampleStdout{}))
	if err != nil {
		log.Fatal(err)
	}
	if err := vm.Run(); err != nil {
		log.Fatal(err)
	}
	// Output: 42
}

// ExampleWorkloadNames lists the built-in benchmark suite.
func ExampleWorkloadNames() {
	for _, name := range repro.WorkloadNames() {
		fmt.Println(name)
	}
	// Output:
	// compress
	// javac
	// raytrace
	// mpegaudio
	// soot
	// scimark
}

// ExampleNewService runs several programs concurrently through the
// execution service and reads the aggregated metrics.
func ExampleNewService() {
	svc := repro.NewService(repro.ServiceConfig{Workers: 2})
	defer svc.Close()

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := svc.Do(context.Background(), repro.ServiceRequest{
				Workload: "soot",
				Mode:     repro.ModeTrace,
			})
			if err != nil {
				log.Fatal(err)
			}
		}()
	}
	wg.Wait()

	snap := svc.Stats()
	fmt.Println("completed:", snap.Completed)
	fmt.Println("programs compiled:", snap.Programs)
	fmt.Println("all runs counted:", snap.Global.Instrs == snap.PerProgram["soot"].Counters.Instrs)
	// Output:
	// completed: 4
	// programs compiled: 1
	// all runs counted: true
}
