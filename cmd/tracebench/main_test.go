package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/harness"
)

// smokeSuite returns a suite scaled down far enough that a full measurement
// pass completes in CI-test time: one repetition, tight instruction budget.
func smokeSuite() *harness.Suite {
	s := harness.NewSuite()
	s.Repeats = 1
	s.MaxSteps = 60_000
	return s
}

// TestTable6Smoke exercises the original CLI path the README documents
// (tracebench -table 6) on a scaled-down budget.
func TestTable6Smoke(t *testing.T) {
	var buf strings.Builder
	if err := run(smokeSuite(), &buf, 6, false, false, false, false, false, false); err != nil {
		t.Fatalf("run(-table 6): %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, "dispatches (M)") {
		t.Errorf("table VI output missing dispatch column:\n%s", out)
	}
	for _, w := range harness.NewSuite().Workloads {
		if !strings.Contains(out, w) {
			t.Errorf("table VI output missing workload %q:\n%s", w, out)
		}
	}
}

// TestBenchJSONSmoke runs the -bench-json path end to end on a scaled-down
// workload set and validates the emitted report against the schema.
func TestBenchJSONSmoke(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var buf strings.Builder
	if err := runBenchJSON(smokeSuite(), &buf, path); err != nil {
		t.Fatalf("runBenchJSON: %v", err)
	}
	if !strings.Contains(buf.String(), "wrote "+path) {
		t.Errorf("missing confirmation line in output:\n%s", buf.String())
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading report: %v", err)
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if rep.Schema != harness.BenchSchema {
		t.Errorf("schema = %q, want %q", rep.Schema, harness.BenchSchema)
	}
	if rep.GoVersion == "" || rep.GOOS == "" || rep.GOARCH == "" {
		t.Errorf("missing environment fields: %+v", rep)
	}
	if rep.HookFastPathAllocs != 0 {
		t.Errorf("HookFastPathAllocs = %v, want 0 (dense-index BCG fast path must not allocate)", rep.HookFastPathAllocs)
	}

	want := harness.NewSuite().Workloads
	if len(rep.Workloads) != len(want) {
		t.Fatalf("report has %d workloads, want %d: %+v", len(rep.Workloads), len(want), rep.Workloads)
	}
	seen := map[string]bool{}
	for _, w := range rep.Workloads {
		seen[w.Name] = true
		if w.Dispatches <= 0 {
			t.Errorf("%s: dispatches = %d, want > 0", w.Name, w.Dispatches)
		}
		for field, v := range map[string]float64{
			"plain_ns_per_dispatch":    w.PlainNsPerDispatch,
			"profiled_ns_per_dispatch": w.ProfiledNsPerDispatch,
			"overhead_ns_per_dispatch": w.OverheadNsPerDispatch,
			"overhead_pct":             w.OverheadPct,
			"allocs_per_dispatch":      w.AllocsPerDispatch,
		} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Errorf("%s: %s = %v, want finite", w.Name, field, v)
			}
		}
		if w.PlainNsPerDispatch <= 0 || w.ProfiledNsPerDispatch <= 0 {
			t.Errorf("%s: non-positive ns/dispatch (plain %v, profiled %v)", w.Name, w.PlainNsPerDispatch, w.ProfiledNsPerDispatch)
		}
	}
	for _, name := range want {
		if !seen[name] {
			t.Errorf("report missing workload %q", name)
		}
	}
}

// TestBenchGate checks the gate logic against synthetic reports: identical
// reports pass, a large overhead regression fails, and a pre-measured -in
// report is honoured without re-measuring.
func TestBenchGate(t *testing.T) {
	base := harness.BenchReport{
		Schema:  harness.BenchSchema,
		Repeats: 3,
		Workloads: []harness.BenchWorkload{
			{Name: "compress", Dispatches: 1e6, PlainNsPerDispatch: 100, ProfiledNsPerDispatch: 102, OverheadNsPerDispatch: 2, OverheadPct: 2},
			{Name: "scimark", Dispatches: 1e6, PlainNsPerDispatch: 100, ProfiledNsPerDispatch: 105, OverheadNsPerDispatch: 5, OverheadPct: 5},
		},
	}
	dir := t.TempDir()
	writeReport := func(name string, rep harness.BenchReport) string {
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}
	basePath := writeReport("base.json", base)

	var buf strings.Builder
	if err := runBenchGate(nil, &buf, basePath, writeReport("same.json", base), harness.DefaultGateOptions()); err != nil {
		t.Errorf("identical reports should pass the gate: %v\n%s", err, buf.String())
	}

	regressed := base
	regressed.Workloads = append([]harness.BenchWorkload(nil), base.Workloads...)
	// 5% -> 25%: beyond the per-workload floor (5+15pp) and the suite-mean
	// gate (base mean 3.5% -> limit 6.85%, cur mean 13.5%).
	regressed.Workloads[1].OverheadPct = 25
	regressed.Workloads[1].OverheadNsPerDispatch = 25
	buf.Reset()
	err := runBenchGate(nil, &buf, basePath, writeReport("bad.json", regressed), harness.DefaultGateOptions())
	if err == nil {
		t.Fatalf("regressed report should fail the gate; output:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "scimark") {
		t.Errorf("violation output should name the regressed workload:\n%s", buf.String())
	}
}
