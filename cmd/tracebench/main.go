// Command tracebench regenerates the paper's evaluation: Tables I–VII, the
// dispatch-granularity figure data, and the baseline comparison. It also
// maintains the repo's benchmark trajectory: -bench-json emits a
// machine-readable overhead report, and -bench-gate compares a report
// against a committed baseline for the CI regression gate. The -scale
// family does the same for multicore scale-out: -scale measures
// throughput-vs-workers for the serving layer's sharded profiling path
// under a contention-adversarial mix (zipf program popularity, hot-key
// traffic, mixed profiled/plain requests), -scale-json writes the report,
// and -scale-gate enforces the CI scalability floor.
//
// Usage:
//
//	tracebench                           # everything, in paper order
//	tracebench -table 3                  # one table (1..7)
//	tracebench -figures                  # dispatch-granularity figure data
//	tracebench -baselines                # Dynamo-NET / rePLay / Whaley comparison
//	tracebench -repeats 5                # wall-clock repetitions for Tables VI/VII
//	tracebench -bench-json               # measure, write BENCH_<date>.json
//	tracebench -bench-json -out F.json   # measure, write F.json
//	tracebench -bench-gate BENCH_baseline.json -in F.json
//	                                     # compare F.json to the baseline;
//	                                     # exit 1 on >10% overhead regression
//	tracebench -scale                    # print throughput-vs-workers table
//	tracebench -scale-json -out F.json   # measure, write F.json
//	tracebench -scale-gate BENCH_scale_baseline.json
//	                                     # measure fresh, exit 1 if the top
//	                                     # worker count misses the core-aware
//	                                     # speedup floor (3x at >= 4 CPUs)
//	tracebench -valueflow-soundness      # differentially check every value-flow
//	                                     # proof on all six workloads; exit 1
//	                                     # on any false proof
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/replay"
	"repro/internal/serve"
)

func main() {
	table := flag.Int("table", 0, "regenerate a single table (1..7); 0 = all")
	figures := flag.Bool("figures", false, "print only the figure data")
	baselines := flag.Bool("baselines", false, "print only the baseline comparison")
	optim := flag.Bool("optimizability", false, "print only the trace optimizability study")
	ablations := flag.Bool("ablations", false, "print the decay-interval and max-trace-length ablations")
	stability := flag.Bool("stability", false, "print the phase-change cache stability experiment")
	warmstart := flag.Bool("warmstart", false, "print the snapshot warm-start comparison (cold vs seeded first trace)")
	repeats := flag.Int("repeats", 3, "wall-clock repetitions for overhead tables")
	maxSteps := flag.Int64("maxsteps", 0, "instruction budget per run (0 = unlimited)")
	benchJSON := flag.Bool("bench-json", false, "measure per-workload profiler overhead and write a JSON report")
	out := flag.String("out", "", "output path for -bench-json (default BENCH_<date>.json)")
	benchGate := flag.String("bench-gate", "", "baseline report to gate against; exits 1 on regression")
	in := flag.String("in", "", "pre-measured report for -bench-gate (default: measure fresh)")
	gateRel := flag.Float64("gate-rel", harness.DefaultGateOptions().RelOverheadPct, "allowed relative overhead regression (0.10 = 10%)")
	gateAbs := flag.Float64("gate-abs", harness.DefaultGateOptions().AbsOverheadPct, "absolute overhead slack in percentage points")
	scale := flag.Bool("scale", false, "measure serving-layer throughput vs worker count and print the table")
	scaleJSON := flag.Bool("scale-json", false, "measure scaling and write a JSON report")
	scaleGate := flag.String("scale-gate", "", "baseline scaling report to gate against; exits 1 below the speedup floor")
	scaleWorkers := flag.String("scale-workers", "1,2,4,8", "comma-separated worker counts for -scale (first must be 1)")
	scaleRequests := flag.Int("scale-requests", 0, "requests per scaling point (0 = harness default)")
	scaleSkew := flag.Float64("scale-skew", 1.07, "zipf exponent of the program-popularity draw (<=1 uniform)")
	scaleHot := flag.Float64("scale-hot", 0.25, "fraction of requests sent to the hottest program outright")
	scaleWrites := flag.Float64("scale-writes", 0.5, "fraction of requests run profiled; the rest run plain")
	scaleMinSpeedup := flag.Float64("scale-min-speedup", harness.DefaultScaleGateOptions().MinSpeedup, "required top-point speedup on a machine with enough cores")
	scalePerCore := flag.Float64("scale-per-core", harness.DefaultScaleGateOptions().PerCore, "per-core speedup floor on machines with fewer cores than workers")
	replayVerify := flag.String("replay-verify", "", "traffic log to replay repeatedly against fresh services; exits 1 if per-program counters diverge")
	replayRounds := flag.Int("replay-rounds", 2, "replay rounds for -replay-verify")
	replayWorkers := flag.Int("replay-workers", 4, "service workers per -replay-verify round")
	vfSoundness := flag.Bool("valueflow-soundness", false, "differentially check every value-flow proof against dynamic execution on all workloads; exits 1 on any false proof")
	flag.Parse()

	s := harness.NewSuite()
	s.Repeats = *repeats
	s.MaxSteps = *maxSteps

	scaleOpt := harness.ScaleOptions{
		Requests:  *scaleRequests,
		Skew:      *scaleSkew,
		HotRatio:  *scaleHot,
		WriteFrac: *scaleWrites,
	}

	var err error
	switch {
	case *vfSoundness:
		err = s.VerifyValueFlowSoundness(os.Stdout)
	case *replayVerify != "":
		err = runReplayVerify(os.Stdout, *replayVerify, *replayRounds, *replayWorkers)
	case *scaleGate != "":
		gopt := harness.DefaultScaleGateOptions()
		gopt.MinSpeedup = *scaleMinSpeedup
		gopt.PerCore = *scalePerCore
		err = runScaleGate(os.Stdout, *scaleGate, *in, *scaleWorkers, scaleOpt, gopt)
	case *scaleJSON:
		err = runScaleJSON(os.Stdout, *out, *scaleWorkers, scaleOpt)
	case *scale:
		err = runScale(os.Stdout, *scaleWorkers, scaleOpt)
	case *benchGate != "":
		opt := harness.DefaultGateOptions()
		opt.RelOverheadPct = *gateRel
		opt.AbsOverheadPct = *gateAbs
		err = runBenchGate(s, os.Stdout, *benchGate, *in, opt)
	case *benchJSON:
		err = runBenchJSON(s, os.Stdout, *out)
	default:
		err = run(s, os.Stdout, *table, *figures, *baselines, *optim, *ablations, *stability, *warmstart)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
		os.Exit(1)
	}
}

// runBenchJSON measures the suite's overhead report and writes it to path
// (default BENCH_<date>.json), echoing the table to w.
func runBenchJSON(s *harness.Suite, w io.Writer, path string) error {
	rep, err := s.BenchReport()
	if err != nil {
		return err
	}
	if path == "" {
		path = fmt.Sprintf("BENCH_%s.json", time.Now().Format("2006-01-02"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, harness.FormatBenchReport(rep))
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

// runBenchGate loads the baseline, obtains the current report (from inPath
// if given, else by measuring fresh), and fails on regressions.
func runBenchGate(s *harness.Suite, w io.Writer, basePath, inPath string, opt harness.GateOptions) error {
	base, err := loadBenchReport(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var cur harness.BenchReport
	if inPath != "" {
		cur, err = loadBenchReport(inPath)
		if err != nil {
			return fmt.Errorf("current report: %w", err)
		}
	} else {
		cur, err = s.BenchReport()
		if err != nil {
			return err
		}
	}
	violations := harness.CompareBenchReports(base, cur, opt)
	if len(violations) == 0 {
		fmt.Fprintf(w, "bench gate passed: %d workloads within %.0f%% (+%.1fpp) of baseline\n",
			len(cur.Workloads), opt.RelOverheadPct*100, opt.AbsOverheadPct)
		return nil
	}
	for _, v := range violations {
		fmt.Fprintf(w, "bench gate violation: %s\n", v)
	}
	return fmt.Errorf("%d benchmark regression(s) against %s", len(violations), basePath)
}

// parseWorkers parses the -scale-workers list ("1,2,4,8").
func parseWorkers(spec string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(spec, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		n, err := strconv.Atoi(f)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad worker count %q in -scale-workers", f)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-scale-workers names no worker counts")
	}
	return out, nil
}

func measureScale(workersSpec string, opt harness.ScaleOptions) (harness.ScaleReport, error) {
	workers, err := parseWorkers(workersSpec)
	if err != nil {
		return harness.ScaleReport{}, err
	}
	opt.Workers = workers
	return harness.MeasureScaling(opt)
}

// runReplayVerify replays a recorded traffic log repeatedly against fresh
// services and fails if any per-program counter diverges between rounds —
// the CI teeth behind the record/replay determinism claim.
func runReplayVerify(w io.Writer, path string, rounds, workers int) error {
	l, err := replay.Load(path)
	if err != nil {
		return err
	}
	rep, err := harness.VerifyReplayDeterminism(context.Background(), l, rounds,
		serve.Config{Workers: workers})
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "replay-verify: %d records, %d programs, %d rounds\n",
		rep.Records, rep.Programs, rep.Rounds)
	names := make([]string, 0, len(rep.PerProgram))
	for name := range rep.PerProgram {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		c := rep.PerProgram[name]
		fmt.Fprintf(w, "  %-28s runs %3d  instrs %12d  blocks %10d  trace-disp %10d  built %4d\n",
			name, c.Runs, c.Instrs, c.BlockDispatches, c.TraceDispatches, c.TracesBuilt)
	}
	if !rep.Deterministic {
		return fmt.Errorf("replay diverged: %s", rep.Divergence)
	}
	fmt.Fprintln(w, "replay-verify: deterministic")
	return nil
}

// runScale measures throughput-vs-workers and prints the table.
func runScale(w io.Writer, workersSpec string, opt harness.ScaleOptions) error {
	rep, err := measureScale(workersSpec, opt)
	if err != nil {
		return err
	}
	fmt.Fprintln(w, harness.FormatScaleReport(rep))
	return nil
}

// runScaleJSON measures and writes the scaling report to path (default
// BENCH_scale_<date>.json), echoing the table to w.
func runScaleJSON(w io.Writer, path, workersSpec string, opt harness.ScaleOptions) error {
	rep, err := measureScale(workersSpec, opt)
	if err != nil {
		return err
	}
	if path == "" {
		path = fmt.Sprintf("BENCH_scale_%s.json", time.Now().Format("2006-01-02"))
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintln(w, harness.FormatScaleReport(rep))
	fmt.Fprintf(w, "wrote %s\n", path)
	return nil
}

// runScaleGate loads the baseline, obtains the current report (from inPath
// if given, else by measuring fresh), and fails below the speedup floor.
func runScaleGate(w io.Writer, basePath, inPath, workersSpec string, opt harness.ScaleOptions, gopt harness.ScaleGateOptions) error {
	base, err := loadScaleReport(basePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var cur harness.ScaleReport
	if inPath != "" {
		cur, err = loadScaleReport(inPath)
		if err != nil {
			return fmt.Errorf("current report: %w", err)
		}
	} else {
		cur, err = measureScale(workersSpec, opt)
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, harness.FormatScaleReport(cur))
	violations := harness.CompareScaleReports(base, cur, gopt)
	if len(violations) == 0 {
		top := cur.Points[len(cur.Points)-1]
		fmt.Fprintf(w, "scale gate passed: %d workers reach %.2fx the 1-worker throughput on %d CPUs\n",
			top.Workers, top.Speedup, cur.CPUs)
		return nil
	}
	for _, v := range violations {
		fmt.Fprintf(w, "scale gate violation: %s\n", v)
	}
	return fmt.Errorf("%d scalability violation(s) against %s", len(violations), basePath)
}

func loadScaleReport(path string) (harness.ScaleReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return harness.ScaleReport{}, err
	}
	var rep harness.ScaleReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return harness.ScaleReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func loadBenchReport(path string) (harness.BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return harness.BenchReport{}, err
	}
	var rep harness.BenchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return harness.BenchReport{}, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

func run(s *harness.Suite, out io.Writer, table int, figures, baselines, optim, ablations, stability, warmstart bool) error {
	switch {
	case warmstart:
		t, _, err := s.WarmStartTable()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case stability:
		t, err := s.Stability()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case ablations:
		ad, err := s.AblationDecay()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ad.Format())
		for _, name := range []string{"compress", "scimark"} {
			am, err := s.AblationMaxBlocks(name)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, am.Format())
		}
		return nil
	case figures:
		t, err := s.Figures()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case baselines:
		t, err := s.Baselines()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case optim:
		t, err := s.Optimizability()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case table == 0:
		return s.RunAll(out)
	}

	var t harness.Table
	var err error
	switch table {
	case 1:
		t, err = s.TableI()
	case 2:
		t, err = s.TableII()
	case 3:
		t, err = s.TableIII()
	case 4:
		t, err = s.TableIV()
	case 5:
		t, err = s.TableV()
	case 6:
		t, _, err = s.TableVI()
	case 7:
		var measured []harness.Overhead
		_, measured, err = s.TableVI()
		if err == nil {
			t = s.TableVII(measured)
		}
	default:
		return fmt.Errorf("no such table %d (1..7)", table)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.Format())
	return nil
}
