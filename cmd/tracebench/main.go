// Command tracebench regenerates the paper's evaluation: Tables I–VII, the
// dispatch-granularity figure data, and the baseline comparison.
//
// Usage:
//
//	tracebench                 # everything, in paper order
//	tracebench -table 3        # one table (1..7)
//	tracebench -figures        # dispatch-granularity figure data
//	tracebench -baselines      # Dynamo-NET / rePLay / Whaley comparison
//	tracebench -repeats 5      # wall-clock repetitions for Tables VI/VII
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
)

func main() {
	table := flag.Int("table", 0, "regenerate a single table (1..7); 0 = all")
	figures := flag.Bool("figures", false, "print only the figure data")
	baselines := flag.Bool("baselines", false, "print only the baseline comparison")
	optim := flag.Bool("optimizability", false, "print only the trace optimizability study")
	ablations := flag.Bool("ablations", false, "print the decay-interval and max-trace-length ablations")
	stability := flag.Bool("stability", false, "print the phase-change cache stability experiment")
	repeats := flag.Int("repeats", 3, "wall-clock repetitions for overhead tables")
	maxSteps := flag.Int64("maxsteps", 0, "instruction budget per run (0 = unlimited)")
	flag.Parse()

	s := harness.NewSuite()
	s.Repeats = *repeats
	s.MaxSteps = *maxSteps

	if err := run(s, *table, *figures, *baselines, *optim, *ablations, *stability); err != nil {
		fmt.Fprintf(os.Stderr, "tracebench: %v\n", err)
		os.Exit(1)
	}
}

func run(s *harness.Suite, table int, figures, baselines, optim, ablations, stability bool) error {
	out := os.Stdout
	switch {
	case stability:
		t, err := s.Stability()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case ablations:
		ad, err := s.AblationDecay()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, ad.Format())
		for _, name := range []string{"compress", "scimark"} {
			am, err := s.AblationMaxBlocks(name)
			if err != nil {
				return err
			}
			fmt.Fprintln(out, am.Format())
		}
		return nil
	case figures:
		t, err := s.Figures()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case baselines:
		t, err := s.Baselines()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case optim:
		t, err := s.Optimizability()
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t.Format())
		return nil
	case table == 0:
		return s.RunAll(out)
	}

	var t harness.Table
	var err error
	switch table {
	case 1:
		t, err = s.TableI()
	case 2:
		t, err = s.TableII()
	case 3:
		t, err = s.TableIII()
	case 4:
		t, err = s.TableIV()
	case 5:
		t, err = s.TableV()
	case 6:
		t, _, err = s.TableVI()
	case 7:
		var measured []harness.Overhead
		_, measured, err = s.TableVI()
		if err == nil {
			t = s.TableVII(measured)
		}
	default:
		return fmt.Errorf("no such table %d (1..7)", table)
	}
	if err != nil {
		return err
	}
	fmt.Fprintln(out, t.Format())
	return nil
}
