// Command bcgdump runs a program under the profiler and writes the final
// branch correlation graph as Graphviz DOT.
//
// Usage:
//
//	bcgdump -workload compress -min 100 > bcg.dot
//	bcgdump prog.mj > bcg.dot
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
)

func main() {
	workloadName := flag.String("workload", "", "profile a built-in workload")
	minTotal := flag.Int("min", 16, "omit nodes executed fewer than this many times (decayed)")
	threshold := flag.Float64("threshold", 0.97, "correlation threshold")
	delay := flag.Int("delay", 64, "start-state delay")
	flag.Parse()

	if err := run(*workloadName, *minTotal, *threshold, *delay, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "bcgdump: %v\n", err)
		os.Exit(1)
	}
}

func run(workloadName string, minTotal int, threshold float64, delay int, args []string) error {
	var src string
	switch {
	case workloadName != "":
		s, err := repro.WorkloadSource(workloadName)
		if err != nil {
			return err
		}
		src = s
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("expected one source file or -workload")
	}
	prog, err := repro.CompileMiniJava(src)
	if err != nil {
		return err
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(repro.ModeProfile),
		repro.WithParams(repro.Params{Threshold: threshold, StartDelay: int32(delay)}),
	)
	if err != nil {
		return err
	}
	if err := vm.Run(); err != nil {
		return err
	}
	fmt.Print(vm.DumpBCG(minTotal))
	return nil
}
