package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestDumpWorkload(t *testing.T) {
	// soot is the fastest workload; the DOT goes to stdout, so this test
	// only asserts success.
	if err := run("soot", 1000, 0.97, 64, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestDumpFile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(src, []byte(`class Main { static void main() {
        int s = 0;
        for (int i = 0; i < 1000; i = i + 1) { s = s + i; }
        Sys.printlnInt(s);
    } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", 1, 0.97, 1, []string{src}); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestDumpErrors(t *testing.T) {
	if err := run("", 1, 0.97, 64, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("nope", 1, 0.97, 64, nil); err == nil {
		t.Error("unknown workload accepted")
	}
}
