// Command jasm assembles the textual assembler format into a module file,
// or disassembles a module back to a listing.
//
// Usage:
//
//	jasm -o prog.jtm prog.jasm
//	jasm -d prog.jtm
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/bytecode"
)

func main() {
	out := flag.String("o", "", "output module file (.jtm)")
	dis := flag.Bool("d", false, "disassemble a module file")
	flag.Parse()

	if err := run(*out, *dis, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "jasm: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, dis bool, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("expected one input file")
	}
	if dis {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		prog, err := repro.LoadModule(f)
		if err != nil {
			return err
		}
		for _, c := range prog.Classes {
			fmt.Printf(".class %s\n", c.Name)
			if c.SuperName != "" {
				fmt.Printf(".super %s\n", c.SuperName)
			}
			for _, fd := range c.Fields {
				if fd.Static {
					fmt.Printf(".field static %s %s\n", fd.Name, fd.Type)
				} else {
					fmt.Printf(".field %s %s\n", fd.Name, fd.Type)
				}
			}
			for _, m := range c.Methods {
				fmt.Printf("; method %s locals=%d\n", m.QName(), m.MaxLocals)
				if len(m.Code) > 0 {
					listing, err := bytecode.Disassemble(m.Code)
					if err != nil {
						return err
					}
					fmt.Print(listing)
				}
			}
			fmt.Println(".end")
		}
		return nil
	}

	src, err := os.ReadFile(args[0])
	if err != nil {
		return err
	}
	prog, err := repro.Assemble(string(src))
	if err != nil {
		return err
	}
	if out == "" {
		return fmt.Errorf("use -o file.jtm")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return repro.SaveModule(f, prog)
}
