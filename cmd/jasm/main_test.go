package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestAssembleAndDisassembleModule(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.jasm")
	if err := os.WriteFile(src, []byte(`
.class Main
.field static counter int
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 3 putstatic Main.counter
    getstatic Main.counter invokestatic Main.p
    return
.end
.end
.entry Main main
`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "p.jtm")
	if err := run(out, false, []string{src}); err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := run("", true, []string{out}); err != nil {
		t.Fatalf("disassemble: %v", err)
	}
}

func TestJasmErrors(t *testing.T) {
	if err := run("", false, nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("", false, []string{"/does/not/exist.jasm"}); err == nil {
		t.Error("missing input accepted")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "p.jasm")
	if err := os.WriteFile(src, []byte(".class A\n.end"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", false, []string{src}); err == nil {
		t.Error("missing -o accepted")
	}
	if err := run("", true, []string{src}); err == nil {
		t.Error("disassembling non-module accepted")
	}
}
