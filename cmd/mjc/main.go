// Command mjc compiles MiniJava to a serialized module (.jtm) or a
// disassembly listing.
//
// Usage:
//
//	mjc -o prog.jtm prog.mj        # compile to a module file
//	mjc -S prog.mj                 # print the disassembly
//	mjc -workload compress -S      # disassemble a built-in workload
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/bytecode"
	"repro/internal/classfile"
	"repro/internal/minijava"
	"repro/internal/opt"
)

func main() {
	out := flag.String("o", "", "output module file (.jtm)")
	asm := flag.Bool("S", false, "print disassembly instead of writing a module")
	optimize := flag.Bool("O", false, "run the static bytecode optimizer")
	workloadName := flag.String("workload", "", "compile a built-in workload instead of a file")
	entry := flag.String("entry", "", "entry class (when several declare main)")
	flag.Parse()

	if err := run(*out, *asm, *optimize, *workloadName, *entry, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "mjc: %v\n", err)
		os.Exit(1)
	}
}

func run(out string, asm, optimize bool, workloadName, entry string, args []string) error {
	var src string
	switch {
	case workloadName != "":
		s, err := repro.WorkloadSource(workloadName)
		if err != nil {
			return err
		}
		src = s
	case len(args) == 1:
		b, err := os.ReadFile(args[0])
		if err != nil {
			return err
		}
		src = string(b)
	default:
		return fmt.Errorf("expected one source file or -workload")
	}

	var prog *repro.Program
	var err error
	if entry != "" {
		prog, err = compileWithEntry(src, entry)
	} else {
		prog, err = repro.CompileMiniJava(src)
	}
	if err != nil {
		return err
	}
	if optimize {
		st, err := opt.Program(prog)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "mjc: %s\n", st)
	}

	if asm {
		return disassemble(os.Stdout, prog)
	}
	if out == "" {
		return fmt.Errorf("use -o file.jtm or -S")
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return repro.SaveModule(f, prog)
}

func compileWithEntry(src, entry string) (*repro.Program, error) {
	return minijava.CompileWithEntry(src, entry)
}

func disassemble(w *os.File, prog *classfile.Program) error {
	for _, c := range prog.Classes {
		fmt.Fprintf(w, "class %s", c.Name)
		if c.SuperName != "" {
			fmt.Fprintf(w, " extends %s", c.SuperName)
		}
		fmt.Fprintln(w)
		for _, f := range c.Fields {
			static := ""
			if f.Static {
				static = "static "
			}
			fmt.Fprintf(w, "  field %s%s %s\n", static, f.Name, f.Type)
		}
		for _, m := range c.Methods {
			static := ""
			if m.Static {
				static = "static "
			}
			fmt.Fprintf(w, "  method %s%s/%d -> %s (locals %d)\n", static, m.Name, len(m.Params), m.Ret, m.MaxLocals)
			switch {
			case m.Native != "":
				fmt.Fprintf(w, "    <native %s>\n", m.Native)
			case m.Abstract:
				fmt.Fprintf(w, "    <abstract>\n")
			default:
				listing, err := bytecode.Disassemble(m.Code)
				if err != nil {
					return err
				}
				fmt.Fprint(w, listing)
			}
		}
	}
	return nil
}
