package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestCompileToModuleAndDisassemble(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(src, []byte(`
class Point {
    int x;
    void init(int v) { x = v; }
    int get() { return x; }
}
class Main {
    static void main() { Sys.printlnInt(new Point(4).get()); }
}`), 0o644); err != nil {
		t.Fatal(err)
	}

	out := filepath.Join(dir, "p.jtm")
	if err := run(out, false, false, "", "", []string{src}); err != nil {
		t.Fatalf("compile: %v", err)
	}
	if fi, err := os.Stat(out); err != nil || fi.Size() == 0 {
		t.Fatalf("module not written: %v", err)
	}

	// -S prints a listing to stdout; just confirm it does not error for a
	// file and for a built-in workload.
	if err := run("", true, false, "", "", []string{src}); err != nil {
		t.Errorf("disassemble file: %v", err)
	}
	if err := run("", true, false, "scimark", "", nil); err != nil {
		t.Errorf("disassemble workload: %v", err)
	}
}

func TestExplicitEntry(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(src, []byte(`
class A { static void main() { Sys.printlnInt(1); } }
class B { static void main() { Sys.printlnInt(2); } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "p.jtm")
	// Ambiguous entry without -entry.
	if err := run(out, false, false, "", "", []string{src}); err == nil {
		t.Error("ambiguous main accepted")
	}
	if err := run(out, false, false, "", "B", []string{src}); err != nil {
		t.Errorf("explicit entry failed: %v", err)
	}
}

func TestOptimizedCompile(t *testing.T) {
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(src, []byte(`class Main { static void main() { Sys.printlnInt(6 * 7); } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	out := filepath.Join(dir, "p.jtm")
	if err := run(out, false, true, "", "", []string{src}); err != nil {
		t.Fatalf("optimized compile: %v", err)
	}
}

func TestErrors(t *testing.T) {
	if err := run("", false, false, "", "", nil); err == nil {
		t.Error("no input accepted")
	}
	if err := run("", false, false, "nope-workload", "", nil); err == nil {
		t.Error("unknown workload accepted")
	}
	dir := t.TempDir()
	src := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(src, []byte(`class A { static void main() {} }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", false, false, "", "", []string{src}); err == nil {
		t.Error("missing -o and -S accepted")
	}
}
