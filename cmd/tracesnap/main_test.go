package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

func writeStore(t *testing.T) (dir, good, bad string) {
	t.Helper()
	dir = t.TempDir()
	data := snapshot.Encode(&snapshot.Snapshot{
		Program:    "loop",
		ProgramKey: "0123456789abcdef",
		Params:     profile.Params{Threshold: 0.97, StartDelay: 64, DecayInterval: 256},
		Nodes: []profile.NodeSnapshot{
			{X: 1, Y: 2, State: profile.StateUnique, Best: 3,
				Edges: []profile.EdgeSnapshot{{Z: 3, Count: 200}}},
		},
		Traces: []snapshot.TraceState{
			{Blocks: []cfg.BlockID{2, 3, 4}, ExpectedCompletion: 0.98, EntryFrom: []cfg.BlockID{1}},
		},
	})
	good = filepath.Join(dir, "good.tsnap")
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x10
	bad = filepath.Join(dir, "bad.tsnap")
	if err := os.WriteFile(bad, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	return dir, good, bad
}

func TestScrubReportOnlyFailsOnCorruption(t *testing.T) {
	dir, _, bad := writeStore(t)
	var out bytes.Buffer
	err := runScrub(&out, dir, false)
	if err == nil {
		t.Fatal("report-only scrub of a corrupt store exited clean")
	}
	if !strings.Contains(out.String(), "corrupt:     1") {
		t.Errorf("report missing corruption count:\n%s", out.String())
	}
	// Report-only must not touch the store.
	if _, serr := os.Stat(bad); serr != nil {
		t.Errorf("report-only scrub moved the corrupt file: %v", serr)
	}
}

func TestScrubQuarantineHealsStore(t *testing.T) {
	dir, good, bad := writeStore(t)
	var out bytes.Buffer
	if err := runScrub(&out, dir, true); err != nil {
		t.Fatalf("quarantining scrub failed: %v\n%s", err, out.String())
	}
	if _, err := os.Stat(bad + snapshot.CorruptExt); err != nil {
		t.Errorf("no .corrupt sidecar: %v", err)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Errorf("corrupt file still in the store (err=%v)", err)
	}
	if _, err := os.Stat(good); err != nil {
		t.Errorf("healthy snapshot disturbed: %v", err)
	}
	// A second pass over the healed store is clean.
	out.Reset()
	if err := runScrub(&out, dir, false); err != nil {
		t.Fatalf("healed store still reports corruption: %v\n%s", err, out.String())
	}
}

func TestScrubMissingDirIsClean(t *testing.T) {
	var out bytes.Buffer
	if err := runScrub(&out, filepath.Join(t.TempDir(), "nope"), false); err != nil {
		t.Fatalf("missing store dir: %v", err)
	}
}
