// Command tracesnap inspects and compares profile snapshot files
// (tracevm/snapshot/v1, written by VM.SaveSnapshot, the serving daemon's
// snapshot store, or GET /v1/snapshot).
//
// Usage:
//
//	tracesnap prog.tsnap                summary: identity, params, state histogram
//	tracesnap -nodes prog.tsnap        per-node listing (context, state, edges)
//	tracesnap -json prog.tsnap         full decoded snapshot as JSON
//	tracesnap -diff old.tsnap new.tsnap what the profile learned between two saves
//	tracesnap -scrub dir               validate every .tsnap in a store directory;
//	                                   exits non-zero when corruption is found
//	tracesnap -scrub -quarantine dir   additionally move corrupt files to .corrupt
//	                                   sidecars (the daemon's startup self-heal,
//	                                   runnable offline)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

func main() {
	nodes := flag.Bool("nodes", false, "list every node with its state and edges")
	asJSON := flag.Bool("json", false, "dump the decoded snapshot as JSON")
	diff := flag.Bool("diff", false, "compare two snapshots (old new)")
	scrub := flag.Bool("scrub", false, "validate every snapshot in a store directory")
	quarantine := flag.Bool("quarantine", false, "scrub: move corrupt snapshots to .corrupt sidecars")
	flag.Parse()

	if err := run(*nodes, *asJSON, *diff, *scrub, *quarantine, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "tracesnap: %v\n", err)
		os.Exit(1)
	}
}

func run(nodes, asJSON, diff, scrub, quarantine bool, args []string) error {
	if scrub {
		if len(args) != 1 {
			return fmt.Errorf("-scrub expects one store directory")
		}
		return runScrub(os.Stdout, args[0], quarantine)
	}
	if diff {
		if len(args) != 2 {
			return fmt.Errorf("-diff expects two snapshot files")
		}
		a, err := snapshot.Load(args[0])
		if err != nil {
			return fmt.Errorf("%s: %w", args[0], err)
		}
		b, err := snapshot.Load(args[1])
		if err != nil {
			return fmt.Errorf("%s: %w", args[1], err)
		}
		printDiff(args[0], args[1], a, b)
		return nil
	}
	if len(args) != 1 {
		return fmt.Errorf("expected one snapshot file (or -diff old new)")
	}
	s, err := snapshot.Load(args[0])
	if err != nil {
		return fmt.Errorf("%s: %w", args[0], err)
	}
	switch {
	case asJSON:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(s)
	case nodes:
		printNodes(s)
	default:
		info, err := os.Stat(args[0])
		if err != nil {
			return err
		}
		printSummary(args[0], info.Size(), s)
	}
	return nil
}

// runScrub validates a snapshot store offline — the same pass the daemon
// runs at startup. Without -quarantine it only reports; corruption makes it
// exit non-zero either way, so a cron or CI check fails loudly. With
// -quarantine the damaged files are moved aside exactly as the daemon would,
// and the scrub exits zero: the store is healthy again.
func runScrub(w io.Writer, dir string, quarantine bool) error {
	rep, err := snapshot.ScrubDir(dir, quarantine)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "scanned:     %d snapshot(s)\n", rep.Scanned)
	fmt.Fprintf(w, "valid:       %d\n", rep.Valid)
	fmt.Fprintf(w, "corrupt:     %d\n", len(rep.Corrupt))
	if rep.TempsRemoved > 0 {
		fmt.Fprintf(w, "temps swept: %d abandoned write(s)\n", rep.TempsRemoved)
	}
	for _, f := range rep.Corrupt {
		if f.Quarantined != "" {
			fmt.Fprintf(w, "  quarantined %s -> %s (%v)\n", f.Path, f.Quarantined, f.Err)
		} else {
			fmt.Fprintf(w, "  corrupt     %s (%v)\n", f.Path, f.Err)
		}
	}
	if n := len(rep.Corrupt); n > 0 && !quarantine {
		return fmt.Errorf("%d corrupt snapshot(s) in %s (rerun with -quarantine to move them aside)", n, dir)
	}
	return nil
}

func printSummary(path string, size int64, s *snapshot.Snapshot) {
	fmt.Printf("file:      %s (%d bytes)\n", path, size)
	fmt.Printf("schema:    %s\n", snapshot.Schema)
	name := s.Program
	if name == "" {
		name = "(unnamed)"
	}
	fmt.Printf("program:   %s  key %s\n", name, s.ProgramKey)
	fmt.Printf("params:    threshold %.3f  delay %d  decay %d\n",
		s.Params.Threshold, s.Params.StartDelay, s.Params.DecayInterval)

	var hist [int(profile.StateUnique) + 1]int
	edges := 0
	for _, n := range s.Nodes {
		hist[n.State]++
		edges += len(n.Edges)
	}
	fmt.Printf("nodes:     %d  (", len(s.Nodes))
	for st := profile.StateNew; st <= profile.StateUnique; st++ {
		if st > profile.StateNew {
			fmt.Print("  ")
		}
		fmt.Printf("%s %d", st, hist[st])
	}
	fmt.Printf(")\n")
	fmt.Printf("edges:     %d\n", edges)

	blocks, entries := 0, 0
	minEC, sumEC := 1.0, 0.0
	for _, t := range s.Traces {
		blocks += len(t.Blocks)
		entries += len(t.EntryFrom)
		sumEC += t.ExpectedCompletion
		if t.ExpectedCompletion < minEC {
			minEC = t.ExpectedCompletion
		}
	}
	if len(s.Traces) > 0 {
		fmt.Printf("traces:    %d  (%d blocks, %d entry edges, expected completion min %.3f avg %.3f)\n",
			len(s.Traces), blocks, entries, minEC, sumEC/float64(len(s.Traces)))
	} else {
		fmt.Printf("traces:    0\n")
	}
	fmt.Printf("loop hdrs: %d\n", len(s.LoopHeaders))
}

func printNodes(s *snapshot.Snapshot) {
	for _, n := range s.Nodes {
		total := 0
		var parts []string
		for _, e := range n.Edges {
			total += int(e.Count)
			parts = append(parts, fmt.Sprintf("%d:%d", e.Z, e.Count))
		}
		best := "-"
		if n.Best != cfg.NoBlock {
			best = fmt.Sprintf("%d", n.Best)
		}
		fmt.Printf("N_%d,%d  %-7s delay %-4d best %-4s total %-5d  [%s]\n",
			n.X, n.Y, n.State, n.StartDelay, best, total, strings.Join(parts, " "))
	}
}

// nodeKey identifies a node across snapshots by its branch context.
type nodeKey struct{ x, y cfg.BlockID }

// traceKey identifies a trace by its block sequence.
func traceKey(blocks []cfg.BlockID) string {
	var b strings.Builder
	for i, id := range blocks {
		if i > 0 {
			b.WriteByte('>')
		}
		fmt.Fprintf(&b, "%d", id)
	}
	return b.String()
}

func printDiff(pathA, pathB string, a, b *snapshot.Snapshot) {
	fmt.Printf("old: %s  (%d nodes, %d traces)\n", pathA, len(a.Nodes), len(a.Traces))
	fmt.Printf("new: %s  (%d nodes, %d traces)\n", pathB, len(b.Nodes), len(b.Traces))
	if a.ProgramKey != b.ProgramKey {
		fmt.Printf("!! different programs: %s vs %s\n", a.ProgramKey, b.ProgramKey)
	}
	if a.Params != b.Params {
		fmt.Printf("!! different params: threshold %.3f/%.3f delay %d/%d decay %d/%d\n",
			a.Params.Threshold, b.Params.Threshold,
			a.Params.StartDelay, b.Params.StartDelay,
			a.Params.DecayInterval, b.Params.DecayInterval)
	}

	an := make(map[nodeKey]profile.NodeSnapshot, len(a.Nodes))
	for _, n := range a.Nodes {
		an[nodeKey{n.X, n.Y}] = n
	}
	var added, changed []string
	seen := make(map[nodeKey]bool, len(b.Nodes))
	for _, n := range b.Nodes {
		k := nodeKey{n.X, n.Y}
		seen[k] = true
		old, ok := an[k]
		switch {
		case !ok:
			added = append(added, fmt.Sprintf("  + N_%d,%d %s", n.X, n.Y, n.State))
		case old.State != n.State:
			changed = append(changed, fmt.Sprintf("  ~ N_%d,%d %s -> %s", n.X, n.Y, old.State, n.State))
		}
	}
	var removed []string
	for _, n := range a.Nodes {
		if !seen[nodeKey{n.X, n.Y}] {
			removed = append(removed, fmt.Sprintf("  - N_%d,%d %s", n.X, n.Y, n.State))
		}
	}
	printGroup("nodes added", added)
	printGroup("nodes removed", removed)
	printGroup("node state changes", changed)

	at := make(map[string]float64, len(a.Traces))
	for _, t := range a.Traces {
		at[traceKey(t.Blocks)] = t.ExpectedCompletion
	}
	var tAdded, tRemoved []string
	seenT := make(map[string]bool, len(b.Traces))
	for _, t := range b.Traces {
		k := traceKey(t.Blocks)
		seenT[k] = true
		if _, ok := at[k]; !ok {
			tAdded = append(tAdded, fmt.Sprintf("  + [%s] ec %.3f", k, t.ExpectedCompletion))
		}
	}
	for _, t := range a.Traces {
		if k := traceKey(t.Blocks); !seenT[k] {
			tRemoved = append(tRemoved, fmt.Sprintf("  - [%s] ec %.3f", k, t.ExpectedCompletion))
		}
	}
	printGroup("traces added", tAdded)
	printGroup("traces removed", tRemoved)
}

func printGroup(title string, lines []string) {
	if len(lines) == 0 {
		return
	}
	sort.Strings(lines)
	fmt.Printf("%s (%d):\n", title, len(lines))
	for _, l := range lines {
		fmt.Println(l)
	}
}
