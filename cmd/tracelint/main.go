// Command tracelint statically checks programs for the trace-cache VM: it
// runs the abstract-interpretation bytecode verifier over every input and,
// for programs that pass, prints the CFG dataflow facts the runtime consumes
// as hints (dominators, loop headers, single-successor blocks).
//
// Inputs are MiniJava sources (.mj), jasm assembly (.jasm, analyzed without
// linking so malformed programs still produce a report), or serialized
// modules (.jtm).
//
// Usage:
//
//	tracelint prog.jasm other.mj           # human-readable report + facts
//	tracelint -json prog.jasm              # machine-readable report
//	tracelint -no-facts prog.jtm           # verification only
//
// Exit status is 1 if any input fails to load or is rejected.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/jasm"
	"repro/internal/minijava"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per input file")
	noFacts := flag.Bool("no-facts", false, "skip the CFG/dominator fact dump, verify only")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-json] [-no-facts] file.{mj,jasm,jtm}...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if !lintFile(os.Stdout, path, *jsonOut, !*noFacts) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// methodFacts is the per-method slice of the JSON fact dump.
type methodFacts struct {
	Method       string   `json:"method"`
	Blocks       int      `json:"blocks"`
	LoopHeaders  []uint32 `json:"loopHeaderPCs"`
	UniqueBlocks []uint32 `json:"uniqueBlockPCs"`
}

type fileResult struct {
	File   string           `json:"file"`
	OK     bool             `json:"ok"`
	Error  string           `json:"error,omitempty"`
	Report *analysis.Report `json:"report,omitempty"`
	Facts  []methodFacts    `json:"facts,omitempty"`
}

// load parses path into a (possibly unlinked) program.
func load(path string) (*classfile.Program, error) {
	switch {
	case strings.HasSuffix(path, ".jtm"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return classfile.Read(f)
	case strings.HasSuffix(path, ".jasm"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return jasm.AssembleUnlinked(string(src))
	default:
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return minijava.Compile(string(src))
	}
}

// facts links the program (verification already passed, so linking errors
// are symbol-resolution problems, reported as such) and extracts the
// dataflow facts per method.
func facts(prog *classfile.Program) ([]methodFacts, error) {
	if !prog.Linked() {
		if err := prog.Link(); err != nil {
			return nil, err
		}
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		return nil, err
	}
	hints := analysis.ComputeHints(pcfg)
	var out []methodFacts
	for _, mc := range pcfg.Methods {
		if mc == nil {
			continue
		}
		mf := methodFacts{Method: mc.Method.QName(), Blocks: len(mc.Blocks)}
		for _, b := range mc.Blocks {
			if hints.IsLoopHeader(b.ID) {
				mf.LoopHeaders = append(mf.LoopHeaders, b.StartPC())
			}
			if hints.UniqueSucc[b.ID] != cfg.NoBlock {
				mf.UniqueBlocks = append(mf.UniqueBlocks, b.StartPC())
			}
		}
		out = append(out, mf)
	}
	return out, nil
}

func lintFile(w *os.File, path string, jsonOut, wantFacts bool) bool {
	res := fileResult{File: path}
	prog, err := load(path)
	if err != nil {
		res.Error = err.Error()
	} else {
		res.Report = analysis.Verify(prog)
		res.OK = !res.Report.Reject()
		if res.OK && wantFacts {
			if fs, err := facts(prog); err != nil {
				res.Error = err.Error()
				res.OK = false
			} else {
				res.Facts = fs
			}
		}
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return res.OK
	}

	switch {
	case res.Error != "" && res.Report == nil:
		fmt.Fprintf(w, "%s: error: %s\n", path, res.Error)
	case res.Error != "":
		fmt.Fprintf(w, "%s: error: %s\n", path, res.Error)
		printReport(w, path, res.Report)
	default:
		printReport(w, path, res.Report)
	}
	if res.OK {
		fmt.Fprintf(w, "%s: ok\n", path)
		for _, mf := range res.Facts {
			fmt.Fprintf(w, "  %s: %d blocks", mf.Method, mf.Blocks)
			if len(mf.LoopHeaders) > 0 {
				fmt.Fprintf(w, ", loop headers at pc %s", pcList(mf.LoopHeaders))
			}
			if len(mf.UniqueBlocks) > 0 {
				fmt.Fprintf(w, ", single-successor blocks at pc %s", pcList(mf.UniqueBlocks))
			}
			fmt.Fprintln(w)
		}
	}
	return res.OK
}

func printReport(w *os.File, path string, rep *analysis.Report) {
	for _, f := range rep.Findings {
		sev := "error"
		if f.Warn {
			sev = "warning"
		}
		fmt.Fprintf(w, "%s: %s: %s: pc %d: %s: %s\n", path, sev, f.Method, f.PC, f.Rule, f.Message)
	}
}

func pcList(pcs []uint32) string {
	parts := make([]string, len(pcs))
	for i, pc := range pcs {
		parts[i] = fmt.Sprint(pc)
	}
	return strings.Join(parts, ",")
}
