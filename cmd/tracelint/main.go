// Command tracelint statically checks programs for the trace-cache VM: it
// runs the abstract-interpretation bytecode verifier over every input and,
// for programs that pass, prints the dataflow facts the runtime consumes —
// the CFG hints (dominators, loop headers, single-successor blocks) and the
// whole-program value-flow facts (constant slots, statically decided
// branches, unreachable blocks) that feed BCG hint seeding and the trace
// cache's guard proofs.
//
// Inputs are MiniJava sources (.mj), jasm assembly (.jasm, analyzed without
// linking so malformed programs still produce a report), or serialized
// modules (.jtm).
//
// Usage:
//
//	tracelint prog.jasm other.mj           # human-readable report + facts
//	tracelint -facts prog.mj               # same, facts requested explicitly
//	tracelint -json prog.jasm              # machine-readable report
//	tracelint -no-facts prog.jtm           # verification only
//	tracelint -strict prog.mj              # advisory warnings fail too
//
// Exit status is 1 if any input fails to load, is rejected, or (under
// -strict) draws an advisory warning such as unreachable-block.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/jasm"
	"repro/internal/minijava"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per input file")
	showFacts := flag.Bool("facts", true, "print the CFG and value-flow facts for accepted programs")
	noFacts := flag.Bool("no-facts", false, "skip the CFG/dominator fact dump, verify only")
	strict := flag.Bool("strict", false, "treat advisory warnings (e.g. unreachable-block) as failures")
	flag.Parse()
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: tracelint [-json] [-facts|-no-facts] [-strict] file.{mj,jasm,jtm}...")
		os.Exit(2)
	}
	exit := 0
	for _, path := range flag.Args() {
		if !lintFile(os.Stdout, path, *jsonOut, *showFacts && !*noFacts, *strict) {
			exit = 1
		}
	}
	os.Exit(exit)
}

// methodFacts is the per-method slice of the JSON fact dump.
type methodFacts struct {
	Method       string   `json:"method"`
	Blocks       int      `json:"blocks"`
	LoopHeaders  []uint32 `json:"loopHeaderPCs"`
	UniqueBlocks []uint32 `json:"uniqueBlockPCs"`
	// Value-flow facts: blocks whose conditional/switch terminator the
	// analysis decided one-way, and blocks proven unreachable.
	DecidedPCs     []uint32 `json:"decidedBranchPCs,omitempty"`
	UnreachablePCs []uint32 `json:"unreachablePCs,omitempty"`
}

type fileResult struct {
	File   string           `json:"file"`
	OK     bool             `json:"ok"`
	Error  string           `json:"error,omitempty"`
	Report *analysis.Report `json:"report,omitempty"`
	Facts  []methodFacts    `json:"facts,omitempty"`
	// ValueFlow summarizes the whole-program value-flow table (omitted with
	// -no-facts or when the analysis degraded to the claim-free top table).
	ValueFlow *valueflow.Stats `json:"valueflow,omitempty"`
}

// load parses path into a (possibly unlinked) program.
func load(path string) (*classfile.Program, error) {
	switch {
	case strings.HasSuffix(path, ".jtm"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return classfile.Read(f)
	case strings.HasSuffix(path, ".jasm"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return jasm.AssembleUnlinked(string(src))
	default:
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return minijava.Compile(string(src))
	}
}

// facts links the program (verification already passed, so linking errors
// are symbol-resolution problems, reported as such) and extracts the
// dataflow facts per method: the CFG hints plus the value-flow table.
func facts(prog *classfile.Program) ([]methodFacts, *valueflow.Stats, error) {
	if !prog.Linked() {
		if err := prog.Link(); err != nil {
			return nil, nil, err
		}
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		return nil, nil, err
	}
	vf := valueflow.Compute(pcfg)
	hints := analysis.ComputeHintsWithFacts(pcfg, vf)
	var out []methodFacts
	for _, mc := range pcfg.Methods {
		if mc == nil {
			continue
		}
		mf := methodFacts{Method: mc.Method.QName(), Blocks: len(mc.Blocks)}
		for _, b := range mc.Blocks {
			if hints.IsLoopHeader(b.ID) {
				mf.LoopHeaders = append(mf.LoopHeaders, b.StartPC())
			}
			if hints.UniqueSucc[b.ID] != cfg.NoBlock {
				mf.UniqueBlocks = append(mf.UniqueBlocks, b.StartPC())
			}
			if vf.DecidedSucc(b.ID) != cfg.NoBlock {
				mf.DecidedPCs = append(mf.DecidedPCs, b.StartPC())
			}
			if bf := vf.Block(b.ID); bf != nil && !bf.Reachable {
				mf.UnreachablePCs = append(mf.UnreachablePCs, b.StartPC())
			}
		}
		out = append(out, mf)
	}
	var stats *valueflow.Stats
	if !vf.Top() {
		s := vf.Stats()
		stats = &s
	}
	return out, stats, nil
}

func lintFile(w *os.File, path string, jsonOut, wantFacts, strict bool) bool {
	res := fileResult{File: path}
	prog, err := load(path)
	if err != nil {
		res.Error = err.Error()
	} else {
		res.Report = analysis.Verify(prog)
		res.OK = !res.Report.Reject()
		if res.OK && strict && len(res.Report.Warnings()) > 0 {
			// -strict promotes advisory findings (unreachable-block) to
			// failures: dead code in a submitted program is a bug.
			res.OK = false
		}
		if res.OK && wantFacts {
			if fs, vs, err := facts(prog); err != nil {
				res.Error = err.Error()
				res.OK = false
			} else {
				res.Facts = fs
				res.ValueFlow = vs
			}
		}
	}

	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(res)
		return res.OK
	}

	switch {
	case res.Error != "" && res.Report == nil:
		fmt.Fprintf(w, "%s: error: %s\n", path, res.Error)
	case res.Error != "":
		fmt.Fprintf(w, "%s: error: %s\n", path, res.Error)
		printReport(w, path, res.Report)
	default:
		printReport(w, path, res.Report)
	}
	if res.OK {
		fmt.Fprintf(w, "%s: ok\n", path)
		for _, mf := range res.Facts {
			fmt.Fprintf(w, "  %s: %d blocks", mf.Method, mf.Blocks)
			if len(mf.LoopHeaders) > 0 {
				fmt.Fprintf(w, ", loop headers at pc %s", pcList(mf.LoopHeaders))
			}
			if len(mf.UniqueBlocks) > 0 {
				fmt.Fprintf(w, ", single-successor blocks at pc %s", pcList(mf.UniqueBlocks))
			}
			if len(mf.DecidedPCs) > 0 {
				fmt.Fprintf(w, ", decided branches at pc %s", pcList(mf.DecidedPCs))
			}
			if len(mf.UnreachablePCs) > 0 {
				fmt.Fprintf(w, ", unreachable blocks at pc %s", pcList(mf.UnreachablePCs))
			}
			fmt.Fprintln(w)
		}
		if s := res.ValueFlow; s != nil {
			fmt.Fprintf(w, "  value-flow: %d/%d blocks reachable, %d branches decided, %d const slots, %d non-null slots, %d loop headers with invariants\n",
				s.Reachable, s.Blocks, s.Decided, s.IntConsts+s.FloatConsts, s.NonNull, s.LoopHeaders)
		}
	}
	return res.OK
}

func printReport(w *os.File, path string, rep *analysis.Report) {
	for _, f := range rep.Findings {
		sev := "error"
		if f.Warn {
			sev = "warning"
		}
		fmt.Fprintf(w, "%s: %s: %s: pc %d: %s: %s\n", path, sev, f.Method, f.PC, f.Rule, f.Message)
	}
}

func pcList(pcs []uint32) string {
	parts := make([]string, len(pcs))
	for i, pc := range pcs {
		parts[i] = fmt.Sprint(pc)
	}
	return strings.Join(parts, ",")
}
