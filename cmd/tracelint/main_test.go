package main

import (
	"encoding/json"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// run lints one source written to a temp file and returns (ok, output).
func run(t *testing.T, name, src string, jsonOut bool) (bool, string) {
	return runStrict(t, name, src, jsonOut, false)
}

func runStrict(t *testing.T, name, src string, jsonOut, strict bool) (bool, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	ok := lintFile(out, path, jsonOut, true, strict)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return ok, string(data)
}

func TestLintAcceptsAndPrintsFacts(t *testing.T) {
	ok, out := run(t, "prog.mj", `
class Main {
    static void main() {
        int i = 0;
        while (i < 10) { i = i + 1; }
        Sys.printlnInt(i);
    }
}
`, false)
	if !ok {
		t.Fatalf("valid program rejected:\n%s", out)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "loop headers at pc") {
		t.Fatalf("missing facts in output:\n%s", out)
	}
	if !strings.Contains(out, "single-successor blocks") {
		t.Fatalf("missing unique-successor facts:\n%s", out)
	}
}

func TestLintRejectsWithRule(t *testing.T) {
	ok, out := run(t, "bad.jasm", `
.class Main
.method static main ( ) void
    pop
    return
.end
.end
`, false)
	if ok {
		t.Fatalf("stack underflow accepted:\n%s", out)
	}
	if !strings.Contains(out, "stack-underflow") || !strings.Contains(out, "Main.main") {
		t.Fatalf("report missing rule or method:\n%s", out)
	}
}

func TestLintJSONShape(t *testing.T) {
	ok, out := run(t, "bad.jasm", `
.class Main
.method static main ( ) void
    pop
    return
.end
.end
`, true)
	if ok {
		t.Fatal("stack underflow accepted")
	}
	var res struct {
		File   string `json:"file"`
		OK     bool   `json:"ok"`
		Report struct {
			Findings []struct {
				Rule string `json:"rule"`
			} `json:"findings"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.OK || len(res.Report.Findings) != 1 || res.Report.Findings[0].Rule != "stack-underflow" {
		t.Fatalf("unexpected JSON result: %+v", res)
	}
}

func TestLintStrictPromotesUnreachableWarning(t *testing.T) {
	// Dead code after an unconditional goto draws the warn-only
	// unreachable-block finding: accepted by default, rejected under -strict.
	src := `
.class Main
.method static main ( ) void
    goto L
    iconst 1
    pop
    return
L:  return
.end
.end
`
	ok, out := runStrict(t, "dead.jasm", src, false, false)
	if !ok {
		t.Fatalf("warn-only finding rejected without -strict:\n%s", out)
	}
	if !strings.Contains(out, "unreachable-block") {
		t.Fatalf("warning not printed:\n%s", out)
	}
	ok, out = runStrict(t, "dead.jasm", src, false, true)
	if ok {
		t.Fatalf("-strict accepted a program with unreachable-block warnings:\n%s", out)
	}
	if !strings.Contains(out, "unreachable-block") {
		t.Fatalf("strict failure lost the finding:\n%s", out)
	}
	if strings.Contains(out, ": ok") {
		t.Fatalf("strict failure still printed ok:\n%s", out)
	}
}

func TestLintStrictExitCode(t *testing.T) {
	// End-to-end exit-status check through the built binary: 0 without
	// -strict, 1 with it, on the same warning-only input.
	if testing.Short() {
		t.Skip("builds the tracelint binary")
	}
	dir := t.TempDir()
	prog := filepath.Join(dir, "dead.jasm")
	if err := os.WriteFile(prog, []byte(`
.class Main
.method static main ( ) void
    goto L
    iconst 1
    pop
    return
L:  return
.end
.end
`), 0o644); err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(dir, "tracelint")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	if out, err := exec.Command(bin, prog).CombinedOutput(); err != nil {
		t.Fatalf("want exit 0 without -strict, got %v\n%s", err, out)
	}
	out, err := exec.Command(bin, "-strict", prog).CombinedOutput()
	var exitErr *exec.ExitError
	if !errors.As(err, &exitErr) || exitErr.ExitCode() != 1 {
		t.Fatalf("want exit 1 under -strict, got %v\n%s", err, out)
	}
}

func TestLintValueFlowFacts(t *testing.T) {
	// A branch on a known constant: the value-flow dump must report the
	// decided branch, the arm it kills, and the program-level summary.
	ok, out := run(t, "const.jasm", `
.class Main
.method static main ( ) void
.locals 1
    iconst 7
    istore 0
    iload 0
    ifeq DEAD
    return
DEAD:
    return
.end
.end
.entry Main main
`, false)
	if !ok {
		t.Fatalf("valid program rejected:\n%s", out)
	}
	if !strings.Contains(out, "decided branches at pc") {
		t.Fatalf("missing decided-branch facts:\n%s", out)
	}
	if !strings.Contains(out, "unreachable blocks at pc") {
		t.Fatalf("missing value-flow unreachable facts:\n%s", out)
	}
	if !strings.Contains(out, "value-flow:") {
		t.Fatalf("missing value-flow summary:\n%s", out)
	}
}

func TestLintValueFlowJSON(t *testing.T) {
	ok, out := run(t, "const.jasm", `
.class Main
.method static main ( ) void
.locals 1
    iconst 7
    istore 0
    iload 0
    ifeq DEAD
    return
DEAD:
    return
.end
.end
.entry Main main
`, true)
	if !ok {
		t.Fatalf("valid program rejected:\n%s", out)
	}
	var res struct {
		OK    bool `json:"ok"`
		Facts []struct {
			Method         string   `json:"method"`
			DecidedPCs     []uint32 `json:"decidedBranchPCs"`
			UnreachablePCs []uint32 `json:"unreachablePCs"`
		} `json:"facts"`
		ValueFlow *struct {
			Decided     int  `json:"Decided"`
			Unreachable int  `json:"Unreachable"`
			Top         bool `json:"Top"`
		} `json:"valueflow"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if !res.OK || res.ValueFlow == nil {
		t.Fatalf("missing valueflow block: %+v\n%s", res, out)
	}
	if res.ValueFlow.Top || res.ValueFlow.Decided == 0 || res.ValueFlow.Unreachable == 0 {
		t.Fatalf("unexpected valueflow stats: %+v", res.ValueFlow)
	}
	found := false
	for _, mf := range res.Facts {
		if len(mf.DecidedPCs) > 0 && len(mf.UnreachablePCs) > 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no method reported decided+unreachable PCs: %s", out)
	}
}

func TestLintUnlinkableJasmStillReported(t *testing.T) {
	// References a missing method: unlinkable, but the verifier still
	// produces a precise report because the jasm path analyzes unlinked.
	ok, out := run(t, "unlinkable.jasm", `
.class Main
.method static main ( ) void
    invokestatic Missing.run
    return
.end
.end
`, false)
	if ok {
		t.Fatalf("bad ref accepted:\n%s", out)
	}
	if !strings.Contains(out, "bad-ref-index") {
		t.Fatalf("missing bad-ref-index finding:\n%s", out)
	}
}
