package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// run lints one source written to a temp file and returns (ok, output).
func run(t *testing.T, name, src string, jsonOut bool) (bool, string) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	out, err := os.CreateTemp(dir, "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	ok := lintFile(out, path, jsonOut, true)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return ok, string(data)
}

func TestLintAcceptsAndPrintsFacts(t *testing.T) {
	ok, out := run(t, "prog.mj", `
class Main {
    static void main() {
        int i = 0;
        while (i < 10) { i = i + 1; }
        Sys.printlnInt(i);
    }
}
`, false)
	if !ok {
		t.Fatalf("valid program rejected:\n%s", out)
	}
	if !strings.Contains(out, "ok") || !strings.Contains(out, "loop headers at pc") {
		t.Fatalf("missing facts in output:\n%s", out)
	}
	if !strings.Contains(out, "single-successor blocks") {
		t.Fatalf("missing unique-successor facts:\n%s", out)
	}
}

func TestLintRejectsWithRule(t *testing.T) {
	ok, out := run(t, "bad.jasm", `
.class Main
.method static main ( ) void
    pop
    return
.end
.end
`, false)
	if ok {
		t.Fatalf("stack underflow accepted:\n%s", out)
	}
	if !strings.Contains(out, "stack-underflow") || !strings.Contains(out, "Main.main") {
		t.Fatalf("report missing rule or method:\n%s", out)
	}
}

func TestLintJSONShape(t *testing.T) {
	ok, out := run(t, "bad.jasm", `
.class Main
.method static main ( ) void
    pop
    return
.end
.end
`, true)
	if ok {
		t.Fatal("stack underflow accepted")
	}
	var res struct {
		File   string `json:"file"`
		OK     bool   `json:"ok"`
		Report struct {
			Findings []struct {
				Rule string `json:"rule"`
			} `json:"findings"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(out), &res); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, out)
	}
	if res.OK || len(res.Report.Findings) != 1 || res.Report.Findings[0].Rule != "stack-underflow" {
		t.Fatalf("unexpected JSON result: %+v", res)
	}
}

func TestLintUnlinkableJasmStillReported(t *testing.T) {
	// References a missing method: unlinkable, but the verifier still
	// produces a precise report because the jasm path analyzes unlinked.
	ok, out := run(t, "unlinkable.jasm", `
.class Main
.method static main ( ) void
    invokestatic Missing.run
    return
.end
.end
`, false)
	if ok {
		t.Fatalf("bad ref accepted:\n%s", out)
	}
	if !strings.Contains(out, "bad-ref-index") {
		t.Fatalf("missing bad-ref-index finding:\n%s", out)
	}
}
