// Command tracevm runs a program under the trace-cache virtual machine.
//
// The program is a MiniJava source file (.mj), a jasm assembly file (.jasm),
// a serialized module (.jtm), or a built-in workload named with -workload.
//
// Usage:
//
//	tracevm -workload compress -mode trace -threshold 0.97 -delay 64 -stats
//	tracevm -workload soot -events 50   # print the last 50 observability events
//	tracevm -mode profile -dot bcg.dot prog.mj
//	tracevm prog.jasm
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/obs"
)

func main() {
	workloadName := flag.String("workload", "", "run a built-in workload (compress, javac, raytrace, mpegaudio, soot, scimark)")
	mode := flag.String("mode", "trace", "dispatch mode: plain, instr, profile, trace, trace-deploy")
	threshold := flag.Float64("threshold", 0.97, "trace completion threshold (0..1]")
	delay := flag.Int("delay", 64, "start-state delay in executions")
	maxSteps := flag.Int64("maxsteps", 0, "instruction budget (0 = unlimited)")
	showStats := flag.Bool("stats", false, "print execution statistics after the run")
	showTraces := flag.Bool("traces", false, "print the live trace cache contents after the run")
	events := flag.Int("events", 0, "keep the newest N observability events and print them after the run (0 = disabled)")
	dotFile := flag.String("dot", "", "write the branch correlation graph as DOT to this file")
	flag.Parse()

	if err := run(*workloadName, *mode, *threshold, *delay, *maxSteps, *showStats, *showTraces, *events, *dotFile, flag.Args()); err != nil {
		fmt.Fprintf(os.Stderr, "tracevm: %v\n", err)
		os.Exit(1)
	}
}

func parseMode(s string) (repro.Mode, error) {
	switch s {
	case "plain":
		return repro.ModePlain, nil
	case "instr":
		return repro.ModeInstr, nil
	case "profile":
		return repro.ModeProfile, nil
	case "trace":
		return repro.ModeTrace, nil
	case "trace-deploy":
		return repro.ModeTraceDeploy, nil
	}
	return 0, fmt.Errorf("unknown mode %q (plain, instr, profile, trace, trace-deploy)", s)
}

func loadProgram(workloadName string, args []string) (*repro.Program, error) {
	if workloadName != "" {
		src, err := repro.WorkloadSource(workloadName)
		if err != nil {
			return nil, err
		}
		return repro.CompileMiniJava(src)
	}
	if len(args) != 1 {
		return nil, fmt.Errorf("expected one program file or -workload (available: %s)",
			strings.Join(repro.WorkloadNames(), ", "))
	}
	path := args[0]
	switch {
	case strings.HasSuffix(path, ".jtm"):
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return repro.LoadModule(f)
	case strings.HasSuffix(path, ".jasm"):
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return repro.Assemble(string(src))
	default:
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		return repro.CompileMiniJava(string(src))
	}
}

func run(workloadName, modeStr string, threshold float64, delay int, maxSteps int64, showStats, showTraces bool, events int, dotFile string, args []string) error {
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	prog, err := loadProgram(workloadName, args)
	if err != nil {
		return err
	}
	vm, err := repro.NewVM(prog,
		repro.WithMode(mode),
		repro.WithParams(repro.Params{Threshold: threshold, StartDelay: int32(delay)}),
		repro.WithOutput(os.Stdout),
		repro.WithMaxSteps(maxSteps),
		repro.WithEventTrace(events),
	)
	if err != nil {
		return err
	}
	if err := vm.Run(); err != nil {
		return err
	}

	if showStats {
		c := vm.Counters()
		m := vm.Metrics()
		fmt.Fprintf(os.Stderr, "instructions:        %d\n", c.Instrs)
		fmt.Fprintf(os.Stderr, "block dispatches:    %d\n", c.BlockDispatches)
		fmt.Fprintf(os.Stderr, "trace dispatches:    %d\n", c.TraceDispatches)
		fmt.Fprintf(os.Stderr, "traces entered:      %d\n", c.TracesEntered)
		fmt.Fprintf(os.Stderr, "traces completed:    %d\n", c.TracesCompleted)
		fmt.Fprintf(os.Stderr, "avg trace length:    %.2f blocks\n", m.AvgTraceLength)
		fmt.Fprintf(os.Stderr, "coverage:            %.1f%%\n", m.Coverage*100)
		fmt.Fprintf(os.Stderr, "in-cache coverage:   %.1f%%\n", m.CacheCoverage*100)
		fmt.Fprintf(os.Stderr, "completion rate:     %.2f%%\n", m.CompletionRate*100)
		fmt.Fprintf(os.Stderr, "signals:             %d\n", c.Signals)
		fmt.Fprintf(os.Stderr, "traces built:        %d\n", c.TracesBuilt)
		fmt.Fprintf(os.Stderr, "BCG nodes:           %d\n", vm.NumBCGNodes())
	}
	if showTraces {
		for _, t := range vm.Traces() {
			fmt.Fprintf(os.Stderr, "trace %d: %d blocks, p=%.3f, entered %d, completed %d\n",
				t.ID, t.Blocks, t.ExpectedCompletion, t.Entered, t.Completed)
		}
	}
	if events > 0 {
		var enc obs.Encoder
		var buf []byte
		for _, e := range vm.Events(events) {
			buf = enc.AppendText(buf[:0], e)
			fmt.Fprintf(os.Stderr, "%s\n", buf)
		}
	}
	if dotFile != "" {
		if err := os.WriteFile(dotFile, []byte(vm.DumpBCG(2)), 0o644); err != nil {
			return err
		}
	}
	return nil
}
