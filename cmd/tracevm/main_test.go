package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro"
)

func TestParseMode(t *testing.T) {
	cases := map[string]repro.Mode{
		"plain":        repro.ModePlain,
		"instr":        repro.ModeInstr,
		"profile":      repro.ModeProfile,
		"trace":        repro.ModeTrace,
		"trace-deploy": repro.ModeTraceDeploy,
	}
	for s, want := range cases {
		got, err := parseMode(s)
		if err != nil || got != want {
			t.Errorf("parseMode(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := parseMode("warp"); err == nil {
		t.Error("parseMode(warp) succeeded")
	}
}

func TestLoadProgramFromFiles(t *testing.T) {
	dir := t.TempDir()

	mj := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(mj, []byte(`class Main { static void main() { Sys.printlnInt(1); } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadProgram("", []string{mj}); err != nil {
		t.Errorf("load .mj: %v", err)
	}

	jasmFile := filepath.Join(dir, "p.jasm")
	jasmSrc := `
.class Main
.method static main ( ) void
    return
.end
.end
.entry Main main
`
	if err := os.WriteFile(jasmFile, []byte(jasmSrc), 0o644); err != nil {
		t.Fatal(err)
	}
	prog, err := loadProgram("", []string{jasmFile})
	if err != nil {
		t.Fatalf("load .jasm: %v", err)
	}

	jtm := filepath.Join(dir, "p.jtm")
	f, err := os.Create(jtm)
	if err != nil {
		t.Fatal(err)
	}
	if err := repro.SaveModule(f, prog); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := loadProgram("", []string{jtm}); err != nil {
		t.Errorf("load .jtm: %v", err)
	}

	if _, err := loadProgram("compress", nil); err != nil {
		t.Errorf("load workload: %v", err)
	}
	if _, err := loadProgram("", nil); err == nil {
		t.Error("no input accepted")
	}
	if _, err := loadProgram("", []string{filepath.Join(dir, "missing.mj")}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	dir := t.TempDir()
	mj := filepath.Join(dir, "p.mj")
	if err := os.WriteFile(mj, []byte(`class Main { static void main() { Sys.printlnInt(7); } }`), 0o644); err != nil {
		t.Fatal(err)
	}
	dot := filepath.Join(dir, "bcg.dot")
	if err := run("", "trace", 0.97, 64, 0, true, true, 16, dot, []string{mj}); err != nil {
		t.Fatalf("run: %v", err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatalf("dot file: %v", err)
	}
	if len(data) == 0 {
		t.Error("empty DOT output")
	}
	if err := run("", "warp", 0.97, 64, 0, false, false, 0, "", []string{mj}); err == nil {
		t.Error("bad mode accepted")
	}
}
