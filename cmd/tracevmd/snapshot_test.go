package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

func doReq(t *testing.T, method, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestSnapshotEndpointsDisabled: without -snapshot-dir both verbs 404.
func TestSnapshotEndpointsDisabled(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	for _, method := range []string{"GET", "PUT"} {
		resp, _ := doReq(t, method, srv.URL+"/v1/snapshot?workload=soot", nil)
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with persistence disabled: status %d, want 404", method, resp.StatusCode)
		}
	}
}

// TestSnapshotEndpointRoundTrip: run a program, download its learned
// profile, upload it back, and confirm the daemon warm-starts later runs.
// Sharding is off (EpochRuns: -1): with shards on, the warm run would reuse
// the cold run's live shard and never consult the installed snapshot, hiding
// the per-session seeding this test pins.
func TestSnapshotEndpointRoundTrip(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1, SnapshotDir: t.TempDir(), EpochRuns: -1})

	var cold api.RunResponse
	resp, body := doReq(t, "POST", srv.URL+"/v1/run", []byte(`{"workload":"soot","mode":"trace"}`))
	if err := json.Unmarshal(body, &cold); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("seed run: status %d, err %v", resp.StatusCode, err)
	}

	// Download by workload name.
	resp, data := doReq(t, "GET", srv.URL+"/v1/snapshot?workload=soot", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET snapshot: status %d (%s)", resp.StatusCode, data)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "octet-stream") {
		t.Errorf("content type %q", ct)
	}
	if got := resp.Header.Get("X-Tracevm-Schema"); got != snapshot.Schema {
		t.Errorf("schema header %q, want %q", got, snapshot.Schema)
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("downloaded snapshot does not decode: %v", err)
	}
	if err := snap.VerifyKey(cold.Key); err != nil {
		t.Errorf("downloaded snapshot keyed wrong: %v", err)
	}
	if len(snap.Nodes) == 0 {
		t.Error("downloaded snapshot carries no nodes")
	}

	// Download by key is the same bytes.
	resp, byKey := doReq(t, "GET", srv.URL+"/v1/snapshot?key="+cold.Key, nil)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(byKey, data) {
		t.Errorf("by-key download differs: status %d, %d vs %d bytes", resp.StatusCode, len(byKey), len(data))
	}

	// Upload it back.
	resp, body = doReq(t, "PUT", srv.URL+"/v1/snapshot", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("PUT snapshot: status %d (%s)", resp.StatusCode, body)
	}
	var info api.SnapshotInfoResponse
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Schema != api.SchemaSnapshotInfo || info.Key != cold.Key || info.Nodes != len(snap.Nodes) {
		t.Errorf("install info = %+v", info)
	}

	// A later run of the same program is seeded.
	var warm api.RunResponse
	resp, body = doReq(t, "POST", srv.URL+"/v1/run", []byte(`{"workload":"soot","mode":"trace"}`))
	if err := json.Unmarshal(body, &warm); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("warm run: status %d, err %v", resp.StatusCode, err)
	}
	if warm.Counters.SnapshotsLoaded != 1 || warm.Counters.NodesSeededFromSnapshot == 0 {
		t.Errorf("warm run not seeded: loaded=%d seeded=%d",
			warm.Counters.SnapshotsLoaded, warm.Counters.NodesSeededFromSnapshot)
	}
}

// TestSnapshotEndpointErrors covers the refusal paths: bad query, unknown
// workload, nothing stored, garbage upload.
func TestSnapshotEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1, SnapshotDir: t.TempDir()})

	resp, _ := doReq(t, "GET", srv.URL+"/v1/snapshot", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("no query: status %d, want 400", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", srv.URL+"/v1/snapshot?workload=nope", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown workload: status %d, want 404", resp.StatusCode)
	}
	resp, _ = doReq(t, "GET", srv.URL+"/v1/snapshot?key=feedface00000000", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unstored key: status %d, want 404", resp.StatusCode)
	}
	resp, body := doReq(t, "PUT", srv.URL+"/v1/snapshot", []byte("not a snapshot"))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Errorf("garbage upload: status %d (%s), want 422", resp.StatusCode, body)
	}
	var e api.ErrorResponse
	if err := json.Unmarshal(body, &e); err != nil || e.Schema != api.SchemaError {
		t.Errorf("garbage upload error body: %s", body)
	}
}
