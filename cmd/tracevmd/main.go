// Command tracevmd serves the trace-cache virtual machine: a long-lived
// daemon that executes many programs concurrently over a shared program
// registry, with aggregated metrics and an event trace. It is the
// operational face of internal/serve; the wire contract lives in
// internal/api.
//
// Server:
//
//	tracevmd -addr :8077 -workers 8 -queue 64 -timeout 30s \
//	         -max-traces 512 -max-trace-blocks 8192 \
//	         -breaker-churn 8 -breaker-after 3 -breaker-cooldown 30s \
//	         -quarantine-after 3 -events 4096 -debug-addr localhost:8078 \
//	         -snapshot-dir /var/lib/tracevm/snapshots -snapshot-interval 30s
//
// Endpoints (versioned under /v1/; the unversioned paths remain as aliases
// and serve byte-identical bodies):
//
//	POST /v1/run     {"workload":"compress","mode":"trace"} or
//	                 {"source":"class Main {...}","kind":"minijava",...}
//	GET  /v1/stats   aggregated service + execution metrics snapshot
//	GET  /v1/traces  per-program live trace inventory: tier, guard split,
//	                 compiled-dispatch share (sharded profiling only)
//	GET  /v1/metrics Prometheus text exposition of the same snapshot
//	GET  /v1/events  JSON tail of the event ring (?n=256&type=breaker&program=x)
//	GET  /v1/snapshot?workload=x (or ?key=h) learned-profile snapshot download
//	PUT  /v1/snapshot binary snapshot upload: pre-warm a program before traffic
//	GET  /v1/healthz liveness plus queue depth
//	GET  /v1/readyz  readiness: healthy / degraded (200), draining (503)
//
// -debug-addr serves net/http/pprof on a separate listener so profiling
// endpoints never share the public address.
//
// Load generator (drives a running daemon):
//
//	tracevmd -loadgen -addr localhost:8077 -n 8 -requests 64 -workloads compress,soot -retries 5
//
// Loadgen flags: -addr is the daemon, -n the concurrent clients, -requests
// the total request count (0 = 2x -n), -workloads the comma-separated mix
// (default: all built-ins; the first name is the skew/hot-key favourite),
// -mode the dispatch mode, -retries the backpressure backoff attempts.
// Popularity is drawn per request from a zipf distribution with exponent
// -loadgen-skew (default 1.07, the classic web-traffic skew; <= 1 falls
// back to uniform round-robin); -loadgen-hot additionally sends that
// fraction of requests straight to the first workload, -loadgen-writes runs
// only that fraction profiled (the rest plain), and -loadgen-seed fixes the
// random draws for reproducible runs.
//
// Traffic record/replay (tracevm/replay/v1 logs, see internal/replay):
//
//	tracevmd -addr :8077 -record /var/lib/tracevm/traffic      # record; commit at drain
//	tracevmd -loadgen -addr localhost:8077 -loadgen-record storm.trlog
//	tracevmd -replay storm.trlog -addr localhost:8077 -replay-pace 1
//
// -record captures every submission the server is offered (including
// backpressure-refused requests) and commits a timestamped .trlog into the
// directory at drain; -loadgen-record saves the generated stream directly.
// -replay re-offers a log against a running daemon with -replay-pace
// scaling the recorded arrival gaps (1 as recorded, 0 max speed) and
// -replay-inflight bounding outstanding requests, then exits non-zero if
// any replayed request failed.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/replay"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address (server) or daemon address (loadgen)")
		debugAddr = flag.String("debug-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
		workers   = flag.Int("workers", 0, "concurrent session workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "pending request queue depth (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 0, "default per-request timeout (0 = none)")
		maxSteps  = flag.Int64("maxsteps", 0, "hard per-request instruction cap (0 = unlimited)")
		events    = flag.Int("events", 4096, "event trace ring capacity (0 = disabled)")
		loadgen   = flag.Bool("loadgen", false, "run as load-generator client against -addr")
		conc      = flag.Int("n", 4, "loadgen: concurrent client connections")
		requests  = flag.Int("requests", 0, "loadgen: total requests (0 = 2x -n)")
		workloads = flag.String("workloads", "", "loadgen: comma-separated workload names (default: all)")
		modeStr   = flag.String("mode", "trace", "loadgen: dispatch mode: plain, instr, profile, trace, trace-deploy")
		retries   = flag.Int("retries", 5, "loadgen: backoff attempts per request on backpressure (1 = no retry)")
		lgSkew    = flag.Float64("loadgen-skew", 1.07, "loadgen: zipf exponent of the program-popularity draw; the first workload is the most popular (<= 1 = uniform round-robin)")
		lgHot     = flag.Float64("loadgen-hot", 0, "loadgen: fraction of requests sent straight to the first workload (a hot key), on top of the skewed draw")
		lgWrites  = flag.Float64("loadgen-writes", 0, "loadgen: fraction of requests run in -mode; the rest run plain (0 or 1 = all in -mode)")
		lgSeed    = flag.Uint64("loadgen-seed", 1, "loadgen: seed of the skew/hot/writes draws")

		maxTraces   = flag.Int("max-traces", 512, "per-session live trace budget (0 = unbounded)")
		maxTrBlocks = flag.Int("max-trace-blocks", 8192, "per-session cached trace block budget (0 = unbounded)")
		compileTr   = flag.Bool("compile-traces", false, "enable tier-2 execution: hot traces compile to superinstruction form")
		tierUp      = flag.Int64("tier-up", 0, "trace dispatch count that promotes a hot trace to its compiled form (0 = 16 default)")
		tierDown    = flag.Int64("tier-down", 0, "compiled guard-exit count that demotes a trace back to tier 1 (0 = 8 default)")
		brkChurn    = flag.Float64("breaker-churn", 8, "churn breaker threshold in trace build+retire events per 1k dispatches (0 = disabled)")
		brkAfter    = flag.Int("breaker-after", 3, "consecutive churny runs before the breaker opens")
		brkCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker demotes a program before probing")
		quarAfter   = flag.Int("quarantine-after", 3, "VM panics before a program is quarantined (-1 = disabled)")
		noVerify    = flag.Bool("no-verify", false, "skip bytecode verification of submitted sources")

		snapDir      = flag.String("snapshot-dir", "", "profile snapshot directory; warm-starts known programs and persists learned state (empty = disabled)")
		snapInterval = flag.Duration("snapshot-interval", 0, "coalescing snapshot writer commit period (0 = 30s default)")
		snapNet      = flag.Int64("snapshot-net", 0, "per-program learning delta that forces an early snapshot commit (0 = 512 default)")
		epochRuns    = flag.Int64("epoch-runs", 0, "profiled runs of a program between epoch merges of its per-worker profiler shards (0 = 32 default, negative = isolated per-request profilers)")

		recordDir  = flag.String("record", "", "server: record every submission and commit the traffic log to this directory at shutdown")
		replayFile = flag.String("replay", "", "replay the traffic log at this path against the daemon at -addr, then exit")
		replayPace = flag.Float64("replay-pace", 1, "replay: arrival-gap multiplier (1 = as recorded, 0 = max speed, 0.5 = double speed)")
		replayConc = flag.Int("replay-inflight", 0, "replay: max concurrently outstanding requests (0 = 16 default)")
		lgRecord   = flag.String("loadgen-record", "", "loadgen: also write the offered request stream as a traffic log to this path")
	)
	flag.Parse()

	var err error
	switch {
	case *replayFile != "":
		err = runReplay(*addr, *replayFile, *replayPace, *replayConc)
	case *loadgen:
		err = runLoadgen(*addr, *conc, *requests, *workloads, *modeStr, *retries,
			*lgSkew, *lgHot, *lgWrites, *lgSeed, *lgRecord)
	default:
		err = runServer(*addr, *debugAddr, *recordDir, serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			DefaultTimeout: *timeout,
			MaxSteps:       *maxSteps,
			EventTrace:     *events,
			TraceCache: core.Config{
				MaxTraces:          *maxTraces,
				MaxCachedBlocks:    *maxTrBlocks,
				CompileTraces:      *compileTr,
				TierUpDispatches:   *tierUp,
				TierDownGuardExits: *tierDown,
			},
			Breaker: serve.BreakerConfig{
				ChurnPerK: *brkChurn,
				TripAfter: *brkAfter,
				Cooldown:  *brkCooldown,
			},
			QuarantineAfter:  *quarAfter,
			NoVerify:         *noVerify,
			SnapshotDir:      *snapDir,
			SnapshotInterval: *snapInterval,
			SnapshotNet:      *snapNet,
			EpochRuns:        *epochRuns,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracevmd: %v\n", err)
		os.Exit(1)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// newMux builds the daemon's HTTP surface over a service. Every route is
// registered under /v1/ and, for compatibility with pre-versioning clients,
// under its original unversioned path; both share one handler, so the
// bodies are byte-identical.
func newMux(svc *serve.Service) *http.ServeMux {
	mux := http.NewServeMux()
	handle := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" "+path, h)
	}

	handle("POST", "/run", func(w http.ResponseWriter, r *http.Request) {
		var wire api.RunRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&wire); err != nil {
			writeJSON(w, http.StatusBadRequest, api.NewError("bad JSON: "+err.Error()))
			return
		}
		req, err := wire.ToServe()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, api.NewError(err.Error()))
			return
		}
		resp, err := svc.Do(r.Context(), req)
		if err != nil {
			switch {
			case errors.Is(err, serve.ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, api.NewError(err.Error()))
			case errors.Is(err, serve.ErrQuarantined):
				// The program is locked out until the daemon restarts.
				writeJSON(w, http.StatusLocked, api.NewError(err.Error()))
			case errors.Is(err, serve.ErrClosed):
				writeJSON(w, http.StatusServiceUnavailable, api.NewError(err.Error()))
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				writeJSON(w, http.StatusGatewayTimeout, api.NewError(err.Error()))
			default:
				// Compile and runtime errors are the client's fault. A
				// verifier rejection additionally ships the structured
				// report so clients can point at the offending instruction.
				e := api.NewError(err.Error())
				var verr *analysis.VerifyError
				if errors.As(err, &verr) {
					e.Report = verr.Report
				}
				writeJSON(w, http.StatusUnprocessableEntity, e)
			}
			return
		}
		writeJSON(w, http.StatusOK, api.RunResponseFrom(resp))
	})

	handle("GET", "/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.StatsResponse{
			Schema:   api.SchemaStats,
			Snapshot: svc.Stats(),
		})
	})

	handle("GET", "/traces", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, api.TracesResponseFrom(svc.TraceInventory()))
	})

	handle("GET", "/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = api.WriteMetrics(w, svc.Stats())
	})

	handle("GET", "/events", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query()
		n := 256
		if s := q.Get("n"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v < 1 {
				writeJSON(w, http.StatusBadRequest, api.NewError("bad n: want a positive integer"))
				return
			}
			n = v
		}
		typ := obs.EvNone // all types
		if s := q.Get("type"); s != "" {
			t, ok := obs.ParseEventType(s)
			if !ok {
				writeJSON(w, http.StatusBadRequest, api.NewError(
					"unknown event type "+strconv.Quote(s)+" (one of "+strings.Join(obs.EventTypeNames(), ", ")+")"))
				return
			}
			typ = t
		}
		evs := svc.Events(n, typ, q.Get("program"))
		if evs == nil {
			evs = []obs.Event{}
		}
		resp := api.EventsResponse{Schema: api.SchemaEvents, Events: evs}
		if ring := svc.EventRing(); ring != nil {
			resp.Total = ring.Total()
			resp.Held = ring.Len()
			resp.Cap = ring.Cap()
		}
		writeJSON(w, http.StatusOK, resp)
	})

	// GET /v1/snapshot?workload=<name> (or ?key=<hash>) downloads the
	// program's learned-profile snapshot in its binary format; PUT uploads
	// one, pre-warming the program for every later request of the same
	// content hash. Both 404 the feature off when -snapshot-dir is unset.
	handle("GET", "/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !svc.SnapshotEnabled() {
			writeJSON(w, http.StatusNotFound, api.NewError("snapshot persistence disabled (start with -snapshot-dir)"))
			return
		}
		q := r.URL.Query()
		key := q.Get("key")
		if wl := q.Get("workload"); key == "" && wl != "" {
			comp, err := svc.Registry().Workload(wl)
			if err != nil {
				writeJSON(w, http.StatusNotFound, api.NewError(err.Error()))
				return
			}
			key = comp.Key
		}
		if key == "" {
			writeJSON(w, http.StatusBadRequest, api.NewError("need ?workload= or ?key="))
			return
		}
		data, ok := svc.SnapshotBytes(key)
		if !ok {
			writeJSON(w, http.StatusNotFound, api.NewError("no snapshot stored for "+strconv.Quote(key)))
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Tracevm-Schema", snapshot.Schema)
		_, _ = w.Write(data)
	})

	handle("PUT", "/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if !svc.SnapshotEnabled() {
			writeJSON(w, http.StatusNotFound, api.NewError("snapshot persistence disabled (start with -snapshot-dir)"))
			return
		}
		data, err := io.ReadAll(io.LimitReader(r.Body, 32<<20))
		if err != nil {
			writeJSON(w, http.StatusBadRequest, api.NewError("reading body: "+err.Error()))
			return
		}
		snap, err := svc.InstallSnapshot(data)
		if err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, api.NewError(err.Error()))
			return
		}
		writeJSON(w, http.StatusOK, api.SnapshotInfoResponse{
			Schema:  api.SchemaSnapshotInfo,
			Program: snap.Program,
			Key:     snap.ProgramKey,
			Nodes:   len(snap.Nodes),
			Traces:  len(snap.Traces),
		})
	})

	handle("GET", "/healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Stats()
		writeJSON(w, http.StatusOK, api.HealthResponse{
			Schema:     api.SchemaHealth,
			Status:     "ok",
			Workers:    snap.Workers,
			QueueDepth: snap.QueueDepth,
		})
	})

	handle("GET", "/readyz", func(w http.ResponseWriter, r *http.Request) {
		code, body := readiness(svc.Stats())
		writeJSON(w, code, body)
	})

	return mux
}

// newDebugMux serves net/http/pprof explicitly (no DefaultServeMux
// registration side effects).
func newDebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// readiness classifies the service for orchestrators: "healthy" and
// "degraded" both accept traffic (200); "draining" tells the balancer to
// stop sending (503). Degraded means the service is up but some governor
// has engaged — open breakers, quarantined programs, or a queue running at
// three quarters of capacity.
func readiness(snap serve.Snapshot) (int, api.ReadyResponse) {
	status := "healthy"
	code := http.StatusOK
	switch {
	case snap.Draining:
		status, code = "draining", http.StatusServiceUnavailable
	case snap.OpenBreakers > 0 || snap.QuarantinedPrograms > 0 ||
		(snap.QueueCap > 0 && snap.QueueDepth*4 >= snap.QueueCap*3):
		status = "degraded"
	}
	return code, api.ReadyResponse{
		Schema:              api.SchemaReady,
		Status:              status,
		QueueDepth:          snap.QueueDepth,
		QueueCap:            snap.QueueCap,
		OpenBreakers:        snap.OpenBreakers,
		HalfOpenBreakers:    snap.HalfOpenBreakers,
		QuarantinedPrograms: snap.QuarantinedPrograms,
	}
}

// serveListener runs the HTTP server on l until ctx is cancelled, then
// drains: in-flight HTTP requests get up to grace to finish, and the
// execution service finishes queued work before Close returns.
func serveListener(ctx context.Context, l net.Listener, svc *serve.Service, grace time.Duration) error {
	srv := &http.Server{
		Handler: newMux(svc),
		// A client that trickles its headers or body must not pin a
		// connection forever (slowloris); execution time is governed by the
		// service's own deadlines, not the HTTP read window, so reads are
		// bounded generously and idle keep-alives are reaped.
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

func runServer(addr, debugAddr, recordDir string, cfg serve.Config) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	if debugAddr != "" {
		dl, err := net.Listen("tcp", debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		dsrv := &http.Server{
			Handler:           newDebugMux(),
			ReadHeaderTimeout: 10 * time.Second,
			ReadTimeout:       2 * time.Minute,
			IdleTimeout:       2 * time.Minute,
		}
		go func() { _ = dsrv.Serve(dl) }()
		defer dsrv.Close()
		fmt.Fprintf(os.Stderr, "tracevmd: pprof on %s\n", dl.Addr())
	}
	var rec *replay.Recorder
	if recordDir != "" {
		if err := os.MkdirAll(recordDir, 0o755); err != nil {
			return fmt.Errorf("record dir: %w", err)
		}
		rec = replay.NewRecorder()
		cfg.Recorder = rec
	}
	svc := serve.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "tracevmd: serving on %s\n", l.Addr())
	if err := serveListener(ctx, l, svc, 30*time.Second); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if rec != nil && rec.Len() > 0 {
		path := filepath.Join(recordDir,
			"traffic-"+time.Now().UTC().Format("20060102T150405Z")+replay.FileExt)
		if err := rec.Save(path); err != nil {
			return fmt.Errorf("saving traffic log: %w", err)
		}
		fmt.Fprintf(os.Stderr, "tracevmd: recorded %d requests to %s\n", rec.Len(), path)
	}
	return nil
}

// runReplay re-offers a recorded traffic log against a running daemon, the
// client-side mirror of serve.(*Service).Replay.
func runReplay(addr, path string, pace float64, inflight int) error {
	l, err := replay.Load(path)
	if err != nil {
		return err
	}
	baseURL := addr
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	run := httpRunner(http.DefaultClient, baseURL)
	fmt.Fprintf(os.Stderr, "tracevmd: replaying %d requests (%d programs, recorded span %v) against %s\n",
		len(l.Records), len(l.Programs()), l.Duration().Round(time.Millisecond), baseURL)
	res, err := replay.Play(context.Background(), l, replay.PlayOptions{Scale: pace, MaxInFlight: inflight},
		func(ctx context.Context, rec replay.Record) error {
			_, rerr := run(ctx, serve.RequestFromRecord(rec))
			return rerr
		})
	if err != nil {
		return err
	}
	fmt.Printf("submitted:   %d\n", res.Submitted)
	fmt.Printf("completed:   %d\n", res.Completed)
	fmt.Printf("failed:      %d\n", res.Failed)
	fmt.Printf("wall:        %v\n", res.Wall.Round(time.Millisecond))
	for _, e := range res.Errors {
		fmt.Printf("error:       %s\n", e)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d replayed requests failed", res.Failed, res.Submitted)
	}
	return nil
}

// httpRunner adapts POST /v1/run into a serve.Runner for the load generator.
func httpRunner(client *http.Client, baseURL string) serve.Runner {
	return func(ctx context.Context, req serve.Request) (*serve.Response, error) {
		wire := api.RunRequest{
			Workload:  req.Workload,
			Source:    req.Source,
			Mode:      req.Mode.String(),
			Threshold: req.Threshold,
			Delay:     req.StartDelay,
			Decay:     req.DecayInterval,
			MaxSteps:  req.MaxSteps,
			TimeoutMs: req.Timeout.Milliseconds(),
		}
		if req.Kind == serve.KindJasm {
			wire.Kind = "jasm"
		}
		body, err := json.Marshal(wire)
		if err != nil {
			return nil, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := client.Do(hreq)
		if err != nil {
			return nil, err
		}
		defer hresp.Body.Close()
		if hresp.StatusCode == http.StatusTooManyRequests {
			_, _ = io.Copy(io.Discard, hresp.Body)
			return nil, serve.ErrQueueFull
		}
		if hresp.StatusCode != http.StatusOK {
			var e api.ErrorResponse
			_ = json.NewDecoder(hresp.Body).Decode(&e)
			return nil, fmt.Errorf("HTTP %d: %s", hresp.StatusCode, e.Error)
		}
		var wireResp api.RunResponse
		if err := json.NewDecoder(hresp.Body).Decode(&wireResp); err != nil {
			return nil, err
		}
		return &serve.Response{
			Output:   wireResp.Output,
			Counters: wireResp.Counters,
		}, nil
	}
}

func runLoadgen(addr string, conc, requests int, workloadsCSV, modeStr string, retries int,
	skew, hot, writes float64, seed uint64, recordPath string) error {
	mode, err := api.ParseMode(modeStr)
	if err != nil {
		return err
	}
	baseURL := addr
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	var workloads []string
	if workloadsCSV != "" {
		workloads = strings.Split(workloadsCSV, ",")
	}
	cfg := serve.LoadGenConfig{
		Concurrency: conc,
		Requests:    requests,
		Workloads:   workloads,
		Mode:        mode,
		Skew:        skew,
		HotRatio:    hot,
		WriteFrac:   writes,
		Seed:        seed,
	}
	if retries > 1 {
		cfg.Retry = &serve.Backoff{Attempts: retries, Seed: seed}
	}
	if recordPath != "" {
		cfg.Recorder = replay.NewRecorder()
	}
	res := serve.RunLoadGen(context.Background(), cfg, httpRunner(http.DefaultClient, baseURL))
	if cfg.Recorder != nil {
		if err := cfg.Recorder.Save(recordPath); err != nil {
			return fmt.Errorf("saving traffic log: %w", err)
		}
		fmt.Fprintf(os.Stderr, "tracevmd: recorded %d requests to %s\n", cfg.Recorder.Len(), recordPath)
	}
	fmt.Printf("requests:    %d\n", res.Requests)
	fmt.Printf("completed:   %d\n", res.Completed)
	fmt.Printf("failed:      %d (rejected %d)\n", res.Failed, res.Rejected)
	fmt.Printf("retries:     %d\n", res.Retries)
	fmt.Printf("wall:        %v\n", res.Wall)
	fmt.Printf("throughput:  %.2f req/s\n", res.Throughput)
	fmt.Printf("instrs:      %d (%.1f M/s)\n", res.TotalInstrs,
		float64(res.TotalInstrs)/1e6/res.Wall.Seconds())
	for _, e := range res.Errors {
		fmt.Printf("error:       %s\n", e)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Failed, res.Requests)
	}
	return nil
}
