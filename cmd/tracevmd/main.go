// Command tracevmd serves the trace-cache virtual machine: a long-lived
// daemon that executes many programs concurrently over a shared program
// registry, with aggregated metrics. It is the operational face of
// internal/serve.
//
// Server:
//
//	tracevmd -addr :8077 -workers 8 -queue 64 -timeout 30s \
//	         -max-traces 512 -max-trace-blocks 8192 \
//	         -breaker-churn 8 -breaker-after 3 -breaker-cooldown 30s \
//	         -quarantine-after 3
//
// Endpoints:
//
//	POST /run     {"workload":"compress","mode":"trace"} or
//	              {"source":"class Main {...}","kind":"minijava",...}
//	GET  /stats   aggregated service + execution metrics snapshot
//	GET  /healthz liveness plus queue depth
//	GET  /readyz  readiness: healthy / degraded (200), draining (503)
//
// Load generator (drives a running daemon):
//
//	tracevmd -loadgen -addr localhost:8077 -n 8 -requests 64 -workloads compress,soot -retries 5
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stats"
)

func main() {
	var (
		addr      = flag.String("addr", ":8077", "listen address (server) or daemon address (loadgen)")
		workers   = flag.Int("workers", 0, "concurrent session workers (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 0, "pending request queue depth (0 = 4x workers)")
		timeout   = flag.Duration("timeout", 0, "default per-request timeout (0 = none)")
		maxSteps  = flag.Int64("maxsteps", 0, "hard per-request instruction cap (0 = unlimited)")
		loadgen   = flag.Bool("loadgen", false, "run as load-generator client against -addr")
		conc      = flag.Int("n", 4, "loadgen: concurrent client connections")
		requests  = flag.Int("requests", 0, "loadgen: total requests (0 = 2x -n)")
		workloads = flag.String("workloads", "", "loadgen: comma-separated workload names (default: all)")
		modeStr   = flag.String("mode", "trace", "loadgen: dispatch mode: plain, instr, profile, trace, trace-deploy")
		retries   = flag.Int("retries", 5, "loadgen: backoff attempts per request on backpressure (1 = no retry)")

		maxTraces   = flag.Int("max-traces", 512, "per-session live trace budget (0 = unbounded)")
		maxTrBlocks = flag.Int("max-trace-blocks", 8192, "per-session cached trace block budget (0 = unbounded)")
		brkChurn    = flag.Float64("breaker-churn", 8, "churn breaker threshold in trace build+retire events per 1k dispatches (0 = disabled)")
		brkAfter    = flag.Int("breaker-after", 3, "consecutive churny runs before the breaker opens")
		brkCooldown = flag.Duration("breaker-cooldown", 30*time.Second, "how long an open breaker demotes a program before probing")
		quarAfter   = flag.Int("quarantine-after", 3, "VM panics before a program is quarantined (-1 = disabled)")
		noVerify    = flag.Bool("no-verify", false, "skip bytecode verification of submitted sources")
	)
	flag.Parse()

	var err error
	if *loadgen {
		err = runLoadgen(*addr, *conc, *requests, *workloads, *modeStr, *retries)
	} else {
		err = runServer(*addr, serve.Config{
			Workers:        *workers,
			QueueDepth:     *queue,
			DefaultTimeout: *timeout,
			MaxSteps:       *maxSteps,
			TraceCache: core.Config{
				MaxTraces:       *maxTraces,
				MaxCachedBlocks: *maxTrBlocks,
			},
			Breaker: serve.BreakerConfig{
				ChurnPerK: *brkChurn,
				TripAfter: *brkAfter,
				Cooldown:  *brkCooldown,
			},
			QuarantineAfter: *quarAfter,
			NoVerify:        *noVerify,
		})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracevmd: %v\n", err)
		os.Exit(1)
	}
}

var modeNames = map[string]core.Mode{
	"plain":        core.ModePlain,
	"instr":        core.ModeInstr,
	"profile":      core.ModeProfile,
	"trace":        core.ModeTrace,
	"trace-deploy": core.ModeTraceDeploy,
}

func parseMode(s string) (core.Mode, error) {
	if s == "" {
		return core.ModeTrace, nil
	}
	if m, ok := modeNames[s]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("unknown mode %q (plain, instr, profile, trace, trace-deploy)", s)
}

// runRequest is the wire form of one execution order.
type runRequest struct {
	Workload  string  `json:"workload,omitempty"`
	Source    string  `json:"source,omitempty"`
	Kind      string  `json:"kind,omitempty"` // "minijava" (default) or "jasm"
	Mode      string  `json:"mode,omitempty"` // default "trace"
	Threshold float64 `json:"threshold,omitempty"`
	Delay     int32   `json:"delay,omitempty"`
	Decay     uint32  `json:"decay,omitempty"`
	MaxSteps  int64   `json:"maxSteps,omitempty"`
	TimeoutMs int64   `json:"timeoutMs,omitempty"`
}

func (r runRequest) toServe() (serve.Request, error) {
	mode, err := parseMode(r.Mode)
	if err != nil {
		return serve.Request{}, err
	}
	var kind serve.SourceKind
	switch r.Kind {
	case "", "minijava":
		kind = serve.KindMiniJava
	case "jasm":
		kind = serve.KindJasm
	default:
		return serve.Request{}, fmt.Errorf("unknown source kind %q (minijava, jasm)", r.Kind)
	}
	return serve.Request{
		Workload:      r.Workload,
		Source:        r.Source,
		Kind:          kind,
		Mode:          mode,
		Threshold:     r.Threshold,
		StartDelay:    r.Delay,
		DecayInterval: r.Decay,
		MaxSteps:      r.MaxSteps,
		Timeout:       time.Duration(r.TimeoutMs) * time.Millisecond,
	}, nil
}

// runResponse is the wire form of one completed run.
type runResponse struct {
	Program   string  `json:"program"`
	Key       string  `json:"key"`
	Mode      string  `json:"mode"`
	Output    string  `json:"output"`
	Counters  any     `json:"counters"`
	Metrics   any     `json:"metrics"`
	NumTraces int     `json:"numTraces"`
	BCGNodes  int     `json:"bcgNodes"`
	Cached    int     `json:"cachedBlocks"`
	Demoted   bool    `json:"demoted,omitempty"`
	WallMs    float64 `json:"wallMs"`
}

type errResponse struct {
	Error string `json:"error"`
	// Report carries the structured verification findings when the program
	// was rejected by the bytecode verifier.
	Report *analysis.Report `json:"report,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// newMux builds the daemon's HTTP surface over a service.
func newMux(svc *serve.Service) *http.ServeMux {
	mux := http.NewServeMux()

	mux.HandleFunc("POST /run", func(w http.ResponseWriter, r *http.Request) {
		var wire runRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&wire); err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: "bad JSON: " + err.Error()})
			return
		}
		req, err := wire.toServe()
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errResponse{Error: err.Error()})
			return
		}
		resp, err := svc.Do(r.Context(), req)
		if err != nil {
			switch {
			case errors.Is(err, serve.ErrQueueFull):
				w.Header().Set("Retry-After", "1")
				writeJSON(w, http.StatusTooManyRequests, errResponse{Error: err.Error()})
			case errors.Is(err, serve.ErrQuarantined):
				// The program is locked out until the daemon restarts.
				writeJSON(w, http.StatusLocked, errResponse{Error: err.Error()})
			case errors.Is(err, serve.ErrClosed):
				writeJSON(w, http.StatusServiceUnavailable, errResponse{Error: err.Error()})
			case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
				writeJSON(w, http.StatusGatewayTimeout, errResponse{Error: err.Error()})
			default:
				// Compile and runtime errors are the client's fault. A
				// verifier rejection additionally ships the structured
				// report so clients can point at the offending instruction.
				resp := errResponse{Error: err.Error()}
				var verr *analysis.VerifyError
				if errors.As(err, &verr) {
					resp.Report = verr.Report
				}
				writeJSON(w, http.StatusUnprocessableEntity, resp)
			}
			return
		}
		writeJSON(w, http.StatusOK, runResponse{
			Program:   resp.Program,
			Key:       resp.Key,
			Mode:      resp.Mode.String(),
			Output:    resp.Output,
			Counters:  resp.Counters,
			Metrics:   resp.Metrics,
			NumTraces: resp.NumTraces,
			BCGNodes:  resp.BCGNodes,
			Cached:    resp.CachedBlocks,
			Demoted:   resp.Demoted,
			WallMs:    float64(resp.Wall) / float64(time.Millisecond),
		})
	})

	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, svc.Stats())
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		snap := svc.Stats()
		writeJSON(w, http.StatusOK, map[string]any{
			"status":     "ok",
			"workers":    snap.Workers,
			"queueDepth": snap.QueueDepth,
		})
	})

	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		code, body := readiness(svc.Stats())
		writeJSON(w, code, body)
	})

	return mux
}

// readiness classifies the service for orchestrators: "healthy" and
// "degraded" both accept traffic (200); "draining" tells the balancer to
// stop sending (503). Degraded means the service is up but some governor
// has engaged — open breakers, quarantined programs, or a queue running at
// three quarters of capacity.
func readiness(snap serve.Snapshot) (int, map[string]any) {
	status := "healthy"
	code := http.StatusOK
	switch {
	case snap.Draining:
		status, code = "draining", http.StatusServiceUnavailable
	case snap.OpenBreakers > 0 || snap.QuarantinedPrograms > 0 ||
		(snap.QueueCap > 0 && snap.QueueDepth*4 >= snap.QueueCap*3):
		status = "degraded"
	}
	return code, map[string]any{
		"status":              status,
		"queueDepth":          snap.QueueDepth,
		"queueCap":            snap.QueueCap,
		"openBreakers":        snap.OpenBreakers,
		"halfOpenBreakers":    snap.HalfOpenBreakers,
		"quarantinedPrograms": snap.QuarantinedPrograms,
	}
}

// serveListener runs the HTTP server on l until ctx is cancelled, then
// drains: in-flight HTTP requests get up to grace to finish, and the
// execution service finishes queued work before Close returns.
func serveListener(ctx context.Context, l net.Listener, svc *serve.Service, grace time.Duration) error {
	srv := &http.Server{Handler: newMux(svc)}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(l) }()
	select {
	case err := <-errc:
		svc.Close()
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	err := srv.Shutdown(shutdownCtx)
	svc.Close()
	if err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	return nil
}

func runServer(addr string, cfg serve.Config) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	svc := serve.New(cfg)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "tracevmd: serving on %s\n", l.Addr())
	if err := serveListener(ctx, l, svc, 30*time.Second); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// httpRunner adapts POST /run into a serve.Runner for the load generator.
func httpRunner(client *http.Client, baseURL string) serve.Runner {
	return func(ctx context.Context, req serve.Request) (*serve.Response, error) {
		wire := runRequest{
			Workload: req.Workload,
			Source:   req.Source,
			Mode:     req.Mode.String(),
			MaxSteps: req.MaxSteps,
		}
		if req.Kind == serve.KindJasm {
			wire.Kind = "jasm"
		}
		body, err := json.Marshal(wire)
		if err != nil {
			return nil, err
		}
		hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/run", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		hreq.Header.Set("Content-Type", "application/json")
		hresp, err := client.Do(hreq)
		if err != nil {
			return nil, err
		}
		defer hresp.Body.Close()
		if hresp.StatusCode == http.StatusTooManyRequests {
			_, _ = io.Copy(io.Discard, hresp.Body)
			return nil, serve.ErrQueueFull
		}
		if hresp.StatusCode != http.StatusOK {
			var e errResponse
			_ = json.NewDecoder(hresp.Body).Decode(&e)
			return nil, fmt.Errorf("HTTP %d: %s", hresp.StatusCode, e.Error)
		}
		var wireResp struct {
			Output   string `json:"output"`
			Counters struct {
				Instrs int64 `json:"Instrs"`
			} `json:"counters"`
		}
		if err := json.NewDecoder(hresp.Body).Decode(&wireResp); err != nil {
			return nil, err
		}
		resp := &serve.Response{
			Output:   wireResp.Output,
			Counters: stats.Counters{Instrs: wireResp.Counters.Instrs},
		}
		return resp, nil
	}
}

func runLoadgen(addr string, conc, requests int, workloadsCSV, modeStr string, retries int) error {
	mode, err := parseMode(modeStr)
	if err != nil {
		return err
	}
	baseURL := addr
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	baseURL = strings.TrimSuffix(baseURL, "/")
	var workloads []string
	if workloadsCSV != "" {
		workloads = strings.Split(workloadsCSV, ",")
	}
	cfg := serve.LoadGenConfig{
		Concurrency: conc,
		Requests:    requests,
		Workloads:   workloads,
		Mode:        mode,
	}
	if retries > 1 {
		cfg.Retry = &serve.Backoff{Attempts: retries}
	}
	res := serve.RunLoadGen(context.Background(), cfg, httpRunner(http.DefaultClient, baseURL))
	fmt.Printf("requests:    %d\n", res.Requests)
	fmt.Printf("completed:   %d\n", res.Completed)
	fmt.Printf("failed:      %d (rejected %d)\n", res.Failed, res.Rejected)
	fmt.Printf("retries:     %d\n", res.Retries)
	fmt.Printf("wall:        %v\n", res.Wall)
	fmt.Printf("throughput:  %.2f req/s\n", res.Throughput)
	fmt.Printf("instrs:      %d (%.1f M/s)\n", res.TotalInstrs,
		float64(res.TotalInstrs)/1e6/res.Wall.Seconds())
	for _, e := range res.Errors {
		fmt.Printf("error:       %s\n", e)
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d requests failed", res.Failed, res.Requests)
	}
	return nil
}
