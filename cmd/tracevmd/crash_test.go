package main

// Supervisor crash-recovery tests: these build the real daemon binary, drive
// it over HTTP with the committed storm fixture, kill it without warning
// mid-storm, restart it against the same state directory, and assert the
// restarted daemon recovers — readiness green, profiles warm-seeded from the
// snapshots the dead process committed, and a full replay reproducing the
// crash-free run's per-program counters. They are the closest thing in the
// tree to an operator's actual bad day.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"repro/internal/faultinject/crash"
	"repro/internal/replay"
	"repro/internal/serve"
	"repro/internal/stats"
)

// daemonBin builds the tracevmd binary once per test-process and returns its
// path. The binary outlives any single test, so it lives in its own temp dir
// removed by the last finished test's cleanup via reference counting — or,
// simpler, leaked to the OS temp cleaner; `go test` already leaves per-run
// build artifacts there.
var daemonBin = sync.OnceValues(func() (string, error) {
	dir, err := os.MkdirTemp("", "tracevmd-crash-*")
	if err != nil {
		return "", err
	}
	bin := filepath.Join(dir, "tracevmd")
	cmd := exec.Command("go", "build", "-o", bin, ".")
	if out, err := cmd.CombinedOutput(); err != nil {
		return "", fmt.Errorf("building daemon: %v\n%s", err, out)
	}
	return bin, nil
})

// daemon is one spawned tracevmd process under test supervision.
type daemon struct {
	cmd    *exec.Cmd
	url    string // http://127.0.0.1:<port>
	stderr *bytes.Buffer
	mu     sync.Mutex
	waited bool
	werr   error
}

// startDaemon launches the built binary on an ephemeral port and blocks until
// it reports its listen address on stderr. extraEnv entries are appended to
// the inherited environment (used to arm crash points in the child).
func startDaemon(t *testing.T, extraEnv []string, args ...string) *daemon {
	t.Helper()
	bin, err := daemonBin()
	if err != nil {
		t.Fatal(err)
	}
	d := &daemon{stderr: &bytes.Buffer{}}
	d.cmd = exec.Command(bin, append([]string{"-addr", "127.0.0.1:0"}, args...)...)
	d.cmd.Env = append(os.Environ(), extraEnv...)
	pipe, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}

	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(pipe)
		for sc.Scan() {
			line := sc.Text()
			d.mu.Lock()
			d.stderr.WriteString(line + "\n")
			d.mu.Unlock()
			if rest, ok := strings.CutPrefix(line, "tracevmd: serving on "); ok {
				select {
				case addrc <- strings.TrimSpace(rest):
				default:
				}
			}
		}
	}()

	t.Cleanup(func() {
		d.kill()
		d.saveArtifact(t)
	})

	select {
	case addr := <-addrc:
		d.url = "http://" + addr
	case <-time.After(30 * time.Second):
		d.kill()
		t.Fatalf("daemon never reported its listen address; stderr:\n%s", d.stderrText())
	}
	return d
}

func (d *daemon) stderrText() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stderr.String()
}

// wait reaps the process once; repeated calls return the first result.
func (d *daemon) wait() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.waited {
		d.waited = true
		d.werr = d.cmd.Wait()
	}
	return d.werr
}

// kill SIGKILLs the daemon — the power-cut primitive of these tests. Safe to
// call on an already-dead process.
func (d *daemon) kill() {
	_ = d.cmd.Process.Kill()
	_ = d.wait()
}

// shutdown stops the daemon gracefully (SIGTERM, as an orchestrator would)
// and requires a clean exit.
func (d *daemon) shutdown(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("signalling daemon: %v", err)
	}
	if err := d.wait(); err != nil {
		t.Fatalf("graceful shutdown exited dirty: %v\nstderr:\n%s", err, d.stderrText())
	}
}

// saveArtifact dumps the daemon's captured stderr when the test failed and
// CI exported TRACEVM_ARTIFACT_DIR (same convention as internal/faultinject).
func (d *daemon) saveArtifact(t *testing.T) {
	if !t.Failed() {
		return
	}
	dir := os.Getenv("TRACEVM_ARTIFACT_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("artifact dir: %v", err)
		return
	}
	name := strings.ReplaceAll(t.Name(), "/", "_") + "-daemon-stderr.log"
	if err := os.WriteFile(filepath.Join(dir, name), []byte(d.stderrText()), 0o644); err != nil {
		t.Logf("artifact write: %v", err)
		return
	}
	t.Logf("wrote failure artifact %s", filepath.Join(dir, name))
}

// waitDaemonReady polls /v1/readyz until it answers 200.
func waitDaemonReady(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(url + "/v1/readyz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(25 * time.Millisecond)
	}
	t.Fatalf("daemon at %s never became ready", url)
}

// loadStorm loads the committed mixed-tenant fixture.
func loadStorm(t *testing.T) *replay.Log {
	t.Helper()
	l, err := replay.Load(filepath.Join("..", "..", "internal", "replay", "testdata", "storm-mixed"+replay.FileExt))
	if err != nil {
		t.Fatalf("loading committed fixture: %v", err)
	}
	return l
}

// replayStorm re-offers the log against a live daemon at max speed, bounded
// so the daemon's pool (workers 4, queue 16 in these tests) never refuses.
func replayStorm(ctx context.Context, url string, l *replay.Log) (replay.PlayResult, error) {
	run := httpRunner(http.DefaultClient, url)
	return replay.Play(ctx, l, replay.PlayOptions{Scale: 0, MaxInFlight: 12},
		func(ctx context.Context, rec replay.Record) error {
			_, err := run(ctx, serve.RequestFromRecord(rec))
			return err
		})
}

// statsBody is the slice of /v1/stats these tests compare across restarts.
type statsBody struct {
	Completed  int64
	Global     stats.Counters
	PerProgram map[string]struct {
		Runs     int64
		Counters stats.Counters
	}
}

func fetchStats(t *testing.T, url string) statsBody {
	t.Helper()
	resp, err := http.Get(url + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body statsBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("decoding /v1/stats: %v", err)
	}
	return body
}

// metricValue scrapes one counter/gauge from /v1/metrics.
func metricValue(t *testing.T, url, name string) float64 {
	t.Helper()
	resp, err := http.Get(url + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err != nil {
				t.Fatalf("metric %s: unparsable value %q", name, rest)
			}
			return v
		}
	}
	t.Fatalf("metric %s not exposed", name)
	return 0
}

// perProgramInstrs reduces a stats body to the counters a deterministic
// replay must reproduce across a crash: how often each program ran and how
// many instructions those runs executed. Instrs is dispatch-invariant — a
// warm-seeded restart shifts block dispatches into trace dispatches but must
// not change what the programs computed.
func perProgramInstrs(s statsBody) map[string][2]int64 {
	out := make(map[string][2]int64, len(s.PerProgram))
	for name, p := range s.PerProgram {
		out[name] = [2]int64{p.Runs, p.Counters.Instrs}
	}
	return out
}

// daemonArgs is the shared daemon configuration of the recovery tests:
// a small fixed pool (so replay in-flight bounds are meaningful), aggressive
// snapshot commits (every learning delta forces a write — maximum exposure
// to mid-commit crashes), and persistence rooted in the given directory.
func daemonArgs(dir string) []string {
	return []string{
		"-workers", "4",
		"-queue", "16",
		"-snapshot-dir", dir,
		"-snapshot-net", "1",
		"-snapshot-interval", "100ms",
	}
}

// TestDaemonCrashRecoveryMidStorm is the headline robustness check: SIGKILL
// the daemon in the middle of a recorded mixed-tenant storm, restart it
// against the same snapshot directory, and require (a) readiness, (b) warm
// seeding from the crashed process's committed snapshots, and (c) a full
// replay of the same storm reproducing the per-program run and instruction
// counts of a daemon that never crashed.
func TestDaemonCrashRecoveryMidStorm(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and supervises real daemon processes")
	}
	storm := loadStorm(t)

	// Baseline: a crash-free daemon serving the full storm.
	base := startDaemon(t, nil, daemonArgs(t.TempDir())...)
	waitDaemonReady(t, base.url)
	res, err := replayStorm(context.Background(), base.url, storm)
	if err != nil || res.Failed > 0 {
		t.Fatalf("baseline replay: err=%v result=%+v", err, res)
	}
	want := perProgramInstrs(fetchStats(t, base.url))
	base.shutdown(t)

	// Victim: same configuration, killed without warning mid-storm.
	dir := t.TempDir()
	victim := startDaemon(t, nil, daemonArgs(dir)...)
	waitDaemonReady(t, victim.url)
	stormCtx, stopStorm := context.WithCancel(context.Background())
	defer stopStorm()
	stormDone := make(chan replay.PlayResult, 1)
	go func() {
		r, _ := replayStorm(stormCtx, victim.url, storm) // failures expected: the server dies
		stormDone <- r
	}()

	// Kill once the storm is genuinely mid-flight: some requests completed
	// and at least one snapshot committed, with more traffic still to come.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if time.Now().After(deadline) {
			t.Fatal("storm never reached a mid-flight state to crash in")
		}
		committed, _ := filepath.Glob(filepath.Join(dir, "*.tsnap"))
		if len(committed) > 0 {
			if s := fetchStats(t, victim.url); s.Completed >= 5 {
				break
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	victim.kill()
	stopStorm()
	interrupted := <-stormDone
	if interrupted.Completed >= int64(len(storm.Records)) {
		t.Fatalf("storm finished (%d/%d) before the kill; nothing was interrupted",
			interrupted.Completed, len(storm.Records))
	}

	// Recovery: restart on the same directory.
	revived := startDaemon(t, nil, daemonArgs(dir)...)
	waitDaemonReady(t, revived.url)
	res, err = replayStorm(context.Background(), revived.url, storm)
	if err != nil || res.Failed > 0 {
		t.Fatalf("post-recovery replay: err=%v result=%+v\nstderr:\n%s", err, res, revived.stderrText())
	}
	if seeded := metricValue(t, revived.url, "tracevm_nodes_seeded_from_snapshot_total"); seeded <= 0 {
		t.Errorf("restarted daemon seeded no profile nodes from the crashed run's snapshots")
	}
	got := perProgramInstrs(fetchStats(t, revived.url))
	if len(got) != len(want) {
		t.Fatalf("program sets diverge after crash recovery: got %d, want %d", len(got), len(want))
	}
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("program %q ran crash-free but not after recovery", name)
			continue
		}
		if g != w {
			t.Errorf("program %q: recovered replay [runs instrs] = %v, crash-free = %v", name, g, w)
		}
	}
}

// TestDaemonCrashPointSnapshotCommit arms the snapshot-commit crash point in
// the child and verifies the injected crash semantics: the process dies hard
// with the designated exit code immediately after its first durable commit,
// the committed file survives, and a restarted daemon warm-starts from it.
func TestDaemonCrashPointSnapshotCommit(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and supervises real daemon processes")
	}
	storm := loadStorm(t)
	dir := t.TempDir()

	victim := startDaemon(t,
		[]string{"TRACEVM_CRASH_POINT=" + crash.PointSnapshotCommit},
		daemonArgs(dir)...)
	waitDaemonReady(t, victim.url)
	// The storm will be cut short by the injected crash; every error after
	// the exit is expected.
	_, _ = replayStorm(context.Background(), victim.url, storm)
	err := victim.wait()
	ee, ok := err.(*exec.ExitError)
	if !ok || ee.ExitCode() != crash.ExitCode {
		t.Fatalf("armed daemon exit = %v, want exit code %d\nstderr:\n%s", err, crash.ExitCode, victim.stderrText())
	}
	if !strings.Contains(victim.stderrText(), "crash: injected hard exit") {
		t.Errorf("crash point fired without announcing itself:\n%s", victim.stderrText())
	}
	committed, _ := filepath.Glob(filepath.Join(dir, "*.tsnap"))
	if len(committed) == 0 {
		t.Fatal("crash point fired before the commit was durable: no .tsnap on disk")
	}

	revived := startDaemon(t, nil, daemonArgs(dir)...)
	waitDaemonReady(t, revived.url)
	if res, err := replayStorm(context.Background(), revived.url, storm); err != nil || res.Failed > 0 {
		t.Fatalf("post-crash replay: err=%v result=%+v", err, res)
	}
	if seeded := metricValue(t, revived.url, "tracevm_nodes_seeded_from_snapshot_total"); seeded <= 0 {
		t.Error("restart did not warm-seed from the snapshot committed right before the crash")
	}
}

// TestDaemonQuarantinesCorruptSnapshotAtStartup flips one bit in a committed
// snapshot between daemon runs — silent disk corruption — and verifies the
// restarted daemon heals itself: the damaged file is quarantined to a
// .corrupt sidecar, the quarantine is visible in /v1/metrics, readiness stays
// green, and the affected program still serves (cold).
func TestDaemonQuarantinesCorruptSnapshotAtStartup(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and supervises real daemon processes")
	}
	dir := t.TempDir()

	first := startDaemon(t, nil, daemonArgs(dir)...)
	waitDaemonReady(t, first.url)
	resp, m := postRun(t, first.url+"/v1", `{"workload":"compress","mode":"trace"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("priming run: status %d: %v", resp.StatusCode, m)
	}
	first.shutdown(t) // the final flush commits the learned profile

	committed, _ := filepath.Glob(filepath.Join(dir, "*.tsnap"))
	if len(committed) != 1 {
		t.Fatalf("committed snapshots = %d, want 1", len(committed))
	}
	data, err := os.ReadFile(committed[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(committed[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	second := startDaemon(t, nil, daemonArgs(dir)...)
	waitDaemonReady(t, second.url)
	if q := metricValue(t, second.url, "tracevm_snapshots_quarantined_total"); q != 1 {
		t.Errorf("tracevm_snapshots_quarantined_total = %v, want 1", q)
	}
	if _, err := os.Stat(committed[0] + ".corrupt"); err != nil {
		t.Errorf("no .corrupt sidecar for the damaged snapshot: %v", err)
	}
	if _, err := os.Stat(committed[0]); !os.IsNotExist(err) {
		t.Errorf("damaged snapshot still in the store (err=%v); it would be retried forever", err)
	}
	resp, m = postRun(t, second.url+"/v1", `{"workload":"compress","mode":"trace"}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("run after quarantine: status %d: %v", resp.StatusCode, m)
	}
}
