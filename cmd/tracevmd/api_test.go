package main

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stats"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b), resp.Header.Get("Content-Type")
}

// TestV1LegacyParity pins the compatibility contract: every unversioned
// route is an alias of its /v1/ twin and serves a byte-identical body.
func TestV1LegacyParity(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1, EventTrace: 64})
	if _, m := postRun(t, srv.URL, `{"workload":"soot","mode":"trace"}`); m["output"] == "" {
		t.Fatal("seed run failed")
	}
	for _, path := range []string{"/stats", "/traces", "/metrics", "/events", "/healthz", "/readyz"} {
		vCode, vBody, _ := get(t, srv.URL+"/v1"+path)
		lCode, lBody, _ := get(t, srv.URL+path)
		if vCode != lCode || vBody != lBody {
			t.Errorf("%s: v1 (%d, %d bytes) != legacy (%d, %d bytes)",
				path, vCode, len(vBody), lCode, len(lBody))
		}
	}
}

// TestV1RunParity runs the same request against /run and /v1/run and
// compares everything except the nondeterministic wall time.
func TestV1RunParity(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	for _, path := range []string{"/run", "/v1/run"} {
		resp, err := http.Post(srv.URL+path, "application/json",
			strings.NewReader(`{"workload":"soot","mode":"plain"}`))
		if err != nil {
			t.Fatal(err)
		}
		var wire api.RunResponse
		err = json.NewDecoder(resp.Body).Decode(&wire)
		resp.Body.Close()
		if err != nil || resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d, err %v", path, resp.StatusCode, err)
		}
		if wire.Schema != api.SchemaRun {
			t.Errorf("%s: schema %q, want %q", path, wire.Schema, api.SchemaRun)
		}
		if wire.Program != "soot" || wire.Counters.Instrs == 0 {
			t.Errorf("%s: program=%q instrs=%d", path, wire.Program, wire.Counters.Instrs)
		}
	}
}

// TestMetricsEndpointPinsEveryCounter walks stats.Counters by reflection
// and requires each field's Prometheus series in /v1/metrics — adding a
// counter without exporting it is impossible by construction, and this
// test proves the wire side of that claim.
func TestMetricsEndpointPinsEveryCounter(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	if _, m := postRun(t, srv.URL, `{"workload":"soot","mode":"trace"}`); m["output"] == "" {
		t.Fatal("seed run failed")
	}
	code, body, ctype := get(t, srv.URL+"/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if !strings.Contains(ctype, "text/plain") {
		t.Errorf("content type %q, want text/plain", ctype)
	}
	ct := reflect.TypeOf(stats.Counters{})
	for i := 0; i < ct.NumField(); i++ {
		name := api.CounterName(ct.Field(i).Name)
		if !strings.Contains(body, "\n"+name+" ") && !strings.HasPrefix(body, name+" ") {
			t.Errorf("/v1/metrics missing series %s", name)
		}
	}
	for _, series := range []string{
		"tracevm_requests_accepted_total",
		"tracevm_requests_completed_total",
		"tracevm_queue_depth",
		"tracevm_workers 1",
		"tracevm_request_latency_ms_bucket{le=\"+Inf\"}",
		"tracevm_request_latency_ms_count",
		"tracevm_event_ring_capacity 0",
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/v1/metrics missing %s", series)
		}
	}
	// A traced run must have moved the core counters.
	if !strings.Contains(body, "tracevm_instrs_total ") ||
		strings.Contains(body, "tracevm_instrs_total 0\n") {
		t.Error("tracevm_instrs_total missing or zero after a run")
	}
}

// TestTracesEndpoint drives a tier-2-enabled daemon and reads the trace
// inventory back over the wire: schema tag, per-program grouping, the
// proven/estimated guard split, and a promoted trace with a nonzero
// compiled-dispatch share.
func TestTracesEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{
		Workers:    1,
		TraceCache: core.Config{CompileTraces: true, TierUpDispatches: 4},
	})

	// Before any traffic the endpoint answers with an empty inventory, not
	// null.
	_, body, _ := get(t, srv.URL+"/v1/traces")
	var empty api.TracesResponse
	if err := json.Unmarshal([]byte(body), &empty); err != nil {
		t.Fatal(err)
	}
	if empty.Schema != api.SchemaTraces || empty.Programs == nil || len(empty.Programs) != 0 {
		t.Fatalf("cold inventory: %+v (programs must be [], not null)", empty)
	}

	for i := 0; i < 4; i++ {
		if _, m := postRun(t, srv.URL, `{"workload":"soot","mode":"trace"}`); m["output"] == "" {
			t.Fatal("seed run failed")
		}
	}
	code, body, ctype := get(t, srv.URL+"/v1/traces")
	if code != http.StatusOK || !strings.Contains(ctype, "application/json") {
		t.Fatalf("status %d, content type %q", code, ctype)
	}
	var tr api.TracesResponse
	if err := json.Unmarshal([]byte(body), &tr); err != nil {
		t.Fatal(err)
	}
	if tr.Schema != api.SchemaTraces {
		t.Errorf("schema %q, want %q", tr.Schema, api.SchemaTraces)
	}
	if len(tr.Programs) != 1 || tr.Programs[0].Program != "soot" {
		t.Fatalf("programs = %+v, want exactly soot", tr.Programs)
	}
	traces := tr.Programs[0].Traces
	if len(traces) == 0 {
		t.Fatal("no traces reported after 4 traced runs")
	}
	var promoted bool
	for i, e := range traces {
		if e.Key == "" || e.Blocks < 2 || e.Entered < e.Completed {
			t.Errorf("malformed entry: %+v", e)
		}
		if e.ProvenGuards+e.EstimatedGuards != e.Blocks-1 {
			t.Errorf("guard split %d+%d != %d positions", e.ProvenGuards, e.EstimatedGuards, e.Blocks-1)
		}
		if i > 0 && e.Entered > traces[i-1].Entered {
			t.Error("inventory not sorted hottest first")
		}
		if e.Tier == 2 && e.CompiledShare > 0 {
			promoted = true
		}
	}
	if !promoted {
		t.Error("no tier-2 trace with a compiled-dispatch share")
	}
}

// TestEventsEndpoint exercises the ring tail and its filters end to end.
func TestEventsEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1, EventTrace: 256})
	if _, m := postRun(t, srv.URL, `{"workload":"soot","mode":"trace"}`); m["output"] == "" {
		t.Fatal("seed run failed")
	}

	decode := func(url string) api.EventsResponse {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d", url, resp.StatusCode)
		}
		var er api.EventsResponse
		if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
			t.Fatal(err)
		}
		return er
	}

	all := decode(srv.URL + "/v1/events")
	if all.Schema != api.SchemaEvents {
		t.Errorf("schema %q, want %q", all.Schema, api.SchemaEvents)
	}
	if all.Cap != 256 || all.Total == 0 || len(all.Events) == 0 {
		t.Fatalf("traced run emitted no events: cap=%d total=%d held=%d", all.Cap, all.Total, all.Held)
	}
	for i := 1; i < len(all.Events); i++ {
		if all.Events[i].Seq <= all.Events[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, all.Events[i-1].Seq, all.Events[i].Seq)
		}
	}

	// Every event of the run is tagged with the program that caused it.
	byProg := decode(srv.URL + "/v1/events?program=soot")
	if len(byProg.Events) != len(all.Events) {
		t.Errorf("program filter dropped events: %d of %d", len(byProg.Events), len(all.Events))
	}
	if n := len(decode(srv.URL + "/v1/events?program=nosuch").Events); n != 0 {
		t.Errorf("bogus program matched %d events", n)
	}

	// Type filter: a traced soot run must build traces and signal states.
	built := decode(srv.URL + "/v1/events?type=trace-built")
	if len(built.Events) == 0 {
		t.Error("no trace-built events after a traced run")
	}
	for _, e := range built.Events {
		if e.Type.String() != "trace-built" {
			t.Fatalf("type filter leaked %v", e.Type)
		}
	}

	// n bounds the tail.
	if n := len(decode(srv.URL + "/v1/events?n=2").Events); n != 2 {
		t.Errorf("n=2 returned %d events", n)
	}

	// Bad parameters are 400s.
	for _, q := range []string{"?type=warp", "?n=0", "?n=x"} {
		resp, err := http.Get(srv.URL + "/v1/events" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestEventsEndpointDisabled: with no ring the endpoint still answers,
// with an empty tail and zero capacity.
func TestEventsEndpointDisabled(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	code, body, _ := get(t, srv.URL+"/v1/events")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	var er api.EventsResponse
	if err := json.Unmarshal([]byte(body), &er); err != nil {
		t.Fatal(err)
	}
	if er.Cap != 0 || len(er.Events) != 0 || er.Events == nil {
		t.Errorf("disabled ring: %+v (events must be [], not null)", er)
	}
}

// TestStatsSchemaTag: /v1/stats carries the schema tag AND still decodes
// into a bare serve.Snapshot for pre-versioning clients.
func TestStatsSchemaTag(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	if _, m := postRun(t, srv.URL, `{"workload":"soot","mode":"plain"}`); m["output"] == "" {
		t.Fatal("seed run failed")
	}
	_, body, _ := get(t, srv.URL+"/v1/stats")
	var tagged api.StatsResponse
	if err := json.Unmarshal([]byte(body), &tagged); err != nil {
		t.Fatal(err)
	}
	if tagged.Schema != api.SchemaStats {
		t.Errorf("schema %q, want %q", tagged.Schema, api.SchemaStats)
	}
	var legacy serve.Snapshot
	if err := json.Unmarshal([]byte(body), &legacy); err != nil {
		t.Fatal(err)
	}
	if legacy.Completed != 1 || legacy.Global.Instrs == 0 {
		t.Errorf("legacy decode lost fields: completed=%d instrs=%d", legacy.Completed, legacy.Global.Instrs)
	}
}

// TestDebugMux: the pprof mux answers on its own listener paths.
func TestDebugMux(t *testing.T) {
	mux := newDebugMux()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/pprof/symbol"} {
		req := httptest.NewRequest(http.MethodGet, path, nil)
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Errorf("%s: status %d", path, rec.Code)
		}
	}
}
