package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/serve"
)

func newTestServer(t *testing.T, cfg serve.Config) (*httptest.Server, *serve.Service) {
	t.Helper()
	svc := serve.New(cfg)
	srv := httptest.NewServer(newMux(svc))
	t.Cleanup(func() {
		srv.Close()
		svc.Close()
	})
	return srv, svc
}

func postRun(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/run", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode: %v", err)
	}
	return resp, m
}

func TestRunEndpoint(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 2})

	resp, m := postRun(t, srv.URL, `{"workload":"soot","mode":"trace"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	if m["program"] != "soot" || m["mode"] != "trace" {
		t.Errorf("response: program=%v mode=%v", m["program"], m["mode"])
	}
	out, _ := m["output"].(string)
	if !strings.Contains(out, "checksum=138015871") {
		t.Errorf("soot output missing checksum: %q", out)
	}
	ctr, _ := m["counters"].(map[string]any)
	if ctr == nil || ctr["Instrs"].(float64) == 0 {
		t.Errorf("counters missing: %v", m["counters"])
	}
}

func TestRunEndpointInlineSource(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	resp, m := postRun(t, srv.URL, `{"source":"class Main { static void main() { Sys.printlnInt(42); } }"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %v", resp.StatusCode, m)
	}
	if m["output"] != "42\n" {
		t.Errorf("output = %v", m["output"])
	}
}

func TestRunEndpointErrors(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})

	cases := []struct {
		name, body string
		status     int
	}{
		{"bad json", `{`, http.StatusBadRequest},
		{"bad mode", `{"workload":"soot","mode":"warp"}`, http.StatusBadRequest},
		{"bad kind", `{"source":"x","kind":"cobol"}`, http.StatusBadRequest},
		{"no program", `{}`, http.StatusUnprocessableEntity},
		{"compile error", `{"source":"class {"}`, http.StatusUnprocessableEntity},
		{"run trap", `{"source":"class Main { static void main() { Sys.printlnInt(1/0); } }"}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, m := postRun(t, srv.URL, c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d (%v)", c.name, resp.StatusCode, c.status, m)
		}
		if c.status != http.StatusOK {
			if s, _ := m["error"].(string); s == "" {
				t.Errorf("%s: no error message", c.name)
			}
		}
	}
}

func TestRunEndpointTimeout(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	body := `{"source":"class Main { static void main() { int i = 0; while (0 < 1) { i = i + 1; } } }","timeoutMs":50}`
	resp, m := postRun(t, srv.URL, body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Errorf("status %d, want 504 (%v)", resp.StatusCode, m)
	}
}

func TestStatsAndHealthEndpoints(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 3})
	if _, m := postRun(t, srv.URL, `{"workload":"raytrace","mode":"plain"}`); m["output"] == "" {
		t.Fatal("run failed")
	}

	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap serve.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Completed != 1 || snap.Global.Instrs == 0 {
		t.Errorf("stats: completed=%d instrs=%d", snap.Completed, snap.Global.Instrs)
	}
	if _, ok := snap.PerProgram["raytrace"]; !ok {
		t.Errorf("stats missing per-program entry: %v", snap.PerProgram)
	}

	hresp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["workers"].(float64) != 3 {
		t.Errorf("healthz: %v", h)
	}
}

func getJSON(t *testing.T, url string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return resp, m
}

func TestReadyzHealthy(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 2})
	resp, m := getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || m["status"] != "healthy" {
		t.Errorf("readyz: status %d, body %v", resp.StatusCode, m)
	}
}

func TestReadyzDegradedByQuarantine(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{
		Workers:         1,
		QuarantineAfter: 1,
		Injector: serve.InjectorFuncs{
			Exec: func(req serve.Request) {
				if req.Workload == "compress" {
					panic("injected")
				}
			},
		},
	})
	// One panic quarantines the program and degrades readiness.
	postRun(t, srv.URL, `{"workload":"compress","mode":"plain"}`)
	resp, m := getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusOK || m["status"] != "degraded" {
		t.Errorf("readyz after quarantine: status %d, body %v", resp.StatusCode, m)
	}
	if m["quarantinedPrograms"].(float64) != 1 {
		t.Errorf("quarantinedPrograms = %v, want 1", m["quarantinedPrograms"])
	}
	// The quarantined program gets HTTP 423 Locked.
	hresp, em := postRun(t, srv.URL, `{"workload":"compress","mode":"plain"}`)
	if hresp.StatusCode != http.StatusLocked {
		t.Errorf("quarantined run: status %d, want 423 (%v)", hresp.StatusCode, em)
	}
}

func TestReadyzDrainingAfterClose(t *testing.T) {
	svc := serve.New(serve.Config{Workers: 1})
	srv := httptest.NewServer(newMux(svc))
	t.Cleanup(srv.Close)
	svc.Close()
	resp, m := getJSON(t, srv.URL+"/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable || m["status"] != "draining" {
		t.Errorf("readyz after close: status %d, body %v", resp.StatusCode, m)
	}
}

func TestHTTPRunnerAndLoadgen(t *testing.T) {
	srv, svc := newTestServer(t, serve.Config{Workers: 2, QueueDepth: 16})
	res := serve.RunLoadGen(context.Background(), serve.LoadGenConfig{
		Concurrency: 3,
		Requests:    6,
		Workloads:   []string{"soot", "raytrace"},
		Mode:        core.ModePlain,
	}, httpRunner(srv.Client(), srv.URL))
	if res.Completed != 6 || res.Failed != 0 {
		t.Fatalf("loadgen over HTTP: %+v", res)
	}
	if res.TotalInstrs == 0 {
		t.Error("loadgen did not propagate instruction counts")
	}
	if snap := svc.Stats(); snap.Completed != 6 {
		t.Errorf("daemon accounted %d completions, want 6", snap.Completed)
	}
}

func TestGracefulShutdown(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	svc := serve.New(serve.Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- serveListener(ctx, l, svc, 5*time.Second) }()

	url := "http://" + l.Addr().String()
	resp, err := http.Post(url+"/run", "application/json",
		bytes.NewReader([]byte(`{"workload":"soot","mode":"plain"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-shutdown run: status %d", resp.StatusCode)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	// The drained service refuses new work.
	if _, err := svc.Do(context.Background(), serve.Request{Workload: "soot"}); err == nil {
		t.Error("service accepted work after drain")
	}
}

func TestParseModeAllFive(t *testing.T) {
	for name, want := range api.ModeNames {
		got, err := api.ParseMode(name)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v", name, got, err)
		}
	}
	if m, err := api.ParseMode(""); err != nil || m != core.ModeTrace {
		t.Errorf("default mode = %v, %v", m, err)
	}
	if _, err := api.ParseMode("warp"); err == nil {
		t.Error("ParseMode(warp) succeeded")
	}
}

func TestRunEndpointVerifierRejection(t *testing.T) {
	srv, svc := newTestServer(t, serve.Config{Workers: 1})

	// Reads a local never written: runs fine on the zero-initializing VM,
	// but the verifier must refuse it with a structured report.
	src := ".class Main\n.method static main ( ) void\n    .locals 1\n    iload 0\n    pop\n    return\n.end\n.end\n.entry Main main\n"
	body, _ := json.Marshal(map[string]string{"source": src, "kind": "jasm"})
	resp, m := postRun(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %v", resp.StatusCode, m)
	}
	rep, ok := m["report"].(map[string]any)
	if !ok {
		t.Fatalf("no structured report in 422 body: %v", m)
	}
	findings, ok := rep["findings"].([]any)
	if !ok || len(findings) == 0 {
		t.Fatalf("report has no findings: %v", m)
	}
	first := findings[0].(map[string]any)
	if first["rule"] != "uninit-local" {
		t.Fatalf("rule = %v, want uninit-local", first["rule"])
	}
	if first["method"] != "Main.main" {
		t.Fatalf("method = %v, want Main.main", first["method"])
	}
	if snap := svc.Stats(); snap.ProgramsRejected != 1 {
		t.Errorf("ProgramsRejected = %d, want 1", snap.ProgramsRejected)
	}
}

func TestRunEndpointNoVerify(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1, NoVerify: true})
	src := ".class Main\n.method static main ( ) void\n    .locals 1\n    iload 0\n    invokestatic Main.print\n    return\n.end\n.native static print ( int ) void println_int\n.end\n.entry Main main\n"
	body, _ := json.Marshal(map[string]string{"source": src, "kind": "jasm"})
	resp, m := postRun(t, srv.URL, string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200 with -no-verify: %v", resp.StatusCode, m)
	}
	if m["output"] != "0\n" {
		t.Fatalf("output = %v, want 0", m["output"])
	}
}

func TestRunEndpointCompileErrorHasNoReport(t *testing.T) {
	srv, _ := newTestServer(t, serve.Config{Workers: 1})
	resp, m := postRun(t, srv.URL, `{"source":"class {","kind":"minijava"}`)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %v", resp.StatusCode, m)
	}
	if _, present := m["report"]; present {
		t.Fatalf("plain compile error carries a verifier report: %v", m)
	}
}
