package snapshot

import (
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// CorruptExt is the sidecar suffix quarantined files are renamed to: a
// corrupt `k.tsnap` becomes `k.tsnap.corrupt`, out of every loader's sight
// but preserved for forensics.
const CorruptExt = ".corrupt"

// ScrubFinding is one file a scrub rejected.
type ScrubFinding struct {
	// Path is the file as found; Err says why its contents don't decode.
	Path string
	Err  error
	// Quarantined is the sidecar path the file was moved to ("" when the
	// scrub ran in report-only mode or the rename itself failed).
	Quarantined string
}

// ScrubReport summarizes a snapshot-directory scrub.
type ScrubReport struct {
	// Scanned counts the .tsnap files examined, Valid the ones that decode.
	Scanned int
	Valid   int
	// Corrupt lists the rejects in deterministic (sorted-path) order.
	Corrupt []ScrubFinding
	// TempsRemoved counts abandoned write-temp files (".tsnap-*") swept away
	// — the residue of a writer that died between CreateTemp and rename.
	TempsRemoved int
}

// ScrubDir decode-validates every .tsnap file in dir, the self-healing pass
// a daemon runs before trusting a snapshot directory it may have crashed
// over. With quarantine set, each corrupt file is renamed to a .corrupt
// sidecar so later loads cannot see it; otherwise the scrub only reports.
// Abandoned write-temp files are always removed. A missing directory is an
// empty report, not an error; the returned error is reserved for the
// directory listing itself failing.
func ScrubDir(dir string, quarantine bool) (*ScrubReport, error) {
	rep := &ScrubReport{}
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return rep, nil
		}
		return nil, err
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		names = append(names, e.Name())
	}
	sort.Strings(names)

	for _, name := range names {
		path := filepath.Join(dir, name)
		if strings.HasPrefix(name, ".tsnap-") {
			if os.Remove(path) == nil {
				rep.TempsRemoved++
			}
			continue
		}
		if !strings.HasSuffix(name, ".tsnap") {
			continue
		}
		rep.Scanned++
		if _, err := Load(path); err == nil {
			rep.Valid++
			continue
		} else {
			f := ScrubFinding{Path: path, Err: err}
			if quarantine {
				side := path + CorruptExt
				if os.Rename(path, side) == nil {
					f.Quarantined = side
				}
			}
			rep.Corrupt = append(rep.Corrupt, f)
		}
	}
	return rep, nil
}
