package snapshot

import (
	"bytes"
	"errors"
	"hash/crc32"
	"reflect"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/profile"
)

// sample builds a representative snapshot: classified and unclassified
// nodes, hint-style sentinel delays, multi-edge correlations, traces with
// and without entry edges, loop headers.
func sample() *Snapshot {
	return &Snapshot{
		ProgramKey: "0123456789abcdef",
		Program:    "compress",
		Params:     profile.Params{Threshold: 0.97, StartDelay: 64, DecayInterval: 256},
		Nodes: []profile.NodeSnapshot{
			{X: 1, Y: 2, State: profile.StateUnique, StartDelay: 0, Best: 3,
				Edges: []profile.EdgeSnapshot{{Z: 3, Count: 200}}},
			{X: 2, Y: 3, State: profile.StateStrong, StartDelay: -1, Best: 4,
				Edges: []profile.EdgeSnapshot{{Z: 4, Count: 150}, {Z: 7, Count: 3}}},
			{X: 3, Y: 4, State: profile.StateNew, StartDelay: 17, Best: cfg.NoBlock},
		},
		Traces: []TraceState{
			{Blocks: []cfg.BlockID{2, 3, 4}, ExpectedCompletion: 0.98, EntryFrom: []cfg.BlockID{1}},
			{Blocks: []cfg.BlockID{5, 6}, ExpectedCompletion: 1},
		},
		LoopHeaders: []cfg.BlockID{2, 5},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sample()
	got, err := Decode(Encode(want))
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	// The empty learned state must survive too (a program snapshotted before
	// anything classified).
	empty := &Snapshot{ProgramKey: "k", Params: profile.DefaultParams()}
	got, err = Decode(Encode(empty))
	if err != nil {
		t.Fatalf("Decode(empty): %v", err)
	}
	if !reflect.DeepEqual(got, empty) {
		t.Errorf("empty round trip mismatch: %+v", got)
	}
}

func TestEncodeIsDeterministic(t *testing.T) {
	if !bytes.Equal(Encode(sample()), Encode(sample())) {
		t.Error("two encodings of the same snapshot differ")
	}
}

// TestDecodeTruncation: every proper prefix of a valid encoding is rejected
// with an error, never accepted and never a panic.
func TestDecodeTruncation(t *testing.T) {
	data := Encode(sample())
	for i := 0; i < len(data); i++ {
		if _, err := Decode(data[:i]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", i, len(data))
		}
	}
}

// TestDecodeBitFlips: any single corrupted byte fails the checksum (or an
// earlier structural check); no flip produces a silently different snapshot.
func TestDecodeBitFlips(t *testing.T) {
	data := Encode(sample())
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x01
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	for _, data := range [][]byte{
		nil,
		[]byte("not a snapshot at all"),
		[]byte("tracevm/snapsho"),
		[]byte("tracevm/snapshot/no-newline-here-at-all"),
	} {
		if _, err := Decode(data); !errors.Is(err, ErrBadMagic) {
			t.Errorf("Decode(%q) = %v, want ErrBadMagic", data, err)
		}
	}
}

func TestDecodeWrongVersion(t *testing.T) {
	data := Encode(sample())
	v2 := []byte(strings.Replace(string(data), "snapshot/v1\n", "snapshot/v2\n", 1))
	if _, err := Decode(v2); !errors.Is(err, ErrVersion) {
		t.Errorf("v2 snapshot: %v, want ErrVersion", err)
	}
}

func TestDecodeChecksumMismatch(t *testing.T) {
	data := Encode(sample())
	data[len(data)-1] ^= 0xFF // corrupt the trailer itself
	if _, err := Decode(data); !errors.Is(err, ErrChecksum) {
		t.Errorf("corrupted trailer: %v, want ErrChecksum", err)
	}
}

// reseal recomputes the CRC trailer after a deliberate payload mutation, so
// tests reach the structural validators behind the checksum gate.
func reseal(body []byte) []byte {
	sum := crc32.ChecksumIEEE(body)
	return append(body, byte(sum), byte(sum>>8), byte(sum>>16), byte(sum>>24))
}

func TestDecodeTrailingBytes(t *testing.T) {
	data := Encode(sample())
	body := append(data[:len(data)-4:len(data)-4], 0x00)
	if _, err := Decode(reseal(body)); !errors.Is(err, ErrCorrupt) {
		t.Errorf("trailing byte: %v, want ErrCorrupt", err)
	}
}

// TestDecodeRejectsInvariantViolations: a well-formed container whose payload
// violates graph invariants is refused — Encode writes whatever it is given,
// Decode is the gate.
func TestDecodeRejectsInvariantViolations(t *testing.T) {
	cases := map[string]func(s *Snapshot){
		"unsorted edges": func(s *Snapshot) {
			s.Nodes[1].Edges = []profile.EdgeSnapshot{{Z: 7, Count: 3}, {Z: 4, Count: 150}}
		},
		"duplicate edge": func(s *Snapshot) {
			s.Nodes[1].Edges = []profile.EdgeSnapshot{{Z: 4, Count: 150}, {Z: 4, Count: 3}}
		},
		"zero-count edge": func(s *Snapshot) {
			s.Nodes[0].Edges[0].Count = 0
		},
		"state out of range": func(s *Snapshot) {
			s.Nodes[0].State = profile.StateUnique + 1
		},
		"start delay below sentinel": func(s *Snapshot) {
			s.Nodes[0].StartDelay = -2
		},
		"empty trace": func(s *Snapshot) {
			s.Traces[0].Blocks = nil
		},
		"completion above one": func(s *Snapshot) {
			s.Traces[0].ExpectedCompletion = 1.5
		},
		"completion negative": func(s *Snapshot) {
			s.Traces[0].ExpectedCompletion = -0.25
		},
		"invalid params": func(s *Snapshot) {
			s.Params.Threshold = 0
		},
	}
	for name, mutate := range cases {
		s := sample()
		mutate(s)
		if _, err := Decode(Encode(s)); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
}

func TestVerifyKey(t *testing.T) {
	s := sample()
	if err := s.VerifyKey("0123456789abcdef"); err != nil {
		t.Errorf("matching key rejected: %v", err)
	}
	if err := s.VerifyKey("feedfacefeedface"); !errors.Is(err, ErrWrongProgram) {
		t.Errorf("mismatched key: %v, want ErrWrongProgram", err)
	}
}

func TestJournal(t *testing.T) {
	var j Journal
	j.Saved()
	j.Saved()
	j.Rejected()
	c := j.Counters()
	if c.SnapshotsSaved != 2 || c.SnapshotsRejected != 1 {
		t.Errorf("journal counters = saved %d rejected %d, want 2/1", c.SnapshotsSaved, c.SnapshotsRejected)
	}
}
