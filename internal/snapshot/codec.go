package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"strings"

	"repro/internal/cfg"
	"repro/internal/profile"
)

// Binary layout (all integers varint/uvarint, all fixed words little-endian):
//
//	magic     "tracevm/snapshot/v1\n"
//	payload   str programKey · str programName
//	          varint startDelay · f64 threshold · uvarint decayInterval
//	          uvarint |nodes| · nodes
//	          uvarint |traces| · traces
//	          uvarint |loopHeaders| · block IDs
//	trailer   u32 CRC32-IEEE over magic+payload
//
//	node      uvarint X · uvarint Y · u8 state · varint startDelay
//	          uvarint best+1 (0 = none) · uvarint |edges| · (uvarint Z · uvarint count)*
//	          edges strictly ascending by Z
//	trace     uvarint |blocks| · block IDs · f64 expectedCompletion
//	          uvarint |entryFrom| · block IDs
//	str       uvarint length · bytes
//
// Decode never trusts a length field for allocation: every element costs at
// least one encoded byte, so any count is capped by the bytes remaining —
// a fuzzer-supplied count of 2^60 fails fast instead of allocating.

// Rejection causes. Every non-nil Decode error wraps exactly one of these,
// so callers can count and report rejection reasons without string matching.
var (
	ErrBadMagic     = errors.New("snapshot: not a tracevm snapshot")
	ErrVersion      = errors.New("snapshot: unsupported snapshot version")
	ErrChecksum     = errors.New("snapshot: checksum mismatch")
	ErrCorrupt      = errors.New("snapshot: corrupt payload")
	ErrWrongProgram = errors.New("snapshot: snapshot keyed to a different program")
)

const (
	magic       = Schema + "\n"
	magicPrefix = "tracevm/snapshot/"

	// maxStringLen bounds the program key/name fields; both are short
	// identifiers, never documents.
	maxStringLen = 4096
)

var crcTable = crc32.IEEETable

// Encode serializes a snapshot. The inverse of Decode; encoding is
// deterministic, so byte-equality of two encodings means state-equality.
func Encode(s *Snapshot) []byte {
	// Rough pre-size: fixed header plus a small multiple of element counts.
	n := len(magic) + len(s.ProgramKey) + len(s.Program) + 64
	for i := range s.Nodes {
		n += 16 + 6*len(s.Nodes[i].Edges)
	}
	for i := range s.Traces {
		n += 16 + 3*(len(s.Traces[i].Blocks)+len(s.Traces[i].EntryFrom))
	}
	b := make([]byte, 0, n)

	b = append(b, magic...)
	b = appendString(b, s.ProgramKey)
	b = appendString(b, s.Program)
	b = binary.AppendVarint(b, int64(s.Params.StartDelay))
	b = binary.LittleEndian.AppendUint64(b, math.Float64bits(s.Params.Threshold))
	b = binary.AppendUvarint(b, uint64(s.Params.DecayInterval))

	b = binary.AppendUvarint(b, uint64(len(s.Nodes)))
	for i := range s.Nodes {
		ns := &s.Nodes[i]
		b = binary.AppendUvarint(b, uint64(ns.X))
		b = binary.AppendUvarint(b, uint64(ns.Y))
		b = append(b, byte(ns.State))
		b = binary.AppendVarint(b, int64(ns.StartDelay))
		best := uint64(0)
		if ns.Best != cfg.NoBlock {
			best = uint64(ns.Best) + 1
		}
		b = binary.AppendUvarint(b, best)
		b = binary.AppendUvarint(b, uint64(len(ns.Edges)))
		for _, e := range ns.Edges {
			b = binary.AppendUvarint(b, uint64(e.Z))
			b = binary.AppendUvarint(b, uint64(e.Count))
		}
	}

	b = binary.AppendUvarint(b, uint64(len(s.Traces)))
	for i := range s.Traces {
		ts := &s.Traces[i]
		b = binary.AppendUvarint(b, uint64(len(ts.Blocks)))
		for _, id := range ts.Blocks {
			b = binary.AppendUvarint(b, uint64(id))
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(ts.ExpectedCompletion))
		b = binary.AppendUvarint(b, uint64(len(ts.EntryFrom)))
		for _, id := range ts.EntryFrom {
			b = binary.AppendUvarint(b, uint64(id))
		}
	}

	b = binary.AppendUvarint(b, uint64(len(s.LoopHeaders)))
	for _, id := range s.LoopHeaders {
		b = binary.AppendUvarint(b, uint64(id))
	}

	return binary.LittleEndian.AppendUint32(b, crc32.Checksum(b, crcTable))
}

// Decode parses and validates an encoded snapshot. It never panics on
// arbitrary input (see FuzzSnapshotDecodeNeverPanics) and returns an error
// wrapping one of the Err* rejection causes for anything malformed:
// truncation, trailing garbage, bad checksum, unknown version, or payload
// values that violate the graph invariants (unsorted edges, out-of-range
// states or counters, non-finite probabilities).
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(magicPrefix) || string(data[:len(magicPrefix)]) != magicPrefix {
		return nil, fmt.Errorf("%w (no %q header)", ErrBadMagic, magicPrefix)
	}
	nl := strings.IndexByte(string(data[:min(len(data), len(magicPrefix)+16)]), '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w (unterminated version line)", ErrBadMagic)
	}
	if got := string(data[:nl+1]); got != magic {
		return nil, fmt.Errorf("%w %q (want %q)", ErrVersion, strings.TrimSuffix(got, "\n"), Schema)
	}
	if len(data) < nl+1+4 {
		return nil, fmt.Errorf("%w: truncated before checksum", ErrCorrupt)
	}
	body, trailer := data[:len(data)-4], data[len(data)-4:]
	if want := binary.LittleEndian.Uint32(trailer); crc32.Checksum(body, crcTable) != want {
		return nil, ErrChecksum
	}

	d := &decoder{b: body[len(magic):]}
	s := &Snapshot{
		ProgramKey: d.str(),
		Program:    d.str(),
	}
	s.Params.StartDelay = int32(d.varint(math.MinInt32, math.MaxInt32))
	s.Params.Threshold = d.f64()
	s.Params.DecayInterval = uint32(d.uvarint(math.MaxUint32))

	nNodes := d.count()
	if d.err == nil && nNodes > 0 {
		s.Nodes = make([]profile.NodeSnapshot, 0, nNodes)
	}
	for i := 0; i < nNodes && d.err == nil; i++ {
		ns := profile.NodeSnapshot{
			X:     d.block(),
			Y:     d.block(),
			State: profile.State(d.uvarint(uint64(profile.StateUnique))),
		}
		ns.StartDelay = int32(d.varint(-1, math.MaxInt32))
		if best := d.uvarint(uint64(cfg.NoBlock)); best == 0 {
			ns.Best = cfg.NoBlock
		} else {
			ns.Best = cfg.BlockID(best - 1)
		}
		nEdges := d.count()
		if d.err == nil && nEdges > 0 {
			ns.Edges = make([]profile.EdgeSnapshot, 0, nEdges)
		}
		prevZ := cfg.NoBlock
		for j := 0; j < nEdges && d.err == nil; j++ {
			e := profile.EdgeSnapshot{
				Z:     d.block(),
				Count: uint16(d.uvarint(math.MaxUint16)),
			}
			if d.err == nil && (e.Count == 0 || (prevZ != cfg.NoBlock && e.Z <= prevZ)) {
				d.fail("node %d edge %d violates sorted-positive invariant", i, j)
			}
			prevZ = e.Z
			ns.Edges = append(ns.Edges, e)
		}
		s.Nodes = append(s.Nodes, ns)
	}

	nTraces := d.count()
	if d.err == nil && nTraces > 0 {
		s.Traces = make([]TraceState, 0, nTraces)
	}
	for i := 0; i < nTraces && d.err == nil; i++ {
		var ts TraceState
		nBlocks := d.count()
		if d.err == nil && nBlocks == 0 {
			d.fail("trace %d has no blocks", i)
		}
		for j := 0; j < nBlocks && d.err == nil; j++ {
			ts.Blocks = append(ts.Blocks, d.block())
		}
		ts.ExpectedCompletion = d.f64()
		if d.err == nil && !(ts.ExpectedCompletion >= 0 && ts.ExpectedCompletion <= 1) {
			d.fail("trace %d completion probability out of [0,1]", i)
		}
		nFrom := d.count()
		for j := 0; j < nFrom && d.err == nil; j++ {
			ts.EntryFrom = append(ts.EntryFrom, d.block())
		}
		s.Traces = append(s.Traces, ts)
	}

	nHdrs := d.count()
	for i := 0; i < nHdrs && d.err == nil; i++ {
		s.LoopHeaders = append(s.LoopHeaders, d.block())
	}

	if d.err != nil {
		return nil, d.err
	}
	if len(d.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.b))
	}
	if err := s.Params.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return s, nil
}

// decoder is a cursor over the payload; the first failure sticks and every
// subsequent read returns zero values, so parse loops need no per-read
// error plumbing.
type decoder struct {
	b   []byte
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (d *decoder) uvarint(limit uint64) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		d.fail("truncated uvarint")
		return 0
	}
	d.b = d.b[n:]
	if v > limit {
		d.fail("value %d exceeds limit %d", v, limit)
		return 0
	}
	return v
}

func (d *decoder) varint(lo, hi int64) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.b)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.b = d.b[n:]
	if v < lo || v > hi {
		d.fail("value %d outside [%d, %d]", v, lo, hi)
		return 0
	}
	return v
}

// count reads an element count, bounded by the bytes remaining (each element
// encodes to at least one byte), so a hostile count cannot drive allocation.
func (d *decoder) count() int {
	return int(d.uvarint(uint64(len(d.b))))
}

// block reads a block ID; cfg.NoBlock itself is not encodable as a real ID.
func (d *decoder) block() cfg.BlockID {
	v := d.uvarint(uint64(cfg.NoBlock) - 1)
	return cfg.BlockID(v)
}

func (d *decoder) f64() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.b) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	if math.IsNaN(v) || math.IsInf(v, 0) {
		d.fail("non-finite float")
		return 0
	}
	return v
}

func (d *decoder) str() string {
	n := int(d.uvarint(maxStringLen))
	if d.err != nil {
		return ""
	}
	if n > len(d.b) {
		d.fail("truncated string of length %d", n)
		return ""
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s
}

func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
