package snapshot

import (
	"os"
	"path/filepath"
	"testing"
)

func writeScrubFixture(t *testing.T, dir string) (good, bad, tmp string) {
	t.Helper()
	s := sample()
	good = filepath.Join(dir, "good.tsnap")
	if err := Save(good, s); err != nil {
		t.Fatal(err)
	}
	data := Encode(s)
	data[len(data)/2] ^= 0x20 // single bit flip deep in the payload
	bad = filepath.Join(dir, "bad.tsnap")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	tmp = filepath.Join(dir, ".tsnap-12345")
	if err := os.WriteFile(tmp, []byte("torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	return good, bad, tmp
}

func TestScrubDirQuarantines(t *testing.T) {
	dir := t.TempDir()
	good, bad, tmp := writeScrubFixture(t, dir)

	rep, err := ScrubDir(dir, true)
	if err != nil {
		t.Fatalf("ScrubDir: %v", err)
	}
	if rep.Scanned != 2 || rep.Valid != 1 || len(rep.Corrupt) != 1 || rep.TempsRemoved != 1 {
		t.Fatalf("report = %+v", rep)
	}
	f := rep.Corrupt[0]
	if f.Path != bad || f.Quarantined != bad+CorruptExt {
		t.Fatalf("finding = %+v", f)
	}
	if _, err := os.Stat(bad); !os.IsNotExist(err) {
		t.Error("corrupt file still present under its load name")
	}
	if _, err := os.Stat(bad + CorruptExt); err != nil {
		t.Errorf("sidecar missing: %v", err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Error("abandoned temp file survived the scrub")
	}
	if _, err := Load(good); err != nil {
		t.Errorf("valid file no longer loads: %v", err)
	}

	// A second pass over the healed directory finds nothing wrong.
	rep, err = ScrubDir(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Valid != 1 || len(rep.Corrupt) != 0 {
		t.Fatalf("second pass report = %+v", rep)
	}
}

func TestScrubDirReportOnly(t *testing.T) {
	dir := t.TempDir()
	_, bad, _ := writeScrubFixture(t, dir)

	rep, err := ScrubDir(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0].Quarantined != "" {
		t.Fatalf("report = %+v", rep)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Errorf("report-only scrub moved the file: %v", err)
	}
}

func TestScrubDirMissing(t *testing.T) {
	rep, err := ScrubDir(filepath.Join(t.TempDir(), "nope"), true)
	if err != nil {
		t.Fatalf("missing dir: %v", err)
	}
	if rep.Scanned != 0 || len(rep.Corrupt) != 0 {
		t.Fatalf("report = %+v", rep)
	}
}
