package snapshot

import (
	"reflect"
	"testing"
)

// FuzzSnapshotDecodeNeverPanics is the codec's robustness pin: Decode must
// return (snapshot, nil) or (nil, error) on every input — no panics, no
// unbounded allocation from hostile length fields — and anything it accepts
// must survive a re-encode/re-decode cycle unchanged (encode∘decode is
// idempotent on the accepted set).
func FuzzSnapshotDecodeNeverPanics(f *testing.F) {
	valid := Encode(sample())
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte("tracevm/snapshot/v1\n"))
	f.Add([]byte("tracevm/snapshot/v2\njunk"))
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[len(mut)/2] ^= 0x40
	f.Add(mut)

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := Decode(data)
		if err != nil {
			if s != nil {
				t.Fatal("Decode returned both a snapshot and an error")
			}
			return
		}
		s2, err := Decode(Encode(s))
		if err != nil {
			t.Fatalf("re-encoded accepted snapshot rejected: %v", err)
		}
		if !reflect.DeepEqual(s, s2) {
			t.Fatalf("re-encode/re-decode changed the snapshot:\n got %+v\nwas %+v", s2, s)
		}
	})
}
