// Package snapshot implements profile persistence: a compact, versioned,
// checksummed binary format for the per-program learned state of a session —
// BCG node states, counters and residual start delays, the constructed trace
// entry set, and the static loop-header anchors — so a restarted VM can warm
// start instead of relearning from zero.
//
// A snapshot is keyed by a content hash of the program it was learned from
// and can never be applied to a different program version: Decode verifies
// integrity (magic, version, CRC), and consumers verify the key before
// seeding. The encoded form carries no pointers and no engine state (no
// prepared blocks, no accounting), only what reconstructs the profiler's
// classification: it is learned *state*, not a transcript.
package snapshot

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/profile"
	"repro/internal/stats"
)

// Schema is the format tag; it doubles as the file magic (with a trailing
// newline) so `head -1` on a snapshot file identifies it.
const Schema = "tracevm/snapshot/v1"

// Snapshot is the decoded learned state of one program's profiling session.
// Once constructed a Snapshot is immutable by convention: the serve layer
// shares one instance across concurrent seeding sessions.
type Snapshot struct {
	// ProgramKey is the content hash of the program this state was learned
	// from — the serve registry's key, or ProgramKey() for facade use.
	ProgramKey string
	// Program is the human-readable program name; advisory only.
	Program string
	// Params are the profiler tunables the state was learned under. Seeding
	// under different parameters would misclassify every node, so consumers
	// only apply a snapshot whose Params match the session's.
	Params profile.Params
	// Nodes are the BCG branch contexts, in creation order.
	Nodes []profile.NodeSnapshot
	// Traces are the constructed traces with their entry registrations.
	Traces []TraceState
	// LoopHeaders are the statically detected loop-header blocks that anchor
	// trace backtracking.
	LoopHeaders []cfg.BlockID
}

// TraceState is one serialized trace: its block sequence, the completion
// probability estimated when it was cut, and the entry edges (from→Blocks[0])
// it was registered on.
type TraceState struct {
	Blocks             []cfg.BlockID
	ExpectedCompletion float64
	EntryFrom          []cfg.BlockID
}

// VerifyKey checks that the snapshot belongs to the program identified by
// key, returning ErrWrongProgram otherwise. Callers must verify before
// seeding: the CRC proves the bytes are intact, the key proves they describe
// this program.
func (s *Snapshot) VerifyKey(key string) error {
	if s.ProgramKey != key {
		return fmt.Errorf("%w: snapshot is for %q, program is %q", ErrWrongProgram, s.ProgramKey, key)
	}
	return nil
}

// ProgramKey derives a content hash for a compiled program, for consumers
// without a registry (the facade, offline tools): sha256 over the canonical
// module serialization, truncated to the registry's key width. Keys from
// different derivations (registry source hash vs. this) are distinct
// namespaces; a snapshot only round-trips within the layer that created it.
func ProgramKey(p *classfile.Program) (string, error) {
	h := sha256.New()
	if err := classfile.Write(h, p); err != nil {
		return "", fmt.Errorf("snapshot: hashing program: %w", err)
	}
	return hex.EncodeToString(h.Sum(nil))[:16], nil
}

// Journal is the mutex-protected counter set for snapshot lifecycle events
// that happen outside any session — background commits, rejected loads. The
// serve layer merges it into its aggregate via Counters.Add at read time.
// (Session-scoped seeding increments the session's own counters instead;
// see core.) It lives here because direct stats.Counters field writes are
// confined to the owning subsystems by the statsatomic analyzer.
type Journal struct {
	mu  sync.Mutex
	ctr stats.Counters
}

// Saved records one committed snapshot.
func (j *Journal) Saved() {
	j.mu.Lock()
	j.ctr.SnapshotsSaved++
	j.mu.Unlock()
}

// Rejected records one refused snapshot.
func (j *Journal) Rejected() {
	j.mu.Lock()
	j.ctr.SnapshotsRejected++
	j.mu.Unlock()
}

// Quarantined records one corrupt snapshot file moved aside by a scrub.
func (j *Journal) Quarantined() {
	j.mu.Lock()
	j.ctr.SnapshotsQuarantined++
	j.mu.Unlock()
}

// Counters returns a value copy of the journal's counters.
func (j *Journal) Counters() stats.Counters {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.ctr.Snapshot()
}
