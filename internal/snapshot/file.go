package snapshot

import (
	"os"
	"path/filepath"
)

// Save encodes s and commits it to path atomically.
func Save(path string, s *Snapshot) error { return WriteAtomic(path, Encode(s)) }

// Load reads and decodes the snapshot file at path. The error distinguishes
// I/O failures (os errors, including fs.ErrNotExist) from format rejections
// (the typed codec errors).
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteAtomic commits bytes via a same-directory temp file, fsync, and
// rename, then fsyncs the parent directory. A crash mid-write never leaves a
// torn snapshot where a loader can see it, and a power cut after return
// cannot lose the rename — the commit is durable, not merely atomic.
func WriteAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tsnap-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	if werr == nil {
		werr = tmp.Sync()
	}
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-committed rename survives power loss.
// Filesystems that refuse directory fsync (it is optional in POSIX) don't
// make the commit any less atomic, so those errors are not fatal.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}
