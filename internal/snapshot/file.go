package snapshot

import (
	"os"
	"path/filepath"
)

// Save encodes s and commits it to path atomically.
func Save(path string, s *Snapshot) error { return WriteAtomic(path, Encode(s)) }

// Load reads and decodes the snapshot file at path. The error distinguishes
// I/O failures (os errors, including fs.ErrNotExist) from format rejections
// (the typed codec errors).
func Load(path string) (*Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}

// WriteAtomic commits bytes via a same-directory temp file and rename, so a
// crash mid-write never leaves a torn snapshot where a loader can see it.
func WriteAtomic(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".tsnap-*")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(data)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}
