package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeriveBasics(t *testing.T) {
	c := &Counters{
		Instrs:                  1000,
		BlockDispatches:         400,
		TracesEntered:           100,
		TracesCompleted:         90,
		CompletedTraceBlocksSum: 450,
		InstrsInTraces:          800,
		InstrsInCompletedTraces: 700,
		Signals:                 4,
		TracesBuilt:             6,
	}
	m := c.Derive()
	if m.AvgTraceLength != 5 {
		t.Errorf("avg length = %v, want 5", m.AvgTraceLength)
	}
	if m.Coverage != 0.7 {
		t.Errorf("coverage = %v, want 0.7", m.Coverage)
	}
	if m.CacheCoverage != 0.8 {
		t.Errorf("cache coverage = %v, want 0.8", m.CacheCoverage)
	}
	if m.CompletionRate != 0.9 {
		t.Errorf("completion = %v, want 0.9", m.CompletionRate)
	}
	if m.DispatchesPerSignal != 100 {
		t.Errorf("dispatches/signal = %v, want 100", m.DispatchesPerSignal)
	}
	if m.TraceEventInterval != 100 {
		t.Errorf("event interval = %v, want 100", m.TraceEventInterval)
	}
}

func TestDeriveZeroDenominators(t *testing.T) {
	c := &Counters{}
	m := c.Derive()
	if m.AvgTraceLength != 0 || m.Coverage != 0 || m.CompletionRate != 0 {
		t.Error("zero counters should derive zeros")
	}
	if m.DispatchesPerSignal != 0 || m.TraceEventInterval != 0 {
		t.Error("0/0 ratios should be 0")
	}
	c2 := &Counters{Instrs: 10, BlockDispatches: 10}
	m2 := c2.Derive()
	if !math.IsInf(m2.DispatchesPerSignal, 1) || !math.IsInf(m2.TraceEventInterval, 1) {
		t.Error("no-signal run should derive +Inf intervals")
	}
}

func TestAddAccumulates(t *testing.T) {
	a := &Counters{Instrs: 1, Signals: 2, TracesBuilt: 3, NativeCalls: 4}
	b := &Counters{Instrs: 10, Signals: 20, TracesBuilt: 30, NativeCalls: 40}
	a.Add(b)
	if a.Instrs != 11 || a.Signals != 22 || a.TracesBuilt != 33 || a.NativeCalls != 44 {
		t.Errorf("Add wrong: %+v", a)
	}
}

// TestPropertyAddIsComponentwise: Add never loses or mixes fields (checked
// on a sample of fields via quick-generated values).
func TestPropertyAddIsComponentwise(t *testing.T) {
	f := func(a, b Counters) bool {
		sum := a
		sum.Add(&b)
		return sum.Instrs == a.Instrs+b.Instrs &&
			sum.InstrDispatches == a.InstrDispatches+b.InstrDispatches &&
			sum.BlockDispatches == a.BlockDispatches+b.BlockDispatches &&
			sum.TraceDispatches == a.TraceDispatches+b.TraceDispatches &&
			sum.TracesEntered == a.TracesEntered+b.TracesEntered &&
			sum.TracesCompleted == a.TracesCompleted+b.TracesCompleted &&
			sum.CompletedTraceBlocksSum == a.CompletedTraceBlocksSum+b.CompletedTraceBlocksSum &&
			sum.BlocksInTraces == a.BlocksInTraces+b.BlocksInTraces &&
			sum.InstrsInTraces == a.InstrsInTraces+b.InstrsInTraces &&
			sum.InstrsInCompletedTraces == a.InstrsInCompletedTraces+b.InstrsInCompletedTraces &&
			sum.ProfiledDispatches == a.ProfiledDispatches+b.ProfiledDispatches &&
			sum.NodesCreated == a.NodesCreated+b.NodesCreated &&
			sum.EdgesCreated == a.EdgesCreated+b.EdgesCreated &&
			sum.DecayChecks == a.DecayChecks+b.DecayChecks &&
			sum.Signals == a.Signals+b.Signals &&
			sum.TracesBuilt == a.TracesBuilt+b.TracesBuilt &&
			sum.TracesReused == a.TracesReused+b.TracesReused &&
			sum.TracesRetired == a.TracesRetired+b.TracesRetired &&
			sum.RebuildRequests == a.RebuildRequests+b.RebuildRequests &&
			sum.MethodCalls == a.MethodCalls+b.MethodCalls &&
			sum.NativeCalls == a.NativeCalls+b.NativeCalls &&
			sum.SnapshotsSaved == a.SnapshotsSaved+b.SnapshotsSaved &&
			sum.SnapshotsLoaded == a.SnapshotsLoaded+b.SnapshotsLoaded &&
			sum.SnapshotsRejected == a.SnapshotsRejected+b.SnapshotsRejected &&
			sum.NodesSeededFromSnapshot == a.NodesSeededFromSnapshot+b.NodesSeededFromSnapshot &&
			sum.TracesSeededFromSnapshot == a.TracesSeededFromSnapshot+b.TracesSeededFromSnapshot
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsKeyNumbers(t *testing.T) {
	c := &Counters{Instrs: 123456, Signals: 7}
	s := c.String()
	if !strings.Contains(s, "123456") || !strings.Contains(s, "signals=7") {
		t.Errorf("String() = %q", s)
	}
}

// TestAddCoversEveryField walks Counters with reflection and verifies that
// Add sums every single field, so a newly added counter cannot silently
// drift out of aggregation (the serve layer depends on Add for its global
// totals). It also pins the invariant Add relies on: every field is an
// int64 event count.
func TestAddCoversEveryField(t *testing.T) {
	typ := reflect.TypeOf(Counters{})
	var a, b Counters
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(&b).Elem()
	for i := 0; i < typ.NumField(); i++ {
		f := typ.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			t.Fatalf("Counters.%s is %s; every counter must be int64 so Add can sum it", f.Name, f.Type)
		}
		// Distinct per-field values so a transposed assignment in Add
		// (c.X += o.Y) cannot cancel out.
		av.Field(i).SetInt(int64(1000 + i))
		bv.Field(i).SetInt(int64(1 << (i % 32)))
	}
	sum := a
	sum.Add(&b)
	sv := reflect.ValueOf(sum)
	for i := 0; i < typ.NumField(); i++ {
		want := av.Field(i).Int() + bv.Field(i).Int()
		if got := sv.Field(i).Int(); got != want {
			t.Errorf("Add does not aggregate Counters.%s: got %d, want %d", typ.Field(i).Name, got, want)
		}
	}
	// Snapshot must be a value copy, detached from the original.
	snap := a.Snapshot()
	a.Instrs++
	if snap.Instrs != 1000 {
		t.Errorf("Snapshot aliases the live counters: Instrs = %d", snap.Instrs)
	}
}

// TestMetricsMarshalJSON pins that infinite ratios serialize as null (not
// an encoding error) and that the wire struct covers every Metrics field.
func TestMetricsMarshalJSON(t *testing.T) {
	m := Metrics{AvgTraceLength: 1.5, DispatchesPerSignal: math.Inf(1), TraceEventInterval: math.NaN()}
	b, err := json.Marshal(m)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var decoded map[string]*float64
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	typ := reflect.TypeOf(Metrics{})
	if len(decoded) != typ.NumField() {
		t.Fatalf("wire form has %d fields, Metrics has %d; update MarshalJSON", len(decoded), typ.NumField())
	}
	for i := 0; i < typ.NumField(); i++ {
		if _, ok := decoded[typ.Field(i).Name]; !ok {
			t.Errorf("MarshalJSON drops Metrics.%s", typ.Field(i).Name)
		}
	}
	if decoded["DispatchesPerSignal"] != nil || decoded["TraceEventInterval"] != nil {
		t.Error("non-finite ratios must serialize as null")
	}
	if v := decoded["AvgTraceLength"]; v == nil || *v != 1.5 {
		t.Errorf("AvgTraceLength = %v, want 1.5", v)
	}
}
