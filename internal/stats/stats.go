// Package stats collects the execution counters of a VM run and derives the
// dependent values defined in §5.2 of the paper: average executed trace
// length, instruction stream coverage, dynamic trace completion rate, state
// signal rate, and trace event interval.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
)

// Counters is the raw event record of one run. The engine, the profiler and
// the trace cache all increment fields here; nothing in this package is
// concurrency-safe because a machine runs single-threaded, as SableVM's
// per-thread dispatch loop does.
type Counters struct {
	// Engine counters.
	Instrs          int64 // bytecode instructions executed
	InstrDispatches int64 // per-instruction dispatches (Figure 1 engine only)
	BlockDispatches int64 // block-boundary dispatches (threaded model)
	MethodCalls     int64 // method invocations (bytecode + native)
	NativeCalls     int64 // native method invocations

	// Trace-dispatch counters.
	TraceDispatches         int64 // dispatches consumed by trace execution
	TracesEntered           int64 // trace executions started
	TracesCompleted         int64 // trace executions that ran to the end
	CompletedTraceBlocksSum int64 // total blocks executed by completed traces
	BlocksInTraces          int64 // blocks executed inside traces (incl. partial)
	InstrsInTraces          int64 // instructions executed inside traces
	InstrsInCompletedTraces int64 // instructions executed by completed traces

	// Profiler counters.
	ProfiledDispatches int64 // dispatches that executed the profiler hook
	NodesCreated       int64 // branch correlation graph nodes created
	NodesSeededUnique  int64 // nodes created pre-classified unique by static hints
	EdgesCreated       int64 // branch correlation edges created
	EdgeSpills         int64 // edge lists grown past their inline capacity
	DecayChecks        int64 // periodic decay invocations
	Signals            int64 // state-change signals sent to the trace cache

	// Trace-cache counters.
	TracesBuilt     int64 // traces constructed
	TracesReused    int64 // constructions that hash-consed an existing trace
	TracesRetired   int64 // traces removed from the dispatch map
	RebuildRequests int64 // signal-triggered reconstruction passes
	TracesEvicted   int64 // traces retired by cache budget eviction (also in TracesRetired)
	BudgetPressure  int64 // trace registrations that forced at least one eviction

	// Tiered-execution counters.
	TracesCompiled     int64 // traces promoted to a compiled superinstruction form
	TierDowns          int64 // compiled forms discarded after guard-exit storms
	CompiledDispatches int64 // trace dispatches served by a compiled form

	// Snapshot (profile persistence) counters.
	SnapshotsSaved           int64 // snapshots committed to durable storage
	SnapshotsLoaded          int64 // sessions seeded from a snapshot
	SnapshotsRejected        int64 // snapshots refused (corrupt, wrong version, wrong program)
	SnapshotsQuarantined     int64 // corrupt snapshot files moved aside by the startup scrub
	NodesSeededFromSnapshot  int64 // BCG nodes restored by snapshot seeding
	TracesSeededFromSnapshot int64 // traces re-registered by snapshot seeding
}

// Metrics are the derived dependent values of §5.2.
type Metrics struct {
	// AvgTraceLength is the mean number of blocks executed by traces that
	// ran to completion (Table I).
	AvgTraceLength float64
	// Coverage is the fraction of all executed instructions executed by
	// completed traces (Table II).
	Coverage float64
	// CacheCoverage additionally counts instructions from partially
	// executed traces (the paper's "the trace cache captures 90.7%").
	CacheCoverage float64
	// CompletionRate is completed/entered trace executions (Table III).
	CompletionRate float64
	// DispatchesPerSignal is block dispatches per profiler state-change
	// signal (Table IV, reported in thousands).
	DispatchesPerSignal float64
	// TraceEventInterval is instructions executed per trace event, where an
	// event is a constructed trace or a signal (Table V, in thousands).
	TraceEventInterval float64
}

// Derive computes the dependent values from raw counters. Ratios whose
// denominator is zero are reported as 0 (no traces ever completed) or +Inf
// (no signals/events ever happened), matching how the tables read: "no
// signals" means an unboundedly long interval, while "no completed traces"
// means there is no length to report.
func (c *Counters) Derive() Metrics {
	var m Metrics
	if c.TracesCompleted > 0 {
		m.AvgTraceLength = float64(c.CompletedTraceBlocksSum) / float64(c.TracesCompleted)
	}
	if c.Instrs > 0 {
		m.Coverage = float64(c.InstrsInCompletedTraces) / float64(c.Instrs)
		m.CacheCoverage = float64(c.InstrsInTraces) / float64(c.Instrs)
	}
	if c.TracesEntered > 0 {
		m.CompletionRate = float64(c.TracesCompleted) / float64(c.TracesEntered)
	}
	m.DispatchesPerSignal = ratioOrInf(c.BlockDispatches, c.Signals)
	m.TraceEventInterval = ratioOrInf(c.Instrs, c.TracesBuilt+c.Signals)
	return m
}

// MarshalJSON serializes non-finite ratios (no signals ever → +Inf
// interval) as null, which encoding/json cannot represent and would
// otherwise reject, breaking any API that ships Metrics over the wire.
func (m Metrics) MarshalJSON() ([]byte, error) {
	finite := func(v float64) *float64 {
		if math.IsInf(v, 0) || math.IsNaN(v) {
			return nil
		}
		return &v
	}
	return json.Marshal(struct {
		AvgTraceLength      *float64
		Coverage            *float64
		CacheCoverage       *float64
		CompletionRate      *float64
		DispatchesPerSignal *float64
		TraceEventInterval  *float64
	}{
		finite(m.AvgTraceLength), finite(m.Coverage), finite(m.CacheCoverage),
		finite(m.CompletionRate), finite(m.DispatchesPerSignal), finite(m.TraceEventInterval),
	})
}

func ratioOrInf(num, den int64) float64 {
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(num) / float64(den)
}

// Add accumulates other into c (used when aggregating multiple runs).
func (c *Counters) Add(o *Counters) {
	c.Instrs += o.Instrs
	c.InstrDispatches += o.InstrDispatches
	c.BlockDispatches += o.BlockDispatches
	c.MethodCalls += o.MethodCalls
	c.NativeCalls += o.NativeCalls
	c.TraceDispatches += o.TraceDispatches
	c.TracesEntered += o.TracesEntered
	c.TracesCompleted += o.TracesCompleted
	c.CompletedTraceBlocksSum += o.CompletedTraceBlocksSum
	c.BlocksInTraces += o.BlocksInTraces
	c.InstrsInTraces += o.InstrsInTraces
	c.InstrsInCompletedTraces += o.InstrsInCompletedTraces
	c.ProfiledDispatches += o.ProfiledDispatches
	c.NodesCreated += o.NodesCreated
	c.NodesSeededUnique += o.NodesSeededUnique
	c.EdgesCreated += o.EdgesCreated
	c.EdgeSpills += o.EdgeSpills
	c.DecayChecks += o.DecayChecks
	c.Signals += o.Signals
	c.TracesBuilt += o.TracesBuilt
	c.TracesReused += o.TracesReused
	c.TracesRetired += o.TracesRetired
	c.RebuildRequests += o.RebuildRequests
	c.TracesEvicted += o.TracesEvicted
	c.BudgetPressure += o.BudgetPressure
	c.TracesCompiled += o.TracesCompiled
	c.TierDowns += o.TierDowns
	c.CompiledDispatches += o.CompiledDispatches
	c.SnapshotsSaved += o.SnapshotsSaved
	c.SnapshotsLoaded += o.SnapshotsLoaded
	c.SnapshotsRejected += o.SnapshotsRejected
	c.SnapshotsQuarantined += o.SnapshotsQuarantined
	c.NodesSeededFromSnapshot += o.NodesSeededFromSnapshot
	c.TracesSeededFromSnapshot += o.TracesSeededFromSnapshot
}

// Snapshot returns a value copy of the counters. A session mutates its
// Counters in place while it runs; aggregators that publish per-run records
// (the serve layer, the harness) must copy at a quiescent point rather than
// retain the live pointer.
func (c *Counters) Snapshot() Counters { return *c }

// String summarizes the counters for human consumption.
func (c *Counters) String() string {
	m := c.Derive()
	return fmt.Sprintf(
		"instrs=%d blockDispatches=%d traceDispatches=%d entered=%d completed=%d "+
			"avgLen=%.1f coverage=%.1f%% cacheCoverage=%.1f%% completion=%.1f%% "+
			"signals=%d tracesBuilt=%d",
		c.Instrs, c.BlockDispatches, c.TraceDispatches, c.TracesEntered, c.TracesCompleted,
		m.AvgTraceLength, m.Coverage*100, m.CacheCoverage*100, m.CompletionRate*100,
		c.Signals, c.TracesBuilt)
}
