package obs

import (
	"strconv"
	"time"
)

// Encoder renders events into caller-provided byte slices, append-style,
// the way strconv does: no per-event allocation once the destination buffer
// has grown to its working size. The daemon's /v1/events handler and the
// tracevm -events dump both drain a ring through one reused encoder, so a
// busy read side does not pressure the collector either.
//
// The zero value is ready to use.
type Encoder struct{}

// AppendText appends a one-line human-readable rendering of e to dst and
// returns the extended slice, e.g.:
//
//	000042 12:04:05.000123 node-state (17,19) weak->strong best=21 [compress]
func (enc *Encoder) AppendText(dst []byte, e Event) []byte {
	dst = appendSeq(dst, e.Seq)
	dst = append(dst, ' ')
	dst = time.Unix(0, e.UnixNano).AppendFormat(dst, "15:04:05.000000")
	dst = append(dst, ' ')
	dst = append(dst, e.Type.String()...)
	switch e.Type {
	case EvNodeState:
		dst = appendPair(dst, e.X, e.Y)
		dst = append(dst, ' ')
		dst = append(dst, stateName(e.Old)...)
		dst = append(dst, "->"...)
		dst = append(dst, stateName(e.New)...)
		dst = append(dst, " best="...)
		dst = strconv.AppendInt(dst, e.Val, 10)
	case EvTraceBuilt, EvTraceReused, EvTraceRetired:
		dst = append(dst, " trace="...)
		dst = strconv.AppendInt(dst, int64(e.TraceID), 10)
		dst = append(dst, " blocks="...)
		dst = strconv.AppendInt(dst, e.Val, 10)
	case EvTraceEvicted:
		dst = append(dst, " trace="...)
		dst = strconv.AppendInt(dst, int64(e.TraceID), 10)
		dst = append(dst, " heat="...)
		dst = strconv.AppendInt(dst, e.Val, 10)
	case EvBreaker:
		dst = append(dst, ' ')
		dst = append(dst, breakerName(e.Old)...)
		dst = append(dst, "->"...)
		dst = append(dst, breakerName(e.New)...)
	case EvQuarantine:
		dst = append(dst, " panics="...)
		dst = strconv.AppendInt(dst, e.Val, 10)
	case EvQueueSaturated:
		dst = append(dst, " depth="...)
		dst = strconv.AppendInt(dst, e.Val, 10)
	}
	if e.Program != "" {
		dst = append(dst, " ["...)
		dst = append(dst, e.Program...)
		dst = append(dst, ']')
	}
	return dst
}

// AppendJSON appends a JSON object rendering of e to dst and returns the
// extended slice. The shape matches Event's encoding/json form, so the two
// paths are interchangeable on the wire; this one just never allocates.
func (enc *Encoder) AppendJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"unixNano":`...)
	dst = strconv.AppendInt(dst, e.UnixNano, 10)
	dst = append(dst, `,"type":"`...)
	dst = append(dst, e.Type.String()...)
	dst = append(dst, '"')
	if e.Old != 0 {
		dst = append(dst, `,"old":`...)
		dst = strconv.AppendUint(dst, uint64(e.Old), 10)
	}
	if e.New != 0 {
		dst = append(dst, `,"new":`...)
		dst = strconv.AppendUint(dst, uint64(e.New), 10)
	}
	dst = append(dst, `,"x":`...)
	dst = strconv.AppendInt(dst, int64(e.X), 10)
	dst = append(dst, `,"y":`...)
	dst = strconv.AppendInt(dst, int64(e.Y), 10)
	dst = append(dst, `,"traceId":`...)
	dst = strconv.AppendInt(dst, int64(e.TraceID), 10)
	dst = append(dst, `,"val":`...)
	dst = strconv.AppendInt(dst, e.Val, 10)
	if e.Program != "" {
		dst = append(dst, `,"program":`...)
		dst = strconv.AppendQuote(dst, e.Program)
	}
	return append(dst, '}')
}

// appendSeq renders the sequence number zero-padded to six digits so event
// dumps align; longer sequences widen naturally.
func appendSeq(dst []byte, seq uint64) []byte {
	start := len(dst)
	dst = strconv.AppendUint(dst, seq, 10)
	for len(dst)-start < 6 {
		dst = append(dst, 0)
		copy(dst[start+1:], dst[start:])
		dst[start] = '0'
	}
	return dst
}

func appendPair(dst []byte, x, y int32) []byte {
	dst = append(dst, " ("...)
	dst = strconv.AppendInt(dst, int64(x), 10)
	dst = append(dst, ',')
	dst = strconv.AppendInt(dst, int64(y), 10)
	return append(dst, ')')
}

// stateName mirrors profile.State names without importing the package (obs
// must stay a leaf every layer can import).
func stateName(s uint8) string {
	switch s {
	case 0:
		return "new"
	case 1:
		return "weak"
	case 2:
		return "strong"
	case 3:
		return "unique"
	}
	return "invalid"
}

// breakerName mirrors serve.BreakerState names, same leaf-package reason.
func breakerName(s uint8) string {
	switch s {
	case 0:
		return "closed"
	case 1:
		return "open"
	case 2:
		return "half-open"
	}
	return "invalid"
}
