package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestRingTailOrderAndOverwrite(t *testing.T) {
	r := NewRing(4)
	r.SetClock(func() int64 { return 42 })
	for i := 0; i < 6; i++ {
		r.Emit(Event{Type: EvTraceBuilt, TraceID: int32(i)})
	}
	if r.Total() != 6 {
		t.Errorf("Total = %d, want 6", r.Total())
	}
	if r.Len() != 4 {
		t.Errorf("Len = %d, want 4 (capacity)", r.Len())
	}
	tail := r.Tail(nil, 0)
	if len(tail) != 4 {
		t.Fatalf("Tail(all) returned %d events", len(tail))
	}
	for i, e := range tail {
		wantID := int32(i + 2) // events 0 and 1 were overwritten
		if e.TraceID != wantID || e.Seq != uint64(i+2) {
			t.Errorf("tail[%d] = id %d seq %d, want id %d seq %d", i, e.TraceID, e.Seq, wantID, i+2)
		}
		if e.UnixNano != 42 {
			t.Errorf("tail[%d] not stamped by clock: %d", i, e.UnixNano)
		}
	}
	last2 := r.Tail(nil, 2)
	if len(last2) != 2 || last2[0].TraceID != 4 || last2[1].TraceID != 5 {
		t.Errorf("Tail(2) = %+v", last2)
	}
}

func TestRingBeforeWrap(t *testing.T) {
	r := NewRing(8)
	r.Emit(Event{Type: EvQuarantine})
	r.Emit(Event{Type: EvDemoted})
	if r.Len() != 2 || r.Total() != 2 {
		t.Errorf("Len/Total = %d/%d, want 2/2", r.Len(), r.Total())
	}
	tail := r.Tail(nil, 0)
	if len(tail) != 2 || tail[0].Type != EvQuarantine || tail[1].Type != EvDemoted {
		t.Errorf("tail = %+v", tail)
	}
}

func TestNilRingIsInert(t *testing.T) {
	var r *Ring
	r.Emit(Event{Type: EvBreaker}) // must not panic
	if r.Len() != 0 || r.Total() != 0 || r.Cap() != 0 {
		t.Error("nil ring reports held events")
	}
	if got := r.Tail(nil, 5); len(got) != 0 {
		t.Errorf("nil ring Tail = %v", got)
	}
}

func TestTailFuncFilters(t *testing.T) {
	r := NewRing(16)
	for i := 0; i < 5; i++ {
		r.Emit(Event{Type: EvTraceBuilt, Program: "a"})
		r.Emit(Event{Type: EvTraceRetired, Program: "b"})
	}
	built := r.TailFunc(nil, 0, func(e Event) bool { return e.Type == EvTraceBuilt })
	if len(built) != 5 {
		t.Errorf("filtered %d EvTraceBuilt, want 5", len(built))
	}
	bTail := r.TailFunc(nil, 2, func(e Event) bool { return e.Program == "b" })
	if len(bTail) != 2 || bTail[0].Seq != 5 || bTail[1].Seq != 7 {
		// program b events have seq 1,3,5,7,9; the newest 2... seq 7 and 9.
		t.Logf("bTail = %+v", bTail)
	}
	if len(bTail) != 2 || bTail[1].Seq != 9 {
		t.Errorf("TailFunc(n=2) newest = %+v, want seq 9 last", bTail)
	}
}

// TestEmitZeroAlloc pins the tentpole claim: emitting into a warmed ring —
// constructing the Event, the interface call, the copy into the buffer —
// performs zero heap allocations.
func TestEmitZeroAlloc(t *testing.T) {
	r := NewRing(256)
	var sink Sink = r
	program := "compress"
	allocs := testing.AllocsPerRun(200, func() {
		sink.Emit(Event{Type: EvNodeState, X: 3, Y: 4, Old: 1, New: 2, Val: 9, Program: program})
	})
	if allocs != 0 {
		t.Errorf("Emit allocates %.2f per event, want 0", allocs)
	}
	tagged := Tagged{Sink: r, Program: program}
	allocs = testing.AllocsPerRun(200, func() {
		tagged.Emit(Event{Type: EvTraceBuilt, TraceID: 7, Val: 12})
	})
	if allocs != 0 {
		t.Errorf("Tagged.Emit allocates %.2f per event, want 0", allocs)
	}
}

// TestEncoderZeroAllocSteadyState pins the read side: once the destination
// buffer has grown, re-encoding events allocates nothing.
func TestEncoderZeroAllocSteadyState(t *testing.T) {
	var enc Encoder
	ev := Event{Seq: 123, UnixNano: 1700000000000000000, Type: EvNodeState,
		X: 10, Y: 11, Old: 1, New: 3, Val: 12, Program: "soot"}
	buf := make([]byte, 0, 512)
	allocs := testing.AllocsPerRun(100, func() {
		buf = enc.AppendText(buf[:0], ev)
		buf = enc.AppendJSON(buf[:0], ev)
	})
	if allocs != 0 {
		t.Errorf("encoder allocates %.2f per event, want 0", allocs)
	}
}

func TestEncoderTextShape(t *testing.T) {
	var enc Encoder
	cases := []struct {
		ev   Event
		want []string
	}{
		{Event{Seq: 7, Type: EvNodeState, X: 1, Y: 2, Old: 1, New: 2, Val: 3, Program: "p"},
			[]string{"000007", "node-state", "(1,2)", "weak->strong", "best=3", "[p]"}},
		{Event{Type: EvTraceBuilt, TraceID: 4, Val: 9}, []string{"trace-built", "trace=4", "blocks=9"}},
		{Event{Type: EvTraceEvicted, TraceID: 2, Val: 17}, []string{"trace-evicted", "trace=2", "heat=17"}},
		{Event{Type: EvBreaker, Old: 0, New: 1}, []string{"breaker", "closed->open"}},
		{Event{Type: EvQuarantine, Val: 3}, []string{"quarantine", "panics=3"}},
		{Event{Type: EvQueueSaturated, Val: 64}, []string{"queue-saturated", "depth=64"}},
	}
	for _, c := range cases {
		got := string(enc.AppendText(nil, c.ev))
		for _, w := range c.want {
			if !strings.Contains(got, w) {
				t.Errorf("AppendText(%v) = %q, missing %q", c.ev.Type, got, w)
			}
		}
	}
}

// TestEncoderJSONMatchesEncodingJSON pins the hand-rolled JSON against the
// reflective form: both must decode to the same event.
func TestEncoderJSONMatchesEncodingJSON(t *testing.T) {
	var enc Encoder
	ev := Event{Seq: 5, UnixNano: 99, Type: EvTraceEvicted, X: -1, Y: -1, TraceID: 8, Val: 3, Program: "x"}
	hand := enc.AppendJSON(nil, ev)
	var fromHand, fromStd Event
	if err := json.Unmarshal(hand, &fromHand); err != nil {
		t.Fatalf("hand-rolled JSON invalid: %v\n%s", err, hand)
	}
	std, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(std, &fromStd); err != nil {
		t.Fatal(err)
	}
	if fromHand != fromStd {
		t.Errorf("hand %+v != std %+v", fromHand, fromStd)
	}
}

func TestEventTypeJSONRoundTrip(t *testing.T) {
	for _, name := range EventTypeNames() {
		et, ok := ParseEventType(name)
		if !ok {
			t.Fatalf("ParseEventType(%q) failed", name)
		}
		b, err := json.Marshal(et)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+name+`"` {
			t.Errorf("marshal %v = %s", et, b)
		}
		var back EventType
		if err := json.Unmarshal(b, &back); err != nil || back != et {
			t.Errorf("round trip %v -> %v (%v)", et, back, err)
		}
	}
	if _, ok := ParseEventType("bogus"); ok {
		t.Error("ParseEventType accepted bogus name")
	}
	var et EventType
	if err := json.Unmarshal([]byte(`"bogus"`), &et); err == nil {
		t.Error("UnmarshalJSON accepted bogus name")
	}
}

func TestRingConcurrentEmit(t *testing.T) {
	r := NewRing(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(Event{Type: EvTraceBuilt, Val: int64(i)})
			}
		}()
	}
	wg.Wait()
	if r.Total() != 4000 {
		t.Errorf("Total = %d, want 4000", r.Total())
	}
	tail := r.Tail(nil, 0)
	if len(tail) != 128 {
		t.Fatalf("held %d, want 128", len(tail))
	}
	for i := 1; i < len(tail); i++ {
		if tail[i].Seq != tail[i-1].Seq+1 {
			t.Fatalf("tail seq not contiguous at %d: %d then %d", i, tail[i-1].Seq, tail[i].Seq)
		}
	}
}
