// Package obs is the zero-allocation observability layer: a fixed-size
// ring-buffer event trace recording *when* the dynamic system changed state
// — a BCG node crossed the correlated/weak boundary, a trace was built,
// retired or evicted, a circuit breaker moved, a program was quarantined,
// the request queue saturated — where the counters in package stats only
// record *how often*.
//
// The design follows the per-worker stats-ring pattern (record locally with
// no synchronization on the hot path, aggregate lazily on read): the
// per-dispatch hot path never emits an event, because events are defined as
// state *transitions* and the steady state of a warmed profiler has none.
// An enabled-but-idle tracer therefore costs the hot path nothing — zero
// allocations and zero synchronization per dispatch — which is what lets
// tracing stay always-on in production. When a transition does happen the
// emitting slow path pays one short mutex section and one struct copy into
// a preallocated buffer; the ring never allocates after construction.
//
// Event is a fixed-size value type with no heap-backed payload of its own
// (the Program tag is a string header referencing the emitter's existing
// name), so constructing and passing one allocates nothing. The Encoder in
// encode.go renders events into caller-provided buffers, append-style, so
// the read side can also run allocation-free once warmed.
package obs

import (
	"fmt"
	"strings"
	"sync"
	"time"
)

// EventType says what changed. The zero value EvNone marks an empty ring
// slot and is never emitted.
type EventType uint8

const (
	EvNone EventType = iota
	// EvNodeState: a BCG node's correlation summary diverged from the last
	// acknowledged one (the profiler signalled the trace cache). X,Y are the
	// node's block pair, Old/New the profile.State values, Val the new best
	// successor block (-1 if none).
	EvNodeState
	// EvTraceBuilt: the cache constructed a new trace. TraceID is its ID,
	// Val its block count.
	EvTraceBuilt
	// EvTraceReused: a reconstruction pass hash-consed an existing trace
	// instead of building a duplicate. TraceID, Val as for EvTraceBuilt.
	EvTraceReused
	// EvTraceRetired: a trace left the dispatch map (invalidation, entry
	// replacement, or eviction — evictions additionally emit EvTraceEvicted,
	// mirroring how stats counts them). TraceID, Val as above.
	EvTraceRetired
	// EvTraceEvicted: the cache budget evicted a trace. TraceID is the
	// victim, Val its heat score at eviction.
	EvTraceEvicted
	// EvBreaker: a program's churn circuit breaker changed state. Old/New
	// are serve breaker states (closed=0, open=1, half-open=2).
	EvBreaker
	// EvQuarantine: a program crossed the panic threshold and is refused
	// from now on. Val is the panic count.
	EvQuarantine
	// EvQueueSaturated: a request was rejected with ErrQueueFull. Val is
	// the queue depth at rejection.
	EvQueueSaturated
	// EvDemoted: an open breaker forced a profiled run down to plain block
	// dispatch.
	EvDemoted
	// EvSnapshotSaved: a program's learned profile was committed to durable
	// storage. Val is the snapshot's node count.
	EvSnapshotSaved
	// EvSnapshotLoaded: a stored snapshot entered the warm-start store (from
	// disk or a PUT). Val is the snapshot's node count.
	EvSnapshotLoaded
	// EvSnapshotRejected: a snapshot was refused — corrupt, wrong format
	// version, or keyed to a different program.
	EvSnapshotRejected
	// EvEpochMerge: the epoch coordinator merged a program's per-worker
	// profiler shards into a fresh globally derived view. Val is the merged
	// graph's node count.
	EvEpochMerge
	// EvSnapshotQuarantined: the startup scrub moved a corrupt snapshot file
	// to its .corrupt sidecar. Val is the file size in bytes.
	EvSnapshotQuarantined
	// EvTraceCompiled: the tiering policy promoted a trace to its compiled
	// superinstruction form. TraceID is the trace, Val its dropped-guard
	// count.
	EvTraceCompiled
	// EvTraceTierDown: the engine discarded a trace's compiled form after a
	// guard-exit storm. TraceID is the trace, Val its compiled guard-exit
	// count at demotion.
	EvTraceTierDown

	numEventTypes
)

var eventTypeNames = [numEventTypes]string{
	EvNone:           "none",
	EvNodeState:      "node-state",
	EvTraceBuilt:     "trace-built",
	EvTraceReused:    "trace-reused",
	EvTraceRetired:   "trace-retired",
	EvTraceEvicted:   "trace-evicted",
	EvBreaker:        "breaker",
	EvQuarantine:     "quarantine",
	EvQueueSaturated: "queue-saturated",
	EvDemoted:        "demoted",

	EvSnapshotSaved:       "snapshot-saved",
	EvSnapshotLoaded:      "snapshot-loaded",
	EvSnapshotRejected:    "snapshot-rejected",
	EvEpochMerge:          "epoch-merge",
	EvSnapshotQuarantined: "snapshot-quarantined",
	EvTraceCompiled:       "trace-compiled",
	EvTraceTierDown:       "trace-tier-down",
}

func (t EventType) String() string {
	if int(t) < len(eventTypeNames) {
		return eventTypeNames[t]
	}
	return "invalid"
}

// MarshalJSON serializes the type as its name, so /v1/events reads as
// "trace-evicted" rather than a bare ordinal.
func (t EventType) MarshalJSON() ([]byte, error) {
	return []byte(`"` + t.String() + `"`), nil
}

// UnmarshalJSON accepts the name form produced by MarshalJSON.
func (t *EventType) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	if et, ok := ParseEventType(s); ok {
		*t = et
		return nil
	}
	if s == eventTypeNames[EvNone] {
		*t = EvNone
		return nil
	}
	return fmt.Errorf("obs: unknown event type %q", s)
}

// ParseEventType maps a name back to its type (the /v1/events filter).
func ParseEventType(s string) (EventType, bool) {
	for i, name := range eventTypeNames {
		if name == s && EventType(i) != EvNone {
			return EventType(i), true
		}
	}
	return EvNone, false
}

// EventTypeNames lists the emittable type names, for help text and docs.
func EventTypeNames() []string {
	out := make([]string, 0, numEventTypes-1)
	for i := int(EvNone) + 1; i < int(numEventTypes); i++ {
		out = append(out, eventTypeNames[i])
	}
	return out
}

// Event is one fixed-size observability record. Fields beyond Type are
// payload whose meaning the type defines; unused ones are zero (or -1 for
// block/trace identities, which are valid at 0). Seq and UnixNano are
// assigned by the ring at emission.
type Event struct {
	// Seq is the ring-assigned emission ordinal, monotonically increasing
	// for the ring's lifetime; gaps in a tail reveal overwritten history.
	Seq uint64 `json:"seq"`
	// UnixNano is the emission wall-clock time.
	UnixNano int64 `json:"unixNano"`
	// Type says what changed.
	Type EventType `json:"type"`
	// Old and New carry a state transition (profile.State or breaker
	// state), when the type has one.
	Old uint8 `json:"old,omitempty"`
	New uint8 `json:"new,omitempty"`
	// X, Y are the BCG block pair for node events; NoID otherwise.
	X int32 `json:"x"`
	Y int32 `json:"y"`
	// TraceID identifies the trace for trace events; NoID otherwise.
	TraceID int32 `json:"traceId"`
	// Val is the type-specific magnitude: block count, queue depth, heat,
	// best successor.
	Val int64 `json:"val"`
	// Program tags the emitting program in shared (service-level) rings;
	// empty in per-session rings, which serve exactly one program.
	Program string `json:"program,omitempty"`
}

// NoID is the Event.X/Y/TraceID value meaning "not applicable".
const NoID int32 = -1

// Sink receives events. The ring implements it; the profiler, trace cache
// and serving layer emit through it and never see the concrete ring. A nil
// Sink everywhere means tracing is off and costs nothing.
type Sink interface {
	Emit(Event)
}

// Tagged wraps a sink so every event carries a program label — how the
// serving layer funnels per-session events into its shared ring.
type Tagged struct {
	Sink    Sink
	Program string
}

// Emit implements Sink.
func (t Tagged) Emit(e Event) {
	e.Program = t.Program
	t.Sink.Emit(e)
}

// Ring is a fixed-size event trace: the newest Cap events, overwritten
// oldest-first. All storage is allocated at construction; Emit copies into
// it and never allocates. Methods are safe for concurrent use — the mutex
// section is two stores and an index increment, and it is only ever taken
// on a state transition, never per dispatch.
type Ring struct {
	mu  sync.Mutex
	buf []Event
	seq uint64

	// now substitutes the timestamp source in tests; nil means time.Now.
	now func() int64
}

// NewRing returns a ring holding the newest capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// SetClock substitutes the timestamp source (tests only). Not safe to call
// concurrently with Emit.
func (r *Ring) SetClock(now func() int64) { r.now = now }

// Emit records one event, stamping Seq and UnixNano. A nil ring drops the
// event, so callers holding an optional *Ring need no guard.
//
//tracevm:hotpath
func (r *Ring) Emit(e Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	e.Seq = r.seq
	if r.now != nil {
		e.UnixNano = r.now()
	} else {
		e.UnixNano = time.Now().UnixNano()
	}
	r.buf[int(r.seq%uint64(len(r.buf)))] = e
	r.seq++
	r.mu.Unlock()
}

// Cap returns the ring's fixed capacity.
func (r *Ring) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.buf)
}

// Total returns the number of events ever emitted (>= Len; the difference
// is overwritten history).
func (r *Ring) Total() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Len returns the number of events currently held.
func (r *Ring) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.held()
}

func (r *Ring) held() int {
	if r.seq < uint64(len(r.buf)) {
		return int(r.seq)
	}
	return len(r.buf)
}

// Tail appends the newest n held events to dst in emission order (oldest of
// the tail first) and returns the extended slice. n <= 0 or n > Len means
// all held events. Pass a reused dst to read without allocating.
func (r *Ring) Tail(dst []Event, n int) []Event {
	if r == nil {
		return dst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	held := r.held()
	if n <= 0 || n > held {
		n = held
	}
	for i := held - n; i < held; i++ {
		// Oldest held event is seq-held; walk forward.
		idx := int((r.seq - uint64(held) + uint64(i)) % uint64(len(r.buf)))
		dst = append(dst, r.buf[idx])
	}
	return dst
}

// TailFunc appends the newest n held events matching keep; n and dst behave
// as in Tail. A nil keep matches everything.
func (r *Ring) TailFunc(dst []Event, n int, keep func(Event) bool) []Event {
	if r == nil {
		return dst
	}
	all := r.Tail(nil, 0)
	if keep != nil {
		kept := all[:0]
		for _, e := range all {
			if keep(e) {
				kept = append(kept, e)
			}
		}
		all = kept
	}
	if n <= 0 || n > len(all) {
		n = len(all)
	}
	return append(dst, all[len(all)-n:]...)
}
