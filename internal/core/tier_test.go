package core_test

import (
	"testing"

	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/faultinject"
	"repro/internal/jasm"
	"repro/internal/profile"
	"repro/internal/stats"
)

// tierParams keeps the profiler deterministic and fast to converge so the
// tiering thresholds, not profiler noise, decide when transitions happen.
var tierParams = profile.Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 256}

// TestTierPromotionAtThreshold: with CompileTraces on, a hot trace must stay
// at tier 1 for exactly its TierUpDispatches dispatches and then promote,
// with the compiled form serving subsequent dispatches — and the program
// output unchanged.
func TestTierPromotionAtThreshold(t *testing.T) {
	const tierUp = 8
	s, out := buildSession(t, loopProgram, core.SessionOptions{
		Mode:   core.ModeTraceDeploy,
		Params: tierParams,
		Config: core.Config{CompileTraces: true, TierUpDispatches: tierUp},
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "49995000\n" {
		t.Errorf("output = %q, want %q", out.String(), "49995000\n")
	}
	c := s.Counters
	if c.TracesCompiled == 0 {
		t.Fatal("no trace was ever promoted to tier 2")
	}
	if c.CompiledDispatches == 0 {
		t.Fatal("promotion recorded but no dispatch ran the compiled form")
	}
	if c.TierDowns != 0 {
		t.Errorf("a perfectly regular loop caused %d tier-downs", c.TierDowns)
	}
	tier2 := 0
	for _, tr := range s.Cache.Traces() {
		if tr.Tier() != 2 {
			continue
		}
		tier2++
		if tr.CompiledEntered == 0 {
			t.Errorf("trace %d is tier 2 but was never entered compiled", tr.ID)
		}
		// Promotion fires when Entered reaches the threshold, so the trace
		// must have absorbed at least tierUp tier-1 dispatches first.
		if warmup := tr.Entered - tr.CompiledEntered; warmup < tierUp {
			t.Errorf("trace %d promoted after %d tier-1 dispatches, want >= %d",
				tr.ID, warmup, tierUp)
		}
	}
	if tier2 == 0 {
		t.Error("counters show a promotion but no cached trace is at tier 2")
	}
}

// TestTierPromotionDisabledByDefault: without CompileTraces the whole tier-2
// surface must stay dark — no thresholds stamped, no compilations, no
// compiled dispatches.
func TestTierPromotionDisabledByDefault(t *testing.T) {
	s, _ := buildSession(t, loopProgram, core.SessionOptions{
		Mode:   core.ModeTraceDeploy,
		Params: tierParams,
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := s.Counters
	if c.TracesCompiled != 0 || c.CompiledDispatches != 0 || c.TierDowns != 0 {
		t.Errorf("tiering activity without CompileTraces: compiled=%d dispatches=%d downs=%d",
			c.TracesCompiled, c.CompiledDispatches, c.TierDowns)
	}
	for _, tr := range s.Cache.Traces() {
		if tr.TierUpAt != 0 || tr.Tier() != 1 {
			t.Errorf("trace %d carries tiering state: tierUpAt=%d tier=%d", tr.ID, tr.TierUpAt, tr.Tier())
		}
	}
}

// stormProgram is a counting loop with an inner branch that is never taken:
// the block the misdirect injector lies about. Its output is the final
// counter value.
const stormProgram = `
.class Main
.method static main ( ) void
.locals 1
    iconst 0
    istore 0
loop:
    iload 0
    iconst 30000
    if_icmpge done
    iload 0
    iconst 1000000
    if_icmpge cold      ; never taken: the misdirected branch
    iinc 0 1
    goto loop
cold:
    iinc 0 2
    goto loop
done:
    iload 0
    invokestatic Main.print
    return
.end
.native static print ( int ) void println_int
.end
.entry Main main
`

const stormOutput = "30000\n"

// misdirectNeverTaken finds stormProgram's never-taken inner branch — the
// unique conditional whose taken target is a plain goto block — and returns
// an injector that reports every dispatch leaving it as going there.
func misdirectNeverTaken(t *testing.T, pcfg *cfg.ProgramCFG) *faultinject.Misdirect {
	t.Helper()
	for _, b := range pcfg.Blocks {
		if b.Kind == bytecode.FlowCond {
			if tk := pcfg.Block(b.Taken); tk != nil && tk.Kind == bytecode.FlowGoto {
				return &faultinject.Misdirect{From: b.ID, To: b.Taken}
			}
		}
	}
	t.Fatal("stormProgram has no never-taken conditional to misdirect")
	return nil
}

// TestTierDemotionAfterGuardExitStorm drives the full promotion/demotion
// cycle with an injected fault: the misdirect injector teaches the profiler
// a path the program never takes, the cache builds and (after TierUpDispatches
// entries) compiles a trace along it, real execution guard-exits out of the
// compiled form on every entry, and after TierDownGuardExits exits the
// policy must discard the compiled form, bar re-promotion, and leave the
// trace serving tier 1 — with the program output intact throughout.
func TestTierDemotionAfterGuardExitStorm(t *testing.T) {
	prog, err := jasm.Assemble(stormProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	mis := misdirectNeverTaken(t, pcfg)

	const tierUp, tierDown = 8, 4
	out := &testWriter{}
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     core.ModeTrace,
		Params:   tierParams,
		Config:   core.Config{CompileTraces: true, TierUpDispatches: tierUp, TierDownGuardExits: tierDown},
		Out:      out,
		WrapHook: mis.Wrap,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != stormOutput {
		t.Errorf("output = %q, want %q", out.String(), stormOutput)
	}
	if mis.Lies() == 0 {
		t.Fatal("the misdirect injector never fired; the storm was not injected")
	}
	c := s.Counters
	if c.TracesCompiled == 0 {
		t.Fatal("the misdirected trace was never promoted")
	}
	if c.TierDowns == 0 {
		t.Fatalf("no tier-down despite a permanent guard-exit storm (compiled dispatches: %d)",
			c.CompiledDispatches)
	}
	demoted := 0
	for _, tr := range s.Cache.Traces() {
		if !tr.CompileBarred || tr.Compiled != nil {
			continue
		}
		if tr.CompiledGuardExits > 0 {
			demoted++
			if tr.CompiledGuardExits < tierDown {
				t.Errorf("trace %d demoted after %d guard exits, want >= %d",
					tr.ID, tr.CompiledGuardExits, tierDown)
			}
		}
	}
	if demoted == 0 {
		t.Error("counters show a tier-down but no cached trace is demoted and barred")
	}
}

// TestTierDeoptStateEquivalence is the state-equivalence contract: a tier-2
// run must produce exactly the counters of the tier-1 run it replaces —
// every field of stats.Counters identical except the three tiered ones —
// and byte-identical output. It covers the happy path, both hook fidelities,
// value-flow-assisted compilation, and the demotion storm (where every
// compiled dispatch takes the deopt side exit).
func TestTierDeoptStateEquivalence(t *testing.T) {
	type scenario struct {
		name      string
		src, want string
		mode      core.Mode
		facts     bool
		misdirect bool
	}
	scenarios := []scenario{
		{name: "deploy-loop", src: loopProgram, want: "49995000\n", mode: core.ModeTraceDeploy},
		{name: "measure-loop", src: loopProgram, want: "49995000\n", mode: core.ModeTrace},
		{name: "deploy-loop-facts", src: loopProgram, want: "49995000\n", mode: core.ModeTraceDeploy, facts: true},
		{name: "guard-exit-storm", src: stormProgram, want: stormOutput, mode: core.ModeTrace, misdirect: true},
	}
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			run := func(compile bool) (stats.Counters, string) {
				prog, err := jasm.Assemble(sc.src)
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
				pcfg, err := cfg.BuildProgram(prog)
				if err != nil {
					t.Fatalf("cfg: %v", err)
				}
				out := &testWriter{}
				opts := core.SessionOptions{
					Mode:   sc.mode,
					Params: tierParams,
					Config: core.Config{CompileTraces: compile, TierUpDispatches: 4, TierDownGuardExits: 8},
					Out:    out,
				}
				if sc.facts {
					opts.Facts = valueflow.Compute(pcfg)
				}
				if sc.misdirect {
					opts.WrapHook = misdirectNeverTaken(t, pcfg).Wrap
				}
				s, err := core.NewSession(prog, pcfg, opts)
				if err != nil {
					t.Fatalf("session: %v", err)
				}
				if err := s.Run(); err != nil {
					t.Fatalf("run (compile=%v): %v", compile, err)
				}
				return s.Counters.Snapshot(), out.String()
			}
			base, baseOut := run(false)
			tiered, tieredOut := run(true)
			if tieredOut != baseOut {
				t.Errorf("tier-2 changed program output: %q vs %q", tieredOut, baseOut)
			}
			if tiered.TracesCompiled == 0 || tiered.CompiledDispatches == 0 {
				t.Fatalf("tier-2 run never engaged (compiled=%d dispatches=%d); equivalence check is vacuous",
					tiered.TracesCompiled, tiered.CompiledDispatches)
			}
			tiered.TracesCompiled, tiered.TierDowns, tiered.CompiledDispatches = 0, 0, 0
			if base != tiered {
				t.Errorf("counters diverge between tiers:\n tier1: %+v\n tier2: %+v", base, tiered)
			}
		})
	}
}

// TestTierDemotionStopsRePromotion: once demoted, a trace must never flap
// back to tier 2 — the bar holds for the rest of its life.
func TestTierDemotionStopsRePromotion(t *testing.T) {
	prog, err := jasm.Assemble(stormProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	mis := misdirectNeverTaken(t, pcfg)
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     core.ModeTrace,
		Params:   tierParams,
		Config:   core.Config{CompileTraces: true, TierUpDispatches: 4, TierDownGuardExits: 2},
		Out:      &testWriter{},
		WrapHook: mis.Wrap,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := s.Counters
	if c.TierDowns == 0 {
		t.Fatal("storm caused no demotion; nothing to check")
	}
	for _, tr := range s.Cache.Traces() {
		if tr.CompileBarred && tr.Compiled != nil {
			t.Errorf("trace %d was re-promoted after demotion", tr.ID)
		}
	}
	// A barred trace's compiled dispatches stop at the demotion point: every
	// entry after the storm is tier 1 again.
	for _, tr := range s.Cache.Traces() {
		if tr.CompileBarred && tr.TierDownAt > 0 && tr.CompiledGuardExits > tr.TierDownAt {
			t.Errorf("trace %d kept guard-exiting compiled after demotion (%d exits, threshold %d)",
				tr.ID, tr.CompiledGuardExits, tr.TierDownAt)
		}
	}
}

// testWriter is a minimal buffer (bytes.Buffer would do; this avoids pulling
// it into scenarios that run hundreds of times).
type testWriter struct{ b []byte }

func (w *testWriter) Write(p []byte) (int, error) { w.b = append(w.b, p...); return len(p), nil }
func (w *testWriter) String() string              { return string(w.b) }
