package core

import (
	"fmt"

	"repro/internal/cfg"
	"repro/internal/trace"
)

// CheckInvariants verifies the cache's structural invariants and returns the
// first violation found, or nil. It is meant for tests — the cache tests and
// the chaos harness call it after driving the cache hard — and is O(total
// cached blocks), far too slow for the dispatch path.
//
// Checked invariants:
//   - hash-consing uniqueness: every live trace is registered in byKey under
//     exactly its own block-sequence key, and no retired trace is reachable;
//   - index/cache agreement: every registered entry edge resolves through
//     the dense index to its trace and vice versa, and the index holds no
//     entries beyond the registrations;
//   - every live trace clears the completion threshold it was built under
//     and respects the configured length bounds;
//   - the cached-blocks tally matches the live traces, and both budgets
//     hold (an eviction pass keeps at least the trace that triggered it, so
//     a budget is only ever exceeded while a single trace remains).
func (c *Cache) CheckInvariants() error {
	for key, t := range c.byKey {
		if trace.Key(t.Blocks) != key {
			return fmt.Errorf("core: trace %d hash-consed under foreign key %q", t.ID, key)
		}
		if t.Retired {
			return fmt.Errorf("core: retired trace %d still hash-consed", t.ID)
		}
		if len(c.regs[t]) == 0 {
			return fmt.Errorf("core: hash-consed trace %d has no entry-edge registrations", t.ID)
		}
	}

	blocks, edges := 0, 0
	for t, regs := range c.regs {
		if t.Retired {
			return fmt.Errorf("core: retired trace %d still registered", t.ID)
		}
		if c.byKey[trace.Key(t.Blocks)] != t {
			return fmt.Errorf("core: live trace %d missing from the hash-cons table", t.ID)
		}
		if len(regs) == 0 {
			return fmt.Errorf("core: live trace %d has no entry edges", t.ID)
		}
		if t.Len() < c.conf.MinBlocks || t.Len() > c.conf.MaxBlocks {
			return fmt.Errorf("core: trace %d length %d outside [%d, %d]", t.ID, t.Len(), c.conf.MinBlocks, c.conf.MaxBlocks)
		}
		if c.graph != nil {
			if th := c.graph.Params().Threshold; t.ExpectedCompletion < th-1e-9 {
				return fmt.Errorf("core: trace %d completion estimate %.4f below threshold %.4f", t.ID, t.ExpectedCompletion, th)
			}
		}
		blocks += t.Len()
		edges += len(regs)
		for edge := range regs {
			from, to := cfg.BlockID(edge>>32), cfg.BlockID(edge)
			if to != t.Entry() {
				return fmt.Errorf("core: trace %d registered on edge (%d,%d) that does not enter it", t.ID, from, to)
			}
			if got := c.ix.Lookup(from, to); got != t {
				return fmt.Errorf("core: index disagrees on edge (%d,%d): trace %d registered, lookup found %v", from, to, t.ID, got)
			}
		}
	}

	var ixErr error
	n := 0
	c.ix.Range(func(from, to cfg.BlockID, t *trace.Trace) bool {
		n++
		if t == nil || t.Retired || !c.regs[t][trace.EdgeKey(from, to)] {
			ixErr = fmt.Errorf("core: index entry (%d,%d) points at an unregistered or retired trace", from, to)
			return false
		}
		return true
	})
	if ixErr != nil {
		return ixErr
	}
	if n != edges {
		return fmt.Errorf("core: index holds %d edges, registrations hold %d", n, edges)
	}

	if blocks != c.blocks {
		return fmt.Errorf("core: cached-blocks tally %d, live traces hold %d", c.blocks, blocks)
	}
	if c.conf.MaxTraces > 0 && len(c.regs) > c.conf.MaxTraces && len(c.regs) > 1 {
		return fmt.Errorf("core: %d live traces exceed the budget of %d", len(c.regs), c.conf.MaxTraces)
	}
	if c.conf.MaxCachedBlocks > 0 && c.blocks > c.conf.MaxCachedBlocks && len(c.regs) > 1 {
		return fmt.Errorf("core: %d cached blocks exceed the budget of %d", c.blocks, c.conf.MaxCachedBlocks)
	}
	return nil
}
