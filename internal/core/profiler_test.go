package core_test

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// TestProfilerReuseAcrossRuns: a persistent profiler (a worker shard) carries
// its learned graph and traces across sessions — the second run creates no
// nodes, rebinds accounting to its own counters, and still computes the
// right answer.
func TestProfilerReuseAcrossRuns(t *testing.T) {
	prof, err := core.NewProfiler(warmParams, core.DefaultConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Seeded() {
		t.Fatal("fresh profiler claims to be seeded")
	}
	if prof.Params() != warmParams {
		t.Fatalf("Params() = %+v, want %+v", prof.Params(), warmParams)
	}

	s1, out1 := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Profiler: prof})
	if err := s1.Run(); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if s1.Counters.NodesCreated == 0 || s1.Counters.TracesBuilt == 0 {
		t.Fatalf("first run learned nothing: %+v", s1.Counters)
	}
	if !prof.Seeded() {
		t.Error("profiler not seeded after a learning run")
	}

	s2, out2 := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Profiler: prof})
	if err := s2.Run(); err != nil {
		t.Fatalf("second run: %v", err)
	}
	if out1.String() != out2.String() {
		t.Errorf("outputs differ: %q vs %q", out1.String(), out2.String())
	}
	if s2.Counters.NodesCreated != 0 {
		t.Errorf("warmed profiler created %d nodes on reuse, want 0", s2.Counters.NodesCreated)
	}
	if s2.Counters.TracesEntered == 0 {
		t.Error("warmed run never dispatched a learned trace")
	}
	// Accounting rebinds per run: the first session's counters are frozen.
	if s1.Counters.Instrs == 0 || s2.Counters.Instrs == 0 {
		t.Error("per-run instruction accounting lost across rebinds")
	}
}

// TestProfilerSnapshotSeedsOnlyUnseeded: a snapshot option seeds a profiler
// that holds no state yet; once the shard has learned, the same option is a
// no-op — shard state wins over stale disk state.
func TestProfilerSnapshotSeedsOnlyUnseeded(t *testing.T) {
	snap := coldSnapshot(t)
	prof, err := core.NewProfiler(warmParams, core.DefaultConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	s1, _ := buildSession(t, loopProgram, core.SessionOptions{
		Mode: core.ModeTrace, Profiler: prof, Snapshot: snap,
	})
	if s1.Counters.SnapshotsLoaded != 1 {
		t.Fatalf("fresh profiler: SnapshotsLoaded = %d, want 1", s1.Counters.SnapshotsLoaded)
	}
	if !prof.Seeded() {
		t.Fatal("snapshot seeding left the profiler unseeded")
	}

	s2, _ := buildSession(t, loopProgram, core.SessionOptions{
		Mode: core.ModeTrace, Profiler: prof, Snapshot: snap,
	})
	if s2.Counters.SnapshotsLoaded != 0 {
		t.Errorf("seeded profiler re-loaded a snapshot: SnapshotsLoaded = %d, want 0",
			s2.Counters.SnapshotsLoaded)
	}
}

// TestProfilerExportSnapshot: the profiler-level export matches the attached
// session's export and survives the wire codec.
func TestProfilerExportSnapshot(t *testing.T) {
	prof, err := core.NewProfiler(warmParams, core.DefaultConfig(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Profiler: prof})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	got := prof.ExportSnapshot("cafecafecafecafe", "loop")
	want := s.ExportSnapshot("cafecafecafecafe", "loop")
	if got == nil || want == nil {
		t.Fatal("nil export")
	}
	if !reflect.DeepEqual(got.Nodes, want.Nodes) || !reflect.DeepEqual(got.Traces, want.Traces) {
		t.Error("profiler export differs from the attached session's export")
	}
	if got.Params != warmParams || got.ProgramKey != "cafecafecafecafe" || got.Program != "loop" {
		t.Errorf("export identity wrong: %+v", got)
	}
	if _, err := snapshot.Decode(snapshot.Encode(got)); err != nil {
		t.Errorf("profiler export does not survive the codec: %v", err)
	}
}

// TestProfilerMergeEqualsSingleThreaded: two shards that each saw half the
// traffic merge into the same learned state a single profiler reaches after
// seeing all of it — the core merge-equivalence property, here at the
// Profiler level with real sessions driving the shards.
func TestProfilerMergeEqualsSingleThreaded(t *testing.T) {
	newProf := func() *core.Profiler {
		p, err := core.NewProfiler(warmParams, core.DefaultConfig(), nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	runOn := func(p *core.Profiler, runs int) {
		for i := 0; i < runs; i++ {
			s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Profiler: p})
			if err := s.Run(); err != nil {
				t.Fatal(err)
			}
		}
	}

	shardA, shardB := newProf(), newProf()
	runOn(shardA, 1)
	runOn(shardB, 1)

	merged := newProf()
	for _, src := range []*core.Profiler{shardA, shardB} {
		if n, err := merged.Absorb(src); err != nil || n == 0 {
			t.Fatalf("Absorb: %d nodes, err %v", n, err)
		}
	}
	merged.DeriveStates()

	single := newProf()
	runOn(single, 2)

	got := merged.ExportSnapshot("k", "p")
	want := single.ExportSnapshot("k", "p")
	if len(got.Traces) == 0 {
		t.Fatal("merged profiler promoted no traces")
	}
	// Node sets and trace shapes must agree. Raw counters and the
	// unique<->strong distinction differ with decay timing (the flip is a
	// non-change even within one profiler), so the comparison is what the
	// trace cache consumes: the correlated bit and the predicted successor.
	if len(got.Nodes) != len(want.Nodes) {
		t.Errorf("merged nodes = %d, single-threaded = %d", len(got.Nodes), len(want.Nodes))
	}
	type class struct {
		correlated bool
		best       cfg.BlockID
	}
	states := func(ns []profile.NodeSnapshot) map[[2]cfg.BlockID]class {
		m := make(map[[2]cfg.BlockID]class, len(ns))
		for _, n := range ns {
			c := class{correlated: n.State.Correlated()}
			if c.correlated {
				c.best = n.Best // advisory on uncorrelated nodes
			}
			m[[2]cfg.BlockID{n.X, n.Y}] = c
		}
		return m
	}
	gs, ws := states(got.Nodes), states(want.Nodes)
	for k, v := range ws {
		if gs[k] != v {
			t.Errorf("node %v classifies as %+v merged, %+v single-threaded", k, gs[k], v)
		}
	}
	if len(got.Traces) != len(want.Traces) {
		t.Errorf("merged traces = %d, single-threaded = %d", len(got.Traces), len(want.Traces))
	}
}

// TestNewProfilerValidation: zero params mean defaults; invalid params fail.
func TestNewProfilerValidation(t *testing.T) {
	p, err := core.NewProfiler(profile.Params{}, core.Config{}, nil, 16)
	if err != nil {
		t.Fatalf("zero params rejected: %v", err)
	}
	if p.Params() != profile.DefaultParams() {
		t.Errorf("zero params = %+v, want defaults", p.Params())
	}
	if _, err := core.NewProfiler(profile.Params{StartDelay: -2, Threshold: 2, DecayInterval: 0},
		core.Config{}, nil, 0); err == nil {
		t.Error("invalid params accepted")
	}
}
