package core

import (
	"fmt"
	"sort"

	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// This file connects the session to the profile-persistence subsystem
// (internal/snapshot): exporting a session's learned state after a run, and
// seeding a fresh session from a previously exported snapshot (warm start).

// ExportSnapshot captures the session's learned state — the BCG, the live
// trace set, and the loop-header anchors — keyed to the given program
// identity. The result aliases nothing in the session and stays valid after
// it ends. Returns nil for unprofiled sessions, which have no learned state.
func (s *Session) ExportSnapshot(programKey, programName string) *snapshot.Snapshot {
	if s.Graph == nil || s.Cache == nil {
		return nil
	}
	return &snapshot.Snapshot{
		ProgramKey:  programKey,
		Program:     programName,
		Params:      s.Graph.Params(),
		Nodes:       s.Graph.Export(),
		Traces:      s.Cache.ExportTraces(),
		LoopHeaders: s.Cache.Index().LoopHeaders(),
	}
}

// seedSession applies a snapshot to a freshly built session, before the
// machine runs. The caller is responsible for key verification (the snapshot
// names a program; core does not); params are re-checked here because every
// node classification in the snapshot is relative to them.
func seedSession(s *Session, snap *snapshot.Snapshot, params profile.Params) error {
	if snap.Params != params {
		return fmt.Errorf("core: snapshot learned under params %+v cannot seed session with params %+v",
			snap.Params, params)
	}
	s.Graph.SeedNodes(snap.Nodes)
	s.Cache.Index().SetLoopHeaders(snap.LoopHeaders)
	s.Cache.SeedTraces(snap.Traces)
	s.Counters.SnapshotsLoaded++
	return nil
}

// ExportTraces returns the live traces as serializable state: block
// sequences, cut-time completion estimates, and the entry edges each trace
// is registered on. Ordered by trace ID, entry froms ascending, so exports
// are deterministic.
func (c *Cache) ExportTraces() []snapshot.TraceState {
	traces := c.Traces()
	out := make([]snapshot.TraceState, 0, len(traces))
	for _, t := range traces {
		st := snapshot.TraceState{
			Blocks:             append([]cfg.BlockID(nil), t.Blocks...),
			ExpectedCompletion: t.ExpectedCompletion,
		}
		for edge := range c.regs[t] {
			st.EntryFrom = append(st.EntryFrom, cfg.BlockID(edge>>32))
		}
		sort.Slice(st.EntryFrom, func(i, j int) bool { return st.EntryFrom[i] < st.EntryFrom[j] })
		out = append(out, st)
	}
	return out
}

// SeedTraces re-registers snapshot traces whose justification still holds in
// the (seeded) graph: each candidate is re-validated against the live
// correlations exactly like invalidation's stillValid check — the node chain
// must exist, stay correlated, and clear the completion threshold — so a
// snapshot can propose traces but never force one the current graph would
// not itself build. Accepted traces register through the ordinary path
// (hash-consing, pair indexing, budget enforcement) and acknowledge their
// nodes; rejected ones are skipped silently, their regions left
// unacknowledged so a hot region re-signals and rebuilds on demand.
//
// Call after SeedNodes and before the run. Returns the number of traces
// registered.
func (c *Cache) SeedTraces(ts []snapshot.TraceState) int {
	if c.graph == nil {
		return 0
	}
	threshold := c.graph.Params().Threshold
	c.seeding = true
	defer func() { c.seeding = false }()
	seeded := 0
	for i := range ts {
		st := &ts[i]
		if len(st.Blocks) < c.conf.MinBlocks || len(st.Blocks) > c.conf.MaxBlocks {
			continue
		}
		registered := false
		for _, from := range st.EntryFrom {
			nodes := c.nodePath(from, st.Blocks)
			if nodes == nil {
				continue
			}
			p, ok := c.pathProbability(from, st.Blocks)
			if !ok || p < threshold {
				continue
			}
			c.register(nodes, p)
			for _, n := range nodes {
				n.Acknowledge()
			}
			registered = true
		}
		if registered {
			seeded++
			c.ctr.TracesSeededFromSnapshot++
		}
	}
	return seeded
}

// nodePath resolves the chain of branch contexts for a block sequence
// entered via (from, blocks[0]), or nil if any link is missing.
func (c *Cache) nodePath(from cfg.BlockID, blocks []cfg.BlockID) []*profile.Node {
	n := c.graph.Node(from, blocks[0])
	if n == nil {
		return nil
	}
	nodes := make([]*profile.Node, 0, len(blocks))
	nodes = append(nodes, n)
	for i := 1; i < len(blocks); i++ {
		e := n.EdgeTo(blocks[i])
		if e == nil || e.To == nil {
			return nil
		}
		n = e.To
		nodes = append(nodes, n)
	}
	return nodes
}
