// Package core implements the paper's trace cache and trace construction
// algorithm (§4.2): the component that turns branch-correlation-graph state
// changes into a stable set of dispatchable traces.
//
// The cache listens for profiler signals. On a signal it (1) retires every
// cached trace invalidated by the changed branch, (2) finds all possible
// trace entry points by backtracking in the branch correlation graph along
// strongly correlated edges, (3) follows the path of maximum likelihood
// forward from each entry point until it meets a weakly correlated branch or
// a branch already on the path (a loop, which is unrolled once and processed
// first), and (4) cuts the path into traces whose expected completion
// probability — the product of the branch correlations along the trace —
// stays at or above the completion threshold. Finished block sequences are
// hash-consed, so re-deriving an existing trace relinks it instead of
// constructing a duplicate, and every node touched is acknowledged to the
// profiler to prevent cascades of state-change signals.
package core

import (
	"fmt"
	"sort"

	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/faultinject/crash"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config tunes the trace constructor beyond the profiler parameters.
type Config struct {
	// MinBlocks is the minimum trace length worth dispatching; shorter
	// candidates are discarded (default 2 — a one-block trace is exactly an
	// ordinary block dispatch).
	MinBlocks int
	// MaxBlocks caps trace length (default 64).
	MaxBlocks int
	// MaxBacktrack bounds the entry-point search (default 4096 nodes).
	MaxBacktrack int
	// MaxTraces bounds the number of live traces; exceeding it evicts the
	// coldest traces (0 = unbounded). The trace being registered is exempt
	// from the eviction pass it triggers, so a budget of n may transiently
	// hold n+1 traces within one signal.
	MaxTraces int
	// MaxCachedBlocks bounds the total block count across live traces —
	// the cache's memory budget in the paper's unit of trace size
	// (0 = unbounded).
	MaxCachedBlocks int

	// CompileTraces enables the second execution tier: hot traces are
	// compiled into superinstruction form and dispatched as single fused
	// units until a guard-exit storm demotes them.
	CompileTraces bool
	// TierUpDispatches is the dispatch count at which a cached trace is
	// promoted to its compiled form (default 16 when CompileTraces is set).
	TierUpDispatches int64
	// TierDownGuardExits is the compiled-guard-exit count at which a
	// trace's compiled form is discarded again (default 8 when
	// CompileTraces is set; the trace itself stays cached at tier 1).
	TierDownGuardExits int64
}

// DefaultConfig returns the standard constructor configuration.
func DefaultConfig() Config {
	return Config{MinBlocks: 2, MaxBlocks: 64, MaxBacktrack: 4096}
}

func (c *Config) fillDefaults() {
	d := DefaultConfig()
	if c.MinBlocks <= 0 {
		c.MinBlocks = d.MinBlocks
	}
	if c.MaxBlocks <= 0 {
		c.MaxBlocks = d.MaxBlocks
	}
	if c.MaxBacktrack <= 0 {
		c.MaxBacktrack = d.MaxBacktrack
	}
	if c.CompileTraces {
		if c.TierUpDispatches <= 0 {
			c.TierUpDispatches = DefaultTierUpDispatches
		}
		if c.TierDownGuardExits <= 0 {
			c.TierDownGuardExits = DefaultTierDownGuardExits
		}
	}
}

// Cache is the trace cache. It implements profile.Listener (receiving
// state-change signals) and trace.Source (serving the dispatch engine).
type Cache struct {
	conf  Config
	graph *profile.Graph
	ctr   *stats.Counters
	sink  obs.Sink // optional trace lifecycle event sink; never on the Lookup path

	ix     trace.Index                      // entry edge -> trace (dispatch-hot)
	byKey  map[string]*trace.Trace          // block sequence -> trace (hash-consing)
	byPair map[uint64]map[*trace.Trace]bool // block pair -> traces containing it
	regs   map[*trace.Trace]map[uint64]bool // trace -> its entry edges
	blocks int                              // total blocks across live traces
	nextID int

	// seeding marks registrations driven by SeedTraces (snapshot warm
	// start): they count as seeded, not built/reused, and emit no lifecycle
	// events — a warm start is restored state, not churn, and must not trip
	// churn-based breakers.
	seeding bool

	// prover, when set, stamps every newly built trace with static guard
	// proofs (trace.GuardProofs) at registration.
	prover GuardProver

	// Tier-2 compilation environment (tier.go): the canonical CFG and
	// value-flow facts the trace compiler consumes, and the shared memo of
	// compiled programs.
	pcfg     *cfg.ProgramCFG
	facts    *valueflow.Facts
	compiled *CompiledStore
}

// GuardProver proves side-exit guards of a block sequence dead: the result
// (length len(blocks)-1, or nil) claims per inter-block position that no
// execution following the trace can exit there. The interface is satisfied
// by *valueflow.GuardOracle; core depends only on the contract so the
// analysis layer stays optional. Implementations must be safe for
// concurrent use.
type GuardProver interface {
	ProveGuards(blocks []cfg.BlockID) []bool
}

// SetProver attaches the static guard oracle consulted when new traces are
// registered. Already registered traces are not re-proven; attach the
// prover before profiling starts (or before SeedTraces on a warm start).
func (c *Cache) SetProver(p GuardProver) { c.prover = p }

// NewCache creates an empty trace cache. Bind must be called with the
// profiler graph before the first signal arrives; the two-step construction
// exists because the graph takes its listener at creation.
func NewCache(conf Config, ctr *stats.Counters) *Cache {
	conf.fillDefaults()
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	return &Cache{
		conf:   conf,
		ctr:    ctr,
		byKey:  make(map[string]*trace.Trace),
		byPair: make(map[uint64]map[*trace.Trace]bool),
		regs:   make(map[*trace.Trace]map[uint64]bool),
	}
}

// Bind attaches the profiler graph the cache reads correlations from.
func (c *Cache) Bind(g *profile.Graph) { c.graph = g }

// SetCounters rebinds the cache's counter sink. A cache reused across
// sessions (a worker shard's) is rebound to each run's fresh counters so
// per-request accounting stays exact. Never call during a run; nil rebinds
// to a discarded internal record.
func (c *Cache) SetCounters(ctr *stats.Counters) {
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	c.ctr = ctr
}

// SetSink attaches an event sink; trace construction, reuse, retirement and
// eviction each emit a typed event. Call before the run; nil detaches.
func (c *Cache) SetSink(s obs.Sink) { c.sink = s }

// emit sends one trace lifecycle event when a sink is attached.
func (c *Cache) emit(typ obs.EventType, t *trace.Trace, val int64) {
	if c.sink == nil {
		return
	}
	c.sink.Emit(obs.Event{
		Type: typ,
		X:    obs.NoID, Y: obs.NoID,
		TraceID: int32(t.ID),
		Val:     val,
	})
}

// Config returns the constructor configuration.
func (c *Cache) Config() Config { return c.conf }

// Lookup implements trace.Source.
//
//tracevm:hotpath
func (c *Cache) Lookup(from, to cfg.BlockID) *trace.Trace {
	return c.ix.Lookup(from, to)
}

// Index exposes the dense entry-edge index; the dispatch engine uses it to
// bypass the interface call on its per-dispatch lookup
// (trace.IndexedSource).
func (c *Cache) Index() *trace.Index { return &c.ix }

// Reserve pre-sizes the entry-edge index for a program with numBlocks
// global block IDs.
func (c *Cache) Reserve(numBlocks int) { c.ix.Reserve(numBlocks) }

// NumTraces returns the number of live traces.
func (c *Cache) NumTraces() int { return len(c.regs) }

// CachedBlocks returns the total block count across live traces — the
// quantity Config.MaxCachedBlocks budgets.
func (c *Cache) CachedBlocks() int { return c.blocks }

// Traces returns the live traces, ordered by ID for determinism.
func (c *Cache) Traces() []*trace.Trace {
	out := make([]*trace.Trace, 0, len(c.regs))
	for t := range c.regs {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// OnSignal implements profile.Listener: the profiler detected that a
// branch's state or maximally correlated successor changed.
func (c *Cache) OnSignal(sig profile.Signal) {
	if c.graph == nil {
		return
	}
	c.ctr.RebuildRequests++
	n := sig.Node

	// Step 0: retire traces that relied on the old behaviour of this branch.
	c.invalidatePair(n.X, n.Y)

	// Step 1: generate the list of all possible trace entry points which
	// may be affected, by backtracking along strongly correlated edges.
	entries := c.findEntries(n)

	// Steps 2 and 3, interleaved: follow the path of maximum likelihood
	// from each start point, cut it into traces, and reconstruct newly
	// discovered cache entries.
	for _, e := range entries {
		c.buildFrom(e)
	}
}

// invalidatePair retires every trace whose block sequence (including the
// entry edge) contains the transition (x, y) and whose expected completion,
// re-estimated against the current graph, no longer clears the threshold.
func (c *Cache) invalidatePair(x, y cfg.BlockID) {
	set := c.byPair[trace.EdgeKey(x, y)]
	if len(set) == 0 {
		return
	}
	var doomed []*trace.Trace
	for t := range set {
		if !c.stillValid(t) {
			doomed = append(doomed, t)
		}
	}
	for _, t := range doomed {
		c.retire(t)
	}
}

// stillValid re-estimates a trace's completion probability from the current
// graph state for at least one of its registered entry edges.
func (c *Cache) stillValid(t *trace.Trace) bool {
	for edge := range c.regs[t] {
		from := cfg.BlockID(edge >> 32)
		if p, ok := c.pathProbability(from, t.Blocks); ok && p >= c.graph.Params().Threshold {
			return true
		}
	}
	return false
}

// pathProbability computes the expected completion probability of the block
// sequence entered via the edge (from, blocks[0]): the product of the branch
// correlations along the chain of branch contexts, "multiplying all the edge
// weights together and dividing by the product of the node weights" (§3.7).
func (c *Cache) pathProbability(from cfg.BlockID, blocks []cfg.BlockID) (float64, bool) {
	n := c.graph.Node(from, blocks[0])
	if n == nil || !n.State.Correlated() {
		return 0, false
	}
	p := 1.0
	for i := 1; i < len(blocks); i++ {
		e := n.EdgeTo(blocks[i])
		if e == nil {
			return 0, false
		}
		p *= e.Correlation()
		n = e.To
		if n == nil {
			return 0, false
		}
		if i < len(blocks)-1 && !n.State.Correlated() {
			return 0, false
		}
	}
	return p, true
}

// findEntries backtracks from the signalled node along strongly correlated
// in-edges and returns the roots: the branch contexts likely to eventually
// execute the modified branch that no correlated branch leads into.
// "Generally there is only one element" (§4.2).
func (c *Cache) findEntries(n *profile.Node) []*profile.Node {
	visited := map[*profile.Node]bool{n: true}
	queue := []*profile.Node{n}
	var roots []*profile.Node
	for len(queue) > 0 && len(visited) <= c.conf.MaxBacktrack {
		cur := queue[0]
		queue = queue[1:]
		if c.ix.LoopHeader(cur.Y) {
			// Static dataflow marked Y as a loop header: stop backtracking
			// here so the trace entry aligns with the loop boundary instead
			// of wandering into the code before the loop.
			roots = append(roots, cur)
			continue
		}
		strong := cur.StrongIn()
		if len(strong) == 0 {
			roots = append(roots, cur)
			continue
		}
		advanced := false
		for _, e := range strong {
			if !visited[e.Owner] {
				visited[e.Owner] = true
				queue = append(queue, e.Owner)
				advanced = true
			}
		}
		if !advanced {
			// Every strong predecessor was already visited: a cycle with no
			// external entry; treat this node as a root so the loop is
			// still (re)processed.
			roots = append(roots, cur)
		}
	}
	// Deterministic order keeps runs reproducible.
	sort.Slice(roots, func(i, j int) bool {
		if roots[i].X != roots[j].X {
			return roots[i].X < roots[j].X
		}
		return roots[i].Y < roots[j].Y
	})
	return roots
}

// buildFrom follows the maximum-likelihood path from an entry node, handles
// loops, cuts the path into traces, and registers them.
func (c *Cache) buildFrom(entry *profile.Node) {
	if !entry.State.Correlated() {
		entry.Acknowledge()
		return
	}

	// Follow the path of maximum likelihood until it discovers a branch
	// already in the trace or a weakly correlated branch.
	path := []*profile.Node{entry}
	index := map[*profile.Node]int{entry: 0}
	loopStart := -1
	cur := entry
	for len(path) < 2*c.conf.MaxBlocks {
		if !cur.State.Correlated() || cur.Best == nil {
			break
		}
		next := cur.Best.To
		if next == nil {
			break
		}
		if j, seen := index[next]; seen {
			loopStart = j
			break
		}
		index[next] = len(path)
		path = append(path, next)
		cur = next
	}

	for _, n := range path {
		n.Acknowledge()
	}

	if loopStart >= 0 {
		// The path terminates in a loop: process the loop first — unroll it
		// once and pass it to the trace cache — then cut the remaining
		// prefix into traces.
		loop := path[loopStart:]
		unrolled := append(append([]*profile.Node{}, loop...), loop...)
		c.cutAndRegister(unrolled)
		if loopStart > 0 {
			c.cutAndRegister(path[:loopStart])
		}
		return
	}
	c.cutAndRegister(path)
}

// cutAndRegister linearly cuts a node path into traces whose cumulative
// completion probability stays at or above the completion threshold, then
// registers each (§4.2's block parsing mechanism).
func (c *Cache) cutAndRegister(path []*profile.Node) {
	threshold := c.graph.Params().Threshold
	i := 0
	for i < len(path) {
		start := i
		prob := 1.0
		// Extend while adding the next node keeps completion likely.
		for i+1 < len(path) && i+1-start < c.conf.MaxBlocks {
			step := path[i].Best
			if step == nil || step.To != path[i+1] {
				break
			}
			p := prob * step.Correlation()
			if p < threshold {
				break
			}
			prob = p
			i++
		}
		c.register(path[start:i+1], prob)
		i++
	}
}

// register hash-conses and registers one trace candidate whose node chain is
// nodes[0..]; the entry edge is (nodes[0].X, nodes[0].Y) and the block
// sequence is the Y of each node.
func (c *Cache) register(nodes []*profile.Node, prob float64) {
	if len(nodes) < c.conf.MinBlocks {
		return
	}
	blocks := make([]cfg.BlockID, len(nodes))
	for i, n := range nodes {
		blocks[i] = n.Y
	}
	entryEdge := trace.EdgeKey(nodes[0].X, nodes[0].Y)

	key := trace.Key(blocks)
	t := c.byKey[key]
	if t == nil {
		t = trace.New(c.nextID, blocks, prob)
		if c.prover != nil {
			t.GuardProofs = c.prover.ProveGuards(blocks)
		}
		if c.conf.CompileTraces {
			t.TierUpAt = c.conf.TierUpDispatches
			t.TierDownAt = c.conf.TierDownGuardExits
		}
		c.nextID++
		c.byKey[key] = t
		c.blocks += len(blocks)
		if !c.seeding {
			c.ctr.TracesBuilt++
			c.emit(obs.EvTraceBuilt, t, int64(len(blocks)))
		}
		for i := 1; i < len(blocks); i++ {
			c.indexPair(trace.EdgeKey(blocks[i-1], blocks[i]), t)
		}
	} else if !c.seeding {
		c.ctr.TracesReused++
		c.emit(obs.EvTraceReused, t, int64(len(blocks)))
	}

	// Link the entry edge, replacing any previous trace registered there.
	if old := c.ix.Set(nodes[0].X, nodes[0].Y, t); old != nil && old != t {
		c.unregisterEdge(old, entryEdge)
	}
	if c.regs[t] == nil {
		c.regs[t] = make(map[uint64]bool)
		// The entry-edge pair also participates in invalidation.
	}
	if !c.regs[t][entryEdge] {
		c.regs[t][entryEdge] = true
		c.indexPair(entryEdge, t)
	}
	c.enforceBudget(t)
}

func (c *Cache) indexPair(pair uint64, t *trace.Trace) {
	set := c.byPair[pair]
	if set == nil {
		set = make(map[*trace.Trace]bool)
		c.byPair[pair] = set
	}
	set[t] = true
}

func (c *Cache) unindexPair(pair uint64, t *trace.Trace) {
	if set := c.byPair[pair]; set != nil {
		delete(set, t)
		if len(set) == 0 {
			delete(c.byPair, pair)
		}
	}
}

// unregisterEdge removes one entry-edge registration; a trace with no
// remaining registrations is retired.
func (c *Cache) unregisterEdge(t *trace.Trace, edge uint64) {
	if regs := c.regs[t]; regs != nil {
		delete(regs, edge)
		c.unindexPair(edge, t)
		if len(regs) == 0 {
			c.retire(t)
		}
	}
}

// retire removes a trace from every index and marks it dead.
func (c *Cache) retire(t *trace.Trace) {
	for edge := range c.regs[t] {
		from, to := cfg.BlockID(edge>>32), cfg.BlockID(edge)
		if c.ix.Lookup(from, to) == t {
			c.ix.Delete(from, to)
		}
		c.unindexPair(edge, t)
	}
	delete(c.regs, t)
	delete(c.byKey, trace.Key(t.Blocks))
	c.blocks -= len(t.Blocks)
	for i := 1; i < len(t.Blocks); i++ {
		c.unindexPair(trace.EdgeKey(t.Blocks[i-1], t.Blocks[i]), t)
	}
	t.Retired = true
	c.ctr.TracesRetired++
	c.emit(obs.EvTraceRetired, t, int64(len(t.Blocks)))
}

// overBudget reports whether either cache budget is currently exceeded.
func (c *Cache) overBudget() bool {
	return (c.conf.MaxTraces > 0 && len(c.regs) > c.conf.MaxTraces) ||
		(c.conf.MaxCachedBlocks > 0 && c.blocks > c.conf.MaxCachedBlocks)
}

// enforceBudget evicts the coldest traces until the cache fits its budgets
// again. keep — the trace whose registration triggered the pass — is exempt,
// so a single oversized trace cannot evict itself into a rebuild loop.
func (c *Cache) enforceBudget(keep *trace.Trace) {
	if !c.overBudget() {
		return
	}
	evicted := false
	for c.overBudget() {
		victim := c.coldest(keep)
		if victim == nil {
			break
		}
		c.evict(victim)
		evicted = true
	}
	if evicted {
		c.ctr.BudgetPressure++
	}
}

// heat scores a trace for eviction: its actual dispatch count plus the
// decayed execution counters of its entry branch contexts, so a trace in a
// currently-hot region outranks one whose region went cold even if neither
// has been dispatched yet. Reusing the BCG node counters keeps the policy
// free: the profiler already maintains the recency signal.
func (c *Cache) heat(t *trace.Trace) int64 {
	h := t.Entered
	if c.graph != nil {
		for edge := range c.regs[t] {
			if n := c.graph.Node(cfg.BlockID(edge>>32), cfg.BlockID(edge)); n != nil {
				h += int64(n.Total)
			}
		}
	}
	return h
}

// coldest returns the live trace with the lowest heat (ties broken toward
// the oldest ID, deterministically), excluding keep; nil if none qualifies.
func (c *Cache) coldest(keep *trace.Trace) *trace.Trace {
	var victim *trace.Trace
	var vh int64
	for t := range c.regs {
		if t == keep {
			continue
		}
		h := c.heat(t)
		if victim == nil || h < vh || (h == vh && t.ID < victim.ID) {
			victim, vh = t, h
		}
	}
	return victim
}

// evict retires a trace for budget reasons. The entry branch contexts are
// un-acknowledged first so the profiler re-signals if the region is hot
// again and the trace is rebuilt on demand — eviction sheds memory, not the
// ability to trace.
func (c *Cache) evict(t *trace.Trace) {
	c.emit(obs.EvTraceEvicted, t, c.heat(t))
	if c.graph != nil {
		for edge := range c.regs[t] {
			if n := c.graph.Node(cfg.BlockID(edge>>32), cfg.BlockID(edge)); n != nil {
				n.Unacknowledge()
			}
		}
	}
	c.retire(t)
	c.ctr.TracesEvicted++
	// Crash point: the victim is gone but the budget pass may not be done —
	// eviction is pure memory shedding, so dying here must lose nothing.
	crash.Here(crash.PointEviction)
}

// Dump renders the cache contents for diagnostics.
func (c *Cache) Dump() string {
	s := fmt.Sprintf("trace cache: %d traces\n", c.NumTraces())
	for _, t := range c.Traces() {
		s += "  " + t.String() + "\n"
	}
	return s
}
