// Tiered execution policy: when CompileTraces is enabled the cache doubles
// as the engine's trace.Tiering — it decides when a cached trace is promoted
// to its compiled superinstruction form (after TierUpDispatches dispatches)
// and records demotions (after TierDownGuardExits compiled guard exits, the
// engine discards the form and reports back here). Compiled programs are
// memoized in a CompiledStore keyed by block sequence, so a trace that is
// hash-consed, evicted and rebuilt — or the same trace materializing in
// several per-worker views of one program — compiles once.
package core

import (
	"sync"

	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/trace"
)

// Default promotion/demotion thresholds applied by Config.fillDefaults when
// CompileTraces is set and the knobs are left zero.
const (
	DefaultTierUpDispatches   = 16
	DefaultTierDownGuardExits = 8
)

// CompiledStore memoizes compiled trace programs by block-sequence key. It
// is safe for concurrent use: in the serving layer one store is shared by
// all of a program's worker shards and their merged views, so the compiled
// form is per-merged-view state — never duplicated per shard — and survives
// epoch merges, which rebuild traces but preserve block sequences.
type CompiledStore struct {
	mu sync.Mutex
	m  map[string]*trace.Program
}

// NewCompiledStore returns an empty memo store.
func NewCompiledStore() *CompiledStore {
	return &CompiledStore{m: make(map[string]*trace.Program)}
}

// Get returns the memoized program for a block sequence, or nil.
func (s *CompiledStore) Get(key string) *trace.Program {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[key]
}

// Put memoizes a compiled program.
func (s *CompiledStore) Put(key string, p *trace.Program) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.m[key] = p
	s.mu.Unlock()
}

// Len returns the number of memoized programs.
func (s *CompiledStore) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// SetCompileEnv attaches the structures the trace compiler consumes: the
// program CFG (canonical block pointers — the same resolver the engine
// dispatches on) and, optionally, whole-program value-flow facts whose
// block-entry constants seed const-folding. Compilation stays disabled until
// both CompileTraces is configured and a CFG is attached.
func (c *Cache) SetCompileEnv(pcfg *cfg.ProgramCFG, facts *valueflow.Facts) {
	c.pcfg = pcfg
	c.facts = facts
}

// SetCompiledStore shares a compiled-program memo across caches (the serving
// layer passes one store per program). Without one the cache uses a private
// store.
func (c *Cache) SetCompiledStore(s *CompiledStore) { c.compiled = s }

// CompileEnabled reports whether this cache can serve as the engine's
// tiering policy.
func (c *Cache) CompileEnabled() bool {
	return c.conf.CompileTraces && c.pcfg != nil
}

// Compile implements trace.Tiering: lower a hot trace to its
// superinstruction form, or return nil to bar the trace from tier 2. Counts
// and emits even on a memo hit — the event records this trace's promotion,
// not the compilation work.
func (c *Cache) Compile(t *trace.Trace) *trace.Program {
	if !c.CompileEnabled() {
		return nil
	}
	key := trace.Key(t.Blocks)
	p := c.compiled.Get(key)
	if p == nil {
		env := &trace.CompileEnv{
			Blocks:      make([]*cfg.Block, len(t.Blocks)),
			Resolve:     c.pcfg.Block,
			GuardProofs: t.GuardProofs,
		}
		for i, id := range t.Blocks {
			if env.Blocks[i] = c.pcfg.Block(id); env.Blocks[i] == nil {
				return nil
			}
		}
		if !c.facts.Top() {
			env.EntryInts = make([][]trace.SlotConst, len(t.Blocks))
			env.EntryFloats = make([][]trace.SlotBits, len(t.Blocks))
			for i, id := range t.Blocks {
				bf := c.facts.Block(id)
				if bf == nil || !bf.Reachable {
					continue
				}
				for _, ic := range bf.IntConsts {
					env.EntryInts[i] = append(env.EntryInts[i], trace.SlotConst{Slot: ic.Slot, Val: ic.Val})
				}
				for _, fc := range bf.FloatConsts {
					env.EntryFloats[i] = append(env.EntryFloats[i], trace.SlotBits{Slot: fc.Slot, Bits: fc.Bits})
				}
			}
		}
		if p = trace.Compile(env); p == nil {
			return nil
		}
		if c.compiled == nil {
			c.compiled = NewCompiledStore()
		}
		c.compiled.Put(key, p)
	}
	c.ctr.TracesCompiled++
	c.emit(obs.EvTraceCompiled, t, int64(p.DroppedGuards))
	return p
}

// TierDown implements trace.Tiering: the engine discarded t's compiled form
// after a guard-exit storm. The memoized program is kept — the storm is a
// property of this trace's current traffic, not of the lowering — but the
// trace itself stays barred until it is rebuilt.
func (c *Cache) TierDown(t *trace.Trace) {
	c.ctr.TierDowns++
	c.emit(obs.EvTraceTierDown, t, t.CompiledGuardExits)
}
