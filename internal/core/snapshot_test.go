package core_test

import (
	"reflect"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jasm"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// warmParams is the configuration shared by the snapshot tests; seeding
// requires the consuming session to run under the recording session's
// parameters.
var warmParams = profile.Params{Threshold: 0.97, StartDelay: 4, DecayInterval: 64}

// coldSnapshot runs loopProgram cold and exports its learned state through
// the wire codec, so the tests cover export → encode → decode → seed, not
// just the in-memory structs.
func coldSnapshot(t *testing.T) *snapshot.Snapshot {
	t.Helper()
	s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Params: warmParams})
	if err := s.Run(); err != nil {
		t.Fatalf("cold run: %v", err)
	}
	snap := s.ExportSnapshot("cafecafecafecafe", "loop")
	if snap == nil {
		t.Fatal("profiled session exported no snapshot")
	}
	if len(snap.Nodes) == 0 || len(snap.Traces) == 0 {
		t.Fatalf("cold run learned nothing: %d nodes, %d traces", len(snap.Nodes), len(snap.Traces))
	}
	decoded, err := snapshot.Decode(snapshot.Encode(snap))
	if err != nil {
		t.Fatalf("snapshot does not survive its own codec: %v", err)
	}
	return decoded
}

// TestSessionSnapshotRoundTrip pins the session-level warm-start property:
// seeding a fresh session from a snapshot restores the graph exactly (same
// node states, counters, delays) and re-registers traces, without counting
// any of it as churn, and the warm session still computes the right answer.
func TestSessionSnapshotRoundTrip(t *testing.T) {
	snap := coldSnapshot(t)

	warm, out := buildSession(t, loopProgram, core.SessionOptions{
		Mode: core.ModeTrace, Params: warmParams, Snapshot: snap,
	})
	ctr := warm.Counters
	if ctr.SnapshotsLoaded != 1 {
		t.Errorf("SnapshotsLoaded = %d, want 1", ctr.SnapshotsLoaded)
	}
	if ctr.NodesSeededFromSnapshot != int64(len(snap.Nodes)) {
		t.Errorf("NodesSeededFromSnapshot = %d, want %d", ctr.NodesSeededFromSnapshot, len(snap.Nodes))
	}
	if ctr.TracesSeededFromSnapshot == 0 {
		t.Error("no traces re-registered from snapshot")
	}
	if ctr.TracesBuilt != 0 || ctr.TracesReused != 0 {
		t.Errorf("seeding counted as churn: built %d, reused %d, want 0/0",
			ctr.TracesBuilt, ctr.TracesReused)
	}
	if warm.Cache.NumTraces() == 0 {
		t.Error("warm cache holds no traces before the first dispatch")
	}

	// The seeded graph must re-derive exactly the snapshot's states.
	re := warm.ExportSnapshot(snap.ProgramKey, snap.Program)
	if !reflect.DeepEqual(re.Nodes, snap.Nodes) {
		t.Error("seeded graph state differs from the snapshot it was seeded from")
	}

	if err := warm.Run(); err != nil {
		t.Fatalf("warm run: %v", err)
	}
	if got := out.String(); got != "49995000\n" {
		t.Errorf("warm run output = %q, want 49995000", got)
	}
	if warm.Counters.TracesEntered == 0 {
		t.Error("warm run never dispatched a trace")
	}
}

// TestSeedingEmitsNoEvents: a warm start must be silent on the event ring —
// restored state is not churn, so it produces neither node-state nor
// trace-built events.
func TestSeedingEmitsNoEvents(t *testing.T) {
	snap := coldSnapshot(t)
	ring := obs.NewRing(256)
	buildSession(t, loopProgram, core.SessionOptions{
		Mode: core.ModeTrace, Params: warmParams, Snapshot: snap, Sink: ring,
	})
	if n := ring.Total(); n != 0 {
		t.Errorf("seeding emitted %d events, want 0", n)
	}
}

// TestSeedSessionParamsMismatch: a snapshot recorded under different
// profiler parameters must fail session construction rather than silently
// seed state learned under a different regime.
func TestSeedSessionParamsMismatch(t *testing.T) {
	snap := coldSnapshot(t)
	prog, err := jasm.Assemble(loopProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	_, err = core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     core.ModeTrace,
		Params:   profile.Params{Threshold: 0.99, StartDelay: 4, DecayInterval: 64},
		Snapshot: snap,
	})
	if err == nil {
		t.Fatal("params mismatch accepted")
	}
}

// TestSnapshotIgnoredInUnprofiledModes: plain sessions carry no profiler;
// a snapshot option must be ignored, not crash.
func TestSnapshotIgnoredInUnprofiledModes(t *testing.T) {
	snap := coldSnapshot(t)
	s, out := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModePlain, Snapshot: snap})
	if s.Graph != nil {
		t.Fatal("plain mode grew a profiler")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("plain run with snapshot option: %v", err)
	}
	if got := out.String(); got != "49995000\n" {
		t.Errorf("output = %q", got)
	}
	if s.Counters.SnapshotsLoaded != 0 {
		t.Error("unprofiled session counted a snapshot load")
	}
}
