package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/cfg"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
)

// driver wires a graph to a cache and feeds synthetic dispatch streams.
type driver struct {
	g   *Graph
	c   *Cache
	ctr *stats.Counters
}

// Graph aliases profile.Graph for brevity in this file.
type Graph = profile.Graph

func newDriver(t *testing.T, p profile.Params) *driver {
	return newDriverConf(t, p, Config{})
}

func newDriverConf(t *testing.T, p profile.Params, conf Config) *driver {
	t.Helper()
	ctr := &stats.Counters{}
	c := NewCache(conf, ctr)
	g, err := profile.New(p, ctr, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(g)
	return &driver{g: g, c: c, ctr: ctr}
}

// check asserts the cache's structural invariants hold.
func (d *driver) check(t *testing.T) {
	t.Helper()
	if err := d.c.CheckInvariants(); err != nil {
		t.Fatalf("cache invariants violated: %v\n%s", err, d.c.Dump())
	}
}

// replay feeds the block sequence repeatedly as disconnected chains (the
// context restarts between repetitions).
func (d *driver) replay(times int, blocks ...cfg.BlockID) {
	for r := 0; r < times; r++ {
		for i := 1; i < len(blocks); i++ {
			d.g.OnDispatch(blocks[i-1], blocks[i])
		}
	}
}

// cycle feeds the block sequence as a continuous loop: ... b_n -> b_0 -> b_1
// ... so the back edge is part of the stream.
func (d *driver) cycle(times int, blocks ...cfg.BlockID) {
	for r := 0; r < times; r++ {
		for i := 1; i < len(blocks); i++ {
			d.g.OnDispatch(blocks[i-1], blocks[i])
		}
		d.g.OnDispatch(blocks[len(blocks)-1], blocks[0])
	}
}

func TestCacheBuildsLoopTraceUnrolledOnce(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	// Steady loop 1->2->3->1...
	d.cycle(400, 1, 2, 3)
	if d.c.NumTraces() == 0 {
		t.Fatal("no traces built for a steady loop")
	}
	// Some registered trace must cover the loop, unrolled once (the loop
	// body appears twice in the block sequence).
	found := false
	for _, tr := range d.c.Traces() {
		if tr.Len() == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("no unrolled loop trace found:\n%s", d.c.Dump())
	}
	d.check(t)
}

func TestCacheLookupIsEdgeKeyed(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	d.cycle(400, 1, 2, 3)
	var entryFrom, entryTo cfg.BlockID = cfg.NoBlock, cfg.NoBlock
	for _, tr := range d.c.Traces() {
		_ = tr
	}
	// Find any registered edge by probing the loop's edges.
	probes := [][2]cfg.BlockID{{1, 2}, {2, 3}, {3, 1}}
	for _, p := range probes {
		if d.c.Lookup(p[0], p[1]) != nil {
			entryFrom, entryTo = p[0], p[1]
		}
	}
	if entryFrom == cfg.NoBlock {
		t.Fatalf("no trace registered on any loop edge:\n%s", d.c.Dump())
	}
	// A different arrival edge to the same block must not hit.
	if d.c.Lookup(99, entryTo) != nil {
		t.Error("lookup with a foreign from-block returned a trace")
	}
	_ = entryFrom
}

func TestCutRespectsThreshold(t *testing.T) {
	// Chain 1..6 where the 3->4 transition is only ~80% likely: traces must
	// never span it at a 97% threshold.
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.97, DecayInterval: 64})
	for r := 0; r < 300; r++ {
		if r%5 == 4 {
			d.replay(1, 1, 2, 3, 9, 1) // diverge at 3
		} else {
			d.replay(1, 1, 2, 3, 4, 5, 1)
		}
	}
	for _, tr := range d.c.Traces() {
		for i := 1; i < len(tr.Blocks); i++ {
			if tr.Blocks[i-1] == 3 && (tr.Blocks[i] == 4 || tr.Blocks[i] == 9) {
				t.Errorf("trace %v crosses the weak branch 3->x", tr.Blocks)
			}
		}
	}
	if d.c.NumTraces() == 0 {
		t.Fatal("no traces built at all")
	}
}

func TestHashConsingReusesSequences(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	d.cycle(2000, 1, 2, 3)
	built := d.ctr.TracesBuilt
	reused := d.ctr.TracesReused
	if built == 0 {
		t.Fatal("nothing built")
	}
	if reused == 0 {
		t.Skip("no reconstruction happened in this run; nothing to assert")
	}
	// Re-derivations of the same block sequence must not mint new traces.
	if built > reused+8 {
		t.Errorf("built %d traces with only %d reuses — hash-consing suspect", built, reused)
	}
}

func TestInvalidationOnPhaseChange(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	// Phase 1: the loop takes the left arm after block 2: 1->2->3->1.
	d.cycle(500, 1, 2, 3)
	phase1 := d.c.NumTraces()
	if phase1 == 0 {
		t.Fatal("no phase-1 traces")
	}
	// Phase 2: block 2 now branches right: 1->2->9->1. The context (1,2)
	// stays hot, so decay must flip its best successor, signal, and retire
	// the stale traces through 2->3.
	d.cycle(2000, 1, 2, 9)
	if d.ctr.TracesRetired == 0 {
		t.Error("phase change retired nothing")
	}
	// A live trace containing the stale 2->3 transition must be gone.
	for _, tr := range d.c.Traces() {
		for i := 1; i < len(tr.Blocks); i++ {
			if tr.Blocks[i-1] == 2 && tr.Blocks[i] == 3 {
				t.Errorf("stale trace %v survived the phase change", tr.Blocks)
			}
		}
	}
	// And the new phase must be covered by fresh traces.
	fresh := false
	for _, tr := range d.c.Traces() {
		for i := 1; i < len(tr.Blocks); i++ {
			if tr.Blocks[i-1] == 2 && tr.Blocks[i] == 9 {
				fresh = true
			}
		}
	}
	if !fresh {
		t.Errorf("no trace covers the phase-2 path:\n%s", d.c.Dump())
	}
	d.check(t)
}

func TestColdTracesStayCachedAcrossPhaseChange(t *testing.T) {
	// Stability (§3.6): when a phase change abandons a region entirely, no
	// signals touch its nodes, so its traces stay registered (harmless,
	// since their entry edges never occur again) instead of being flushed
	// Dynamo-style.
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	d.cycle(500, 1, 2, 3)
	before := d.c.NumTraces()
	if before == 0 {
		t.Fatal("no phase-1 traces")
	}
	d.cycle(2000, 11, 12, 13) // disjoint region
	survived := false
	for _, tr := range d.c.Traces() {
		for _, b := range tr.Blocks {
			if b <= 3 {
				survived = true
			}
		}
	}
	if !survived {
		t.Error("abandoned-region traces were flushed; expected informed stability")
	}
}

func TestRetiredTraceUnregisteredEverywhere(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	d.cycle(500, 1, 2, 3)
	traces := d.c.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces")
	}
	victim := traces[0]
	d.c.retire(victim)
	if !victim.Retired {
		t.Error("retire did not mark the trace")
	}
	for from := cfg.BlockID(0); from < 8; from++ {
		for to := cfg.BlockID(0); to < 8; to++ {
			if d.c.Lookup(from, to) == victim {
				t.Errorf("retired trace still registered at (%d,%d)", from, to)
			}
		}
	}
	// Hash-cons entry is gone: the same sequence can be rebuilt fresh.
	if d.c.byKey[trace.Key(victim.Blocks)] == victim {
		t.Error("retired trace still hash-consed")
	}
}

func TestMinBlocksFilter(t *testing.T) {
	ctr := &stats.Counters{}
	c := NewCache(Config{MinBlocks: 4}, ctr)
	g, err := profile.New(profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}, ctr, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(g)
	// Two-block loop: every candidate has 2 or 4 blocks (unrolled); only
	// the 4-block unroll passes the filter.
	for r := 0; r < 500; r++ {
		g.OnDispatch(1, 2)
		g.OnDispatch(2, 1)
	}
	for _, tr := range c.Traces() {
		if tr.Len() < 4 {
			t.Errorf("trace below MinBlocks registered: %v", tr.Blocks)
		}
	}
}

func TestMaxBlocksCap(t *testing.T) {
	ctr := &stats.Counters{}
	c := NewCache(Config{MaxBlocks: 4}, ctr)
	g, err := profile.New(profile.Params{StartDelay: 1, Threshold: 0.5, DecayInterval: 64}, ctr, c)
	if err != nil {
		t.Fatal(err)
	}
	c.Bind(g)
	// Long deterministic chain as a big loop.
	seq := []cfg.BlockID{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for r := 0; r < 300; r++ {
		for i := 1; i < len(seq); i++ {
			g.OnDispatch(seq[i-1], seq[i])
		}
		g.OnDispatch(seq[len(seq)-1], seq[0])
	}
	for _, tr := range c.Traces() {
		if tr.Len() > 4 {
			t.Errorf("trace exceeds MaxBlocks: %d blocks", tr.Len())
		}
	}
	if c.NumTraces() == 0 {
		t.Fatal("no traces built")
	}
}

func TestSignalWithoutGraphIsIgnored(t *testing.T) {
	c := NewCache(Config{}, nil)
	// Must not panic without a bound graph.
	c.OnSignal(profile.Signal{})
	if c.NumTraces() != 0 {
		t.Error("unbound cache built traces")
	}
}

func TestExpectedCompletionAboveThreshold(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.95, DecayInterval: 64})
	d.cycle(500, 1, 2, 3, 4)
	for _, tr := range d.c.Traces() {
		if tr.ExpectedCompletion < 0.95 {
			t.Errorf("trace %v registered with completion estimate %.3f < threshold", tr.Blocks, tr.ExpectedCompletion)
		}
	}
}

func TestConfigDefaults(t *testing.T) {
	c := NewCache(Config{}, nil)
	conf := c.Config()
	if conf.MinBlocks != 2 || conf.MaxBlocks != 64 || conf.MaxBacktrack != 4096 {
		t.Errorf("defaults not applied: %+v", conf)
	}
}

// coverage reports which of the given regions (disjoint block ranges) are
// covered by at least one live trace.
func coverage(c *Cache, lo, hi cfg.BlockID) bool {
	for _, tr := range c.Traces() {
		for _, b := range tr.Blocks {
			if b >= lo && b <= hi {
				return true
			}
		}
	}
	return false
}

func TestBudgetEvictsColdTraceFirst(t *testing.T) {
	d := newDriverConf(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}, Config{MaxTraces: 2})
	d.cycle(2000, 1, 2, 3) // hot region: node counters stay high
	if !coverage(d.c, 1, 3) {
		t.Fatal("hot region built no traces")
	}
	d.cycle(60, 11, 12, 13) // cold region: barely enough to trace
	// A third region forces the budget; the cold region must be the victim.
	d.cycle(400, 21, 22, 23)
	if d.ctr.TracesEvicted == 0 || d.ctr.BudgetPressure == 0 {
		t.Fatalf("no eviction under budget: evicted=%d pressure=%d\n%s",
			d.ctr.TracesEvicted, d.ctr.BudgetPressure, d.c.Dump())
	}
	if n := d.c.NumTraces(); n > 2 {
		t.Errorf("%d live traces exceed MaxTraces=2", n)
	}
	if !coverage(d.c, 1, 3) {
		t.Errorf("hot region evicted ahead of the cold one:\n%s", d.c.Dump())
	}
	d.check(t)
}

func TestBlockBudgetBoundsCacheSize(t *testing.T) {
	const budget = 10
	d := newDriverConf(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}, Config{MaxCachedBlocks: budget})
	// Several disjoint loops would normally hold ~6 blocks each.
	for base := cfg.BlockID(0); base < 50; base += 10 {
		d.cycle(400, base+1, base+2, base+3)
		if got := d.c.CachedBlocks(); got > budget && d.c.NumTraces() > 1 {
			t.Fatalf("cached blocks %d exceed budget %d", got, budget)
		}
	}
	if d.ctr.TracesEvicted == 0 {
		t.Error("block budget never evicted")
	}
	d.check(t)
}

func TestEvictedHotRegionRebuilds(t *testing.T) {
	// Eviction sheds memory, not the ability to trace: because evict
	// un-acknowledges the entry branch contexts, re-running the region
	// re-signals the cache and the trace comes back without any profiler
	// warm-up from scratch.
	d := newDriverConf(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}, Config{MaxTraces: 1})
	d.cycle(400, 1, 2, 3)
	if !coverage(d.c, 1, 3) {
		t.Fatal("region A built no traces")
	}
	d.cycle(400, 11, 12, 13) // region B evicts A's trace (budget 1)
	if coverage(d.c, 1, 3) {
		t.Fatalf("region A survived a MaxTraces=1 budget:\n%s", d.c.Dump())
	}
	if d.ctr.TracesEvicted == 0 {
		t.Fatal("nothing evicted")
	}
	d.cycle(400, 1, 2, 3) // A hot again: must re-signal and rebuild
	if !coverage(d.c, 1, 3) {
		t.Errorf("evicted region never rebuilt its trace:\n%s", d.c.Dump())
	}
	d.check(t)
}

// TestPropertyCacheInvariants drives the profiler+cache with random
// dispatch streams over a small block universe and checks structural
// invariants of the cache afterwards.
func TestPropertyCacheInvariants(t *testing.T) {
	f := func(seed int64, thPick, universe uint8) bool {
		r := rand.New(rand.NewSource(seed))
		ths := []float64{1.0, 0.99, 0.97, 0.9}
		th := ths[int(thPick)%len(ths)]
		n := int(universe%6) + 3
		d := newDriver(t, profile.Params{StartDelay: 1, Threshold: th, DecayInterval: 64})

		// A random walk with a bias toward a ring (so some edges are hot).
		cur := cfg.BlockID(0)
		for i := 0; i < 20000; i++ {
			var next cfg.BlockID
			if r.Intn(10) < 8 {
				next = (cur + 1) % cfg.BlockID(n)
			} else {
				next = cfg.BlockID(r.Intn(n))
			}
			d.g.OnDispatch(cur, next)
			cur = next
		}

		if d.c.CheckInvariants() != nil {
			return false
		}
		conf := d.c.Config()
		for _, tr := range d.c.Traces() {
			if tr.Retired {
				return false // retired traces must not be listed
			}
			if tr.Len() < conf.MinBlocks || tr.Len() > conf.MaxBlocks {
				return false
			}
			if tr.ExpectedCompletion < th-1e-9 {
				return false // registered below the construction threshold
			}
		}
		// Every registered edge resolves to a live trace whose entry block
		// matches the edge's target.
		for from := cfg.BlockID(0); int(from) < n; from++ {
			for to := cfg.BlockID(0); int(to) < n; to++ {
				tr := d.c.Lookup(from, to)
				if tr == nil {
					continue
				}
				if tr.Retired || tr.Entry() != to {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLoopHeaderHintBoundsBacktracking(t *testing.T) {
	p := profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64}

	// Without hints, backtracking from any signal runs to the chain root:
	// the only trace entry is the first edge (0,1).
	plain := newDriver(t, p)
	plain.replay(400, 0, 1, 2, 3, 4)
	if plain.c.Lookup(0, 1) == nil {
		t.Fatal("unhinted: no trace entered at chain root")
	}
	if plain.c.Lookup(1, 2) != nil {
		t.Fatal("unhinted: unexpected trace entry at the interior edge (1,2)")
	}

	// With block 2 marked a loop header, backtracking stops at the branch
	// context entering it, so a trace entered at (1,2) must exist.
	hinted := newDriver(t, p)
	hinted.c.Index().SetLoopHeaders([]cfg.BlockID{2})
	hinted.replay(400, 0, 1, 2, 3, 4)
	if hinted.c.Lookup(1, 2) == nil {
		t.Fatalf("hinted: no trace entered at the loop header edge\n%s", hinted.c.Dump())
	}
	hinted.check(t)
	plain.check(t)
}

// markEveryOtherProver is a stub GuardProver: it proves the side exit after
// every even-indexed block dead and records each query it answered.
type markEveryOtherProver struct{ queries [][]cfg.BlockID }

func (p *markEveryOtherProver) ProveGuards(blocks []cfg.BlockID) []bool {
	p.queries = append(p.queries, append([]cfg.BlockID(nil), blocks...))
	proofs := make([]bool, len(blocks)-1)
	for i := range proofs {
		proofs[i] = i%2 == 0
	}
	return proofs
}

func TestRegisterStampsGuardProofsFromProver(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	prover := &markEveryOtherProver{}
	d.c.SetProver(prover)
	d.cycle(400, 1, 2, 3)
	traces := d.c.Traces()
	if len(traces) == 0 {
		t.Fatal("no traces built")
	}
	// The prover is consulted once per newly built trace (retired ones
	// included), never for hash-consed reuses.
	if len(prover.queries) < len(traces) {
		t.Fatalf("prover consulted %d times for %d live traces", len(prover.queries), len(traces))
	}
	for _, tr := range traces {
		if len(tr.GuardProofs) != tr.Len()-1 {
			t.Fatalf("trace %d: %d proofs for %d blocks", tr.ID, len(tr.GuardProofs), tr.Len())
		}
		for i, proven := range tr.GuardProofs {
			if want := i%2 == 0; proven != want {
				t.Fatalf("trace %d: proof %d = %v, want %v", tr.ID, i, proven, want)
			}
		}
		if want := (tr.Len() - 1 + 1) / 2; tr.ProvenGuards() != want {
			t.Fatalf("trace %d: ProvenGuards() = %d, want %d", tr.ID, tr.ProvenGuards(), want)
		}
	}
	d.check(t)
}

func TestRegisterWithoutProverLeavesTracesUnproven(t *testing.T) {
	d := newDriver(t, profile.Params{StartDelay: 1, Threshold: 0.9, DecayInterval: 64})
	d.cycle(400, 1, 2, 3)
	for _, tr := range d.c.Traces() {
		if tr.GuardProofs != nil || tr.ProvenGuards() != 0 {
			t.Fatalf("trace %d carries proofs with no prover attached", tr.ID)
		}
	}
}
