package core_test

import (
	"runtime"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/vm"
)

// dispatchFunc adapts a function to vm.DispatchHook for hook wrapping.
type dispatchFunc func(from, to cfg.BlockID)

func (f dispatchFunc) OnDispatch(from, to cfg.BlockID) { f(from, to) }

// TestCompiledDispatchZeroAlloc pins tier-2 execution at zero heap
// allocations per dispatch, the compiled twin of the profiler's warmed
// fast-path pin: once the loop trace is promoted and the machine's working
// set (frame, operand stack, profiler arenas) is warm, the steady run
// region — superinstruction execution, trace accounting, and the
// per-trace-dispatch profiler hook — must not allocate at all.
//
// The measurement rides the WrapHook seam: in deploy mode the hook fires
// once per trace dispatch, so two hook invocations bracket a window of
// tens of thousands of compiled dispatches, and runtime.MemStats.Mallocs
// across that window counts every heap allocation the steady state makes.
func TestCompiledDispatchZeroAlloc(t *testing.T) {
	// Hook invocations before the window opens (profiler convergence, trace
	// build, tier-up, stack growth all happen here) and the window's width.
	// stormProgram's loop runs 30000 iterations (~15k hook calls once the
	// trace covers multiple blocks per dispatch), so warm+window fits with
	// margin.
	const warm, window = 2000, 10000

	var sess *core.Session
	var m0, m1 runtime.MemStats
	var calls int64
	openAt, closeAt := int64(-1), int64(-1) // CompiledDispatches at the window edges
	wrap := func(h vm.DispatchHook) vm.DispatchHook {
		return dispatchFunc(func(from, to cfg.BlockID) {
			calls++
			switch calls {
			case warm:
				runtime.ReadMemStats(&m0)
				openAt = sess.Counters.CompiledDispatches
			case warm + window:
				runtime.ReadMemStats(&m1)
				closeAt = sess.Counters.CompiledDispatches
			}
			if h != nil {
				h.OnDispatch(from, to)
			}
		})
	}

	s, out := buildSession(t, stormProgram, core.SessionOptions{
		Mode:     core.ModeTraceDeploy,
		Params:   tierParams,
		Config:   core.Config{CompileTraces: true, TierUpDispatches: 4},
		WrapHook: wrap,
	})
	sess = s
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != stormOutput {
		t.Errorf("output = %q, want %q", out.String(), stormOutput)
	}
	if closeAt < 0 {
		t.Fatalf("run made only %d hook calls; the %d-call window never closed", calls, warm+window)
	}
	served := closeAt - openAt
	if served <= 0 {
		t.Fatalf("no compiled dispatches inside the window (open %d, close %d); the pin is vacuous", openAt, closeAt)
	}
	if mallocs := m1.Mallocs - m0.Mallocs; mallocs != 0 {
		t.Errorf("compiled steady state allocated %d times over %d compiled dispatches, want 0", mallocs, served)
	}
}
