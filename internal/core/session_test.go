package core_test

import (
	"bytes"

	"repro/internal/analysis"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/jasm"
	"repro/internal/profile"
	"repro/internal/vm"
)

// loopProgram sums 0..n-1 through a static call inside a loop, printing the
// result: enough control flow to exercise blocks, calls, branches, and the
// profiler/trace pipeline end to end.
const loopProgram = `
.class Main
.method static add ( int int ) int
    iload 0
    iload 1
    iadd
    ireturn
.end
.method static main ( ) void
.locals 2
    iconst 0
    istore 0        ; i
    iconst 0
    istore 1        ; sum
loop:
    iload 0
    iconst 10000
    if_icmpge done
    iload 1
    iload 0
    invokestatic Main.add
    istore 1
    iinc 0 1
    goto loop
done:
    iload 1
    invokestatic Main.print
    return
.end
.native static print ( int ) void println_int
.end
.entry Main main
`

func buildSession(t *testing.T, src string, opts core.SessionOptions) (*core.Session, *bytes.Buffer) {
	t.Helper()
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	out := &bytes.Buffer{}
	opts.Out = out
	s, err := core.NewSession(prog, pcfg, opts)
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	return s, out
}

func TestSessionModesProduceIdenticalOutput(t *testing.T) {
	want := "49995000\n"
	for _, mode := range []core.Mode{core.ModePlain, core.ModeProfile, core.ModeTrace, core.ModeTraceDeploy} {
		t.Run(mode.String(), func(t *testing.T) {
			s, out := buildSession(t, loopProgram, core.SessionOptions{Mode: mode})
			if err := s.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if out.String() != want {
				t.Errorf("output = %q, want %q", out.String(), want)
			}
		})
	}
}

func TestTraceModeFindsLoopTrace(t *testing.T) {
	s, _ := buildSession(t, loopProgram, core.SessionOptions{
		Mode:   core.ModeTrace,
		Params: profile.Params{StartDelay: 64, Threshold: 0.97, DecayInterval: 256},
	})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := s.Counters
	if c.Signals == 0 {
		t.Error("profiler produced no signals")
	}
	if c.TracesBuilt == 0 {
		t.Fatal("trace cache built no traces")
	}
	if c.TracesEntered == 0 {
		t.Fatal("no traces were dispatched")
	}
	if c.TracesCompleted == 0 {
		t.Error("no trace ever completed")
	}
	m := s.Metrics()
	if m.CompletionRate < 0.9 {
		t.Errorf("completion rate %.3f for a perfectly regular loop, want >= 0.9", m.CompletionRate)
	}
	if m.Coverage < 0.5 {
		t.Errorf("coverage %.3f, want most of this loop-dominated program covered", m.Coverage)
	}
	if m.AvgTraceLength < 2 {
		t.Errorf("average trace length %.2f, want >= 2 blocks", m.AvgTraceLength)
	}
	t.Logf("counters: %s", c)
	t.Logf("cache:\n%s", s.Cache.Dump())
}

func TestProfileModeBuildsGraph(t *testing.T) {
	s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeProfile})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if s.Graph.NumNodes() == 0 {
		t.Fatal("no BCG nodes created")
	}
	if s.Counters.BlockDispatches == 0 {
		t.Fatal("no dispatches recorded")
	}
	// The dominant loop should yield strongly correlated nodes.
	strong := 0
	s.Graph.Nodes(func(n *profile.Node) {
		if n.State.Correlated() {
			strong++
		}
	})
	if strong == 0 {
		t.Error("no node ever became strongly correlated in a regular loop")
	}
}

func TestPlainModeHasNoProfilerActivity(t *testing.T) {
	s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModePlain})
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	c := s.Counters
	if c.NodesCreated != 0 || c.Signals != 0 || c.TracesBuilt != 0 {
		t.Errorf("plain mode touched the profiler: %+v", c)
	}
	if c.Instrs == 0 || c.BlockDispatches == 0 {
		t.Error("plain mode recorded no execution")
	}
}

func TestSessionOutputsAgreeAcrossThresholds(t *testing.T) {
	var ref string
	for _, th := range []float64{1.0, 0.99, 0.98, 0.97, 0.95} {
		s, out := buildSession(t, loopProgram, core.SessionOptions{
			Mode:   core.ModeTrace,
			Params: profile.Params{StartDelay: 1, Threshold: th, DecayInterval: 256},
		})
		if err := s.Run(); err != nil {
			t.Fatalf("threshold %v: %v", th, err)
		}
		if ref == "" {
			ref = out.String()
		} else if out.String() != ref {
			t.Errorf("threshold %v changed program output: %q vs %q", th, out.String(), ref)
		}
		if !strings.Contains(ref, "49995000") {
			t.Fatalf("unexpected output %q", ref)
		}
	}
}

// TestInterruptStopsEveryEngine verifies the host-cancellation flag: a
// pre-set interrupt must stop each dispatch engine at its first check, with
// a TrapInterrupted trap and no program output. This is the mechanism the
// serve layer uses to enforce request deadlines.
func TestInterruptStopsEveryEngine(t *testing.T) {
	for _, mode := range []core.Mode{core.ModePlain, core.ModeInstr, core.ModeProfile, core.ModeTrace, core.ModeTraceDeploy} {
		t.Run(mode.String(), func(t *testing.T) {
			var stop atomic.Bool
			stop.Store(true)
			s, out := buildSession(t, loopProgram, core.SessionOptions{Mode: mode, Interrupt: &stop})
			err := s.Run()
			if err == nil {
				t.Fatal("interrupted run succeeded")
			}
			trap, ok := vm.AsTrap(err)
			if !ok || trap.Kind != vm.TrapInterrupted {
				t.Fatalf("error = %v, want TrapInterrupted", err)
			}
			if out.Len() != 0 {
				t.Errorf("interrupted run produced output %q", out.String())
			}
		})
	}
}

// TestInterruptMidRun flips the flag from another goroutine while the
// program loops and expects the run to stop promptly.
func TestInterruptMidRun(t *testing.T) {
	var stop atomic.Bool
	s, _ := buildSession(t, loopProgram, core.SessionOptions{Mode: core.ModeTrace, Interrupt: &stop})
	go func() {
		time.Sleep(time.Millisecond)
		stop.Store(true)
	}()
	// Either the run finishes before the flag lands (it is a short loop) or
	// it traps with TrapInterrupted; anything else is a bug.
	if err := s.Run(); err != nil {
		if trap, ok := vm.AsTrap(err); !ok || trap.Kind != vm.TrapInterrupted {
			t.Fatalf("error = %v, want TrapInterrupted", err)
		}
	}
}

func TestSessionWithStaticHints(t *testing.T) {
	prog, err := jasm.Assemble(loopProgram)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	hints := analysis.ComputeHints(pcfg)
	if len(hints.UniqueBlocks()) == 0 || len(hints.LoopHeaders()) == 0 {
		t.Fatalf("loop program yields no hints (unique=%d headers=%d)",
			len(hints.UniqueBlocks()), len(hints.LoopHeaders()))
	}

	out := &bytes.Buffer{}
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode: core.ModeTrace, Out: out, Hints: hints,
	})
	if err != nil {
		t.Fatalf("session: %v", err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if out.String() != "49995000\n" {
		t.Errorf("hinted run output = %q, want %q", out.String(), "49995000\n")
	}
	if s.Counters.NodesSeededUnique == 0 {
		t.Error("hinted run seeded no unique nodes")
	}
	if s.Cache.NumTraces() == 0 {
		t.Error("hinted run built no traces")
	}
}
