package core

import (
	"io"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Mode selects the dispatch/profiling configuration of a Session.
type Mode uint8

const (
	// ModePlain runs the threaded interpreter with no profiler — the
	// baseline of Table VI.
	ModePlain Mode = iota
	// ModeInstr runs the per-instruction dispatch engine (Figure 1): one
	// dispatch per bytecode instruction, no profiler, no traces. It exists
	// for the dispatch-granularity comparison.
	ModeInstr
	// ModeProfile runs the threaded interpreter with the BCG profiler but
	// never dispatches traces (the cache still constructs them) — the
	// "profiler" column of Table VI and the measurement substrate of the
	// trace-quality tables when trace dispatch should not perturb anything.
	ModeProfile
	// ModeTrace runs the full system: profiling, trace construction, and
	// trace dispatch with full in-trace profiling (measurement mode).
	ModeTrace
	// ModeTraceDeploy is ModeTrace with a single profiler hook per trace
	// dispatch (deployment mode), the configuration Table VII models.
	ModeTraceDeploy
)

// Profiled reports whether the mode attaches the BCG profiler and therefore
// constructs traces — the modes the serving layer's churn breaker governs.
func (m Mode) Profiled() bool { return m != ModePlain && m != ModeInstr }

func (m Mode) String() string {
	switch m {
	case ModePlain:
		return "plain"
	case ModeInstr:
		return "instr"
	case ModeProfile:
		return "profile"
	case ModeTrace:
		return "trace"
	case ModeTraceDeploy:
		return "trace-deploy"
	}
	return "invalid"
}

// Session assembles the full system around one program run: the execution
// engine, the branch correlation graph profiler, and the trace cache.
type Session struct {
	Mode     Mode
	Machine  *vm.Machine
	Graph    *profile.Graph
	Cache    *Cache
	Counters *stats.Counters
}

// SessionOptions configures NewSession.
type SessionOptions struct {
	Mode     Mode
	Params   profile.Params // profiler parameters (zero value: DefaultParams)
	Config   Config         // trace constructor configuration
	Out      io.Writer      // program output (default: discard)
	MaxSteps int64          // instruction budget, 0 = unlimited
	// Interrupt, if set, cancels the run at the next block boundary when
	// stored true; the machine stops with a TrapInterrupted trap. Used by
	// the serving layer to enforce per-request deadlines.
	Interrupt *atomic.Bool
	// WrapHook, if set, wraps (or, in unprofiled modes, supplies) the
	// machine's dispatch hook. This is the fault-injection seam: the chaos
	// harness uses it to delay or perturb the dispatch stream. Production
	// paths leave it nil and pay nothing.
	WrapHook func(vm.DispatchHook) vm.DispatchHook
	// Hints, if set, carries static dataflow facts (analysis.ComputeHints):
	// blocks with exactly one static successor seed their BCG nodes
	// pre-classified unique, and loop headers bound trace-cache
	// backtracking. Nil keeps the paper's purely dynamic baseline.
	Hints *analysis.Hints
	// Facts, if set, carries whole-program value-flow facts
	// (valueflow.Compute): a guard oracle built from them stamps every
	// newly registered trace with proofs of never-firing side-exit guards
	// (trace.GuardProofs). Pair with ComputeHintsWithFacts-derived Hints to
	// also pre-seed decided branches. Ignored when Profiler is set — a
	// shard's prover persists with the shard (see serve's epoch manager).
	Facts *valueflow.Facts
	// Probe, if set, is called at every block entry with the live frame
	// state (vm.Options.Probe). This is the differential-checking seam the
	// value-flow soundness harness uses; production paths leave it nil.
	Probe vm.Probe
	// Sink, if set, receives the run's observability events: BCG node state
	// transitions and trace build/reuse/retire/evict. An attached sink with
	// no transitions in flight costs the dispatch path nothing.
	Sink obs.Sink
	// Snapshot, if set, warm-starts the session from previously learned
	// state: BCG nodes come back pre-classified, snapshot traces that still
	// clear the completion threshold are registered before the first
	// dispatch, and loop-header anchors are restored. The caller must have
	// verified the snapshot's program key; params are re-checked here and a
	// mismatch fails session construction. Ignored in unprofiled modes.
	Snapshot *snapshot.Snapshot
	// Profiler, if set, attaches the session to a persistent profiling pair
	// (a worker shard) instead of building a fresh graph and cache: learned
	// state and arenas carry over from previous runs, and the pair is
	// rebound to this session's counters and sink. The profiler's own
	// parameters govern the run — Params, Config and Hints are ignored, and
	// Snapshot seeds only a profiler that holds no state yet. The caller
	// must serialize sessions sharing one Profiler. Ignored in unprofiled
	// modes.
	Profiler *Profiler
}

// NewSession builds a session over a linked program and its CFGs.
func NewSession(prog *classfile.Program, pcfg *cfg.ProgramCFG, opts SessionOptions) (*Session, error) {
	if opts.Params == (profile.Params{}) {
		opts.Params = profile.DefaultParams()
	}
	ctr := &stats.Counters{}
	s := &Session{Mode: opts.Mode, Counters: ctr}

	mopts := vm.Options{
		Out:       opts.Out,
		Counters:  ctr,
		MaxSteps:  opts.MaxSteps,
		Interrupt: opts.Interrupt,
		Probe:     opts.Probe,
	}
	if opts.Mode != ModePlain && opts.Mode != ModeInstr {
		var g *profile.Graph
		var cache *Cache
		if p := opts.Profiler; p != nil {
			// Shard reuse: attach to the persistent pair, rebinding its
			// accounting to this run. Its params govern the session.
			opts.Params = p.params
			g, cache = p.Graph, p.Cache
			p.SetCounters(ctr)
			if opts.Sink != nil {
				p.SetSink(opts.Sink)
			}
			if opts.Snapshot != nil && p.Seeded() {
				// The shard already holds live learned state; a stale warm
				// snapshot must not be layered over it.
				opts.Snapshot = nil
			}
		} else {
			cache = NewCache(opts.Config, ctr)
			var err error
			g, err = profile.New(opts.Params, ctr, cache)
			if err != nil {
				return nil, err
			}
			cache.Bind(g)
			if pcfg != nil {
				// Pre-size the dense dispatch-path indices to the program's
				// block count so the hot loop never grows them.
				g.Reserve(pcfg.NumBlocks())
				cache.Reserve(pcfg.NumBlocks())
			}
			if opts.Hints != nil {
				g.SetStaticHints(opts.Hints.UniqueBlocks())
				cache.Index().SetLoopHeaders(opts.Hints.LoopHeaders())
			}
			if opts.Sink != nil {
				g.SetSink(opts.Sink)
				cache.SetSink(opts.Sink)
			}
			if opts.Facts != nil && pcfg != nil {
				cache.SetProver(valueflow.NewOracle(opts.Facts, pcfg))
			}
			if pcfg != nil && cache.Config().CompileTraces {
				cache.SetCompileEnv(pcfg, opts.Facts)
			}
		}
		s.Graph = g
		s.Cache = cache
		if opts.Snapshot != nil {
			if err := seedSession(s, opts.Snapshot, opts.Params); err != nil {
				return nil, err
			}
		}
		mopts.Hook = g
		if opts.Mode == ModeTrace || opts.Mode == ModeTraceDeploy {
			mopts.Traces = cache
			mopts.HookInsideTraces = opts.Mode == ModeTrace
			if cache.CompileEnabled() {
				mopts.Tiering = cache
			}
		}
	}
	if opts.WrapHook != nil {
		mopts.Hook = opts.WrapHook(mopts.Hook)
	}
	m, err := vm.New(prog, pcfg, mopts)
	if err != nil {
		return nil, err
	}
	s.Machine = m
	return s, nil
}

// Run executes the program.
func (s *Session) Run() error {
	if s.Graph != nil {
		s.Graph.ResetContext()
	}
	if s.Mode == ModeInstr {
		return s.Machine.RunInstrMode()
	}
	return s.Machine.Run()
}

// Metrics returns the derived dependent values of the run so far.
func (s *Session) Metrics() stats.Metrics { return s.Counters.Derive() }
