package core

import (
	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Profiler is a persistent profiling pair — one BCG graph and one trace
// cache, permanently bound to each other — that outlives any single session.
// The serving layer gives every worker a private Profiler per program (a
// shard): sessions attach to it via SessionOptions.Profiler, so learned
// state, arenas and the dense indices survive across requests and a warmed
// worker relearns nothing. An epoch coordinator later merges shards through
// Absorb/DeriveStates into a fresh Profiler whose cache promotes only the
// globally hot traces.
//
// A Profiler is single-threaded like the graph it wraps: the owner must
// serialize runs against it (the serving layer holds a per-shard lock for
// the duration of each run).
type Profiler struct {
	params profile.Params
	Graph  *profile.Graph
	Cache  *Cache
}

// NewProfiler builds an empty profiling pair: cache and graph are
// constructed and bound exactly as NewSession would, with the dense indices
// pre-sized to numBlocks and static hints applied. params' zero value means
// DefaultParams; conf carries the trace-cache budgets.
func NewProfiler(params profile.Params, conf Config, hints *analysis.Hints, numBlocks int) (*Profiler, error) {
	if params == (profile.Params{}) {
		params = profile.DefaultParams()
	}
	ctr := &stats.Counters{}
	cache := NewCache(conf, ctr)
	g, err := profile.New(params, ctr, cache)
	if err != nil {
		return nil, err
	}
	cache.Bind(g)
	if numBlocks > 0 {
		g.Reserve(numBlocks)
		cache.Reserve(numBlocks)
	}
	if hints != nil {
		g.SetStaticHints(hints.UniqueBlocks())
		cache.Index().SetLoopHeaders(hints.LoopHeaders())
	}
	return &Profiler{params: params, Graph: g, Cache: cache}, nil
}

// Params returns the profiler's parameters; sessions attaching to the
// profiler run under these, never under their own.
func (p *Profiler) Params() profile.Params { return p.params }

// SetCounters rebinds both halves to a fresh counter record, so each run
// through a reused profiler accounts against its own session's counters.
func (p *Profiler) SetCounters(ctr *stats.Counters) {
	p.Graph.SetCounters(ctr)
	p.Cache.SetCounters(ctr)
}

// SetSink attaches an observability sink to both halves (nil detaches).
func (p *Profiler) SetSink(s obs.Sink) {
	p.Graph.SetSink(s)
	p.Cache.SetSink(s)
}

// SetProver attaches a static guard oracle to the cache: traces the shard
// builds from here on carry proofs of never-firing side-exit guards.
func (p *Profiler) SetProver(gp GuardProver) { p.Cache.SetProver(gp) }

// EnableCompile attaches the tier-2 compilation environment to the cache:
// the canonical CFG (required), value-flow facts for const-folding
// (optional), and a compiled-program memo shared across this program's
// shards and merged views so every block sequence compiles at most once.
// No-op unless the cache was configured with CompileTraces.
func (p *Profiler) EnableCompile(pcfg *cfg.ProgramCFG, facts *valueflow.Facts, store *CompiledStore) {
	if !p.Cache.Config().CompileTraces || pcfg == nil {
		return
	}
	p.Cache.SetCompileEnv(pcfg, facts)
	if store != nil {
		p.Cache.SetCompiledStore(store)
	}
}

// Seeded reports whether the profiler holds any learned state yet; a fresh
// shard seeds from a warm snapshot only while this is false.
func (p *Profiler) Seeded() bool { return p.Graph.NumNodes() > 0 }

// ExportSnapshot captures the profiler's learned state keyed to a program
// identity — the same structural export Session.ExportSnapshot performs.
// The result aliases nothing in the profiler.
func (p *Profiler) ExportSnapshot(programKey, programName string) *snapshot.Snapshot {
	return &snapshot.Snapshot{
		ProgramKey:  programKey,
		Program:     programName,
		Params:      p.params,
		Nodes:       p.Graph.Export(),
		Traces:      p.Cache.ExportTraces(),
		LoopHeaders: p.Cache.Index().LoopHeaders(),
	}
}

// Absorb sums a source shard's learned history into this profiler; states
// are re-derived by DeriveStates once every shard is in. The source is read,
// never modified. Parameters must match.
func (p *Profiler) Absorb(src *Profiler) (int, error) {
	return p.Graph.Absorb(src.Graph)
}

// DeriveStates classifies the merged history and signals this profiler's
// own trace cache, which builds (promotes) traces only where the combined
// evidence clears the completion threshold. Call after the last Absorb.
func (p *Profiler) DeriveStates() { p.Graph.DeriveStates() }
