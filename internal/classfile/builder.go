package classfile

import "fmt"

// Builder constructs Programs programmatically with interning of string
// constants and method/field references. The MiniJava code generator, the
// assembler, and many tests use it.
type Builder struct {
	prog       *Program
	strings    map[string]int
	methodRefs map[string]int
	fieldRefs  map[string]int
	classes    map[string]*ClassBuilder
}

// NewBuilder returns an empty program builder.
func NewBuilder() *Builder {
	return &Builder{
		prog:       &Program{},
		strings:    make(map[string]int),
		methodRefs: make(map[string]int),
		fieldRefs:  make(map[string]int),
		classes:    make(map[string]*ClassBuilder),
	}
}

// ClassBuilder accumulates one class's members.
type ClassBuilder struct {
	c *Class
}

// Class starts (or returns the existing builder for) a class.
func (b *Builder) Class(name string) *ClassBuilder {
	if cb, ok := b.classes[name]; ok {
		return cb
	}
	c := &Class{Name: name}
	b.prog.Classes = append(b.prog.Classes, c)
	cb := &ClassBuilder{c: c}
	b.classes[name] = cb
	return cb
}

// Extends sets the superclass name.
func (cb *ClassBuilder) Extends(super string) *ClassBuilder {
	cb.c.SuperName = super
	return cb
}

// Field declares an instance field.
func (cb *ClassBuilder) Field(name string, t Type) *ClassBuilder {
	cb.c.Fields = append(cb.c.Fields, &Field{Name: name, Type: t})
	return cb
}

// StaticField declares a static field.
func (cb *ClassBuilder) StaticField(name string, t Type) *ClassBuilder {
	cb.c.Fields = append(cb.c.Fields, &Field{Name: name, Type: t, Static: true})
	return cb
}

// Method declares a method with a bytecode body and returns it so callers
// can fill in Code and MaxLocals.
func (cb *ClassBuilder) Method(name string, params []Type, ret Type, static bool) *Method {
	m := &Method{Name: name, Params: params, Ret: ret, Static: static}
	cb.c.Methods = append(cb.c.Methods, m)
	return m
}

// NativeMethod declares a method bound to a named builtin.
func (cb *ClassBuilder) NativeMethod(name string, params []Type, ret Type, static bool, native string) *Method {
	m := cb.Method(name, params, ret, static)
	m.Native = native
	return m
}

// AbstractMethod declares an abstract instance method.
func (cb *ClassBuilder) AbstractMethod(name string, params []Type, ret Type) *Method {
	m := cb.Method(name, params, ret, false)
	m.Abstract = true
	return m
}

// String interns a string constant and returns its pool index.
func (b *Builder) String(s string) int {
	if i, ok := b.strings[s]; ok {
		return i
	}
	i := len(b.prog.Strings)
	b.prog.Strings = append(b.prog.Strings, s)
	b.strings[s] = i
	return i
}

// MethodRef interns a symbolic method reference and returns its table index.
func (b *Builder) MethodRef(className, name string, kind RefKind) int {
	key := fmt.Sprintf("%d:%s.%s", kind, className, name)
	if i, ok := b.methodRefs[key]; ok {
		return i
	}
	i := len(b.prog.MethodRefs)
	b.prog.MethodRefs = append(b.prog.MethodRefs, MethodRef{ClassName: className, Name: name, Kind: kind})
	b.methodRefs[key] = i
	return i
}

// FieldRef interns a symbolic field reference and returns its table index.
func (b *Builder) FieldRef(className, name string, static bool) int {
	key := fmt.Sprintf("%v:%s.%s", static, className, name)
	if i, ok := b.fieldRefs[key]; ok {
		return i
	}
	i := len(b.prog.FieldRefs)
	b.prog.FieldRefs = append(b.prog.FieldRefs, FieldRef{ClassName: className, Name: name, Static: static})
	b.fieldRefs[key] = i
	return i
}

// ClassIndex returns the class-table index for New/InstanceOf/CheckCast
// operands, declaring the class on first use so forward references work.
func (b *Builder) ClassIndex(name string) int {
	b.Class(name)
	for i, k := range b.prog.Classes {
		if k.Name == name {
			return i
		}
	}
	return -1 // unreachable: Class always inserts
}

// SetEntry names the program entry point (a static, no-argument method).
func (b *Builder) SetEntry(className, methodName string) {
	b.prog.EntryClass = className
	b.prog.EntryMethod = methodName
}

// Build links and returns the program.
func (b *Builder) Build() (*Program, error) {
	if err := b.prog.Link(); err != nil {
		return nil, err
	}
	return b.prog, nil
}

// Program returns the unlinked program under construction. Tests use it to
// exercise link failures.
func (b *Builder) Program() *Program { return b.prog }
