package classfile_test

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// retVoid is the minimal valid method body.
var retVoid = bytecode.MustEncode([]bytecode.Instr{{Op: bytecode.ReturnVoid}})

func buildDiamondless(t *testing.T) *classfile.Program {
	t.Helper()
	b := classfile.NewBuilder()
	b.Class("Animal").Field("age", classfile.TInt)
	sound := b.Class("Animal").Method("sound", nil, classfile.TInt, false)
	sound.MaxLocals = 1
	sound.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.IConst, A: 0},
		{Op: bytecode.IReturn},
	})
	b.Class("Dog").Extends("Animal").Field("tricks", classfile.TInt)
	bark := b.Class("Dog").Method("sound", nil, classfile.TInt, false)
	bark.MaxLocals = 1
	bark.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.IReturn},
	})
	fetch := b.Class("Dog").Method("fetch", nil, classfile.TVoid, false)
	fetch.MaxLocals = 1
	fetch.Code = retVoid
	mainM := b.Class("Main").Method("main", nil, classfile.TVoid, true)
	mainM.Code = retVoid
	b.SetEntry("Main", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return prog
}

func TestLinkLaysOutFieldsWithInheritance(t *testing.T) {
	prog := buildDiamondless(t)
	animal := prog.ClassNamed("Animal")
	dog := prog.ClassNamed("Dog")
	if animal.NumFields != 1 || dog.NumFields != 2 {
		t.Errorf("field counts: animal %d (want 1), dog %d (want 2)", animal.NumFields, dog.NumFields)
	}
	age := dog.FieldNamed("age")
	tricks := dog.FieldNamed("tricks")
	if age == nil || tricks == nil {
		t.Fatal("inherited or declared field not found")
	}
	if age.Offset != 0 || tricks.Offset != 1 {
		t.Errorf("offsets: age %d (want 0), tricks %d (want 1)", age.Offset, tricks.Offset)
	}
	if age.Class != animal {
		t.Error("inherited field should keep its declaring class")
	}
}

func TestLinkBuildsVTablesWithOverride(t *testing.T) {
	prog := buildDiamondless(t)
	animal := prog.ClassNamed("Animal")
	dog := prog.ClassNamed("Dog")
	if len(animal.VTable) != 1 {
		t.Fatalf("animal vtable size %d, want 1", len(animal.VTable))
	}
	if len(dog.VTable) != 2 {
		t.Fatalf("dog vtable size %d, want 2 (override + fetch)", len(dog.VTable))
	}
	slot := animal.MethodNamed("sound").VSlot
	if dog.VTable[slot].Class != dog {
		t.Error("Dog.sound did not override Animal.sound in the vtable")
	}
	if !dog.IsSubclassOf(animal) || animal.IsSubclassOf(dog) {
		t.Error("IsSubclassOf is wrong")
	}
	if dog.Depth != 1 || animal.Depth != 0 {
		t.Errorf("depths: dog %d, animal %d", dog.Depth, animal.Depth)
	}
}

func TestLinkErrors(t *testing.T) {
	mk := func(f func(*classfile.Builder)) error {
		b := classfile.NewBuilder()
		f(b)
		_, err := b.Build()
		return err
	}
	cases := []struct {
		name string
		f    func(*classfile.Builder)
		want string
	}{
		{"undefined super", func(b *classfile.Builder) {
			b.Class("A").Extends("Nope")
		}, "undefined class"},
		{"self super", func(b *classfile.Builder) {
			b.Class("A").Extends("A")
		}, "extends itself"},
		{"cycle", func(b *classfile.Builder) {
			b.Class("A").Extends("B")
			b.Class("B").Extends("A")
		}, "cycle"},
		{"dup field", func(b *classfile.Builder) {
			b.Class("A").Field("x", classfile.TInt).Field("x", classfile.TInt)
		}, "twice"},
		{"bad override", func(b *classfile.Builder) {
			m1 := b.Class("A").Method("f", nil, classfile.TInt, false)
			m1.MaxLocals = 1
			m1.Code = bytecode.MustEncode([]bytecode.Instr{{Op: bytecode.IConst, A: 0}, {Op: bytecode.IReturn}})
			m2 := b.Class("B").Extends("A").Method("f", nil, classfile.TFloat, false)
			m2.MaxLocals = 1
			m2.Code = bytecode.MustEncode([]bytecode.Instr{{Op: bytecode.FConst}, {Op: bytecode.FReturn}})
		}, "different signature"},
		{"no body", func(b *classfile.Builder) {
			b.Class("A").Method("f", nil, classfile.TVoid, true)
		}, "no body"},
		{"falls off end", func(b *classfile.Builder) {
			m := b.Class("A").Method("f", nil, classfile.TVoid, true)
			m.Code = bytecode.MustEncode([]bytecode.Instr{{Op: bytecode.Nop}})
		}, "fall off"},
		{"locals too small", func(b *classfile.Builder) {
			m := b.Class("A").Method("f", []classfile.Type{classfile.TInt}, classfile.TVoid, true)
			m.MaxLocals = 0
			m.Code = retVoid
		}, "arguments"},
		{"slot out of range", func(b *classfile.Builder) {
			m := b.Class("A").Method("f", nil, classfile.TVoid, true)
			m.MaxLocals = 1
			m.Code = bytecode.MustEncode([]bytecode.Instr{
				{Op: bytecode.ILoad, A: 5},
				{Op: bytecode.ReturnVoid},
			})
		}, "out of range"},
		{"missing entry class", func(b *classfile.Builder) {
			m := b.Class("A").Method("main", nil, classfile.TVoid, true)
			m.Code = retVoid
			b.SetEntry("Zap", "main")
		}, "not found"},
		{"entry not static", func(b *classfile.Builder) {
			m := b.Class("A").Method("main", nil, classfile.TVoid, false)
			m.MaxLocals = 1
			m.Code = retVoid
			b.SetEntry("A", "main")
		}, "static"},
		{"abstract with body", func(b *classfile.Builder) {
			m := b.Class("A").AbstractMethod("f", nil, classfile.TVoid)
			m.Code = retVoid
		}, "has a body"},
		{"string ref out of range", func(b *classfile.Builder) {
			m := b.Class("A").Method("main", nil, classfile.TVoid, true)
			m.Code = bytecode.MustEncode([]bytecode.Instr{
				{Op: bytecode.SConst, A: 3},
				{Op: bytecode.Pop},
				{Op: bytecode.ReturnVoid},
			})
		}, "string constant"},
		{"method ref kind mismatch", func(b *classfile.Builder) {
			callee := b.Class("A").Method("g", nil, classfile.TVoid, true)
			callee.Code = retVoid
			ref := b.MethodRef("A", "g", classfile.RefStatic)
			m := b.Class("A").Method("main", nil, classfile.TVoid, true)
			m.Code = bytecode.MustEncode([]bytecode.Instr{
				{Op: bytecode.InvokeVirtual, A: int32(ref)},
				{Op: bytecode.ReturnVoid},
			})
		}, "method ref"},
		{"unresolvable field ref", func(b *classfile.Builder) {
			ref := b.FieldRef("A", "nope", false)
			m := b.Class("A").Method("main", nil, classfile.TVoid, true)
			m.MaxLocals = 1
			m.Code = bytecode.MustEncode([]bytecode.Instr{
				{Op: bytecode.ALoad, A: 0},
				{Op: bytecode.GetField, A: int32(ref)},
				{Op: bytecode.Pop},
				{Op: bytecode.ReturnVoid},
			})
		}, "no field"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := mk(tc.f)
			if err == nil {
				t.Fatalf("link succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestLinkIsIdempotent(t *testing.T) {
	prog := buildDiamondless(t)
	if err := prog.Link(); err != nil {
		t.Fatalf("second link: %v", err)
	}
	if !prog.Linked() {
		t.Error("program not marked linked")
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	prog := buildDiamondless(t)
	var buf bytes.Buffer
	if err := classfile.Write(&buf, prog); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := classfile.Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if err := got.Link(); err != nil {
		t.Fatalf("relink: %v", err)
	}
	if len(got.Classes) != len(prog.Classes) {
		t.Fatalf("class count %d, want %d", len(got.Classes), len(prog.Classes))
	}
	for i, c := range prog.Classes {
		gc := got.Classes[i]
		if gc.Name != c.Name || gc.SuperName != c.SuperName {
			t.Errorf("class %d: %s/%s, want %s/%s", i, gc.Name, gc.SuperName, c.Name, c.SuperName)
		}
		if len(gc.Methods) != len(c.Methods) {
			t.Errorf("class %s: method count %d, want %d", c.Name, len(gc.Methods), len(c.Methods))
			continue
		}
		for j, m := range c.Methods {
			gm := gc.Methods[j]
			if gm.Name != m.Name || gm.Static != m.Static || !bytes.Equal(gm.Code, m.Code) {
				t.Errorf("method %s.%s did not round-trip", c.Name, m.Name)
			}
		}
	}
	if got.EntryClass != prog.EntryClass || got.EntryMethod != prog.EntryMethod {
		t.Error("entry point did not round-trip")
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"bad magic":    {1, 2, 3, 4, 5, 6, 7, 8},
		"truncated":    {0x31, 0x4d, 0x54, 0x4a, 1, 0, 0, 0}, // magic ok, then cut
		"huge strings": append([]byte{0x31, 0x4d, 0x54, 0x4a, 1, 0, 0, 0}, 0xff, 0xff, 0xff, 0x7f),
	}
	for name, data := range cases {
		if _, err := classfile.Read(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: read succeeded", name)
		}
	}
}

// TestPropertySerializationPreservesPrograms: random small programs survive
// write/read/link.
func TestPropertySerializationPreservesPrograms(t *testing.T) {
	f := func(nClasses uint8, nStrings uint8, withEntry bool) bool {
		b := classfile.NewBuilder()
		classes := int(nClasses%4) + 1
		for i := 0; i < classes; i++ {
			name := string(rune('A' + i))
			cb := b.Class(name)
			if i > 0 {
				cb.Extends(string(rune('A' + i - 1)))
			}
			cb.Field("f"+name, classfile.TFloat)
			m := cb.Method("m"+name, []classfile.Type{classfile.TInt}, classfile.TVoid, true)
			m.MaxLocals = 1
			m.Code = retVoid
		}
		for i := 0; i < int(nStrings%8); i++ {
			b.String(strings.Repeat("s", i+1))
		}
		mainM := b.Class("A").Method("main", nil, classfile.TVoid, true)
		mainM.Code = retVoid
		if withEntry {
			b.SetEntry("A", "main")
		}
		prog, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := classfile.Write(&buf, prog); err != nil {
			return false
		}
		got, err := classfile.Read(&buf)
		if err != nil {
			return false
		}
		if err := got.Link(); err != nil {
			return false
		}
		return len(got.Classes) == len(prog.Classes) &&
			len(got.Strings) == len(prog.Strings) &&
			len(got.Methods) == len(prog.Methods)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestBuilderInterning(t *testing.T) {
	b := classfile.NewBuilder()
	if b.String("x") != b.String("x") {
		t.Error("string constants not interned")
	}
	if b.String("x") == b.String("y") {
		t.Error("distinct strings share an index")
	}
	if b.MethodRef("A", "f", classfile.RefStatic) != b.MethodRef("A", "f", classfile.RefStatic) {
		t.Error("method refs not interned")
	}
	if b.MethodRef("A", "f", classfile.RefStatic) == b.MethodRef("A", "f", classfile.RefVirtual) {
		t.Error("method refs with different kinds share an index")
	}
	if b.FieldRef("A", "x", false) == b.FieldRef("A", "x", true) {
		t.Error("field refs with different staticness share an index")
	}
	if b.ClassIndex("Z") != b.ClassIndex("Z") {
		t.Error("class index unstable")
	}
}

func TestTypeAndRefKindStrings(t *testing.T) {
	if classfile.TInt.String() != "int" || classfile.TVoid.String() != "void" ||
		classfile.TFloat.String() != "float" || classfile.TRef.String() != "ref" {
		t.Error("Type.String wrong")
	}
	if classfile.RefStatic.String() != "static" || classfile.RefVirtual.String() != "virtual" ||
		classfile.RefSpecial.String() != "special" {
		t.Error("RefKind.String wrong")
	}
}
