package classfile_test

import (
	"strings"
	"testing"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// buildWith creates a single-class program whose static void main has the
// given body, and links it.
func buildWith(t *testing.T, locals int, ins []bytecode.Instr) error {
	t.Helper()
	b := classfile.NewBuilder()
	m := b.Class("A").Method("main", nil, classfile.TVoid, true)
	m.MaxLocals = locals
	m.Code = bytecode.MustEncode(ins)
	b.SetEntry("A", "main")
	_, err := b.Build()
	return err
}

func TestVerifierRejectsUnderflow(t *testing.T) {
	err := buildWith(t, 0, []bytecode.Instr{
		{Op: bytecode.Pop}, // pops from an empty stack
		{Op: bytecode.ReturnVoid},
	})
	if err == nil || !strings.Contains(err.Error(), "pops") {
		t.Errorf("underflow accepted: %v", err)
	}
}

func TestVerifierRejectsJoinMismatch(t *testing.T) {
	// Two paths join at @25 with different stack depths: the taken branch
	// arrives with depth 0 (the ifeq popped its operand), the fallthrough
	// pushes a constant first and arrives with depth 1.
	ins := []bytecode.Instr{
		{Op: bytecode.IConst, A: 1}, // @0
		{Op: bytecode.IfEq, A: 25},  // @5   taken -> @25 with depth 0
		{Op: bytecode.IConst, A: 2}, // @10  fallthrough pushes one value
		{Op: bytecode.Goto, A: 25},  // @15  -> @25 with depth 1
		{Op: bytecode.IConst, A: 3}, // @20  (unreachable padding)
		{Op: bytecode.Pop},          // @25  join point
		{Op: bytecode.ReturnVoid},   // @26
	}
	err := buildWith(t, 0, ins)
	if err == nil || !strings.Contains(err.Error(), "inconsistent stack depth") {
		t.Errorf("join mismatch accepted: %v", err)
	}
}

func TestVerifierRejectsDirtyReturn(t *testing.T) {
	err := buildWith(t, 0, []bytecode.Instr{
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.ReturnVoid}, // leaves a value behind
	})
	if err == nil || !strings.Contains(err.Error(), "leaves") {
		t.Errorf("dirty return accepted: %v", err)
	}
}

func TestVerifierComputesMaxStack(t *testing.T) {
	b := classfile.NewBuilder()
	m := b.Class("A").Method("main", nil, classfile.TVoid, true)
	m.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.IConst, A: 2},
		{Op: bytecode.IConst, A: 3}, // depth 3
		{Op: bytecode.IAdd},
		{Op: bytecode.IAdd},
		{Op: bytecode.Pop},
		{Op: bytecode.ReturnVoid},
	})
	b.SetEntry("A", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := prog.Main.MaxStack; got != 3 {
		t.Errorf("MaxStack = %d, want 3", got)
	}
}

func TestVerifierHandlesCalls(t *testing.T) {
	b := classfile.NewBuilder()
	callee := b.Class("A").Method("f", []classfile.Type{classfile.TInt, classfile.TInt}, classfile.TInt, true)
	callee.MaxLocals = 2
	callee.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.ILoad, A: 0},
		{Op: bytecode.ILoad, A: 1},
		{Op: bytecode.IAdd},
		{Op: bytecode.IReturn},
	})
	ref := b.MethodRef("A", "f", classfile.RefStatic)
	m := b.Class("A").Method("main", nil, classfile.TVoid, true)
	m.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.IConst, A: 2},
		{Op: bytecode.InvokeStatic, A: int32(ref)}, // pops 2, pushes 1
		{Op: bytecode.Pop},
		{Op: bytecode.ReturnVoid},
	})
	b.SetEntry("A", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("call verification failed: %v", err)
	}
	if prog.Main.MaxStack != 2 {
		t.Errorf("MaxStack = %d, want 2", prog.Main.MaxStack)
	}

	// Under-supplied call must be rejected.
	b2 := classfile.NewBuilder()
	c2 := b2.Class("A").Method("f", []classfile.Type{classfile.TInt, classfile.TInt}, classfile.TInt, true)
	c2.MaxLocals = 2
	c2.Code = callee.Code
	ref2 := b2.MethodRef("A", "f", classfile.RefStatic)
	m2 := b2.Class("A").Method("main", nil, classfile.TVoid, true)
	m2.Code = bytecode.MustEncode([]bytecode.Instr{
		{Op: bytecode.IConst, A: 1},
		{Op: bytecode.InvokeStatic, A: int32(ref2)},
		{Op: bytecode.Pop},
		{Op: bytecode.ReturnVoid},
	})
	b2.SetEntry("A", "main")
	if _, err := b2.Build(); err == nil || !strings.Contains(err.Error(), "pops") {
		t.Errorf("under-supplied call accepted: %v", err)
	}
}

func TestVerifierLoopConsistency(t *testing.T) {
	// A loop whose body is stack-neutral verifies; one that leaks a value
	// per iteration does not. PCs: iconst@0(5B) istore@5(3B) iload@8(3B)
	// ifle@11(5B) iinc@16(5B) goto@21(5B) return@26.
	ok := []bytecode.Instr{
		{Op: bytecode.IConst, A: 10},
		{Op: bytecode.IStore, A: 0},
		{Op: bytecode.ILoad, A: 0}, // loop head @8
		{Op: bytecode.IfLe, A: 26},
		{Op: bytecode.IInc, A: 0, B: -1},
		{Op: bytecode.Goto, A: 8},
		{Op: bytecode.ReturnVoid},
	}
	if err := buildWith(t, 1, ok); err != nil {
		t.Fatalf("stack-neutral loop rejected: %v", err)
	}

	leak := []bytecode.Instr{
		{Op: bytecode.IConst, A: 10},     // @0
		{Op: bytecode.IStore, A: 0},      // @5
		{Op: bytecode.IConst, A: 7},      // @8 leak one value per iteration
		{Op: bytecode.ILoad, A: 0},       // @13
		{Op: bytecode.IfLe, A: 31},       // @16
		{Op: bytecode.IInc, A: 0, B: -1}, // @21
		{Op: bytecode.Goto, A: 8},        // @26
		{Op: bytecode.ReturnVoid},        // @31
	}
	err := buildWith(t, 1, leak)
	if err == nil || !strings.Contains(err.Error(), "inconsistent stack depth") {
		t.Errorf("leaking loop accepted: %v", err)
	}
}

func TestVerifierUnreachableFillerAllowed(t *testing.T) {
	// Code after an infinite loop is unreachable; the verifier must not
	// reject it (the MiniJava compiler emits such epilogues).
	ins := []bytecode.Instr{
		{Op: bytecode.Goto, A: 0},   // @0: self-loop
		{Op: bytecode.IConst, A: 0}, // @5: unreachable
		{Op: bytecode.IReturn},      // @10
	}
	if err := buildWith(t, 0, ins); err != nil {
		t.Errorf("unreachable filler rejected: %v", err)
	}
}
