// Package classfile defines the loadable program model of the virtual
// machine: programs, classes, fields, methods, string constants, and the
// symbolic method/field reference tables that bytecode operands index.
//
// A Program is built either programmatically (Builder), by the jasm
// assembler, or by the MiniJava compiler, and must be linked before
// execution. Linking resolves superclass names, lays out instance fields
// (inherited fields first, so a subclass object is a prefix-compatible
// extension of its superclass), builds vtables with override resolution,
// resolves method and field references to direct slots, and validates the
// bytecode of every method.
package classfile

import (
	"fmt"

	"repro/internal/bytecode"
)

// Type is a value type in method and field descriptors. References are
// untyped beyond "reference": the VM is memory-safe through runtime checks,
// not a static verifier.
type Type uint8

const (
	TVoid Type = iota
	TInt
	TFloat
	TRef
)

// String returns the descriptor spelling of the type.
func (t Type) String() string {
	switch t {
	case TVoid:
		return "void"
	case TInt:
		return "int"
	case TFloat:
		return "float"
	case TRef:
		return "ref"
	}
	return "invalid"
}

// RefKind distinguishes how a method reference is dispatched.
type RefKind uint8

const (
	// RefStatic calls a static method directly.
	RefStatic RefKind = iota
	// RefVirtual dispatches through the receiver's vtable.
	RefVirtual
	// RefSpecial calls an instance method directly (constructors, super
	// calls) without consulting the vtable.
	RefSpecial
)

func (k RefKind) String() string {
	switch k {
	case RefStatic:
		return "static"
	case RefVirtual:
		return "virtual"
	case RefSpecial:
		return "special"
	}
	return "invalid"
}

// Field is a declared field. After linking, instance fields carry their
// object slot in Offset and static fields their class-local slot in Offset.
type Field struct {
	Name   string
	Type   Type
	Static bool

	Class  *Class // declaring class (set by Builder/link)
	Offset int    // instance slot or static slot, set by link
}

// Method is a declared method. Code is the encoded bytecode stream; Native
// names a builtin implementation instead (exactly one of the two is set,
// except abstract methods which have neither and may not be invoked).
type Method struct {
	Name      string
	Params    []Type // not including the receiver
	Ret       Type
	Static    bool
	Abstract  bool
	MaxLocals int // locals array size, including receiver and params
	Code      []byte
	Native    string
	Handlers  []Handler // exception table, innermost handler first

	Class    *Class // declaring class
	ID       int    // dense program-wide method ID, set by link
	VSlot    int    // vtable slot for instance methods, set by link; -1 for static
	MaxStack int    // operand stack bound, computed by the link-time verifier
}

// Handler is one exception-table entry: if an exception of (a subclass of)
// the catch class is thrown while the pc is in [StartPC, EndPC), control
// transfers to HandlerPC with the exception as the sole stack operand.
// ClassIdx == -1 catches everything.
type Handler struct {
	StartPC   uint32
	EndPC     uint32
	HandlerPC uint32
	ClassIdx  int32

	Class *Class // resolved by link (nil for catch-all)
}

// Covers reports whether the handler protects the given pc.
func (h Handler) Covers(pc uint32) bool { return pc >= h.StartPC && pc < h.EndPC }

// HandlerFor returns the innermost handler covering pc whose catch class
// matches the thrown class, or nil. Only valid after linking.
func (m *Method) HandlerFor(pc uint32, thrown *Class) *Handler {
	for i := range m.Handlers {
		h := &m.Handlers[i]
		if !h.Covers(pc) {
			continue
		}
		if h.Class == nil || (thrown != nil && thrown.IsSubclassOf(h.Class)) {
			return h
		}
	}
	return nil
}

// NArgs returns the number of argument slots the method pops from the
// caller's stack (receiver included for instance methods).
func (m *Method) NArgs() int {
	n := len(m.Params)
	if !m.Static {
		n++
	}
	return n
}

// QName returns Class.Name + "." + Name for diagnostics.
func (m *Method) QName() string {
	if m.Class == nil {
		return m.Name
	}
	return m.Class.Name + "." + m.Name
}

// SameSignature reports whether two methods agree on parameter and return
// types (the override-compatibility check).
func (m *Method) SameSignature(o *Method) bool {
	if m.Ret != o.Ret || len(m.Params) != len(o.Params) {
		return false
	}
	for i := range m.Params {
		if m.Params[i] != o.Params[i] {
			return false
		}
	}
	return true
}

// Class is a declared class. After linking, Super is resolved, VTable holds
// the receiver-polymorphic dispatch table, NumFields the total instance slot
// count including inherited fields, and ID a dense program-wide class ID.
type Class struct {
	Name      string
	SuperName string // empty for root classes
	Fields    []*Field
	Methods   []*Method

	Super     *Class
	ID        int
	NumFields int       // total instance slots including inherited
	NumStatic int       // static slots declared by this class
	VTable    []*Method // virtual dispatch table
	Depth     int       // inheritance depth; root = 0

	fieldByName  map[string]*Field
	methodByName map[string]*Method
}

// FieldNamed returns the field declared by or inherited into the class, or
// nil. Only valid after linking.
func (c *Class) FieldNamed(name string) *Field {
	for k := c; k != nil; k = k.Super {
		if f, ok := k.fieldByName[name]; ok {
			return f
		}
	}
	return nil
}

// MethodNamed returns the method visible on the class under the given name
// (walking up the hierarchy), or nil. Only valid after linking.
func (c *Class) MethodNamed(name string) *Method {
	for k := c; k != nil; k = k.Super {
		if m, ok := k.methodByName[name]; ok {
			return m
		}
	}
	return nil
}

// IsSubclassOf reports whether c is k or a transitive subclass of k.
func (c *Class) IsSubclassOf(k *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == k {
			return true
		}
	}
	return false
}

// MethodRef is a symbolic method reference; invoke instruction operands
// index the program's MethodRefs table.
type MethodRef struct {
	ClassName string
	Name      string
	Kind      RefKind

	Method *Method // resolved by link
	VSlot  int     // resolved vtable slot for RefVirtual
}

// FieldRef is a symbolic field reference; field instruction operands index
// the program's FieldRefs table.
type FieldRef struct {
	ClassName string
	Name      string
	Static    bool

	Field *Field // resolved by link
	Class *Class // resolved declaring class
}

// Program is a complete loadable unit.
type Program struct {
	Classes    []*Class
	MethodRefs []MethodRef
	FieldRefs  []FieldRef
	Strings    []string // SConst constant pool

	// EntryClass/EntryMethod name the static void main method.
	EntryClass  string
	EntryMethod string

	Methods     []*Method // dense table, populated by link
	Main        *Method   // resolved entry point
	linked      bool
	classByName map[string]*Class
}

// ClassNamed returns the class with the given name, or nil.
func (p *Program) ClassNamed(name string) *Class {
	if p.classByName == nil {
		return nil
	}
	return p.classByName[name]
}

// Linked reports whether Link has completed successfully.
func (p *Program) Linked() bool { return p.linked }

// Link resolves and validates the program; see the package comment. It is
// idempotent: linking a linked program is a no-op.
func (p *Program) Link() error {
	if p.linked {
		return nil
	}
	p.classByName = make(map[string]*Class, len(p.Classes))
	for _, c := range p.Classes {
		if c.Name == "" {
			return fmt.Errorf("classfile: link: class with empty name")
		}
		if _, dup := p.classByName[c.Name]; dup {
			return fmt.Errorf("classfile: link: duplicate class %q", c.Name)
		}
		p.classByName[c.Name] = c
	}

	// Resolve superclasses and detect cycles.
	for _, c := range p.Classes {
		if c.SuperName == "" {
			c.Super = nil
			continue
		}
		s := p.classByName[c.SuperName]
		if s == nil {
			return fmt.Errorf("classfile: link: class %q extends undefined class %q", c.Name, c.SuperName)
		}
		if s == c {
			return fmt.Errorf("classfile: link: class %q extends itself", c.Name)
		}
		c.Super = s
	}
	order, err := topoClasses(p.Classes)
	if err != nil {
		return err
	}

	// Lay out fields, build name maps and vtables in inheritance order.
	for id, c := range p.Classes {
		c.ID = id
	}
	for _, c := range order {
		c.fieldByName = make(map[string]*Field, len(c.Fields))
		c.methodByName = make(map[string]*Method, len(c.Methods))
		base := 0
		statics := 0
		if c.Super != nil {
			base = c.Super.NumFields
			c.Depth = c.Super.Depth + 1
		}
		for _, f := range c.Fields {
			if _, dup := c.fieldByName[f.Name]; dup {
				return fmt.Errorf("classfile: link: class %q declares field %q twice", c.Name, f.Name)
			}
			f.Class = c
			c.fieldByName[f.Name] = f
			if f.Static {
				f.Offset = statics
				statics++
			} else {
				f.Offset = base
				base++
			}
		}
		c.NumFields = base
		c.NumStatic = statics

		// VTable: copy the superclass table, then override or append.
		if c.Super != nil {
			c.VTable = append([]*Method(nil), c.Super.VTable...)
		} else {
			c.VTable = nil
		}
		for _, m := range c.Methods {
			if _, dup := c.methodByName[m.Name]; dup {
				return fmt.Errorf("classfile: link: class %q declares method %q twice", c.Name, m.Name)
			}
			m.Class = c
			c.methodByName[m.Name] = m
			if m.Static {
				m.VSlot = -1
				continue
			}
			slot := -1
			if c.Super != nil {
				if sup := c.Super.MethodNamed(m.Name); sup != nil && !sup.Static {
					if !m.SameSignature(sup) {
						return fmt.Errorf("classfile: link: %s overrides %s with a different signature", m.QName(), sup.QName())
					}
					slot = sup.VSlot
				}
			}
			if slot == -1 {
				slot = len(c.VTable)
				c.VTable = append(c.VTable, m)
			} else {
				c.VTable[slot] = m
			}
			m.VSlot = slot
		}
	}

	// Dense method table and per-method structural validation.
	p.Methods = p.Methods[:0]
	for _, c := range p.Classes {
		for _, m := range c.Methods {
			m.ID = len(p.Methods)
			p.Methods = append(p.Methods, m)
			if err := p.validateMethod(m); err != nil {
				return err
			}
		}
	}

	// Resolve references.
	for i := range p.MethodRefs {
		if err := p.resolveMethodRef(&p.MethodRefs[i]); err != nil {
			return fmt.Errorf("classfile: link: method ref %d: %w", i, err)
		}
	}
	for i := range p.FieldRefs {
		if err := p.resolveFieldRef(&p.FieldRefs[i]); err != nil {
			return fmt.Errorf("classfile: link: field ref %d: %w", i, err)
		}
	}

	// Stack-depth verification needs resolved method refs (call arity), so
	// it runs after reference resolution.
	for _, m := range p.Methods {
		if len(m.Code) == 0 {
			continue
		}
		ins, err := bytecode.Decode(m.Code)
		if err != nil {
			return err // unreachable: validateMethod decoded it already
		}
		depth, err := p.verifyStack(m, ins)
		if err != nil {
			return err
		}
		m.MaxStack = depth
	}

	// Entry point.
	if p.EntryClass != "" {
		c := p.classByName[p.EntryClass]
		if c == nil {
			return fmt.Errorf("classfile: link: entry class %q not found", p.EntryClass)
		}
		m := c.MethodNamed(p.EntryMethod)
		if m == nil {
			return fmt.Errorf("classfile: link: entry method %s.%s not found", p.EntryClass, p.EntryMethod)
		}
		if !m.Static || len(m.Params) != 0 {
			return fmt.Errorf("classfile: link: entry method %s must be static with no parameters", m.QName())
		}
		p.Main = m
	}
	p.linked = true
	return nil
}

func topoClasses(classes []*Class) ([]*Class, error) {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := make(map[*Class]int, len(classes))
	var order []*Class
	var visit func(c *Class) error
	visit = func(c *Class) error {
		switch color[c] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("classfile: link: inheritance cycle through class %q", c.Name)
		}
		color[c] = gray
		if c.Super != nil {
			if err := visit(c.Super); err != nil {
				return err
			}
		}
		color[c] = black
		order = append(order, c)
		return nil
	}
	for _, c := range classes {
		if err := visit(c); err != nil {
			return nil, err
		}
	}
	return order, nil
}

func (p *Program) validateMethod(m *Method) error {
	if m.Abstract {
		if len(m.Code) != 0 || m.Native != "" {
			return fmt.Errorf("classfile: link: abstract method %s has a body", m.QName())
		}
		return nil
	}
	if m.Native != "" {
		if len(m.Code) != 0 {
			return fmt.Errorf("classfile: link: native method %s also has bytecode", m.QName())
		}
		return nil
	}
	if len(m.Code) == 0 {
		return fmt.Errorf("classfile: link: method %s has no body", m.QName())
	}
	if m.MaxLocals < m.NArgs() {
		return fmt.Errorf("classfile: link: method %s declares %d locals but takes %d arguments", m.QName(), m.MaxLocals, m.NArgs())
	}
	ins, err := bytecode.Decode(m.Code)
	if err != nil {
		return fmt.Errorf("classfile: link: method %s: %w", m.QName(), err)
	}
	if len(ins) == 0 {
		return fmt.Errorf("classfile: link: method %s has empty code", m.QName())
	}
	last := ins[len(ins)-1]
	switch bytecode.InfoOf(last.Op).Flow {
	case bytecode.FlowGoto, bytecode.FlowReturn, bytecode.FlowSwitch, bytecode.FlowHalt, bytecode.FlowThrow:
	default:
		return fmt.Errorf("classfile: link: method %s can fall off the end of its code (last op %s)", m.QName(), last.Op)
	}
	for _, in := range ins {
		if err := p.validateInstr(m, in); err != nil {
			return err
		}
	}
	return p.validateHandlers(m, ins)
}

// validateHandlers checks and resolves the method's exception table.
func (p *Program) validateHandlers(m *Method, ins []bytecode.Instr) error {
	starts := make(map[uint32]bool, len(ins))
	for _, in := range ins {
		starts[in.PC] = true
	}
	codeEnd := uint32(len(m.Code))
	for i := range m.Handlers {
		h := &m.Handlers[i]
		if h.StartPC >= h.EndPC || h.EndPC > codeEnd {
			return fmt.Errorf("classfile: link: method %s: handler %d has bad range [%d, %d)", m.QName(), i, h.StartPC, h.EndPC)
		}
		if !starts[h.StartPC] {
			return fmt.Errorf("classfile: link: method %s: handler %d starts mid-instruction at %d", m.QName(), i, h.StartPC)
		}
		if !starts[h.HandlerPC] {
			return fmt.Errorf("classfile: link: method %s: handler %d targets non-instruction pc %d", m.QName(), i, h.HandlerPC)
		}
		if h.ClassIdx == -1 {
			h.Class = nil
		} else {
			if h.ClassIdx < 0 || int(h.ClassIdx) >= len(p.Classes) {
				return fmt.Errorf("classfile: link: method %s: handler %d catch class %d out of range", m.QName(), i, h.ClassIdx)
			}
			h.Class = p.Classes[h.ClassIdx]
		}
	}
	return nil
}

func (p *Program) validateInstr(m *Method, in bytecode.Instr) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("classfile: link: method %s pc %d: %s", m.QName(), in.PC, fmt.Sprintf(format, args...))
	}
	switch in.Op {
	case bytecode.ILoad, bytecode.IStore, bytecode.FLoad, bytecode.FStore,
		bytecode.ALoad, bytecode.AStore, bytecode.IInc:
		if int(in.A) >= m.MaxLocals {
			return bad("local slot %d out of range (max %d)", in.A, m.MaxLocals)
		}
	case bytecode.SConst:
		if int(in.A) >= len(p.Strings) {
			return bad("string constant %d out of range (%d strings)", in.A, len(p.Strings))
		}
	case bytecode.InvokeStatic, bytecode.InvokeVirtual, bytecode.InvokeSpecial:
		if int(in.A) >= len(p.MethodRefs) {
			return bad("method ref %d out of range (%d refs)", in.A, len(p.MethodRefs))
		}
		ref := p.MethodRefs[in.A]
		want := map[bytecode.Op]RefKind{
			bytecode.InvokeStatic:  RefStatic,
			bytecode.InvokeVirtual: RefVirtual,
			bytecode.InvokeSpecial: RefSpecial,
		}[in.Op]
		if ref.Kind != want {
			return bad("%s uses %s method ref %q", in.Op, ref.Kind, ref.Name)
		}
	case bytecode.GetField, bytecode.PutField, bytecode.GetStatic, bytecode.PutStatic:
		if int(in.A) >= len(p.FieldRefs) {
			return bad("field ref %d out of range (%d refs)", in.A, len(p.FieldRefs))
		}
		ref := p.FieldRefs[in.A]
		wantStatic := in.Op == bytecode.GetStatic || in.Op == bytecode.PutStatic
		if ref.Static != wantStatic {
			return bad("%s uses mismatched field ref %q (static=%v)", in.Op, ref.Name, ref.Static)
		}
	case bytecode.New, bytecode.InstanceOf, bytecode.CheckCast:
		if int(in.A) >= len(p.Classes) {
			return bad("class index %d out of range (%d classes)", in.A, len(p.Classes))
		}
	}
	return nil
}

func (p *Program) resolveMethodRef(ref *MethodRef) error {
	c := p.classByName[ref.ClassName]
	if c == nil {
		return fmt.Errorf("undefined class %q", ref.ClassName)
	}
	m := c.MethodNamed(ref.Name)
	if m == nil {
		return fmt.Errorf("class %q has no method %q", ref.ClassName, ref.Name)
	}
	switch ref.Kind {
	case RefStatic:
		if !m.Static {
			return fmt.Errorf("static ref to instance method %s", m.QName())
		}
	case RefVirtual, RefSpecial:
		if m.Static {
			return fmt.Errorf("%s ref to static method %s", ref.Kind, m.QName())
		}
		if ref.Kind == RefSpecial && m.Abstract {
			return fmt.Errorf("special ref to abstract method %s", m.QName())
		}
	}
	ref.Method = m
	ref.VSlot = m.VSlot
	return nil
}

func (p *Program) resolveFieldRef(ref *FieldRef) error {
	c := p.classByName[ref.ClassName]
	if c == nil {
		return fmt.Errorf("undefined class %q", ref.ClassName)
	}
	f := c.FieldNamed(ref.Name)
	if f == nil {
		return fmt.Errorf("class %q has no field %q", ref.ClassName, ref.Name)
	}
	if f.Static != ref.Static {
		return fmt.Errorf("field ref %s.%s static mismatch", ref.ClassName, ref.Name)
	}
	ref.Field = f
	ref.Class = f.Class
	return nil
}
