package classfile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary module format: a magic header, a version, then the program's string
// pool, classes (with fields and methods), reference tables, and entry point.
// All integers are little-endian; strings are length-prefixed UTF-8. The
// format stores the pre-link symbolic program; Read returns an unlinked
// Program that callers must Link.

const (
	moduleMagic   = 0x4A544D31 // "JTM1"
	moduleVersion = 1
	maxStringLen  = 1 << 24
	maxCount      = 1 << 20
)

type writer struct {
	w   *bufio.Writer
	err error
}

func (w *writer) u8(v uint8) {
	if w.err == nil {
		w.err = w.w.WriteByte(v)
	}
}

func (w *writer) u32(v uint32) {
	if w.err == nil {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		_, w.err = w.w.Write(b[:])
	}
}

func (w *writer) str(s string) {
	if len(s) > maxStringLen {
		w.err = fmt.Errorf("classfile: write: string too long (%d bytes)", len(s))
		return
	}
	w.u32(uint32(len(s)))
	if w.err == nil {
		_, w.err = w.w.WriteString(s)
	}
}

func (w *writer) bytes(b []byte) {
	w.u32(uint32(len(b)))
	if w.err == nil {
		_, w.err = w.w.Write(b)
	}
}

// Write serializes the program in module format.
func Write(out io.Writer, p *Program) error {
	w := &writer{w: bufio.NewWriter(out)}
	w.u32(moduleMagic)
	w.u32(moduleVersion)

	w.u32(uint32(len(p.Strings)))
	for _, s := range p.Strings {
		w.str(s)
	}

	w.u32(uint32(len(p.Classes)))
	for _, c := range p.Classes {
		w.str(c.Name)
		w.str(c.SuperName)
		w.u32(uint32(len(c.Fields)))
		for _, f := range c.Fields {
			w.str(f.Name)
			w.u8(uint8(f.Type))
			if f.Static {
				w.u8(1)
			} else {
				w.u8(0)
			}
		}
		w.u32(uint32(len(c.Methods)))
		for _, m := range c.Methods {
			w.str(m.Name)
			w.u8(uint8(m.Ret))
			var flags uint8
			if m.Static {
				flags |= 1
			}
			if m.Abstract {
				flags |= 2
			}
			w.u8(flags)
			w.u32(uint32(len(m.Params)))
			for _, t := range m.Params {
				w.u8(uint8(t))
			}
			w.u32(uint32(m.MaxLocals))
			w.str(m.Native)
			w.bytes(m.Code)
			w.u32(uint32(len(m.Handlers)))
			for _, h := range m.Handlers {
				w.u32(h.StartPC)
				w.u32(h.EndPC)
				w.u32(h.HandlerPC)
				w.u32(uint32(h.ClassIdx))
			}
		}
	}

	w.u32(uint32(len(p.MethodRefs)))
	for _, r := range p.MethodRefs {
		w.str(r.ClassName)
		w.str(r.Name)
		w.u8(uint8(r.Kind))
	}
	w.u32(uint32(len(p.FieldRefs)))
	for _, r := range p.FieldRefs {
		w.str(r.ClassName)
		w.str(r.Name)
		if r.Static {
			w.u8(1)
		} else {
			w.u8(0)
		}
	}
	w.str(p.EntryClass)
	w.str(p.EntryMethod)
	if w.err != nil {
		return w.err
	}
	return w.w.Flush()
}

type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) u8() uint8 {
	if r.err != nil {
		return 0
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.err = err
		return 0
	}
	return b
}

func (r *reader) u32() uint32 {
	if r.err != nil {
		return 0
	}
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		r.err = err
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) count(what string) int {
	n := r.u32()
	if r.err == nil && n > maxCount {
		r.err = fmt.Errorf("classfile: read: implausible %s count %d", what, n)
	}
	return int(n)
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("classfile: read: implausible string length %d", n)
		return ""
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return ""
	}
	return string(b)
}

func (r *reader) bytes() []byte {
	n := r.u32()
	if r.err != nil {
		return nil
	}
	if n > maxStringLen {
		r.err = fmt.Errorf("classfile: read: implausible code length %d", n)
		return nil
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
		return nil
	}
	return b
}

func (r *reader) typ() Type {
	t := Type(r.u8())
	if r.err == nil && t > TRef {
		r.err = fmt.Errorf("classfile: read: invalid type %d", t)
	}
	return t
}

// Read deserializes a module. The returned program is unlinked.
func Read(in io.Reader) (*Program, error) {
	r := &reader{r: bufio.NewReader(in)}
	if m := r.u32(); r.err == nil && m != moduleMagic {
		return nil, fmt.Errorf("classfile: read: bad magic %#x", m)
	}
	if v := r.u32(); r.err == nil && v != moduleVersion {
		return nil, fmt.Errorf("classfile: read: unsupported version %d", v)
	}
	p := &Program{}

	for i, n := 0, r.count("string"); i < n && r.err == nil; i++ {
		p.Strings = append(p.Strings, r.str())
	}
	for i, n := 0, r.count("class"); i < n && r.err == nil; i++ {
		c := &Class{Name: r.str(), SuperName: r.str()}
		for j, nf := 0, r.count("field"); j < nf && r.err == nil; j++ {
			f := &Field{Name: r.str(), Type: r.typ(), Static: r.u8() != 0}
			c.Fields = append(c.Fields, f)
		}
		for j, nm := 0, r.count("method"); j < nm && r.err == nil; j++ {
			m := &Method{Name: r.str(), Ret: r.typ()}
			flags := r.u8()
			m.Static = flags&1 != 0
			m.Abstract = flags&2 != 0
			for k, np := 0, r.count("param"); k < np && r.err == nil; k++ {
				m.Params = append(m.Params, r.typ())
			}
			m.MaxLocals = int(r.u32())
			m.Native = r.str()
			m.Code = r.bytes()
			for k, nh := 0, r.count("handler"); k < nh && r.err == nil; k++ {
				m.Handlers = append(m.Handlers, Handler{
					StartPC:   r.u32(),
					EndPC:     r.u32(),
					HandlerPC: r.u32(),
					ClassIdx:  int32(r.u32()),
				})
			}
			c.Methods = append(c.Methods, m)
		}
		p.Classes = append(p.Classes, c)
	}
	for i, n := 0, r.count("method ref"); i < n && r.err == nil; i++ {
		ref := MethodRef{ClassName: r.str(), Name: r.str(), Kind: RefKind(r.u8())}
		if r.err == nil && ref.Kind > RefSpecial {
			return nil, fmt.Errorf("classfile: read: invalid method ref kind %d", ref.Kind)
		}
		p.MethodRefs = append(p.MethodRefs, ref)
	}
	for i, n := 0, r.count("field ref"); i < n && r.err == nil; i++ {
		p.FieldRefs = append(p.FieldRefs, FieldRef{ClassName: r.str(), Name: r.str(), Static: r.u8() != 0})
	}
	p.EntryClass = r.str()
	p.EntryMethod = r.str()
	if r.err != nil {
		return nil, r.err
	}
	return p, nil
}
