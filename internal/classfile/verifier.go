package classfile

import (
	"fmt"

	"repro/internal/bytecode"
)

// Stack-depth verifier: an abstract interpretation over the method's
// bytecode that proves the operand stack never underflows and that every
// program point is reached with one consistent stack depth (the structural
// half of the JVM's verifier; slots here are untyped). Linking runs it on
// every bytecode method, so the interpreter's hot paths can assume balanced
// stacks, and it computes Method.MaxStack as a byproduct.

// Reverify re-validates one method after a tool (such as the bytecode
// optimizer) rewrote its code, refreshing MaxStack. The program must be
// linked.
func (p *Program) Reverify(m *Method) error {
	if !p.linked {
		return fmt.Errorf("classfile: reverify: program is not linked")
	}
	if err := p.validateMethod(m); err != nil {
		return err
	}
	ins, err := bytecode.Decode(m.Code)
	if err != nil {
		return err
	}
	depth, err := p.verifyStack(m, ins)
	if err != nil {
		return err
	}
	m.MaxStack = depth
	return nil
}

// verifyStack checks m's code and returns the maximum operand stack depth.
func (p *Program) verifyStack(m *Method, ins []bytecode.Instr) (int, error) {
	byPC := make(map[uint32]int, len(ins))
	for i, in := range ins {
		byPC[in.PC] = i
	}

	const unseen = -1
	depthAt := make([]int, len(ins))
	for i := range depthAt {
		depthAt[i] = unseen
	}

	bad := func(pc uint32, format string, args ...any) error {
		return fmt.Errorf("classfile: verify %s pc %d: %s", m.QName(), pc, fmt.Sprintf(format, args...))
	}

	maxDepth := 0
	var work []int
	push := func(idx, depth int, fromPC uint32) error {
		if idx < 0 || idx >= len(ins) {
			return bad(fromPC, "control flows to a non-instruction")
		}
		if prev := depthAt[idx]; prev != unseen {
			if prev != depth {
				return bad(ins[idx].PC, "inconsistent stack depth at join: %d vs %d", prev, depth)
			}
			return nil
		}
		depthAt[idx] = depth
		work = append(work, idx)
		return nil
	}
	if err := push(0, 0, 0); err != nil {
		return 0, err
	}
	// Exception handlers are entered with exactly the thrown reference on
	// the stack.
	for _, h := range m.Handlers {
		if err := push(byPCIdx(byPC, h.HandlerPC), 1, h.HandlerPC); err != nil {
			return 0, err
		}
	}

	for len(work) > 0 {
		idx := work[len(work)-1]
		work = work[:len(work)-1]
		in := ins[idx]
		depth := depthAt[idx]

		pops, pushes, err := p.stackEffect(m, in)
		if err != nil {
			return 0, err
		}
		if depth < pops {
			return 0, bad(in.PC, "%s pops %d with only %d on the stack", in.Op, pops, depth)
		}
		depth = depth - pops + pushes
		if depth > maxDepth {
			maxDepth = depth
		}

		info := bytecode.InfoOf(in.Op)
		switch info.Flow {
		case bytecode.FlowNext, bytecode.FlowCall:
			if err := push(idx+1, depth, in.PC); err != nil {
				return 0, err
			}
		case bytecode.FlowGoto:
			if err := push(byPCIdx(byPC, uint32(in.A)), depth, in.PC); err != nil {
				return 0, err
			}
		case bytecode.FlowCond:
			if err := push(byPCIdx(byPC, uint32(in.A)), depth, in.PC); err != nil {
				return 0, err
			}
			if err := push(idx+1, depth, in.PC); err != nil {
				return 0, err
			}
		case bytecode.FlowSwitch:
			if err := push(byPCIdx(byPC, in.Dflt), depth, in.PC); err != nil {
				return 0, err
			}
			for _, tgt := range in.Targets {
				if err := push(byPCIdx(byPC, tgt), depth, in.PC); err != nil {
					return 0, err
				}
			}
		case bytecode.FlowReturn:
			if depth != 0 {
				return 0, bad(in.PC, "%s leaves %d values on the stack", in.Op, depth)
			}
		case bytecode.FlowHalt, bytecode.FlowThrow:
			// Terminal for this method's control flow; leftover stack is
			// discarded (unwinding clears the operand stack).
		}
	}
	return maxDepth, nil
}

func byPCIdx(byPC map[uint32]int, pc uint32) int {
	if idx, ok := byPC[pc]; ok {
		return idx
	}
	return -1
}

// stackEffect returns the pop/push counts of an instruction, resolving the
// variable effects of calls and returns from the reference tables.
func (p *Program) stackEffect(m *Method, in bytecode.Instr) (pops, pushes int, err error) {
	info := bytecode.InfoOf(in.Op)
	switch in.Op {
	case bytecode.InvokeStatic, bytecode.InvokeVirtual, bytecode.InvokeSpecial:
		ref := p.MethodRefs[in.A]
		callee := ref.Method
		if callee == nil {
			return 0, 0, fmt.Errorf("classfile: verify %s pc %d: unresolved method ref", m.QName(), in.PC)
		}
		pops = callee.NArgs()
		if callee.Ret != TVoid {
			pushes = 1
		}
		return pops, pushes, nil
	case bytecode.IReturn, bytecode.FReturn, bytecode.AReturn, bytecode.Throw:
		return 1, 0, nil
	case bytecode.ReturnVoid, bytecode.Halt:
		return 0, 0, nil
	}
	if info.Pop < 0 {
		return 0, 0, fmt.Errorf("classfile: verify %s pc %d: %s has unmodeled stack effect", m.QName(), in.PC, in.Op)
	}
	return int(info.Pop), int(info.Push), nil
}
