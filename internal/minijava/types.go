package minijava

// Kind enumerates semantic type kinds.
type Kind uint8

const (
	KVoid Kind = iota
	KInt
	KFloat
	KBool
	KByte // only as an array element type
	KString
	KNull // the type of the null literal
	KClass
	KArray
)

// Type is a semantic type.
type Type struct {
	Kind  Kind
	Elem  *Type     // KArray
	Class *classSym // KClass
}

var (
	tVoid   = &Type{Kind: KVoid}
	tInt    = &Type{Kind: KInt}
	tFloat  = &Type{Kind: KFloat}
	tBool   = &Type{Kind: KBool}
	tByte   = &Type{Kind: KByte}
	tString = &Type{Kind: KString}
	tNull   = &Type{Kind: KNull}
)

func arrayOf(elem *Type) *Type { return &Type{Kind: KArray, Elem: elem} }

// IsRef reports whether values of the type are references.
func (t *Type) IsRef() bool {
	switch t.Kind {
	case KString, KNull, KClass, KArray:
		return true
	}
	return false
}

// IsNumeric reports int or float.
func (t *Type) IsNumeric() bool { return t.Kind == KInt || t.Kind == KFloat }

func (t *Type) String() string {
	switch t.Kind {
	case KVoid:
		return "void"
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KBool:
		return "boolean"
	case KByte:
		return "byte"
	case KString:
		return "String"
	case KNull:
		return "null"
	case KClass:
		return t.Class.name
	case KArray:
		return t.Elem.String() + "[]"
	}
	return "invalid"
}

// same reports structural type equality.
func (t *Type) same(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case KClass:
		return t.Class == o.Class
	case KArray:
		return t.Elem.same(o.Elem)
	}
	return true
}

// assignableTo reports whether a value of type t can be stored into dst,
// possibly with an implicit int→float widening.
func (t *Type) assignableTo(dst *Type) bool {
	if t.same(dst) {
		return true
	}
	if t.Kind == KInt && dst.Kind == KFloat {
		return true // widened by the code generator
	}
	if t.Kind == KNull && dst.IsRef() {
		return true
	}
	if t.Kind == KClass && dst.Kind == KClass {
		for c := t.Class; c != nil; c = c.super {
			if c == dst.Class {
				return true
			}
		}
	}
	return false
}

// classSym is a resolved class.
type classSym struct {
	name    string
	super   *classSym
	decl    *ClassDecl
	fields  map[string]*fieldSym
	methods map[string]*methodSym
	typ     *Type
}

func (c *classSym) fieldNamed(name string) *fieldSym {
	for k := c; k != nil; k = k.super {
		if f, ok := k.fields[name]; ok {
			return f
		}
	}
	return nil
}

func (c *classSym) methodNamed(name string) *methodSym {
	for k := c; k != nil; k = k.super {
		if m, ok := k.methods[name]; ok {
			return m
		}
	}
	return nil
}

func (c *classSym) isSubclassOf(o *classSym) bool {
	for k := c; k != nil; k = k.super {
		if k == o {
			return true
		}
	}
	return false
}

// fieldSym is a resolved field.
type fieldSym struct {
	name   string
	typ    *Type
	static bool
	class  *classSym
}

// methodSym is a resolved method.
type methodSym struct {
	name   string
	params []*Type
	ret    *Type
	static bool
	class  *classSym
	decl   *MethodDecl
}

func (m *methodSym) qname() string { return m.class.name + "." + m.name }

func (m *methodSym) sameSignature(o *methodSym) bool {
	if !m.ret.same(o.ret) || len(m.params) != len(o.params) {
		return false
	}
	for i := range m.params {
		if !m.params[i].same(o.params[i]) {
			return false
		}
	}
	return true
}

// localVar is a local variable or parameter with its frame slot.
type localVar struct {
	name string
	typ  *Type
	slot int
}

// builtinFn describes one Sys.* builtin. Intrinsic builtins are expanded
// inline by the code generator; the rest become invokestatic calls on the
// synthesized Sys class bound to VM natives.
type builtinFn struct {
	name      string
	params    []*Type
	ret       *Type
	native    string // VM native binding; empty for intrinsics
	intrinsic string // non-empty for inline expansion ("i2f", "f2i")
}

// sysBuiltins is the standard library surface available as Sys.<name>(...).
var sysBuiltins = map[string]*builtinFn{
	"printInt":     {name: "printInt", params: []*Type{tInt}, ret: tVoid, native: "print_int"},
	"printlnInt":   {name: "printlnInt", params: []*Type{tInt}, ret: tVoid, native: "println_int"},
	"printFloat":   {name: "printFloat", params: []*Type{tFloat}, ret: tVoid, native: "print_float"},
	"printlnFloat": {name: "printlnFloat", params: []*Type{tFloat}, ret: tVoid, native: "println_float"},
	"printStr":     {name: "printStr", params: []*Type{tString}, ret: tVoid, native: "print_str"},
	"printlnStr":   {name: "printlnStr", params: []*Type{tString}, ret: tVoid, native: "println_str"},
	"println":      {name: "println", params: nil, ret: tVoid, native: "println"},
	"sqrt":         {name: "sqrt", params: []*Type{tFloat}, ret: tFloat, native: "math_sqrt"},
	"sin":          {name: "sin", params: []*Type{tFloat}, ret: tFloat, native: "math_sin"},
	"cos":          {name: "cos", params: []*Type{tFloat}, ret: tFloat, native: "math_cos"},
	"log":          {name: "log", params: []*Type{tFloat}, ret: tFloat, native: "math_log"},
	"exp":          {name: "exp", params: []*Type{tFloat}, ret: tFloat, native: "math_exp"},
	"floor":        {name: "floor", params: []*Type{tFloat}, ret: tFloat, native: "math_floor"},
	"pow":          {name: "pow", params: []*Type{tFloat, tFloat}, ret: tFloat, native: "math_pow"},
	"strLen":       {name: "strLen", params: []*Type{tString}, ret: tInt, native: "str_len"},
	"strAt":        {name: "strAt", params: []*Type{tString, tInt}, ret: tInt, native: "str_at"},
	"strBytes":     {name: "strBytes", params: []*Type{tString}, ret: arrayOf(tByte), native: "str_bytes"},
	"bytesStr":     {name: "bytesStr", params: []*Type{arrayOf(tByte)}, ret: tString, native: "bytes_str"},
	"toFloat":      {name: "toFloat", params: []*Type{tInt}, ret: tFloat, intrinsic: "i2f"},
	"toInt":        {name: "toInt", params: []*Type{tFloat}, ret: tInt, intrinsic: "f2i"},
}

// sysClassName is the synthesized class that hosts non-intrinsic builtins.
const sysClassName = "Sys"

func describeParams(params []*Type) string {
	s := "("
	for i, p := range params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}
