package minijava

// TypeExpr is a syntactic type: a base name plus array dimensions.
// Name is one of the builtin type names ("int", "float", "boolean", "byte",
// "String", "void") or a class name.
type TypeExpr struct {
	Pos  Pos
	Name string
	Dims int
}

// File is a parsed compilation unit.
type File struct {
	Classes []*ClassDecl
}

// ClassDecl is one class declaration.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Super   string // empty if none
	Fields  []*FieldDecl
	Methods []*MethodDecl
}

// FieldDecl is a field declaration.
type FieldDecl struct {
	Pos    Pos
	Static bool
	Type   TypeExpr
	Name   string
}

// Param is a method parameter.
type Param struct {
	Pos  Pos
	Type TypeExpr
	Name string
}

// MethodDecl is a method declaration with a body.
type MethodDecl struct {
	Pos    Pos
	Static bool
	Ret    TypeExpr
	Name   string
	Params []Param
	Body   *Block

	maxSlots int // frame size, set by the checker
}

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is a brace-delimited statement list and scope.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl declares (and optionally initializes) a local variable.
type VarDecl struct {
	Pos  Pos
	Type TypeExpr
	Name string
	Init Expr // may be nil

	local *localVar // set by the checker
}

// If is a conditional statement.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// For is a C-style for loop. Init and Post may be nil; Cond may be nil
// (infinite loop).
type For struct {
	Pos  Pos
	Init Stmt
	Cond Expr
	Post Stmt
	Body Stmt
}

// Return returns from the enclosing method. Val is nil for void returns.
type Return struct {
	Pos Pos
	Val Expr
}

// Break exits the innermost loop.
type Break struct{ Pos Pos }

// Continue jumps to the innermost loop's next iteration.
type Continue struct{ Pos Pos }

// SwitchCase is one case group: one or more integer labels sharing a body.
// Java fallthrough semantics apply: a body without break continues into the
// next group.
type SwitchCase struct {
	Pos  Pos
	Vals []int64
	Body []Stmt
}

// Switch is a Java-style switch over an int expression with fallthrough.
// The default group, when present, must be the final group (a MiniJava
// simplification of Java's anywhere-default).
type Switch struct {
	Pos     Pos
	Tag     Expr
	Cases   []SwitchCase
	Default []Stmt // nil when absent
}

// Throw raises an exception object.
type Throw struct {
	Pos Pos
	X   Expr
}

// Try guards Body with a single catch clause binding the caught exception
// (of class CatchClass or a subclass) to CatchVar inside Catch.
type Try struct {
	Pos        Pos
	Body       *Block
	CatchClass string
	CatchVar   string
	Catch      *Block

	catchSym   *classSym // resolved by the checker
	catchLocal *localVar
}

// ExprStmt evaluates an expression for its side effects (a call).
type ExprStmt struct {
	Pos Pos
	E   Expr
}

// Assign stores RHS into an lvalue (identifier, field access, or index).
type Assign struct {
	Pos Pos
	LHS Expr
	RHS Expr
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*Break) stmtNode()    {}
func (*Continue) stmtNode() {}
func (*Throw) stmtNode()    {}
func (*Try) stmtNode()      {}
func (*Switch) stmtNode()   {}
func (*ExprStmt) stmtNode() {}
func (*Assign) stmtNode()   {}

// Expr is an expression node. The checker annotates nodes with their
// semantic type and resolution results.
type Expr interface {
	exprNode()
	Position() Pos
}

// Ident names a local, parameter, field (implicit this), or class (as a
// call/field qualifier).
type Ident struct {
	Pos  Pos
	Name string

	// Resolution (set by the checker).
	Local *localVar // non-nil if a local/parameter
	Field *fieldSym // non-nil if an (implicit this or static) field
	Class *classSym // non-nil if the identifier names a class
	typ   *Type
}

// IntLit is an integer literal.
type IntLit struct {
	Pos Pos
	Val int64
	typ *Type
}

// FloatLit is a float literal.
type FloatLit struct {
	Pos Pos
	Val float64
	typ *Type
}

// StrLit is a string literal.
type StrLit struct {
	Pos Pos
	Val string
	typ *Type
}

// BoolLit is true/false.
type BoolLit struct {
	Pos Pos
	Val bool
	typ *Type
}

// NullLit is the null reference.
type NullLit struct {
	Pos Pos
	typ *Type
}

// This is the receiver reference.
type This struct {
	Pos Pos
	typ *Type
}

// Unary is -x or !x.
type Unary struct {
	Pos Pos
	Op  TokKind
	X   Expr
	typ *Type
}

// Binary is a binary operation.
type Binary struct {
	Pos Pos
	Op  TokKind
	L   Expr
	R   Expr
	typ *Type
}

// InstanceOf tests the dynamic class of a reference.
type InstanceOf struct {
	Pos   Pos
	X     Expr
	Class string

	classSym *classSym
	typ      *Type
}

// Call invokes a method. Recv is nil for a bare call (current class); a
// Recv that names a class makes it a static call.
type Call struct {
	Pos  Pos
	Recv Expr // may be nil
	Name string
	Args []Expr

	// Resolution.
	method  *methodSym
	static  bool
	builtin *builtinFn // non-nil for Sys.* builtins and len-like intrinsics
	typ     *Type
}

// FieldAccess reads obj.name, ClassName.name (static), or arr.length.
type FieldAccess struct {
	Pos  Pos
	X    Expr
	Name string

	field    *fieldSym
	isLength bool // arr.length / str.length
	typ      *Type
}

// Index reads arr[i].
type Index struct {
	Pos Pos
	X   Expr
	I   Expr
	typ *Type
}

// New allocates an object (Len == nil) or an array (Len != nil). ExtraDims
// counts trailing "[]" pairs on array allocations: new float[n][] has
// ExtraDims 1 and allocates an array of n float-array references.
type New struct {
	Pos       Pos
	TypeName  string
	Len       Expr
	ExtraDims int
	Args      []Expr // constructor arguments (object form)

	classSym *classSym
	ctor     *methodSym
	typ      *Type
}

func (*Ident) exprNode()       {}
func (*IntLit) exprNode()      {}
func (*FloatLit) exprNode()    {}
func (*StrLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*NullLit) exprNode()     {}
func (*This) exprNode()        {}
func (*Unary) exprNode()       {}
func (*Binary) exprNode()      {}
func (*InstanceOf) exprNode()  {}
func (*Call) exprNode()        {}
func (*FieldAccess) exprNode() {}
func (*Index) exprNode()       {}
func (*New) exprNode()         {}

func (e *Ident) Position() Pos       { return e.Pos }
func (e *IntLit) Position() Pos      { return e.Pos }
func (e *FloatLit) Position() Pos    { return e.Pos }
func (e *StrLit) Position() Pos      { return e.Pos }
func (e *BoolLit) Position() Pos     { return e.Pos }
func (e *NullLit) Position() Pos     { return e.Pos }
func (e *This) Position() Pos        { return e.Pos }
func (e *Unary) Position() Pos       { return e.Pos }
func (e *Binary) Position() Pos      { return e.Pos }
func (e *InstanceOf) Position() Pos  { return e.Pos }
func (e *Call) Position() Pos        { return e.Pos }
func (e *FieldAccess) Position() Pos { return e.Pos }
func (e *Index) Position() Pos       { return e.Pos }
func (e *New) Position() Pos         { return e.Pos }

// TypeOf returns the checked type of an expression (nil before checking).
func TypeOf(e Expr) *Type {
	switch x := e.(type) {
	case *Ident:
		return x.typ
	case *IntLit:
		return x.typ
	case *FloatLit:
		return x.typ
	case *StrLit:
		return x.typ
	case *BoolLit:
		return x.typ
	case *NullLit:
		return x.typ
	case *This:
		return x.typ
	case *Unary:
		return x.typ
	case *Binary:
		return x.typ
	case *InstanceOf:
		return x.typ
	case *Call:
		return x.typ
	case *FieldAccess:
		return x.typ
	case *Index:
		return x.typ
	case *New:
		return x.typ
	}
	return nil
}
