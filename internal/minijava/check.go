package minijava

// Semantic analysis: builds the class symbol table, resolves identifiers,
// checks types, and annotates the AST for code generation. The checker
// fails fast on the first error, which keeps workload authoring pleasant
// (the error points at the precise token) without diagnostic machinery.

type checker struct {
	classes map[string]*classSym

	curClass    *classSym
	curMethod   *methodSym
	scopes      []map[string]*localVar
	nextSlot    int
	maxSlots    int
	loopDepth   int
	switchDepth int
}

// analyze runs the full semantic pass over a parsed file.
func analyze(f *File) (map[string]*classSym, error) {
	c := &checker{classes: make(map[string]*classSym)}
	if err := c.collectClasses(f); err != nil {
		return nil, err
	}
	if err := c.collectMembers(f); err != nil {
		return nil, err
	}
	for _, cd := range f.Classes {
		for _, md := range cd.Methods {
			if err := c.checkMethod(c.classes[cd.Name], md); err != nil {
				return nil, err
			}
		}
	}
	return c.classes, nil
}

func (c *checker) collectClasses(f *File) error {
	for _, cd := range f.Classes {
		if cd.Name == sysClassName {
			return errf(cd.Pos, "class name %q is reserved for builtins", sysClassName)
		}
		if _, dup := c.classes[cd.Name]; dup {
			return errf(cd.Pos, "duplicate class %q", cd.Name)
		}
		cs := &classSym{
			name:    cd.Name,
			decl:    cd,
			fields:  make(map[string]*fieldSym),
			methods: make(map[string]*methodSym),
		}
		cs.typ = &Type{Kind: KClass, Class: cs}
		c.classes[cd.Name] = cs
	}
	for _, cd := range f.Classes {
		if cd.Super == "" {
			continue
		}
		sup, ok := c.classes[cd.Super]
		if !ok {
			return errf(cd.Pos, "class %q extends undefined class %q", cd.Name, cd.Super)
		}
		c.classes[cd.Name].super = sup
	}
	// Cycle check.
	for _, cs := range c.classes {
		slow, fast := cs, cs
		for fast != nil && fast.super != nil {
			slow, fast = slow.super, fast.super.super
			if slow == fast {
				return errf(cs.decl.Pos, "inheritance cycle through class %q", cs.name)
			}
		}
	}
	return nil
}

func (c *checker) collectMembers(f *File) error {
	for _, cd := range f.Classes {
		cs := c.classes[cd.Name]
		for _, fd := range cd.Fields {
			t, err := c.resolveType(fd.Type)
			if err != nil {
				return err
			}
			if t.Kind == KVoid {
				return errf(fd.Pos, "field %s cannot be void", fd.Name)
			}
			if t.Kind == KByte {
				return errf(fd.Pos, "scalar byte fields are not supported; use byte[] or int")
			}
			if _, dup := cs.fields[fd.Name]; dup {
				return errf(fd.Pos, "duplicate field %q in class %q", fd.Name, cd.Name)
			}
			cs.fields[fd.Name] = &fieldSym{name: fd.Name, typ: t, static: fd.Static, class: cs}
		}
		for _, md := range cd.Methods {
			ret, err := c.resolveType(md.Ret)
			if err != nil {
				return err
			}
			if ret.Kind == KByte {
				return errf(md.Pos, "methods cannot return scalar byte; use int")
			}
			ms := &methodSym{name: md.Name, ret: ret, static: md.Static, class: cs, decl: md}
			for _, p := range md.Params {
				pt, err := c.resolveType(p.Type)
				if err != nil {
					return err
				}
				if pt.Kind == KVoid || pt.Kind == KByte {
					return errf(p.Pos, "parameter %q has invalid type %s", p.Name, pt)
				}
				ms.params = append(ms.params, pt)
			}
			if _, dup := cs.methods[md.Name]; dup {
				return errf(md.Pos, "duplicate method %q in class %q (no overloading)", md.Name, cd.Name)
			}
			cs.methods[md.Name] = ms
		}
	}
	// Override compatibility.
	for _, cd := range f.Classes {
		cs := c.classes[cd.Name]
		if cs.super == nil {
			continue
		}
		for name, ms := range cs.methods {
			sup := cs.super.methodNamed(name)
			if sup == nil {
				continue
			}
			if sup.static != ms.static {
				return errf(ms.decl.Pos, "method %s changes staticness of inherited %s", ms.qname(), sup.qname())
			}
			if !ms.static && !ms.sameSignature(sup) {
				return errf(ms.decl.Pos, "method %s overrides %s with a different signature", ms.qname(), sup.qname())
			}
		}
	}
	return nil
}

func (c *checker) resolveType(te TypeExpr) (*Type, error) {
	var base *Type
	switch te.Name {
	case "int":
		base = tInt
	case "float":
		base = tFloat
	case "boolean":
		base = tBool
	case "byte":
		base = tByte
	case "String":
		base = tString
	case "void":
		base = tVoid
	default:
		cs, ok := c.classes[te.Name]
		if !ok {
			return nil, errf(te.Pos, "undefined type %q", te.Name)
		}
		base = cs.typ
	}
	if te.Dims > 0 {
		if base.Kind == KVoid {
			return nil, errf(te.Pos, "array of void")
		}
		for i := 0; i < te.Dims; i++ {
			base = arrayOf(base)
		}
	} else if base.Kind == KByte {
		return base, nil // scalar byte rejected at use sites
	}
	return base, nil
}

// Scope management. Slots are assigned linearly and never reused; the frame
// is small and the simplicity pays for itself.

func (c *checker) pushScope() { c.scopes = append(c.scopes, make(map[string]*localVar)) }
func (c *checker) popScope()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(pos Pos, name string, t *Type) (*localVar, error) {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return nil, errf(pos, "variable %q redeclared in this scope", name)
	}
	lv := &localVar{name: name, typ: t, slot: c.nextSlot}
	c.nextSlot++
	if c.nextSlot > c.maxSlots {
		c.maxSlots = c.nextSlot
	}
	top[name] = lv
	return lv, nil
}

func (c *checker) lookupLocal(name string) *localVar {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if lv, ok := c.scopes[i][name]; ok {
			return lv
		}
	}
	return nil
}

func (c *checker) checkMethod(cs *classSym, md *MethodDecl) error {
	ms := cs.methods[md.Name]
	c.curClass = cs
	c.curMethod = ms
	c.scopes = nil
	c.nextSlot = 0
	c.maxSlots = 0
	c.loopDepth = 0
	c.pushScope()
	if !ms.static {
		if _, err := c.declare(md.Pos, "this", cs.typ); err != nil {
			return err
		}
	}
	for i, p := range md.Params {
		if _, err := c.declare(p.Pos, p.Name, ms.params[i]); err != nil {
			return err
		}
	}
	if err := c.checkBlock(md.Body); err != nil {
		return err
	}
	c.popScope()
	md.maxSlots = c.maxSlots
	if ms.ret.Kind != KVoid && !alwaysReturns(md.Body) {
		return errf(md.Pos, "method %s may finish without returning a value", ms.qname())
	}
	return nil
}

func (c *checker) checkBlock(b *Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.checkBlock(st)
	case *VarDecl:
		t, err := c.resolveType(st.Type)
		if err != nil {
			return err
		}
		if t.Kind == KVoid || t.Kind == KByte {
			return errf(st.Pos, "variable %q has invalid type %s", st.Name, t)
		}
		if st.Init != nil {
			it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !it.assignableTo(t) {
				return errf(st.Pos, "cannot initialize %s %q with %s", t, st.Name, it)
			}
		}
		lv, err := c.declare(st.Pos, st.Name, t)
		if err != nil {
			return err
		}
		st.local = lv
		return nil
	case *If:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KBool {
			return errf(st.Pos, "if condition must be boolean, got %s", ct)
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		ct, err := c.checkExpr(st.Cond)
		if err != nil {
			return err
		}
		if ct.Kind != KBool {
			return errf(st.Pos, "while condition must be boolean, got %s", ct)
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(st.Body)
	case *For:
		c.pushScope()
		defer c.popScope()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			ct, err := c.checkExpr(st.Cond)
			if err != nil {
				return err
			}
			if ct.Kind != KBool {
				return errf(st.Pos, "for condition must be boolean, got %s", ct)
			}
		}
		if st.Post != nil {
			if err := c.checkStmt(st.Post); err != nil {
				return err
			}
		}
		c.loopDepth++
		defer func() { c.loopDepth-- }()
		return c.checkStmt(st.Body)
	case *Return:
		want := c.curMethod.ret
		if st.Val == nil {
			if want.Kind != KVoid {
				return errf(st.Pos, "method %s must return %s", c.curMethod.qname(), want)
			}
			return nil
		}
		if want.Kind == KVoid {
			return errf(st.Pos, "void method %s returns a value", c.curMethod.qname())
		}
		vt, err := c.checkExpr(st.Val)
		if err != nil {
			return err
		}
		if !vt.assignableTo(want) {
			return errf(st.Pos, "cannot return %s from method returning %s", vt, want)
		}
		return nil
	case *Break:
		if c.loopDepth == 0 && c.switchDepth == 0 {
			return errf(st.Pos, "break outside loop or switch")
		}
		return nil
	case *Switch:
		return c.checkSwitch(st)
	case *Continue:
		if c.loopDepth == 0 {
			return errf(st.Pos, "continue outside loop")
		}
		return nil
	case *Throw:
		xt, err := c.checkExpr(st.X)
		if err != nil {
			return err
		}
		if xt.Kind != KClass {
			return errf(st.Pos, "can only throw class instances, got %s", xt)
		}
		return nil
	case *Try:
		if err := c.checkBlock(st.Body); err != nil {
			return err
		}
		cs, ok := c.classes[st.CatchClass]
		if !ok {
			return errf(st.Pos, "undefined class %q in catch", st.CatchClass)
		}
		st.catchSym = cs
		c.pushScope()
		defer c.popScope()
		lv, err := c.declare(st.Pos, st.CatchVar, cs.typ)
		if err != nil {
			return err
		}
		st.catchLocal = lv
		return c.checkBlock(st.Catch)
	case *ExprStmt:
		_, err := c.checkExpr(st.E)
		if err != nil {
			return err
		}
		if _, ok := st.E.(*Call); !ok {
			if _, ok := st.E.(*New); !ok {
				return errf(st.Pos, "expression statement must be a call or allocation")
			}
		}
		return nil
	case *Assign:
		lt, err := c.checkLValue(st.LHS)
		if err != nil {
			return err
		}
		rt, err := c.checkExpr(st.RHS)
		if err != nil {
			return err
		}
		if !rt.assignableTo(lt) {
			return errf(st.Pos, "cannot assign %s to %s", rt, lt)
		}
		return nil
	}
	return errf(Pos{}, "internal: unknown statement %T", s)
}

func (c *checker) checkSwitch(st *Switch) error {
	tt, err := c.checkExpr(st.Tag)
	if err != nil {
		return err
	}
	if tt.Kind != KInt {
		return errf(st.Pos, "switch tag must be int, got %s", tt)
	}
	seen := make(map[int64]bool)
	for _, g := range st.Cases {
		if len(g.Vals) == 0 {
			return errf(g.Pos, "case group with no labels")
		}
		for _, v := range g.Vals {
			if v < -1<<31 || v >= 1<<31 {
				return errf(g.Pos, "case value %d outside 32-bit range", v)
			}
			if seen[v] {
				return errf(g.Pos, "duplicate case value %d", v)
			}
			seen[v] = true
		}
	}
	c.switchDepth++
	defer func() { c.switchDepth-- }()
	for _, g := range st.Cases {
		c.pushScope()
		for _, s := range g.Body {
			if err := c.checkStmt(s); err != nil {
				c.popScope()
				return err
			}
		}
		c.popScope()
	}
	c.pushScope()
	defer c.popScope()
	for _, s := range st.Default {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

// checkLValue checks the assignable forms: identifier, field access, index.
func (c *checker) checkLValue(e Expr) (*Type, error) {
	switch lv := e.(type) {
	case *Ident:
		t, err := c.checkExpr(e)
		if err != nil {
			return nil, err
		}
		if lv.Class != nil {
			return nil, errf(lv.Pos, "cannot assign to class %q", lv.Name)
		}
		return t, nil
	case *FieldAccess:
		t, err := c.checkExpr(e)
		if err != nil {
			return nil, err
		}
		if lv.isLength {
			return nil, errf(lv.Pos, "cannot assign to length")
		}
		return t, nil
	case *Index:
		return c.checkExpr(e)
	}
	return nil, errf(e.Position(), "not an assignable expression")
}

func (c *checker) checkExpr(e Expr) (*Type, error) {
	switch x := e.(type) {
	case *IntLit:
		x.typ = tInt
		return tInt, nil
	case *FloatLit:
		x.typ = tFloat
		return tFloat, nil
	case *StrLit:
		x.typ = tString
		return tString, nil
	case *BoolLit:
		x.typ = tBool
		return tBool, nil
	case *NullLit:
		x.typ = tNull
		return tNull, nil
	case *This:
		if c.curMethod.static {
			return nil, errf(x.Pos, "'this' in static method %s", c.curMethod.qname())
		}
		x.typ = c.curClass.typ
		return x.typ, nil
	case *Ident:
		return c.checkIdent(x)
	case *Unary:
		return c.checkUnary(x)
	case *Binary:
		return c.checkBinary(x)
	case *InstanceOf:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KClass && xt.Kind != KNull {
			return nil, errf(x.Pos, "instanceof requires a class reference, got %s", xt)
		}
		cs, ok := c.classes[x.Class]
		if !ok {
			return nil, errf(x.Pos, "undefined class %q in instanceof", x.Class)
		}
		x.classSym = cs
		x.typ = tBool
		return tBool, nil
	case *Call:
		return c.checkCall(x)
	case *FieldAccess:
		return c.checkFieldAccess(x)
	case *Index:
		xt, err := c.checkExpr(x.X)
		if err != nil {
			return nil, err
		}
		if xt.Kind != KArray {
			return nil, errf(x.Pos, "indexing non-array type %s", xt)
		}
		it, err := c.checkExpr(x.I)
		if err != nil {
			return nil, err
		}
		if it.Kind != KInt {
			return nil, errf(x.Pos, "array index must be int, got %s", it)
		}
		// Byte elements surface as int.
		if xt.Elem.Kind == KByte {
			x.typ = tInt
		} else {
			x.typ = xt.Elem
		}
		return x.typ, nil
	case *New:
		return c.checkNew(x)
	}
	return nil, errf(e.Position(), "internal: unknown expression %T", e)
}

func (c *checker) checkIdent(x *Ident) (*Type, error) {
	if lv := c.lookupLocal(x.Name); lv != nil {
		x.Local = lv
		x.typ = lv.typ
		return lv.typ, nil
	}
	if f := c.curClass.fieldNamed(x.Name); f != nil {
		if !f.static && c.curMethod.static {
			return nil, errf(x.Pos, "instance field %q used in static method", x.Name)
		}
		x.Field = f
		x.typ = f.typ
		return f.typ, nil
	}
	if cs, ok := c.classes[x.Name]; ok {
		x.Class = cs
		x.typ = cs.typ // only usable as a qualifier; assignments reject it
		return x.typ, nil
	}
	if x.Name == sysClassName {
		return nil, errf(x.Pos, "Sys has no fields; call Sys.<fn>(...)")
	}
	return nil, errf(x.Pos, "undefined identifier %q", x.Name)
}

func (c *checker) checkUnary(x *Unary) (*Type, error) {
	t, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case TokMinus:
		if !t.IsNumeric() {
			return nil, errf(x.Pos, "unary - on %s", t)
		}
		x.typ = t
		return t, nil
	case TokNot:
		if t.Kind != KBool {
			return nil, errf(x.Pos, "! on %s", t)
		}
		x.typ = tBool
		return tBool, nil
	}
	return nil, errf(x.Pos, "internal: unknown unary op")
}

func (c *checker) checkBinary(x *Binary) (*Type, error) {
	lt, err := c.checkExpr(x.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(x.R)
	if err != nil {
		return nil, err
	}
	switch x.Op {
	case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, errf(x.Pos, "%s on %s and %s", x.Op, lt, rt)
		}
		if lt.Kind == KFloat || rt.Kind == KFloat {
			x.typ = tFloat
		} else {
			x.typ = tInt
		}
		return x.typ, nil
	case TokShl, TokShr, TokUshr, TokAmp, TokPipe, TokCaret:
		if lt.Kind != KInt || rt.Kind != KInt {
			return nil, errf(x.Pos, "%s requires int operands, got %s and %s", x.Op, lt, rt)
		}
		x.typ = tInt
		return tInt, nil
	case TokLt, TokLe, TokGt, TokGe:
		if !lt.IsNumeric() || !rt.IsNumeric() {
			return nil, errf(x.Pos, "%s on %s and %s", x.Op, lt, rt)
		}
		x.typ = tBool
		return tBool, nil
	case TokEq, TokNe:
		ok := (lt.IsNumeric() && rt.IsNumeric()) ||
			(lt.Kind == KBool && rt.Kind == KBool) ||
			(lt.IsRef() && rt.IsRef() && (lt.assignableTo(rt) || rt.assignableTo(lt)))
		if !ok {
			return nil, errf(x.Pos, "%s on incompatible types %s and %s", x.Op, lt, rt)
		}
		x.typ = tBool
		return tBool, nil
	case TokAndAnd, TokOrOr:
		if lt.Kind != KBool || rt.Kind != KBool {
			return nil, errf(x.Pos, "%s requires boolean operands, got %s and %s", x.Op, lt, rt)
		}
		x.typ = tBool
		return tBool, nil
	}
	return nil, errf(x.Pos, "internal: unknown binary op %s", x.Op)
}

func (c *checker) checkCall(x *Call) (*Type, error) {
	// Sys builtins.
	if id, ok := x.Recv.(*Ident); ok && id.Name == sysClassName {
		fn, ok := sysBuiltins[x.Name]
		if !ok {
			return nil, errf(x.Pos, "unknown builtin Sys.%s", x.Name)
		}
		if err := c.checkArgs(x.Pos, "Sys."+x.Name, fn.params, x.Args); err != nil {
			return nil, err
		}
		x.builtin = fn
		x.typ = fn.ret
		return fn.ret, nil
	}

	var ms *methodSym
	switch {
	case x.Recv == nil:
		// Bare call: method of the current class (static, or instance via
		// implicit this).
		ms = c.curClass.methodNamed(x.Name)
		if ms == nil {
			return nil, errf(x.Pos, "class %q has no method %q", c.curClass.name, x.Name)
		}
		if !ms.static && c.curMethod.static {
			return nil, errf(x.Pos, "instance method %s called from static context", ms.qname())
		}
		x.static = ms.static
	default:
		// Qualified call: a class name makes it static, otherwise virtual.
		if id, ok := x.Recv.(*Ident); ok {
			if cs, isClass := c.classes[id.Name]; isClass && c.lookupLocal(id.Name) == nil && c.curClass.fieldNamed(id.Name) == nil {
				ms = cs.methodNamed(x.Name)
				if ms == nil {
					return nil, errf(x.Pos, "class %q has no method %q", id.Name, x.Name)
				}
				if !ms.static {
					return nil, errf(x.Pos, "instance method %s called via class name", ms.qname())
				}
				id.Class = cs
				id.typ = cs.typ
				x.static = true
				break
			}
		}
		rt, err := c.checkExpr(x.Recv)
		if err != nil {
			return nil, err
		}
		if rt.Kind != KClass {
			return nil, errf(x.Pos, "method call on non-object type %s", rt)
		}
		ms = rt.Class.methodNamed(x.Name)
		if ms == nil {
			return nil, errf(x.Pos, "class %q has no method %q", rt.Class.name, x.Name)
		}
		if ms.static {
			return nil, errf(x.Pos, "static method %s called on an instance", ms.qname())
		}
	}
	if err := c.checkArgs(x.Pos, ms.qname(), ms.params, x.Args); err != nil {
		return nil, err
	}
	x.method = ms
	x.typ = ms.ret
	return ms.ret, nil
}

func (c *checker) checkArgs(pos Pos, what string, params []*Type, args []Expr) error {
	if len(args) != len(params) {
		return errf(pos, "%s expects %d arguments %s, got %d", what, len(params), describeParams(params), len(args))
	}
	for i, a := range args {
		at, err := c.checkExpr(a)
		if err != nil {
			return err
		}
		if !at.assignableTo(params[i]) {
			return errf(a.Position(), "argument %d of %s: cannot use %s as %s", i+1, what, at, params[i])
		}
	}
	return nil
}

func (c *checker) checkFieldAccess(x *FieldAccess) (*Type, error) {
	// ClassName.field for statics.
	if id, ok := x.X.(*Ident); ok {
		if cs, isClass := c.classes[id.Name]; isClass && c.lookupLocal(id.Name) == nil && c.curClass.fieldNamed(id.Name) == nil {
			f := cs.fieldNamed(x.Name)
			if f == nil {
				return nil, errf(x.Pos, "class %q has no field %q", id.Name, x.Name)
			}
			if !f.static {
				return nil, errf(x.Pos, "instance field %s.%s accessed via class name", cs.name, x.Name)
			}
			id.Class = cs
			id.typ = cs.typ
			x.field = f
			x.typ = f.typ
			return f.typ, nil
		}
	}
	xt, err := c.checkExpr(x.X)
	if err != nil {
		return nil, err
	}
	if x.Name == "length" && (xt.Kind == KArray || xt.Kind == KString) {
		x.isLength = true
		x.typ = tInt
		return tInt, nil
	}
	if xt.Kind != KClass {
		return nil, errf(x.Pos, "field access on non-object type %s", xt)
	}
	f := xt.Class.fieldNamed(x.Name)
	if f == nil {
		return nil, errf(x.Pos, "class %q has no field %q", xt.Class.name, x.Name)
	}
	if f.static {
		return nil, errf(x.Pos, "static field %s.%s accessed via an instance", f.class.name, x.Name)
	}
	x.field = f
	x.typ = f.typ
	return f.typ, nil
}

func (c *checker) checkNew(x *New) (*Type, error) {
	if x.Len != nil {
		// Array allocation.
		lt, err := c.checkExpr(x.Len)
		if err != nil {
			return nil, err
		}
		if lt.Kind != KInt {
			return nil, errf(x.Pos, "array length must be int, got %s", lt)
		}
		elem, err := c.resolveType(TypeExpr{Pos: x.Pos, Name: x.TypeName, Dims: x.ExtraDims})
		if err != nil {
			return nil, err
		}
		if elem.Kind == KVoid {
			return nil, errf(x.Pos, "array of void")
		}
		x.typ = arrayOf(elem)
		return x.typ, nil
	}
	// Object allocation.
	cs, ok := c.classes[x.TypeName]
	if !ok {
		return nil, errf(x.Pos, "undefined class %q", x.TypeName)
	}
	x.classSym = cs
	ctor := cs.methodNamed("init")
	if ctor != nil && !ctor.static {
		if err := c.checkArgs(x.Pos, cs.name+".init", ctor.params, x.Args); err != nil {
			return nil, err
		}
		x.ctor = ctor
	} else if len(x.Args) > 0 {
		return nil, errf(x.Pos, "class %q has no init method but new was given arguments", cs.name)
	}
	x.typ = cs.typ
	return x.typ, nil
}

// alwaysReturns conservatively reports whether every path through the
// statement ends in a return.
func alwaysReturns(s Stmt) bool {
	switch st := s.(type) {
	case *Return:
		return true
	case *Throw:
		// A throw never falls through; either a handler takes over or the
		// program terminates.
		return true
	case *Try:
		return alwaysReturns(st.Body) && alwaysReturns(st.Catch)
	case *Block:
		for _, inner := range st.Stmts {
			if alwaysReturns(inner) {
				return true
			}
		}
		return false
	case *If:
		return st.Else != nil && alwaysReturns(st.Then) && alwaysReturns(st.Else)
	case *While:
		// "while (true)" with no break is treated as returning (the method
		// cannot fall off its end); anything else may exit the loop.
		if b, ok := st.Cond.(*BoolLit); ok && b.Val {
			return !hasBreak(st.Body)
		}
		return false
	case *For:
		if st.Cond == nil {
			return !hasBreak(st.Body)
		}
		return false
	}
	return false
}

func hasBreak(s Stmt) bool {
	switch st := s.(type) {
	case *Break:
		return true
	case *Block:
		for _, inner := range st.Stmts {
			if hasBreak(inner) {
				return true
			}
		}
	case *If:
		if hasBreak(st.Then) {
			return true
		}
		if st.Else != nil {
			return hasBreak(st.Else)
		}
	}
	// Nested loops own their breaks.
	return false
}
