// Package minijava implements a compiler for MiniJava, a small Java-like
// language, targeting the bytecode ISA. It is the frontend used to write
// the benchmark workloads: classes with single inheritance and virtual
// methods, static methods, int/float/boolean scalars, arrays (including
// byte arrays), strings, and structured control flow. The compiler has four
// stages: lexing, recursive-descent parsing, semantic analysis (symbol
// resolution and type checking), and bytecode generation through the
// classfile builder.
package minijava

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokFloatLit
	TokStrLit

	// Keywords.
	TokClass
	TokExtends
	TokStatic
	TokVoid
	TokInt
	TokFloat
	TokBoolean
	TokByte
	TokString
	TokIf
	TokElse
	TokWhile
	TokFor
	TokReturn
	TokBreak
	TokContinue
	TokNew
	TokThis
	TokThrow
	TokTry
	TokCatch
	TokSwitch
	TokCase
	TokDefault
	TokNull
	TokTrue
	TokFalse
	TokInstanceof

	// Punctuation and operators.
	TokLBrace
	TokRBrace
	TokLParen
	TokRParen
	TokLBracket
	TokRBracket
	TokSemi
	TokComma
	TokDot
	TokAssign // =
	TokPlus
	TokMinus
	TokStar
	TokSlash
	TokPercent
	TokNot    // !
	TokLt     // <
	TokGt     // >
	TokLe     // <=
	TokGe     // >=
	TokEq     // ==
	TokNe     // !=
	TokAndAnd // &&
	TokOrOr   // ||
	TokAmp    // &
	TokPipe   // |
	TokCaret  // ^
	TokShl    // <<
	TokShr    // >>
	TokUshr   // >>>
	TokColon  // :
)

var tokNames = map[TokKind]string{
	TokEOF: "end of file", TokIdent: "identifier", TokIntLit: "integer literal",
	TokFloatLit: "float literal", TokStrLit: "string literal",
	TokClass: "'class'", TokExtends: "'extends'", TokStatic: "'static'",
	TokVoid: "'void'", TokInt: "'int'", TokFloat: "'float'", TokBoolean: "'boolean'",
	TokByte: "'byte'", TokString: "'String'",
	TokIf: "'if'", TokElse: "'else'", TokWhile: "'while'", TokFor: "'for'",
	TokReturn: "'return'", TokBreak: "'break'", TokContinue: "'continue'",
	TokNew: "'new'", TokThis: "'this'", TokNull: "'null'", TokTrue: "'true'",
	TokThrow: "'throw'", TokTry: "'try'", TokCatch: "'catch'",
	TokSwitch: "'switch'", TokCase: "'case'", TokDefault: "'default'",
	TokColon: "':'",
	TokFalse: "'false'", TokInstanceof: "'instanceof'",
	TokLBrace: "'{'", TokRBrace: "'}'", TokLParen: "'('", TokRParen: "')'",
	TokLBracket: "'['", TokRBracket: "']'", TokSemi: "';'", TokComma: "','",
	TokDot: "'.'", TokAssign: "'='", TokPlus: "'+'", TokMinus: "'-'",
	TokStar: "'*'", TokSlash: "'/'", TokPercent: "'%'", TokNot: "'!'",
	TokLt: "'<'", TokGt: "'>'", TokLe: "'<='", TokGe: "'>='",
	TokEq: "'=='", TokNe: "'!='", TokAndAnd: "'&&'", TokOrOr: "'||'",
	TokAmp: "'&'", TokPipe: "'|'", TokCaret: "'^'",
	TokShl: "'<<'", TokShr: "'>>'", TokUshr: "'>>>'",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("token(%d)", k)
}

var keywords = map[string]TokKind{
	"class": TokClass, "extends": TokExtends, "static": TokStatic,
	"void": TokVoid, "int": TokInt, "float": TokFloat, "boolean": TokBoolean,
	"byte": TokByte, "String": TokString,
	"if": TokIf, "else": TokElse, "while": TokWhile, "for": TokFor,
	"return": TokReturn, "break": TokBreak, "continue": TokContinue,
	"new": TokNew, "this": TokThis, "null": TokNull,
	"throw": TokThrow, "try": TokTry, "catch": TokCatch,
	"switch": TokSwitch, "case": TokCase, "default": TokDefault,
	"true": TokTrue, "false": TokFalse, "instanceof": TokInstanceof,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Pos  Pos
	Text string  // identifiers and literals
	Int  int64   // TokIntLit
	Flt  float64 // TokFloatLit
}

// Error is a compile error with a position.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("minijava: %s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
