package minijava

import (
	"strconv"
	"strings"
)

type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peekByte() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peekByte() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peekByte()

	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentCont(l.peekByte()) {
			l.advance()
		}
		word := l.src[start:l.off]
		if k, ok := keywords[word]; ok {
			return Token{Kind: k, Pos: pos, Text: word}, nil
		}
		return Token{Kind: TokIdent, Pos: pos, Text: word}, nil

	case isDigit(c):
		return l.number(pos)

	case c == '"':
		return l.stringLit(pos)
	}

	l.advance()
	two := func(next byte, with, without TokKind) Token {
		if l.peekByte() == next {
			l.advance()
			return Token{Kind: with, Pos: pos}
		}
		return Token{Kind: without, Pos: pos}
	}
	switch c {
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '=':
		return two('=', TokEq, TokAssign), nil
	case '!':
		return two('=', TokNe, TokNot), nil
	case '&':
		return two('&', TokAndAnd, TokAmp), nil
	case '|':
		return two('|', TokOrOr, TokPipe), nil
	case '<':
		if l.peekByte() == '<' {
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return two('=', TokLe, TokLt), nil
	case '>':
		if l.peekByte() == '>' {
			l.advance()
			if l.peekByte() == '>' {
				l.advance()
				return Token{Kind: TokUshr, Pos: pos}, nil
			}
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return two('=', TokGe, TokGt), nil
	}
	return Token{}, errf(pos, "unexpected character %q", c)
}

func (l *lexer) number(pos Pos) (Token, error) {
	start := l.off
	isFloat := false
	if l.peekByte() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHex(l.peekByte()) {
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 64)
		if err != nil {
			return Token{}, errf(pos, "bad hex literal %q", l.src[start:l.off])
		}
		return Token{Kind: TokIntLit, Pos: pos, Int: int64(v), Text: l.src[start:l.off]}, nil
	}
	for l.off < len(l.src) && isDigit(l.peekByte()) {
		l.advance()
	}
	if l.peekByte() == '.' && isDigit(l.peek2()) {
		isFloat = true
		l.advance()
		for l.off < len(l.src) && isDigit(l.peekByte()) {
			l.advance()
		}
	}
	if c := l.peekByte(); c == 'e' || c == 'E' {
		save := l.off
		l.advance()
		if c := l.peekByte(); c == '+' || c == '-' {
			l.advance()
		}
		if isDigit(l.peekByte()) {
			isFloat = true
			for l.off < len(l.src) && isDigit(l.peekByte()) {
				l.advance()
			}
		} else {
			l.off = save // not an exponent; leave for the next token
		}
	}
	text := l.src[start:l.off]
	if isFloat {
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return Token{}, errf(pos, "bad float literal %q", text)
		}
		return Token{Kind: TokFloatLit, Pos: pos, Flt: v, Text: text}, nil
	}
	v, err := strconv.ParseInt(text, 10, 64)
	if err != nil {
		return Token{}, errf(pos, "bad integer literal %q", text)
	}
	return Token{Kind: TokIntLit, Pos: pos, Int: v, Text: text}, nil
}

func isHex(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

func (l *lexer) stringLit(pos Pos) (Token, error) {
	l.advance() // opening quote
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := l.advance()
		switch c {
		case '"':
			return Token{Kind: TokStrLit, Pos: pos, Text: b.String()}, nil
		case '\\':
			if l.off >= len(l.src) {
				return Token{}, errf(pos, "unterminated escape")
			}
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			default:
				return Token{}, errf(pos, "unknown escape \\%c", e)
			}
		case '\n':
			return Token{}, errf(pos, "newline in string literal")
		default:
			b.WriteByte(c)
		}
	}
}

// lexAll tokenizes the whole source (used by the parser and by tests).
func lexAll(src string) ([]Token, error) {
	l := newLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
