package minijava

import "testing"

// FuzzLexer: arbitrary text must lex or error, never panic or hang.
func FuzzLexer(f *testing.F) {
	f.Add("class Main { static void main() { Sys.printlnInt(1); } }")
	f.Add(`"string with \t escapes"`)
	f.Add("0x1f 3.5e-2 >>> << >= /* comment */ // line")
	f.Add("\"unterminated")
	f.Add("@#$%^")
	f.Fuzz(func(t *testing.T, src string) {
		toks, err := lexAll(src)
		if err != nil {
			return
		}
		if len(toks) == 0 || toks[len(toks)-1].Kind != TokEOF {
			t.Fatal("lexer succeeded without a trailing EOF token")
		}
	})
}

// FuzzCompile: arbitrary text through the whole frontend must produce a
// program or an error, never a panic. Accepted programs must link (Compile
// returns linked programs), which exercises codegen and the verifier too.
func FuzzCompile(f *testing.F) {
	f.Add("class Main { static void main() { Sys.printlnInt(1 + 2 * 3); } }")
	f.Add(`class A extends B { int x; }`)
	f.Add(`class A { static int f(int n) { if (n < 2) { return n; } return f(n-1); } static void main() { f(3); } }`)
	f.Add(`class E {} class M { static void main() { try { throw new E(); } catch (E e) { } } }`)
	f.Add("class")
	f.Add("{}{}{}")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := Compile(src)
		if err != nil {
			return
		}
		if prog == nil || !prog.Linked() {
			t.Fatal("Compile returned an unlinked program without error")
		}
	})
}
