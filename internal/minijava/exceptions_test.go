package minijava_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/minijava"
	"repro/internal/vm"
)

func TestThrowCatchBasic(t *testing.T) {
	got := run(t, `
class Err { int code; void init(int c) { code = c; } }
class Main {
    static void main() {
        try {
            Sys.printlnInt(1);
            throw new Err(42);
        } catch (Err e) {
            Sys.printlnInt(e.code);
        }
        Sys.printlnInt(3);
    }
}`)
	if got != "1\n42\n3\n" {
		t.Errorf("output = %q", got)
	}
}

func TestThrowUnwindsFrames(t *testing.T) {
	got := run(t, `
class Err { int code; void init(int c) { code = c; } }
class Main {
    static int deep(int n) {
        if (n == 0) { throw new Err(7); }
        return deep(n - 1) + 1;
    }
    static void main() {
        try {
            Sys.printlnInt(deep(5));
        } catch (Err e) {
            Sys.printlnInt(e.code * 100);
        }
    }
}`)
	if got != "700\n" {
		t.Errorf("output = %q", got)
	}
}

func TestCatchSubclassMatching(t *testing.T) {
	got := run(t, `
class Base { int tag() { return 1; } }
class Derived extends Base { int tag() { return 2; } }
class Other { }
class Main {
    static void attempt(int which) {
        try {
            if (which == 0) { throw new Base(); }
            if (which == 1) { throw new Derived(); }
            throw new Other();
        } catch (Base b) {
            Sys.printlnInt(b.tag());
        }
    }
    static void main() {
        attempt(0);          // Base caught: 1
        attempt(1);          // Derived caught by Base handler: 2
        try {
            attempt(2);      // Other flies past the inner handler
        } catch (Other o) {
            Sys.printlnInt(99);
        }
    }
}`)
	if got != "1\n2\n99\n" {
		t.Errorf("output = %q", got)
	}
}

func TestNestedTryInnermostWins(t *testing.T) {
	got := run(t, `
class Err { }
class Main {
    static void main() {
        try {
            try {
                throw new Err();
            } catch (Err inner) {
                Sys.printlnInt(1);
                throw new Err();      // rethrow from the handler
            }
        } catch (Err outer) {
            Sys.printlnInt(2);
        }
    }
}`)
	if got != "1\n2\n" {
		t.Errorf("output = %q", got)
	}
}

func TestUncaughtExceptionTrap(t *testing.T) {
	prog, err := minijava.Compile(`
class Err { }
class Main { static void main() { throw new Err(); } }`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	m, err := vm.New(prog, pcfg, vm.Options{})
	if err != nil {
		t.Fatal(err)
	}
	err = m.Run()
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapUncaught {
		t.Fatalf("error = %v, want uncaught trap", err)
	}
	if !strings.Contains(trap.Error(), "Err") {
		t.Errorf("trap does not name the class: %v", trap)
	}
}

func TestThrowNullTraps(t *testing.T) {
	prog, err := minijava.Compile(`
class Err { }
class Main { static void main() { Err e = null; throw e; } }`)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, _ := cfg.BuildProgram(prog)
	m, _ := vm.New(prog, pcfg, vm.Options{})
	err = m.Run()
	trap, ok := vm.AsTrap(err)
	if !ok || trap.Kind != vm.TrapNullDeref {
		t.Fatalf("error = %v, want null-deref trap", err)
	}
}

func TestThrowTypeErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class A { static void main() { throw 1; } }`, "class instances"},
		{`class A { static void main() { try { } catch (Nope e) { } } }`, "undefined class"},
		{`class A { static void main() { try { } catch (A e) { int x = e; } } }`, "cannot initialize"},
	}
	for _, tc := range cases {
		_, err := minijava.Compile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("compile %q: error %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestThrowSatisfiesReturnPaths(t *testing.T) {
	got := run(t, `
class Err { }
class Main {
    static int pick(int n) {
        if (n > 0) { return n; }
        throw new Err();
    }
    static void main() {
        Sys.printlnInt(pick(5));
        try { Sys.printlnInt(pick(0 - 1)); } catch (Err e) { Sys.printlnInt(0); }
    }
}`)
	if got != "5\n0\n" {
		t.Errorf("output = %q", got)
	}
}

func TestExceptionsAcrossAllDispatchModes(t *testing.T) {
	src := `
class Err { int v; void init(int x) { v = x; } }
class Main {
    static int risky(int i) {
        if (i % 1000 == 999) { throw new Err(i); }
        return i % 7;
    }
    static void main() {
        int sum = 0;
        int caught = 0;
        for (int i = 0; i < 20000; i = i + 1) {
            try { sum = sum + risky(i); }
            catch (Err e) { caught = caught + 1; }
        }
        Sys.printlnInt(sum);
        Sys.printlnInt(caught);
    }
}`
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	var want string
	for _, mode := range []core.Mode{core.ModePlain, core.ModeInstr, core.ModeProfile, core.ModeTrace, core.ModeTraceDeploy} {
		var out bytes.Buffer
		s, err := core.NewSession(prog, pcfg, core.SessionOptions{Mode: mode, Out: &out})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(); err != nil {
			t.Fatalf("mode %s: %v", mode, err)
		}
		if want == "" {
			want = out.String()
			if !strings.HasSuffix(want, "20\n") { // 20000/1000 exceptions
				t.Fatalf("unexpected reference output %q", want)
			}
		} else if out.String() != want {
			t.Errorf("mode %s output %q != %q", mode, out.String(), want)
		}
	}
}

func TestExceptionEdgesStayOutOfTraces(t *testing.T) {
	// The paper: exception branches are "never taken" edges that traces
	// exclude. A hot loop with a cold throwing path must still produce
	// high-completion traces.
	src := `
class Err { }
class Main {
    static int f(int i) {
        if (i == 123456789) { throw new Err(); }  // never taken
        return i % 5;
    }
    static void main() {
        int s = 0;
        for (int i = 0; i < 50000; i = i + 1) {
            try { s = s + f(i); } catch (Err e) { s = 0; }
        }
        Sys.printlnInt(s);
    }
}`
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{Mode: core.ModeTrace})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	if m.CompletionRate < 0.97 {
		t.Errorf("completion = %.3f despite the throw path never executing", m.CompletionRate)
	}
	if m.Coverage < 0.8 {
		t.Errorf("coverage = %.3f, want the hot loop covered", m.Coverage)
	}
}
