package minijava

// Recursive-descent parser. The grammar is LL(2) except assignment
// statements, which are handled by parsing an expression and then checking
// for '='.

type parser struct {
	toks []Token
	i    int
}

// Parse parses MiniJava source into a File.
func Parse(src string) (*File, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for p.cur().Kind != TokEOF {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, c)
	}
	if len(f.Classes) == 0 {
		return nil, errf(p.cur().Pos, "no classes in source")
	}
	return f, nil
}

func (p *parser) cur() Token  { return p.toks[p.i] }
func (p *parser) peek() Token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func (p *parser) next() Token {
	t := p.toks[p.i]
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func (p *parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expect(k TokKind) (Token, error) {
	if p.cur().Kind != k {
		return Token{}, errf(p.cur().Pos, "expected %s, found %s", k, p.describe(p.cur()))
	}
	return p.next(), nil
}

func (p *parser) describe(t Token) string {
	if t.Kind == TokIdent {
		return "identifier " + t.Text
	}
	return t.Kind.String()
}

func (p *parser) classDecl() (*ClassDecl, error) {
	kw, err := p.expect(TokClass)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	c := &ClassDecl{Pos: kw.Pos, Name: name.Text}
	if p.accept(TokExtends) {
		sup, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		c.Super = sup.Text
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.cur().Kind != TokRBrace {
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	p.next() // '}'
	return c, nil
}

// member parses a field or method: [static] type name (";" | "(" ...).
func (p *parser) member(c *ClassDecl) error {
	start := p.cur().Pos
	static := p.accept(TokStatic)
	typ, err := p.typeExpr()
	if err != nil {
		return err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return err
	}
	switch p.cur().Kind {
	case TokSemi:
		p.next()
		if typ.Name == "void" {
			return errf(start, "field %s cannot be void", name.Text)
		}
		c.Fields = append(c.Fields, &FieldDecl{Pos: start, Static: static, Type: typ, Name: name.Text})
		return nil
	case TokLParen:
		m := &MethodDecl{Pos: start, Static: static, Ret: typ, Name: name.Text}
		p.next()
		for p.cur().Kind != TokRParen {
			if len(m.Params) > 0 {
				if _, err := p.expect(TokComma); err != nil {
					return err
				}
			}
			pt, err := p.typeExpr()
			if err != nil {
				return err
			}
			pn, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			m.Params = append(m.Params, Param{Pos: pt.Pos, Type: pt, Name: pn.Text})
		}
		p.next() // ')'
		body, err := p.block()
		if err != nil {
			return err
		}
		m.Body = body
		c.Methods = append(c.Methods, m)
		return nil
	}
	return errf(p.cur().Pos, "expected ';' or '(' after member name, found %s", p.describe(p.cur()))
}

// typeExpr parses a base type name plus trailing "[]" pairs.
func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	var name string
	switch t.Kind {
	case TokInt:
		name = "int"
	case TokFloat:
		name = "float"
	case TokBoolean:
		name = "boolean"
	case TokByte:
		name = "byte"
	case TokString:
		name = "String"
	case TokVoid:
		name = "void"
	case TokIdent:
		name = t.Text
	default:
		return TypeExpr{}, errf(t.Pos, "expected a type, found %s", p.describe(t))
	}
	p.next()
	te := TypeExpr{Pos: t.Pos, Name: name}
	for p.cur().Kind == TokLBracket && p.peek().Kind == TokRBracket {
		p.next()
		p.next()
		te.Dims++
	}
	return te, nil
}

// isTypeStart reports whether the upcoming tokens begin a local variable
// declaration (rather than an expression statement).
func (p *parser) isTypeStart() bool {
	switch p.cur().Kind {
	case TokInt, TokFloat, TokBoolean, TokByte, TokString:
		return true
	case TokIdent:
		// "Name x" or "Name[] x": identifier followed by identifier, or by
		// "[]" — "Name[expr]" is an index expression instead.
		if p.peek().Kind == TokIdent {
			return true
		}
		if p.peek().Kind == TokLBracket && p.i+2 < len(p.toks) && p.toks[p.i+2].Kind == TokRBracket {
			return true
		}
	}
	return false
}

func (p *parser) block() (*Block, error) {
	lb, err := p.expect(TokLBrace)
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: lb.Pos}
	for p.cur().Kind != TokRBrace {
		if p.cur().Kind == TokEOF {
			return nil, errf(lb.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next()
	return b, nil
}

func (p *parser) stmt() (Stmt, error) {
	switch p.cur().Kind {
	case TokLBrace:
		return p.block()
	case TokIf:
		return p.ifStmt()
	case TokWhile:
		return p.whileStmt()
	case TokFor:
		return p.forStmt()
	case TokReturn:
		t := p.next()
		r := &Return{Pos: t.Pos}
		if p.cur().Kind != TokSemi {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			r.Val = e
		}
		_, err := p.expect(TokSemi)
		return r, err
	case TokBreak:
		t := p.next()
		_, err := p.expect(TokSemi)
		return &Break{Pos: t.Pos}, err
	case TokContinue:
		t := p.next()
		_, err := p.expect(TokSemi)
		return &Continue{Pos: t.Pos}, err
	case TokThrow:
		t := p.next()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
		return &Throw{Pos: t.Pos, X: x}, nil
	case TokTry:
		return p.tryStmt()
	case TokSwitch:
		return p.switchStmt()
	case TokSemi:
		t := p.next()
		return &Block{Pos: t.Pos}, nil // empty statement
	}
	s, err := p.simpleStmt()
	if err != nil {
		return nil, err
	}
	_, err = p.expect(TokSemi)
	return s, err
}

// simpleStmt parses a declaration, assignment, or expression statement
// without the trailing semicolon (shared by statements and for-headers).
func (p *parser) simpleStmt() (Stmt, error) {
	if p.isTypeStart() {
		start := p.cur().Pos
		typ, err := p.typeExpr()
		if err != nil {
			return nil, err
		}
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		d := &VarDecl{Pos: start, Type: typ, Name: name.Text}
		if p.accept(TokAssign) {
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			d.Init = e
		}
		return d, nil
	}
	e, err := p.expr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokAssign {
		eq := p.next()
		rhs, err := p.expr()
		if err != nil {
			return nil, err
		}
		switch e.(type) {
		case *Ident, *FieldAccess, *Index:
			return &Assign{Pos: eq.Pos, LHS: e, RHS: rhs}, nil
		}
		return nil, errf(eq.Pos, "left side of assignment is not assignable")
	}
	return &ExprStmt{Pos: e.Position(), E: e}, nil
}

// switchStmt parses:
//
//	switch ( expr ) { (case INT (, after another case) : stmt*)* (default: stmt*)? }
//
// Case labels may stack ("case 1: case 2: body") and bodies fall through
// unless they break; the default group, if present, must come last.
func (p *parser) switchStmt() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	tag, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	sw := &Switch{Pos: t.Pos, Tag: tag}
	for p.cur().Kind != TokRBrace {
		switch p.cur().Kind {
		case TokCase:
			var group SwitchCase
			group.Pos = p.cur().Pos
			// Stacked labels: consume consecutive "case N:".
			for p.cur().Kind == TokCase {
				p.next()
				v, err := p.caseValue()
				if err != nil {
					return nil, err
				}
				group.Vals = append(group.Vals, v)
				if _, err := p.expect(TokColon); err != nil {
					return nil, err
				}
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			group.Body = body
			sw.Cases = append(sw.Cases, group)
		case TokDefault:
			dt := p.next()
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
			body, err := p.caseBody()
			if err != nil {
				return nil, err
			}
			sw.Default = body
			if p.cur().Kind != TokRBrace {
				return nil, errf(dt.Pos, "default must be the last group in a switch")
			}
		case TokEOF:
			return nil, errf(t.Pos, "unterminated switch")
		default:
			return nil, errf(p.cur().Pos, "expected 'case', 'default' or '}' in switch, found %s", p.describe(p.cur()))
		}
	}
	p.next() // '}'
	return sw, nil
}

// caseValue parses an integer case label (with optional unary minus).
func (p *parser) caseValue() (int64, error) {
	neg := p.accept(TokMinus)
	lit, err := p.expect(TokIntLit)
	if err != nil {
		return 0, err
	}
	if neg {
		return -lit.Int, nil
	}
	return lit.Int, nil
}

// caseBody parses statements until the next case/default label or the
// closing brace.
func (p *parser) caseBody() ([]Stmt, error) {
	var body []Stmt
	for {
		switch p.cur().Kind {
		case TokCase, TokDefault, TokRBrace:
			return body, nil
		case TokEOF:
			return nil, errf(p.cur().Pos, "unterminated switch body")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		body = append(body, s)
	}
}

// tryStmt parses: try { ... } catch ( ClassName name ) { ... }
func (p *parser) tryStmt() (Stmt, error) {
	t := p.next()
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokCatch); err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cls, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	catch, err := p.block()
	if err != nil {
		return nil, err
	}
	return &Try{Pos: t.Pos, Body: body, CatchClass: cls.Text, CatchVar: name.Text, Catch: catch}, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s := &If{Pos: t.Pos, Cond: cond, Then: then}
	if p.accept(TokElse) {
		els, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.expr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &While{Pos: t.Pos, Cond: cond, Body: body}, nil
}

func (p *parser) forStmt() (Stmt, error) {
	t := p.next()
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	s := &For{Pos: t.Pos}
	if p.cur().Kind != TokSemi {
		init, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Init = init
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokSemi {
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = cond
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	if p.cur().Kind != TokRParen {
		post, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		s.Post = post
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// Expression parsing: precedence climbing.

var binPrec = map[TokKind]int{
	TokOrOr:   1,
	TokAndAnd: 2,
	TokPipe:   3,
	TokCaret:  4,
	TokAmp:    5,
	TokEq:     6, TokNe: 6,
	TokLt: 7, TokLe: 7, TokGt: 7, TokGe: 7, TokInstanceof: 7,
	TokShl: 8, TokShr: 8, TokUshr: 8,
	TokPlus: 9, TokMinus: 9,
	TokStar: 10, TokSlash: 10, TokPercent: 10,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		t := p.next()
		if op == TokInstanceof {
			cls, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			lhs = &InstanceOf{Pos: t.Pos, X: lhs, Class: cls.Text}
			continue
		}
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.Pos, Op: op, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	switch p.cur().Kind {
	case TokMinus, TokNot:
		t := p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.Pos, Op: t.Kind, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().Kind {
		case TokDot:
			p.next()
			name, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			if p.cur().Kind == TokLParen {
				args, err := p.callArgs()
				if err != nil {
					return nil, err
				}
				e = &Call{Pos: name.Pos, Recv: e, Name: name.Text, Args: args}
			} else {
				e = &FieldAccess{Pos: name.Pos, X: e, Name: name.Text}
			}
		case TokLBracket:
			t := p.next()
			idx, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &Index{Pos: t.Pos, X: e, I: idx}
		default:
			return e, nil
		}
	}
}

func (p *parser) callArgs() ([]Expr, error) {
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	var args []Expr
	for p.cur().Kind != TokRParen {
		if len(args) > 0 {
			if _, err := p.expect(TokComma); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	p.next()
	return args, nil
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIntLit:
		p.next()
		return &IntLit{Pos: t.Pos, Val: t.Int}, nil
	case TokFloatLit:
		p.next()
		return &FloatLit{Pos: t.Pos, Val: t.Flt}, nil
	case TokStrLit:
		p.next()
		return &StrLit{Pos: t.Pos, Val: t.Text}, nil
	case TokTrue, TokFalse:
		p.next()
		return &BoolLit{Pos: t.Pos, Val: t.Kind == TokTrue}, nil
	case TokNull:
		p.next()
		return &NullLit{Pos: t.Pos}, nil
	case TokThis:
		p.next()
		return &This{Pos: t.Pos}, nil
	case TokLParen:
		p.next()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		_, err = p.expect(TokRParen)
		return e, err
	case TokNew:
		return p.newExpr()
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			args, err := p.callArgs()
			if err != nil {
				return nil, err
			}
			return &Call{Pos: t.Pos, Name: t.Text, Args: args}, nil
		}
		return &Ident{Pos: t.Pos, Name: t.Text}, nil
	}
	return nil, errf(t.Pos, "expected an expression, found %s", p.describe(t))
}

// newExpr parses object allocation "new C(args)" and array allocation
// "new T[len]" with optional trailing "[]" dims.
func (p *parser) newExpr() (Expr, error) {
	t := p.next() // 'new'
	base := p.cur()
	var name string
	switch base.Kind {
	case TokInt:
		name = "int"
	case TokFloat:
		name = "float"
	case TokBoolean:
		name = "boolean"
	case TokByte:
		name = "byte"
	case TokString:
		name = "String"
	case TokIdent:
		name = base.Text
	default:
		return nil, errf(base.Pos, "expected a type after 'new', found %s", p.describe(base))
	}
	p.next()
	n := &New{Pos: t.Pos, TypeName: name}
	switch p.cur().Kind {
	case TokLParen:
		if base.Kind != TokIdent {
			return nil, errf(base.Pos, "cannot construct builtin type %s", name)
		}
		args, err := p.callArgs()
		if err != nil {
			return nil, err
		}
		n.Args = args
		return n, nil
	case TokLBracket:
		p.next()
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBracket); err != nil {
			return nil, err
		}
		n.Len = l
		for p.cur().Kind == TokLBracket && p.peek().Kind == TokRBracket {
			p.next()
			p.next()
			n.ExtraDims++
		}
		return n, nil
	}
	return nil, errf(p.cur().Pos, "expected '(' or '[' after 'new %s'", name)
}
