package minijava_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/cfg"
	"repro/internal/minijava"
	"repro/internal/vm"
)

// run compiles and executes a MiniJava program, returning its output.
func run(t *testing.T, src string) string {
	t.Helper()
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	var out bytes.Buffer
	m, err := vm.New(prog, pcfg, vm.Options{Out: &out, MaxSteps: 50_000_000})
	if err != nil {
		t.Fatalf("vm: %v", err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v\noutput so far: %s", err, out.String())
	}
	return out.String()
}

func TestFibRecursive(t *testing.T) {
	got := run(t, `
class Main {
    static int fib(int n) {
        if (n < 2) { return n; }
        return fib(n - 1) + fib(n - 2);
    }
    static void main() {
        Sys.printlnInt(fib(20));
    }
}`)
	if got != "6765\n" {
		t.Errorf("fib(20) output = %q, want 6765", got)
	}
}

func TestVirtualDispatchAndInheritance(t *testing.T) {
	got := run(t, `
class Shape {
    float area() { return 0.0; }
    int id() { return 0; }
}
class Circle extends Shape {
    float r;
    void init(float radius) { r = radius; }
    float area() { return 3.0 * r * r; }
    int id() { return 1; }
}
class Square extends Shape {
    float s;
    void init(float side) { s = side; }
    float area() { return s * s; }
    int id() { return 2; }
}
class Main {
    static void main() {
        Shape[] shapes = new Shape[3];
        shapes[0] = new Shape();
        shapes[1] = new Circle(2.0);
        shapes[2] = new Square(3.0);
        float total = 0.0;
        int i = 0;
        while (i < shapes.length) {
            total = total + shapes[i].area();
            Sys.printInt(shapes[i].id());
            i = i + 1;
        }
        Sys.println();
        Sys.printlnFloat(total);
        if (shapes[1] instanceof Circle) { Sys.printlnInt(100); }
        if (shapes[1] instanceof Square) { Sys.printlnInt(200); }
        if (shapes[2] instanceof Shape) { Sys.printlnInt(300); }
    }
}`)
	want := "012\n21\n100\n300\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestArraysLoopsAndArithmetic(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        int[] a = new int[10];
        for (int i = 0; i < a.length; i = i + 1) { a[i] = i * i; }
        int sum = 0;
        for (int i = 0; i < a.length; i = i + 1) { sum = sum + a[i]; }
        Sys.printlnInt(sum);           // 285
        Sys.printlnInt(7 % 3);         // 1
        Sys.printlnInt(1 << 10);       // 1024
        Sys.printlnInt(-8 >> 1);       // -4
        Sys.printlnInt(5 & 3);         // 1
        Sys.printlnInt(5 | 2);         // 7
        Sys.printlnInt(5 ^ 1);         // 4
        Sys.printlnInt(-1 >>> 62);     // 3
        byte[] b = new byte[4];
        b[0] = 65; b[1] = 66; b[2] = 200; b[3] = 0;
        Sys.printlnInt(b[2]);          // 200
        float x = 2.0;
        Sys.printlnFloat(Sys.sqrt(x * 8.0));   // 4
        Sys.printlnInt(Sys.toInt(3.9));        // 3
        Sys.printlnFloat(Sys.toFloat(5) / 2.0); // 2.5
    }
}`)
	want := "285\n1\n1024\n-4\n1\n7\n4\n3\n200\n4\n3\n2.5\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestBooleansAndControlFlow(t *testing.T) {
	got := run(t, `
class Main {
    static boolean odd(int n) { return n % 2 == 1; }
    static void main() {
        int count = 0;
        for (int i = 0; i < 100; i = i + 1) {
            if (odd(i) && i > 50 || i == 2) { count = count + 1; }
        }
        Sys.printlnInt(count);   // odds in 51..99 = 25, plus i==2 -> 26
        boolean t = true;
        boolean f = !t;
        if (t != f) { Sys.printlnInt(1); }
        int n = 0;
        while (true) {
            n = n + 1;
            if (n >= 5) { break; }
        }
        Sys.printlnInt(n);
        int skipped = 0;
        for (int i = 0; i < 10; i = i + 1) {
            if (i % 2 == 0) { continue; }
            skipped = skipped + 1;
        }
        Sys.printlnInt(skipped);
    }
}`)
	want := "26\n1\n5\n5\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestStringsAndBytes(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        String s = "hello";
        Sys.printlnInt(s.length);
        Sys.printlnInt(Sys.strAt(s, 1));   // 'e' = 101
        byte[] b = Sys.strBytes(s);
        b[0] = 72;                          // 'H'
        Sys.printlnStr(Sys.bytesStr(b));
        Sys.printStr("a");
        Sys.printStr("b");
        Sys.println();
    }
}`)
	want := "5\n101\nHello\nab\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestFieldsStaticAndInstance(t *testing.T) {
	got := run(t, `
class Counter {
    static int total;
    int n;
    void bump() { n = n + 1; Counter.total = Counter.total + 1; }
}
class Main {
    static void main() {
        Counter a = new Counter();
        Counter b = new Counter();
        for (int i = 0; i < 3; i = i + 1) { a.bump(); }
        b.bump();
        Sys.printlnInt(a.n);
        Sys.printlnInt(b.n);
        Sys.printlnInt(Counter.total);
    }
}`)
	want := "3\n1\n4\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestTwoDimensionalArrays(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        float[][] m = new float[3][];
        for (int i = 0; i < 3; i = i + 1) {
            m[i] = new float[3];
            for (int j = 0; j < 3; j = j + 1) {
                m[i][j] = Sys.toFloat(i * 3 + j);
            }
        }
        float tr = m[0][0] + m[1][1] + m[2][2];
        Sys.printlnFloat(tr);
    }
}`)
	if got != "12\n" {
		t.Errorf("output = %q, want 12", got)
	}
}

func TestCompileErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"undefined variable", `class A { static void main() { x = 1; } }`, "undefined identifier"},
		{"type mismatch", `class A { static void main() { int x = 1.5; } }`, "cannot initialize"},
		{"bad condition", `class A { static void main() { if (1) {} } }`, "must be boolean"},
		{"missing return", `class A { static int f() { int x = 0; } static void main() {} }`, "without returning"},
		{"break outside loop", `class A { static void main() { break; } }`, "break outside loop"},
		{"dup class", `class A { static void main() {} } class A {}`, "duplicate class"},
		{"undefined class", `class A extends B { static void main() {} }`, "undefined class"},
		{"no main", `class A { }`, "no class declares"},
		{"bad override", `class A { int f() { return 1; } } class B extends A { float f() { return 1.0; } } class M { static void main() {} }`, "different signature"},
		{"arg count", `class A { static int f(int x) { return x; } static void main() { f(); } }`, "expects 1 arguments"},
		{"static this", `class A { int x; static void main() { Sys.printlnInt(x); } }`, "static method"},
		{"unknown builtin", `class A { static void main() { Sys.nope(); } }`, "unknown builtin"},
		{"reserved sys", `class Sys { static void main() {} }`, "reserved"},
		{"instanceof int", `class A { static void main() { boolean b = 1 instanceof A; } }`, "class reference"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := minijava.Compile(tc.src)
			if err == nil {
				t.Fatalf("compile succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %q, want it to contain %q", err, tc.want)
			}
		})
	}
}

func TestRuntimeTraps(t *testing.T) {
	cases := []struct {
		name, src string
		kind      vm.TrapKind
	}{
		{"div by zero", `class A { static void main() { int z = 0; Sys.printlnInt(1 / z); } }`, vm.TrapDivByZero},
		{"null field", `class P { int x; } class A { static void main() { P p = null; Sys.printlnInt(p.x); } }`, vm.TrapNullDeref},
		{"index oob", `class A { static void main() { int[] a = new int[2]; Sys.printlnInt(a[5]); } }`, vm.TrapIndexOOB},
		{"negative length", `class A { static void main() { int n = 0 - 3; int[] a = new int[n]; Sys.printlnInt(a.length); } }`, vm.TrapIndexOOB},
		{"null call", `class P { int f() { return 1; } } class A { static void main() { P p = null; Sys.printlnInt(p.f()); } }`, vm.TrapNullDeref},
		{"stack overflow", `class A { static int f(int n) { return f(n + 1); } static void main() { Sys.printlnInt(f(0)); } }`, vm.TrapStackOverflow},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prog, err := minijava.Compile(tc.src)
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			pcfg, err := cfg.BuildProgram(prog)
			if err != nil {
				t.Fatalf("cfg: %v", err)
			}
			m, err := vm.New(prog, pcfg, vm.Options{MaxSteps: 10_000_000})
			if err != nil {
				t.Fatalf("vm: %v", err)
			}
			err = m.Run()
			trap, ok := vm.AsTrap(err)
			if !ok {
				t.Fatalf("run error = %v, want a trap", err)
			}
			if trap.Kind != tc.kind {
				t.Errorf("trap kind = %v, want %v", trap.Kind, tc.kind)
			}
		})
	}
}

func TestConstructorConvention(t *testing.T) {
	got := run(t, `
class Point {
    int x; int y;
    void init(int ax, int ay) { x = ax; y = ay; }
    int dist2() { return x * x + y * y; }
}
class Main {
    static void main() {
        Point p = new Point(3, 4);
        Sys.printlnInt(p.dist2());
    }
}`)
	if got != "25\n" {
		t.Errorf("output = %q, want 25", got)
	}
}

func TestSwitchStatementDense(t *testing.T) {
	got := run(t, `
class Main {
    static int kind(int c) {
        switch (c) {
        case 0: return 100;
        case 1: case 2: return 200;
        case 3:
            break;           // exits the switch
        case 4: return 400;
        default: return -1;
        }
        return 300;          // reached via the break
    }
    static void main() {
        for (int i = 0 - 1; i <= 5; i = i + 1) {
            Sys.printlnInt(kind(i));
        }
    }
}`)
	want := "-1\n100\n200\n200\n300\n400\n-1\n"
	if got != want {
		t.Errorf("dense switch: %q, want %q", got, want)
	}
}

func TestSwitchStatementSparse(t *testing.T) {
	got := run(t, `
class Main {
    static int pick(int c) {
        int out = 0;
        switch (c) {
        case -1000: out = 1;
            break;
        case 0: out = 2;
            break;
        case 999999: out = 3;
            break;
        }
        return out;
    }
    static void main() {
        Sys.printlnInt(pick(0 - 1000));
        Sys.printlnInt(pick(0));
        Sys.printlnInt(pick(999999));
        Sys.printlnInt(pick(7));
    }
}`)
	if got != "1\n2\n3\n0\n" {
		t.Errorf("sparse switch: %q", got)
	}
}

func TestSwitchFallthrough(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        int acc = 0;
        switch (2) {
        case 1: acc = acc + 1;
        case 2: acc = acc + 10;
        case 3: acc = acc + 100;    // fallthrough from 2
            break;
        case 4: acc = acc + 1000;
        }
        Sys.printlnInt(acc);        // 110
    }
}`)
	if got != "110\n" {
		t.Errorf("fallthrough: %q", got)
	}
}

func TestSwitchInLoopWithContinue(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        int evens = 0;
        int others = 0;
        for (int i = 0; i < 10; i = i + 1) {
            switch (i % 3) {
            case 0:
                evens = evens + 1;
                break;
            default:
                others = others + 1;
            }
        }
        Sys.printlnInt(evens);
        Sys.printlnInt(others);
    }
}`)
	if got != "4\n6\n" {
		t.Errorf("switch in loop: %q", got)
	}
}

func TestSwitchErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class A { static void main() { switch (1.5) { } } }`, "must be int"},
		{`class A { static void main() { switch (1) { case 1: break; case 1: break; } } }`, "duplicate case"},
		{`class A { static void main() { switch (1) { default: break; case 1: break; } } }`, "last group"},
		{`class A { static void main() { switch (1) { case 9999999999: break; } } }`, "32-bit"},
		{`class A { static void main() { break; } }`, "break outside"},
	}
	for _, tc := range cases {
		_, err := minijava.Compile(tc.src)
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("compile %q: error %v, want %q", tc.src, err, tc.want)
		}
	}
}

func TestSwitchEmptyAndDegenerate(t *testing.T) {
	got := run(t, `
class Main {
    static void main() {
        switch (compute()) { }
        switch (5) { default: Sys.printlnInt(1); }
        Sys.printlnInt(2);
    }
    static int compute() { Sys.printlnInt(0); return 3; }
}`)
	if got != "0\n1\n2\n" {
		t.Errorf("degenerate switches: %q", got)
	}
}
