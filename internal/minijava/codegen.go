package minijava

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// Compile compiles MiniJava source to a linked program. The entry point is
// the unique static void main() method; use CompileWithEntry when several
// classes declare one.
func Compile(src string) (*classfile.Program, error) {
	return compile(src, "")
}

// CompileWithEntry compiles with an explicit entry class.
func CompileWithEntry(src, entryClass string) (*classfile.Program, error) {
	return compile(src, entryClass)
}

func compile(src, entryClass string) (*classfile.Program, error) {
	file, err := Parse(src)
	if err != nil {
		return nil, err
	}
	classes, err := analyze(file)
	if err != nil {
		return nil, err
	}
	if entryClass == "" {
		entryClass, err = findEntry(file, classes)
		if err != nil {
			return nil, err
		}
	} else {
		cs := classes[entryClass]
		if cs == nil {
			return nil, fmt.Errorf("minijava: entry class %q not found", entryClass)
		}
		if !isMain(cs.methods["main"]) {
			return nil, fmt.Errorf("minijava: class %q has no static void main()", entryClass)
		}
	}

	g := &codegen{b: classfile.NewBuilder(), classes: classes}
	g.emitSysClass()
	// Declare classes in source order for deterministic output.
	for _, cd := range file.Classes {
		g.declareClass(cd)
	}
	for _, cd := range file.Classes {
		for _, md := range cd.Methods {
			if err := g.genMethod(classes[cd.Name], md); err != nil {
				return nil, err
			}
		}
	}
	g.b.SetEntry(entryClass, "main")
	return g.b.Build()
}

func isMain(ms *methodSym) bool {
	return ms != nil && ms.static && ms.ret.Kind == KVoid && len(ms.params) == 0 && ms.name == "main"
}

func findEntry(file *File, classes map[string]*classSym) (string, error) {
	var found []string
	for _, cd := range file.Classes {
		if isMain(classes[cd.Name].methods["main"]) {
			found = append(found, cd.Name)
		}
	}
	switch len(found) {
	case 0:
		return "", fmt.Errorf("minijava: no class declares static void main()")
	case 1:
		return found[0], nil
	}
	sort.Strings(found)
	return "", fmt.Errorf("minijava: multiple main methods (%v); use CompileWithEntry", found)
}

type codegen struct {
	b       *classfile.Builder
	classes map[string]*classSym

	// Per-method state.
	enc               *bytecode.Encoder
	cur               *methodSym
	out               *classfile.Method // the method object being filled
	breakLbl          []*label
	contLbl           []*label
	lastWasTerminator bool
}

// method returns the classfile method under construction.
func (g *codegen) method() *classfile.Method { return g.out }

// label supports forward branch references.
type label struct {
	bound  bool
	pc     uint32
	fixups []uint32
}

func (g *codegen) newLabel() *label { return &label{} }

func (g *codegen) bind(l *label) {
	if l.bound {
		panic("minijava: label bound twice")
	}
	l.bound = true
	l.pc = g.enc.PC()
	for _, pc := range l.fixups {
		if err := g.enc.Fixup(pc, l.pc); err != nil {
			panic(err)
		}
	}
	l.fixups = nil
	g.lastWasTerminator = false
}

func (g *codegen) emit(in bytecode.Instr) {
	if _, err := g.enc.Emit(in); err != nil {
		panic(err)
	}
	// Calls are block terminators but still fall through to a return site,
	// so only returns, gotos, switches, and halt end the method's code.
	switch bytecode.InfoOf(in.Op).Flow {
	case bytecode.FlowReturn, bytecode.FlowGoto, bytecode.FlowSwitch, bytecode.FlowHalt:
		g.lastWasTerminator = true
	default:
		g.lastWasTerminator = false
	}
}

func (g *codegen) op(op bytecode.Op) { g.emit(bytecode.Instr{Op: op}) }

func (g *codegen) opA(op bytecode.Op, a int32) { g.emit(bytecode.Instr{Op: op, A: a}) }

// branch emits a branch instruction targeting l, recording a fixup if l is
// not yet bound.
func (g *codegen) branch(op bytecode.Op, l *label) {
	pc, err := g.enc.Emit(bytecode.Instr{Op: op, A: int32(l.pc)})
	if err != nil {
		panic(err)
	}
	if !l.bound {
		l.fixups = append(l.fixups, pc)
	}
	g.lastWasTerminator = true
}

// emitSysClass synthesizes the builtin class backing Sys.* calls.
func (g *codegen) emitSysClass() {
	cb := g.b.Class(sysClassName)
	names := make([]string, 0, len(sysBuiltins))
	for n := range sysBuiltins {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fn := sysBuiltins[n]
		if fn.native == "" {
			continue // intrinsics never become methods
		}
		params := make([]classfile.Type, len(fn.params))
		for i, p := range fn.params {
			params[i] = toClassfileType(p)
		}
		cb.NativeMethod(fn.name, params, toClassfileType(fn.ret), true, fn.native)
	}
}

func toClassfileType(t *Type) classfile.Type {
	switch t.Kind {
	case KVoid:
		return classfile.TVoid
	case KInt, KBool, KByte:
		return classfile.TInt
	case KFloat:
		return classfile.TFloat
	default:
		return classfile.TRef
	}
}

func (g *codegen) declareClass(cd *ClassDecl) {
	cb := g.b.Class(cd.Name)
	if cd.Super != "" {
		cb.Extends(cd.Super)
	}
	cs := g.classes[cd.Name]
	for _, fd := range cd.Fields {
		f := cs.fields[fd.Name]
		if fd.Static {
			cb.StaticField(fd.Name, toClassfileType(f.typ))
		} else {
			cb.Field(fd.Name, toClassfileType(f.typ))
		}
	}
}

func (g *codegen) genMethod(cs *classSym, md *MethodDecl) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(error); ok {
				err = fmt.Errorf("minijava: codegen %s.%s: %w", cs.name, md.Name, e)
				return
			}
			panic(r)
		}
	}()

	ms := cs.methods[md.Name]
	cb := g.b.Class(cs.name)
	params := make([]classfile.Type, len(ms.params))
	for i, p := range ms.params {
		params[i] = toClassfileType(p)
	}
	m := cb.Method(md.Name, params, toClassfileType(ms.ret), md.Static)
	m.MaxLocals = md.maxSlots
	if m.MaxLocals < m.NArgs() {
		m.MaxLocals = m.NArgs()
	}

	g.enc = bytecode.NewEncoder()
	g.cur = ms
	g.out = m
	g.breakLbl = nil
	g.contLbl = nil
	g.lastWasTerminator = false

	g.genBlock(md.Body)

	// Guarantee the method cannot fall off its code. For void methods this
	// is the implicit return; for value methods the checker proved every
	// path returns, so the epilogue is unreachable filler that satisfies
	// the structural validator.
	if !g.lastWasTerminator {
		switch ms.ret.Kind {
		case KVoid:
			g.op(bytecode.ReturnVoid)
		case KFloat:
			g.emit(bytecode.Instr{Op: bytecode.FConst})
			g.op(bytecode.FReturn)
		case KInt, KBool:
			g.opA(bytecode.IConst, 0)
			g.op(bytecode.IReturn)
		default:
			g.op(bytecode.AConstNull)
			g.op(bytecode.AReturn)
		}
	}
	m.Code = g.enc.Bytes()
	return nil
}

func (g *codegen) genBlock(b *Block) {
	for _, s := range b.Stmts {
		g.genStmt(s)
	}
}

func (g *codegen) genStmt(s Stmt) {
	switch st := s.(type) {
	case *Block:
		g.genBlock(st)
	case *VarDecl:
		if st.Init != nil {
			g.genExprConv(st.Init, st.local.typ)
			g.storeLocal(st.local)
		}
	case *If:
		thenL, elseL, endL := g.newLabel(), g.newLabel(), g.newLabel()
		g.genCond(st.Cond, thenL, elseL)
		g.bind(thenL)
		g.genStmt(st.Then)
		if st.Else != nil {
			g.branch(bytecode.Goto, endL)
			g.bind(elseL)
			g.genStmt(st.Else)
			g.bind(endL)
		} else {
			g.bind(elseL)
		}
	case *While:
		startL, bodyL, endL := g.newLabel(), g.newLabel(), g.newLabel()
		g.bind(startL)
		g.genCond(st.Cond, bodyL, endL)
		g.bind(bodyL)
		g.pushLoop(endL, startL)
		g.genStmt(st.Body)
		g.popLoop()
		g.branch(bytecode.Goto, startL)
		g.bind(endL)
	case *For:
		if st.Init != nil {
			g.genStmt(st.Init)
		}
		startL, bodyL, contL, endL := g.newLabel(), g.newLabel(), g.newLabel(), g.newLabel()
		g.bind(startL)
		if st.Cond != nil {
			g.genCond(st.Cond, bodyL, endL)
			g.bind(bodyL)
		} else {
			g.bind(bodyL)
		}
		g.pushLoop(endL, contL)
		g.genStmt(st.Body)
		g.popLoop()
		g.bind(contL)
		if st.Post != nil {
			g.genStmt(st.Post)
		}
		g.branch(bytecode.Goto, startL)
		g.bind(endL)
	case *Return:
		if st.Val == nil {
			g.op(bytecode.ReturnVoid)
			return
		}
		g.genExprConv(st.Val, g.cur.ret)
		switch g.cur.ret.Kind {
		case KFloat:
			g.op(bytecode.FReturn)
		case KInt, KBool:
			g.op(bytecode.IReturn)
		default:
			g.op(bytecode.AReturn)
		}
	case *Break:
		g.branch(bytecode.Goto, g.breakLbl[len(g.breakLbl)-1])
	case *Continue:
		g.branch(bytecode.Goto, g.contLbl[len(g.contLbl)-1])
	case *Switch:
		g.genSwitch(st)
	case *Throw:
		g.genExpr(st.X)
		g.op(bytecode.Throw)
	case *Try:
		// Layout: [start] body [end] goto done; handler: astore var; catch;
		// done: — the protected range covers exactly the body's code.
		start := g.enc.PC()
		g.genBlock(st.Body)
		end := g.enc.PC()
		doneL, handlerL := g.newLabel(), g.newLabel()
		if !g.lastWasTerminator {
			g.branch(bytecode.Goto, doneL)
		}
		g.bind(handlerL)
		handlerPC := handlerL.pc
		g.opA(bytecode.AStore, int32(st.catchLocal.slot))
		g.genBlock(st.Catch)
		g.bind(doneL)
		if start != end {
			g.method().Handlers = append(g.method().Handlers, classfile.Handler{
				StartPC:   start,
				EndPC:     end,
				HandlerPC: handlerPC,
				ClassIdx:  int32(g.b.ClassIndex(st.catchSym.name)),
			})
		}
	case *ExprStmt:
		g.genExpr(st.E)
		if t := TypeOf(st.E); t != nil && t.Kind != KVoid {
			g.op(bytecode.Pop)
		}
	case *Assign:
		g.genAssign(st)
	default:
		panic(fmt.Errorf("unknown statement %T", s))
	}
}

// genSwitch emits a tableswitch when the labels are dense and a
// lookupswitch otherwise; case bodies fall through in source order, and
// break branches to the end label.
func (g *codegen) genSwitch(st *Switch) {
	g.genExpr(st.Tag)

	endL := g.newLabel()
	defaultL := endL
	if st.Default != nil {
		defaultL = g.newLabel()
	}
	groupL := make([]*label, len(st.Cases))
	for i := range st.Cases {
		groupL[i] = g.newLabel()
	}

	// Gather labels and decide the encoding.
	var minV, maxV int64
	count := 0
	valueGroup := map[int64]int{}
	for gi, grp := range st.Cases {
		for _, v := range grp.Vals {
			if count == 0 || v < minV {
				minV = v
			}
			if count == 0 || v > maxV {
				maxV = v
			}
			valueGroup[v] = gi
			count++
		}
	}

	var swPC uint32
	var tableLen int
	var lookupKeys []int32
	useTable := false
	if count > 0 {
		span := maxV - minV + 1
		useTable = span <= int64(2*count+8) && span <= 1024
	}
	if count == 0 {
		// Degenerate: no cases; the tag is popped, control goes to default.
		g.op(bytecode.Pop)
		if st.Default != nil {
			g.bind(defaultL)
			for _, s := range st.Default {
				g.genStmt(s)
			}
		}
		g.bind(endL)
		return
	}
	if useTable {
		tableLen = int(maxV - minV + 1)
		pc, err := g.enc.Emit(bytecode.Instr{
			Op:      bytecode.TableSwitch,
			A:       int32(minV),
			Targets: make([]uint32, tableLen),
		})
		if err != nil {
			panic(err)
		}
		swPC = pc
	} else {
		keys := make([]int32, 0, count)
		for v := range valueGroup {
			keys = append(keys, int32(v))
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		pc, err := g.enc.Emit(bytecode.Instr{
			Op:      bytecode.LookupSwitch,
			Keys:    keys,
			Targets: make([]uint32, len(keys)),
		})
		if err != nil {
			panic(err)
		}
		swPC = pc
		lookupKeys = keys
	}
	g.lastWasTerminator = true

	// Bodies in source order, with fallthrough.
	g.breakLbl = append(g.breakLbl, endL)
	for gi, grp := range st.Cases {
		g.bind(groupL[gi])
		for _, s := range grp.Body {
			g.genStmt(s)
		}
	}
	if st.Default != nil {
		g.bind(defaultL)
		for _, s := range st.Default {
			g.genStmt(s)
		}
	}
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.bind(endL)

	// Patch the switch targets now that every label is bound.
	if err := g.enc.FixupSwitchTarget(swPC, -1, defaultL.pc); err != nil {
		panic(err)
	}
	if useTable {
		for slot := 0; slot < tableLen; slot++ {
			v := minV + int64(slot)
			target := defaultL.pc
			if gi, ok := valueGroup[v]; ok {
				target = groupL[gi].pc
			}
			if err := g.enc.FixupSwitchTarget(swPC, slot, target); err != nil {
				panic(err)
			}
		}
	} else {
		for i, k := range lookupKeys {
			gi := valueGroup[int64(k)]
			if err := g.enc.FixupSwitchTarget(swPC, i, groupL[gi].pc); err != nil {
				panic(err)
			}
		}
	}
}

func (g *codegen) pushLoop(brk, cont *label) {
	g.breakLbl = append(g.breakLbl, brk)
	g.contLbl = append(g.contLbl, cont)
}

func (g *codegen) popLoop() {
	g.breakLbl = g.breakLbl[:len(g.breakLbl)-1]
	g.contLbl = g.contLbl[:len(g.contLbl)-1]
}

func (g *codegen) storeLocal(lv *localVar) {
	switch {
	case lv.typ.IsRef():
		g.opA(bytecode.AStore, int32(lv.slot))
	case lv.typ.Kind == KFloat:
		g.opA(bytecode.FStore, int32(lv.slot))
	default:
		g.opA(bytecode.IStore, int32(lv.slot))
	}
}

func (g *codegen) loadLocal(lv *localVar) {
	switch {
	case lv.typ.IsRef():
		g.opA(bytecode.ALoad, int32(lv.slot))
	case lv.typ.Kind == KFloat:
		g.opA(bytecode.FLoad, int32(lv.slot))
	default:
		g.opA(bytecode.ILoad, int32(lv.slot))
	}
}

func (g *codegen) genAssign(st *Assign) {
	rhsType := TypeOf(st.RHS)
	switch lhs := st.LHS.(type) {
	case *Ident:
		switch {
		case lhs.Local != nil:
			// Integer increment pattern: i = i + k compiles to iinc.
			if g.tryIInc(lhs, st.RHS) {
				return
			}
			g.genExprConv(st.RHS, lhs.Local.typ)
			g.storeLocal(lhs.Local)
		case lhs.Field != nil && lhs.Field.static:
			g.genExprConv(st.RHS, lhs.Field.typ)
			g.opA(bytecode.PutStatic, int32(g.b.FieldRef(lhs.Field.class.name, lhs.Field.name, true)))
		case lhs.Field != nil:
			g.opA(bytecode.ALoad, 0) // this
			g.genExprConv(st.RHS, lhs.Field.typ)
			g.opA(bytecode.PutField, int32(g.b.FieldRef(lhs.Field.class.name, lhs.Field.name, false)))
		default:
			panic(fmt.Errorf("unresolved assignment target %q", lhs.Name))
		}
	case *FieldAccess:
		f := lhs.field
		if f.static {
			g.genExprConv(st.RHS, f.typ)
			g.opA(bytecode.PutStatic, int32(g.b.FieldRef(f.class.name, f.name, true)))
			return
		}
		g.genExpr(lhs.X)
		g.genExprConv(st.RHS, f.typ)
		g.opA(bytecode.PutField, int32(g.b.FieldRef(f.class.name, f.name, false)))
	case *Index:
		arrType := TypeOf(lhs.X)
		g.genExpr(lhs.X)
		g.genExpr(lhs.I)
		elem := arrType.Elem
		// Element conversions: int literals into float arrays, etc.
		switch elem.Kind {
		case KFloat:
			g.genExprConv(st.RHS, tFloat)
			g.op(bytecode.FAStore)
		case KByte:
			g.genExprConv(st.RHS, tInt)
			g.op(bytecode.BAStore)
		case KInt, KBool:
			g.genExprConv(st.RHS, tInt)
			g.op(bytecode.IAStore)
		default:
			g.genExpr(st.RHS)
			g.op(bytecode.AAStore)
		}
		_ = rhsType
	default:
		panic(fmt.Errorf("unknown assignment target %T", st.LHS))
	}
}

// tryIInc emits iinc for "i = i + k" / "i = i - k" on int locals.
func (g *codegen) tryIInc(lhs *Ident, rhs Expr) bool {
	if lhs.Local.typ.Kind != KInt {
		return false
	}
	bin, ok := rhs.(*Binary)
	if !ok || (bin.Op != TokPlus && bin.Op != TokMinus) {
		return false
	}
	id, ok := bin.L.(*Ident)
	if !ok || id.Local != lhs.Local {
		return false
	}
	lit, ok := bin.R.(*IntLit)
	if !ok {
		return false
	}
	delta := lit.Val
	if bin.Op == TokMinus {
		delta = -delta
	}
	if delta < -1<<15 || delta >= 1<<15 {
		return false
	}
	g.emit(bytecode.Instr{Op: bytecode.IInc, A: int32(lhs.Local.slot), B: int32(delta)})
	return true
}

// genExprConv generates e and widens int to float when want requires it.
func (g *codegen) genExprConv(e Expr, want *Type) {
	g.genExpr(e)
	if t := TypeOf(e); t != nil && t.Kind == KInt && want.Kind == KFloat {
		g.op(bytecode.I2F)
	}
}

func (g *codegen) genExpr(e Expr) {
	switch x := e.(type) {
	case *IntLit:
		g.emitIntConst(x.Val)
	case *FloatLit:
		g.emit(bytecode.Instr{Op: bytecode.FConst, F: x.Val})
	case *StrLit:
		g.opA(bytecode.SConst, int32(g.b.String(x.Val)))
	case *BoolLit:
		if x.Val {
			g.opA(bytecode.IConst, 1)
		} else {
			g.opA(bytecode.IConst, 0)
		}
	case *NullLit:
		g.op(bytecode.AConstNull)
	case *This:
		g.opA(bytecode.ALoad, 0)
	case *Ident:
		switch {
		case x.Local != nil:
			g.loadLocal(x.Local)
		case x.Field != nil && x.Field.static:
			g.opA(bytecode.GetStatic, int32(g.b.FieldRef(x.Field.class.name, x.Field.name, true)))
		case x.Field != nil:
			g.opA(bytecode.ALoad, 0)
			g.opA(bytecode.GetField, int32(g.b.FieldRef(x.Field.class.name, x.Field.name, false)))
		default:
			panic(fmt.Errorf("identifier %q evaluated as a value", x.Name))
		}
	case *Unary:
		switch x.Op {
		case TokMinus:
			g.genExpr(x.X)
			if TypeOf(x.X).Kind == KFloat {
				g.op(bytecode.FNeg)
			} else {
				g.op(bytecode.INeg)
			}
		case TokNot:
			g.materializeCond(x)
		}
	case *Binary:
		g.genBinary(x)
	case *InstanceOf:
		g.genExpr(x.X)
		g.opA(bytecode.InstanceOf, int32(g.b.ClassIndex(x.classSym.name)))
	case *Call:
		g.genCall(x)
	case *FieldAccess:
		if x.isLength {
			g.genExpr(x.X)
			g.op(bytecode.ArrayLength)
			return
		}
		if x.field.static {
			g.opA(bytecode.GetStatic, int32(g.b.FieldRef(x.field.class.name, x.field.name, true)))
			return
		}
		g.genExpr(x.X)
		g.opA(bytecode.GetField, int32(g.b.FieldRef(x.field.class.name, x.field.name, false)))
	case *Index:
		g.genExpr(x.X)
		g.genExpr(x.I)
		switch TypeOf(x.X).Elem.Kind {
		case KFloat:
			g.op(bytecode.FALoad)
		case KByte:
			g.op(bytecode.BALoad)
		case KInt, KBool:
			g.op(bytecode.IALoad)
		default:
			g.op(bytecode.AALoad)
		}
	case *New:
		g.genNew(x)
	default:
		panic(fmt.Errorf("unknown expression %T", e))
	}
}

func (g *codegen) emitIntConst(v int64) {
	if v >= -1<<31 && v < 1<<31 {
		g.opA(bytecode.IConst, int32(v))
		return
	}
	// 64-bit constant: (hi << 32) | (lo32 as unsigned).
	hi := int32(v >> 32)
	lo := uint32(v)
	g.opA(bytecode.IConst, hi)
	g.opA(bytecode.IConst, 32)
	g.op(bytecode.IShl)
	g.opA(bytecode.IConst, int32(lo>>16))
	g.opA(bytecode.IConst, 16)
	g.op(bytecode.IShl)
	g.opA(bytecode.IConst, int32(lo&0xffff))
	g.op(bytecode.IOr)
	g.op(bytecode.IOr)
}

func (g *codegen) genBinary(x *Binary) {
	switch x.Op {
	case TokPlus, TokMinus, TokStar, TokSlash, TokPercent:
		res := x.typ
		g.genExprConv(x.L, res)
		g.genExprConv(x.R, res)
		ops := map[TokKind][2]bytecode.Op{
			TokPlus:    {bytecode.IAdd, bytecode.FAdd},
			TokMinus:   {bytecode.ISub, bytecode.FSub},
			TokStar:    {bytecode.IMul, bytecode.FMul},
			TokSlash:   {bytecode.IDiv, bytecode.FDiv},
			TokPercent: {bytecode.IRem, bytecode.FRem},
		}[x.Op]
		if res.Kind == KFloat {
			g.op(ops[1])
		} else {
			g.op(ops[0])
		}
	case TokShl, TokShr, TokUshr, TokAmp, TokPipe, TokCaret:
		g.genExpr(x.L)
		g.genExpr(x.R)
		g.op(map[TokKind]bytecode.Op{
			TokShl: bytecode.IShl, TokShr: bytecode.IShr, TokUshr: bytecode.IUshr,
			TokAmp: bytecode.IAnd, TokPipe: bytecode.IOr, TokCaret: bytecode.IXor,
		}[x.Op])
	default:
		// Comparisons and logical operators produce a materialized boolean.
		g.materializeCond(x)
	}
}

// materializeCond evaluates a boolean expression to 0/1 on the stack.
func (g *codegen) materializeCond(e Expr) {
	trueL, falseL, endL := g.newLabel(), g.newLabel(), g.newLabel()
	g.genCond(e, trueL, falseL)
	g.bind(trueL)
	g.opA(bytecode.IConst, 1)
	g.branch(bytecode.Goto, endL)
	g.bind(falseL)
	g.opA(bytecode.IConst, 0)
	g.bind(endL)
}

// genCond compiles a boolean expression as control flow: it always branches
// to trueL or falseL and never falls through. Conditional contexts (if,
// while, &&) use it directly so comparisons compile to single branch
// instructions, the shape the interpreter's block dispatch profile expects.
func (g *codegen) genCond(e Expr, trueL, falseL *label) {
	switch x := e.(type) {
	case *BoolLit:
		if x.Val {
			g.branch(bytecode.Goto, trueL)
		} else {
			g.branch(bytecode.Goto, falseL)
		}
		return
	case *Unary:
		if x.Op == TokNot {
			g.genCond(x.X, falseL, trueL)
			return
		}
	case *Binary:
		switch x.Op {
		case TokAndAnd:
			mid := g.newLabel()
			g.genCond(x.L, mid, falseL)
			g.bind(mid)
			g.genCond(x.R, trueL, falseL)
			return
		case TokOrOr:
			mid := g.newLabel()
			g.genCond(x.L, trueL, mid)
			g.bind(mid)
			g.genCond(x.R, trueL, falseL)
			return
		case TokLt, TokLe, TokGt, TokGe, TokEq, TokNe:
			g.genCompare(x, trueL, falseL)
			return
		}
	}
	// Generic boolean value: branch on nonzero.
	g.genExpr(e)
	g.branch(bytecode.IfNe, trueL)
	g.branch(bytecode.Goto, falseL)
}

func (g *codegen) genCompare(x *Binary, trueL, falseL *label) {
	lt, rt := TypeOf(x.L), TypeOf(x.R)

	// Reference equality.
	if (x.Op == TokEq || x.Op == TokNe) && lt.IsRef() && rt.IsRef() {
		g.genExpr(x.L)
		g.genExpr(x.R)
		if x.Op == TokEq {
			g.branch(bytecode.IfACmpEq, trueL)
		} else {
			g.branch(bytecode.IfACmpNe, trueL)
		}
		g.branch(bytecode.Goto, falseL)
		return
	}

	// Boolean equality compiles as integer equality.
	isFloat := lt.Kind == KFloat || rt.Kind == KFloat
	if isFloat {
		g.genExprConv(x.L, tFloat)
		g.genExprConv(x.R, tFloat)
		// NaN must compare false: pick the fcmp variant that pushes the
		// failing value for the subsequent test, as javac does.
		var cmp bytecode.Op
		switch x.Op {
		case TokLt, TokLe:
			cmp = bytecode.FCmpG
		default:
			cmp = bytecode.FCmpL
		}
		g.op(cmp)
		g.branch(map[TokKind]bytecode.Op{
			TokLt: bytecode.IfLt, TokLe: bytecode.IfLe,
			TokGt: bytecode.IfGt, TokGe: bytecode.IfGe,
			TokEq: bytecode.IfEq, TokNe: bytecode.IfNe,
		}[x.Op], trueL)
		g.branch(bytecode.Goto, falseL)
		return
	}

	g.genExpr(x.L)
	g.genExpr(x.R)
	g.branch(map[TokKind]bytecode.Op{
		TokLt: bytecode.IfICmpLt, TokLe: bytecode.IfICmpLe,
		TokGt: bytecode.IfICmpGt, TokGe: bytecode.IfICmpGe,
		TokEq: bytecode.IfICmpEq, TokNe: bytecode.IfICmpNe,
	}[x.Op], trueL)
	g.branch(bytecode.Goto, falseL)
}

func (g *codegen) genCall(x *Call) {
	if x.builtin != nil {
		for i, a := range x.Args {
			g.genExprConv(a, x.builtin.params[i])
		}
		switch x.builtin.intrinsic {
		case "i2f":
			g.op(bytecode.I2F)
			return
		case "f2i":
			g.op(bytecode.F2I)
			return
		}
		g.opA(bytecode.InvokeStatic, int32(g.b.MethodRef(sysClassName, x.builtin.name, classfile.RefStatic)))
		return
	}

	ms := x.method
	if ms.static {
		for i, a := range x.Args {
			g.genExprConv(a, ms.params[i])
		}
		g.opA(bytecode.InvokeStatic, int32(g.b.MethodRef(ms.class.name, ms.name, classfile.RefStatic)))
		return
	}

	// Instance call: receiver first.
	if x.Recv != nil {
		g.genExpr(x.Recv)
	} else {
		g.opA(bytecode.ALoad, 0) // implicit this
	}
	for i, a := range x.Args {
		g.genExprConv(a, ms.params[i])
	}
	g.opA(bytecode.InvokeVirtual, int32(g.b.MethodRef(ms.class.name, ms.name, classfile.RefVirtual)))
}

func (g *codegen) genNew(x *New) {
	if x.Len != nil {
		g.genExpr(x.Len)
		elem := x.typ.Elem
		var kind int32
		switch elem.Kind {
		case KInt, KBool:
			kind = bytecode.ElemInt
		case KFloat:
			kind = bytecode.ElemFloat
		case KByte:
			kind = bytecode.ElemByte
		default:
			kind = bytecode.ElemRef
		}
		g.emit(bytecode.Instr{Op: bytecode.NewArray, A: kind})
		return
	}
	g.opA(bytecode.New, int32(g.b.ClassIndex(x.classSym.name)))
	if x.ctor != nil {
		g.op(bytecode.Dup)
		for i, a := range x.Args {
			g.genExprConv(a, x.ctor.params[i])
		}
		g.opA(bytecode.InvokeSpecial, int32(g.b.MethodRef(x.ctor.class.name, x.ctor.name, classfile.RefSpecial)))
	}
}
