package minijava

import (
	"strings"
	"testing"
	"testing/quick"
)

func kinds(t *testing.T, src string) []TokKind {
	t.Helper()
	toks, err := lexAll(src)
	if err != nil {
		t.Fatalf("lex %q: %v", src, err)
	}
	out := make([]TokKind, len(toks))
	for i, tok := range toks {
		out[i] = tok.Kind
	}
	return out
}

func TestLexKeywordsAndIdents(t *testing.T) {
	got := kinds(t, "class Foo extends Bar { static int x ; }")
	want := []TokKind{TokClass, TokIdent, TokExtends, TokIdent, TokLBrace,
		TokStatic, TokInt, TokIdent, TokSemi, TokRBrace, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexOperators(t *testing.T) {
	src := "+ - * / % ! < > <= >= == != && || & | ^ << >> >>> = . , ;"
	want := []TokKind{TokPlus, TokMinus, TokStar, TokSlash, TokPercent, TokNot,
		TokLt, TokGt, TokLe, TokGe, TokEq, TokNe, TokAndAnd, TokOrOr,
		TokAmp, TokPipe, TokCaret, TokShl, TokShr, TokUshr, TokAssign,
		TokDot, TokComma, TokSemi, TokEOF}
	got := kinds(t, src)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := lexAll("0 42 123456789 3.5 0.25 1e3 2.5e-2 0x1f 0xFF")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Int != 0 || toks[1].Int != 42 || toks[2].Int != 123456789 {
		t.Error("int literals wrong")
	}
	if toks[3].Kind != TokFloatLit || toks[3].Flt != 3.5 {
		t.Errorf("3.5 lexed as %v %v", toks[3].Kind, toks[3].Flt)
	}
	if toks[5].Kind != TokFloatLit || toks[5].Flt != 1000 {
		t.Errorf("1e3 = %v", toks[5].Flt)
	}
	if toks[6].Flt != 0.025 {
		t.Errorf("2.5e-2 = %v", toks[6].Flt)
	}
	if toks[7].Kind != TokIntLit || toks[7].Int != 31 {
		t.Errorf("0x1f = %v", toks[7].Int)
	}
	if toks[8].Int != 255 {
		t.Errorf("0xFF = %v", toks[8].Int)
	}
}

func TestLexDotAfterNumber(t *testing.T) {
	// "a.length" after a number: 3.foo must not absorb the dot as a float.
	toks, err := lexAll("x[3].length")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokKind{TokIdent, TokLBracket, TokIntLit, TokRBracket, TokDot, TokIdent, TokEOF}
	for i, k := range want {
		if toks[i].Kind != k {
			t.Errorf("token %d = %v, want %v", i, toks[i].Kind, k)
		}
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := lexAll(`"plain" "a\tb" "q\"x" "nl\n" "\\"`)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"plain", "a\tb", `q"x`, "nl\n", `\`}
	for i, w := range want {
		if toks[i].Kind != TokStrLit || toks[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestLexComments(t *testing.T) {
	got := kinds(t, `
// line comment with class keyword
x /* block
   spanning lines */ y
`)
	want := []TokKind{TokIdent, TokIdent, TokEOF}
	if len(got) != len(want) {
		t.Fatalf("kinds = %v", got)
	}
}

func TestLexErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		"@",
		`"newline
in string"`,
		"/* unterminated block",
	}
	for _, src := range cases {
		if _, err := lexAll(src); err == nil {
			t.Errorf("lexing %q succeeded", src)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := lexAll("a\n  b")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

// TestPropertyLexerNeverPanics: arbitrary byte soup either lexes or errors,
// never panics or loops.
func TestPropertyLexerNeverPanics(t *testing.T) {
	f := func(src string) bool {
		if len(src) > 4096 {
			src = src[:4096]
		}
		toks, err := lexAll(src)
		if err != nil {
			return true
		}
		return len(toks) > 0 && toks[len(toks)-1].Kind == TokEOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestParserPrecedence(t *testing.T) {
	// 1 + 2 * 3 must parse as 1 + (2 * 3): evaluate through the VM-free
	// route by checking AST shape.
	file, err := Parse(`class A { static void main() { int x = 1 + 2 * 3; } }`)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Classes[0].Methods[0].Body.Stmts[0].(*VarDecl)
	add, ok := decl.Init.(*Binary)
	if !ok || add.Op != TokPlus {
		t.Fatalf("top is %T, want + binary", decl.Init)
	}
	mul, ok := add.R.(*Binary)
	if !ok || mul.Op != TokStar {
		t.Fatalf("right is %T/%v, want *", add.R, add)
	}
}

func TestParserAssociativity(t *testing.T) {
	file, err := Parse(`class A { static void main() { int x = 10 - 3 - 2; } }`)
	if err != nil {
		t.Fatal(err)
	}
	decl := file.Classes[0].Methods[0].Body.Stmts[0].(*VarDecl)
	outer := decl.Init.(*Binary)
	if outer.Op != TokMinus {
		t.Fatal("not minus")
	}
	if _, ok := outer.L.(*Binary); !ok {
		t.Error("subtraction is not left associative")
	}
}

func TestParserShiftVsGenerics(t *testing.T) {
	// >> must lex as one token and parse in expressions.
	file, err := Parse(`class A { static void main() { int x = 256 >> 2 >>> 1 << 3; } }`)
	if err != nil {
		t.Fatal(err)
	}
	_ = file
}

func TestParserDanglingElse(t *testing.T) {
	file, err := Parse(`class A { static void main() {
        if (true) if (false) Sys.println(); else Sys.println();
    } }`)
	if err != nil {
		t.Fatal(err)
	}
	outer := file.Classes[0].Methods[0].Body.Stmts[0].(*If)
	if outer.Else != nil {
		t.Error("else bound to the outer if; must bind to the inner")
	}
	inner := outer.Then.(*If)
	if inner.Else == nil {
		t.Error("inner if lost its else")
	}
}

func TestParserErrors(t *testing.T) {
	cases := []struct{ src, want string }{
		{`class`, "expected identifier"},
		{`class A {`, "expected"},
		{`class A { static void main() { int 3x; } }`, "expected"},
		{`class A { static void main() { if true {} } }`, "expected '('"},
		{`class A { static void main() { x = ; } }`, "expected an expression"},
		{`class A { static void main() { 1 + 2 = 3; } }`, "not assignable"},
		{`class A { static void main() { new int(); } }`, "cannot construct builtin"},
		{`class A { static void main() { new Foo; } }`, "expected '(' or '['"},
		{``, "no classes"},
		{`class A { void f() { return } }`, "expected"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src)
		if err == nil {
			t.Errorf("parse %q succeeded, want %q", tc.src, tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("parse %q: error %q missing %q", tc.src, err, tc.want)
		}
	}
}

func TestParserArrayTypesAndNews(t *testing.T) {
	file, err := Parse(`class A {
        int[][] grid;
        static void main() {
            float[][] m = new float[4][];
            byte[] b = new byte[10];
            A[] objs = new A[2];
        }
    }`)
	if err != nil {
		t.Fatal(err)
	}
	f := file.Classes[0].Fields[0]
	if f.Type.Dims != 2 || f.Type.Name != "int" {
		t.Errorf("grid type = %+v", f.Type)
	}
	m := file.Classes[0].Methods[0].Body.Stmts[0].(*VarDecl)
	n := m.Init.(*New)
	if n.TypeName != "float" || n.ExtraDims != 1 {
		t.Errorf("new float[4][] parsed as %+v", n)
	}
}

// TestPropertyParserNeverPanics: the parser returns errors, not panics, on
// fuzzed token soup built from valid lexemes.
func TestPropertyParserNeverPanics(t *testing.T) {
	pieces := []string{"class", "A", "{", "}", "(", ")", "static", "void",
		"main", "int", "x", "=", "1", "+", ";", "if", "while", "return",
		"new", "[", "]", ".", "foo", `"s"`, "2.5", "!", "&&"}
	f := func(picks []uint8) bool {
		var sb strings.Builder
		for _, p := range picks {
			sb.WriteString(pieces[int(p)%len(pieces)])
			sb.WriteByte(' ')
		}
		_, err := Parse(sb.String())
		_ = err // any outcome but a panic is fine
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 800}); err != nil {
		t.Error(err)
	}
}
