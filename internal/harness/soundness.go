package harness

import (
	"fmt"
	"io"
	"math"
	"sync"

	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/trace"
	"repro/internal/vm"
)

// This file is the soundness harness for the value-flow analysis: every
// static claim the analysis makes is universally quantified over dynamic
// execution, so each one is differentially checked against the live machine.
// A FactChecker rides the VM's block-entry probe and compares the fact
// table's claims with the actual frame state; CheckTraces cross-checks the
// guard proofs stamped onto traces against the dispatch engine's side-exit
// accounting. A single mismatch is a false proof — an analysis bug — and
// fails the harness.

// maxViolations bounds how many violation messages are retained verbatim;
// beyond it only the count grows (one analysis bug tends to fire on every
// loop iteration).
const maxViolations = 16

// FactChecker is a vm.Probe that checks value-flow claims at every executed
// block entry. It is safe for concurrent probes (one machine probes
// serially, but a checker may be shared across sessions in tests).
type FactChecker struct {
	facts *valueflow.Facts

	mu         sync.Mutex
	checks     int64
	violations []string
	dropped    int64

	// Decided-branch checking: when the previous probed block's terminator
	// was statically decided, the very next probe must land on the decided
	// successor (conditionals and switches never push frames, and traps
	// abort the run, so there is no probe in between).
	haveExpect bool
	expectFrom cfg.BlockID
	expect     cfg.BlockID
}

// NewFactChecker builds a checker over a fact table. A nil or top table
// yields a checker that never flags anything (the table claims nothing).
func NewFactChecker(facts *valueflow.Facts) *FactChecker {
	return &FactChecker{facts: facts}
}

func (c *FactChecker) violate(format string, args ...any) {
	if len(c.violations) < maxViolations {
		c.violations = append(c.violations, fmt.Sprintf(format, args...))
	} else {
		c.dropped++
	}
}

// Probe is the vm.Probe hook. The locals and stack slices alias the live
// frame and are only read.
func (c *FactChecker) Probe(b *cfg.Block, locals, stack []vm.Value) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.haveExpect {
		want, from := c.expect, c.expectFrom
		c.haveExpect = false
		if b.ID != want {
			c.violate("block %d: decided successor is %d, execution took %d", from, want, b.ID)
		}
	}
	bf := c.facts.Block(b.ID)
	if bf == nil {
		return
	}
	c.checks++
	if !bf.Reachable {
		c.violate("block %d executed but proven unreachable", b.ID)
	}
	for _, ic := range bf.IntConsts {
		if int(ic.Slot) >= len(locals) {
			c.violate("block %d: const claim on slot %d outside frame of %d locals", b.ID, ic.Slot, len(locals))
		} else if got := locals[ic.Slot].N; got != ic.Val {
			c.violate("block %d: slot %d proven %d, holds %d", b.ID, ic.Slot, ic.Val, got)
		}
	}
	for _, fc := range bf.FloatConsts {
		if int(fc.Slot) >= len(locals) {
			c.violate("block %d: float claim on slot %d outside frame of %d locals", b.ID, fc.Slot, len(locals))
		} else if got := uint64(locals[fc.Slot].N); got != fc.Bits {
			c.violate("block %d: slot %d proven float %v, holds %v",
				b.ID, fc.Slot, math.Float64frombits(fc.Bits), math.Float64frombits(got))
		}
	}
	for _, slot := range bf.NonNull {
		if int(slot) >= len(locals) {
			c.violate("block %d: non-null claim on slot %d outside frame of %d locals", b.ID, slot, len(locals))
		} else if locals[slot].R == nil {
			c.violate("block %d: slot %d proven non-null, holds null", b.ID, slot)
		}
	}
	for _, sc := range bf.StackConsts {
		if int(sc.Idx) >= len(stack) {
			c.violate("block %d: stack claim at depth %d with only %d operands", b.ID, sc.Idx, len(stack))
		} else if got := stack[sc.Idx].N; got != sc.Val {
			c.violate("block %d: stack slot %d proven %d, holds %d", b.ID, sc.Idx, sc.Val, got)
		}
	}
	if d := c.facts.DecidedSucc(b.ID); d != cfg.NoBlock {
		c.haveExpect = true
		c.expectFrom = b.ID
		c.expect = d
	}
}

// Checks reports how many block entries were checked against a claim set.
func (c *FactChecker) Checks() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checks
}

// Violations returns the retained violation messages (capped; the count of
// dropped duplicates is appended as a final synthetic entry).
func (c *FactChecker) Violations() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]string(nil), c.violations...)
	if c.dropped > 0 {
		out = append(out, fmt.Sprintf("... and %d more violations", c.dropped))
	}
	return out
}

// CheckTraces cross-checks every trace's guard proofs against its dynamic
// side-exit accounting: a proven-dead guard that fired even once is a false
// proof. Returns one message per violated guard.
func CheckTraces(traces []*trace.Trace) []string {
	var out []string
	for _, t := range traces {
		for i := range t.GuardProofs {
			if t.GuardProofs[i] && i < len(t.SideExits) && t.SideExits[i] > 0 {
				out = append(out, fmt.Sprintf(
					"trace %d: guard after block %d proven dead but side-exited %d times",
					t.ID, t.Blocks[i], t.SideExits[i]))
			}
		}
	}
	return out
}

// SoundnessResult is one workload's differential check.
type SoundnessResult struct {
	Workload     string
	Checks       int64    // block entries compared against the fact table
	ProvenGuards int      // guard proofs stamped on the final trace cache
	Traces       int      // traces in the final cache
	Violations   []string // empty means every claim held
	Stats        valueflow.Stats
}

// ValueFlowSoundness runs one workload in trace mode with the fact checker
// probing every block entry and the guard oracle stamping traces, then
// cross-checks proofs against side-exit counts.
func (s *Suite) ValueFlowSoundness(name string) (SoundnessResult, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return SoundnessResult{}, err
	}
	checker := NewFactChecker(c.facts)
	sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
		Mode:     core.ModeTrace,
		Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
		MaxSteps: s.MaxSteps,
		Facts:    c.facts,
		Probe:    checker.Probe,
	})
	if err != nil {
		return SoundnessResult{}, err
	}
	if err := sess.Run(); err != nil && !stepLimited(err) {
		return SoundnessResult{}, fmt.Errorf("harness: soundness %s: %w", name, err)
	}
	res := SoundnessResult{
		Workload:   name,
		Checks:     checker.Checks(),
		Violations: checker.Violations(),
		Stats:      c.facts.Stats(),
	}
	traces := sess.Cache.Traces()
	res.Traces = len(traces)
	for _, t := range traces {
		res.ProvenGuards += t.ProvenGuards()
	}
	res.Violations = append(res.Violations, CheckTraces(traces)...)
	return res, nil
}

// VerifyValueFlowSoundness runs the differential check over every workload
// in the suite, writing one summary line each, and returns an error naming
// the first workload whose claims were violated. This is the gate CI runs:
// a failure is an unsoundness bug in the analysis, never flaky.
func (s *Suite) VerifyValueFlowSoundness(w io.Writer) error {
	var failed []string
	for _, name := range s.Workloads {
		res, err := s.ValueFlowSoundness(name)
		if err != nil {
			return err
		}
		status := "ok"
		if len(res.Violations) > 0 {
			status = "FAIL"
			failed = append(failed, res.Workload)
		}
		fmt.Fprintf(w, "%-12s %s: %d checked entries, %d consts, %d decided, %d traces (%d proven guards)\n",
			res.Workload, status, res.Checks,
			res.Stats.IntConsts+res.Stats.FloatConsts, res.Stats.Decided,
			res.Traces, res.ProvenGuards)
		for _, v := range res.Violations {
			fmt.Fprintf(w, "    violation: %s\n", v)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("harness: value-flow claims violated on %v", failed)
	}
	return nil
}
