package harness_test

import (
	"strings"
	"testing"

	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/harness"
	"repro/internal/trace"
	"repro/internal/vm"
)

// TestValueFlowSoundnessAllWorkloads is the differential gate: every claim
// the analysis makes about the six workloads must hold on every executed
// block entry, and no proven-dead guard may ever side-exit.
func TestValueFlowSoundnessAllWorkloads(t *testing.T) {
	s := harness.NewSuite()
	s.MaxSteps = 2_000_000 // plenty of iterations past every start delay
	var out strings.Builder
	if err := s.VerifyValueFlowSoundness(&out); err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Fatalf("no workload reported ok:\n%s", out.String())
	}
	t.Logf("\n%s", out.String())
}

// TestValueFlowSoundnessChecksSomething guards against the vacuous pass: at
// least one workload must produce facts the checker actually compares, and
// at least one must register traces with proven guards — otherwise the gate
// is green because it tested nothing.
func TestValueFlowSoundnessChecksSomething(t *testing.T) {
	s := harness.NewSuite()
	s.MaxSteps = 2_000_000
	var checked, proven int64
	for _, name := range s.Workloads {
		res, err := s.ValueFlowSoundness(name)
		if err != nil {
			t.Fatal(err)
		}
		checked += res.Checks
		proven += int64(res.ProvenGuards)
		if res.Stats.Top {
			t.Errorf("%s: analysis degraded to top on a production workload", name)
		}
	}
	if checked == 0 {
		t.Fatal("checker compared zero block entries across all workloads")
	}
	if proven == 0 {
		t.Fatal("no trace carried a proven guard on any workload")
	}
}

// TestFactCheckerCatchesFalseClaims injects deliberately wrong claims and
// requires the checker to flag every kind — proving the harness can fail.
func TestFactCheckerCatchesFalseClaims(t *testing.T) {
	// One block, ID 0. Claims: slot 0 == 99 (false), slot 1 non-null
	// (false), stack bottom == 5 (false), and the block is unreachable
	// (false: we probe it).
	blocks := []valueflow.BlockFacts{{
		Reachable:   false,
		Decided:     cfg.NoBlock,
		IntConsts:   []valueflow.IntConst{{Slot: 0, Val: 99}},
		NonNull:     []int32{1},
		StackConsts: []valueflow.StackConst{{Idx: 0, Val: 5}},
	}}
	f := valueflow.FactsFromBlocks(blocks)
	c := harness.NewFactChecker(f)
	b := &cfg.Block{ID: 0}
	locals := []vm.Value{{N: 7}, {}} // slot 0 holds 7, slot 1 null
	stack := []vm.Value{{N: 6}}
	c.Probe(b, locals, stack)
	v := c.Violations()
	if len(v) != 4 {
		t.Fatalf("want 4 violations (unreachable, const, non-null, stack), got %d: %v", len(v), v)
	}
	joined := strings.Join(v, "\n")
	for _, want := range []string{"unreachable", "proven 99", "non-null", "stack slot 0"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in violations:\n%s", want, joined)
		}
	}
}

// TestFactCheckerCatchesWrongDecidedSuccessor exercises the consecutive-
// probe check: a decided branch whose execution takes the other arm.
func TestFactCheckerCatchesWrongDecidedSuccessor(t *testing.T) {
	blocks := []valueflow.BlockFacts{
		{Reachable: true, Decided: 2},
		{Reachable: true, Decided: cfg.NoBlock},
		{Reachable: true, Decided: cfg.NoBlock},
	}
	f := valueflow.FactsFromBlocks(blocks)
	c := harness.NewFactChecker(f)
	c.Probe(&cfg.Block{ID: 0}, nil, nil)
	c.Probe(&cfg.Block{ID: 1}, nil, nil) // decided said 2
	v := c.Violations()
	if len(v) != 1 || !strings.Contains(v[0], "decided successor") {
		t.Fatalf("wrong-successor violation not raised: %v", v)
	}
	// Correct successor raises nothing.
	c2 := harness.NewFactChecker(f)
	c2.Probe(&cfg.Block{ID: 0}, nil, nil)
	c2.Probe(&cfg.Block{ID: 2}, nil, nil)
	if v := c2.Violations(); len(v) != 0 {
		t.Fatalf("spurious violations: %v", v)
	}
}

func TestCheckTracesFlagsFiredProvenGuard(t *testing.T) {
	tr := trace.New(7, []cfg.BlockID{1, 2, 3}, 1)
	tr.GuardProofs = []bool{true, false}
	tr.SideExits[0] = 3 // proven guard fired
	tr.SideExits[1] = 5 // unproven guard fired: fine
	v := harness.CheckTraces([]*trace.Trace{tr})
	if len(v) != 1 || !strings.Contains(v[0], "trace 7") {
		t.Fatalf("want exactly the proven guard flagged, got %v", v)
	}
	tr.SideExits[0] = 0
	if v := harness.CheckTraces([]*trace.Trace{tr}); len(v) != 0 {
		t.Fatalf("quiet proven guard flagged: %v", v)
	}
}
