package harness

import (
	"fmt"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/vm"
)

// FirstTrace marks the moment a session first dispatched a cached trace:
// how many block dispatches and how much wall clock it took to get there.
// Reached is false when the run ended without ever entering a trace.
type FirstTrace struct {
	Reached    bool
	Dispatches int64
	Wall       time.Duration
}

// WarmStart is one workload's cold-versus-warm comparison: the same program
// run from nothing and run again seeded with the first run's snapshot. The
// claim under test is that a warm start reaches its first trace dispatch in
// far fewer block dispatches, because the profiler does not have to re-learn
// the branch correlations it already knew.
type WarmStart struct {
	Workload   string
	SnapNodes  int // BCG nodes carried by the snapshot
	SnapTraces int // traces carried by the snapshot

	SeededNodes  int64 // nodes the warm session actually restored
	SeededTraces int64 // traces the warm session re-registered

	Cold FirstTrace
	Warm FirstTrace
}

// firstTraceProbe wraps the session's dispatch hook and records the counter
// state at the first dispatch that observes an entered trace. It rides the
// WrapHook seam, so the production dispatch path is untouched.
type firstTraceProbe struct {
	inner vm.DispatchHook
	ctr   *stats.Counters
	start time.Time
	ft    FirstTrace
}

func (p *firstTraceProbe) OnDispatch(from, to cfg.BlockID) {
	if !p.ft.Reached && p.ctr.TracesEntered > 0 {
		p.ft = FirstTrace{
			Reached:    true,
			Dispatches: p.ctr.BlockDispatches,
			Wall:       time.Since(p.start),
		}
	}
	p.inner.OnDispatch(from, to)
}

// MeasureWarmStart runs a workload cold, snapshots its learned profile, and
// runs it again seeded from the snapshot, reporting time-to-first-trace and
// dispatches-until-warm for both runs.
func (s *Suite) MeasureWarmStart(name string) (WarmStart, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return WarmStart{}, err
	}
	params := profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256}

	run := func(snap *snapshot.Snapshot) (*core.Session, FirstTrace, error) {
		probe := &firstTraceProbe{}
		sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
			Mode:     core.ModeTrace,
			Params:   params,
			MaxSteps: s.MaxSteps,
			Snapshot: snap,
			WrapHook: func(h vm.DispatchHook) vm.DispatchHook { probe.inner = h; return probe },
		})
		if err != nil {
			return nil, FirstTrace{}, err
		}
		probe.ctr = sess.Counters
		probe.start = time.Now()
		if err := sess.Run(); err != nil && !stepLimited(err) {
			return nil, FirstTrace{}, fmt.Errorf("harness: %s warm-start: %w", name, err)
		}
		return sess, probe.ft, nil
	}

	cold, coldFT, err := run(nil)
	if err != nil {
		return WarmStart{}, err
	}
	key, err := snapshot.ProgramKey(c.prog)
	if err != nil {
		return WarmStart{}, err
	}
	snap := cold.ExportSnapshot(key, name)
	warm, warmFT, err := run(snap)
	if err != nil {
		return WarmStart{}, err
	}
	return WarmStart{
		Workload:     name,
		SnapNodes:    len(snap.Nodes),
		SnapTraces:   len(snap.Traces),
		SeededNodes:  warm.Counters.NodesSeededFromSnapshot,
		SeededTraces: warm.Counters.TracesSeededFromSnapshot,
		Cold:         coldFT,
		Warm:         warmFT,
	}, nil
}

// ftCells renders one FirstTrace as (dispatches, wall) table cells.
func ftCells(ft FirstTrace) (string, string) {
	if !ft.Reached {
		return "-", "-"
	}
	return fmt.Sprintf("%d", ft.Dispatches), fmt.Sprintf("%.2fms", float64(ft.Wall.Microseconds())/1000)
}

// WarmStartTable runs the cold-versus-warm comparison over the suite's
// workloads.
func (s *Suite) WarmStartTable() (Table, []WarmStart, error) {
	var rows [][]string
	var all []WarmStart
	for _, name := range s.Workloads {
		w, err := s.MeasureWarmStart(name)
		if err != nil {
			return Table{}, nil, err
		}
		all = append(all, w)
		cd, cw := ftCells(w.Cold)
		wd, ww := ftCells(w.Warm)
		speedup := "-"
		if w.Cold.Reached && w.Warm.Reached && w.Warm.Dispatches > 0 {
			speedup = fmt.Sprintf("%.0fx", float64(w.Cold.Dispatches)/float64(w.Warm.Dispatches))
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", w.SeededNodes),
			fmt.Sprintf("%d", w.SeededTraces),
			cd, wd, speedup, cw, ww,
		})
	}
	return Table{
		Title:   "Warm start: dispatches and wall clock until the first trace dispatch (97%, delay 64)",
		Columns: []string{"benchmark", "seeded nodes", "seeded traces", "cold disp", "warm disp", "speedup", "cold time", "warm time"},
		Rows:    rows,
	}, all, nil
}
