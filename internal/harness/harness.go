// Package harness runs the paper's experiments: it sweeps the start-state
// delay and completion threshold over the six workloads and renders Tables
// I–VII plus the dispatch-granularity figure data. cmd/tracebench is a thin
// CLI over this package, and EXPERIMENTS.md records one full set of results.
package harness

import (
	"fmt"
	"io"
	"runtime"
	"sort"
	"strings"
	"time"

	"repro/internal/analysis/valueflow"
	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/traceopt"
	"repro/internal/vm"
	"repro/internal/workload"
)

// Thresholds are the completion thresholds of Tables I–IV, in the paper's
// row order.
var Thresholds = []float64{1.00, 0.99, 0.98, 0.97, 0.95}

// Delays are the start-state delays of Table V.
var Delays = []int32{1, 64, 4096}

// DefaultDelay is the delay used by the threshold sweep (the paper found 64
// best and used it for Tables I–IV).
const DefaultDelay int32 = 64

// DefaultThreshold is the threshold used by the delay sweep (Table V).
const DefaultThreshold = 0.97

// Result is one measured run.
type Result struct {
	Workload  string
	Mode      core.Mode
	Params    profile.Params
	Counters  *stats.Counters
	Metrics   stats.Metrics
	Wall      time.Duration
	NumTraces int
}

// Suite runs experiments with compiled workloads cached across runs.
type Suite struct {
	// MaxSteps bounds each run (0 = unlimited).
	MaxSteps int64
	// Repeats for wall-clock measurements (minimum is taken). Default 3.
	Repeats int
	// Workloads restricts the benchmark set (default: all six).
	Workloads []string

	programs map[string]*compiled
	gridA    map[string]Result // key: workload/threshold (delay 64, ModeTrace)
	gridB    map[string]Result // key: workload/delay (threshold 97%, ModeTrace)
}

type compiled struct {
	prog *classfile.Program
	cfg  *cfg.ProgramCFG
	// facts is the value-flow table, computed once per workload and shared
	// by every session the suite builds from this entry.
	facts *valueflow.Facts
}

// NewSuite creates an empty suite.
func NewSuite() *Suite {
	return &Suite{
		Repeats:   3,
		Workloads: workload.Names(),
		programs:  make(map[string]*compiled),
		gridA:     make(map[string]Result),
		gridB:     make(map[string]Result),
	}
}

func (s *Suite) compileWorkload(name string) (*compiled, error) {
	if c, ok := s.programs[name]; ok {
		return c, nil
	}
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	prog, pcfg, err := w.Compile()
	if err != nil {
		return nil, err
	}
	c := &compiled{prog: prog, cfg: pcfg, facts: valueflow.Compute(pcfg)}
	s.programs[name] = c
	return c, nil
}

// Run executes one workload under one configuration.
func (s *Suite) Run(name string, mode core.Mode, params profile.Params) (Result, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return Result{}, err
	}
	sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
		Mode:     mode,
		Params:   params,
		MaxSteps: s.MaxSteps,
	})
	if err != nil {
		return Result{}, err
	}
	start := time.Now()
	if err := sess.Run(); err != nil && !stepLimited(err) {
		return Result{}, fmt.Errorf("harness: %s (%s): %w", name, mode, err)
	}
	res := Result{
		Workload: name,
		Mode:     mode,
		Params:   params,
		Counters: sess.Counters,
		Metrics:  sess.Metrics(),
		Wall:     time.Since(start),
	}
	if sess.Cache != nil {
		res.NumTraces = sess.Cache.NumTraces()
	}
	return res, nil
}

// thresholdRun returns (cached) the measurement run for Tables I–IV.
func (s *Suite) thresholdRun(name string, threshold float64) (Result, error) {
	key := fmt.Sprintf("%s/%.2f", name, threshold)
	if r, ok := s.gridA[key]; ok {
		return r, nil
	}
	r, err := s.Run(name, core.ModeTrace, profile.Params{
		StartDelay: DefaultDelay, Threshold: threshold, DecayInterval: 256,
	})
	if err != nil {
		return Result{}, err
	}
	s.gridA[key] = r
	return r, nil
}

// delayRun returns (cached) the measurement run for Table V.
func (s *Suite) delayRun(name string, delay int32) (Result, error) {
	key := fmt.Sprintf("%s/%d", name, delay)
	if r, ok := s.gridB[key]; ok {
		return r, nil
	}
	r, err := s.Run(name, core.ModeTrace, profile.Params{
		StartDelay: delay, Threshold: DefaultThreshold, DecayInterval: 256,
	})
	if err != nil {
		return Result{}, err
	}
	s.gridB[key] = r
	return r, nil
}

// Table is a rendered experiment table.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// Format renders the table as aligned text.
func (t Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

func thresholdLabel(th float64) string {
	return fmt.Sprintf("%d%%", int(th*100+0.5))
}

// workloadColumns is the shared header: threshold/delay, six workloads,
// average.
func (s *Suite) workloadColumns(first string) []string {
	cols := []string{first}
	cols = append(cols, s.Workloads...)
	return append(cols, "average")
}

// sweep builds one row per threshold using cell to extract the value and
// avg to aggregate it.
func (s *Suite) sweep(cell func(Result) (string, float64)) ([][]string, error) {
	var rows [][]string
	for _, th := range Thresholds {
		row := []string{thresholdLabel(th)}
		sum, n := 0.0, 0
		for _, name := range s.Workloads {
			r, err := s.thresholdRun(name, th)
			if err != nil {
				return nil, err
			}
			cellStr, v := cell(r)
			row = append(row, cellStr)
			sum += v
			n++
		}
		row = append(row, fmt.Sprintf("%.1f", sum/float64(n)))
		rows = append(rows, row)
	}
	return rows, nil
}

// TableI reproduces "Trace Length vs. Threshold" (average completed-trace
// length in blocks).
func (s *Suite) TableI() (Table, error) {
	rows, err := s.sweep(func(r Result) (string, float64) {
		v := r.Metrics.AvgTraceLength
		return fmt.Sprintf("%.1f", v), v
	})
	if err != nil {
		return Table{}, err
	}
	return Table{
		Title:   "Table I: Trace Length vs. Threshold (blocks; delay 64)",
		Columns: s.workloadColumns("threshold"),
		Rows:    rows,
	}, nil
}

// TableII reproduces "Instruction Stream Coverage vs. Threshold" (completed
// traces only; the in-cache figure is reported by Figures()).
func (s *Suite) TableII() (Table, error) {
	rows, err := s.sweep(func(r Result) (string, float64) {
		v := r.Metrics.Coverage * 100
		return fmt.Sprintf("%.0f%%", v), v
	})
	if err != nil {
		return Table{}, err
	}
	return Table{
		Title:   "Table II: Instruction Stream Coverage vs. Threshold (completed traces; delay 64)",
		Columns: s.workloadColumns("threshold"),
		Rows:    rows,
	}, nil
}

// TableIII reproduces "Frame completion rate vs. Threshold"; values above
// 99.9% print as 99+ following the paper's footnote.
func (s *Suite) TableIII() (Table, error) {
	rows, err := s.sweep(func(r Result) (string, float64) {
		v := r.Metrics.CompletionRate * 100
		if v > 99.9 {
			return "99+", v
		}
		return fmt.Sprintf("%.0f%%", v), v
	})
	if err != nil {
		return Table{}, err
	}
	return Table{
		Title:   "Table III: Trace completion rate vs. Threshold (delay 64)",
		Columns: s.workloadColumns("threshold"),
		Rows:    rows,
	}, nil
}

// TableIV reproduces "Thousands of Dispatches per State Change Signal".
func (s *Suite) TableIV() (Table, error) {
	rows, err := s.sweep(func(r Result) (string, float64) {
		v := r.Metrics.DispatchesPerSignal / 1000
		return fmt.Sprintf("%.1f", v), v
	})
	if err != nil {
		return Table{}, err
	}
	return Table{
		Title:   "Table IV: Thousands of Dispatches per State Change Signal (delay 64)",
		Columns: s.workloadColumns("threshold"),
		Rows:    rows,
	}, nil
}

// TableV reproduces "Thousands of Dispatches per Trace Event at 97%
// threshold" across start-state delays.
func (s *Suite) TableV() (Table, error) {
	var rows [][]string
	for _, d := range Delays {
		row := []string{fmt.Sprintf("%d", d)}
		sum, n := 0.0, 0
		for _, name := range s.Workloads {
			r, err := s.delayRun(name, d)
			if err != nil {
				return Table{}, err
			}
			v := r.Metrics.TraceEventInterval / 1000
			row = append(row, fmt.Sprintf("%.1f", v))
			sum += v
			n++
		}
		row = append(row, fmt.Sprintf("%.1f", sum/float64(n)))
		rows = append(rows, row)
	}
	return Table{
		Title:   "Table V: Thousands of Dispatches per Trace Event (97% threshold)",
		Columns: s.workloadColumns("delay"),
		Rows:    rows,
	}, nil
}

// Overhead is one workload's Table VI measurement.
type Overhead struct {
	Workload     string
	PlainWall    time.Duration
	ProfileWall  time.Duration
	Dispatches   int64
	PerMillion   time.Duration // profiling cost per 10^6 dispatches
	TraceDisp    int64         // trace-mode dispatch count (Table VII)
	ExpectedOver time.Duration // projected trace-dispatch profiling cost
	PercentOver  float64       // ExpectedOver / PlainWall
}

// MeasureOverhead produces the data behind Tables VI and VII for one
// workload: minimum-of-N wall clock for the unprofiled and profiled
// interpreters plus the deployment-mode trace dispatch count.
func (s *Suite) MeasureOverhead(name string) (Overhead, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return Overhead{}, err
	}
	repeats := s.Repeats
	if repeats <= 0 {
		repeats = 3
	}

	timedOnce := func(mode core.Mode) (time.Duration, *stats.Counters, error) {
		sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
			Mode:     mode,
			Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
			MaxSteps: s.MaxSteps,
		})
		if err != nil {
			return 0, nil, err
		}
		// Collect garbage from session construction and earlier runs so a
		// deferred GC cycle does not land inside the timed region.
		runtime.GC()
		start := time.Now()
		if err := sess.Run(); err != nil && !stepLimited(err) {
			return 0, nil, err
		}
		return time.Since(start), sess.Counters, nil
	}

	// Interleave the modes within each repeat (plain, profiled, deploy,
	// plain, ...) so machine-load drift during the measurement biases all
	// modes equally instead of whichever phase ran last; keep the minimum
	// per mode across repeats.
	modes := []core.Mode{core.ModePlain, core.ModeProfile, core.ModeTraceDeploy}
	walls := make([]time.Duration, len(modes))
	ctrs := make([]*stats.Counters, len(modes))
	for i := 0; i < repeats; i++ {
		for mi, mode := range modes {
			w, ctr, err := timedOnce(mode)
			if err != nil {
				return Overhead{}, err
			}
			if ctrs[mi] == nil || w < walls[mi] {
				walls[mi] = w
				ctrs[mi] = ctr
			}
		}
	}
	plainWall, plainCtr := walls[0], ctrs[0]
	profWall := walls[1]
	deployCtr := ctrs[2]

	o := Overhead{
		Workload:    name,
		PlainWall:   plainWall,
		ProfileWall: profWall,
		Dispatches:  plainCtr.BlockDispatches,
		TraceDisp:   deployCtr.TraceDispatches,
	}
	over := profWall - plainWall
	if over < 0 {
		over = 0
	}
	if o.Dispatches > 0 {
		o.PerMillion = time.Duration(int64(over) * 1_000_000 / o.Dispatches)
	}
	o.ExpectedOver = time.Duration(int64(o.PerMillion) * o.TraceDisp / 1_000_000)
	if plainWall > 0 {
		o.PercentOver = float64(o.ExpectedOver) / float64(plainWall) * 100
	}
	return o, nil
}

// TableVI reproduces "Profiler overhead per basic block dispatch".
func (s *Suite) TableVI() (Table, []Overhead, error) {
	var rows [][]string
	var all []Overhead
	for _, name := range s.Workloads {
		o, err := s.MeasureOverhead(name)
		if err != nil {
			return Table{}, nil, err
		}
		all = append(all, o)
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.3fs", o.PlainWall.Seconds()),
			fmt.Sprintf("%.1f", float64(o.Dispatches)/1e6),
			fmt.Sprintf("%.3fs", o.ProfileWall.Seconds()),
			fmt.Sprintf("%.4fs", o.PerMillion.Seconds()),
		})
	}
	return Table{
		Title:   "Table VI: Profiler overhead per basic block dispatch",
		Columns: []string{"benchmark", "no profiler", "dispatches (M)", "profiler", "overhead per 1e6"},
		Rows:    rows,
	}, all, nil
}

// TableVII reproduces "Profiler dispatch overhead" from the same
// measurements: the projected cost of profiling under trace dispatch.
func (s *Suite) TableVII(measured []Overhead) Table {
	var rows [][]string
	for _, o := range measured {
		rows = append(rows, []string{
			o.Workload,
			fmt.Sprintf("%.1f", float64(o.TraceDisp)/1e6),
			fmt.Sprintf("%.4fs", o.PerMillion.Seconds()),
			fmt.Sprintf("%.3fs", o.ExpectedOver.Seconds()),
			fmt.Sprintf("%.1f%%", o.PercentOver),
		})
	}
	return Table{
		Title:   "Table VII: Profiler dispatch overhead (trace-dispatch projection)",
		Columns: []string{"benchmark", "trace dispatches (M)", "overhead per 1e6", "expected overhead", "% overhead"},
		Rows:    rows,
	}
}

// Figures reports the dispatch-granularity data motivating Figures 1 and 2:
// dispatches per mode (instruction, block, trace) plus cache-level coverage.
func (s *Suite) Figures() (Table, error) {
	var rows [][]string
	for _, name := range s.Workloads {
		r, err := s.thresholdRun(name, DefaultThreshold)
		if err != nil {
			return Table{}, err
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%.1f", float64(r.Counters.Instrs)/1e6),
			fmt.Sprintf("%.1f", float64(r.Counters.BlockDispatches)/1e6),
			fmt.Sprintf("%.1f", float64(r.Counters.TraceDispatches)/1e6),
			fmt.Sprintf("%.1f%%", r.Metrics.CacheCoverage*100),
			fmt.Sprintf("%d", r.NumTraces),
		})
	}
	return Table{
		Title:   "Figures 1-2: dispatches by granularity (millions; 97%, delay 64)",
		Columns: []string{"benchmark", "instr dispatches", "block dispatches", "trace dispatches", "in-cache coverage", "live traces"},
		Rows:    rows,
	}, nil
}

// BaselineRow is one selector's quality measurement on one workload.
type BaselineRow struct {
	Workload   string
	Selector   string
	Coverage   float64
	Completion float64
	AvgLen     float64
	Traces     int
}

// Baselines measures trace quality for the BCG system against Dynamo-NET
// and rePLay-style selection, plus Whaley-style block coverage.
func (s *Suite) Baselines() (Table, error) {
	var rows [][]string
	for _, name := range s.Workloads {
		c, err := s.compileWorkload(name)
		if err != nil {
			return Table{}, err
		}

		// BCG (this paper).
		bcg, err := s.thresholdRun(name, DefaultThreshold)
		if err != nil {
			return Table{}, err
		}
		rows = append(rows, []string{
			name, "bcg",
			fmt.Sprintf("%.1f%%", bcg.Metrics.Coverage*100),
			fmt.Sprintf("%.1f%%", bcg.Metrics.CompletionRate*100),
			fmt.Sprintf("%.1f", bcg.Metrics.AvgTraceLength),
			fmt.Sprintf("%d", bcg.NumTraces),
		})

		// Dynamo NET.
		dctr := &stats.Counters{}
		dyn := baseline.NewDynamo(c.cfg, baseline.DefaultDynamoConfig(), dctr)
		if err := runWithSelector(c, dyn, dyn, dctr, s.MaxSteps); err != nil {
			return Table{}, err
		}
		dm := dctr.Derive()
		rows = append(rows, []string{
			name, "dynamo-net",
			fmt.Sprintf("%.1f%%", dm.Coverage*100),
			fmt.Sprintf("%.1f%%", dm.CompletionRate*100),
			fmt.Sprintf("%.1f", dm.AvgTraceLength),
			fmt.Sprintf("%d", dyn.NumTraces()),
		})

		// rePLay frames.
		rctr := &stats.Counters{}
		rep := baseline.NewReplay(c.cfg, baseline.DefaultReplayConfig(), rctr)
		if err := runWithSelector(c, rep, rep, rctr, s.MaxSteps); err != nil {
			return Table{}, err
		}
		rm := rctr.Derive()
		rows = append(rows, []string{
			name, "replay",
			fmt.Sprintf("%.1f%%", rm.Coverage*100),
			fmt.Sprintf("%.1f%%", rm.CompletionRate*100),
			fmt.Sprintf("%.1f", rm.AvgTraceLength),
			fmt.Sprintf("%d", rep.NumFrames()),
		})

		// Whaley block flagging (coverage only; not a trace selector).
		wctr := &stats.Counters{}
		wh := baseline.NewWhaley(c.cfg, baseline.DefaultWhaleyConfig())
		if err := runWithSelector(c, wh, nil, wctr, s.MaxSteps); err != nil {
			return Table{}, err
		}
		_, opt := wh.HotMethods()
		rows = append(rows, []string{
			name, "whaley",
			fmt.Sprintf("%.1f%%", wh.Coverage()*100),
			"-", "-",
			fmt.Sprintf("%d methods", opt),
		})
	}
	return Table{
		Title:   "Baseline comparison (97% threshold, delay 64 for BCG)",
		Columns: []string{"benchmark", "selector", "coverage", "completion", "avg len", "traces"},
		Rows:    rows,
	}, nil
}

// stepLimited reports whether err is the step-limit trap: a run truncated
// by Suite.MaxSteps is a deliberately scaled-down measurement, not a
// failure.
func stepLimited(err error) bool {
	t, ok := vm.AsTrap(err)
	return ok && t.Kind == vm.TrapStepLimit
}

// runWithSelector executes a compiled workload with an arbitrary hook and
// optional trace source.
func runWithSelector(c *compiled, hook vm.DispatchHook, src trace.Source, ctr *stats.Counters, maxSteps int64) error {
	opts := vm.Options{
		Hook:             hook,
		Counters:         ctr,
		MaxSteps:         maxSteps,
		HookInsideTraces: true,
	}
	if src != nil {
		opts.Traces = src
	}
	m, err := vm.New(c.prog, c.cfg, opts)
	if err != nil {
		return err
	}
	return m.Run()
}

// RunAll renders every table to w, in paper order.
func (s *Suite) RunAll(w io.Writer) error {
	fig, err := s.Figures()
	if err != nil {
		return err
	}
	t1, err := s.TableI()
	if err != nil {
		return err
	}
	t2, err := s.TableII()
	if err != nil {
		return err
	}
	t3, err := s.TableIII()
	if err != nil {
		return err
	}
	t4, err := s.TableIV()
	if err != nil {
		return err
	}
	t5, err := s.TableV()
	if err != nil {
		return err
	}
	t6, measured, err := s.TableVI()
	if err != nil {
		return err
	}
	t7 := s.TableVII(measured)
	bl, err := s.Baselines()
	if err != nil {
		return err
	}
	opt, err := s.Optimizability()
	if err != nil {
		return err
	}
	for _, t := range []Table{fig, t1, t2, t3, t4, t5, t6, t7, bl, opt} {
		if _, err := fmt.Fprintln(w, t.Format()); err != nil {
			return err
		}
	}
	return nil
}

// SortedKeys is a test helper exposing cached run keys deterministically.
func (s *Suite) SortedKeys() []string {
	var keys []string
	for k := range s.gridA {
		keys = append(keys, k)
	}
	for k := range s.gridB {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Optimizability runs the future-work study (§6 of the paper): how much of
// the executed trace instruction stream could trace-level optimization
// (constant folding/propagation, guard removal, dead-store elimination)
// remove. Reported per workload, weighted by trace completion counts.
func (s *Suite) Optimizability() (Table, error) {
	var rows [][]string
	for _, name := range s.Workloads {
		r, err := s.thresholdRun(name, DefaultThreshold)
		if err != nil {
			return Table{}, err
		}
		c, err := s.compileWorkload(name)
		if err != nil {
			return Table{}, err
		}
		// The cached Result does not retain the session; re-run to get the
		// final trace cache, then analyze it.
		sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
			Mode:     core.ModeTrace,
			Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
			MaxSteps: s.MaxSteps,
			Facts:    c.facts, // traces register with guard proofs attached
		})
		if err != nil {
			return Table{}, err
		}
		if err := sess.Run(); err != nil {
			return Table{}, err
		}
		traces := sess.Cache.Traces()
		sum, reports, err := traceopt.New(c.cfg).AnalyzeAll(traces)
		if err != nil {
			return Table{}, err
		}
		var fold, prop, stores int
		for _, rep := range reports {
			fold += rep.Foldable
			prop += rep.Propagatable
			stores += rep.DeadStores
		}
		rows = append(rows, []string{
			name,
			fmt.Sprintf("%d", sum.Traces),
			fmt.Sprintf("%d", fold),
			fmt.Sprintf("%d", prop),
			fmt.Sprintf("%d", sum.RemovableGuards),
			fmt.Sprintf("%d", sum.ProvenGuards),
			fmt.Sprintf("%.0f%%", sum.ProvenShare()*100),
			fmt.Sprintf("%d", stores),
			fmt.Sprintf("%.1f%%", sum.Ratio()*100),
		})
		_ = r
	}
	return Table{
		Title:   "Trace optimizability (future-work study; static counts, execution-weighted ratio; proven = value-flow guard proofs)",
		Columns: []string{"benchmark", "traces", "foldable", "propagatable", "guards", "proven", "proven share", "dead stores", "weighted removable"},
		Rows:    rows,
	}, nil
}

// DecayIntervals swept by AblationDecay.
var DecayIntervals = []uint32{64, 256, 1024, 4096}

// AblationDecay varies the decay interval (the paper fixes 256) and reports
// its effect on signal rate and trace quality: shorter intervals adapt
// faster but signal more; very long intervals approach cumulative counters.
func (s *Suite) AblationDecay() (Table, error) {
	var rows [][]string
	for _, di := range DecayIntervals {
		for _, name := range s.Workloads {
			r, err := s.Run(name, core.ModeTrace, profile.Params{
				StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: di,
			})
			if err != nil {
				return Table{}, err
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", di),
				name,
				fmt.Sprintf("%.1f", r.Metrics.DispatchesPerSignal/1000),
				fmt.Sprintf("%.1f%%", r.Metrics.Coverage*100),
				fmt.Sprintf("%.2f%%", r.Metrics.CompletionRate*100),
				fmt.Sprintf("%.1f", r.Metrics.AvgTraceLength),
			})
		}
	}
	return Table{
		Title:   "Ablation: decay interval (97% threshold, delay 64)",
		Columns: []string{"decay", "benchmark", "kdispatch/signal", "coverage", "completion", "avg len"},
		Rows:    rows,
	}, nil
}

// MaxBlocksSweep swept by AblationMaxBlocks.
var MaxBlocksSweep = []int{4, 16, 64, 256}

// AblationMaxBlocks varies the trace length cap and reports its effect on
// average length, coverage, and the dispatch reduction trace dispatch buys.
func (s *Suite) AblationMaxBlocks(name string) (Table, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return Table{}, err
	}
	var rows [][]string
	for _, mb := range MaxBlocksSweep {
		sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
			Mode:     core.ModeTrace,
			Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
			Config:   core.Config{MaxBlocks: mb},
			MaxSteps: s.MaxSteps,
		})
		if err != nil {
			return Table{}, err
		}
		if err := sess.Run(); err != nil {
			return Table{}, err
		}
		m := sess.Metrics()
		ctr := sess.Counters
		reduction := 0.0
		if ctr.TraceDispatches > 0 {
			reduction = float64(ctr.BlockDispatches) / float64(ctr.TraceDispatches)
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", mb),
			fmt.Sprintf("%.1f", m.AvgTraceLength),
			fmt.Sprintf("%.1f%%", m.Coverage*100),
			fmt.Sprintf("%.2f%%", m.CompletionRate*100),
			fmt.Sprintf("%.1fx", reduction),
		})
	}
	return Table{
		Title:   fmt.Sprintf("Ablation: max trace length on %s (97%%, delay 64)", name),
		Columns: []string{"max blocks", "avg len", "coverage", "completion", "dispatch reduction"},
		Rows:    rows,
	}, nil
}

// Stability runs the §3.6 cache-stability experiment: a phase-change
// program under the BCG system (informed, incremental trace maintenance)
// and under Dynamo-NET with its flush heuristic (rapid trace creation
// flushes the whole cache). The claim under test: the BCG adapts by
// retiring and rebuilding only the affected traces, keeping coverage and
// completion high across phase changes, where Dynamo churns.
func (s *Suite) Stability() (Table, error) {
	w := workload.Phased()
	prog, pcfg, err := w.Compile()
	if err != nil {
		return Table{}, err
	}

	// BCG.
	sess, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     core.ModeTrace,
		Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
		MaxSteps: s.MaxSteps,
	})
	if err != nil {
		return Table{}, err
	}
	if err := sess.Run(); err != nil {
		return Table{}, err
	}
	bm := sess.Metrics()
	bc := sess.Counters

	// Dynamo with the flush heuristic.
	dctr := &stats.Counters{}
	dyn := baseline.NewDynamo(pcfg, baseline.DefaultDynamoConfig(), dctr)
	if err := runWithSelector(&compiled{prog: prog, cfg: pcfg}, dyn, dyn, dctr, s.MaxSteps); err != nil {
		return Table{}, err
	}
	dm := dctr.Derive()

	rows := [][]string{
		{
			"bcg",
			fmt.Sprintf("%d", bc.TracesBuilt),
			fmt.Sprintf("%d", bc.TracesRetired),
			"0",
			fmt.Sprintf("%.1f%%", bm.Coverage*100),
			fmt.Sprintf("%.2f%%", bm.CompletionRate*100),
		},
		{
			"dynamo-net",
			fmt.Sprintf("%d", dctr.TracesBuilt),
			fmt.Sprintf("%d", dctr.TracesRetired),
			fmt.Sprintf("%d", dyn.Flushes()),
			fmt.Sprintf("%.1f%%", dm.Coverage*100),
			fmt.Sprintf("%.2f%%", dm.CompletionRate*100),
		},
	}
	return Table{
		Title:   "Cache stability under phase changes (phased workload; §3.6)",
		Columns: []string{"selector", "built", "retired", "flushes", "coverage", "completion"},
		Rows:    rows,
	}, nil
}
