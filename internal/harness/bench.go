// Machine-readable benchmark reports and the CI bench gate. BenchReport
// measures the paper's central performance claim — per-dispatch profiler
// overhead — for every workload and serializes it as JSON
// (cmd/tracebench -bench-json); CompareBenchReports checks a fresh report
// against a committed baseline and reports regressions
// (cmd/tracebench -bench-gate).
package harness

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stats"
)

// BenchSchema identifies the JSON layout of BenchReport. Bump on any
// incompatible field change so the CI gate fails loudly instead of
// comparing mismatched reports.
const BenchSchema = "tracebench/bench/v1"

// BenchWorkload is one workload's overhead measurement.
type BenchWorkload struct {
	Name       string `json:"name"`
	Dispatches int64  `json:"dispatches"`
	// PlainNsPerDispatch and ProfiledNsPerDispatch are wall-clock
	// (minimum of Repeats runs) divided by block dispatches, without and
	// with the BCG profiler hook attached.
	PlainNsPerDispatch    float64 `json:"plain_ns_per_dispatch"`
	ProfiledNsPerDispatch float64 `json:"profiled_ns_per_dispatch"`
	// OverheadNsPerDispatch = profiled − plain; may be slightly negative
	// in the noise when the profiler is effectively free.
	OverheadNsPerDispatch float64 `json:"overhead_ns_per_dispatch"`
	// OverheadPct normalizes the overhead by the plain dispatch cost
	// (machine-independent, which is what the CI gate compares).
	OverheadPct float64 `json:"overhead_pct"`
	// AllocsPerDispatch is heap allocations per block dispatch over a
	// whole profiled run (includes VM frame churn and BCG warm-up).
	AllocsPerDispatch float64 `json:"allocs_per_dispatch"`

	// Tier throughput: wall clock of a full trace-mode run divided by the
	// blocks executed inside traces, at tier 1 (block-by-block trace walk)
	// and tier 2 (superinstruction forms compiled for hot traces). The
	// denominator is identical at both tiers — runCompiled mirrors runTrace
	// counter-for-counter — so the difference is the compiled form's
	// per-trace-block saving. Additive fields; the schema version stays.
	Tier1NsPerTraceBlock float64 `json:"tier1_ns_per_trace_block,omitempty"`
	Tier2NsPerTraceBlock float64 `json:"tier2_ns_per_trace_block,omitempty"`
	// TierSpeedupPct is the relative in-trace dispatch cost drop tier 2
	// buys: (tier1 − tier2) / tier1 × 100. Negative means tier 2 lost.
	TierSpeedupPct float64 `json:"tier_speedup_pct,omitempty"`
	// CompiledShare is the fraction of the tier-2 run's trace dispatches
	// served by a compiled form (how much of the run the claim covers).
	CompiledShare float64 `json:"compiled_share,omitempty"`
}

// BenchReport is the full benchmark trajectory record.
type BenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Repeats   int    `json:"repeats"`
	MaxSteps  int64  `json:"max_steps"`
	// HookFastPathAllocs is the steady-state allocations per profiler hook
	// invocation on a warmed branch context; the dense-index BCG pins it
	// at exactly 0.
	HookFastPathAllocs float64         `json:"hook_fast_path_allocs"`
	Notes              string          `json:"notes,omitempty"`
	Workloads          []BenchWorkload `json:"workloads"`
}

// BenchReport measures every workload in the suite and assembles the
// report. Wall-clock fields honour Suite.Repeats and Suite.MaxSteps.
func (s *Suite) BenchReport() (BenchReport, error) {
	rep := BenchReport{
		Schema:             BenchSchema,
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		Repeats:            s.Repeats,
		MaxSteps:           s.MaxSteps,
		HookFastPathAllocs: HookFastPathAllocs(),
	}
	for _, name := range s.Workloads {
		o, err := s.MeasureOverhead(name)
		if err != nil {
			return BenchReport{}, err
		}
		allocs, err := s.measureRunAllocs(name)
		if err != nil {
			return BenchReport{}, err
		}
		w := BenchWorkload{
			Name:              name,
			Dispatches:        o.Dispatches,
			AllocsPerDispatch: allocs,
		}
		if o.Dispatches > 0 {
			w.PlainNsPerDispatch = float64(o.PlainWall.Nanoseconds()) / float64(o.Dispatches)
			w.ProfiledNsPerDispatch = float64(o.ProfileWall.Nanoseconds()) / float64(o.Dispatches)
			w.OverheadNsPerDispatch = w.ProfiledNsPerDispatch - w.PlainNsPerDispatch
			if w.PlainNsPerDispatch > 0 {
				w.OverheadPct = w.OverheadNsPerDispatch / w.PlainNsPerDispatch * 100
			}
		}
		tt, err := s.MeasureTierThroughput(name)
		if err != nil {
			return BenchReport{}, err
		}
		w.Tier1NsPerTraceBlock = tt.Tier1NsPerBlock
		w.Tier2NsPerTraceBlock = tt.Tier2NsPerBlock
		w.TierSpeedupPct = tt.SpeedupPct
		w.CompiledShare = tt.CompiledShare
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep, nil
}

// BenchTierUpDispatches is the promotion threshold the tier-throughput
// measurement runs with: low enough that hot traces compile early in a
// step-bounded run, so the compiled forms serve most trace dispatches and
// the tier-2 leg measures compiled execution rather than warm-up.
const BenchTierUpDispatches = 4

// TierThroughput is one workload's in-trace dispatch cost at each execution
// tier: minimum-of-N wall clock of a full trace-mode run divided by the
// blocks executed inside traces, without and with superinstruction
// compilation of hot traces.
type TierThroughput struct {
	Workload    string
	Tier1Wall   time.Duration
	Tier2Wall   time.Duration
	TraceBlocks int64 // blocks executed inside traces (tier-1 run)
	// Tier1NsPerBlock and Tier2NsPerBlock are wall nanoseconds per
	// in-trace block at each tier; SpeedupPct is the relative drop
	// (negative when tier 2 lost).
	Tier1NsPerBlock float64
	Tier2NsPerBlock float64
	SpeedupPct      float64
	// CompiledShare is the fraction of tier-2 trace dispatches served by a
	// compiled form.
	CompiledShare float64
}

// MeasureTierThroughput times one workload's trace-mode run at tier 1
// (compilation off) and tier 2 (hot traces promoted to superinstruction
// form after BenchTierUpDispatches dispatches). Both legs run with
// value-flow facts attached so tier 2 gets its guard proofs, and both use
// the same profiler parameters — the config tier knobs are the only
// difference. Repeats are interleaved (tier1, tier2, tier1, ...) so
// machine-load drift biases both tiers equally; the minimum wall per tier
// is kept.
func (s *Suite) MeasureTierThroughput(name string) (TierThroughput, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return TierThroughput{}, err
	}
	repeats := s.Repeats
	if repeats <= 0 {
		repeats = 3
	}

	timedOnce := func(config core.Config) (time.Duration, *stats.Counters, error) {
		sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
			Mode:     core.ModeTrace,
			Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
			Config:   config,
			Facts:    c.facts,
			MaxSteps: s.MaxSteps,
		})
		if err != nil {
			return 0, nil, err
		}
		runtime.GC()
		start := time.Now()
		if err := sess.Run(); err != nil && !stepLimited(err) {
			return 0, nil, err
		}
		return time.Since(start), sess.Counters, nil
	}

	configs := []core.Config{
		{},
		{CompileTraces: true, TierUpDispatches: BenchTierUpDispatches},
	}
	walls := make([]time.Duration, len(configs))
	ctrs := make([]*stats.Counters, len(configs))
	for i := 0; i < repeats; i++ {
		for ci, config := range configs {
			w, ctr, err := timedOnce(config)
			if err != nil {
				return TierThroughput{}, err
			}
			if ctrs[ci] == nil || w < walls[ci] {
				walls[ci] = w
				ctrs[ci] = ctr
			}
		}
	}

	tt := TierThroughput{
		Workload:    name,
		Tier1Wall:   walls[0],
		Tier2Wall:   walls[1],
		TraceBlocks: ctrs[0].BlocksInTraces,
	}
	if tt.TraceBlocks > 0 {
		tt.Tier1NsPerBlock = float64(walls[0].Nanoseconds()) / float64(tt.TraceBlocks)
	}
	if b2 := ctrs[1].BlocksInTraces; b2 > 0 {
		tt.Tier2NsPerBlock = float64(walls[1].Nanoseconds()) / float64(b2)
	}
	if tt.Tier1NsPerBlock > 0 {
		tt.SpeedupPct = (tt.Tier1NsPerBlock - tt.Tier2NsPerBlock) / tt.Tier1NsPerBlock * 100
	}
	if td := ctrs[1].TraceDispatches; td > 0 {
		tt.CompiledShare = float64(ctrs[1].CompiledDispatches) / float64(td)
	}
	return tt, nil
}

// measureRunAllocs counts heap allocations per block dispatch over one
// profiled run. Session construction is excluded; the run itself (VM frame
// churn, BCG node/edge creation during warm-up) is included.
func (s *Suite) measureRunAllocs(name string) (float64, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return 0, err
	}
	sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
		Mode:     core.ModeProfile,
		Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
		MaxSteps: s.MaxSteps,
	})
	if err != nil {
		return 0, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := sess.Run(); err != nil && !stepLimited(err) {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	if sess.Counters.BlockDispatches == 0 {
		return 0, nil
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(sess.Counters.BlockDispatches), nil
}

// HookFastPathAllocs measures steady-state allocations per OnDispatch on a
// warmed branch context — the paper's "two comparisons, two pointer
// evaluations, one assignment" fast path. The arena/free-list BCG keeps
// this at exactly 0.
func HookFastPathAllocs() float64 {
	g, err := profile.New(profile.DefaultParams(), nil, nil)
	if err != nil {
		return -1
	}
	seq := []cfg.BlockID{1, 2, 3, 4}
	dispatch := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for i := 1; i < len(seq); i++ {
				g.OnDispatch(seq[i-1], seq[i])
			}
			g.OnDispatch(seq[len(seq)-1], seq[0])
		}
	}
	dispatch(1024) // warm: past start delay and several decay cycles
	const rounds = 25_000
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	dispatch(rounds)
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds*len(seq))
}

// GateOptions are the regression thresholds of the CI bench gate.
type GateOptions struct {
	// RelOverheadPct is the allowed relative growth of a workload's
	// overhead_pct (0.10 = a 10% regression fails).
	RelOverheadPct float64
	// AbsOverheadPct is the absolute slack in percentage points, the noise
	// floor for workloads whose overhead is near (or below) zero. A single
	// workload's wall clock on a shared CI runner is noisy, so this floor
	// is generous; the mean and allocation gates below are the tight ones.
	AbsOverheadPct float64
	// MeanAbsOverheadPct is the absolute slack for the suite-wide mean
	// overhead_pct. Noise averages out across workloads, so the mean gate
	// runs much tighter than the per-workload one and is the primary
	// wall-clock regression signal.
	MeanAbsOverheadPct float64
	// RelAllocs is the allowed relative growth of a workload's
	// allocs_per_dispatch. Allocation counts are deterministic, so this
	// gate is tight and catches hot-path regressions wall clock cannot.
	RelAllocs float64
	// AbsAllocs is the absolute allocs/dispatch slack under RelAllocs.
	AbsAllocs float64
	// MinTierWins is the number of workloads on which the tier-2 compiled
	// form must beat tier-1 in-trace dispatch cost outright (speedup > 0).
	// Applied whenever the current report carries tier data; 0 disables.
	MinTierWins int
	// TierSpeedupSlackPp is the allowed per-workload drop, in percentage
	// points, of the tier-2 speedup below the baseline report's. Generous
	// for the same reason AbsOverheadPct is: single-workload wall clock on
	// a shared runner is noisy; MinTierWins is the structural floor.
	TierSpeedupSlackPp float64
}

// DefaultGateOptions returns the thresholds the CI job uses: >10% relative
// regression in per-dispatch profiler overhead fails — judged tightly on
// the suite mean (3pp absolute floor) and loosely per workload (15pp floor
// for single-run noise) — as does >10% growth in allocations per dispatch
// or any allocation on the hook fast path.
func DefaultGateOptions() GateOptions {
	return GateOptions{
		RelOverheadPct:     0.10,
		AbsOverheadPct:     15.0,
		MeanAbsOverheadPct: 3.0,
		RelAllocs:          0.10,
		AbsAllocs:          0.005,
		MinTierWins:        3,
		TierSpeedupSlackPp: 15.0,
	}
}

// CompareBenchReports checks cur against base and returns a human-readable
// violation per regression (empty means the gate passes). Raw ns/dispatch
// is machine-dependent, so the gate compares overhead_pct — profiled vs
// plain on the same machine and run — plus the zero-allocation pin on the
// hook fast path.
func CompareBenchReports(base, cur BenchReport, opt GateOptions) []string {
	var violations []string
	if base.Schema != BenchSchema || cur.Schema != BenchSchema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q, current %q, want %q", base.Schema, cur.Schema, BenchSchema)}
	}
	if cur.HookFastPathAllocs > 0 {
		violations = append(violations, fmt.Sprintf(
			"hook fast path allocates: %.4f allocs/dispatch, want 0", cur.HookFastPathAllocs))
	}
	baseByName := make(map[string]BenchWorkload, len(base.Workloads))
	for _, w := range base.Workloads {
		baseByName[w.Name] = w
	}
	var baseMeanSum, curMeanSum float64
	var meanN int
	for _, w := range cur.Workloads {
		b, ok := baseByName[w.Name]
		if !ok {
			continue // new workload: nothing to compare against
		}
		delete(baseByName, w.Name)
		baseMeanSum += b.OverheadPct
		curMeanSum += w.OverheadPct
		meanN++
		limit := b.OverheadPct + opt.AbsOverheadPct
		if rel := b.OverheadPct * (1 + opt.RelOverheadPct); rel > limit {
			limit = rel
		}
		if w.OverheadPct > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: profiler overhead %.2f%% of dispatch cost exceeds gate %.2f%% (baseline %.2f%%; %.1f vs %.1f ns/dispatch overhead)",
				w.Name, w.OverheadPct, limit, b.OverheadPct, w.OverheadNsPerDispatch, b.OverheadNsPerDispatch))
		}
		if allocLimit := b.AllocsPerDispatch*(1+opt.RelAllocs) + opt.AbsAllocs; w.AllocsPerDispatch > allocLimit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.4f allocs/dispatch exceeds gate %.4f (baseline %.4f)",
				w.Name, w.AllocsPerDispatch, allocLimit, b.AllocsPerDispatch))
		}
		// Per-workload tier regression: the compiled tier's relative win
		// must not collapse below the baseline's minus the slack. Only when
		// both reports measured this workload's tiers (a pre-tier baseline
		// has no claim to compare against).
		if b.Tier1NsPerTraceBlock > 0 && w.Tier1NsPerTraceBlock > 0 {
			if floor := b.TierSpeedupPct - opt.TierSpeedupSlackPp; w.TierSpeedupPct < floor {
				violations = append(violations, fmt.Sprintf(
					"%s: tier-2 in-trace speedup %.1f%% fell below gate %.1f%% (baseline %.1f%%; %.1f vs %.1f ns/trace-block at tier 2)",
					w.Name, w.TierSpeedupPct, floor, b.TierSpeedupPct,
					w.Tier2NsPerTraceBlock, b.Tier2NsPerTraceBlock))
			}
		}
	}
	if meanN > 0 {
		baseMean := baseMeanSum / float64(meanN)
		curMean := curMeanSum / float64(meanN)
		limit := baseMean*(1+opt.RelOverheadPct) + opt.MeanAbsOverheadPct
		if curMean > limit {
			violations = append(violations, fmt.Sprintf(
				"suite mean profiler overhead %.2f%% of dispatch cost exceeds gate %.2f%% (baseline mean %.2f%% over %d workloads)",
				curMean, limit, baseMean, meanN))
		}
	}
	for name := range baseByName {
		violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from current report", name))
	}

	// Structural tier floor: with tier data present, the compiled form must
	// beat the block-by-block trace walk outright on at least MinTierWins
	// workloads — the central claim of the second tier, independent of any
	// baseline numbers. A current report that dropped the tier measurement
	// while the baseline carries it is itself a violation: silently losing
	// the gate's teeth must not read as a pass.
	baseHasTier, curHasTier := reportHasTier(base), reportHasTier(cur)
	if baseHasTier && !curHasTier {
		violations = append(violations, "baseline carries tier-throughput data but the current report measured none")
	}
	if curHasTier && opt.MinTierWins > 0 {
		wins := 0
		for _, w := range cur.Workloads {
			if w.Tier1NsPerTraceBlock > 0 && w.TierSpeedupPct > 0 {
				wins++
			}
		}
		if wins < opt.MinTierWins {
			violations = append(violations, fmt.Sprintf(
				"tier-2 compiled traces beat tier-1 on only %d of %d workloads, want at least %d",
				wins, len(cur.Workloads), opt.MinTierWins))
		}
	}
	return violations
}

// reportHasTier reports whether any workload in rep carries a tier
// throughput measurement (pre-tier reports decode with the fields zero).
func reportHasTier(rep BenchReport) bool {
	for _, w := range rep.Workloads {
		if w.Tier1NsPerTraceBlock > 0 {
			return true
		}
	}
	return false
}

// FormatBenchReport renders the report as an aligned table for stdout.
func FormatBenchReport(rep BenchReport) string {
	t := Table{
		Title: fmt.Sprintf("Benchmark report (%s, %s/%s, repeats %d, maxsteps %d, hook allocs %.4f)",
			rep.GoVersion, rep.GOOS, rep.GOARCH, rep.Repeats, rep.MaxSteps, rep.HookFastPathAllocs),
		Columns: []string{"benchmark", "dispatches (M)", "plain ns/disp", "profiled ns/disp", "overhead ns", "overhead %", "allocs/disp", "t1 ns/tblock", "t2 ns/tblock", "tier2 gain", "compiled share"},
	}
	for _, w := range rep.Workloads {
		tier1, tier2, gain, share := "-", "-", "-", "-"
		if w.Tier1NsPerTraceBlock > 0 {
			tier1 = fmt.Sprintf("%.1f", w.Tier1NsPerTraceBlock)
			tier2 = fmt.Sprintf("%.1f", w.Tier2NsPerTraceBlock)
			gain = fmt.Sprintf("%.1f%%", w.TierSpeedupPct)
			share = fmt.Sprintf("%.0f%%", w.CompiledShare*100)
		}
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.2f", float64(w.Dispatches)/1e6),
			fmt.Sprintf("%.1f", w.PlainNsPerDispatch),
			fmt.Sprintf("%.1f", w.ProfiledNsPerDispatch),
			fmt.Sprintf("%.1f", w.OverheadNsPerDispatch),
			fmt.Sprintf("%.1f%%", w.OverheadPct),
			fmt.Sprintf("%.3f", w.AllocsPerDispatch),
			tier1, tier2, gain, share,
		})
	}
	return t.Format()
}
