// Machine-readable benchmark reports and the CI bench gate. BenchReport
// measures the paper's central performance claim — per-dispatch profiler
// overhead — for every workload and serializes it as JSON
// (cmd/tracebench -bench-json); CompareBenchReports checks a fresh report
// against a committed baseline and reports regressions
// (cmd/tracebench -bench-gate).
package harness

import (
	"fmt"
	"runtime"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/profile"
)

// BenchSchema identifies the JSON layout of BenchReport. Bump on any
// incompatible field change so the CI gate fails loudly instead of
// comparing mismatched reports.
const BenchSchema = "tracebench/bench/v1"

// BenchWorkload is one workload's overhead measurement.
type BenchWorkload struct {
	Name       string `json:"name"`
	Dispatches int64  `json:"dispatches"`
	// PlainNsPerDispatch and ProfiledNsPerDispatch are wall-clock
	// (minimum of Repeats runs) divided by block dispatches, without and
	// with the BCG profiler hook attached.
	PlainNsPerDispatch    float64 `json:"plain_ns_per_dispatch"`
	ProfiledNsPerDispatch float64 `json:"profiled_ns_per_dispatch"`
	// OverheadNsPerDispatch = profiled − plain; may be slightly negative
	// in the noise when the profiler is effectively free.
	OverheadNsPerDispatch float64 `json:"overhead_ns_per_dispatch"`
	// OverheadPct normalizes the overhead by the plain dispatch cost
	// (machine-independent, which is what the CI gate compares).
	OverheadPct float64 `json:"overhead_pct"`
	// AllocsPerDispatch is heap allocations per block dispatch over a
	// whole profiled run (includes VM frame churn and BCG warm-up).
	AllocsPerDispatch float64 `json:"allocs_per_dispatch"`
}

// BenchReport is the full benchmark trajectory record.
type BenchReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	Repeats   int    `json:"repeats"`
	MaxSteps  int64  `json:"max_steps"`
	// HookFastPathAllocs is the steady-state allocations per profiler hook
	// invocation on a warmed branch context; the dense-index BCG pins it
	// at exactly 0.
	HookFastPathAllocs float64         `json:"hook_fast_path_allocs"`
	Notes              string          `json:"notes,omitempty"`
	Workloads          []BenchWorkload `json:"workloads"`
}

// BenchReport measures every workload in the suite and assembles the
// report. Wall-clock fields honour Suite.Repeats and Suite.MaxSteps.
func (s *Suite) BenchReport() (BenchReport, error) {
	rep := BenchReport{
		Schema:             BenchSchema,
		GoVersion:          runtime.Version(),
		GOOS:               runtime.GOOS,
		GOARCH:             runtime.GOARCH,
		Repeats:            s.Repeats,
		MaxSteps:           s.MaxSteps,
		HookFastPathAllocs: HookFastPathAllocs(),
	}
	for _, name := range s.Workloads {
		o, err := s.MeasureOverhead(name)
		if err != nil {
			return BenchReport{}, err
		}
		allocs, err := s.measureRunAllocs(name)
		if err != nil {
			return BenchReport{}, err
		}
		w := BenchWorkload{
			Name:              name,
			Dispatches:        o.Dispatches,
			AllocsPerDispatch: allocs,
		}
		if o.Dispatches > 0 {
			w.PlainNsPerDispatch = float64(o.PlainWall.Nanoseconds()) / float64(o.Dispatches)
			w.ProfiledNsPerDispatch = float64(o.ProfileWall.Nanoseconds()) / float64(o.Dispatches)
			w.OverheadNsPerDispatch = w.ProfiledNsPerDispatch - w.PlainNsPerDispatch
			if w.PlainNsPerDispatch > 0 {
				w.OverheadPct = w.OverheadNsPerDispatch / w.PlainNsPerDispatch * 100
			}
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep, nil
}

// measureRunAllocs counts heap allocations per block dispatch over one
// profiled run. Session construction is excluded; the run itself (VM frame
// churn, BCG node/edge creation during warm-up) is included.
func (s *Suite) measureRunAllocs(name string) (float64, error) {
	c, err := s.compileWorkload(name)
	if err != nil {
		return 0, err
	}
	sess, err := core.NewSession(c.prog, c.cfg, core.SessionOptions{
		Mode:     core.ModeProfile,
		Params:   profile.Params{StartDelay: DefaultDelay, Threshold: DefaultThreshold, DecayInterval: 256},
		MaxSteps: s.MaxSteps,
	})
	if err != nil {
		return 0, err
	}
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := sess.Run(); err != nil && !stepLimited(err) {
		return 0, err
	}
	runtime.ReadMemStats(&m1)
	if sess.Counters.BlockDispatches == 0 {
		return 0, nil
	}
	return float64(m1.Mallocs-m0.Mallocs) / float64(sess.Counters.BlockDispatches), nil
}

// HookFastPathAllocs measures steady-state allocations per OnDispatch on a
// warmed branch context — the paper's "two comparisons, two pointer
// evaluations, one assignment" fast path. The arena/free-list BCG keeps
// this at exactly 0.
func HookFastPathAllocs() float64 {
	g, err := profile.New(profile.DefaultParams(), nil, nil)
	if err != nil {
		return -1
	}
	seq := []cfg.BlockID{1, 2, 3, 4}
	dispatch := func(rounds int) {
		for r := 0; r < rounds; r++ {
			for i := 1; i < len(seq); i++ {
				g.OnDispatch(seq[i-1], seq[i])
			}
			g.OnDispatch(seq[len(seq)-1], seq[0])
		}
	}
	dispatch(1024) // warm: past start delay and several decay cycles
	const rounds = 25_000
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	dispatch(rounds)
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(rounds*len(seq))
}

// GateOptions are the regression thresholds of the CI bench gate.
type GateOptions struct {
	// RelOverheadPct is the allowed relative growth of a workload's
	// overhead_pct (0.10 = a 10% regression fails).
	RelOverheadPct float64
	// AbsOverheadPct is the absolute slack in percentage points, the noise
	// floor for workloads whose overhead is near (or below) zero. A single
	// workload's wall clock on a shared CI runner is noisy, so this floor
	// is generous; the mean and allocation gates below are the tight ones.
	AbsOverheadPct float64
	// MeanAbsOverheadPct is the absolute slack for the suite-wide mean
	// overhead_pct. Noise averages out across workloads, so the mean gate
	// runs much tighter than the per-workload one and is the primary
	// wall-clock regression signal.
	MeanAbsOverheadPct float64
	// RelAllocs is the allowed relative growth of a workload's
	// allocs_per_dispatch. Allocation counts are deterministic, so this
	// gate is tight and catches hot-path regressions wall clock cannot.
	RelAllocs float64
	// AbsAllocs is the absolute allocs/dispatch slack under RelAllocs.
	AbsAllocs float64
}

// DefaultGateOptions returns the thresholds the CI job uses: >10% relative
// regression in per-dispatch profiler overhead fails — judged tightly on
// the suite mean (3pp absolute floor) and loosely per workload (15pp floor
// for single-run noise) — as does >10% growth in allocations per dispatch
// or any allocation on the hook fast path.
func DefaultGateOptions() GateOptions {
	return GateOptions{
		RelOverheadPct:     0.10,
		AbsOverheadPct:     15.0,
		MeanAbsOverheadPct: 3.0,
		RelAllocs:          0.10,
		AbsAllocs:          0.005,
	}
}

// CompareBenchReports checks cur against base and returns a human-readable
// violation per regression (empty means the gate passes). Raw ns/dispatch
// is machine-dependent, so the gate compares overhead_pct — profiled vs
// plain on the same machine and run — plus the zero-allocation pin on the
// hook fast path.
func CompareBenchReports(base, cur BenchReport, opt GateOptions) []string {
	var violations []string
	if base.Schema != BenchSchema || cur.Schema != BenchSchema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q, current %q, want %q", base.Schema, cur.Schema, BenchSchema)}
	}
	if cur.HookFastPathAllocs > 0 {
		violations = append(violations, fmt.Sprintf(
			"hook fast path allocates: %.4f allocs/dispatch, want 0", cur.HookFastPathAllocs))
	}
	baseByName := make(map[string]BenchWorkload, len(base.Workloads))
	for _, w := range base.Workloads {
		baseByName[w.Name] = w
	}
	var baseMeanSum, curMeanSum float64
	var meanN int
	for _, w := range cur.Workloads {
		b, ok := baseByName[w.Name]
		if !ok {
			continue // new workload: nothing to compare against
		}
		delete(baseByName, w.Name)
		baseMeanSum += b.OverheadPct
		curMeanSum += w.OverheadPct
		meanN++
		limit := b.OverheadPct + opt.AbsOverheadPct
		if rel := b.OverheadPct * (1 + opt.RelOverheadPct); rel > limit {
			limit = rel
		}
		if w.OverheadPct > limit {
			violations = append(violations, fmt.Sprintf(
				"%s: profiler overhead %.2f%% of dispatch cost exceeds gate %.2f%% (baseline %.2f%%; %.1f vs %.1f ns/dispatch overhead)",
				w.Name, w.OverheadPct, limit, b.OverheadPct, w.OverheadNsPerDispatch, b.OverheadNsPerDispatch))
		}
		if allocLimit := b.AllocsPerDispatch*(1+opt.RelAllocs) + opt.AbsAllocs; w.AllocsPerDispatch > allocLimit {
			violations = append(violations, fmt.Sprintf(
				"%s: %.4f allocs/dispatch exceeds gate %.4f (baseline %.4f)",
				w.Name, w.AllocsPerDispatch, allocLimit, b.AllocsPerDispatch))
		}
	}
	if meanN > 0 {
		baseMean := baseMeanSum / float64(meanN)
		curMean := curMeanSum / float64(meanN)
		limit := baseMean*(1+opt.RelOverheadPct) + opt.MeanAbsOverheadPct
		if curMean > limit {
			violations = append(violations, fmt.Sprintf(
				"suite mean profiler overhead %.2f%% of dispatch cost exceeds gate %.2f%% (baseline mean %.2f%% over %d workloads)",
				curMean, limit, baseMean, meanN))
		}
	}
	for name := range baseByName {
		violations = append(violations, fmt.Sprintf("%s: present in baseline but missing from current report", name))
	}
	return violations
}

// FormatBenchReport renders the report as an aligned table for stdout.
func FormatBenchReport(rep BenchReport) string {
	t := Table{
		Title: fmt.Sprintf("Benchmark report (%s, %s/%s, repeats %d, maxsteps %d, hook allocs %.4f)",
			rep.GoVersion, rep.GOOS, rep.GOARCH, rep.Repeats, rep.MaxSteps, rep.HookFastPathAllocs),
		Columns: []string{"benchmark", "dispatches (M)", "plain ns/disp", "profiled ns/disp", "overhead ns", "overhead %", "allocs/disp"},
	}
	for _, w := range rep.Workloads {
		t.Rows = append(t.Rows, []string{
			w.Name,
			fmt.Sprintf("%.2f", float64(w.Dispatches)/1e6),
			fmt.Sprintf("%.1f", w.PlainNsPerDispatch),
			fmt.Sprintf("%.1f", w.ProfiledNsPerDispatch),
			fmt.Sprintf("%.1f", w.OverheadNsPerDispatch),
			fmt.Sprintf("%.1f%%", w.OverheadPct),
			fmt.Sprintf("%.3f", w.AllocsPerDispatch),
		})
	}
	return t.Format()
}
