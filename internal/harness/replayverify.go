package harness

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/replay"
	"repro/internal/serve"
)

// ReplayProgramCounts are the per-program counters a deterministic replay
// must reproduce exactly: how often the program ran and what its runs did.
type ReplayProgramCounts struct {
	Runs            int64 `json:"runs"`
	Instrs          int64 `json:"instrs"`
	BlockDispatches int64 `json:"block_dispatches"`
	TraceDispatches int64 `json:"trace_dispatches"`
	TracesBuilt     int64 `json:"traces_built"`
	// Tier-2 counters: zero unless the config enables CompileTraces, in
	// which case promotion points and superinstruction dispatch counts must
	// replay exactly like everything else.
	TracesCompiled     int64 `json:"traces_compiled,omitempty"`
	CompiledDispatches int64 `json:"compiled_dispatches,omitempty"`
}

// ReplayVerifyReport is the outcome of replaying one traffic log repeatedly
// against fresh services.
type ReplayVerifyReport struct {
	Records  int `json:"records"`
	Programs int `json:"programs"`
	Rounds   int `json:"rounds"`
	// Deterministic is true when every round produced identical per-program
	// counts; Divergence describes the first mismatch otherwise.
	Deterministic bool   `json:"deterministic"`
	Divergence    string `json:"divergence,omitempty"`
	// PerProgram holds round one's counts (the reference).
	PerProgram map[string]ReplayProgramCounts `json:"per_program"`
}

// VerifyReplayDeterminism replays the log `rounds` times, each against a
// fresh service, and checks that every round reproduces identical
// per-program run and dispatch counters — the property that makes a recorded
// storm a regression test. The service config is forced into its
// deterministic shape: isolated per-request profilers (no epoch sharding,
// whose merge points depend on worker interleaving), no snapshot
// persistence (a warm start shifts block dispatches into trace dispatches),
// and enough submission headroom that backpressure never refuses a request
// in one round but not another. The caller's Workers/TraceCache settings are
// honoured; the breaker should be left disabled (its cool-down probes are
// wall-clock dependent).
func VerifyReplayDeterminism(ctx context.Context, l *replay.Log, rounds int, cfg serve.Config) (*ReplayVerifyReport, error) {
	if len(l.Records) == 0 {
		return nil, fmt.Errorf("harness: empty traffic log")
	}
	if rounds < 2 {
		rounds = 2
	}
	cfg.EpochRuns = -1
	cfg.SnapshotDir = ""
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	opts := replay.PlayOptions{
		Scale: 0, // max speed: determinism must not depend on pacing
		// Never submit more than the pool can hold, so no round sees a
		// backpressure refusal the others don't.
		MaxInFlight: cfg.Workers + cfg.QueueDepth,
	}

	rep := &ReplayVerifyReport{
		Records:       len(l.Records),
		Programs:      len(l.Programs()),
		Rounds:        rounds,
		Deterministic: true,
	}
	for round := 1; round <= rounds; round++ {
		svc := serve.New(cfg)
		res, err := svc.Replay(ctx, l, opts)
		counts := collectReplayCounts(svc)
		svc.Close()
		if err != nil {
			return nil, fmt.Errorf("harness: replay round %d: %w", round, err)
		}
		if res.Failed > 0 {
			return nil, fmt.Errorf("harness: replay round %d: %d requests failed (first: %v)",
				round, res.Failed, res.Errors)
		}
		if round == 1 {
			rep.PerProgram = counts
			continue
		}
		if diff := diffReplayCounts(rep.PerProgram, counts); diff != "" {
			rep.Deterministic = false
			rep.Divergence = fmt.Sprintf("round %d vs round 1: %s", round, diff)
			return rep, nil
		}
	}
	return rep, nil
}

func collectReplayCounts(svc *serve.Service) map[string]ReplayProgramCounts {
	out := make(map[string]ReplayProgramCounts)
	for name, ps := range svc.Stats().PerProgram {
		out[name] = ReplayProgramCounts{
			Runs:            ps.Runs,
			Instrs:          ps.Counters.Instrs,
			BlockDispatches: ps.Counters.BlockDispatches,
			TraceDispatches: ps.Counters.TraceDispatches,
			TracesBuilt:     ps.Counters.TracesBuilt,

			TracesCompiled:     ps.Counters.TracesCompiled,
			CompiledDispatches: ps.Counters.CompiledDispatches,
		}
	}
	return out
}

func diffReplayCounts(a, b map[string]ReplayProgramCounts) string {
	names := make(map[string]bool, len(a)+len(b))
	for n := range a {
		names[n] = true
	}
	for n := range b {
		names[n] = true
	}
	sorted := make([]string, 0, len(names))
	for n := range names {
		sorted = append(sorted, n)
	}
	sort.Strings(sorted)
	for _, n := range sorted {
		ca, oka := a[n]
		cb, okb := b[n]
		if !oka || !okb {
			return fmt.Sprintf("program %q ran in one round but not the other", n)
		}
		if ca != cb {
			return fmt.Sprintf("program %q: %+v != %+v", n, ca, cb)
		}
	}
	return ""
}
