package harness

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/replay"
	"repro/internal/serve"
)

// TestCommittedFixtureReplaysDeterministically is the acceptance check:
// replaying the committed mixed-tenant storm fixture twice yields identical
// per-program dispatch and trace-built counters.
func TestCommittedFixtureReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full storm twice")
	}
	path := filepath.Join("..", "replay", "testdata", "storm-mixed"+replay.FileExt)
	l, err := replay.Load(path)
	if err != nil {
		t.Fatalf("loading committed fixture: %v", err)
	}
	rep, err := VerifyReplayDeterminism(context.Background(), l, 2, serve.Config{Workers: 4})
	if err != nil {
		t.Fatalf("VerifyReplayDeterminism: %v", err)
	}
	if !rep.Deterministic {
		t.Fatalf("fixture replay diverged: %s", rep.Divergence)
	}
	if rep.Programs < 5 {
		t.Fatalf("fixture covers %d programs, want mixed-tenant", rep.Programs)
	}
	var traced bool
	for name, c := range rep.PerProgram {
		if c.Runs == 0 || c.Instrs == 0 {
			t.Errorf("program %q replayed with no work: %+v", name, c)
		}
		if c.TracesBuilt > 0 && c.TraceDispatches > 0 {
			traced = true
		}
	}
	if !traced {
		t.Error("no program built and dispatched traces; the storm exercises nothing")
	}
}

func TestVerifyReplayDeterminismRejectsEmpty(t *testing.T) {
	if _, err := VerifyReplayDeterminism(context.Background(), &replay.Log{}, 2, serve.Config{}); err == nil {
		t.Fatal("empty log accepted")
	}
}
