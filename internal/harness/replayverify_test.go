package harness

import (
	"context"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/serve"
)

// TestCommittedFixtureReplaysDeterministically is the acceptance check:
// replaying the committed mixed-tenant storm fixture twice yields identical
// per-program dispatch and trace-built counters.
func TestCommittedFixtureReplaysDeterministically(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full storm twice")
	}
	path := filepath.Join("..", "replay", "testdata", "storm-mixed"+replay.FileExt)
	l, err := replay.Load(path)
	if err != nil {
		t.Fatalf("loading committed fixture: %v", err)
	}
	rep, err := VerifyReplayDeterminism(context.Background(), l, 2, serve.Config{Workers: 4})
	if err != nil {
		t.Fatalf("VerifyReplayDeterminism: %v", err)
	}
	if !rep.Deterministic {
		t.Fatalf("fixture replay diverged: %s", rep.Divergence)
	}
	if rep.Programs < 5 {
		t.Fatalf("fixture covers %d programs, want mixed-tenant", rep.Programs)
	}
	var traced bool
	for name, c := range rep.PerProgram {
		if c.Runs == 0 || c.Instrs == 0 {
			t.Errorf("program %q replayed with no work: %+v", name, c)
		}
		if c.TracesBuilt > 0 && c.TraceDispatches > 0 {
			traced = true
		}
	}
	if !traced {
		t.Error("no program built and dispatched traces; the storm exercises nothing")
	}
}

// TestCommittedFixtureReplaysDeterministicallyTier2 replays the same
// committed fixture with tier-2 compilation enabled and an aggressive
// promotion threshold: superinstruction execution must not perturb any
// replayed counter between rounds, and the storm must actually promote
// at least one trace so the check is non-vacuous.
func TestCommittedFixtureReplaysDeterministicallyTier2(t *testing.T) {
	if testing.Short() {
		t.Skip("replays a full storm twice")
	}
	path := filepath.Join("..", "replay", "testdata", "storm-mixed"+replay.FileExt)
	l, err := replay.Load(path)
	if err != nil {
		t.Fatalf("loading committed fixture: %v", err)
	}
	cfg := serve.Config{
		Workers:    4,
		TraceCache: core.Config{CompileTraces: true, TierUpDispatches: 2, TierDownGuardExits: 4},
	}
	rep, err := VerifyReplayDeterminism(context.Background(), l, 2, cfg)
	if err != nil {
		t.Fatalf("VerifyReplayDeterminism: %v", err)
	}
	if !rep.Deterministic {
		t.Fatalf("tier-2 fixture replay diverged: %s", rep.Divergence)
	}
	var compiled bool
	for _, c := range rep.PerProgram {
		if c.TracesCompiled > 0 && c.CompiledDispatches > 0 {
			compiled = true
		}
	}
	if !compiled {
		t.Error("no program promoted a trace to tier 2; the check is vacuous")
	}
}

func TestVerifyReplayDeterminismRejectsEmpty(t *testing.T) {
	if _, err := VerifyReplayDeterminism(context.Background(), &replay.Log{}, 2, serve.Config{}); err == nil {
		t.Fatal("empty log accepted")
	}
}
