package harness

import (
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/profile"
)

// smallSuite runs only the fastest workload to keep the test quick.
func smallSuite() *Suite {
	s := NewSuite()
	s.Workloads = []string{"soot"}
	s.Repeats = 1
	return s
}

func TestRunProducesMetrics(t *testing.T) {
	s := smallSuite()
	r, err := s.Run("soot", core.ModeTrace, profile.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if r.Counters.Instrs == 0 || r.Metrics.CompletionRate == 0 {
		t.Errorf("empty result: %+v", r.Metrics)
	}
	if r.NumTraces == 0 {
		t.Error("no traces cached")
	}
}

func TestThresholdRunsAreCached(t *testing.T) {
	s := smallSuite()
	a, err := s.thresholdRun("soot", 0.97)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.thresholdRun("soot", 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if a.Counters != b.Counters {
		t.Error("threshold run not cached")
	}
	if len(s.SortedKeys()) != 1 {
		t.Errorf("cached keys = %v", s.SortedKeys())
	}
}

func TestTablesRender(t *testing.T) {
	s := smallSuite()
	t1, err := s.TableI()
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != len(Thresholds) {
		t.Errorf("Table I rows = %d", len(t1.Rows))
	}
	out := t1.Format()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "soot") {
		t.Errorf("Table I format:\n%s", out)
	}
	t2, err := s.TableII()
	if err != nil {
		t.Fatal(err)
	}
	t3, err := s.TableIII()
	if err != nil {
		t.Fatal(err)
	}
	t4, err := s.TableIV()
	if err != nil {
		t.Fatal(err)
	}
	t5, err := s.TableV()
	if err != nil {
		t.Fatal(err)
	}
	if len(t5.Rows) != len(Delays) {
		t.Errorf("Table V rows = %d", len(t5.Rows))
	}
	for _, tb := range []Table{t2, t3, t4, t5} {
		if len(tb.Columns) != 3 { // label + soot + average
			t.Errorf("%s: columns = %v", tb.Title, tb.Columns)
		}
		for _, row := range tb.Rows {
			if len(row) != len(tb.Columns) {
				t.Errorf("%s: ragged row %v", tb.Title, row)
			}
		}
	}
}

func TestShapeInvariantsOnSoot(t *testing.T) {
	// The paper's qualitative claims, checked on one workload:
	// completion rate >= threshold (approximately), and the trace event
	// interval grows with the start-state delay.
	s := smallSuite()
	for _, th := range Thresholds {
		r, err := s.thresholdRun("soot", th)
		if err != nil {
			t.Fatal(err)
		}
		if r.Metrics.CompletionRate < th-0.05 {
			t.Errorf("threshold %.2f: completion %.3f fell far below", th, r.Metrics.CompletionRate)
		}
	}
	var prev float64
	for i, d := range Delays {
		r, err := s.delayRun("soot", d)
		if err != nil {
			t.Fatal(err)
		}
		v := r.Metrics.TraceEventInterval
		if math.IsInf(v, 1) {
			continue
		}
		if i > 0 && v < prev*0.8 {
			t.Errorf("delay %d: event interval %.0f dropped well below delay %d's %.0f",
				d, v, Delays[i-1], prev)
		}
		prev = v
	}
}

func TestOverheadMeasurement(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock measurement")
	}
	s := smallSuite()
	o, err := s.MeasureOverhead("soot")
	if err != nil {
		t.Fatal(err)
	}
	if o.Dispatches == 0 || o.TraceDisp == 0 {
		t.Errorf("no dispatches measured: %+v", o)
	}
	if o.TraceDisp >= o.Dispatches {
		t.Errorf("trace dispatch (%d) did not reduce dispatches (%d)", o.TraceDisp, o.Dispatches)
	}
	if o.PlainWall <= 0 || o.ProfileWall <= 0 {
		t.Error("wall clocks not measured")
	}
	t6 := s.TableVII([]Overhead{o})
	if len(t6.Rows) != 1 {
		t.Error("Table VII empty")
	}
}

func TestBaselinesTable(t *testing.T) {
	s := smallSuite()
	tb, err := s.Baselines()
	if err != nil {
		t.Fatal(err)
	}
	// Four selectors per workload.
	if len(tb.Rows) != 4 {
		t.Errorf("baseline rows = %d, want 4", len(tb.Rows))
	}
	sel := map[string]bool{}
	for _, row := range tb.Rows {
		sel[row[1]] = true
	}
	for _, want := range []string{"bcg", "dynamo-net", "replay", "whaley"} {
		if !sel[want] {
			t.Errorf("missing selector %s", want)
		}
	}
}

func TestUnknownWorkloadErrors(t *testing.T) {
	s := NewSuite()
	if _, err := s.Run("nope", core.ModeTrace, profile.DefaultParams()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestTableFormatAlignment(t *testing.T) {
	tb := Table{
		Title:   "T",
		Columns: []string{"a", "bb"},
		Rows:    [][]string{{"xxx", "y"}},
	}
	out := tb.Format()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %d", len(lines))
	}
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned:\n%s", out)
	}
}

func TestOptimizabilityTable(t *testing.T) {
	s := smallSuite()
	tb, err := s.Optimizability()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 1 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	row := tb.Rows[0]
	if row[0] != "soot" || len(row) != len(tb.Columns) {
		t.Errorf("row malformed: %v", row)
	}
	if !strings.HasSuffix(row[len(row)-1], "%") {
		t.Errorf("weighted removable cell %q not a percentage", row[len(row)-1])
	}
}

func TestAblationTables(t *testing.T) {
	s := smallSuite()
	ad, err := s.AblationDecay()
	if err != nil {
		t.Fatal(err)
	}
	if len(ad.Rows) != len(DecayIntervals) {
		t.Errorf("decay ablation rows = %d, want %d", len(ad.Rows), len(DecayIntervals))
	}
	am, err := s.AblationMaxBlocks("soot")
	if err != nil {
		t.Fatal(err)
	}
	if len(am.Rows) != len(MaxBlocksSweep) {
		t.Errorf("max-blocks ablation rows = %d, want %d", len(am.Rows), len(MaxBlocksSweep))
	}
	for _, row := range am.Rows {
		if len(row) != len(am.Columns) {
			t.Errorf("ragged ablation row: %v", row)
		}
	}
}

func TestStabilityTable(t *testing.T) {
	s := smallSuite()
	tb, err := s.Stability()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if tb.Rows[0][0] != "bcg" || tb.Rows[1][0] != "dynamo-net" {
		t.Errorf("selector rows wrong: %v", tb.Rows)
	}
}
