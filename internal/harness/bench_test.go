package harness

import (
	"strings"
	"testing"
)

// tierReport builds a minimal two-sided report pair for gate tests: every
// workload at 5% profiler overhead, zero allocs, with the given tier-2
// speedups (a zero speedup still carries tier data; NaN-free).
func tierReport(speedups map[string]float64) BenchReport {
	rep := BenchReport{Schema: BenchSchema, Repeats: 1}
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		w := BenchWorkload{
			Name:                  name,
			Dispatches:            1_000_000,
			PlainNsPerDispatch:    100,
			ProfiledNsPerDispatch: 105,
			OverheadNsPerDispatch: 5,
			OverheadPct:           5,
		}
		if sp, ok := speedups[name]; ok {
			w.Tier1NsPerTraceBlock = 100
			w.Tier2NsPerTraceBlock = 100 * (1 - sp/100)
			w.TierSpeedupPct = sp
			w.CompiledShare = 0.9
		}
		rep.Workloads = append(rep.Workloads, w)
	}
	return rep
}

func allTiers(sp float64) map[string]float64 {
	m := make(map[string]float64)
	for _, name := range []string{"a", "b", "c", "d", "e", "f"} {
		m[name] = sp
	}
	return m
}

func TestBenchGateTierWinFloor(t *testing.T) {
	base := tierReport(allTiers(20))
	opt := DefaultGateOptions()

	// Healthy: every workload keeps its 20% speedup.
	if v := CompareBenchReports(base, tierReport(allTiers(20)), opt); len(v) != 0 {
		t.Errorf("healthy tier report flagged: %v", v)
	}

	// Only two of six workloads beat tier 1: below the structural floor.
	// Use speedups within the per-workload slack of the baseline so the
	// win-count rule is the one that fires.
	weak := allTiers(6)
	weak["a"], weak["b"] = 20, 20
	weak["c"], weak["d"], weak["e"], weak["f"] = -1, 6, -2, 6
	// d and f still win; a, b win; that's 4 — adjust to exactly 2 wins.
	weak["d"], weak["f"] = -3, -4
	v := CompareBenchReports(base, tierReport(weak), opt)
	found := false
	for _, s := range v {
		if strings.Contains(s, "beat tier-1 on only 2 of 6 workloads") {
			found = true
		}
	}
	if !found {
		t.Errorf("2-win report passed the %d-win floor: %v", opt.MinTierWins, v)
	}
}

func TestBenchGateTierSpeedupRegression(t *testing.T) {
	base := tierReport(allTiers(30))
	opt := DefaultGateOptions()

	// One workload's speedup collapses from 30% to 5%: past the slack.
	cur := allTiers(30)
	cur["c"] = 5
	v := CompareBenchReports(base, tierReport(cur), opt)
	found := false
	for _, s := range v {
		if strings.Contains(s, "c: tier-2 in-trace speedup") {
			found = true
		}
	}
	if !found {
		t.Errorf("25pp speedup collapse passed the %vpp slack gate: %v", opt.TierSpeedupSlackPp, v)
	}

	// A drop within the slack passes.
	cur["c"] = 30 - opt.TierSpeedupSlackPp + 1
	if v := CompareBenchReports(base, tierReport(cur), opt); len(v) != 0 {
		t.Errorf("in-slack speedup drop flagged: %v", v)
	}
}

func TestBenchGateTierDataPresence(t *testing.T) {
	opt := DefaultGateOptions()
	withTier := tierReport(allTiers(20))
	noTier := tierReport(nil)

	// Current report silently dropped the tier measurement: violation.
	v := CompareBenchReports(withTier, noTier, opt)
	found := false
	for _, s := range v {
		if strings.Contains(s, "measured none") {
			found = true
		}
	}
	if !found {
		t.Errorf("tierless current report against a tiered baseline passed: %v", v)
	}

	// Pre-tier baseline: the relative rules are moot, but a tier-carrying
	// current report still answers to the structural win floor.
	if v := CompareBenchReports(noTier, withTier, opt); len(v) != 0 {
		t.Errorf("tiered report against pre-tier baseline flagged: %v", v)
	}
	losing := tierReport(allTiers(-5))
	v = CompareBenchReports(noTier, losing, opt)
	if len(v) == 0 {
		t.Error("all-losing tier report passed the win floor against a pre-tier baseline")
	}

	// Two pre-tier reports: the tier rules stay out of the way entirely.
	if v := CompareBenchReports(noTier, noTier, opt); len(v) != 0 {
		t.Errorf("pre-tier vs pre-tier flagged: %v", v)
	}
}

// TestMeasureTierThroughput smoke-tests the measurement itself on one
// workload with a small step budget: both tiers produce a defined
// ns/trace-block figure and the tier-2 leg actually ran compiled forms
// (otherwise the speedup claim is vacuous).
func TestMeasureTierThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("runs a workload twice per repeat")
	}
	s := NewSuite()
	s.Repeats = 1
	s.MaxSteps = 400_000
	tt, err := s.MeasureTierThroughput("compress")
	if err != nil {
		t.Fatal(err)
	}
	if tt.TraceBlocks == 0 || tt.Tier1NsPerBlock <= 0 || tt.Tier2NsPerBlock <= 0 {
		t.Fatalf("undefined throughput measurement: %+v", tt)
	}
	if tt.CompiledShare <= 0 {
		t.Fatalf("tier-2 leg served no compiled dispatches: %+v", tt)
	}
}
