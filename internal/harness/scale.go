// Multicore scale-out measurement and the CI scalability gate. ScaleReport
// records throughput-vs-workers for the serving layer's sharded profiling
// path under a contention-adversarial load (zipf program popularity, hot-key
// traffic, mixed profiled/plain requests) and serializes as JSON
// (cmd/tracebench -scale-json); CompareScaleReports checks a fresh report
// against the committed baseline and a core-aware speedup floor
// (cmd/tracebench -scale-gate).
package harness

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/workload"
)

// ScaleSchema identifies the JSON layout of ScaleReport. Bump on any
// incompatible field change so the CI gate fails loudly instead of comparing
// mismatched reports.
const ScaleSchema = "tracebench/scale/v1"

// ScalePoint is one worker-count measurement.
type ScalePoint struct {
	Workers   int   `json:"workers"`
	Requests  int   `json:"requests"`
	Completed int64 `json:"completed"`
	// Retries counts backpressure retries the load generator absorbed.
	Retries int64 `json:"retries"`
	// WallMs is the load-generation wall clock in milliseconds.
	WallMs float64 `json:"wall_ms"`
	// Throughput is completed requests per second of wall time.
	Throughput float64 `json:"throughput_rps"`
	// Speedup is Throughput relative to the report's 1-worker point (1.0
	// for the 1-worker point itself).
	Speedup float64 `json:"speedup"`
	// EpochMerges is the service's completed epoch-merge count at drain —
	// evidence the run exercised the sharded path, not the isolated one.
	EpochMerges int64 `json:"epoch_merges"`
}

// ScaleReport is the full throughput-vs-workers record.
type ScaleReport struct {
	Schema    string `json:"schema"`
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// CPUs is runtime.NumCPU at measurement time; the gate's speedup floor
	// scales with it, since a 2-core runner cannot show a 3x speedup no
	// matter how well the service shards.
	CPUs       int          `json:"cpus"`
	GOMAXPROCS int          `json:"gomaxprocs"`
	Workloads  []string     `json:"workloads"`
	Mode       string       `json:"mode"`
	MaxSteps   int64        `json:"max_steps"`
	Skew       float64      `json:"skew"`
	HotRatio   float64      `json:"hot_ratio"`
	WriteFrac  float64      `json:"write_frac"`
	EpochRuns  int64        `json:"epoch_runs"`
	Points     []ScalePoint `json:"points"`
}

// ScaleOptions shapes MeasureScaling.
type ScaleOptions struct {
	// Workers are the pool sizes to measure (default 1, 2, 4, 8). The first
	// point is the speedup denominator, so it should be 1.
	Workers []int
	// Requests is the request count per point (default 128).
	Requests int
	// Warmup is the per-point untimed warmup request count, letting shards
	// learn and traces build before the clock starts (default 2x workers,
	// minimum 8).
	Warmup int
	// MaxSteps bounds each request (0 = unlimited; a capped run traps and
	// counts as failed, so any cap must exceed the longest workload).
	MaxSteps int64
	// Workloads are the programs in the mix (default: all built-ins).
	// Workloads[0] is the zipf/hot-key favourite.
	Workloads []string
	// Mode is the profiled mode of the mix (default core.ModeTrace).
	Mode core.Mode
	// Skew, HotRatio, WriteFrac, Seed are the contention knobs, forwarded
	// to the load generator (defaults 1.07, 0.25, 0.5, 1) — a zipf-popular
	// mix, a quarter of requests hammering one program, and half the
	// requests profiled ("writes") with the rest plain ("reads").
	Skew      float64
	HotRatio  float64
	WriteFrac float64
	Seed      uint64
	// EpochRuns is forwarded to serve.Config (default 16 here — shorter
	// than the serving default so every measured point crosses several
	// phase boundaries and the gate can insist merges actually happened).
	EpochRuns int64
}

func (o *ScaleOptions) fillDefaults() {
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 8}
	}
	if o.Requests <= 0 {
		o.Requests = 128
	}
	if o.EpochRuns == 0 {
		o.EpochRuns = 16
	}
	if o.Mode == core.ModePlain {
		o.Mode = core.ModeTrace
	}
	if o.Skew == 0 {
		o.Skew = 1.07
	}
	if o.HotRatio == 0 {
		o.HotRatio = 0.25
	}
	if o.WriteFrac == 0 {
		o.WriteFrac = 0.5
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// MeasureScaling runs the same contention-adversarial request mix through
// service pools of each opt.Workers size and reports throughput per point.
// Each point gets a fresh service (pre-compiled registry, untimed warmup),
// so the timed window measures steady-state serving: per-worker shards
// absorbing profiled runs with zero-allocation dispatch, epoch merges at
// phase boundaries, and no cross-worker state sharing on the hot path.
func MeasureScaling(opt ScaleOptions) (ScaleReport, error) {
	opt.fillDefaults()
	rep := ScaleReport{
		Schema:     ScaleSchema,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Workloads:  opt.Workloads,
		Mode:       opt.Mode.String(),
		MaxSteps:   opt.MaxSteps,
		Skew:       opt.Skew,
		HotRatio:   opt.HotRatio,
		WriteFrac:  opt.WriteFrac,
		EpochRuns:  opt.EpochRuns,
	}
	for _, workers := range opt.Workers {
		p, err := measureScalePoint(opt, workers)
		if err != nil {
			return ScaleReport{}, err
		}
		rep.Points = append(rep.Points, p)
	}
	if len(rep.Points) > 0 && rep.Points[0].Throughput > 0 {
		for i := range rep.Points {
			rep.Points[i].Speedup = rep.Points[i].Throughput / rep.Points[0].Throughput
		}
	}
	return rep, nil
}

func measureScalePoint(opt ScaleOptions, workers int) (ScalePoint, error) {
	s := serve.New(serve.Config{
		Workers:    workers,
		QueueDepth: opt.Requests,
		MaxSteps:   opt.MaxSteps,
		EpochRuns:  opt.EpochRuns,
	})
	defer s.Close()

	gen := serve.LoadGenConfig{
		// Enough clients to keep every worker fed without drowning the
		// queue; backpressure retries absorb the rest.
		Concurrency: 2 * workers,
		Requests:    opt.Requests,
		Workloads:   opt.Workloads,
		Mode:        opt.Mode,
		MaxSteps:    opt.MaxSteps,
		Skew:        opt.Skew,
		HotRatio:    opt.HotRatio,
		WriteFrac:   opt.WriteFrac,
		Seed:        opt.Seed,
		Retry:       &serve.Backoff{Base: time.Millisecond, Seed: opt.Seed},
	}
	if len(gen.Workloads) == 0 {
		gen.Workloads = workload.Names()
	}
	// Compilation is shared one-time work; keep it out of every point.
	for _, w := range gen.Workloads {
		if _, err := s.Registry().Workload(w); err != nil {
			return ScalePoint{}, err
		}
	}
	warmup := gen
	warmup.Requests = opt.Warmup
	if warmup.Requests <= 0 {
		warmup.Requests = 2 * workers
		if warmup.Requests < 8 {
			warmup.Requests = 8
		}
	}
	if res := serve.RunLoadGen(context.Background(), warmup, s.Do); res.Completed == 0 {
		return ScalePoint{}, fmt.Errorf("scale warmup (%d workers): no request completed: %v", workers, res.Errors)
	}

	res := serve.RunLoadGen(context.Background(), gen, s.Do)
	if res.Completed != int64(opt.Requests) {
		return ScalePoint{}, fmt.Errorf("scale point (%d workers): completed %d/%d: %v",
			workers, res.Completed, opt.Requests, res.Errors)
	}
	return ScalePoint{
		Workers:     workers,
		Requests:    opt.Requests,
		Completed:   res.Completed,
		Retries:     res.Retries,
		WallMs:      float64(res.Wall.Nanoseconds()) / 1e6,
		Throughput:  res.Throughput,
		EpochMerges: s.Stats().EpochMerges,
	}, nil
}

// ScaleGateOptions are the thresholds of the CI scalability gate.
type ScaleGateOptions struct {
	// MinSpeedup is the required top-point speedup over 1 worker on a
	// machine with at least as many cores as the top point has workers
	// (3.0 at 8 workers is the headline gate).
	MinSpeedup float64
	// PerCore relaxes the floor on smaller machines: the effective floor is
	// min(MinSpeedup, PerCore x min(topWorkers, CPUs)). A 4-core CI runner
	// must reach PerCore*4; a 1-core container is only asked not to
	// collapse below PerCore.
	PerCore float64
	// RelSlack is the allowed relative drop of the top-point speedup versus
	// the committed baseline, applied only when both reports were measured
	// on machines with the same CPU count (cross-machine throughput curves
	// are not comparable).
	RelSlack float64
}

// DefaultScaleGateOptions returns the thresholds the CI job uses: the
// 8-worker mixed-workload throughput must reach 3x the single-worker
// throughput (scaled down by 0.75/core on runners with fewer than 8 CPUs),
// and must not fall more than 20% below the committed same-CPU baseline.
func DefaultScaleGateOptions() ScaleGateOptions {
	return ScaleGateOptions{MinSpeedup: 3.0, PerCore: 0.75, RelSlack: 0.20}
}

// speedupFloor is the core-aware required speedup for a report's top point.
func (o ScaleGateOptions) speedupFloor(topWorkers, cpus int) float64 {
	avail := topWorkers
	if cpus < avail {
		avail = cpus
	}
	floor := o.PerCore * float64(avail)
	if floor > o.MinSpeedup {
		floor = o.MinSpeedup
	}
	return floor
}

// CompareScaleReports checks cur against the committed baseline and returns
// a human-readable violation per failure (empty means the gate passes). The
// primary check is self-contained — cur's top-point speedup against the
// core-aware floor — because raw throughput is machine-dependent; the
// baseline contributes a same-machine regression check and schema pinning.
func CompareScaleReports(base, cur ScaleReport, opt ScaleGateOptions) []string {
	var violations []string
	if base.Schema != ScaleSchema || cur.Schema != ScaleSchema {
		return []string{fmt.Sprintf("schema mismatch: baseline %q, current %q, want %q",
			base.Schema, cur.Schema, ScaleSchema)}
	}
	if len(cur.Points) < 2 {
		return []string{fmt.Sprintf("report has %d points; need at least 1-worker and one scaled point", len(cur.Points))}
	}
	if cur.Points[0].Workers != 1 {
		violations = append(violations, fmt.Sprintf(
			"first point has %d workers, want 1 (the speedup denominator)", cur.Points[0].Workers))
	}
	top := cur.Points[len(cur.Points)-1]
	floor := opt.speedupFloor(top.Workers, cur.CPUs)
	if top.Speedup < floor {
		violations = append(violations, fmt.Sprintf(
			"%d-worker throughput is %.2fx the 1-worker throughput, below the %.2fx floor (%d CPUs; %.1f vs %.1f req/s)",
			top.Workers, top.Speedup, floor, cur.CPUs, top.Throughput, cur.Points[0].Throughput))
	}
	for _, p := range cur.Points {
		if p.EpochMerges == 0 && p.Workers > 1 {
			violations = append(violations, fmt.Sprintf(
				"%d-worker point recorded no epoch merges; the sharded profiling path did not run", p.Workers))
		}
	}
	if base.CPUs == cur.CPUs && len(base.Points) > 0 {
		baseTop := base.Points[len(base.Points)-1]
		if baseTop.Workers == top.Workers {
			if limit := baseTop.Speedup * (1 - opt.RelSlack); top.Speedup < limit {
				violations = append(violations, fmt.Sprintf(
					"top-point speedup %.2fx fell below %.2fx (baseline %.2fx minus %.0f%% slack, same %d-CPU machine)",
					top.Speedup, limit, baseTop.Speedup, opt.RelSlack*100, cur.CPUs))
			}
		}
	}
	return violations
}

// FormatScaleReport renders the report as an aligned table for stdout.
func FormatScaleReport(rep ScaleReport) string {
	t := Table{
		Title: fmt.Sprintf("Scaling report (%s, %s/%s, %d CPUs, mode %s, skew %.2f, hot %.2f, writes %.2f, epoch %d)",
			rep.GoVersion, rep.GOOS, rep.GOARCH, rep.CPUs, rep.Mode, rep.Skew, rep.HotRatio, rep.WriteFrac, rep.EpochRuns),
		Columns: []string{"workers", "requests", "retries", "wall ms", "req/s", "speedup", "merges"},
	}
	for _, p := range rep.Points {
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", p.Workers),
			fmt.Sprintf("%d", p.Requests),
			fmt.Sprintf("%d", p.Retries),
			fmt.Sprintf("%.0f", p.WallMs),
			fmt.Sprintf("%.1f", p.Throughput),
			fmt.Sprintf("%.2fx", p.Speedup),
			fmt.Sprintf("%d", p.EpochMerges),
		})
	}
	return t.Format()
}
