// Package analysis is the static analysis layer of the VM: an
// abstract-interpretation bytecode verifier that rejects malformed programs
// before they reach the interpreter, and CFG dataflow passes (dominators,
// loop headers, static successor classification) whose facts seed the
// dynamic profiler.
//
// Verify symbolically executes every method over a kind lattice
// (int/float/ref, with conflicting merges collapsing to top) as a
// merge-over-all-paths fixpoint, checking stack depth bounds and balance at
// joins, operand kinds against the bytecode package's stack-effect
// metadata, branch and switch targets, locals-initialized-before-use, and
// reachability. Failures are reported as a structured Report rather than a
// bare error so callers (the serve registry, tracevmd's HTTP surface,
// cmd/tracelint) can surface individual findings.
package analysis

import (
	"fmt"
	"strings"
)

// Rule names identify the verifier check a finding violated. They are part
// of the wire format (tracevmd returns them in 422 responses) — treat them
// as append-only.
const (
	// RuleTruncatedCode: the method's code failed to decode (truncated
	// instruction or switch, invalid opcode or operand encoding) or is empty.
	RuleTruncatedCode = "truncated-code"
	// RuleBadJumpTarget: a branch, switch, or exception-handler target does
	// not land on an instruction boundary (equivalently, on a block leader).
	RuleBadJumpTarget = "bad-jump-target"
	// RuleFallOffEnd: control can run past the last instruction.
	RuleFallOffEnd = "fall-off-end"
	// RuleStackUnderflow: an instruction pops from an empty operand stack.
	RuleStackUnderflow = "stack-underflow"
	// RuleStackOverflow: the operand stack exceeds MaxVerifyStack on some
	// path.
	RuleStackOverflow = "stack-overflow"
	// RuleStackImbalance: paths meet at a join with different stack depths,
	// or a return leaves values on the stack.
	RuleStackImbalance = "stack-imbalance"
	// RuleKindMismatch: an operand's kind (int/float/ref) does not match
	// what the instruction requires, including values whose kind conflicts
	// between merged paths.
	RuleKindMismatch = "kind-mismatch"
	// RuleUninitLocal: a local slot is read before every path to the read
	// has written it.
	RuleUninitLocal = "uninit-local"
	// RuleLocalOutOfRange: a local slot operand is outside the method's
	// declared MaxLocals, or MaxLocals cannot hold the arguments.
	RuleLocalOutOfRange = "local-out-of-range"
	// RuleBadRefIndex: a constant-pool style operand (string, method ref,
	// field ref, class index) is out of range or resolves to nothing.
	RuleBadRefIndex = "bad-ref-index"
	// RuleUnreachableBlock: a basic block can never execute. This is a
	// warning: the program is still accepted.
	RuleUnreachableBlock = "unreachable-block"
)

// Finding is one verifier diagnostic, locating a rule violation at a method
// and program counter.
type Finding struct {
	Method  string `json:"method"`
	PC      uint32 `json:"pc"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	// Warn marks advisory findings (unreachable code) that do not reject
	// the program.
	Warn bool `json:"warn,omitempty"`
}

// String renders the finding as "method @pc: rule: message".
func (f Finding) String() string {
	sev := ""
	if f.Warn {
		sev = " (warning)"
	}
	return fmt.Sprintf("%s @%d: %s%s: %s", f.Method, f.PC, f.Rule, sev, f.Message)
}

// Report is the outcome of verifying one program: the full list of findings
// in method order. A program is rejected iff it has at least one non-warning
// finding.
type Report struct {
	Findings []Finding `json:"findings"`
}

// Reject reports whether the program must be refused (any non-warning
// finding).
func (r *Report) Reject() bool {
	for _, f := range r.Findings {
		if !f.Warn {
			return true
		}
	}
	return false
}

// Warnings returns the advisory findings only.
func (r *Report) Warnings() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Warn {
			out = append(out, f)
		}
	}
	return out
}

// Errors returns the rejecting findings only.
func (r *Report) Errors() []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if !f.Warn {
			out = append(out, f)
		}
	}
	return out
}

// Err returns nil if the program is accepted, or a *VerifyError wrapping the
// report if it is rejected.
func (r *Report) Err() error {
	if r == nil || !r.Reject() {
		return nil
	}
	return &VerifyError{Report: r}
}

// String renders every finding, one per line.
func (r *Report) String() string {
	var b strings.Builder
	for i, f := range r.Findings {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// VerifyError is the typed error surfaced when a program fails
// verification; callers unwrap it with errors.As to reach the Report.
type VerifyError struct {
	Report *Report
}

// Error summarizes the first rejecting finding and the total count.
func (e *VerifyError) Error() string {
	errs := e.Report.Errors()
	if len(errs) == 0 {
		return "analysis: program rejected"
	}
	s := fmt.Sprintf("analysis: program rejected: %s", errs[0])
	if len(errs) > 1 {
		s += fmt.Sprintf(" (and %d more)", len(errs)-1)
	}
	return s
}
