package valueflow

import (
	"math"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// evaluator transfers an absState across the straight-line (non-control)
// instructions, mirroring the VM's exec semantics exactly where it folds:
// integer ops wrap like the VM, IDiv/IRem replicate the MinInt64/-1 rules,
// shifts mask the count with &63, and float folds run the same float64
// operation the VM runs.
//
// Two modes share the code. Strict mode (the whole-program analysis) treats
// structural damage — stack underflow, bad slot or ref indices — as a bail:
// the caller discards every fact. Lenient mode (the guard oracle's seeded
// trace walk) starts from a partially known state, so an underflow pops an
// unknown value and loads of unknown slots keep provenance for refinement.
type evaluator struct {
	prog    *classfile.Program
	lenient bool
	bail    bool
}

func (e *evaluator) fail() { e.bail = true }

func (e *evaluator) push(st *absState, v absVal) {
	if len(st.stack) >= maxAbsStack {
		e.fail()
		return
	}
	st.stack = append(st.stack, v)
}

func (e *evaluator) pop(st *absState) absVal {
	if len(st.stack) == 0 {
		if !e.lenient {
			e.fail()
		}
		return topAny()
	}
	v := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	return v
}

// setLocal stores v into a slot and severs the provenance of every stack
// value that was loaded from it (their copies are unaffected, but they no
// longer mirror the slot).
func (e *evaluator) setLocal(st *absState, slot int32, v absVal) {
	if slot < 0 || int(slot) >= len(st.locals) {
		e.fail()
		return
	}
	v.src = noSrc
	st.locals[slot] = lval{v: v, init: true}
	for i := range st.stack {
		if st.stack[i].src == slot {
			st.stack[i].src = noSrc
		}
	}
}

// load pushes a slot's value with provenance. Slots not proven written on
// every path load as the unconstrained value of the opcode's kind; lenient
// mode keeps provenance on them so a later branch can still refine the slot.
func (e *evaluator) load(st *absState, slot int32, top absVal) {
	if slot < 0 || int(slot) >= len(st.locals) {
		e.fail()
		return
	}
	l := st.locals[slot]
	v := top
	if l.init {
		v = l.v
		v.src = slot
	} else if e.lenient {
		v.src = slot
	}
	e.push(st, v)
}

// provenNonNull records that an instruction dereferenced a reference and
// did not trap: any execution continuing past it had a non-null value, so
// the source local (if provenance is intact) is non-null from here on.
func (e *evaluator) provenNonNull(st *absState, v absVal) {
	if v.kind == bytecode.KRef && v.src >= 0 {
		refineLocal(st, v.src, nonNullRef())
	}
}

func typeVal(t classfile.Type) absVal {
	switch t {
	case classfile.TInt:
		return topInt()
	case classfile.TFloat:
		return topFloat()
	case classfile.TRef:
		return topRef()
	}
	return topAny()
}

// exec transfers st across one non-control-flow instruction. Terminators
// (branches, switches, invokes, returns, throw, halt) are the caller's
// responsibility.
func (e *evaluator) exec(st *absState, in bytecode.Instr) {
	switch in.Op {
	case bytecode.Nop:

	case bytecode.IConst:
		e.push(st, intConst(int64(in.A)))
	case bytecode.FConst:
		e.push(st, floatConst(math.Float64bits(in.F)))
	case bytecode.SConst:
		e.push(st, nonNullRef())
	case bytecode.AConstNull:
		e.push(st, nullRef())

	case bytecode.ILoad:
		e.load(st, in.A, topInt())
	case bytecode.FLoad:
		e.load(st, in.A, topFloat())
	case bytecode.ALoad:
		e.load(st, in.A, topRef())
	case bytecode.IStore, bytecode.FStore, bytecode.AStore:
		e.setLocal(st, in.A, e.pop(st))

	case bytecode.IInc:
		if in.A < 0 || int(in.A) >= len(st.locals) {
			e.fail()
			return
		}
		l := st.locals[in.A]
		nv := topInt()
		if l.init && l.v.kind == bytecode.KInt {
			if lo, hi, ok := shiftRange(l.v.lo, l.v.hi, int64(in.B)); ok {
				nv = intRange(lo, hi)
			}
		}
		e.setLocal(st, in.A, nv)

	case bytecode.Pop:
		e.pop(st)
	case bytecode.Dup:
		v := e.pop(st)
		e.push(st, v)
		e.push(st, v)
	case bytecode.DupX1:
		a := e.pop(st)
		b := e.pop(st)
		e.push(st, a)
		e.push(st, b)
		e.push(st, a)
	case bytecode.Swap:
		a := e.pop(st)
		b := e.pop(st)
		e.push(st, a)
		e.push(st, b)

	case bytecode.IAdd, bytecode.ISub, bytecode.IMul, bytecode.IDiv,
		bytecode.IRem, bytecode.IShl, bytecode.IShr, bytecode.IUshr,
		bytecode.IAnd, bytecode.IOr, bytecode.IXor:
		b := e.pop(st)
		a := e.pop(st)
		e.push(st, intBinop(in.Op, a, b))
	case bytecode.INeg:
		a := e.pop(st)
		out := topInt()
		if a.kind == bytecode.KInt {
			if n, ok := a.isIntConst(); ok {
				out = intConst(-n) // wraps at MinInt64 exactly like the VM
			} else if a.lo > math.MinInt64 {
				out = intRange(-a.hi, -a.lo)
			}
		}
		e.push(st, out)

	case bytecode.FAdd, bytecode.FSub, bytecode.FMul, bytecode.FDiv, bytecode.FRem:
		b := e.pop(st)
		a := e.pop(st)
		e.push(st, floatBinop(in.Op, a, b))
	case bytecode.FNeg:
		a := e.pop(st)
		out := topFloat()
		if bits, ok := a.isFloatConst(); ok {
			out = floatConst(math.Float64bits(-math.Float64frombits(bits)))
		}
		e.push(st, out)

	case bytecode.I2F:
		a := e.pop(st)
		out := topFloat()
		if n, ok := a.isIntConst(); ok {
			out = floatConst(math.Float64bits(float64(n)))
		}
		e.push(st, out)
	case bytecode.F2I:
		a := e.pop(st)
		out := topInt()
		if bits, ok := a.isFloatConst(); ok {
			// Fold only where int64(f) is portable: finite and within
			// ±2^53 (integral-exact doubles). Out-of-range conversions
			// differ across architectures, so they stay unknown.
			f := math.Float64frombits(bits)
			if f >= -(1<<53) && f <= 1<<53 {
				out = intConst(int64(f))
			}
		}
		e.push(st, out)

	case bytecode.FCmpL, bytecode.FCmpG:
		b := e.pop(st)
		a := e.pop(st)
		out := intRange(-1, 1)
		ab, aok := a.isFloatConst()
		bb, bok := b.isFloatConst()
		if aok && bok {
			af, bf := math.Float64frombits(ab), math.Float64frombits(bb)
			switch {
			case af < bf:
				out = intConst(-1)
			case af > bf:
				out = intConst(1)
			case af == bf:
				out = intConst(0)
			default: // NaN involved
				if in.Op == bytecode.FCmpL {
					out = intConst(-1)
				} else {
					out = intConst(1)
				}
			}
		}
		e.push(st, out)

	case bytecode.New:
		e.push(st, nonNullRef())
	case bytecode.NewArray:
		e.pop(st) // length
		e.push(st, nonNullRef())
	case bytecode.ArrayLength:
		a := e.pop(st)
		e.provenNonNull(st, a)
		e.push(st, intRange(0, math.MaxInt64))

	case bytecode.GetField:
		obj := e.pop(st)
		e.provenNonNull(st, obj)
		e.push(st, e.fieldVal(in.A))
	case bytecode.PutField:
		e.pop(st) // value
		obj := e.pop(st)
		e.provenNonNull(st, obj)
	case bytecode.GetStatic:
		e.push(st, e.fieldVal(in.A))
	case bytecode.PutStatic:
		e.pop(st)

	case bytecode.InstanceOf:
		a := e.pop(st)
		if a.kind == bytecode.KRef && a.nl == nlNull {
			e.push(st, intConst(0))
		} else {
			e.push(st, intRange(0, 1))
		}
	case bytecode.CheckCast:
		// Value and provenance unchanged; a failed cast traps (aborts),
		// it never produces a different value.

	case bytecode.IALoad, bytecode.FALoad, bytecode.AALoad, bytecode.BALoad:
		e.pop(st) // index
		arr := e.pop(st)
		e.provenNonNull(st, arr)
		switch in.Op {
		case bytecode.IALoad:
			e.push(st, topInt())
		case bytecode.FALoad:
			e.push(st, topFloat())
		case bytecode.AALoad:
			e.push(st, topRef())
		case bytecode.BALoad:
			e.push(st, intRange(0, 255)) // byte elements are unsigned
		}
	case bytecode.IAStore, bytecode.FAStore, bytecode.AAStore, bytecode.BAStore:
		e.pop(st) // value
		e.pop(st) // index
		arr := e.pop(st)
		e.provenNonNull(st, arr)

	default:
		e.fail()
	}
}

func (e *evaluator) fieldVal(refIdx int32) absVal {
	if e.prog == nil || refIdx < 0 || int(refIdx) >= len(e.prog.FieldRefs) {
		e.fail()
		return topAny()
	}
	f := e.prog.FieldRefs[refIdx].Field
	if f == nil {
		e.fail()
		return topAny()
	}
	return typeVal(f.Type)
}

// shiftRange translates an interval by delta, reporting !ok on overflow
// (the VM wraps, so a wrapped bound invalidates the whole interval).
func shiftRange(lo, hi, delta int64) (int64, int64, bool) {
	nlo, nhi := lo+delta, hi+delta
	if delta >= 0 {
		if nlo < lo || nhi < hi {
			return 0, 0, false
		}
	} else {
		if nlo > lo || nhi > hi {
			return 0, 0, false
		}
	}
	return nlo, nhi, true
}

// intBinop folds or bounds one integer binary operation. Constant folds
// replicate VM semantics bit-for-bit (wrapping arithmetic, the IDiv/IRem
// MinInt64/-1 rules, &63 shift masking); interval results are produced only
// where overflow cannot invalidate them.
func intBinop(op bytecode.Op, a, b absVal) absVal {
	if a.kind != bytecode.KInt || b.kind != bytecode.KInt {
		return topInt()
	}
	an, aok := a.isIntConst()
	bn, bok := b.isIntConst()
	if aok && bok {
		switch op {
		case bytecode.IAdd:
			return intConst(an + bn)
		case bytecode.ISub:
			return intConst(an - bn)
		case bytecode.IMul:
			return intConst(an * bn)
		case bytecode.IDiv:
			if bn == 0 {
				return topInt() // always traps; no value to claim
			}
			if bn == -1 {
				return intConst(-an)
			}
			return intConst(an / bn)
		case bytecode.IRem:
			if bn == 0 {
				return topInt()
			}
			if bn == -1 {
				return intConst(0)
			}
			return intConst(an % bn)
		case bytecode.IShl:
			return intConst(an << (uint64(bn) & 63))
		case bytecode.IShr:
			return intConst(an >> (uint64(bn) & 63))
		case bytecode.IUshr:
			return intConst(int64(uint64(an) >> (uint64(bn) & 63)))
		case bytecode.IAnd:
			return intConst(an & bn)
		case bytecode.IOr:
			return intConst(an | bn)
		case bytecode.IXor:
			return intConst(an ^ bn)
		}
		return topInt()
	}
	switch op {
	case bytecode.IAdd:
		if lo, ok1 := addNoOv(a.lo, b.lo); ok1 {
			if hi, ok2 := addNoOv(a.hi, b.hi); ok2 {
				return intRange(lo, hi)
			}
		}
	case bytecode.ISub:
		if lo, ok1 := subNoOv(a.lo, b.hi); ok1 {
			if hi, ok2 := subNoOv(a.hi, b.lo); ok2 {
				return intRange(lo, hi)
			}
		}
	case bytecode.IAnd:
		// x & mask with a non-negative constant mask is in [0, mask].
		if aok && an >= 0 {
			return intRange(0, an)
		}
		if bok && bn >= 0 {
			return intRange(0, bn)
		}
	case bytecode.IRem:
		// x % d for non-negative x and positive constant d is in [0, d-1].
		if bok && bn > 0 && a.lo >= 0 {
			return intRange(0, bn-1)
		}
	case bytecode.IUshr:
		if bok {
			if s := uint64(bn) & 63; s > 0 {
				return intRange(0, int64(^uint64(0)>>1>>(s-1)))
			}
			return a // shift by zero is the identity
		}
	}
	return topInt()
}

func addNoOv(a, b int64) (int64, bool) {
	s := a + b
	if (b > 0 && s < a) || (b < 0 && s > a) {
		return 0, false
	}
	return s, true
}

func subNoOv(a, b int64) (int64, bool) {
	d := a - b
	if (b < 0 && d < a) || (b > 0 && d > a) {
		return 0, false
	}
	return d, true
}

// floatBinop folds one float binary operation when both operands are
// constant, running the identical float64 computation the VM runs.
func floatBinop(op bytecode.Op, a, b absVal) absVal {
	ab, aok := a.isFloatConst()
	bb, bok := b.isFloatConst()
	if !aok || !bok {
		return topFloat()
	}
	af, bf := math.Float64frombits(ab), math.Float64frombits(bb)
	var r float64
	switch op {
	case bytecode.FAdd:
		r = af + bf
	case bytecode.FSub:
		r = af - bf
	case bytecode.FMul:
		r = af * bf
	case bytecode.FDiv:
		r = af / bf
	case bytecode.FRem:
		r = math.Mod(af, bf)
	default:
		return topFloat()
	}
	return floatConst(math.Float64bits(r))
}
