package valueflow_test

import (
	"testing"

	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
)

// asm encodes a straight list of instructions, returning the code and the
// pc of each instruction (for branch targets).
func asm(t *testing.T, ins []bytecode.Instr) ([]byte, []uint32) {
	t.Helper()
	enc := bytecode.NewEncoder()
	pcs := make([]uint32, len(ins))
	for i, in := range ins {
		pc, err := enc.Emit(in)
		if err != nil {
			t.Fatalf("emit %v: %v", in.Op, err)
		}
		pcs[i] = pc
	}
	return enc.Bytes(), pcs
}

// buildMain assembles a single static main method and returns its CFG and
// facts. The instruction stream may use placeholder branch targets that
// patch maps by instruction index.
func buildMain(t *testing.T, maxLocals int, mk func(pcAt func(int) uint32) []bytecode.Instr) (*cfg.ProgramCFG, *valueflow.Facts) {
	t.Helper()
	// Two passes: first with zero targets to learn pcs, then for real.
	var pcs []uint32
	pcAt := func(i int) uint32 {
		if pcs == nil {
			return 0
		}
		return pcs[i]
	}
	_, pcs = asm(t, mk(pcAt))
	code, _ := asm(t, mk(pcAt))

	b := classfile.NewBuilder()
	cb := b.Class("Main")
	b.String("s") // so SConst 0 resolves in tests that use it
	m := cb.Method("main", nil, classfile.TVoid, true)
	m.MaxLocals = maxLocals
	m.Code = code
	b.SetEntry("Main", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	f := valueflow.Compute(pcfg)
	if f.Top() {
		t.Fatalf("analysis degraded to top facts")
	}
	return pcfg, f
}

func blockAt(t *testing.T, p *cfg.ProgramCFG, methodID int, pc uint32) *cfg.Block {
	t.Helper()
	b := p.Methods[methodID].BlockAtPC(pc)
	if b == nil {
		t.Fatalf("no block at pc %d", pc)
	}
	return b
}

func hasIntConst(bf *valueflow.BlockFacts, slot int32, val int64) bool {
	for _, c := range bf.IntConsts {
		if c.Slot == slot && c.Val == val {
			return true
		}
	}
	return false
}

func hasNonNull(bf *valueflow.BlockFacts, slot int32) bool {
	for _, s := range bf.NonNull {
		if s == slot {
			return true
		}
	}
	return false
}

// TestConstantsDecideBranches checks constant propagation, decided
// branches, and SCCP unreachability on a diamond with constant inputs.
func TestConstantsDecideBranches(t *testing.T) {
	const (
		iDead = 7 // IConst 2 (the "equal zero" arm, unreachable)
		iJoin = 9 // ILoad 1
		iRet2 = 12
	)
	p, f := buildMain(t, 2, func(pc func(int) uint32) []bytecode.Instr {
		return []bytecode.Instr{
			/* 0 */ {Op: bytecode.IConst, A: 7},
			/* 1 */ {Op: bytecode.IStore, A: 0},
			/* 2 */ {Op: bytecode.ILoad, A: 0},
			/* 3 */ {Op: bytecode.IfEq, A: int32(pc(iDead))},
			/* 4 */ {Op: bytecode.IConst, A: 1},
			/* 5 */ {Op: bytecode.IStore, A: 1},
			/* 6 */ {Op: bytecode.Goto, A: int32(pc(iJoin))},
			/* 7 */ {Op: bytecode.IConst, A: 2},
			/* 8 */ {Op: bytecode.IStore, A: 1},
			/* 9 */ {Op: bytecode.ILoad, A: 1},
			/* 10 */ {Op: bytecode.IfEq, A: int32(pc(iRet2))},
			/* 11 */ {Op: bytecode.ReturnVoid},
			/* 12 */ {Op: bytecode.ReturnVoid},
		}
	})
	main := p.Program.Main
	_, pcs := asmPCs(t, p, main)

	// The first conditional terminates the entry block (instrs 0..3).
	condB := blockAt(t, p, main.ID, pcs[0])
	if got := f.DecidedSucc(condB.ID); got != condB.FallThrough {
		t.Errorf("first branch: decided %v, want fallthrough %v", got, condB.FallThrough)
	}
	deadB := blockAt(t, p, main.ID, pcs[iDead])
	if f.Block(deadB.ID).Reachable {
		t.Errorf("dead arm marked reachable")
	}
	joinB := blockAt(t, p, main.ID, pcs[iJoin])
	jf := f.Block(joinB.ID)
	if !jf.Reachable {
		t.Fatalf("join block unreachable")
	}
	if !hasIntConst(jf, 0, 7) || !hasIntConst(jf, 1, 1) {
		t.Errorf("join consts = %+v, want slot0=7 slot1=1", jf.IntConsts)
	}
	if got := f.DecidedSucc(joinB.ID); got != joinB.FallThrough {
		t.Errorf("second branch: decided %v, want fallthrough %v", got, joinB.FallThrough)
	}
}

// asmPCs re-derives instruction pcs of a method by decoding its code.
func asmPCs(t *testing.T, p *cfg.ProgramCFG, m *classfile.Method) ([]bytecode.Instr, []uint32) {
	t.Helper()
	ins, err := bytecode.Decode(m.Code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	pcs := make([]uint32, len(ins))
	for i, in := range ins {
		pcs[i] = in.PC
	}
	return ins, pcs
}

// TestRangeRefinementKillsBoundCheck checks that entering a loop body under
// "i < 10" refines i's range enough to decide a redundant bound check.
func TestRangeRefinementKillsBoundCheck(t *testing.T) {
	const (
		iHead  = 2  // ILoad 0 (loop header)
		iCheck = 7  // redundant IfICmpGe inside the body
		iDead  = 13 // target of the redundant check
		iExit  = 15
	)
	p, f := buildMain(t, 1, func(pc func(int) uint32) []bytecode.Instr {
		return []bytecode.Instr{
			/* 0 */ {Op: bytecode.IConst, A: 0},
			/* 1 */ {Op: bytecode.IStore, A: 0},
			// header: if i >= 10 exit
			/* 2 */ {Op: bytecode.ILoad, A: 0},
			/* 3 */ {Op: bytecode.IConst, A: 10},
			/* 4 */ {Op: bytecode.IfICmpGe, A: int32(pc(iExit))},
			// body: the same check again — now provably not taken
			/* 5 */ {Op: bytecode.ILoad, A: 0},
			/* 6 */ {Op: bytecode.IConst, A: 10},
			/* 7 */ {Op: bytecode.IfICmpGe, A: int32(pc(iDead))},
			/* 8 */ {Op: bytecode.IInc, A: 0, B: 1},
			/* 9 */ {Op: bytecode.Goto, A: int32(pc(iHead))},
			// filler so the dead target exists
			/* 10 */ {Op: bytecode.Nop},
			/* 11 */ {Op: bytecode.Nop},
			/* 12 */ {Op: bytecode.Nop},
			/* 13 */ {Op: bytecode.Nop},
			/* 14 */ {Op: bytecode.ReturnVoid},
			/* 15 */ {Op: bytecode.ReturnVoid},
		}
	})
	main := p.Program.Main
	_, pcs := asmPCs(t, p, main)
	checkB := blockAt(t, p, main.ID, pcs[iCheck-2]) // block starts at ILoad (instr 5)
	if got := f.DecidedSucc(checkB.ID); got != checkB.FallThrough {
		t.Errorf("redundant bound check: decided %v, want fallthrough %v", got, checkB.FallThrough)
	}
	deadB := blockAt(t, p, main.ID, pcs[iDead])
	if f.Block(deadB.ID).Reachable {
		t.Errorf("dead bound-check target marked reachable")
	}
	// The loop header is a natural-loop head; slot 0 is written in the
	// loop, so it must NOT be invariant (and the header must be known).
	headB := blockAt(t, p, main.ID, pcs[iHead])
	for _, s := range f.InvariantLocals(headB.ID) {
		if s == 0 {
			t.Errorf("loop counter reported invariant")
		}
	}
}

// TestNullnessFacts checks null/non-null propagation and decided null
// tests.
func TestNullnessFacts(t *testing.T) {
	const (
		iDead = 5
		iRet  = 7
	)
	p, f := buildMain(t, 1, func(pc func(int) uint32) []bytecode.Instr {
		return []bytecode.Instr{
			/* 0 */ {Op: bytecode.SConst, A: 0},
			/* 1 */ {Op: bytecode.AStore, A: 0},
			/* 2 */ {Op: bytecode.ALoad, A: 0},
			/* 3 */ {Op: bytecode.IfNull, A: int32(pc(iDead))},
			/* 4 */ {Op: bytecode.Goto, A: int32(pc(iRet))},
			/* 5 */ {Op: bytecode.Nop},
			/* 6 */ {Op: bytecode.ReturnVoid},
			/* 7 */ {Op: bytecode.ReturnVoid},
		}
	})
	// Need the string pool entry SConst references.
	main := p.Program.Main
	_, pcs := asmPCs(t, p, main)
	// The null test terminates the entry block (instrs 0..3); the non-null
	// fact is an entry claim, so it shows up at the surviving successor.
	testB := blockAt(t, p, main.ID, pcs[0])
	liveB := blockAt(t, p, main.ID, pcs[4])
	if lf := f.Block(liveB.ID); !hasNonNull(lf, 0) {
		t.Errorf("slot 0 not proven non-null at live arm: %+v", lf.NonNull)
	}
	if got := f.DecidedSucc(testB.ID); got != testB.FallThrough {
		t.Errorf("null test: decided %v, want fallthrough %v", got, testB.FallThrough)
	}
	deadB := blockAt(t, p, main.ID, pcs[iDead])
	if f.Block(deadB.ID).Reachable {
		t.Errorf("null arm marked reachable")
	}
}

// TestInterproceduralReturnConst checks that a constant returned by a
// static helper propagates into the caller and decides its branch.
func TestInterproceduralReturnConst(t *testing.T) {
	b := classfile.NewBuilder()
	cb := b.Class("Main")
	refIdx := b.MethodRef("Main", "f", classfile.RefStatic)

	helper := cb.Method("f", nil, classfile.TInt, true)
	hcode, _ := asm(t, []bytecode.Instr{
		{Op: bytecode.IConst, A: 42},
		{Op: bytecode.IReturn},
	})
	helper.Code = hcode
	helper.MaxLocals = 0

	m := cb.Method("main", nil, classfile.TVoid, true)
	mk := func(deadPC, retPC uint32) []bytecode.Instr {
		return []bytecode.Instr{
			/* 0 */ {Op: bytecode.InvokeStatic, A: int32(refIdx)},
			/* 1 */ {Op: bytecode.IStore, A: 0},
			/* 2 */ {Op: bytecode.ILoad, A: 0},
			/* 3 */ {Op: bytecode.IfEq, A: int32(deadPC)},
			/* 4 */ {Op: bytecode.Goto, A: int32(retPC)},
			/* 5 */ {Op: bytecode.Nop},
			/* 6 */ {Op: bytecode.ReturnVoid},
			/* 7 */ {Op: bytecode.ReturnVoid},
		}
	}
	_, pcs := asm(t, mk(0, 0))
	code, _ := asm(t, mk(pcs[5], pcs[7]))
	m.Code = code
	m.MaxLocals = 1
	b.SetEntry("Main", "main")
	prog, err := b.Build()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	f := valueflow.Compute(pcfg)
	if f.Top() {
		t.Fatalf("analysis degraded to top facts")
	}
	main := prog.Main
	// The conditional terminates the call's return-site block (instrs 1..3).
	// At its entry the returned 42 sits on the stack; the local-slot fact
	// materializes at the surviving successor.
	condB := blockAt(t, pcfg, main.ID, pcs[1])
	cf := f.Block(condB.ID)
	foundStack := false
	for _, c := range cf.StackConsts {
		if c.Idx == 0 && c.Val == 42 {
			foundStack = true
		}
	}
	if !foundStack {
		t.Errorf("callee return const not on stack at return site: %+v", cf.StackConsts)
	}
	liveB := blockAt(t, pcfg, main.ID, pcs[4])
	if lf := f.Block(liveB.ID); !hasIntConst(lf, 0, 42) {
		t.Errorf("callee return const not propagated to local: %+v", lf.IntConsts)
	}
	if got := f.DecidedSucc(condB.ID); got != condB.FallThrough {
		t.Errorf("branch on returned const: decided %v, want fallthrough %v", got, condB.FallThrough)
	}
	deadB := blockAt(t, pcfg, main.ID, pcs[5])
	if f.Block(deadB.ID).Reachable {
		t.Errorf("dead arm marked reachable")
	}

	// Oracle: a trace through the decided branch has every guard proven.
	o := valueflow.NewOracle(f, pcfg)
	entryB := blockAt(t, pcfg, main.ID, pcs[0])
	helperB := pcfg.MethodEntry(helper)
	retSiteB := blockAt(t, pcfg, main.ID, pcs[1])
	gotoB := blockAt(t, pcfg, main.ID, pcs[4])
	// entry -> helper (static call), helper returns (unprovable), then
	// cond -> goto target decided.
	proofs := o.ProveGuards([]cfg.BlockID{entryB.ID, helperB.ID, retSiteB.ID, gotoB.ID})
	if len(proofs) != 3 {
		t.Fatalf("proofs = %v, want length 3", proofs)
	}
	if !proofs[0] {
		t.Errorf("static call entry not proven")
	}
	if proofs[1] {
		t.Errorf("return position unexpectedly proven")
	}
	if !proofs[2] {
		t.Errorf("decided branch position not proven")
	}
}

// TestUnlinkedDegradesToTop checks the claim-free fallback paths.
func TestUnlinkedDegradesToTop(t *testing.T) {
	if f := valueflow.Compute(nil); !f.Top() {
		t.Errorf("nil cfg: not top")
	}
	st := valueflow.Compute(nil).Stats()
	if !st.Top {
		t.Errorf("stats of top table not marked top")
	}
}
