package valueflow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/jasm"
)

// TestAdversarialCorpus runs Compute over committed hostile programs —
// recursion cycles, never-returning callees, null-receiver dispatch,
// handler self-loops, kind confusion, oversized frames — and pins the
// degradation contract: "expect: facts" programs must produce a non-top,
// internally consistent table; "expect: top" programs must degrade to the
// claim-free fallback. Either way Compute must return, never panic.
func TestAdversarialCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "adversarial", "*.jasm"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("corpus has %d programs, want >= 10", len(paths))
	}
	for _, path := range paths {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			want := ""
			for _, line := range strings.Split(src, "\n") {
				if i := strings.Index(line, "expect:"); i >= 0 {
					want = strings.TrimSpace(line[i+len("expect:"):])
					break
				}
			}
			if want != "facts" && want != "top" {
				t.Fatalf("%s: missing or bad 'expect: facts|top' annotation", path)
			}
			prog, err := jasm.Assemble(src)
			if err != nil {
				t.Fatalf("assemble: %v", err)
			}
			p, err := cfg.BuildProgram(prog)
			if err != nil {
				t.Fatalf("cfg: %v", err)
			}
			f := valueflow.Compute(p)
			if f == nil {
				t.Fatal("Compute returned nil")
			}
			if want == "top" {
				if !f.Top() {
					t.Fatalf("expected degradation to top, got %+v", f.Stats())
				}
				return
			}
			if f.Top() {
				t.Fatal("analysis degraded to top, expected facts")
			}
			checkConsistent(t, p, f)
			// Determinism: a second run must produce identical claims.
			if a, b := f.Stats(), valueflow.Compute(p).Stats(); a != b {
				t.Fatalf("nondeterministic: %+v vs %+v", a, b)
			}
		})
	}
}

// TestPostLinkCorruptionDegrades pins the strict-evaluator bail: code
// mutated after linking (so the linker's stack verification never saw it)
// underflows the abstract stack. The failure must stay local — the
// corrupted method is degraded to claim-free reachability (zero consts,
// zero decided branches, nothing analyzed) without discarding the table.
// jasm cannot express this program because Assemble would reject it.
func TestPostLinkCorruptionDegrades(t *testing.T) {
	prog, err := jasm.Assemble(`
.entry Main main
.class Main
.method static main ( ) void
    return
.end
.end
`)
	if err != nil {
		t.Fatal(err)
	}
	enc := bytecode.NewEncoder()
	enc.Emit(bytecode.Instr{Op: bytecode.Pop})
	enc.Emit(bytecode.Instr{Op: bytecode.ReturnVoid})
	prog.Main.Code = enc.Bytes()
	p, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	f := valueflow.Compute(p)
	s := f.Stats()
	if s.MethodsAnalyzed != 0 {
		t.Fatalf("underflowing method counted as analyzed: %+v", s)
	}
	if s.IntConsts+s.FloatConsts+s.NonNull+s.StackConsts+s.Decided != 0 {
		t.Fatalf("underflowing code produced claims: %+v", s)
	}
	if s.Unreachable != 0 {
		t.Fatalf("degraded method's blocks must stay reachable: %+v", s)
	}
}

// checkConsistent validates the structural invariants every non-top table
// must satisfy regardless of input.
func checkConsistent(t *testing.T, p *cfg.ProgramCFG, f *valueflow.Facts) {
	t.Helper()
	if f.NumBlocks() != p.NumBlocks() {
		t.Fatalf("facts cover %d blocks, cfg has %d", f.NumBlocks(), p.NumBlocks())
	}
	if entry := p.MethodEntry(p.Program.Main); entry != nil {
		if bf := f.Block(entry.ID); bf == nil || !bf.Reachable {
			t.Fatal("main entry not reachable")
		}
	}
	for id := 0; id < f.NumBlocks(); id++ {
		bid := cfg.BlockID(id)
		bf := f.Block(bid)
		if !bf.Reachable {
			if bf.Decided != cfg.NoBlock || len(bf.IntConsts) != 0 || len(bf.NonNull) != 0 {
				t.Fatalf("block %d: claims on an unreachable block", id)
			}
			continue
		}
		if d := bf.Decided; d != cfg.NoBlock {
			blk := p.Block(bid)
			ok := false
			for _, s := range blk.StaticSuccessors() {
				if s == d {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("block %d: decided %v is not a static successor", id, d)
			}
		}
		seen := map[int32]bool{}
		for _, c := range bf.IntConsts {
			if seen[c.Slot] {
				t.Fatalf("block %d: duplicate const claim for slot %d", id, c.Slot)
			}
			seen[c.Slot] = true
		}
	}
}
