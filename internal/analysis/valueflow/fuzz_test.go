package valueflow_test

import (
	"testing"

	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
)

// FuzzValueFlowNeverPanics feeds arbitrary bytes as the entry method's code
// (with fuzzed locals count, helper return type, and an exception table)
// through Compute and the guard oracle: every input must produce a fact
// table — never panic, never loop. Inputs the linker or CFG builder reject
// are skipped; everything they accept must be analyzable.
func FuzzValueFlowNeverPanics(f *testing.F) {
	enc := bytecode.NewEncoder()
	for _, in := range []bytecode.Instr{
		{Op: bytecode.IConst, A: 7},
		{Op: bytecode.IStore, A: 2},
		{Op: bytecode.ILoad, A: 2},
		{Op: bytecode.IfEq, A: 0},
		{Op: bytecode.InvokeStatic, A: 0},
		{Op: bytecode.ReturnVoid},
	} {
		if _, err := enc.Emit(in); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(enc.Bytes(), uint16(4), uint8(0), uint8(0), uint8(0), uint8(1))
	f.Add([]byte{byte(bytecode.ReturnVoid)}, uint16(3), uint8(0), uint8(1), uint8(0), uint8(0))
	f.Add([]byte{0xff, 0x01, 0x02}, uint16(3), uint8(0), uint8(2), uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, code []byte, locals uint16, hstart, hend, hpc, ret uint8) {
		b := classfile.NewBuilder()
		cb := b.Class("Main")
		cb.Field("f", classfile.TFloat)
		cb.StaticField("g", classfile.TInt)
		b.String("s")
		b.MethodRef("Main", "helper", classfile.RefStatic)
		b.MethodRef("Main", "vm", classfile.RefVirtual)
		b.FieldRef("Main", "f", false)
		b.FieldRef("Main", "g", true)

		helper := cb.Method("helper", nil, classfile.Type(ret%4), true)
		helper.MaxLocals = 1
		henc := bytecode.NewEncoder()
		switch classfile.Type(ret % 4) {
		case classfile.TInt:
			henc.Emit(bytecode.Instr{Op: bytecode.IConst, A: 3})
			henc.Emit(bytecode.Instr{Op: bytecode.IReturn})
		case classfile.TFloat:
			henc.Emit(bytecode.Instr{Op: bytecode.FConst, F: 1.5})
			henc.Emit(bytecode.Instr{Op: bytecode.FReturn})
		case classfile.TRef:
			henc.Emit(bytecode.Instr{Op: bytecode.AConstNull})
			henc.Emit(bytecode.Instr{Op: bytecode.AReturn})
		default:
			henc.Emit(bytecode.Instr{Op: bytecode.ReturnVoid})
		}
		helper.Code = henc.Bytes()

		vmeth := cb.Method("vm", nil, classfile.TVoid, false)
		vmeth.MaxLocals = 1
		venc := bytecode.NewEncoder()
		venc.Emit(bytecode.Instr{Op: bytecode.ReturnVoid})
		vmeth.Code = venc.Bytes()

		m := cb.Method("main", nil, classfile.TVoid, true)
		m.MaxLocals = int(locals)
		m.Code = code
		m.Handlers = []classfile.Handler{{
			StartPC:   uint32(hstart),
			EndPC:     uint32(hend),
			HandlerPC: uint32(hpc),
			ClassIdx:  -1,
		}}
		b.SetEntry("Main", "main")
		prog, err := b.Build()
		if err != nil {
			t.Skip()
		}
		p, err := cfg.BuildProgram(prog)
		if err != nil {
			t.Skip()
		}
		facts := valueflow.Compute(p)
		if facts == nil {
			t.Fatal("Compute returned nil")
		}
		if facts.NumBlocks() != p.NumBlocks() {
			t.Fatalf("facts cover %d blocks, cfg has %d", facts.NumBlocks(), p.NumBlocks())
		}
		st := facts.Stats()
		if st.Reachable+st.Unreachable != st.Blocks {
			t.Fatalf("inconsistent stats: %+v", st)
		}
		if !facts.Top() {
			// A non-degraded table must keep main's entry reachable and only
			// decide successors that the block actually has.
			if entry := p.MethodEntry(prog.Main); entry != nil {
				if bf := facts.Block(entry.ID); bf == nil || !bf.Reachable {
					t.Fatal("main entry block not reachable in non-top table")
				}
			}
			for id := 0; id < facts.NumBlocks(); id++ {
				d := facts.DecidedSucc(cfg.BlockID(id))
				if d == cfg.NoBlock {
					continue
				}
				blk := p.Block(cfg.BlockID(id))
				if blk == nil {
					t.Fatalf("decided successor on unknown block %d", id)
				}
				ok := false
				for _, s := range blk.StaticSuccessors() {
					if s == d {
						ok = true
					}
				}
				if !ok {
					t.Fatalf("block %d decided %v, not a static successor", id, d)
				}
			}
		}
		// The oracle must tolerate arbitrary block sequences, including ones
		// no execution could produce.
		o := valueflow.NewOracle(facts, p)
		var seq []cfg.BlockID
		for id := 0; id < p.NumBlocks() && id < 16; id++ {
			seq = append(seq, cfg.BlockID(id))
		}
		if proofs := o.ProveGuards(seq); len(seq) >= 2 && proofs != nil && len(proofs) != len(seq)-1 {
			t.Fatalf("proofs length %d for %d blocks", len(proofs), len(seq))
		}
	})
}
