package valueflow

import (
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
)

// GuardOracle proves side-exit guards of a recorded trace dead. A proof at
// position i is the claim "any execution that follows the trace to block
// Blocks[i] continues to Blocks[i+1]" — i.e. SideExits[i] can never fire —
// which is what lets a specializer drop the guard.
//
// Two tiers combine:
//
//  1. Whole-program facts: a terminator the fact table decided (or a
//     goto/fallthrough/call with a unique dynamic successor) is proven
//     regardless of trace context.
//  2. A trace-local symbolic walk: the state is seeded from the entry
//     block's facts and executed along the recorded path. Reaching
//     position i on the trace implies every earlier recorded branch
//     direction was taken, so the walk may condition its state on those
//     directions; a branch the conditioned state decides in the recorded
//     direction is proven. Call, return, and throw positions are frame
//     barriers: the walk re-seeds from the next block's entry facts.
//
// An oracle is immutable and safe for concurrent use; core.Cache calls it
// from trace registration. It must only be used with programs the verifier
// accepted (serve enforces that), since kind confusion in unverifiable
// code could mislead the walk.
type GuardOracle struct {
	f *Facts
	p *cfg.ProgramCFG
}

// NewOracle pairs a fact table with its program CFG. A nil or top table
// still yields a usable oracle: structural positions (goto, fallthrough,
// static calls) remain provable without facts.
func NewOracle(f *Facts, p *cfg.ProgramCFG) *GuardOracle {
	if p == nil {
		return nil
	}
	return &GuardOracle{f: f, p: p}
}

// ProveGuards returns, per inter-block position i (length len(blocks)-1),
// whether the successor guard is proven dead. It returns nil for traces
// shorter than two blocks.
func (o *GuardOracle) ProveGuards(blocks []cfg.BlockID) []bool {
	if o == nil || len(blocks) < 2 {
		return nil
	}
	proofs := make([]bool, len(blocks)-1)
	ev := evaluator{prog: o.p.Program, lenient: true}
	var st *absState
	for i := 0; i+1 < len(blocks); i++ {
		b := o.p.Block(blocks[i])
		next := blocks[i+1]
		if b == nil {
			return proofs
		}
		if st == nil {
			st = o.seed(b)
		}
		ev.bail = false
		for _, in := range b.Instrs[:len(b.Instrs)-1] {
			ev.exec(st, in)
		}
		if ev.bail {
			// Structural damage in the walk: drop the state, keep only
			// tier-1 structural/fact proofs from here on.
			st = o.seed(b)
			ev.bail = false
		}
		term := b.Terminator()
		switch b.Kind {
		case bytecode.FlowNext:
			ev.exec(st, term)
			if ev.bail {
				st = nil
			}
			proofs[i] = b.FallThrough == next
		case bytecode.FlowGoto:
			proofs[i] = b.Taken == next
		case bytecode.FlowCond:
			stop := o.proveCond(ev, st, b, term, next, &proofs[i])
			if stop {
				return proofs
			}
		case bytecode.FlowSwitch:
			key := ev.pop(st)
			if d := o.f.DecidedSucc(b.ID); d != cfg.NoBlock && d == next {
				proofs[i] = true
			}
			if n, isC := key.isIntConst(); isC {
				tgt := switchTargetBlock(b, term, n)
				if tgt == next {
					proofs[i] = true
				} else if !proofs[i] {
					// The walk contradicts the recording: no execution
					// follows the trace past this position.
					return proofs
				}
			}
		case bytecode.FlowCall:
			proofs[i] = o.proveCall(b, term, next)
			st = nil
		default: // FlowReturn, FlowThrow, FlowHalt: dynamic successor
			st = nil
		}
	}
	return proofs
}

// proveCond handles one conditional position; stop reports that the walk
// proved the recorded direction impossible (the trace tail is dead).
func (o *GuardOracle) proveCond(ev evaluator, st *absState, b *cfg.Block, term bytecode.Instr, next cfg.BlockID, proof *bool) (stop bool) {
	var a, b2 absVal
	if bytecode.CondArity(term.Op) == 2 {
		b2 = ev.pop(st)
		a = ev.pop(st)
	} else {
		a = ev.pop(st)
	}
	if d := o.f.DecidedSucc(b.ID); d != cfg.NoBlock && d == next {
		*proof = true
	}
	taken, decided := condOutcome(term.Op, a, b2)
	if decided {
		edge := b.FallThrough
		if taken {
			edge = b.Taken
		}
		if edge == next {
			*proof = true
			refineBranch(st, term.Op, a, b2, taken)
			return false
		}
		return !*proof
	}
	// Undecided: condition the state on the recorded direction. A
	// position is only reached along the trace when the branch went the
	// recorded way, so the refinement is sound for later positions.
	switch next {
	case b.Taken:
		refineBranch(st, term.Op, a, b2, true)
	case b.FallThrough:
		refineBranch(st, term.Op, a, b2, false)
	}
	return false
}

// proveCall proves call positions with a unique dynamic successor: a
// native call always returns to the fallthrough block, and static/special
// dispatch always enters the resolved callee (a trap aborts the run and
// fires no side exit).
func (o *GuardOracle) proveCall(b *cfg.Block, term bytecode.Instr, next cfg.BlockID) bool {
	if o.p.Program == nil || term.A < 0 || int(term.A) >= len(o.p.Program.MethodRefs) {
		return false
	}
	ref := &o.p.Program.MethodRefs[term.A]
	callee := ref.Method
	if callee == nil {
		return false
	}
	if callee.Native != "" {
		return b.FallThrough == next
	}
	if ref.Kind == classfile.RefVirtual || callee.Abstract {
		return false
	}
	entry := o.p.MethodEntry(callee)
	return entry != nil && entry.ID == next
}

// seed builds the walk state at a block boundary from the block's entry
// facts: proven constants and non-null slots are known, everything else is
// unknown but refinable through provenance.
func (o *GuardOracle) seed(b *cfg.Block) *absState {
	st := &absState{locals: make([]lval, b.Method.MaxLocals)}
	bf := o.f.Block(b.ID)
	if bf == nil {
		return st
	}
	set := func(slot int32, v absVal) {
		if slot >= 0 && int(slot) < len(st.locals) {
			st.locals[slot] = lval{v: v, init: true}
		}
	}
	for _, c := range bf.IntConsts {
		set(c.Slot, intConst(c.Val))
	}
	for _, c := range bf.FloatConsts {
		set(c.Slot, floatConst(c.Bits))
	}
	for _, slot := range bf.NonNull {
		set(slot, nonNullRef())
	}
	return st
}
