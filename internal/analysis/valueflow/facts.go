// Package valueflow computes whole-program value-flow facts for linked
// programs: sparse conditional constant propagation, integer value ranges,
// and reference nullness over the per-method CFGs, with a bounded
// call-site-summary interprocedural layer.
//
// The result is a per-block Facts table — constant locals and stack slots
// at block entry, branch outcomes decided by ranges, references proven
// non-null, and loop-invariant locals — consumed three ways: by
// analysis.ComputeHintsWithFacts to pre-seed decided branches as
// unique-successor BCG hints, by the trace cache (through GuardOracle) to
// prove side-exit guards dead, and by cmd/tracelint as a report.
//
// Every fact is a universally quantified claim about dynamic execution
// ("whenever block B is entered, local 3 holds 7") and is differentially
// checked against the VM by the soundness harness in internal/harness.
// When the analysis cannot establish a fixpoint (unlinked input, decode
// damage, signature-confused virtual dispatch, budget exhaustion) it
// degrades to the top table, which claims nothing.
package valueflow

import (
	"repro/internal/cfg"
)

// IntConst claims a local slot holds a known integer at block entry.
type IntConst struct {
	Slot int32
	Val  int64
}

// FloatConst claims a local slot holds a known float (by bit pattern) at
// block entry.
type FloatConst struct {
	Slot int32
	Bits uint64
}

// StackConst claims an operand-stack slot (indexed from the bottom) holds a
// known integer at block entry.
type StackConst struct {
	Idx int32
	Val int64
}

// BlockFacts is every proven claim about one basic block's entry state.
// The zero value (plus Decided == cfg.NoBlock) claims only "unreachable";
// unanalyzed programs get Reachable == true with no other claims.
type BlockFacts struct {
	// Reachable is false only when the analysis proved no execution can
	// enter the block.
	Reachable bool
	// Decided is the unique successor a conditional or switch terminator
	// must take, or cfg.NoBlock when undecided.
	Decided cfg.BlockID

	IntConsts   []IntConst
	FloatConsts []FloatConst
	NonNull     []int32 // local slots proven non-null
	StackConsts []StackConst
}

// Facts is the whole-program fact table, indexed by cfg.BlockID. A Facts
// value is immutable after Compute and safe for concurrent readers.
type Facts struct {
	blocks    []BlockFacts
	invariant map[cfg.BlockID][]int32
	top       bool
	analyzed  int // methods that reached a fixpoint
	reached   int // methods proven reachable from main
}

func newFacts(numBlocks int) *Facts {
	f := &Facts{blocks: make([]BlockFacts, numBlocks)}
	for i := range f.blocks {
		f.blocks[i].Decided = cfg.NoBlock
	}
	return f
}

// topFactsFor returns the table that claims nothing: every block reachable,
// nothing decided. It is the sound fallback for any analysis failure.
func topFactsFor(p *cfg.ProgramCFG) *Facts {
	n := 0
	if p != nil {
		n = p.NumBlocks()
	}
	f := newFacts(n)
	f.top = true
	for i := range f.blocks {
		f.blocks[i].Reachable = true
	}
	return f
}

// Top reports whether the table is the claim-free fallback.
func (f *Facts) Top() bool { return f == nil || f.top }

// FactsFromBlocks builds a table directly from per-block claims. It exists
// for differential-testing harnesses that must inject known-false claims to
// prove their checker catches them; Compute is the only production
// constructor. Callers must set each block's Decided explicitly (the
// BlockFacts zero value's Decided is block 0, not cfg.NoBlock).
func FactsFromBlocks(blocks []BlockFacts) *Facts {
	return &Facts{blocks: append([]BlockFacts(nil), blocks...)}
}

// NumBlocks returns the number of blocks covered by the table.
func (f *Facts) NumBlocks() int {
	if f == nil {
		return 0
	}
	return len(f.blocks)
}

// Block returns the facts for one block, or nil when out of range.
func (f *Facts) Block(id cfg.BlockID) *BlockFacts {
	if f == nil || int(id) >= len(f.blocks) {
		return nil
	}
	return &f.blocks[id]
}

// DecidedSucc returns the statically decided successor of a conditional or
// switch block, or cfg.NoBlock.
func (f *Facts) DecidedSucc(id cfg.BlockID) cfg.BlockID {
	if bf := f.Block(id); bf != nil {
		return bf.Decided
	}
	return cfg.NoBlock
}

// InvariantLocals returns the local slots not written anywhere inside the
// natural loop headed by the given block (nil for non-headers). Invariance
// is syntactic: the slots are operands a specializer may hoist reads of.
func (f *Facts) InvariantLocals(id cfg.BlockID) []int32 {
	if f == nil {
		return nil
	}
	return f.invariant[id]
}

// Stats summarizes the table for reports.
type Stats struct {
	Blocks          int
	Reachable       int
	Unreachable     int
	Decided         int
	IntConsts       int
	FloatConsts     int
	NonNull         int
	StackConsts     int
	LoopHeaders     int
	MethodsReached  int
	MethodsAnalyzed int
	Top             bool
}

// Stats tallies every claim in the table.
func (f *Facts) Stats() Stats {
	var s Stats
	if f == nil {
		return s
	}
	s.Top = f.top
	s.Blocks = len(f.blocks)
	s.MethodsReached = f.reached
	s.MethodsAnalyzed = f.analyzed
	s.LoopHeaders = len(f.invariant)
	for i := range f.blocks {
		bf := &f.blocks[i]
		if bf.Reachable {
			s.Reachable++
		} else {
			s.Unreachable++
		}
		if bf.Decided != cfg.NoBlock {
			s.Decided++
		}
		s.IntConsts += len(bf.IntConsts)
		s.FloatConsts += len(bf.FloatConsts)
		s.NonNull += len(bf.NonNull)
		s.StackConsts += len(bf.StackConsts)
	}
	return s
}
