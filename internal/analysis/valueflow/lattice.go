package valueflow

import (
	"math"

	"repro/internal/bytecode"
)

// maxAbsStack bounds the abstract operand stack, matching the verifier's
// MaxVerifyStack so both analyses give up on the same degenerate programs.
const maxAbsStack = 4096

// widenAfter is the number of times an instruction's state may be re-merged
// before integer bounds that are still moving get widened to ±∞. It bounds
// fixpoint iteration on counting loops without costing precision on the
// first few unrollings.
const widenAfter = 16

// noSrc marks an abstract value with no local-variable provenance.
const noSrc int32 = -1

// nullness is the three-point reference lattice: maybe-null on top,
// definitely-null and definitely-non-null below it.
type nullness uint8

const (
	nlMaybe nullness = iota
	nlNull
	nlNonNull
)

// absVal is one abstract value: the verifier's kind lattice refined with an
// integer interval, a float constant, reference nullness, and provenance.
// src is the local slot the value was loaded from (noSrc if none); it lets
// a conditional refine the *local* it tested, and is invalidated when the
// slot is overwritten. The struct is comparable, which flowTo relies on for
// change detection.
type absVal struct {
	kind bytecode.ValKind
	lo   int64 // integer interval, valid when kind == KInt
	hi   int64
	fb   uint64 // float constant bits, valid when kind == KFloat && fc
	fc   bool
	nl   nullness // valid when kind == KRef
	src  int32
}

func topAny() absVal { return absVal{kind: bytecode.KAny, src: noSrc} }
func topInt() absVal {
	return absVal{kind: bytecode.KInt, lo: math.MinInt64, hi: math.MaxInt64, src: noSrc}
}
func topFloat() absVal { return absVal{kind: bytecode.KFloat, src: noSrc} }
func topRef() absVal   { return absVal{kind: bytecode.KRef, nl: nlMaybe, src: noSrc} }

func intConst(n int64) absVal { return absVal{kind: bytecode.KInt, lo: n, hi: n, src: noSrc} }

func intRange(lo, hi int64) absVal {
	return absVal{kind: bytecode.KInt, lo: lo, hi: hi, src: noSrc}
}

func floatConst(bits uint64) absVal {
	return absVal{kind: bytecode.KFloat, fb: bits, fc: true, src: noSrc}
}

func nullRef() absVal    { return absVal{kind: bytecode.KRef, nl: nlNull, src: noSrc} }
func nonNullRef() absVal { return absVal{kind: bytecode.KRef, nl: nlNonNull, src: noSrc} }

func (v absVal) isIntConst() (int64, bool) {
	if v.kind == bytecode.KInt && v.lo == v.hi {
		return v.lo, true
	}
	return 0, false
}

func (v absVal) isFloatConst() (uint64, bool) {
	if v.kind == bytecode.KFloat && v.fc {
		return v.fb, true
	}
	return 0, false
}

// merge joins two abstract values. Joining distinct kinds yields the
// unconstrained top; within a kind the interval hull / constant equality /
// nullness equality is kept. widen additionally pushes integer bounds that
// are still moving to ±∞ (applied once an instruction has been revisited
// more than widenAfter times).
func merge(a, b absVal, widen bool) absVal {
	if a.kind != b.kind {
		return topAny()
	}
	out := a
	if a.src != b.src {
		out.src = noSrc
	}
	switch a.kind {
	case bytecode.KInt:
		if b.lo < out.lo {
			out.lo = b.lo
			if widen {
				out.lo = math.MinInt64
			}
		}
		if b.hi > out.hi {
			out.hi = b.hi
			if widen {
				out.hi = math.MaxInt64
			}
		}
	case bytecode.KFloat:
		if !(a.fc && b.fc && a.fb == b.fb) {
			out.fc = false
			out.fb = 0
		}
	case bytecode.KRef:
		if a.nl != b.nl {
			out.nl = nlMaybe
		}
	}
	return out
}

// lval is one abstract local slot. init distinguishes "written on every
// path here" from slots whose VM content may still be the zero Value; only
// init slots ever become facts.
type lval struct {
	v    absVal
	init bool
}

func mergeLocal(a, b lval, widen bool) lval {
	if !a.init || !b.init {
		return lval{v: topAny()}
	}
	return lval{v: merge(a.v, b.v, widen), init: true}
}

// absState is the abstract machine state at one instruction boundary.
type absState struct {
	stack  []absVal
	locals []lval
}

func (st *absState) clone() absState {
	out := absState{
		stack:  append([]absVal(nil), st.stack...),
		locals: append([]lval(nil), st.locals...),
	}
	return out
}

// cmpKind is the canonical comparison relation behind the conditional
// branch opcodes (both the zero-test and two-operand families).
type cmpKind uint8

const (
	cmpEq cmpKind = iota
	cmpNe
	cmpLt
	cmpGe
	cmpGt
	cmpLe
)

// intCmpOf maps a conditional opcode to its relation; ok is false for the
// reference/null tests.
func intCmpOf(op bytecode.Op) (cmpKind, bool) {
	switch op {
	case bytecode.IfEq, bytecode.IfICmpEq:
		return cmpEq, true
	case bytecode.IfNe, bytecode.IfICmpNe:
		return cmpNe, true
	case bytecode.IfLt, bytecode.IfICmpLt:
		return cmpLt, true
	case bytecode.IfGe, bytecode.IfICmpGe:
		return cmpGe, true
	case bytecode.IfGt, bytecode.IfICmpGt:
		return cmpGt, true
	case bytecode.IfLe, bytecode.IfICmpLe:
		return cmpLe, true
	}
	return 0, false
}

func negateCmp(c cmpKind) cmpKind {
	switch c {
	case cmpEq:
		return cmpNe
	case cmpNe:
		return cmpEq
	case cmpLt:
		return cmpGe
	case cmpGe:
		return cmpLt
	case cmpGt:
		return cmpLe
	default:
		return cmpGt
	}
}

// swapCmp rewrites "a REL b" as "b REL' a".
func swapCmp(c cmpKind) cmpKind {
	switch c {
	case cmpLt:
		return cmpGt
	case cmpGe:
		return cmpLe
	case cmpGt:
		return cmpLt
	case cmpLe:
		return cmpGe
	default:
		return c
	}
}

// rangeCmp decides "a REL b" over intervals where possible.
func rangeCmp(c cmpKind, alo, ahi, blo, bhi int64) (taken, decided bool) {
	switch c {
	case cmpEq:
		if alo == ahi && blo == bhi && alo == blo {
			return true, true
		}
		if ahi < blo || bhi < alo {
			return false, true
		}
	case cmpNe:
		t, d := rangeCmp(cmpEq, alo, ahi, blo, bhi)
		return !t, d
	case cmpLt:
		if ahi < blo {
			return true, true
		}
		if alo >= bhi {
			return false, true
		}
	case cmpGe:
		t, d := rangeCmp(cmpLt, alo, ahi, blo, bhi)
		return !t, d
	case cmpGt:
		if alo > bhi {
			return true, true
		}
		if ahi <= blo {
			return false, true
		}
	case cmpLe:
		t, d := rangeCmp(cmpGt, alo, ahi, blo, bhi)
		return !t, d
	}
	return false, false
}

// condOutcome decides a conditional branch from the abstract operands (in
// push order: a below b for the two-operand forms; b is ignored for the
// single-operand forms). Undecidable or kind-mismatched operands report
// decided == false, which is always sound.
func condOutcome(op bytecode.Op, a, b absVal) (taken, decided bool) {
	if c, ok := intCmpOf(op); ok {
		if bytecode.CondArity(op) == 1 {
			b = intConst(0)
		}
		if a.kind != bytecode.KInt || b.kind != bytecode.KInt {
			return false, false
		}
		return rangeCmp(c, a.lo, a.hi, b.lo, b.hi)
	}
	switch op {
	case bytecode.IfNull:
		if a.kind != bytecode.KRef || a.nl == nlMaybe {
			return false, false
		}
		return a.nl == nlNull, true
	case bytecode.IfNonNull:
		if a.kind != bytecode.KRef || a.nl == nlMaybe {
			return false, false
		}
		return a.nl == nlNonNull, true
	case bytecode.IfACmpEq, bytecode.IfACmpNe:
		if a.kind != bytecode.KRef || b.kind != bytecode.KRef {
			return false, false
		}
		var eq, dec bool
		switch {
		case a.nl == nlNull && b.nl == nlNull:
			eq, dec = true, true
		case a.nl == nlNull && b.nl == nlNonNull,
			a.nl == nlNonNull && b.nl == nlNull:
			eq, dec = false, true
		}
		if !dec {
			return false, false
		}
		if op == bytecode.IfACmpNe {
			eq = !eq
		}
		return eq, true
	}
	return false, false
}

// clampCmp narrows a's interval under the constraint "a REL [blo,bhi]".
// ok is false when the constraint is infeasible (the edge cannot execute).
func clampCmp(c cmpKind, alo, ahi, blo, bhi int64) (lo, hi int64, ok bool) {
	lo, hi = alo, ahi
	switch c {
	case cmpEq:
		if blo > lo {
			lo = blo
		}
		if bhi < hi {
			hi = bhi
		}
	case cmpNe:
		if blo == bhi {
			if lo == blo && lo < hi {
				lo++
			}
			if hi == blo && lo < hi {
				hi--
			}
			if lo == hi && lo == blo {
				return 0, 0, false
			}
		}
	case cmpLt:
		if bhi > math.MinInt64 && bhi-1 < hi {
			hi = bhi - 1
		}
	case cmpLe:
		if bhi < hi {
			hi = bhi
		}
	case cmpGt:
		if blo < math.MaxInt64 && blo+1 > lo {
			lo = blo + 1
		}
	case cmpGe:
		if blo > lo {
			lo = blo
		}
	}
	return lo, hi, lo <= hi
}

// refineLocal writes a refined value back into the local slot the operand
// was loaded from, if its provenance is still valid.
func refineLocal(st *absState, src int32, v absVal) {
	if src < 0 || int(src) >= len(st.locals) {
		return
	}
	v.src = noSrc
	st.locals[src] = lval{v: v, init: true}
}

// refineBranch conditions st on one edge of a conditional branch: operands
// are given in push order (b is ignored for single-operand forms), taken
// selects the edge. It refines the tested locals through provenance and
// reports whether the edge is feasible at all.
func refineBranch(st *absState, op bytecode.Op, a, b absVal, taken bool) bool {
	if c, ok := intCmpOf(op); ok {
		if bytecode.CondArity(op) == 1 {
			b = intConst(0)
		}
		if a.kind != bytecode.KInt || b.kind != bytecode.KInt {
			return true
		}
		if !taken {
			c = negateCmp(c)
		}
		alo, ahi, okA := clampCmp(c, a.lo, a.hi, b.lo, b.hi)
		blo, bhi, okB := clampCmp(swapCmp(c), b.lo, b.hi, a.lo, a.hi)
		if !okA || !okB {
			return false
		}
		na, nb := a, b
		na.lo, na.hi = alo, ahi
		nb.lo, nb.hi = blo, bhi
		refineLocal(st, a.src, na)
		refineLocal(st, b.src, nb)
		return true
	}
	switch op {
	case bytecode.IfNull, bytecode.IfNonNull:
		if a.kind != bytecode.KRef {
			return true
		}
		isNull := (op == bytecode.IfNull) == taken
		if (isNull && a.nl == nlNonNull) || (!isNull && a.nl == nlNull) {
			return false
		}
		na := a
		na.nl = nlNonNull
		if isNull {
			na.nl = nlNull
		}
		refineLocal(st, a.src, na)
	case bytecode.IfACmpEq, bytecode.IfACmpNe:
		if a.kind != bytecode.KRef || b.kind != bytecode.KRef {
			return true
		}
		eq := (op == bytecode.IfACmpEq) == taken
		// Only the null/non-null consequences are expressible.
		if eq {
			if (a.nl == nlNull && b.nl == nlNonNull) || (a.nl == nlNonNull && b.nl == nlNull) {
				return false
			}
			if a.nl == nlNull {
				refineLocal(st, b.src, nullRef())
			}
			if b.nl == nlNull {
				refineLocal(st, a.src, nullRef())
			}
			if a.nl == nlNonNull {
				refineLocal(st, b.src, nonNullRef())
			}
			if b.nl == nlNonNull {
				refineLocal(st, a.src, nonNullRef())
			}
		} else {
			if a.nl == nlNull && b.nl == nlNull {
				return false
			}
			if a.nl == nlNull {
				refineLocal(st, b.src, nonNullRef())
			}
			if b.nl == nlNull {
				refineLocal(st, a.src, nonNullRef())
			}
		}
	}
	return true
}
