package valueflow

import (
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/classfile"
)

// msum is the interprocedural summary of one method: the join of argument
// values over every abstract call site, and the join of returned values.
// Both only grow, so the driver's fixpoint is monotone.
type msum struct {
	reached   bool
	args      []absVal
	argVisits uint32
	ret       absVal
	retOK     bool
	retVisits uint32
	// retSeen means some analyzed path returns; until then the return
	// sites of callers stay unreached (a callee that provably loops or
	// always throws never resumes its caller).
	retSeen bool
	// degraded marks a method whose own analysis failed (signature-confused
	// dispatch at one of its call sites, an evaluator bail, an oversized
	// frame). Its blocks keep zero claims beyond reachability, every callee
	// it could invoke has been seeded with top arguments, and its return
	// effect is the conservative "returns an unknown value of the declared
	// type" — so the failure stays local instead of discarding the whole
	// program's facts.
	degraded bool
	callers  map[int]struct{}
}

func (s *msum) addCaller(id int) {
	if s.callers == nil {
		s.callers = make(map[int]struct{}, 4)
	}
	s.callers[id] = struct{}{}
}

// iproc drives the bounded interprocedural fixpoint: a worklist of method
// IDs, re-analyzing a method whenever its argument join widens or a
// callee's return join changes.
type iproc struct {
	p        *cfg.ProgramCFG
	prog     *classfile.Program
	sums     []*msum
	queue    []int
	inQ      []bool
	vtargets map[int][]*classfile.Method
}

// Compute analyzes a linked program and returns its fact table. Any input
// the analysis cannot soundly handle — unlinked programs, undecodable
// bytecode, signature-confused virtual dispatch, a fixpoint that exhausts
// its budget — degrades to the claim-free top table rather than guessing.
func Compute(p *cfg.ProgramCFG) (f *Facts) {
	if p == nil || p.Program == nil || !p.Program.Linked() || p.Program.Main == nil {
		return topFactsFor(p)
	}
	// The analyzer is exercised on adversarial inputs (fuzzing, lint of
	// unverified programs); a defect must degrade to "no claims", never
	// take down the caller.
	defer func() {
		if recover() != nil {
			f = topFactsFor(p)
		}
	}()
	ip := &iproc{
		p:        p,
		prog:     p.Program,
		sums:     make([]*msum, len(p.Program.Methods)),
		inQ:      make([]bool, len(p.Program.Methods)),
		vtargets: make(map[int][]*classfile.Method),
	}
	for i := range ip.sums {
		ip.sums[i] = &msum{}
	}
	main := p.Program.Main
	ms := ip.sums[main.ID]
	ms.reached = true
	ms.args = make([]absVal, main.NArgs())
	for i, t := range argTypes(main) {
		ms.args[i] = typeVal(t)
	}
	ip.enqueue(main.ID)
	if !ip.run() {
		return topFactsFor(p)
	}
	return ip.capture()
}

// argTypes lists the local-slot types of a method's arguments, receiver
// included.
func argTypes(m *classfile.Method) []classfile.Type {
	out := make([]classfile.Type, 0, m.NArgs())
	if !m.Static {
		out = append(out, classfile.TRef)
	}
	return append(out, m.Params...)
}

func (ip *iproc) enqueue(id int) {
	if id < 0 || id >= len(ip.inQ) || ip.inQ[id] {
		return
	}
	ip.inQ[id] = true
	ip.queue = append(ip.queue, id)
}

func (ip *iproc) run() bool {
	budget := 40*len(ip.prog.Methods) + 400
	for len(ip.queue) > 0 {
		if budget <= 0 {
			return false
		}
		budget--
		id := ip.queue[len(ip.queue)-1]
		ip.queue = ip.queue[:len(ip.queue)-1]
		ip.inQ[id] = false
		m := ip.prog.Methods[id]
		if m.Native != "" || m.Abstract || len(m.Code) == 0 || ip.sums[id].degraded {
			continue
		}
		ma := newMethodAnalysis(ip, m, false, nil)
		if ma == nil {
			// Undecodable or CFG-less code in a linked program is structural
			// damage; no per-method recovery is sound.
			return false
		}
		if !ma.run() {
			ip.degradeMethod(id)
		}
	}
	return true
}

// degradeMethod localizes an analysis failure to one method: its facts are
// dropped (capture marks its blocks reachable with no claims), every method
// it could possibly invoke — for virtual sites, every same-slot method of
// any class, signature checks waived — is seeded with top arguments, and
// its summary reports the conservative return effect. Seeding with top is
// sound because top values claim nothing: a callee reached through a
// signature-confused dispatch may receive kind-mismatched values, but no
// fact derived from a top entry state can be falsified by them.
func (ip *iproc) degradeMethod(id int) {
	sum := ip.sums[id]
	if sum.degraded {
		return
	}
	sum.degraded = true
	if !sum.retSeen || sum.retOK {
		sum.retSeen = true
		sum.retOK = false
		sum.ret = absVal{}
		for c := range sum.callers {
			ip.enqueue(c)
		}
	}
	m := ip.prog.Methods[id]
	ins, err := bytecode.Decode(m.Code)
	if err != nil {
		return // already conservative: no claims, unknown return
	}
	for _, in := range ins {
		if bytecode.InfoOf(in.Op).Flow != bytecode.FlowCall {
			continue
		}
		if in.A < 0 || int(in.A) >= len(ip.prog.MethodRefs) {
			continue
		}
		for _, t := range ip.allCallees(&ip.prog.MethodRefs[in.A]) {
			if t == nil || t.Abstract || t.Native != "" {
				continue
			}
			ts := ip.sums[t.ID]
			args := make([]absVal, t.NArgs())
			for i, typ := range argTypes(t) {
				args[i] = typeVal(typ)
			}
			if ip.flowArgs(ts, args) {
				ip.enqueue(t.ID)
			}
			ts.addCaller(id)
		}
	}
}

// allCallees is calleesOf without the signature agreement requirement: the
// complete set of methods a call site could dynamically reach, used when a
// degraded caller must over-approximate its effects.
func (ip *iproc) allCallees(ref *classfile.MethodRef) []*classfile.Method {
	if ref.Kind != classfile.RefVirtual {
		return []*classfile.Method{ref.Method}
	}
	var ts []*classfile.Method
	seen := make(map[*classfile.Method]struct{})
	for _, c := range ip.prog.Classes {
		if ref.VSlot < 0 || ref.VSlot >= len(c.VTable) {
			continue
		}
		t := c.VTable[ref.VSlot]
		if _, dup := seen[t]; dup {
			continue
		}
		seen[t] = struct{}{}
		ts = append(ts, t)
	}
	return ts
}

// capture re-runs every reached method once against the converged
// summaries and records its block facts; unreached methods keep the
// zero-value "unreachable" claim on their blocks, degraded methods get
// reachability and nothing else.
func (ip *iproc) capture() *Facts {
	f := newFacts(ip.p.NumBlocks())
	for id, sum := range ip.sums {
		mc := ip.p.Methods[id]
		if mc == nil || !sum.reached {
			continue
		}
		f.reached++
		if sum.degraded {
			for _, b := range mc.Blocks {
				if bf := f.Block(b.ID); bf != nil {
					bf.Reachable = true
				}
			}
			continue
		}
		ma := newMethodAnalysis(ip, ip.prog.Methods[id], true, f)
		if ma == nil || !ma.run() {
			return topFactsFor(ip.p)
		}
		f.analyzed++
		ma.captureLoops(f)
	}
	return f
}

// calleesOf resolves the sound dynamic target set of a call: the resolved
// method for static/special dispatch, and for virtual dispatch every
// method any class in the program exposes at the reference's vtable slot
// (the receiver's static type is unknown). ok is false when a same-slot
// method disagrees on signature — dispatch there would desynchronize the
// caller's stack, so the whole analysis degrades.
func (ip *iproc) calleesOf(ref *classfile.MethodRef) ([]*classfile.Method, bool) {
	if ref.Kind != classfile.RefVirtual {
		return []*classfile.Method{ref.Method}, true
	}
	if ts, ok := ip.vtargets[ref.VSlot]; ok {
		return ts, ts != nil
	}
	ts := []*classfile.Method{}
	seen := make(map[*classfile.Method]struct{})
	for _, c := range ip.prog.Classes {
		if ref.VSlot < 0 || ref.VSlot >= len(c.VTable) {
			continue
		}
		t := c.VTable[ref.VSlot]
		if _, dup := seen[t]; dup {
			continue
		}
		if !t.SameSignature(ref.Method) {
			ip.vtargets[ref.VSlot] = nil
			return nil, false
		}
		seen[t] = struct{}{}
		ts = append(ts, t)
	}
	// An empty (non-nil) set is valid: no class exposes the slot, so the
	// dispatch always traps and the call has no successors.
	ip.vtargets[ref.VSlot] = ts
	return ts, true
}

// flowArgs joins one call site's argument values into a callee's entry
// summary, reporting whether anything changed (the callee then re-runs).
func (ip *iproc) flowArgs(sum *msum, args []absVal) bool {
	if !sum.reached {
		sum.reached = true
		sum.args = append([]absVal(nil), args...)
		return true
	}
	if len(sum.args) != len(args) {
		return false
	}
	sum.argVisits++
	widen := sum.argVisits > widenAfter
	changed := false
	for i := range sum.args {
		nv := merge(sum.args[i], args[i], widen)
		if nv != sum.args[i] {
			sum.args[i] = nv
			changed = true
		}
	}
	return changed
}

// manalysis is the instruction-granularity fixpoint over one method,
// mirroring the verifier's worklist skeleton with the richer lattice.
type manalysis struct {
	ip      *iproc
	ev      evaluator
	m       *classfile.Method
	mc      *cfg.MethodCFG
	ins     []bytecode.Instr
	idxOf   map[uint32]int
	states  []absState
	seen    []bool
	visits  []uint32
	queued  []bool
	work    []int
	capture bool
	facts   *Facts
}

func newMethodAnalysis(ip *iproc, m *classfile.Method, capture bool, facts *Facts) *manalysis {
	ins, err := bytecode.Decode(m.Code)
	if err != nil || len(ins) == 0 {
		return nil
	}
	ma := &manalysis{
		ip:      ip,
		ev:      evaluator{prog: ip.prog},
		m:       m,
		mc:      ip.p.Methods[m.ID],
		ins:     ins,
		idxOf:   make(map[uint32]int, len(ins)),
		states:  make([]absState, len(ins)),
		seen:    make([]bool, len(ins)),
		visits:  make([]uint32, len(ins)),
		queued:  make([]bool, len(ins)),
		capture: capture,
		facts:   facts,
	}
	if ma.mc == nil {
		return nil
	}
	for i, in := range ins {
		ma.idxOf[in.PC] = i
	}
	return ma
}

func (ma *manalysis) run() bool {
	na := ma.m.NArgs()
	sum := ma.ip.sums[ma.m.ID]
	if ma.m.MaxLocals < na || len(sum.args) != na || ma.m.MaxLocals > 1<<16 {
		return false
	}
	entry := absState{locals: make([]lval, ma.m.MaxLocals)}
	for i := 0; i < na; i++ {
		entry.locals[i] = lval{v: sum.args[i], init: true}
	}
	ma.flowTo(0, entry)
	for len(ma.work) > 0 && !ma.ev.bail {
		idx := ma.work[len(ma.work)-1]
		ma.work = ma.work[:len(ma.work)-1]
		ma.queued[idx] = false
		ma.step(idx)
	}
	if ma.ev.bail {
		return false
	}
	if ma.capture {
		ma.captureFacts()
	}
	return true
}

func (ma *manalysis) enqueueInstr(j int) {
	if !ma.queued[j] {
		ma.queued[j] = true
		ma.work = append(ma.work, j)
	}
}

// flowTo merges a state into an instruction's entry, queueing it when the
// merge changed anything. Integer bounds still moving after widenAfter
// revisits are widened to ±∞, bounding the fixpoint.
func (ma *manalysis) flowTo(j int, st absState) {
	if j < 0 || j >= len(ma.ins) {
		ma.ev.fail()
		return
	}
	if !ma.seen[j] {
		ma.seen[j] = true
		ma.states[j] = st.clone()
		ma.enqueueInstr(j)
		return
	}
	cur := &ma.states[j]
	if len(cur.stack) != len(st.stack) || len(cur.locals) != len(st.locals) {
		ma.ev.fail()
		return
	}
	ma.visits[j]++
	widen := ma.visits[j] > widenAfter
	changed := false
	for i := range cur.stack {
		nv := merge(cur.stack[i], st.stack[i], widen)
		if nv != cur.stack[i] {
			cur.stack[i] = nv
			changed = true
		}
	}
	for i := range cur.locals {
		nv := mergeLocal(cur.locals[i], st.locals[i], widen)
		if nv != cur.locals[i] {
			cur.locals[i] = nv
			changed = true
		}
	}
	if changed {
		ma.enqueueInstr(j)
	}
}

func (ma *manalysis) branchTo(pc uint32, st absState) {
	j, ok := ma.idxOf[pc]
	if !ok {
		ma.ev.fail()
		return
	}
	ma.flowTo(j, st)
}

func (ma *manalysis) step(idx int) {
	in := ma.ins[idx]
	st := ma.states[idx].clone()
	// Exception edges: only Throw transfers to a handler (traps abort the
	// run), but the throw may be arbitrarily deep in callees, so every
	// covered instruction — not just Throw — flows its entry locals to
	// its handlers with the exception as the sole stack operand. This
	// over-approximation mirrors the verifier and can only weaken facts.
	for hi := range ma.m.Handlers {
		h := &ma.m.Handlers[hi]
		if !h.Covers(in.PC) {
			continue
		}
		hj, ok := ma.idxOf[h.HandlerPC]
		if !ok {
			ma.ev.fail()
			return
		}
		hst := absState{
			stack:  []absVal{nonNullRef()},
			locals: append([]lval(nil), st.locals...),
		}
		ma.flowTo(hj, hst)
	}
	switch bytecode.InfoOf(in.Op).Flow {
	case bytecode.FlowNext:
		ma.ev.exec(&st, in)
		if !ma.ev.bail {
			ma.flowTo(idx+1, st)
		}
	case bytecode.FlowGoto:
		ma.branchTo(uint32(in.A), st)
	case bytecode.FlowCond:
		ma.stepCond(idx, in, st)
	case bytecode.FlowSwitch:
		ma.stepSwitch(in, st)
	case bytecode.FlowCall:
		ma.stepCall(idx, in, st)
	case bytecode.FlowReturn:
		ma.stepReturn(in, st)
	case bytecode.FlowThrow:
		ma.ev.pop(&st) // handler edges already flowed above
	case bytecode.FlowHalt:
		// Terminates the machine; no successors.
	default:
		ma.ev.fail()
	}
}

// stepCond follows only the decided edge when the outcome is known
// (sparse conditional propagation), and otherwise conditions each edge's
// state on its branch direction, skipping edges proven infeasible.
func (ma *manalysis) stepCond(idx int, in bytecode.Instr, st absState) {
	var a, b absVal
	if bytecode.CondArity(in.Op) == 2 {
		b = ma.ev.pop(&st)
		a = ma.ev.pop(&st)
	} else {
		a = ma.ev.pop(&st)
	}
	if ma.ev.bail {
		return
	}
	if taken, decided := condOutcome(in.Op, a, b); decided {
		if taken {
			ma.branchTo(uint32(in.A), st)
		} else {
			ma.flowTo(idx+1, st)
		}
		return
	}
	tst := st.clone()
	if refineBranch(&tst, in.Op, a, b, true) {
		ma.branchTo(uint32(in.A), tst)
	}
	if refineBranch(&st, in.Op, a, b, false) {
		ma.flowTo(idx+1, st)
	}
}

func (ma *manalysis) stepSwitch(in bytecode.Instr, st absState) {
	key := ma.ev.pop(&st)
	if ma.ev.bail {
		return
	}
	if n, ok := key.isIntConst(); ok {
		ma.branchTo(switchTargetPC(in, n), st)
		return
	}
	if in.Op == bytecode.TableSwitch && key.kind == bytecode.KInt && len(in.Targets) > 0 {
		lo := int64(in.A)
		hi := lo + int64(len(in.Targets)) - 1
		if key.hi < lo || key.lo > hi {
			ma.branchTo(in.Dflt, st)
			return
		}
	}
	for _, t := range in.Targets {
		ma.branchTo(t, st)
	}
	ma.branchTo(in.Dflt, st)
}

// switchTargetPC mirrors the VM's switch dispatch for a constant key.
func switchTargetPC(in bytecode.Instr, key int64) uint32 {
	if in.Op == bytecode.TableSwitch {
		idx := key - int64(in.A)
		if idx >= 0 && idx < int64(len(in.Targets)) {
			return in.Targets[idx]
		}
		return in.Dflt
	}
	for i, k := range in.Keys {
		if int64(k) == key && i < len(in.Targets) {
			return in.Targets[i]
		}
	}
	return in.Dflt
}

func (ma *manalysis) stepCall(idx int, in bytecode.Instr, st absState) {
	if in.A < 0 || int(in.A) >= len(ma.ip.prog.MethodRefs) {
		ma.ev.fail()
		return
	}
	ref := &ma.ip.prog.MethodRefs[in.A]
	if ref.Method == nil {
		ma.ev.fail()
		return
	}
	na := ref.Method.NArgs()
	args := make([]absVal, na)
	for i := na - 1; i >= 0; i-- {
		args[i] = ma.ev.pop(&st)
	}
	if ma.ev.bail {
		return
	}
	instance := ref.Kind != classfile.RefStatic
	if instance && len(args) > 0 {
		if args[0].kind == bytecode.KRef && args[0].nl == nlNull {
			return // always traps on the null receiver; no successors
		}
		// Continuing past the call implies the receiver was non-null.
		ma.ev.provenNonNull(&st, args[0])
	}
	for i := range args {
		args[i].src = noSrc
	}
	if instance && len(args) > 0 && args[0].kind == bytecode.KRef {
		args[0].nl = nlNonNull // the callee's receiver cannot be null
	}
	targets, ok := ma.ip.calleesOf(ref)
	if !ok {
		ma.ev.fail()
		return
	}
	returns := false
	var retv absVal
	retSet := false
	joinRet := func(v absVal) {
		if retSet {
			retv = merge(retv, v, false)
		} else {
			retv, retSet = v, true
		}
	}
	for _, t := range targets {
		if t == nil || t.Abstract {
			continue // invoking an abstract method traps
		}
		if t.Native != "" {
			returns = true
			joinRet(typeVal(t.Ret))
			continue
		}
		sum := ma.ip.sums[t.ID]
		if !ma.capture {
			if ma.ip.flowArgs(sum, args) {
				ma.ip.enqueue(t.ID)
			}
			sum.addCaller(ma.m.ID)
		}
		if sum.retSeen {
			returns = true
			if sum.retOK {
				joinRet(sum.ret)
			} else {
				joinRet(typeVal(t.Ret))
			}
		}
	}
	if !returns {
		return // no analyzed path returns (yet): the return site is unreached
	}
	if ref.Method.Ret != classfile.TVoid {
		if !retSet {
			retv = typeVal(ref.Method.Ret)
		}
		ma.ev.push(&st, retv)
		if ma.ev.bail {
			return
		}
	}
	ma.flowTo(idx+1, st)
}

func (ma *manalysis) stepReturn(in bytecode.Instr, st absState) {
	var v absVal
	hasVal := in.Op != bytecode.ReturnVoid
	if hasVal {
		v = ma.ev.pop(&st)
		if ma.ev.bail {
			return
		}
		v.src = noSrc
	}
	if ma.capture {
		return
	}
	sum := ma.ip.sums[ma.m.ID]
	changed := !sum.retSeen
	sum.retSeen = true
	if hasVal {
		if !sum.retOK {
			sum.ret, sum.retOK = v, true
			changed = true
		} else {
			sum.retVisits++
			nv := merge(sum.ret, v, sum.retVisits > widenAfter)
			if nv != sum.ret {
				sum.ret = nv
				changed = true
			}
		}
	}
	if changed {
		for c := range sum.callers {
			ma.ip.enqueue(c)
		}
	}
}

// captureFacts projects the converged instruction states onto block-entry
// facts and decided terminators.
func (ma *manalysis) captureFacts() {
	for _, b := range ma.mc.Blocks {
		sidx, ok := ma.idxOf[b.StartPC()]
		if !ok || int(b.ID) >= len(ma.facts.blocks) {
			continue
		}
		bf := &ma.facts.blocks[b.ID]
		if !ma.seen[sidx] {
			continue // keeps the zero-value "unreachable" claim
		}
		bf.Reachable = true
		st := &ma.states[sidx]
		for slot, l := range st.locals {
			if !l.init {
				continue
			}
			switch l.v.kind {
			case bytecode.KInt:
				if n, isC := l.v.isIntConst(); isC {
					bf.IntConsts = append(bf.IntConsts, IntConst{Slot: int32(slot), Val: n})
				}
			case bytecode.KFloat:
				if bits, isC := l.v.isFloatConst(); isC {
					bf.FloatConsts = append(bf.FloatConsts, FloatConst{Slot: int32(slot), Bits: bits})
				}
			case bytecode.KRef:
				if l.v.nl == nlNonNull {
					bf.NonNull = append(bf.NonNull, int32(slot))
				}
			}
		}
		for i, v := range st.stack {
			if n, isC := v.isIntConst(); isC {
				bf.StackConsts = append(bf.StackConsts, StackConst{Idx: int32(i), Val: n})
			}
		}
		ma.captureDecided(b, bf)
	}
}

func (ma *manalysis) captureDecided(b *cfg.Block, bf *BlockFacts) {
	term := b.Terminator()
	tidx, ok := ma.idxOf[term.PC]
	if !ok || !ma.seen[tidx] {
		return
	}
	tst := &ma.states[tidx]
	switch b.Kind {
	case bytecode.FlowCond:
		arity := bytecode.CondArity(term.Op)
		if len(tst.stack) < arity {
			return
		}
		var a, b2 absVal
		if arity == 2 {
			a, b2 = tst.stack[len(tst.stack)-2], tst.stack[len(tst.stack)-1]
		} else {
			a = tst.stack[len(tst.stack)-1]
		}
		if taken, decided := condOutcome(term.Op, a, b2); decided {
			if taken {
				bf.Decided = b.Taken
			} else {
				bf.Decided = b.FallThrough
			}
		}
	case bytecode.FlowSwitch:
		if len(tst.stack) < 1 {
			return
		}
		key := tst.stack[len(tst.stack)-1]
		if n, isC := key.isIntConst(); isC {
			bf.Decided = switchTargetBlock(b, term, n)
		} else if term.Op == bytecode.TableSwitch && key.kind == bytecode.KInt && len(b.SwitchTargets) > 0 {
			lo := int64(term.A)
			hi := lo + int64(len(b.SwitchTargets)) - 1
			if key.hi < lo || key.lo > hi {
				bf.Decided = b.SwitchDefault
			}
		}
	}
}

// switchTargetBlock mirrors the VM's switch dispatch at block granularity.
func switchTargetBlock(b *cfg.Block, term bytecode.Instr, key int64) cfg.BlockID {
	if term.Op == bytecode.TableSwitch {
		idx := key - int64(term.A)
		if idx >= 0 && idx < int64(len(b.SwitchTargets)) {
			return b.SwitchTargets[idx]
		}
		return b.SwitchDefault
	}
	for i, k := range term.Keys {
		if int64(k) == key && i < len(b.SwitchTargets) {
			return b.SwitchTargets[i]
		}
	}
	return b.SwitchDefault
}

// captureLoops records, per natural-loop header, the local slots no block
// of the loop writes. Membership follows both static successors and
// exception edges, so a handler inside the loop counts its writes.
func (ma *manalysis) captureLoops(f *Facts) {
	const maxLoopLocals = 256
	if ma.m.MaxLocals > maxLoopLocals {
		return
	}
	blocks := ma.mc.Blocks
	n := len(blocks)
	succ := make([][]int, n)
	addEdge := func(from, to int) {
		for _, s := range succ[from] {
			if s == to {
				return
			}
		}
		succ[from] = append(succ[from], to)
	}
	for i, b := range blocks {
		for _, id := range b.StaticSuccessors() {
			if t := ma.ip.p.Block(id); t != nil && t.Method == ma.m {
				addEdge(i, t.Index)
			}
		}
		for hi := range ma.m.Handlers {
			h := &ma.m.Handlers[hi]
			covered := false
			for _, in := range b.Instrs {
				if h.Covers(in.PC) {
					covered = true
					break
				}
			}
			if covered {
				if t := ma.mc.BlockAtPC(h.HandlerPC); t != nil {
					addEdge(i, t.Index)
				}
			}
		}
	}
	preds := make([][]int, n)
	for i, ss := range succ {
		for _, s := range ss {
			preds[s] = append(preds[s], i)
		}
	}
	idom := dominators(succ, preds)
	dominates := func(a, b int) bool {
		for x := b; x >= 0; x = idom[x] {
			if x == a {
				return true
			}
			if idom[x] == x {
				break
			}
		}
		return false
	}
	// Union the natural loops per header, then union their written slots.
	written := make(map[int]map[int32]bool)
	for i, ss := range succ {
		if idom[i] < 0 {
			continue
		}
		for _, h := range ss {
			if !dominates(h, i) {
				continue
			}
			w := written[h]
			if w == nil {
				w = make(map[int32]bool)
				written[h] = w
			}
			collectLoopWrites(blocks, preds, h, i, w)
		}
	}
	for h, w := range written {
		hb := blocks[h]
		bf := f.Block(hb.ID)
		if bf == nil || !bf.Reachable {
			continue
		}
		var inv []int32
		for slot := int32(0); slot < int32(ma.m.MaxLocals); slot++ {
			if !w[slot] {
				inv = append(inv, slot)
			}
		}
		if inv == nil {
			continue
		}
		if f.invariant == nil {
			f.invariant = make(map[cfg.BlockID][]int32)
		}
		f.invariant[hb.ID] = inv
	}
}

// collectLoopWrites walks the natural loop of back edge tail→head backwards
// from the tail, adding every local slot stored by a loop block.
func collectLoopWrites(blocks []*cfg.Block, preds [][]int, head, tail int, w map[int32]bool) {
	inLoop := make([]bool, len(blocks))
	inLoop[head] = true
	stack := []int{tail}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if inLoop[i] {
			continue
		}
		inLoop[i] = true
		stack = append(stack, preds[i]...)
	}
	for i, in := range inLoop {
		if !in {
			continue
		}
		for _, ins := range blocks[i].Instrs {
			switch ins.Op {
			case bytecode.IStore, bytecode.FStore, bytecode.AStore, bytecode.IInc:
				w[ins.A] = true
			}
		}
	}
}

// dominators computes immediate dominators over the method-local graph
// (entry is block 0) with the standard iterative algorithm. idom[i] < 0
// marks blocks unreachable from the entry.
func dominators(succ, preds [][]int) []int {
	n := len(succ)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	if n == 0 {
		return idom
	}
	// Reverse post-order from the entry (iterative: adversarial inputs
	// must not be able to overflow the goroutine stack).
	order := make([]int, 0, n)
	state := make([]uint8, n) // 0 unseen, 1 expanded, 2 emitted
	stack := []int{0}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		switch state[i] {
		case 0:
			state[i] = 1
			for _, s := range succ[i] {
				if state[s] == 0 {
					stack = append(stack, s)
				}
			}
		case 1:
			state[i] = 2
			order = append(order, i)
			stack = stack[:len(stack)-1]
		default:
			stack = stack[:len(stack)-1]
		}
	}
	for l, r := 0, len(order)-1; l < r; l, r = l+1, r-1 {
		order[l], order[r] = order[r], order[l]
	}
	rpoNum := make([]int, n)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for i, b := range order {
		rpoNum[b] = i
	}
	intersect := func(a, b int) int {
		for a != b {
			for rpoNum[a] > rpoNum[b] {
				a = idom[a]
			}
			for rpoNum[b] > rpoNum[a] {
				b = idom[b]
			}
		}
		return a
	}
	idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range order {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range preds[b] {
				if idom[p] < 0 {
					continue
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}
