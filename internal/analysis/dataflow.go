package analysis

import (
	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
)

// Hints holds the static dataflow facts the dynamic machinery can exploit:
// per-block unique-successor classification (seeding BCG nodes directly in
// the unique state, skipping the start-state delay), loop headers (bounding
// the trace cache's backtracking), and immediate dominators (diagnostics,
// cmd/tracelint). All slices are indexed by global cfg.BlockID.
type Hints struct {
	// UniqueSucc[id] is the single statically known dynamic successor of
	// block id, or cfg.NoBlock when the block has none, several, or any
	// dynamic out-edge (calls, returns, throws, exception coverage).
	UniqueSucc []cfg.BlockID
	// Idom[id] is the immediate dominator of block id within its method, or
	// cfg.NoBlock for method/handler entries and statically unreachable
	// blocks.
	Idom []cfg.BlockID

	loop []bool
}

// NumBlocks returns the number of blocks the hints cover.
func (h *Hints) NumBlocks() int { return len(h.UniqueSucc) }

// IsLoopHeader reports whether the block is the target of a back edge.
func (h *Hints) IsLoopHeader(id cfg.BlockID) bool {
	return int(id) < len(h.loop) && h.loop[id]
}

// LoopHeaders returns every loop-header block in ascending ID order.
func (h *Hints) LoopHeaders() []cfg.BlockID {
	var out []cfg.BlockID
	for id, is := range h.loop {
		if is {
			out = append(out, cfg.BlockID(id))
		}
	}
	return out
}

// UniqueBlocks returns every block with a statically unique successor, in
// ascending ID order.
func (h *Hints) UniqueBlocks() []cfg.BlockID {
	var out []cfg.BlockID
	for id, s := range h.UniqueSucc {
		if s != cfg.NoBlock {
			out = append(out, cfg.BlockID(id))
		}
	}
	return out
}

// ComputeHints runs the dataflow passes over every method CFG: dominators
// (iterative RPO fixpoint with exception-handler entries as extra roots),
// loop headers (back edges b→h where h dominates b), and static successor
// classification.
func ComputeHints(p *cfg.ProgramCFG) *Hints {
	return ComputeHintsWithFacts(p, nil)
}

// ComputeHintsWithFacts is ComputeHints with a value-flow fact table: a
// conditional or switch block whose outcome the facts decided is classified
// unique-successor even though it has several static successors, so the
// profiler seeds its BCG node directly in the unique state. A nil or top
// table reduces to the purely structural classification.
func ComputeHintsWithFacts(p *cfg.ProgramCFG, f *valueflow.Facts) *Hints {
	n := p.NumBlocks()
	h := &Hints{
		UniqueSucc: make([]cfg.BlockID, n),
		Idom:       make([]cfg.BlockID, n),
		loop:       make([]bool, n),
	}
	for i := range h.UniqueSucc {
		h.UniqueSucc[i] = cfg.NoBlock
		h.Idom[i] = cfg.NoBlock
	}
	for _, mc := range p.Methods {
		if mc == nil {
			continue
		}
		hintMethod(h, mc, f)
	}
	return h
}

// Local dominator encoding: block indices within the method, plus a virtual
// super-root above the entry and every handler entry (exception edges are
// dynamic, so handler code has no static predecessor).
const (
	domUndef = -2
	domVRoot = -1
)

func hintMethod(h *Hints, mc *cfg.MethodCFG, f *valueflow.Facts) {
	nb := len(mc.Blocks)
	base := mc.Blocks[0].ID
	local := func(id cfg.BlockID) int { return int(id - base) }

	// Exception coverage: a protected block can transfer to a handler from
	// any instruction, so its dynamic successor set is never singleton.
	covered := make([]bool, nb)
	for _, hd := range mc.Method.Handlers {
		for i, b := range mc.Blocks {
			if covered[i] {
				continue
			}
			for _, in := range b.Instrs {
				if hd.Covers(in.PC) {
					covered[i] = true
					break
				}
			}
		}
	}

	succs := make([][]int, nb)
	preds := make([][]int, nb)
	for i, b := range mc.Blocks {
		for _, s := range b.StaticSuccessors() {
			j := local(s)
			succs[i] = append(succs[i], j)
			preds[j] = append(preds[j], i)
		}
	}

	isRoot := make([]bool, nb)
	isRoot[0] = true
	handlerEntry := make([]bool, nb)
	for _, b := range mc.HandlerEntries() {
		isRoot[local(b.ID)] = true
		handlerEntry[local(b.ID)] = true
	}

	// Reverse postorder from all roots.
	visited := make([]bool, nb)
	post := make([]int, 0, nb)
	var dfs func(int)
	dfs = func(i int) {
		visited[i] = true
		for _, s := range succs[i] {
			if !visited[s] {
				dfs(s)
			}
		}
		post = append(post, i)
	}
	for i := 0; i < nb; i++ {
		if isRoot[i] && !visited[i] {
			dfs(i)
		}
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	rpoNum := make([]int, nb)
	for i := range rpoNum {
		rpoNum[i] = -1
	}
	for k, b := range rpo {
		rpoNum[b] = k
	}

	// Cooper–Harvey–Kennedy iterative dominators.
	doms := make([]int, nb)
	for i := range doms {
		doms[i] = domUndef
	}
	for i := range isRoot {
		if isRoot[i] {
			doms[i] = domVRoot
		}
	}
	num := func(x int) int {
		if x == domVRoot {
			return -1
		}
		return rpoNum[x]
	}
	intersect := func(a, b int) int {
		for a != b {
			for num(a) > num(b) {
				a = doms[a]
			}
			for num(b) > num(a) {
				b = doms[b]
			}
		}
		return a
	}
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if isRoot[b] {
				continue
			}
			newIdom := domUndef
			for _, p := range preds[b] {
				if doms[p] == domUndef {
					continue
				}
				if newIdom == domUndef {
					newIdom = p
				} else {
					newIdom = intersect(newIdom, p)
				}
			}
			if newIdom != domUndef && doms[b] != newIdom {
				doms[b] = newIdom
				changed = true
			}
		}
	}

	dominates := func(a, b int) bool {
		for x := b; x != domUndef; x = doms[x] {
			if x == a {
				return true
			}
			if x == domVRoot {
				return false
			}
		}
		return false
	}

	for i, b := range mc.Blocks {
		if doms[i] >= 0 {
			h.Idom[b.ID] = mc.Blocks[doms[i]].ID
		}
		// Back edges mark loop headers.
		if doms[i] != domUndef {
			for _, s := range succs[i] {
				if dominates(s, i) {
					h.loop[mc.Blocks[s].ID] = true
				}
			}
		}
		// Static-successor classification: only intraprocedural terminator
		// kinds qualify; calls, returns, halts, and throws dispatch
		// dynamically, as does anything under an exception handler. Handler
		// entries are excluded too: they are reached by a dynamic edge, so
		// their BCG nodes must observe real successors before committing.
		switch b.Kind {
		case bytecode.FlowNext, bytecode.FlowGoto, bytecode.FlowCond, bytecode.FlowSwitch:
			if covered[i] || handlerEntry[i] {
				break
			}
			if ss := b.StaticSuccessors(); len(ss) == 1 {
				h.UniqueSucc[b.ID] = ss[0]
			} else if d := f.DecidedSucc(b.ID); d != cfg.NoBlock {
				// The fact table proved the branch one-way: pre-seed it.
				h.UniqueSucc[b.ID] = d
			}
		}
	}
}
