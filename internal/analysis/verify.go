package analysis

import (
	"fmt"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// MaxVerifyStack bounds the abstract operand-stack depth; any path that
// exceeds it is rejected with RuleStackOverflow. The interpreter's frames
// are sized from the link-time MaxStack, so this is a sanity ceiling, not a
// tight bound.
const MaxVerifyStack = 4096

// maxVerifyLocals bounds MaxLocals; slot operands are u16 so nothing above
// this is addressable anyway, and it keeps adversarial (fuzzed) headers from
// forcing huge allocations.
const maxVerifyLocals = 1 << 16

// Verify symbolically executes every bytecode method of the program and
// returns a Report of all findings. It accepts linked and unlinked programs
// alike — symbolic references are resolved by name when the linker has not
// filled them in — so malformed inputs can be analyzed even when linking
// would refuse them. Verification of a method stops at its first rejecting
// finding; unreachable-code warnings are only computed for clean methods.
func Verify(prog *classfile.Program) *Report {
	rep := &Report{}
	res := newResolver(prog)
	for _, c := range prog.Classes {
		for _, m := range c.Methods {
			verifyMethod(rep, res, c, m)
		}
	}
	return rep
}

// resolver resolves symbolic class/method/field names without requiring a
// linked program. Lookup walks the superclass chain by name with a visited
// set, so even cyclic (malformed) hierarchies terminate.
type resolver struct {
	prog   *classfile.Program
	byName map[string]*classfile.Class
}

func newResolver(p *classfile.Program) *resolver {
	r := &resolver{prog: p, byName: make(map[string]*classfile.Class, len(p.Classes))}
	for _, c := range p.Classes {
		if _, dup := r.byName[c.Name]; !dup {
			r.byName[c.Name] = c
		}
	}
	return r
}

func (r *resolver) methodNamed(className, name string) *classfile.Method {
	seen := map[*classfile.Class]bool{}
	for c := r.byName[className]; c != nil && !seen[c]; c = r.byName[c.SuperName] {
		seen[c] = true
		for _, m := range c.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

func (r *resolver) fieldNamed(className, name string) *classfile.Field {
	seen := map[*classfile.Class]bool{}
	for c := r.byName[className]; c != nil && !seen[c]; c = r.byName[c.SuperName] {
		seen[c] = true
		for _, f := range c.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// lslot is the abstract state of one local variable slot.
type lslot struct {
	kind bytecode.ValKind
	init bool
}

// absState is the abstract machine state at one instruction boundary.
type absState struct {
	stack  []bytecode.ValKind
	locals []lslot
}

func (s absState) clone() absState {
	return absState{
		stack:  append([]bytecode.ValKind(nil), s.stack...),
		locals: append([]lslot(nil), s.locals...),
	}
}

// mverify verifies one method.
type mverify struct {
	rep  *Report
	res  *resolver
	name string
	m    *classfile.Method

	ins   []bytecode.Instr
	idxOf map[uint32]int // instruction start pc -> index

	states  []absState
	seen    []bool
	work    []int
	stopped bool
}

func (v *mverify) fail(pc uint32, rule, format string, args ...any) {
	if v.stopped {
		return
	}
	v.rep.Findings = append(v.rep.Findings, Finding{
		Method:  v.name,
		PC:      pc,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
	})
	v.stopped = true
}

func (v *mverify) warn(pc uint32, rule, format string, args ...any) {
	v.rep.Findings = append(v.rep.Findings, Finding{
		Method:  v.name,
		PC:      pc,
		Rule:    rule,
		Message: fmt.Sprintf(format, args...),
		Warn:    true,
	})
}

func typeKind(t classfile.Type) bytecode.ValKind {
	switch t {
	case classfile.TInt:
		return bytecode.KInt
	case classfile.TFloat:
		return bytecode.KFloat
	case classfile.TRef:
		return bytecode.KRef
	}
	return bytecode.KAny
}

func qname(c *classfile.Class, m *classfile.Method) string {
	if m.Class != nil {
		return m.QName()
	}
	return c.Name + "." + m.Name
}

func verifyMethod(rep *Report, res *resolver, c *classfile.Class, m *classfile.Method) {
	v := &mverify{rep: rep, res: res, name: qname(c, m), m: m}
	if m.Abstract || m.Native != "" {
		return // no bytecode to verify; structural rules are the linker's
	}
	if len(m.Code) == 0 {
		v.fail(0, RuleTruncatedCode, "method has no code")
		return
	}
	if m.MaxLocals < 0 || m.MaxLocals > maxVerifyLocals {
		v.fail(0, RuleLocalOutOfRange, "MaxLocals %d out of range", m.MaxLocals)
		return
	}
	if m.MaxLocals < m.NArgs() {
		v.fail(0, RuleLocalOutOfRange, "MaxLocals %d cannot hold %d arguments", m.MaxLocals, m.NArgs())
		return
	}
	// Decode instruction by instruction (not bytecode.Decode, which folds
	// target validation into decoding) so target errors surface under their
	// own rule below.
	var ins []bytecode.Instr
	for pc := uint32(0); int(pc) < len(m.Code); {
		in, err := bytecode.DecodeAt(m.Code, pc)
		if err != nil {
			v.fail(pc, RuleTruncatedCode, "%v", err)
			return
		}
		ins = append(ins, in)
		pc = in.Next()
	}
	if len(ins) == 0 {
		v.fail(0, RuleTruncatedCode, "method decodes to no instructions")
		return
	}
	v.ins = ins
	v.idxOf = make(map[uint32]int, len(ins))
	for i, in := range ins {
		v.idxOf[in.PC] = i
	}

	// The last instruction must not fall through (or need a return site).
	last := ins[len(ins)-1]
	switch bytecode.InfoOf(last.Op).Flow {
	case bytecode.FlowGoto, bytecode.FlowReturn, bytecode.FlowSwitch,
		bytecode.FlowHalt, bytecode.FlowThrow:
	default:
		v.fail(last.PC, RuleFallOffEnd, "control can run past the last instruction (%s)", last.Op)
		return
	}

	// Every branch and switch target must land on an instruction boundary.
	for _, in := range ins {
		for _, t := range in.BranchTargets() {
			if _, ok := v.idxOf[t]; !ok {
				v.fail(in.PC, RuleBadJumpTarget, "%s targets pc %d, which is not an instruction boundary", in.Op, t)
				return
			}
		}
	}

	// Exception table sanity: valid ranges, boundaries on instructions,
	// catch classes in range.
	codeEnd := uint32(len(m.Code))
	for i := range m.Handlers {
		h := &m.Handlers[i]
		if h.StartPC >= h.EndPC || h.EndPC > codeEnd {
			v.fail(h.StartPC, RuleBadJumpTarget, "handler %d has bad range [%d, %d)", i, h.StartPC, h.EndPC)
			return
		}
		if _, ok := v.idxOf[h.StartPC]; !ok {
			v.fail(h.StartPC, RuleBadJumpTarget, "handler %d starts mid-instruction", i)
			return
		}
		if _, ok := v.idxOf[h.HandlerPC]; !ok {
			v.fail(h.HandlerPC, RuleBadJumpTarget, "handler %d targets pc %d, which is not an instruction boundary", i, h.HandlerPC)
			return
		}
		if h.ClassIdx != -1 && (h.ClassIdx < 0 || int(h.ClassIdx) >= len(v.res.prog.Classes)) {
			v.fail(h.StartPC, RuleBadRefIndex, "handler %d catch class %d out of range (%d classes)", i, h.ClassIdx, len(v.res.prog.Classes))
			return
		}
	}

	// Entry state: receiver and parameters initialized, everything else
	// uninitialized.
	entry := absState{locals: make([]lslot, m.MaxLocals)}
	slot := 0
	if !m.Static {
		entry.locals[slot] = lslot{kind: bytecode.KRef, init: true}
		slot++
	}
	for _, p := range m.Params {
		entry.locals[slot] = lslot{kind: typeKind(p), init: true}
		slot++
	}

	v.states = make([]absState, len(ins))
	v.seen = make([]bool, len(ins))
	v.states[0] = entry
	v.seen[0] = true
	v.work = append(v.work, 0)

	for len(v.work) > 0 && !v.stopped {
		i := v.work[len(v.work)-1]
		v.work = v.work[:len(v.work)-1]
		v.step(i)
	}
	if v.stopped {
		return
	}

	// Unreachable-block warnings: any never-visited leader starts a dead
	// block. Leaders match the cfg package's definition.
	leaders := map[uint32]bool{ins[0].PC: true}
	for _, in := range ins {
		for _, t := range in.BranchTargets() {
			leaders[t] = true
		}
		if in.Op.IsTerminator() {
			leaders[in.Next()] = true
		}
	}
	for _, h := range m.Handlers {
		leaders[h.HandlerPC] = true
	}
	for i, in := range ins {
		if !v.seen[i] && leaders[in.PC] {
			v.warn(in.PC, RuleUnreachableBlock, "block at pc %d is unreachable", in.PC)
		}
	}
}

// push grows the abstract stack, enforcing the depth ceiling.
func (v *mverify) push(st *absState, pc uint32, k bytecode.ValKind) {
	if len(st.stack) >= MaxVerifyStack {
		v.fail(pc, RuleStackOverflow, "operand stack exceeds %d values", MaxVerifyStack)
		return
	}
	st.stack = append(st.stack, k)
}

// pop removes the top of the abstract stack and checks its kind. what names
// the operand for diagnostics.
func (v *mverify) pop(st *absState, pc uint32, need bytecode.ValKind, what string) bytecode.ValKind {
	if len(st.stack) == 0 {
		v.fail(pc, RuleStackUnderflow, "%s pops an empty stack", what)
		return bytecode.KAny
	}
	k := st.stack[len(st.stack)-1]
	st.stack = st.stack[:len(st.stack)-1]
	if need != bytecode.KAny && k != need {
		if k == bytecode.KAny {
			v.fail(pc, RuleKindMismatch, "%s requires %s, found a value whose kind conflicts between paths", what, need)
		} else {
			v.fail(pc, RuleKindMismatch, "%s requires %s, found %s", what, need, k)
		}
	}
	return k
}

// readLocal checks an initialized, kind-compatible read of a local slot.
func (v *mverify) readLocal(st *absState, in bytecode.Instr, need bytecode.ValKind) bytecode.ValKind {
	slot := int(uint16(in.A))
	if slot >= len(st.locals) {
		v.fail(in.PC, RuleLocalOutOfRange, "%s slot %d out of range (max %d)", in.Op, slot, len(st.locals))
		return bytecode.KAny
	}
	l := st.locals[slot]
	if !l.init {
		v.fail(in.PC, RuleUninitLocal, "%s reads local %d before any path initializes it", in.Op, slot)
		return bytecode.KAny
	}
	if need != bytecode.KAny && l.kind != need {
		if l.kind == bytecode.KAny {
			v.fail(in.PC, RuleKindMismatch, "%s requires local %d to be %s, but its kind conflicts between paths", in.Op, slot, need)
		} else {
			v.fail(in.PC, RuleKindMismatch, "%s requires local %d to be %s, found %s", in.Op, slot, need, l.kind)
		}
	}
	return l.kind
}

// writeLocal records a kind-defining write to a local slot.
func (v *mverify) writeLocal(st *absState, in bytecode.Instr, k bytecode.ValKind) {
	slot := int(uint16(in.A))
	if slot >= len(st.locals) {
		v.fail(in.PC, RuleLocalOutOfRange, "%s slot %d out of range (max %d)", in.Op, slot, len(st.locals))
		return
	}
	st.locals[slot] = lslot{kind: k, init: true}
}

// flowTo merges the state st into the entry of instruction j, queueing it
// when anything changed.
func (v *mverify) flowTo(j int, st absState) {
	if v.stopped {
		return
	}
	if !v.seen[j] {
		v.states[j] = st.clone()
		v.seen[j] = true
		v.work = append(v.work, j)
		return
	}
	dst := &v.states[j]
	if len(dst.stack) != len(st.stack) {
		v.fail(v.ins[j].PC, RuleStackImbalance,
			"paths join at pc %d with stack depths %d and %d", v.ins[j].PC, len(dst.stack), len(st.stack))
		return
	}
	changed := false
	for i := range dst.stack {
		mk := bytecode.MergeKind(dst.stack[i], st.stack[i])
		if mk != dst.stack[i] {
			dst.stack[i] = mk
			changed = true
		}
	}
	for i := range dst.locals {
		a, b := dst.locals[i], st.locals[i]
		merged := lslot{init: a.init && b.init, kind: bytecode.MergeKind(a.kind, b.kind)}
		if !merged.init {
			merged.kind = bytecode.KAny
		}
		if merged != a {
			dst.locals[i] = merged
			changed = true
		}
	}
	if changed {
		v.work = append(v.work, j)
	}
}

// step interprets instruction i over its merged entry state and propagates
// the result to every successor, including exception-handler entries.
func (v *mverify) step(i int) {
	in := v.ins[i]
	st := v.states[i].clone()

	// Any instruction inside a protected range can transfer to the handler:
	// entry state there is the single thrown reference over current locals.
	for _, h := range v.m.Handlers {
		if h.Covers(in.PC) {
			v.flowTo(v.idxOf[h.HandlerPC], absState{
				stack:  []bytecode.ValKind{bytecode.KRef},
				locals: st.locals,
			})
			if v.stopped {
				return
			}
		}
	}

	switch in.Op {
	case bytecode.ILoad:
		v.readLocal(&st, in, bytecode.KInt)
		v.push(&st, in.PC, bytecode.KInt)
	case bytecode.FLoad:
		v.readLocal(&st, in, bytecode.KFloat)
		v.push(&st, in.PC, bytecode.KFloat)
	case bytecode.ALoad:
		v.readLocal(&st, in, bytecode.KRef)
		v.push(&st, in.PC, bytecode.KRef)
	case bytecode.IStore:
		v.pop(&st, in.PC, bytecode.KInt, "istore")
		v.writeLocal(&st, in, bytecode.KInt)
	case bytecode.FStore:
		v.pop(&st, in.PC, bytecode.KFloat, "fstore")
		v.writeLocal(&st, in, bytecode.KFloat)
	case bytecode.AStore:
		v.pop(&st, in.PC, bytecode.KRef, "astore")
		v.writeLocal(&st, in, bytecode.KRef)
	case bytecode.IInc:
		v.readLocal(&st, in, bytecode.KInt)

	case bytecode.SConst:
		if int(uint16(in.A)) >= len(v.res.prog.Strings) {
			v.fail(in.PC, RuleBadRefIndex, "sconst index %d out of range (%d strings)", uint16(in.A), len(v.res.prog.Strings))
			return
		}
		v.push(&st, in.PC, bytecode.KRef)

	case bytecode.New, bytecode.InstanceOf, bytecode.CheckCast:
		if int(uint16(in.A)) >= len(v.res.prog.Classes) {
			v.fail(in.PC, RuleBadRefIndex, "%s class index %d out of range (%d classes)", in.Op, uint16(in.A), len(v.res.prog.Classes))
			return
		}
		pops, pushes, _ := bytecode.StackKinds(in.Op)
		for _, k := range pops {
			v.pop(&st, in.PC, k, in.Op.String())
		}
		for _, k := range pushes {
			v.push(&st, in.PC, k)
		}

	case bytecode.Dup:
		k := v.pop(&st, in.PC, bytecode.KAny, "dup")
		v.push(&st, in.PC, k)
		v.push(&st, in.PC, k)
	case bytecode.DupX1:
		a := v.pop(&st, in.PC, bytecode.KAny, "dup_x1")
		b := v.pop(&st, in.PC, bytecode.KAny, "dup_x1")
		v.push(&st, in.PC, a)
		v.push(&st, in.PC, b)
		v.push(&st, in.PC, a)
	case bytecode.Swap:
		a := v.pop(&st, in.PC, bytecode.KAny, "swap")
		b := v.pop(&st, in.PC, bytecode.KAny, "swap")
		v.push(&st, in.PC, a)
		v.push(&st, in.PC, b)

	case bytecode.InvokeStatic, bytecode.InvokeVirtual, bytecode.InvokeSpecial:
		v.stepInvoke(&st, in)

	case bytecode.GetField, bytecode.PutField, bytecode.GetStatic, bytecode.PutStatic:
		v.stepField(&st, in)

	case bytecode.ReturnVoid:
		if v.m.Ret != classfile.TVoid {
			v.fail(in.PC, RuleKindMismatch, "return in method returning %s", v.m.Ret)
			return
		}
	case bytecode.IReturn, bytecode.FReturn, bytecode.AReturn:
		want := map[bytecode.Op]classfile.Type{
			bytecode.IReturn: classfile.TInt,
			bytecode.FReturn: classfile.TFloat,
			bytecode.AReturn: classfile.TRef,
		}[in.Op]
		if v.m.Ret != want {
			v.fail(in.PC, RuleKindMismatch, "%s in method returning %s", in.Op, v.m.Ret)
			return
		}
		v.pop(&st, in.PC, typeKind(want), in.Op.String())

	default:
		pops, pushes, ok := bytecode.StackKinds(in.Op)
		if !ok {
			v.fail(in.PC, RuleTruncatedCode, "invalid opcode %d", in.Op)
			return
		}
		for _, k := range pops {
			v.pop(&st, in.PC, k, in.Op.String())
		}
		for _, k := range pushes {
			v.push(&st, in.PC, k)
		}
	}
	if v.stopped {
		return
	}

	// Returns must leave an empty stack (the frame is discarded; leftover
	// values indicate an imbalance the dispatcher would silently drop).
	switch bytecode.InfoOf(in.Op).Flow {
	case bytecode.FlowReturn, bytecode.FlowHalt:
		if len(st.stack) != 0 {
			v.fail(in.PC, RuleStackImbalance, "%s leaves %d values on the stack", in.Op, len(st.stack))
		}
		return
	case bytecode.FlowThrow:
		return
	case bytecode.FlowGoto:
		v.flowTo(v.idxOf[uint32(in.A)], st)
		return
	case bytecode.FlowCond:
		v.flowTo(v.idxOf[uint32(in.A)], st)
		v.flowTo(i+1, st)
		return
	case bytecode.FlowSwitch:
		v.flowTo(v.idxOf[in.Dflt], st)
		for _, t := range in.Targets {
			v.flowTo(v.idxOf[t], st)
		}
		return
	default: // FlowNext, FlowCall: fall through to the next instruction
		v.flowTo(i+1, st)
	}
}

func (v *mverify) stepInvoke(st *absState, in bytecode.Instr) {
	prog := v.res.prog
	idx := int(uint16(in.A))
	if idx >= len(prog.MethodRefs) {
		v.fail(in.PC, RuleBadRefIndex, "%s method ref %d out of range (%d refs)", in.Op, idx, len(prog.MethodRefs))
		return
	}
	ref := &prog.MethodRefs[idx]
	want := map[bytecode.Op]classfile.RefKind{
		bytecode.InvokeStatic:  classfile.RefStatic,
		bytecode.InvokeVirtual: classfile.RefVirtual,
		bytecode.InvokeSpecial: classfile.RefSpecial,
	}[in.Op]
	if ref.Kind != want {
		v.fail(in.PC, RuleBadRefIndex, "%s uses %s method ref %q", in.Op, ref.Kind, ref.Name)
		return
	}
	target := ref.Method
	if target == nil {
		target = v.res.methodNamed(ref.ClassName, ref.Name)
	}
	if target == nil {
		v.fail(in.PC, RuleBadRefIndex, "%s: no method %s.%s", in.Op, ref.ClassName, ref.Name)
		return
	}
	if ref.Kind != classfile.RefStatic && target.Static {
		v.fail(in.PC, RuleBadRefIndex, "%s ref to static method %s.%s", ref.Kind, ref.ClassName, ref.Name)
		return
	}
	if ref.Kind == classfile.RefStatic && !target.Static {
		v.fail(in.PC, RuleBadRefIndex, "static ref to instance method %s.%s", ref.ClassName, ref.Name)
		return
	}
	// Arguments are popped last-parameter first, then the receiver.
	for pi := len(target.Params) - 1; pi >= 0; pi-- {
		v.pop(st, in.PC, typeKind(target.Params[pi]),
			fmt.Sprintf("%s %s.%s argument %d", in.Op, ref.ClassName, ref.Name, pi))
		if v.stopped {
			return
		}
	}
	if ref.Kind != classfile.RefStatic {
		v.pop(st, in.PC, bytecode.KRef, fmt.Sprintf("%s %s.%s receiver", in.Op, ref.ClassName, ref.Name))
	}
	if v.stopped {
		return
	}
	if target.Ret != classfile.TVoid {
		v.push(st, in.PC, typeKind(target.Ret))
	}
}

func (v *mverify) stepField(st *absState, in bytecode.Instr) {
	prog := v.res.prog
	idx := int(uint16(in.A))
	if idx >= len(prog.FieldRefs) {
		v.fail(in.PC, RuleBadRefIndex, "%s field ref %d out of range (%d refs)", in.Op, idx, len(prog.FieldRefs))
		return
	}
	ref := &prog.FieldRefs[idx]
	wantStatic := in.Op == bytecode.GetStatic || in.Op == bytecode.PutStatic
	if ref.Static != wantStatic {
		v.fail(in.PC, RuleBadRefIndex, "%s uses mismatched field ref %q (static=%v)", in.Op, ref.Name, ref.Static)
		return
	}
	f := ref.Field
	if f == nil {
		f = v.res.fieldNamed(ref.ClassName, ref.Name)
	}
	if f == nil {
		v.fail(in.PC, RuleBadRefIndex, "%s: no field %s.%s", in.Op, ref.ClassName, ref.Name)
		return
	}
	fk := typeKind(f.Type)
	what := fmt.Sprintf("%s %s.%s", in.Op, ref.ClassName, ref.Name)
	switch in.Op {
	case bytecode.GetField:
		v.pop(st, in.PC, bytecode.KRef, what+" object")
		if !v.stopped {
			v.push(st, in.PC, fk)
		}
	case bytecode.PutField:
		v.pop(st, in.PC, fk, what+" value")
		if !v.stopped {
			v.pop(st, in.PC, bytecode.KRef, what+" object")
		}
	case bytecode.GetStatic:
		v.push(st, in.PC, fk)
	case bytecode.PutStatic:
		v.pop(st, in.PC, fk, what+" value")
	}
}
