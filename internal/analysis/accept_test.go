package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/cfg"
	"repro/internal/minijava"
	"repro/internal/workload"
)

// TestVerifyAcceptsWorkloads pins the acceptance half of the verifier
// contract: every program the MiniJava compiler emits for the benchmark
// suite passes verification.
func TestVerifyAcceptsWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			prog, _, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			rep := analysis.Verify(prog)
			if rep.Reject() {
				t.Fatalf("workload %s rejected:\n%s", w.Name, rep)
			}
			for _, f := range rep.Warnings() {
				t.Logf("warning: %s", f)
			}
		})
	}
}

// TestVerifyAcceptsExamples verifies the MiniJava programs embedded in the
// example binaries (notably the exceptions example, which exercises the
// handler-entry states).
func TestVerifyAcceptsExamples(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil {
		t.Fatal(err)
	}
	const marker = "const src = `"
	found := 0
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		s := string(data)
		i := strings.Index(s, marker)
		if i < 0 {
			continue
		}
		rest := s[i+len(marker):]
		j := strings.Index(rest, "`")
		if j < 0 {
			t.Fatalf("%s: unterminated source literal", path)
		}
		found++
		prog, err := minijava.Compile(rest[:j])
		if err != nil {
			t.Fatalf("%s: compile: %v", path, err)
		}
		if rep := analysis.Verify(prog); rep.Reject() {
			t.Errorf("%s rejected:\n%s", path, rep)
		}
	}
	if found == 0 {
		t.Fatal("no example sources found")
	}
}

// TestHintsOnWorkloads sanity-checks the dataflow pass on real programs:
// the loopy benchmarks must expose loop headers and statically-unique
// blocks, and every unique successor must be a real static successor of its
// block.
func TestHintsOnWorkloads(t *testing.T) {
	for _, w := range workload.All() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			_, pcfg, err := w.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			h := analysis.ComputeHints(pcfg)
			if h.NumBlocks() != pcfg.NumBlocks() {
				t.Fatalf("hints cover %d blocks, program has %d", h.NumBlocks(), pcfg.NumBlocks())
			}
			if len(h.LoopHeaders()) == 0 {
				t.Errorf("workload %s has no loop headers", w.Name)
			}
			unique := h.UniqueBlocks()
			if len(unique) == 0 {
				t.Errorf("workload %s has no statically-unique blocks", w.Name)
			}
			for _, id := range unique {
				b := pcfg.Block(id)
				succ := h.UniqueSucc[id]
				found := false
				for _, s := range b.StaticSuccessors() {
					if s == succ {
						found = true
					}
				}
				if !found {
					t.Fatalf("block %v: unique successor %d is not a static successor", b, succ)
				}
				if len(b.StaticSuccessors()) != 1 {
					t.Fatalf("block %v classified unique but has %d static successors", b, len(b.StaticSuccessors()))
				}
			}
		})
	}
}

// TestHintsLoopHeaderIsDominating spot-checks the back-edge definition on
// one workload: a loop header must dominate some predecessor that jumps
// back to it.
func TestHintsLoopHeaderIsDominating(t *testing.T) {
	w, err := workload.ByName("scimark")
	if err != nil {
		t.Fatal(err)
	}
	_, pcfg, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	h := analysis.ComputeHints(pcfg)
	for _, hd := range h.LoopHeaders() {
		// Find a predecessor of hd that hd dominates (via the idom chain).
		ok := false
		for _, b := range pcfg.Blocks {
			isPred := false
			for _, s := range b.StaticSuccessors() {
				if s == hd {
					isPred = true
				}
			}
			if !isPred {
				continue
			}
			for x := b.ID; x != cfg.NoBlock; x = h.Idom[x] {
				if x == hd {
					ok = true
					break
				}
			}
			if ok {
				break
			}
		}
		if !ok {
			t.Fatalf("loop header %d has no back-edge predecessor it dominates", hd)
		}
	}
}
