package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// FuzzVerifyNeverPanics feeds arbitrary bytes as method code (with fuzzed
// locals count, return type, and exception table) through the verifier:
// every input must produce a report or pass — never panic, never loop.
func FuzzVerifyNeverPanics(f *testing.F) {
	// Seed with a valid method body so the fuzzer starts from decodable code.
	enc := bytecode.NewEncoder()
	for _, in := range []bytecode.Instr{
		{Op: bytecode.IConst, A: 7},
		{Op: bytecode.IStore, A: 2},
		{Op: bytecode.ILoad, A: 2},
		{Op: bytecode.IfEq, A: 0},
		{Op: bytecode.ReturnVoid},
	} {
		if _, err := enc.Emit(in); err != nil {
			f.Fatal(err)
		}
	}
	f.Add(enc.Bytes(), uint16(4), uint8(0), uint8(0), uint8(0), uint8(0))
	f.Add([]byte{byte(bytecode.ReturnVoid)}, uint16(3), uint8(0), uint8(1), uint8(0), uint8(0))
	f.Add([]byte{0xff, 0x01, 0x02}, uint16(3), uint8(0), uint8(2), uint8(1), uint8(3))

	f.Fuzz(func(t *testing.T, code []byte, locals uint16, hstart, hend, hpc, ret uint8) {
		b := classfile.NewBuilder()
		cb := b.Class("Main")
		cb.Field("f", classfile.TFloat)
		cb.StaticField("g", classfile.TInt)
		b.String("s")
		b.MethodRef("Main", "m", classfile.RefStatic)
		b.FieldRef("Main", "f", false)
		b.FieldRef("Main", "g", true)
		m := cb.Method("m", []classfile.Type{classfile.TInt, classfile.TRef}, classfile.Type(ret%4), true)
		m.MaxLocals = int(locals)
		m.Code = code
		m.Handlers = []classfile.Handler{{
			StartPC:   uint32(hstart),
			EndPC:     uint32(hend),
			HandlerPC: uint32(hpc),
			ClassIdx:  -1,
		}}
		rep := analysis.Verify(b.Program())
		// The report must be internally consistent regardless of input.
		if rep.Reject() && rep.Err() == nil {
			t.Fatal("rejecting report with nil Err")
		}
		if !rep.Reject() && rep.Err() != nil {
			t.Fatal("accepting report with non-nil Err")
		}
	})
}
