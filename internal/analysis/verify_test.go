package analysis_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/jasm"
)

func mustUnlinked(t *testing.T, src string) *analysis.Report {
	t.Helper()
	prog, err := jasm.AssembleUnlinked(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return analysis.Verify(prog)
}

func TestVerifyAcceptsHandlerFlow(t *testing.T) {
	// The handler receives exactly one reference on the stack and the
	// locals as they were inside the protected range.
	rep := mustUnlinked(t, `
.class Err
.end
.class Main
.method static main ( ) void
    .locals 2
    iconst 1
    istore 1
L0: new Err
    throw
L1: astore 0
    iload 1
    pop
    return
    .catch Err from L0 to L1 using L1
.end
.end
`)
	if rep.Reject() {
		t.Fatalf("rejected:\n%s", rep)
	}
}

func TestVerifyUnreachableWarning(t *testing.T) {
	rep := mustUnlinked(t, `
.class Main
.method static main ( ) void
    goto L
    iconst 1
    pop
    return
L:  return
.end
.end
`)
	if rep.Reject() {
		t.Fatalf("unreachable code must only warn, got rejection:\n%s", rep)
	}
	warns := rep.Warnings()
	if len(warns) != 1 {
		t.Fatalf("want 1 warning, got %d:\n%s", len(warns), rep)
	}
	if warns[0].Rule != analysis.RuleUnreachableBlock {
		t.Fatalf("want %s, got %s", analysis.RuleUnreachableBlock, warns[0].Rule)
	}
	if rep.Err() != nil {
		t.Fatalf("warnings must not produce an error: %v", rep.Err())
	}
}

func TestVerifyKindConflictAtJoinRejected(t *testing.T) {
	// The two paths push different kinds; the merged value is unusable by a
	// typed instruction.
	rep := mustUnlinked(t, `
.class Main
.method static main ( ) void
    iconst 0
    ifeq F
    iconst 1
    goto J
F:  fconst 2.0
J:  ineg
    pop
    return
.end
.end
`)
	if !rep.Reject() {
		t.Fatal("kind conflict at join was accepted")
	}
	if got := rep.Errors()[0].Rule; got != analysis.RuleKindMismatch {
		t.Fatalf("want %s, got %s", analysis.RuleKindMismatch, got)
	}
}

func TestVerifyDupX1AndSwapKinds(t *testing.T) {
	// dup_x1 and swap must track kinds positionally: after
	// [ref, int] swap → [int, ref], putfield stores the int into Main.f.
	rep := mustUnlinked(t, `
.class Main
.field f int
.method static main ( ) void
    new Main
    iconst 3
    putfield Main.f
    iconst 4
    new Main
    swap
    putfield Main.f
    return
.end
.end
`)
	if rep.Reject() {
		t.Fatalf("rejected:\n%s", rep)
	}
}

func TestVerifyInvokeArgKinds(t *testing.T) {
	rep := mustUnlinked(t, `
.class Main
.method static f ( int float ) void
    return
.end
.method static main ( ) void
    fconst 1.0
    iconst 2
    invokestatic Main.f
    return
.end
.end
`)
	// Arguments are pushed in order (int then float expected); here they
	// are reversed, so argument checking must reject.
	if !rep.Reject() {
		t.Fatal("mis-kinded call arguments were accepted")
	}
	if got := rep.Errors()[0].Rule; got != analysis.RuleKindMismatch {
		t.Fatalf("want %s, got %s", analysis.RuleKindMismatch, got)
	}
}

func TestVerifyStopsAtFirstErrorPerMethod(t *testing.T) {
	// One method, several problems downstream of the first: only the first
	// is reported.
	rep := mustUnlinked(t, `
.class Main
.method static main ( ) void
    pop
    pop
    iload 9
    return
.end
.end
`)
	if len(rep.Errors()) != 1 {
		t.Fatalf("want exactly 1 error, got %d:\n%s", len(rep.Errors()), rep)
	}
}

func TestVerifyErrorMessage(t *testing.T) {
	rep := mustUnlinked(t, `
.class Main
.method static main ( ) void
    pop
    return
.end
.method static g ( ) void
    pop
    return
.end
.end
`)
	err := rep.Err()
	var verr *analysis.VerifyError
	if !errors.As(err, &verr) {
		t.Fatalf("Err is not a *VerifyError: %v", err)
	}
	msg := verr.Error()
	if !strings.Contains(msg, analysis.RuleStackUnderflow) || !strings.Contains(msg, "and 1 more") {
		t.Fatalf("unexpected message: %s", msg)
	}
}

func TestReportJSONShape(t *testing.T) {
	rep := mustUnlinked(t, `
.class Main
.method static main ( ) void
    pop
    return
.end
.end
`)
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Findings []struct {
			Method  string `json:"method"`
			PC      uint32 `json:"pc"`
			Rule    string `json:"rule"`
			Message string `json:"message"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Findings) != 1 || decoded.Findings[0].Rule != analysis.RuleStackUnderflow {
		t.Fatalf("bad JSON report: %s", data)
	}
	if decoded.Findings[0].Method != "Main.main" {
		t.Fatalf("bad method name: %s", data)
	}
}

func TestVerifyLinkedProgramToo(t *testing.T) {
	// Verification must also work on linked programs (the serve registry
	// path), where symbolic refs are already resolved.
	prog, err := jasm.Assemble(`
.class Main
.method static main ( ) void
    iconst 1
    pop
    return
.end
.end
.entry Main main
`)
	if err != nil {
		t.Fatal(err)
	}
	if rep := analysis.Verify(prog); rep.Reject() {
		t.Fatalf("rejected linked program:\n%s", rep)
	}
}
