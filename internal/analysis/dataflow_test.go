package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/jasm"
	"repro/internal/minijava"
)

func buildCFG(t *testing.T, src string) *cfg.ProgramCFG {
	t.Helper()
	prog, err := jasm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return pcfg
}

func TestHintsLoopHeaderAndUnique(t *testing.T) {
	// main: entry → loop header L (cond) → body (goto L, unique) → exit.
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
    .locals 1
    iconst 0
    istore 0
L:  iload 0
    iconst 10
    if_icmpge E
    iinc 0 1
    goto L
E:  return
.end
.end
.entry Main main
`)
	h := analysis.ComputeHints(pcfg)
	mc := pcfg.Methods[pcfg.Program.Main.ID]

	if len(h.LoopHeaders()) != 1 {
		t.Fatalf("want exactly 1 loop header, got %v", h.LoopHeaders())
	}
	headerID := h.LoopHeaders()[0]
	// The loop header is the conditional block at label L.
	if b := pcfg.Block(headerID); b.Kind != bytecode.FlowCond {
		t.Fatalf("loop header %v has kind %v, want conditional", b, b.Kind)
	}

	// The entry block (iconst/istore, split by leader L) and the goto-L
	// body block both have exactly one static successor.
	entryID := mc.Entry.ID
	if h.UniqueSucc[entryID] != headerID {
		t.Fatalf("entry block unique successor = %d, want %d", h.UniqueSucc[entryID], headerID)
	}
	// The conditional header has two successors: not unique.
	if h.UniqueSucc[headerID] != cfg.NoBlock {
		t.Fatalf("conditional header classified unique")
	}
}

func TestHintsSwitchClassification(t *testing.T) {
	// A switch whose arms all target the same block is still one static
	// successor; a switch with distinct arms is not.
	pcfg := buildCFG(t, `
.class Main
.method static degenerate ( int ) void
    iload 0
    tableswitch 0 S S S
S:  return
.end
.method static spread ( int ) void
    iload 0
    tableswitch 0 A B C
A:  return
B:  return
C:  return
.end
.method static main ( ) void
    return
.end
.end
.entry Main main
`)
	h := analysis.ComputeHints(pcfg)
	prog := pcfg.Program
	var degen, spread *cfg.MethodCFG
	for _, m := range prog.Methods {
		switch m.Name {
		case "degenerate":
			degen = pcfg.Methods[m.ID]
		case "spread":
			spread = pcfg.Methods[m.ID]
		}
	}
	dswitch := degen.Entry
	if got := h.UniqueSucc[dswitch.ID]; got == cfg.NoBlock {
		t.Fatalf("degenerate switch (all arms to one block) not classified unique")
	}
	if got := h.UniqueSucc[spread.Entry.ID]; got != cfg.NoBlock {
		t.Fatalf("spread switch classified unique (successor %d)", got)
	}
}

func TestHintsExceptionCoverageDisqualifies(t *testing.T) {
	// A straight-line block under a catch range must not be classified
	// unique: any instruction in it can transfer to the handler.
	prog, err := minijava.Compile(`
class Oops { int code; }
class Main {
    static void main() {
        int x = 0;
        try {
            x = x + 1;
            if (x > 10) { throw new Oops(); }
        } catch (Oops e) {
            x = 2;
        }
        Sys.printlnInt(x);
    }
}
`)
	if err != nil {
		t.Fatalf("minijava compile failed: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	h := analysis.ComputeHints(pcfg)
	for _, mc := range pcfg.Methods {
		if mc == nil {
			continue
		}
		for _, hd := range mc.Method.Handlers {
			for _, b := range mc.Blocks {
				if hd.Covers(b.StartPC()) && h.UniqueSucc[b.ID] != cfg.NoBlock {
					t.Fatalf("covered block %v classified unique", b)
				}
			}
		}
	}
}

func TestHintsExceptionCoverageDisqualifiesJasm(t *testing.T) {
	pcfg := buildCFG(t, `
.class Err
.end
.class Main
.method static main ( ) void
    .locals 1
    iconst 1
    istore 0
L0: iconst 2
    istore 0
    goto E
L1: astore 0
E:  return
    .catch Err from L0 to L1 using L1
.end
.end
.entry Main main
`)
	h := analysis.ComputeHints(pcfg)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	hd := mc.Method.Handlers[0]
	var covered []*cfg.Block
	for _, b := range mc.Blocks {
		for _, in := range b.Instrs {
			if hd.Covers(in.PC) {
				covered = append(covered, b)
				break
			}
		}
	}
	if len(covered) == 0 {
		t.Fatal("no block inside the protected range")
	}
	for _, b := range covered {
		if h.UniqueSucc[b.ID] != cfg.NoBlock {
			t.Fatalf("handler-covered block %v classified unique", b)
		}
	}
	// The handler entry must be a dominator-tree root: no idom.
	he := mc.HandlerEntries()
	if len(he) != 1 {
		t.Fatalf("want 1 handler entry, got %d", len(he))
	}
	if h.Idom[he[0].ID] != cfg.NoBlock {
		t.Fatalf("handler entry has idom %d, want none", h.Idom[he[0].ID])
	}
}

func TestHintsWithFactsSeedsDecidedBranch(t *testing.T) {
	// Slot 0 is the constant 7, so the ifeq can never fall to DEAD's arm:
	// the value-flow table decides the branch, and the fact-aware hint pass
	// must classify the conditional unique even though it has two static
	// successors. The plain structural pass must not.
	pcfg := buildCFG(t, `
.class Main
.method static main ( ) void
    .locals 1
    iconst 7
    istore 0
    iload 0
    ifeq DEAD
    return
DEAD: return
.end
.end
.entry Main main
`)
	f := valueflow.Compute(pcfg)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	var cond *cfg.Block
	for _, b := range mc.Blocks {
		if b.Kind == bytecode.FlowCond {
			cond = b
		}
	}
	if cond == nil {
		t.Fatal("no conditional block in fixture")
	}
	d := f.DecidedSucc(cond.ID)
	if d == cfg.NoBlock {
		t.Fatal("value-flow did not decide the constant branch")
	}
	if h := analysis.ComputeHints(pcfg); h.UniqueSucc[cond.ID] != cfg.NoBlock {
		t.Fatalf("structural pass classified a two-successor conditional unique (%d)", h.UniqueSucc[cond.ID])
	}
	h := analysis.ComputeHintsWithFacts(pcfg, f)
	if got := h.UniqueSucc[cond.ID]; got != d {
		t.Fatalf("fact-aware pass seeded %d, want decided successor %d", got, d)
	}
}

func TestHintsWithFactsExcludesHandlerEntry(t *testing.T) {
	// The handler entry (L1: astore, falling through to E) has exactly one
	// static successor, but it is reached by a dynamic exception edge, so
	// neither the structural nor the fact-aware pass may seed it.
	pcfg := buildCFG(t, `
.class Err
.end
.class Main
.method static main ( ) void
    .locals 1
    iconst 1
    istore 0
L0: iconst 2
    istore 0
    goto E
L1: astore 0
E:  return
    .catch Err from L0 to L1 using L1
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	he := mc.HandlerEntries()
	if len(he) != 1 {
		t.Fatalf("want 1 handler entry, got %d", len(he))
	}
	if n := len(he[0].StaticSuccessors()); n != 1 {
		t.Fatalf("fixture handler entry has %d static successors, want 1", n)
	}
	f := valueflow.Compute(pcfg)
	for name, h := range map[string]*analysis.Hints{
		"structural": analysis.ComputeHints(pcfg),
		"fact-aware": analysis.ComputeHintsWithFacts(pcfg, f),
	} {
		if got := h.UniqueSucc[he[0].ID]; got != cfg.NoBlock {
			t.Fatalf("%s pass seeded handler entry with successor %d", name, got)
		}
	}
}
