package analysis_test

import (
	"encoding/hex"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/classfile"
	"repro/internal/jasm"
)

// corpusExpect extracts the "expect: <rule>" annotation from a corpus file.
func corpusExpect(t *testing.T, path, src string) string {
	t.Helper()
	for _, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, "expect:"); i >= 0 {
			return strings.TrimSpace(line[i+len("expect:"):])
		}
	}
	t.Fatalf("%s: no 'expect: <rule>' annotation", path)
	return ""
}

// loadHexCorpus builds a one-method program around raw method code given as
// hex bytes. Format: '#' comments, a "locals N" line, then hex byte pairs.
func loadHexCorpus(t *testing.T, path, src string) *classfile.Program {
	t.Helper()
	locals := 0
	var code []byte
	for _, line := range strings.Split(src, "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		if fields[0] == "locals" {
			n, err := strconv.Atoi(fields[1])
			if err != nil {
				t.Fatalf("%s: bad locals line: %v", path, err)
			}
			locals = n
			continue
		}
		for _, f := range fields {
			b, err := hex.DecodeString(f)
			if err != nil {
				t.Fatalf("%s: bad hex %q: %v", path, f, err)
			}
			code = append(code, b...)
		}
	}
	b := classfile.NewBuilder()
	m := b.Class("Main").Method("main", nil, classfile.TVoid, true)
	m.MaxLocals = locals
	m.Code = code
	return b.Program()
}

// TestCorpusRejected pins the rejection half of the verifier contract: every
// committed malformed program is rejected, with the rule its annotation
// names.
func TestCorpusRejected(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "malformed", "*"))
	if err != nil {
		t.Fatal(err)
	}
	var cases []string
	for _, p := range paths {
		switch filepath.Ext(p) {
		case ".jasm", ".hex":
			cases = append(cases, p)
		}
	}
	if len(cases) < 8 {
		t.Fatalf("corpus has %d programs, want >= 8", len(cases))
	}
	for _, path := range cases {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			want := corpusExpect(t, path, src)

			var prog *classfile.Program
			if filepath.Ext(path) == ".hex" {
				prog = loadHexCorpus(t, path, src)
			} else {
				// Unlinked: these programs must be analyzable even though
				// the linker would refuse most of them.
				prog, err = jasm.AssembleUnlinked(src)
				if err != nil {
					t.Fatalf("assemble: %v", err)
				}
			}

			rep := analysis.Verify(prog)
			if !rep.Reject() {
				t.Fatalf("program accepted, want rejection with rule %q\nreport: %s", want, rep)
			}
			found := false
			for _, f := range rep.Errors() {
				if f.Rule == want {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("no finding with rule %q; got:\n%s", want, rep)
			}
			if err := rep.Err(); err == nil {
				t.Fatal("Report.Err returned nil for a rejecting report")
			}
		})
	}
}

// TestCorpusFirstFindingDeterministic re-verifies every corpus program and
// checks the report is stable run to run (the worklist order must not leak
// into the findings).
func TestCorpusFirstFindingDeterministic(t *testing.T) {
	paths, _ := filepath.Glob(filepath.Join("testdata", "malformed", "*.jasm"))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		prog1, err := jasm.AssembleUnlinked(string(data))
		if err != nil {
			t.Fatal(err)
		}
		prog2, err := jasm.AssembleUnlinked(string(data))
		if err != nil {
			t.Fatal(err)
		}
		r1, r2 := analysis.Verify(prog1), analysis.Verify(prog2)
		if r1.String() != r2.String() {
			t.Fatalf("%s: non-deterministic report:\n%s\n--- vs ---\n%s", path, r1, r2)
		}
	}
}
