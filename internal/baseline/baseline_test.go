package baseline_test

import (
	"bytes"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cfg"
	"repro/internal/minijava"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vm"
)

const loopProg = `
class Main {
    static int step(int acc, int i) {
        if (i % 16 == 0) { return acc + 3; }
        return acc + 1;
    }
    static void main() {
        int acc = 0;
        for (int i = 0; i < 50000; i = i + 1) {
            acc = step(acc, i);
        }
        Sys.printlnInt(acc);
    }
}`

func compile(t *testing.T, src string) (*cfg.ProgramCFG, string) {
	t.Helper()
	prog, err := minijava.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	// Reference output under the plain engine.
	var out bytes.Buffer
	m, err := vm.New(prog, pcfg, vm.Options{Out: &out, MaxSteps: 100_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatal(err)
	}
	return pcfg, out.String()
}

func runWith(t *testing.T, pcfg *cfg.ProgramCFG, hook vm.DispatchHook, src trace.Source, ctr *stats.Counters) string {
	t.Helper()
	var out bytes.Buffer
	m, err := vm.New(pcfg.Program, pcfg, vm.Options{
		Out:              &out,
		Hook:             hook,
		Traces:           src,
		HookInsideTraces: true,
		Counters:         ctr,
		MaxSteps:         100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return out.String()
}

func TestDynamoBuildsAndDispatchesTraces(t *testing.T) {
	pcfg, want := compile(t, loopProg)
	ctr := &stats.Counters{}
	d := baseline.NewDynamo(pcfg, baseline.DefaultDynamoConfig(), ctr)
	got := runWith(t, pcfg, d, d, ctr)
	if got != want {
		t.Errorf("dynamo changed output: %q vs %q", got, want)
	}
	if d.NumTraces() == 0 {
		t.Fatal("NET built no traces on a hot loop")
	}
	if ctr.TracesEntered == 0 {
		t.Error("NET traces never dispatched")
	}
	m := ctr.Derive()
	if m.CacheCoverage == 0 {
		t.Error("NET in-cache coverage is zero")
	}
	t.Logf("dynamo: %d traces, coverage %.1f%%, completion %.1f%%",
		d.NumTraces(), m.Coverage*100, m.CompletionRate*100)
}

func TestDynamoTracesEndAtBackEdges(t *testing.T) {
	pcfg, _ := compile(t, loopProg)
	ctr := &stats.Counters{}
	d := baseline.NewDynamo(pcfg, baseline.DefaultDynamoConfig(), ctr)
	runWith(t, pcfg, d, nil, ctr) // observe only, no dispatch
	// Every recorded trace must contain at most one backward intra-method
	// transition (the closing edge of a cycle back to its head).
	checked := 0
	for from := cfg.BlockID(0); int(from) < pcfg.NumBlocks(); from++ {
		tr := d.Lookup(cfg.NoBlock, from)
		if tr == nil {
			continue
		}
		checked++
		back := 0
		for i := 1; i < len(tr.Blocks); i++ {
			a, b := pcfg.Block(tr.Blocks[i-1]), pcfg.Block(tr.Blocks[i])
			if a.Method == b.Method && b.Index <= a.Index {
				back++
			}
		}
		if back > 1 {
			t.Errorf("trace %v crosses %d back edges", tr.Blocks, back)
		}
	}
	if checked == 0 {
		t.Error("no traces to check")
	}
}

func TestReplayPromotionAndFrames(t *testing.T) {
	pcfg, want := compile(t, loopProg)
	ctr := &stats.Counters{}
	r := baseline.NewReplay(pcfg, baseline.DefaultReplayConfig(), ctr)
	got := runWith(t, pcfg, r, r, ctr)
	if got != want {
		t.Errorf("replay changed output: %q vs %q", got, want)
	}
	if r.NumFrames() == 0 {
		t.Fatal("replay built no frames on a hot loop")
	}
	if ctr.TracesEntered == 0 {
		t.Error("frames never dispatched")
	}
	t.Logf("replay: %d frames, completion %.1f%%", r.NumFrames(), ctr.Derive().CompletionRate*100)
}

func TestReplayRetiresFailingFrames(t *testing.T) {
	// A branch that is biased for a while then alternates: the promoted
	// frame starts failing and must be retired by the completion check.
	src := `
class Main {
    static int f(int i, int phase) {
        if (phase == 0) { return i + 1; }
        if (i % 2 == 0) { return i + 2; }
        return i + 3;
    }
    static void main() {
        int acc = 0;
        for (int i = 0; i < 3000; i = i + 1) { acc = acc + f(i, 0); }
        for (int i = 0; i < 60000; i = i + 1) { acc = acc + f(i, 1); }
        Sys.printlnInt(acc);
    }
}`
	pcfg, want := compile(t, src)
	ctr := &stats.Counters{}
	conf := baseline.DefaultReplayConfig()
	r := baseline.NewReplay(pcfg, conf, ctr)
	got := runWith(t, pcfg, r, r, ctr)
	if got != want {
		t.Errorf("output changed: %q vs %q", got, want)
	}
	if ctr.TracesRetired == 0 {
		t.Log("no frames retired; acceptable if none straddled the flip, counters:", ctr)
	}
}

func TestWhaleyPhases(t *testing.T) {
	pcfg, _ := compile(t, loopProg)
	w := baseline.NewWhaley(pcfg, baseline.WhaleyConfig{HotThreshold: 50, OptThreshold: 500})
	ctr := &stats.Counters{}
	runWith(t, pcfg, w, nil, ctr)
	instrumented, optimized := w.HotMethods()
	if optimized == 0 {
		t.Fatalf("no methods optimized (instrumented=%d)", instrumented)
	}
	if w.NotRareBlocks() == 0 {
		t.Error("no not-rare blocks recorded")
	}
	if cov := w.Coverage(); cov < 0.5 {
		t.Errorf("coverage = %.2f, want most of a loop-dominated program", cov)
	}
	t.Logf("whaley: %d optimized methods, %d not-rare blocks, coverage %.1f%%",
		optimized, w.NotRareBlocks(), w.Coverage()*100)
}

func TestConfigDefaultsApplied(t *testing.T) {
	pcfg, _ := compile(t, loopProg)
	d := baseline.NewDynamo(pcfg, baseline.DynamoConfig{}, nil)
	if d == nil {
		t.Fatal("nil dynamo")
	}
	r := baseline.NewReplay(pcfg, baseline.ReplayConfig{}, nil)
	if r == nil {
		t.Fatal("nil replay")
	}
	w := baseline.NewWhaley(pcfg, baseline.WhaleyConfig{})
	if w == nil {
		t.Fatal("nil whaley")
	}
}

func TestDynamoFlushOnRapidCreation(t *testing.T) {
	// Many distinct hot loops in succession force rapid trace creation;
	// with a tight flush configuration the cache must be flushed.
	src := `
class Main {
    static int spin(int which, int n) {
        int acc = 0;
        if (which == 0) { for (int i = 0; i < n; i = i + 1) { acc = acc + 1; } }
        if (which == 1) { for (int i = 0; i < n; i = i + 1) { acc = acc + 2; } }
        if (which == 2) { for (int i = 0; i < n; i = i + 1) { acc = acc + 3; } }
        if (which == 3) { for (int i = 0; i < n; i = i + 1) { acc = acc ^ i; } }
        if (which == 4) { for (int i = 0; i < n; i = i + 1) { acc = acc - i; } }
        return acc;
    }
    static void main() {
        int s = 0;
        for (int round = 0; round < 20; round = round + 1) {
            for (int w = 0; w < 5; w = w + 1) { s = s + spin(w, 500); }
        }
        Sys.printlnInt(s);
    }
}`
	pcfg, want := compile(t, src)
	ctr := &stats.Counters{}
	conf := baseline.DynamoConfig{
		HotThreshold:   20,
		MaxBlocks:      64,
		FlushWindow:    1 << 62, // effectively unbounded window
		FlushCreations: 4,       // flush after a handful of creations
	}
	d := baseline.NewDynamo(pcfg, conf, ctr)
	got := runWith(t, pcfg, d, d, ctr)
	if got != want {
		t.Errorf("output changed: %q vs %q", got, want)
	}
	if d.Flushes() == 0 {
		t.Errorf("no flushes despite rapid creation (built %d, retired %d)",
			ctr.TracesBuilt, ctr.TracesRetired)
	}
	if ctr.TracesRetired == 0 {
		t.Error("flush retired nothing")
	}
}

func TestDynamoExitCountersGrowCoverage(t *testing.T) {
	// A branchy loop body: the first trace records one path; exits from it
	// must seed counters so further traces cover the other paths.
	src := `
class Main {
    static void main() {
        int acc = 0;
        for (int i = 0; i < 60000; i = i + 1) {
            if (i % 3 == 0) { acc = acc + 1; }
            else if (i % 3 == 1) { acc = acc + 2; }
            else { acc = acc ^ i; }
        }
        Sys.printlnInt(acc);
    }
}`
	pcfg, _ := compile(t, src)
	ctr := &stats.Counters{}
	d := baseline.NewDynamo(pcfg, baseline.DefaultDynamoConfig(), ctr)
	runWith(t, pcfg, d, d, ctr)
	if d.NumTraces() < 2 {
		t.Errorf("only %d traces; exit counters should spawn more", d.NumTraces())
	}
	if m := ctr.Derive(); m.CacheCoverage < 0.5 {
		t.Errorf("in-cache coverage %.2f; want the loop mostly covered", m.CacheCoverage)
	}
}
