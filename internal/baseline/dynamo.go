// Package baseline implements the three hot-code selectors the paper
// compares against, adapted to the same block-dispatch engine so their
// trace quality can be measured with identical metrics:
//
//   - Dynamo's NET (next-executing-tail) scheme: counters on loop headers;
//     when a counter crosses the hot threshold, the blocks executed
//     immediately afterwards are recorded as a trace until a backward taken
//     branch or a cycle (Bala, Duesterwald, Banerjia, PLDI 2000).
//   - rePLay's frame construction: per-branch bias detection correlated with
//     a 6-bit path history; a branch seen 32 consecutive times in the same
//     direction under the same history is promoted to an assertion, and
//     frames follow promoted branches only (Patel & Lumetta, IEEE TC 2001).
//   - Whaley's two-phase selector: method entry/backedge counters trigger
//     per-block flagging inside hot methods, and a second threshold freezes
//     the not-rare block set (Whaley, OOPSLA 2001).
//
// Dynamo and rePLay produce dispatchable traces (trace.Source); Whaley
// classifies blocks and reports coverage.
package baseline

import (
	"repro/internal/cfg"
	"repro/internal/stats"
	"repro/internal/trace"
)

// DynamoConfig tunes the NET selector.
type DynamoConfig struct {
	// HotThreshold is the execution count that makes a start-of-trace
	// candidate hot (Dynamo used ~50).
	HotThreshold int
	// MaxBlocks caps recorded trace length.
	MaxBlocks int
	// FlushWindow and FlushCreations implement Dynamo's stability
	// mechanism: if more than FlushCreations traces are created within
	// FlushWindow dispatches, the whole cache is flushed ("detects the
	// rapid creation of new traces and simply flushes the trace cache",
	// paper §3.6). Zero disables flushing.
	FlushWindow    int64
	FlushCreations int
}

// DefaultDynamoConfig mirrors the published defaults.
func DefaultDynamoConfig() DynamoConfig {
	return DynamoConfig{HotThreshold: 50, MaxBlocks: 64, FlushWindow: 50_000, FlushCreations: 16}
}

// Dynamo implements NET trace selection as a dispatch hook plus trace
// source. Traces are keyed by entry block, as Dynamo keys by entry PC.
type Dynamo struct {
	conf DynamoConfig
	cfg  *cfg.ProgramCFG
	ctr  *stats.Counters

	counters map[cfg.BlockID]int
	traces   map[cfg.BlockID]*trace.Trace
	nextID   int

	recording bool
	rec       []cfg.BlockID

	// Exit-point detection: inTrace marks blocks that belong to some live
	// trace, traceEdge the intra-trace (from, to) successions. A dispatch
	// leaving a trace's recorded path is a trace exit, and Dynamo places
	// counters at exit targets as well as at backward-branch targets.
	inTrace   map[cfg.BlockID]bool
	traceEdge map[uint64]bool

	// Flush-mechanism state.
	dispatches      int64
	recentCreations []int64 // dispatch timestamps of recent trace creations
	flushes         int
}

// Flushes reports how many times the cache was flushed wholesale.
func (d *Dynamo) Flushes() int { return d.flushes }

// NewDynamo creates a NET selector over the program's CFGs.
func NewDynamo(pcfg *cfg.ProgramCFG, conf DynamoConfig, ctr *stats.Counters) *Dynamo {
	if conf.HotThreshold <= 0 {
		conf.HotThreshold = DefaultDynamoConfig().HotThreshold
	}
	if conf.MaxBlocks <= 0 {
		conf.MaxBlocks = DefaultDynamoConfig().MaxBlocks
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	return &Dynamo{
		conf:      conf,
		cfg:       pcfg,
		ctr:       ctr,
		counters:  make(map[cfg.BlockID]int),
		traces:    make(map[cfg.BlockID]*trace.Trace),
		inTrace:   make(map[cfg.BlockID]bool),
		traceEdge: make(map[uint64]bool),
	}
}

// Lookup implements trace.Source; Dynamo dispatches whenever control
// reaches a trace head, regardless of the arrival edge.
func (d *Dynamo) Lookup(_, to cfg.BlockID) *trace.Trace { return d.traces[to] }

// NumTraces returns the number of recorded traces.
func (d *Dynamo) NumTraces() int { return len(d.traces) }

// isBackEdge reports a backward intra-method transition, Dynamo's trace
// terminator and hot-point definition.
func (d *Dynamo) isBackEdge(from, to cfg.BlockID) bool {
	bf, bt := d.cfg.Block(from), d.cfg.Block(to)
	if bf == nil || bt == nil {
		return false
	}
	return bf.Method == bt.Method && bt.Index <= bf.Index
}

// OnDispatch implements vm.DispatchHook.
func (d *Dynamo) OnDispatch(from, to cfg.BlockID) {
	d.dispatches++
	if d.recording {
		// Stop conditions: cycle back to the head, an existing trace head,
		// a backward taken branch, or length cap.
		switch {
		case to == d.rec[0], d.traces[to] != nil:
			d.emit()
		case d.isBackEdge(from, to):
			d.emit()
			d.bump(to)
		case len(d.rec) >= d.conf.MaxBlocks:
			d.emit()
		default:
			d.rec = append(d.rec, to)
		}
		return
	}
	// Counters live at potential hot points: backward-branch targets and
	// trace-exit targets (a dispatch leaving a recorded trace path).
	if d.isBackEdge(from, to) {
		d.bump(to)
		return
	}
	if d.inTrace[from] && !d.traceEdge[trace.EdgeKey(from, to)] && !d.inTrace[to] {
		d.bump(to)
	}
}

func (d *Dynamo) bump(to cfg.BlockID) {
	if d.traces[to] != nil {
		return
	}
	d.counters[to]++
	if d.counters[to] >= d.conf.HotThreshold {
		delete(d.counters, to)
		d.recording = true
		d.rec = append(d.rec[:0], to)
	}
}

func (d *Dynamo) emit() {
	d.recording = false
	if len(d.rec) < 2 {
		return
	}
	blocks := make([]cfg.BlockID, len(d.rec))
	copy(blocks, d.rec)
	t := trace.New(d.nextID, blocks, 0)
	d.nextID++
	d.traces[blocks[0]] = t
	d.ctr.TracesBuilt++
	for i, b := range blocks {
		d.inTrace[b] = true
		if i > 0 {
			d.traceEdge[trace.EdgeKey(blocks[i-1], b)] = true
		}
	}
	d.noteCreation()
}

// noteCreation implements the flush heuristic: rapid creation of new traces
// (a phase change invalidating the working set) flushes the whole cache.
func (d *Dynamo) noteCreation() {
	if d.conf.FlushWindow <= 0 || d.conf.FlushCreations <= 0 {
		return
	}
	d.recentCreations = append(d.recentCreations, d.dispatches)
	cutoff := d.dispatches - d.conf.FlushWindow
	keep := d.recentCreations[:0]
	for _, ts := range d.recentCreations {
		if ts >= cutoff {
			keep = append(keep, ts)
		}
	}
	d.recentCreations = keep
	if len(d.recentCreations) > d.conf.FlushCreations {
		for entry, t := range d.traces {
			t.Retired = true
			delete(d.traces, entry)
			d.ctr.TracesRetired++
		}
		d.inTrace = make(map[cfg.BlockID]bool)
		d.traceEdge = make(map[uint64]bool)
		d.recentCreations = d.recentCreations[:0]
		d.flushes++
	}
}
