package baseline

import (
	"repro/internal/cfg"
	"repro/internal/stats"
	"repro/internal/trace"
)

// ReplayConfig tunes the frame constructor.
type ReplayConfig struct {
	// PromoteRun is the consecutive same-direction run length (correlated
	// with the path history) that promotes a branch to an assertion
	// (rePLay used 32).
	PromoteRun int
	// HistoryBits is the path-history depth (rePLay used 6).
	HistoryBits int
	// HotThreshold triggers frame construction at a start point.
	HotThreshold int
	// MaxBlocks caps frame length.
	MaxBlocks int
	// MinCompletion retires frames whose observed completion rate drops
	// below this after a settling period (the software stand-in for
	// rePLay's rollback-pressure heuristics).
	MinCompletion float64
}

// DefaultReplayConfig mirrors the published parameters.
func DefaultReplayConfig() ReplayConfig {
	return ReplayConfig{PromoteRun: 32, HistoryBits: 6, HotThreshold: 50, MaxBlocks: 64, MinCompletion: 0.5}
}

type biasEntry struct {
	succ     cfg.BlockID
	run      int
	promoted bool
}

// Replay implements rePLay-style frame construction in software: per
// (branch, history) bias tracking with promotion, and frames that follow
// only promoted branches.
type Replay struct {
	conf ReplayConfig
	cfg  *cfg.ProgramCFG
	ctr  *stats.Counters

	history  uint32
	histMask uint32
	bias     map[uint64]*biasEntry
	counters map[cfg.BlockID]int
	frames   map[cfg.BlockID]*trace.Trace
	nextID   int
}

// NewReplay creates a frame constructor over the program's CFGs.
func NewReplay(pcfg *cfg.ProgramCFG, conf ReplayConfig, ctr *stats.Counters) *Replay {
	d := DefaultReplayConfig()
	if conf.PromoteRun <= 0 {
		conf.PromoteRun = d.PromoteRun
	}
	if conf.HistoryBits <= 0 || conf.HistoryBits > 16 {
		conf.HistoryBits = d.HistoryBits
	}
	if conf.HotThreshold <= 0 {
		conf.HotThreshold = d.HotThreshold
	}
	if conf.MaxBlocks <= 0 {
		conf.MaxBlocks = d.MaxBlocks
	}
	if conf.MinCompletion <= 0 {
		conf.MinCompletion = d.MinCompletion
	}
	if ctr == nil {
		ctr = &stats.Counters{}
	}
	return &Replay{
		conf:     conf,
		cfg:      pcfg,
		ctr:      ctr,
		histMask: 1<<uint(conf.HistoryBits) - 1,
		bias:     make(map[uint64]*biasEntry),
		counters: make(map[cfg.BlockID]int),
		frames:   make(map[cfg.BlockID]*trace.Trace),
	}
}

// Lookup implements trace.Source, with lazy retirement of frames whose
// assertions fail too often.
func (r *Replay) Lookup(_, to cfg.BlockID) *trace.Trace {
	t := r.frames[to]
	if t == nil {
		return nil
	}
	if t.Entered >= 64 && t.CompletionRate() < r.conf.MinCompletion {
		t.Retired = true
		delete(r.frames, to)
		r.ctr.TracesRetired++
		return nil
	}
	return t
}

// NumFrames returns the number of live frames.
func (r *Replay) NumFrames() int { return len(r.frames) }

func (r *Replay) key(from cfg.BlockID) uint64 {
	return uint64(from)<<16 | uint64(r.history)
}

// OnDispatch implements vm.DispatchHook.
func (r *Replay) OnDispatch(from, to cfg.BlockID) {
	// Bias tracking under the current history.
	k := r.key(from)
	e := r.bias[k]
	if e == nil {
		e = &biasEntry{succ: to, run: 1}
		r.bias[k] = e
	} else if e.succ == to {
		e.run++
		if e.run >= r.conf.PromoteRun {
			e.promoted = true
		}
	} else {
		e.succ = to
		e.run = 1
		e.promoted = false
	}

	// Update the path history with the branch direction.
	bf := r.cfg.Block(from)
	if bf != nil && bf.Taken != cfg.NoBlock && bf.FallThrough != cfg.NoBlock {
		bit := uint32(0)
		if to == bf.Taken {
			bit = 1
		}
		r.history = (r.history<<1 | bit) & r.histMask
	}

	// Hot-point detection at backward-branch targets, as in NET.
	if bf != nil {
		bt := r.cfg.Block(to)
		if bt != nil && bf.Method == bt.Method && bt.Index <= bf.Index && r.frames[to] == nil {
			r.counters[to]++
			if r.counters[to] >= r.conf.HotThreshold {
				delete(r.counters, to)
				r.construct(to)
			}
		}
	}
}

// construct builds a frame from the recorded bias data: starting at the hot
// block, follow promoted branches under the simulated history.
func (r *Replay) construct(start cfg.BlockID) {
	blocks := []cfg.BlockID{start}
	seen := map[cfg.BlockID]bool{start: true}
	hist := r.history
	cur := start
	for len(blocks) < r.conf.MaxBlocks {
		e := r.bias[uint64(cur)<<16|uint64(hist)]
		if e == nil || !e.promoted {
			break
		}
		next := e.succ
		b := r.cfg.Block(cur)
		if b != nil && b.Taken != cfg.NoBlock && b.FallThrough != cfg.NoBlock {
			bit := uint32(0)
			if next == b.Taken {
				bit = 1
			}
			hist = (hist<<1 | bit) & r.histMask
		}
		if seen[next] {
			break
		}
		seen[next] = true
		blocks = append(blocks, next)
		cur = next
	}
	if len(blocks) < 2 {
		return
	}
	t := trace.New(r.nextID, blocks, 0)
	r.nextID++
	r.frames[start] = t
	r.ctr.TracesBuilt++
}
