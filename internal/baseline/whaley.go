package baseline

import (
	"repro/internal/cfg"
)

// WhaleyConfig tunes the two-phase method selector.
type WhaleyConfig struct {
	// HotThreshold triggers phase 1 (baseline compile + instrument blocks).
	HotThreshold int
	// OptThreshold triggers phase 2 (optimize the flagged not-rare blocks).
	OptThreshold int
}

// DefaultWhaleyConfig returns plausible thresholds.
func DefaultWhaleyConfig() WhaleyConfig { return WhaleyConfig{HotThreshold: 100, OptThreshold: 1000} }

type methodPhase uint8

const (
	phaseCold methodPhase = iota
	phaseInstrumented
	phaseOptimized
)

type whaleyMethod struct {
	phase   methodPhase
	counter int
}

// Whaley implements the two-phase hot-method/not-rare-block selector. It is
// an observer only (no trace dispatch): its product is the classification
// of blocks, reported as coverage of the instruction stream.
type Whaley struct {
	conf WhaleyConfig
	cfg  *cfg.ProgramCFG

	methods []whaleyMethod // by method ID
	flagged []bool         // by block ID: executed while instrumented
	opt     []bool         // by block ID: member of an optimized set

	// Coverage accounting.
	TotalInstrs     int64
	OptimizedInstrs int64 // instructions executed in optimized blocks
	FlaggedInstrs   int64 // instructions in flagged blocks of phase>=1 methods
}

// NewWhaley creates the selector over the program's CFGs.
func NewWhaley(pcfg *cfg.ProgramCFG, conf WhaleyConfig) *Whaley {
	d := DefaultWhaleyConfig()
	if conf.HotThreshold <= 0 {
		conf.HotThreshold = d.HotThreshold
	}
	if conf.OptThreshold <= conf.HotThreshold {
		conf.OptThreshold = conf.HotThreshold * 10
	}
	return &Whaley{
		conf:    conf,
		cfg:     pcfg,
		methods: make([]whaleyMethod, len(pcfg.Methods)),
		flagged: make([]bool, pcfg.NumBlocks()),
		opt:     make([]bool, pcfg.NumBlocks()),
	}
}

// OnDispatch implements vm.DispatchHook.
func (w *Whaley) OnDispatch(from, to cfg.BlockID) {
	bt := w.cfg.Block(to)
	if bt == nil {
		return
	}
	w.TotalInstrs += int64(bt.NumInstrs())
	mID := bt.Method.ID
	m := &w.methods[mID]

	// Counters at method entries and backedges.
	bf := w.cfg.Block(from)
	entry := bt.Index == 0 && (bf == nil || bf.Method != bt.Method)
	backedge := bf != nil && bf.Method == bt.Method && bt.Index <= bf.Index
	if entry || backedge {
		m.counter++
		switch {
		case m.phase == phaseCold && m.counter >= w.conf.HotThreshold:
			m.phase = phaseInstrumented
		case m.phase == phaseInstrumented && m.counter >= w.conf.OptThreshold:
			m.phase = phaseOptimized
			w.freeze(mID)
		}
	}

	switch m.phase {
	case phaseInstrumented:
		w.flagged[to] = true
		w.FlaggedInstrs += int64(bt.NumInstrs())
	case phaseOptimized:
		if w.opt[to] {
			w.OptimizedInstrs += int64(bt.NumInstrs())
		} else {
			// A rare block executed after optimization: Whaley's system
			// would recompile; we flag it for the coverage report.
			w.flagged[to] = true
		}
	}
}

// freeze captures the not-rare set of a method when it reaches phase 2.
func (w *Whaley) freeze(methodID int) {
	mc := w.cfg.Methods[methodID]
	if mc == nil {
		return
	}
	for _, b := range mc.Blocks {
		if w.flagged[b.ID] {
			w.opt[b.ID] = true
		}
	}
}

// HotMethods returns how many methods reached each phase.
func (w *Whaley) HotMethods() (instrumented, optimized int) {
	for _, m := range w.methods {
		switch m.phase {
		case phaseInstrumented:
			instrumented++
		case phaseOptimized:
			optimized++
		}
	}
	return
}

// NotRareBlocks returns the number of blocks in optimized sets.
func (w *Whaley) NotRareBlocks() int {
	n := 0
	for _, v := range w.opt {
		if v {
			n++
		}
	}
	return n
}

// Coverage returns the fraction of the observed instruction stream executed
// inside optimized not-rare blocks.
func (w *Whaley) Coverage() float64 {
	if w.TotalInstrs == 0 {
		return 0
	}
	return float64(w.OptimizedInstrs) / float64(w.TotalInstrs)
}
