package bytecode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// maxSwitchTargets bounds the decoded size of a switch so a corrupted count
// cannot force a huge allocation.
const maxSwitchTargets = 1 << 20

// DecodeAt decodes the single instruction at byte offset pc of code.
func DecodeAt(code []byte, pc uint32) (Instr, error) {
	if int(pc) >= len(code) {
		return Instr{}, fmt.Errorf("bytecode: decode: pc %d out of range (code len %d)", pc, len(code))
	}
	op := Op(code[pc])
	if !Valid(op) {
		return Instr{}, fmt.Errorf("bytecode: decode: invalid opcode %d at pc %d", code[pc], pc)
	}
	in := Instr{PC: pc, Op: op}
	rest := code[pc+1:]
	need := func(n int) error {
		if len(rest) < n {
			return fmt.Errorf("bytecode: decode: truncated %s at pc %d", op, pc)
		}
		return nil
	}
	switch InfoOf(op).Operand {
	case KindNone:
	case KindU16:
		if err := need(2); err != nil {
			return Instr{}, err
		}
		in.A = int32(binary.LittleEndian.Uint16(rest))
	case KindI32, KindBranch:
		if err := need(4); err != nil {
			return Instr{}, err
		}
		in.A = int32(binary.LittleEndian.Uint32(rest))
	case KindF64:
		if err := need(8); err != nil {
			return Instr{}, err
		}
		in.F = math.Float64frombits(binary.LittleEndian.Uint64(rest))
	case KindIInc:
		if err := need(4); err != nil {
			return Instr{}, err
		}
		in.A = int32(binary.LittleEndian.Uint16(rest))
		in.B = int32(int16(binary.LittleEndian.Uint16(rest[2:])))
	case KindElem:
		if err := need(1); err != nil {
			return Instr{}, err
		}
		in.A = int32(rest[0])
		if in.A < ElemInt || in.A > ElemByte {
			return Instr{}, fmt.Errorf("bytecode: decode: invalid array element kind %d at pc %d", in.A, pc)
		}
	case KindTableSwitch:
		if err := need(12); err != nil {
			return Instr{}, err
		}
		in.A = int32(binary.LittleEndian.Uint32(rest))
		in.Dflt = binary.LittleEndian.Uint32(rest[4:])
		n := binary.LittleEndian.Uint32(rest[8:])
		if n > maxSwitchTargets {
			return Instr{}, fmt.Errorf("bytecode: decode: tableswitch at pc %d has implausible target count %d", pc, n)
		}
		if err := need(12 + 4*int(n)); err != nil {
			return Instr{}, err
		}
		in.Targets = make([]uint32, n)
		for i := range in.Targets {
			in.Targets[i] = binary.LittleEndian.Uint32(rest[12+4*i:])
		}
	case KindLookupSwitch:
		if err := need(8); err != nil {
			return Instr{}, err
		}
		in.Dflt = binary.LittleEndian.Uint32(rest)
		n := binary.LittleEndian.Uint32(rest[4:])
		if n > maxSwitchTargets {
			return Instr{}, fmt.Errorf("bytecode: decode: lookupswitch at pc %d has implausible pair count %d", pc, n)
		}
		if err := need(8 + 8*int(n)); err != nil {
			return Instr{}, err
		}
		in.Keys = make([]int32, n)
		in.Targets = make([]uint32, n)
		for i := 0; i < int(n); i++ {
			in.Keys[i] = int32(binary.LittleEndian.Uint32(rest[8+8*i:]))
			in.Targets[i] = binary.LittleEndian.Uint32(rest[8+8*i+4:])
		}
	default:
		return Instr{}, fmt.Errorf("bytecode: decode: unhandled operand kind for %s", op)
	}
	return in, nil
}

// Decode decodes an entire code stream into its instruction sequence. It
// validates that instructions tile the stream exactly and that every branch
// target lands on an instruction boundary.
func Decode(code []byte) ([]Instr, error) {
	var ins []Instr
	starts := make(map[uint32]bool)
	pc := uint32(0)
	for int(pc) < len(code) {
		in, err := DecodeAt(code, pc)
		if err != nil {
			return nil, err
		}
		ins = append(ins, in)
		starts[pc] = true
		pc = in.Next()
	}
	if int(pc) != len(code) {
		return nil, fmt.Errorf("bytecode: decode: instructions overrun code stream (pc %d, len %d)", pc, len(code))
	}
	for _, in := range ins {
		for _, t := range in.BranchTargets() {
			if !starts[t] {
				return nil, fmt.Errorf("bytecode: decode: %s at pc %d targets %d, which is not an instruction boundary", in.Op, in.PC, t)
			}
		}
		if InfoOf(in.Op).Flow == FlowCond && !starts[in.Next()] && int(in.Next()) != len(code) {
			return nil, fmt.Errorf("bytecode: decode: conditional at pc %d falls through off the code stream", in.PC)
		}
	}
	return ins, nil
}
