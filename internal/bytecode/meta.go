package bytecode

// OperandKind describes how an opcode's operands are encoded in the
// instruction stream.
type OperandKind uint8

const (
	// KindNone: no operands.
	KindNone OperandKind = iota
	// KindU16: one 2-byte unsigned operand (local slot or table index) in A.
	KindU16
	// KindI32: one 4-byte signed operand in A.
	KindI32
	// KindF64: one 8-byte float operand in F.
	KindF64
	// KindBranch: one 4-byte absolute target PC in A.
	KindBranch
	// KindIInc: 2-byte unsigned slot in A, 2-byte signed delta in B.
	KindIInc
	// KindElem: one 1-byte array element kind in A.
	KindElem
	// KindTableSwitch: i32 low (A), u32 default (Dflt), u32 count, then
	// count u32 targets.
	KindTableSwitch
	// KindLookupSwitch: u32 default (Dflt), u32 count, then count
	// (i32 key, u32 target) pairs.
	KindLookupSwitch
)

// Flow describes an opcode's role in control flow; the CFG builder and the
// dispatch engines use it to delimit basic blocks.
type Flow uint8

const (
	// FlowNext: falls through to the next instruction.
	FlowNext Flow = iota
	// FlowGoto: unconditional intraprocedural jump.
	FlowGoto
	// FlowCond: two-way conditional branch (taken target + fallthrough).
	FlowCond
	// FlowSwitch: multiway branch.
	FlowSwitch
	// FlowCall: method invocation; control enters the callee and resumes at
	// the following instruction. Calls terminate basic blocks because the
	// direct-threaded-inlining model treats invokes as non-inlinable.
	FlowCall
	// FlowReturn: returns to the caller.
	FlowReturn
	// FlowHalt: stops the machine.
	FlowHalt
	// FlowThrow: raises an exception; the successor is the dynamically
	// resolved handler (or program termination), never a static edge.
	FlowThrow
)

// Info is the static metadata for one opcode.
type Info struct {
	Name    string
	Operand OperandKind
	Flow    Flow
	// Pop and Push give the operand-stack effect. Pop == -1 means the
	// effect is variable (calls, which pop their arguments).
	Pop  int8
	Push int8
}

var infos = [NumOps]Info{
	Nop:        {"nop", KindNone, FlowNext, 0, 0},
	IConst:     {"iconst", KindI32, FlowNext, 0, 1},
	FConst:     {"fconst", KindF64, FlowNext, 0, 1},
	SConst:     {"sconst", KindU16, FlowNext, 0, 1},
	AConstNull: {"aconst_null", KindNone, FlowNext, 0, 1},

	ILoad:  {"iload", KindU16, FlowNext, 0, 1},
	IStore: {"istore", KindU16, FlowNext, 1, 0},
	FLoad:  {"fload", KindU16, FlowNext, 0, 1},
	FStore: {"fstore", KindU16, FlowNext, 1, 0},
	ALoad:  {"aload", KindU16, FlowNext, 0, 1},
	AStore: {"astore", KindU16, FlowNext, 1, 0},
	IInc:   {"iinc", KindIInc, FlowNext, 0, 0},

	Pop:   {"pop", KindNone, FlowNext, 1, 0},
	Dup:   {"dup", KindNone, FlowNext, 1, 2},
	DupX1: {"dup_x1", KindNone, FlowNext, 2, 3},
	Swap:  {"swap", KindNone, FlowNext, 2, 2},

	IAdd:  {"iadd", KindNone, FlowNext, 2, 1},
	ISub:  {"isub", KindNone, FlowNext, 2, 1},
	IMul:  {"imul", KindNone, FlowNext, 2, 1},
	IDiv:  {"idiv", KindNone, FlowNext, 2, 1},
	IRem:  {"irem", KindNone, FlowNext, 2, 1},
	INeg:  {"ineg", KindNone, FlowNext, 1, 1},
	IShl:  {"ishl", KindNone, FlowNext, 2, 1},
	IShr:  {"ishr", KindNone, FlowNext, 2, 1},
	IUshr: {"iushr", KindNone, FlowNext, 2, 1},
	IAnd:  {"iand", KindNone, FlowNext, 2, 1},
	IOr:   {"ior", KindNone, FlowNext, 2, 1},
	IXor:  {"ixor", KindNone, FlowNext, 2, 1},

	FAdd: {"fadd", KindNone, FlowNext, 2, 1},
	FSub: {"fsub", KindNone, FlowNext, 2, 1},
	FMul: {"fmul", KindNone, FlowNext, 2, 1},
	FDiv: {"fdiv", KindNone, FlowNext, 2, 1},
	FRem: {"frem", KindNone, FlowNext, 2, 1},
	FNeg: {"fneg", KindNone, FlowNext, 1, 1},

	I2F: {"i2f", KindNone, FlowNext, 1, 1},
	F2I: {"f2i", KindNone, FlowNext, 1, 1},

	FCmpL: {"fcmpl", KindNone, FlowNext, 2, 1},
	FCmpG: {"fcmpg", KindNone, FlowNext, 2, 1},

	Goto:      {"goto", KindBranch, FlowGoto, 0, 0},
	IfEq:      {"ifeq", KindBranch, FlowCond, 1, 0},
	IfNe:      {"ifne", KindBranch, FlowCond, 1, 0},
	IfLt:      {"iflt", KindBranch, FlowCond, 1, 0},
	IfGe:      {"ifge", KindBranch, FlowCond, 1, 0},
	IfGt:      {"ifgt", KindBranch, FlowCond, 1, 0},
	IfLe:      {"ifle", KindBranch, FlowCond, 1, 0},
	IfICmpEq:  {"if_icmpeq", KindBranch, FlowCond, 2, 0},
	IfICmpNe:  {"if_icmpne", KindBranch, FlowCond, 2, 0},
	IfICmpLt:  {"if_icmplt", KindBranch, FlowCond, 2, 0},
	IfICmpGe:  {"if_icmpge", KindBranch, FlowCond, 2, 0},
	IfICmpGt:  {"if_icmpgt", KindBranch, FlowCond, 2, 0},
	IfICmpLe:  {"if_icmple", KindBranch, FlowCond, 2, 0},
	IfACmpEq:  {"if_acmpeq", KindBranch, FlowCond, 2, 0},
	IfACmpNe:  {"if_acmpne", KindBranch, FlowCond, 2, 0},
	IfNull:    {"ifnull", KindBranch, FlowCond, 1, 0},
	IfNonNull: {"ifnonnull", KindBranch, FlowCond, 1, 0},

	TableSwitch:  {"tableswitch", KindTableSwitch, FlowSwitch, 1, 0},
	LookupSwitch: {"lookupswitch", KindLookupSwitch, FlowSwitch, 1, 0},

	InvokeStatic:  {"invokestatic", KindU16, FlowCall, -1, 0},
	InvokeVirtual: {"invokevirtual", KindU16, FlowCall, -1, 0},
	InvokeSpecial: {"invokespecial", KindU16, FlowCall, -1, 0},
	ReturnVoid:    {"return", KindNone, FlowReturn, 0, 0},
	IReturn:       {"ireturn", KindNone, FlowReturn, 1, 0},
	FReturn:       {"freturn", KindNone, FlowReturn, 1, 0},
	AReturn:       {"areturn", KindNone, FlowReturn, 1, 0},

	New:        {"new", KindU16, FlowNext, 0, 1},
	GetField:   {"getfield", KindU16, FlowNext, 1, 1},
	PutField:   {"putfield", KindU16, FlowNext, 2, 0},
	GetStatic:  {"getstatic", KindU16, FlowNext, 0, 1},
	PutStatic:  {"putstatic", KindU16, FlowNext, 1, 0},
	InstanceOf: {"instanceof", KindU16, FlowNext, 1, 1},
	CheckCast:  {"checkcast", KindU16, FlowNext, 1, 1},

	NewArray:    {"newarray", KindElem, FlowNext, 1, 1},
	ArrayLength: {"arraylength", KindNone, FlowNext, 1, 1},
	IALoad:      {"iaload", KindNone, FlowNext, 2, 1},
	IAStore:     {"iastore", KindNone, FlowNext, 3, 0},
	FALoad:      {"faload", KindNone, FlowNext, 2, 1},
	FAStore:     {"fastore", KindNone, FlowNext, 3, 0},
	AALoad:      {"aaload", KindNone, FlowNext, 2, 1},
	AAStore:     {"aastore", KindNone, FlowNext, 3, 0},
	BALoad:      {"baload", KindNone, FlowNext, 2, 1},
	BAStore:     {"bastore", KindNone, FlowNext, 3, 0},

	Halt:  {"halt", KindNone, FlowHalt, 0, 0},
	Throw: {"throw", KindNone, FlowThrow, 1, 0},
}

// InfoOf returns the metadata for op. It returns a zero Info with an empty
// name for out-of-range opcodes.
func InfoOf(op Op) Info {
	if int(op) >= NumOps {
		return Info{}
	}
	return infos[op]
}

// Valid reports whether op is a defined opcode.
func Valid(op Op) bool {
	return int(op) < NumOps && infos[op].Name != ""
}

// String returns the mnemonic for op.
func (op Op) String() string {
	if !Valid(op) {
		return "invalid"
	}
	return infos[op].Name
}

// IsTerminator reports whether op ends a basic block under the
// direct-threaded-inlining model (branches, switches, calls, returns, halt).
func (op Op) IsTerminator() bool {
	switch InfoOf(op).Flow {
	case FlowGoto, FlowCond, FlowSwitch, FlowCall, FlowReturn, FlowHalt, FlowThrow:
		return true
	}
	return false
}

// IsBranch reports whether op is an intraprocedural branch (conditional,
// goto, or switch).
func (op Op) IsBranch() bool {
	switch InfoOf(op).Flow {
	case FlowGoto, FlowCond, FlowSwitch:
		return true
	}
	return false
}

// IsCall reports whether op invokes a method.
func (op Op) IsCall() bool { return InfoOf(op).Flow == FlowCall }

// IsReturn reports whether op returns from a method.
func (op Op) IsReturn() bool { return InfoOf(op).Flow == FlowReturn }

// OpByName resolves a mnemonic to its opcode. The boolean reports success.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op, in := range infos {
		if in.Name != "" {
			m[in.Name] = Op(op)
		}
	}
	return m
}()
