package bytecode

import (
	"bytes"
	"testing"
)

// FuzzDecode feeds arbitrary bytes to the decoder: it must never panic, and
// whatever it accepts must re-encode to the identical stream (the decoder
// and encoder agree on the wire format).
func FuzzDecode(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{byte(ReturnVoid)})
	f.Add(MustEncode([]Instr{
		{Op: IConst, A: 42},
		{Op: IConst, A: 1},
		{Op: IAdd},
		{Op: Pop},
		{Op: ReturnVoid},
	}))
	f.Add(MustEncode([]Instr{
		{Op: TableSwitch, A: 0, Dflt: 13, Targets: []uint32{13}},
		{Op: ReturnVoid},
	}))
	f.Add([]byte{byte(FConst), 1, 2, 3})
	f.Add([]byte{200, 200, 200})

	f.Fuzz(func(t *testing.T, data []byte) {
		ins, err := Decode(data)
		if err != nil {
			return
		}
		re, err := Encode(ins)
		if err != nil {
			t.Fatalf("decoded stream failed to re-encode: %v", err)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not a round trip:\n in: %x\nout: %x", data, re)
		}
	})
}
