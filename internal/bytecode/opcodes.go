// Package bytecode defines the instruction set of the virtual machine: a
// JVM-inspired, stack-based bytecode with typed arithmetic, object and array
// operations, and symbolic call/field references resolved at link time.
//
// The package provides the opcode enumeration, per-opcode metadata (operand
// encoding, stack effect, control-flow role), a binary encoder and decoder,
// and a disassembler. Higher layers (assembler, MiniJava code generator,
// interpreter, CFG builder) all speak in terms of this package's Instr type.
package bytecode

// Op identifies a bytecode operation.
type Op uint8

// The instruction set. Operand layouts are described by the OperandKind in
// each opcode's Info entry; see meta.go.
const (
	// Nop does nothing.
	Nop Op = iota

	// Constants.
	IConst     // push int constant (i32 operand, sign-extended)
	FConst     // push float constant (f64 operand)
	SConst     // push interned string (u16 constant-pool index)
	AConstNull // push null reference

	// Local variable access.
	ILoad  // push int local (u16 slot)
	IStore // pop int into local (u16 slot)
	FLoad  // push float local
	FStore // pop float into local
	ALoad  // push reference local
	AStore // pop reference into local
	IInc   // add i16 immediate to int local (u16 slot, i16 delta)

	// Operand-stack manipulation.
	Pop
	Dup
	DupX1
	Swap

	// Integer arithmetic and bitwise logic (operands are 64-bit ints).
	IAdd
	ISub
	IMul
	IDiv
	IRem
	INeg
	IShl
	IShr
	IUshr
	IAnd
	IOr
	IXor

	// Float arithmetic (64-bit floats).
	FAdd
	FSub
	FMul
	FDiv
	FRem
	FNeg

	// Numeric conversions.
	I2F
	F2I

	// Float comparison: push -1, 0, or 1. FCmpL orders NaN low, FCmpG high.
	FCmpL
	FCmpG

	// Unconditional and conditional branches (u32 absolute target PC).
	// The IfXX forms pop one int and compare against zero; the IfICmpXX
	// forms pop two ints; IfACmp forms pop two references.
	Goto
	IfEq
	IfNe
	IfLt
	IfGe
	IfGt
	IfLe
	IfICmpEq
	IfICmpNe
	IfICmpLt
	IfICmpGe
	IfICmpGt
	IfICmpLe
	IfACmpEq
	IfACmpNe
	IfNull
	IfNonNull

	// Multiway branches.
	TableSwitch  // contiguous key range: low, high, default, targets
	LookupSwitch // sparse keys: default, (key, target) pairs

	// Calls and returns. Call operands are u16 indexes into the program's
	// method-reference table (resolved by the linker).
	InvokeStatic
	InvokeVirtual // receiver-polymorphic, dispatched through the vtable
	InvokeSpecial // direct call: constructors, super calls, private methods
	ReturnVoid
	IReturn
	FReturn
	AReturn

	// Object operations. Field operands are u16 indexes into the program's
	// field-reference table; New takes a u16 class index.
	New
	GetField
	PutField
	GetStatic
	PutStatic
	InstanceOf // u16 class index; pushes 0/1
	CheckCast  // u16 class index; traps on failure

	// Array operations. NewArray takes a one-byte element kind.
	NewArray
	ArrayLength
	IALoad
	IAStore
	FALoad
	FAStore
	AALoad
	AAStore
	BALoad // byte arrays: load sign-extends to int
	BAStore

	// Halt stops the machine; only valid in the synthetic bootstrap method.
	Halt

	// Throw pops a reference and raises it as an exception; control
	// transfers to the innermost matching handler (possibly unwinding
	// frames) or terminates the program with an uncaught-exception trap.
	Throw

	numOps // sentinel; must be last
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Array element kinds used by NewArray and checked by the typed array ops.
const (
	ElemInt   = 0
	ElemFloat = 1
	ElemRef   = 2
	ElemByte  = 3
)

// ElemKindName returns a human-readable name for an array element kind.
func ElemKindName(k int32) string {
	switch k {
	case ElemInt:
		return "int"
	case ElemFloat:
		return "float"
	case ElemRef:
		return "ref"
	case ElemByte:
		return "byte"
	}
	return "invalid"
}
