package bytecode

import (
	"fmt"
	"strings"
)

// Disassemble renders a code stream as one instruction per line, each
// prefixed with its PC. It is tolerant of nothing: a malformed stream
// returns an error rather than partial output.
func Disassemble(code []byte) (string, error) {
	ins, err := Decode(code)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for _, in := range ins {
		fmt.Fprintf(&b, "%6d: %s\n", in.PC, in)
	}
	return b.String(), nil
}

// MustEncode encodes instructions and panics on error. It is intended for
// tests and for statically known-good code such as the bootstrap method.
func MustEncode(ins []Instr) []byte {
	code, err := Encode(ins)
	if err != nil {
		panic(err)
	}
	return code
}
