package bytecode

import (
	"fmt"
	"math"
)

// Instr is one decoded instruction. The operand fields used depend on the
// opcode's OperandKind:
//
//	KindU16, KindI32, KindElem:  A
//	KindF64:                     F
//	KindBranch:                  A (absolute target PC)
//	KindIInc:                    A (slot), B (delta)
//	KindTableSwitch:             A (low key), Dflt, Targets
//	KindLookupSwitch:            Dflt, Keys, Targets (parallel slices)
type Instr struct {
	PC      uint32 // byte offset of this instruction in the method's code
	Op      Op
	A       int32
	B       int32
	F       float64
	Dflt    uint32
	Keys    []int32
	Targets []uint32
}

// Size returns the encoded byte length of the instruction.
func (in Instr) Size() uint32 {
	switch InfoOf(in.Op).Operand {
	case KindNone:
		return 1
	case KindU16:
		return 3
	case KindI32, KindBranch, KindIInc:
		return 5
	case KindF64:
		return 9
	case KindElem:
		return 2
	case KindTableSwitch:
		return 1 + 4 + 4 + 4 + 4*uint32(len(in.Targets))
	case KindLookupSwitch:
		return 1 + 4 + 4 + 8*uint32(len(in.Targets))
	}
	return 1
}

// Next returns the PC of the instruction that follows this one in the
// encoded stream.
func (in Instr) Next() uint32 { return in.PC + in.Size() }

// BranchTargets returns every possible intraprocedural control transfer
// target of the instruction: branch targets, switch targets and the switch
// default. Fallthrough successors are not included.
func (in Instr) BranchTargets() []uint32 {
	switch InfoOf(in.Op).Operand {
	case KindBranch:
		return []uint32{uint32(in.A)}
	case KindTableSwitch, KindLookupSwitch:
		out := make([]uint32, 0, len(in.Targets)+1)
		out = append(out, in.Dflt)
		out = append(out, in.Targets...)
		return out
	}
	return nil
}

// String renders the instruction in assembler syntax.
func (in Instr) String() string {
	info := InfoOf(in.Op)
	switch info.Operand {
	case KindNone:
		return info.Name
	case KindU16:
		return fmt.Sprintf("%s %d", info.Name, uint16(in.A))
	case KindI32:
		return fmt.Sprintf("%s %d", info.Name, in.A)
	case KindF64:
		return fmt.Sprintf("%s %g", info.Name, in.F)
	case KindBranch:
		return fmt.Sprintf("%s @%d", info.Name, uint32(in.A))
	case KindIInc:
		return fmt.Sprintf("%s %d %d", info.Name, uint16(in.A), in.B)
	case KindElem:
		return fmt.Sprintf("%s %s", info.Name, ElemKindName(in.A))
	case KindTableSwitch:
		s := fmt.Sprintf("%s low=%d default=@%d [", info.Name, in.A, in.Dflt)
		for i, t := range in.Targets {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("@%d", t)
		}
		return s + "]"
	case KindLookupSwitch:
		s := fmt.Sprintf("%s default=@%d [", info.Name, in.Dflt)
		for i, t := range in.Targets {
			if i > 0 {
				s += " "
			}
			s += fmt.Sprintf("%d:@%d", in.Keys[i], t)
		}
		return s + "]"
	}
	return info.Name
}

// Equal reports whether two instructions are identical, including operands.
// PC is ignored: two instructions at different offsets can still be equal.
func (in Instr) Equal(o Instr) bool {
	if in.Op != o.Op || in.A != o.A || in.B != o.B || in.Dflt != o.Dflt {
		return false
	}
	if math.Float64bits(in.F) != math.Float64bits(o.F) {
		return false
	}
	if len(in.Keys) != len(o.Keys) || len(in.Targets) != len(o.Targets) {
		return false
	}
	for i := range in.Keys {
		if in.Keys[i] != o.Keys[i] {
			return false
		}
	}
	for i := range in.Targets {
		if in.Targets[i] != o.Targets[i] {
			return false
		}
	}
	return true
}
