package bytecode

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Encoder assembles instructions into a binary code stream. Branch targets
// are absolute byte offsets, so callers that do not know target offsets in
// advance should emit placeholder targets and patch them (the jasm assembler
// and the MiniJava code generator both do this via Fixup).
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// PC returns the byte offset at which the next instruction will be encoded.
func (e *Encoder) PC() uint32 { return uint32(len(e.buf)) }

// Bytes returns the encoded code stream. The returned slice aliases the
// encoder's buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Emit appends one instruction and returns its PC.
func (e *Encoder) Emit(in Instr) (uint32, error) {
	pc := e.PC()
	info := InfoOf(in.Op)
	if !Valid(in.Op) {
		return 0, fmt.Errorf("bytecode: encode: invalid opcode %d", in.Op)
	}
	e.buf = append(e.buf, byte(in.Op))
	switch info.Operand {
	case KindNone:
	case KindU16:
		if in.A < 0 || in.A > math.MaxUint16 {
			return 0, fmt.Errorf("bytecode: encode %s: operand %d out of u16 range", info.Name, in.A)
		}
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(in.A))
	case KindI32:
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(in.A))
	case KindF64:
		e.buf = binary.LittleEndian.AppendUint64(e.buf, math.Float64bits(in.F))
	case KindBranch:
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(in.A))
	case KindIInc:
		if in.A < 0 || in.A > math.MaxUint16 {
			return 0, fmt.Errorf("bytecode: encode iinc: slot %d out of u16 range", in.A)
		}
		if in.B < math.MinInt16 || in.B > math.MaxInt16 {
			return 0, fmt.Errorf("bytecode: encode iinc: delta %d out of i16 range", in.B)
		}
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(in.A))
		e.buf = binary.LittleEndian.AppendUint16(e.buf, uint16(int16(in.B)))
	case KindElem:
		if in.A < ElemInt || in.A > ElemByte {
			return 0, fmt.Errorf("bytecode: encode newarray: invalid element kind %d", in.A)
		}
		e.buf = append(e.buf, byte(in.A))
	case KindTableSwitch:
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(in.A)) // low
		e.buf = binary.LittleEndian.AppendUint32(e.buf, in.Dflt)
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(in.Targets)))
		for _, t := range in.Targets {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, t)
		}
	case KindLookupSwitch:
		if len(in.Keys) != len(in.Targets) {
			return 0, fmt.Errorf("bytecode: encode lookupswitch: %d keys but %d targets", len(in.Keys), len(in.Targets))
		}
		e.buf = binary.LittleEndian.AppendUint32(e.buf, in.Dflt)
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(len(in.Targets)))
		for i := range in.Targets {
			e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(in.Keys[i]))
			e.buf = binary.LittleEndian.AppendUint32(e.buf, in.Targets[i])
		}
	default:
		return 0, fmt.Errorf("bytecode: encode %s: unhandled operand kind", info.Name)
	}
	return pc, nil
}

// Fixup rewrites the branch target of the KindBranch instruction encoded at
// pc. It is the mechanism label-based emitters use for forward references.
func (e *Encoder) Fixup(pc, target uint32) error {
	if int(pc) >= len(e.buf) {
		return fmt.Errorf("bytecode: fixup: pc %d out of range", pc)
	}
	op := Op(e.buf[pc])
	if InfoOf(op).Operand != KindBranch {
		return fmt.Errorf("bytecode: fixup: instruction at pc %d (%s) is not a branch", pc, op)
	}
	if int(pc)+5 > len(e.buf) {
		return fmt.Errorf("bytecode: fixup: truncated branch at pc %d", pc)
	}
	binary.LittleEndian.PutUint32(e.buf[pc+1:], target)
	return nil
}

// FixupSwitchTarget rewrites the i'th target (or the default when i == -1)
// of the switch instruction encoded at pc.
func (e *Encoder) FixupSwitchTarget(pc uint32, i int, target uint32) error {
	if int(pc) >= len(e.buf) {
		return fmt.Errorf("bytecode: fixup switch: pc %d out of range", pc)
	}
	op := Op(e.buf[pc])
	switch InfoOf(op).Operand {
	case KindTableSwitch:
		base := pc + 1 + 4 // skip op + low
		if i == -1 {
			binary.LittleEndian.PutUint32(e.buf[base:], target)
			return nil
		}
		n := binary.LittleEndian.Uint32(e.buf[base+4:])
		if i < 0 || uint32(i) >= n {
			return fmt.Errorf("bytecode: fixup tableswitch: target index %d out of range (n=%d)", i, n)
		}
		binary.LittleEndian.PutUint32(e.buf[base+8+4*uint32(i):], target)
		return nil
	case KindLookupSwitch:
		base := pc + 1
		if i == -1 {
			binary.LittleEndian.PutUint32(e.buf[base:], target)
			return nil
		}
		n := binary.LittleEndian.Uint32(e.buf[base+4:])
		if i < 0 || uint32(i) >= n {
			return fmt.Errorf("bytecode: fixup lookupswitch: target index %d out of range (n=%d)", i, n)
		}
		binary.LittleEndian.PutUint32(e.buf[base+8+8*uint32(i)+4:], target)
		return nil
	}
	return fmt.Errorf("bytecode: fixup switch: instruction at pc %d (%s) is not a switch", pc, op)
}

// Encode encodes a full instruction sequence. Branch targets in the input
// must already be resolved to absolute byte offsets.
func Encode(ins []Instr) ([]byte, error) {
	e := NewEncoder()
	for i, in := range ins {
		if _, err := e.Emit(in); err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
	}
	return e.Bytes(), nil
}
