package bytecode

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpMetadataComplete(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		in := infos[op]
		if in.Name == "" {
			t.Errorf("opcode %d has no metadata", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := 0; op < NumOps; op++ {
		name := Op(op).String()
		got, ok := OpByName(name)
		if !ok {
			t.Errorf("OpByName(%q) failed", name)
			continue
		}
		if got != Op(op) {
			t.Errorf("OpByName(%q) = %v, want %v", name, got, Op(op))
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) succeeded")
	}
	if Valid(Op(255)) {
		t.Error("Valid(255) = true")
	}
	if Op(255).String() != "invalid" {
		t.Errorf("Op(255).String() = %q", Op(255).String())
	}
}

func TestFlowClassification(t *testing.T) {
	cases := []struct {
		op                      Op
		term, branch, call, ret bool
	}{
		{IAdd, false, false, false, false},
		{Goto, true, true, false, false},
		{IfEq, true, true, false, false},
		{TableSwitch, true, true, false, false},
		{LookupSwitch, true, true, false, false},
		{InvokeVirtual, true, false, true, false},
		{InvokeStatic, true, false, true, false},
		{IReturn, true, false, false, true},
		{ReturnVoid, true, false, false, true},
		{Halt, true, false, false, false},
		{ILoad, false, false, false, false},
	}
	for _, c := range cases {
		if got := c.op.IsTerminator(); got != c.term {
			t.Errorf("%s.IsTerminator() = %v, want %v", c.op, got, c.term)
		}
		if got := c.op.IsBranch(); got != c.branch {
			t.Errorf("%s.IsBranch() = %v, want %v", c.op, got, c.branch)
		}
		if got := c.op.IsCall(); got != c.call {
			t.Errorf("%s.IsCall() = %v, want %v", c.op, got, c.call)
		}
		if got := c.op.IsReturn(); got != c.ret {
			t.Errorf("%s.IsReturn() = %v, want %v", c.op, got, c.ret)
		}
	}
}

func TestEncodeDecodeSimpleSequence(t *testing.T) {
	ins := []Instr{
		{Op: IConst, A: 42},
		{Op: IConst, A: -7},
		{Op: IAdd},
		{Op: FConst, F: 3.25},
		{Op: ILoad, A: 3},
		{Op: IInc, A: 2, B: -1},
		{Op: NewArray, A: ElemByte},
		{Op: ReturnVoid},
	}
	code, err := Encode(ins)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := Decode(code)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(got) != len(ins) {
		t.Fatalf("decoded %d instructions, want %d", len(got), len(ins))
	}
	for i := range ins {
		if !got[i].Equal(ins[i]) {
			t.Errorf("instruction %d: got %v, want %v", i, got[i], ins[i])
		}
	}
}

func TestEncodeDecodeSwitches(t *testing.T) {
	// Build: tableswitch + lookupswitch + targets, with valid boundaries.
	e := NewEncoder()
	// pc 0: tableswitch low=5, default=X, targets=[X, X, X] (patched later)
	tsPC, err := e.Emit(Instr{Op: TableSwitch, A: 5, Targets: make([]uint32, 3)})
	if err != nil {
		t.Fatal(err)
	}
	// lookupswitch default=Y keys 10:-, -3:-
	lsPC, err := e.Emit(Instr{Op: LookupSwitch, Keys: []int32{10, -3}, Targets: make([]uint32, 2)})
	if err != nil {
		t.Fatal(err)
	}
	endPC, err := e.Emit(Instr{Op: ReturnVoid})
	if err != nil {
		t.Fatal(err)
	}
	// Patch all targets to the return.
	if err := e.FixupSwitchTarget(tsPC, -1, uint32(lsPC)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := e.FixupSwitchTarget(tsPC, i, endPC); err != nil {
			t.Fatal(err)
		}
	}
	if err := e.FixupSwitchTarget(lsPC, -1, endPC); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := e.FixupSwitchTarget(lsPC, i, endPC); err != nil {
			t.Fatal(err)
		}
	}

	ins, err := Decode(e.Bytes())
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	ts := ins[0]
	if ts.A != 5 || ts.Dflt != uint32(lsPC) || len(ts.Targets) != 3 {
		t.Errorf("tableswitch decoded wrong: %+v", ts)
	}
	ls := ins[1]
	if ls.Dflt != endPC || len(ls.Keys) != 2 || ls.Keys[0] != 10 || ls.Keys[1] != -3 {
		t.Errorf("lookupswitch decoded wrong: %+v", ls)
	}
	for _, tgt := range append(ts.Targets, ls.Targets...) {
		if tgt != endPC {
			t.Errorf("switch target %d, want %d", tgt, endPC)
		}
	}
}

func TestFixupBranch(t *testing.T) {
	e := NewEncoder()
	pc, err := e.Emit(Instr{Op: Goto, A: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Emit(Instr{Op: ReturnVoid}); err != nil {
		t.Fatal(err)
	}
	if err := e.Fixup(pc, 5); err != nil {
		t.Fatal(err)
	}
	ins, err := Decode(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if uint32(ins[0].A) != 5 {
		t.Errorf("patched target = %d, want 5", ins[0].A)
	}
	// Fixing up a non-branch must fail.
	if err := e.Fixup(5, 0); err == nil {
		t.Error("fixup of return succeeded")
	}
	if err := e.Fixup(9999, 0); err == nil {
		t.Error("fixup out of range succeeded")
	}
}

func TestEncodeErrors(t *testing.T) {
	cases := []Instr{
		{Op: Op(200)},                        // invalid opcode
		{Op: ILoad, A: 1 << 17},              // u16 overflow
		{Op: IInc, A: 1, B: 1 << 20},         // i16 overflow
		{Op: NewArray, A: 9},                 // bad elem kind
		{Op: LookupSwitch, Keys: []int32{1}}, // key/target mismatch
	}
	for _, in := range cases {
		if _, err := NewEncoder().Emit(in); err == nil {
			t.Errorf("encoding %v succeeded, want error", in)
		}
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := map[string][]byte{
		"invalid opcode":   {200},
		"truncated iconst": {byte(IConst), 1, 2},
		"truncated fconst": {byte(FConst), 1, 2, 3},
		"bad elem kind":    {byte(NewArray), 9},
		"branch into middle of instruction": MustEncode([]Instr{
			{Op: Goto, A: 2}, // pc 2 is inside the goto itself
			{Op: ReturnVoid},
		}),
	}
	for name, code := range cases {
		if _, err := Decode(code); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestDecodeHugeSwitchRejected(t *testing.T) {
	e := NewEncoder()
	if _, err := e.Emit(Instr{Op: ReturnVoid}); err != nil {
		t.Fatal(err)
	}
	// Hand-craft a tableswitch with an absurd count.
	code := []byte{byte(TableSwitch),
		0, 0, 0, 0, // low
		0, 0, 0, 0, // default
		0xff, 0xff, 0xff, 0x7f, // count
	}
	if _, err := Decode(code); err == nil {
		t.Error("huge tableswitch decoded")
	}
	lcode := []byte{byte(LookupSwitch),
		0, 0, 0, 0, // default
		0xff, 0xff, 0xff, 0x7f, // pair count
	}
	if _, err := Decode(lcode); err == nil {
		t.Error("huge lookupswitch decoded")
	}
}

func TestDisassembleListing(t *testing.T) {
	// Layout: iconst at pc 0 (5 bytes), ifeq at 5 (5), goto at 10 (5),
	// return at 15.
	code := MustEncode([]Instr{
		{Op: IConst, A: 10},
		{Op: IfEq, A: 15},
		{Op: Goto, A: 0},
		{Op: ReturnVoid},
	})
	s, err := Disassemble(code)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"iconst 10", "ifeq @15", "goto @0", "return"} {
		if !strings.Contains(s, want) {
			t.Errorf("disassembly missing %q:\n%s", want, s)
		}
	}
	if _, err := Disassemble([]byte{200}); err == nil {
		t.Error("disassembling garbage succeeded")
	}
}

// randomInstr generates a random valid non-control-flow instruction.
func randomInstr(r *rand.Rand) Instr {
	simple := []Op{
		Nop, IAdd, ISub, IMul, INeg, FAdd, FNeg, Pop, Dup, Swap, DupX1,
		I2F, F2I, FCmpL, FCmpG, ArrayLength, IALoad, BAStore, AConstNull,
	}
	switch r.Intn(6) {
	case 0:
		return Instr{Op: simple[r.Intn(len(simple))]}
	case 1:
		return Instr{Op: IConst, A: int32(r.Uint32())}
	case 2:
		return Instr{Op: FConst, F: math.Float64frombits(r.Uint64())}
	case 3:
		return Instr{Op: ILoad, A: int32(r.Intn(1 << 16))}
	case 4:
		return Instr{Op: IInc, A: int32(r.Intn(1 << 16)), B: int32(r.Intn(1<<16)) - 1<<15}
	default:
		return Instr{Op: NewArray, A: int32(r.Intn(4))}
	}
}

// TestPropertyEncodeDecodeRoundTrip: any randomly generated straight-line
// instruction sequence round-trips through encode/decode exactly.
func TestPropertyEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%48) + 1
		ins := make([]Instr, 0, count+1)
		for i := 0; i < count; i++ {
			ins = append(ins, randomInstr(r))
		}
		ins = append(ins, Instr{Op: ReturnVoid})
		code, err := Encode(ins)
		if err != nil {
			return false
		}
		got, err := Decode(code)
		if err != nil {
			return false
		}
		if len(got) != len(ins) {
			return false
		}
		pc := uint32(0)
		for i := range ins {
			if !got[i].Equal(ins[i]) {
				return false
			}
			if got[i].PC != pc {
				return false
			}
			pc = got[i].Next()
		}
		return int(pc) == len(code)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestPropertySizeMatchesEncoding: Instr.Size always equals the encoded
// length.
func TestPropertySizeMatchesEncoding(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		in := randomInstr(r)
		code, err := Encode([]Instr{in})
		if err != nil {
			return false
		}
		return in.Size() == uint32(len(code))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestInstrEqualIgnoresPC(t *testing.T) {
	a := Instr{PC: 0, Op: IConst, A: 5}
	b := Instr{PC: 100, Op: IConst, A: 5}
	if !a.Equal(b) {
		t.Error("Equal should ignore PC")
	}
	c := Instr{Op: IConst, A: 6}
	if a.Equal(c) {
		t.Error("Equal missed operand difference")
	}
	nan1 := Instr{Op: FConst, F: math.NaN()}
	nan2 := Instr{Op: FConst, F: math.NaN()}
	if !nan1.Equal(nan2) {
		t.Error("NaN constants with the same bits should be equal")
	}
}

func TestBranchTargets(t *testing.T) {
	g := Instr{Op: Goto, A: 42}
	if tg := g.BranchTargets(); len(tg) != 1 || tg[0] != 42 {
		t.Errorf("goto targets = %v", tg)
	}
	ts := Instr{Op: TableSwitch, A: 0, Dflt: 9, Targets: []uint32{1, 2}}
	if tg := ts.BranchTargets(); len(tg) != 3 || tg[0] != 9 {
		t.Errorf("tableswitch targets = %v", tg)
	}
	add := Instr{Op: IAdd}
	if tg := add.BranchTargets(); tg != nil {
		t.Errorf("iadd targets = %v", tg)
	}
}
