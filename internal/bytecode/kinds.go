package bytecode

// ValKind classifies an operand-stack value or local slot for the static
// verifier: the machine's three value kinds plus KAny, which doubles as the
// lattice top (a merge of conflicting kinds) and as the "any kind accepted"
// wildcard in stack-effect requirements.
type ValKind uint8

const (
	KAny ValKind = iota
	KInt
	KFloat
	KRef
)

// String returns a human-readable name for the kind.
func (k ValKind) String() string {
	switch k {
	case KInt:
		return "int"
	case KFloat:
		return "float"
	case KRef:
		return "ref"
	}
	return "any"
}

// MergeKind joins two kinds in the verifier lattice: equal kinds survive,
// conflicting kinds collapse to KAny (top), which no typed instruction
// accepts.
func MergeKind(a, b ValKind) ValKind {
	if a == b {
		return a
	}
	return KAny
}

// ElemValKind maps an array element kind (ElemInt..ElemByte) to the kind of
// value the typed array ops load and store. Byte arrays traffic in ints.
func ElemValKind(elem int32) (ValKind, bool) {
	switch elem {
	case ElemInt, ElemByte:
		return KInt, true
	case ElemFloat:
		return KFloat, true
	case ElemRef:
		return KRef, true
	}
	return KAny, false
}

// stackKinds is the typed stack effect of every opcode whose effect is
// static. Pops lists the popped kinds top-of-stack first; Pushes lists the
// pushed kinds bottom first. Opcodes with operand-dependent effects (calls,
// field access, the dup family) have ok == false and are interpreted
// specially by the verifier.
var stackKinds = [NumOps]struct {
	pops   []ValKind
	pushes []ValKind
	ok     bool
}{
	Nop:        {nil, nil, true},
	IConst:     {nil, []ValKind{KInt}, true},
	FConst:     {nil, []ValKind{KFloat}, true},
	SConst:     {nil, []ValKind{KRef}, true},
	AConstNull: {nil, []ValKind{KRef}, true},

	ILoad:  {nil, []ValKind{KInt}, true},
	IStore: {[]ValKind{KInt}, nil, true},
	FLoad:  {nil, []ValKind{KFloat}, true},
	FStore: {[]ValKind{KFloat}, nil, true},
	ALoad:  {nil, []ValKind{KRef}, true},
	AStore: {[]ValKind{KRef}, nil, true},
	IInc:   {nil, nil, true},

	Pop: {[]ValKind{KAny}, nil, true},
	// Dup, DupX1 and Swap replicate or permute whatever is on the stack;
	// the verifier models them directly.
	Dup:   {nil, nil, false},
	DupX1: {nil, nil, false},
	Swap:  {nil, nil, false},

	IAdd:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	ISub:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IMul:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IDiv:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IRem:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	INeg:  {[]ValKind{KInt}, []ValKind{KInt}, true},
	IShl:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IShr:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IUshr: {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IAnd:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IOr:   {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},
	IXor:  {[]ValKind{KInt, KInt}, []ValKind{KInt}, true},

	FAdd: {[]ValKind{KFloat, KFloat}, []ValKind{KFloat}, true},
	FSub: {[]ValKind{KFloat, KFloat}, []ValKind{KFloat}, true},
	FMul: {[]ValKind{KFloat, KFloat}, []ValKind{KFloat}, true},
	FDiv: {[]ValKind{KFloat, KFloat}, []ValKind{KFloat}, true},
	FRem: {[]ValKind{KFloat, KFloat}, []ValKind{KFloat}, true},
	FNeg: {[]ValKind{KFloat}, []ValKind{KFloat}, true},

	I2F: {[]ValKind{KInt}, []ValKind{KFloat}, true},
	F2I: {[]ValKind{KFloat}, []ValKind{KInt}, true},

	FCmpL: {[]ValKind{KFloat, KFloat}, []ValKind{KInt}, true},
	FCmpG: {[]ValKind{KFloat, KFloat}, []ValKind{KInt}, true},

	Goto:      {nil, nil, true},
	IfEq:      {[]ValKind{KInt}, nil, true},
	IfNe:      {[]ValKind{KInt}, nil, true},
	IfLt:      {[]ValKind{KInt}, nil, true},
	IfGe:      {[]ValKind{KInt}, nil, true},
	IfGt:      {[]ValKind{KInt}, nil, true},
	IfLe:      {[]ValKind{KInt}, nil, true},
	IfICmpEq:  {[]ValKind{KInt, KInt}, nil, true},
	IfICmpNe:  {[]ValKind{KInt, KInt}, nil, true},
	IfICmpLt:  {[]ValKind{KInt, KInt}, nil, true},
	IfICmpGe:  {[]ValKind{KInt, KInt}, nil, true},
	IfICmpGt:  {[]ValKind{KInt, KInt}, nil, true},
	IfICmpLe:  {[]ValKind{KInt, KInt}, nil, true},
	IfACmpEq:  {[]ValKind{KRef, KRef}, nil, true},
	IfACmpNe:  {[]ValKind{KRef, KRef}, nil, true},
	IfNull:    {[]ValKind{KRef}, nil, true},
	IfNonNull: {[]ValKind{KRef}, nil, true},

	TableSwitch:  {[]ValKind{KInt}, nil, true},
	LookupSwitch: {[]ValKind{KInt}, nil, true},

	// Calls pop their arguments (arity and kinds come from the method ref)
	// and push the return value; the verifier resolves the reference.
	InvokeStatic:  {nil, nil, false},
	InvokeVirtual: {nil, nil, false},
	InvokeSpecial: {nil, nil, false},
	ReturnVoid:    {nil, nil, true},
	IReturn:       {[]ValKind{KInt}, nil, true},
	FReturn:       {[]ValKind{KFloat}, nil, true},
	AReturn:       {[]ValKind{KRef}, nil, true},

	New: {nil, []ValKind{KRef}, true},
	// Field access pushes or pops the referenced field's kind; the verifier
	// resolves the reference.
	GetField:   {nil, nil, false},
	PutField:   {nil, nil, false},
	GetStatic:  {nil, nil, false},
	PutStatic:  {nil, nil, false},
	InstanceOf: {[]ValKind{KRef}, []ValKind{KInt}, true},
	CheckCast:  {[]ValKind{KRef}, []ValKind{KRef}, true},

	NewArray:    {[]ValKind{KInt}, []ValKind{KRef}, true},
	ArrayLength: {[]ValKind{KRef}, []ValKind{KInt}, true},
	IALoad:      {[]ValKind{KInt, KRef}, []ValKind{KInt}, true},
	IAStore:     {[]ValKind{KInt, KInt, KRef}, nil, true},
	FALoad:      {[]ValKind{KInt, KRef}, []ValKind{KFloat}, true},
	FAStore:     {[]ValKind{KFloat, KInt, KRef}, nil, true},
	AALoad:      {[]ValKind{KInt, KRef}, []ValKind{KRef}, true},
	AAStore:     {[]ValKind{KRef, KInt, KRef}, nil, true},
	BALoad:      {[]ValKind{KInt, KRef}, []ValKind{KInt}, true},
	BAStore:     {[]ValKind{KInt, KInt, KRef}, nil, true},

	Halt:  {nil, nil, true},
	Throw: {[]ValKind{KRef}, nil, true},
}

// StackKinds returns the typed stack effect of an opcode: the kinds it pops
// (top-of-stack first) and pushes (bottom first). ok is false for opcodes
// whose effect depends on operands — the dup family, calls, and field access
// — which a verifier must model specially. Out-of-range opcodes return
// (nil, nil, false).
func StackKinds(op Op) (pops, pushes []ValKind, ok bool) {
	if int(op) >= NumOps {
		return nil, nil, false
	}
	e := stackKinds[op]
	return e.pops, e.pushes, e.ok
}
