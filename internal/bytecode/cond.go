package bytecode

// CondArity returns the number of operand-stack values a conditional branch
// pops: 2 for the compare families (IfICmp*, IfACmp*), 1 for the zero and
// null tests. Non-conditional opcodes return 0.
func CondArity(op Op) int {
	switch op {
	case IfICmpEq, IfICmpNe, IfICmpLt, IfICmpGe, IfICmpGt, IfICmpLe,
		IfACmpEq, IfACmpNe:
		return 2
	case IfEq, IfNe, IfLt, IfGe, IfGt, IfLe, IfNull, IfNonNull:
		return 1
	}
	return 0
}
