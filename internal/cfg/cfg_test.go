package cfg_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/bytecode"
	"repro/internal/cfg"
	"repro/internal/jasm"
	"repro/internal/minijava"
)

func build(t *testing.T, jasmSrc string) *cfg.ProgramCFG {
	t.Helper()
	prog, err := jasm.Assemble(jasmSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	pcfg, err := cfg.BuildProgram(prog)
	if err != nil {
		t.Fatalf("cfg: %v", err)
	}
	return pcfg
}

const loopSrc = `
.class Main
.method static main ( ) void
.locals 1
    iconst 0
    istore 0
loop:
    iload 0
    iconst 10
    if_icmpge done
    iinc 0 1
    goto loop
done:
    return
.end
.end
.entry Main main
`

func TestBlockDiscoveryLoop(t *testing.T) {
	pcfg := build(t, loopSrc)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	if mc == nil {
		t.Fatal("no CFG for main")
	}
	// Expected blocks: [entry: iconst/istore], [loop header: loads + cond],
	// [body: iinc/goto], [done: return].
	if len(mc.Blocks) != 4 {
		t.Fatalf("block count = %d, want 4:\n%s", len(mc.Blocks), mc.Dump())
	}
	entry, header, body, done := mc.Blocks[0], mc.Blocks[1], mc.Blocks[2], mc.Blocks[3]
	if mc.Entry != entry {
		t.Error("entry is not the first block")
	}
	if entry.Kind != bytecode.FlowNext || entry.FallThrough != header.ID {
		t.Errorf("entry block: kind %v fallthrough %d", entry.Kind, entry.FallThrough)
	}
	if header.Kind != bytecode.FlowCond || header.Taken != done.ID || header.FallThrough != body.ID {
		t.Errorf("header block: %v taken=%d ft=%d", header.Kind, header.Taken, header.FallThrough)
	}
	if body.Kind != bytecode.FlowGoto || body.Taken != header.ID {
		t.Errorf("body block: %v taken=%d", body.Kind, body.Taken)
	}
	if done.Kind != bytecode.FlowReturn || len(done.StaticSuccessors()) != 0 {
		t.Errorf("done block: %v succ=%v", done.Kind, done.StaticSuccessors())
	}
}

func TestCallsTerminateBlocks(t *testing.T) {
	pcfg := build(t, `
.class Main
.method static f ( ) void
    return
.end
.method static main ( ) void
    invokestatic Main.f
    invokestatic Main.f
    return
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	if len(mc.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3 (each call ends a block):\n%s", len(mc.Blocks), mc.Dump())
	}
	b0 := mc.Blocks[0]
	if b0.Kind != bytecode.FlowCall {
		t.Errorf("first block kind = %v, want call", b0.Kind)
	}
	if b0.FallThrough != mc.Blocks[1].ID {
		t.Error("call return site not recorded as fallthrough")
	}
}

func TestSwitchSuccessors(t *testing.T) {
	pcfg := build(t, `
.class Main
.method static main ( ) void
.locals 1
    iload 0
    tableswitch 0 dflt a b
a:
    return
b:
    return
dflt:
    return
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	sw := mc.Blocks[0]
	if sw.Kind != bytecode.FlowSwitch {
		t.Fatalf("kind = %v", sw.Kind)
	}
	if len(sw.SwitchTargets) != 2 {
		t.Fatalf("targets = %d", len(sw.SwitchTargets))
	}
	if sw.SwitchDefault == cfg.NoBlock {
		t.Fatal("no default target")
	}
	succ := sw.StaticSuccessors()
	if len(succ) != 3 {
		t.Errorf("successors = %v, want 3 distinct", succ)
	}
}

func TestGlobalBlockIDsAreDense(t *testing.T) {
	pcfg := build(t, loopSrc)
	for i, b := range pcfg.Blocks {
		if int(b.ID) != i {
			t.Errorf("block %d has ID %d", i, b.ID)
		}
		if pcfg.Block(b.ID) != b {
			t.Errorf("Block(%d) did not return the same block", b.ID)
		}
	}
	if pcfg.Block(cfg.BlockID(len(pcfg.Blocks))) != nil {
		t.Error("out-of-range lookup returned a block")
	}
	if pcfg.Block(cfg.NoBlock) != nil {
		t.Error("NoBlock lookup returned a block")
	}
}

func TestUnlinkedProgramRejected(t *testing.T) {
	prog, err := jasm.AssembleUnlinked(loopSrc)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.BuildProgram(prog); err == nil {
		t.Error("BuildProgram accepted an unlinked program")
	}
}

func TestNativeMethodsHaveNoCFG(t *testing.T) {
	pcfg := build(t, `
.class Main
.native static p ( int ) void println_int
.method static main ( ) void
    iconst 1
    invokestatic Main.p
    return
.end
.end
.entry Main main
`)
	for _, m := range pcfg.Program.Methods {
		if m.Native != "" {
			if pcfg.Methods[m.ID] != nil {
				t.Errorf("native method %s has a CFG", m.QName())
			}
			if pcfg.MethodEntry(m) != nil {
				t.Errorf("native method %s has an entry block", m.QName())
			}
		}
	}
}

// mjPrograms are MiniJava sources used for the structural property test.
var mjPrograms = []string{
	`class Main { static void main() { int x = 0; for (int i = 0; i < 10; i = i + 1) { x = x + i; } Sys.printlnInt(x); } }`,
	`class Main {
        static int f(int n) { if (n < 2) { return n; } return f(n-1) + f(n-2); }
        static void main() { Sys.printlnInt(f(12)); }
    }`,
	`class A { int v() { return 1; } }
     class B extends A { int v() { return 2; } }
     class Main { static void main() {
        A[] xs = new A[4];
        for (int i = 0; i < 4; i = i + 1) { if (i % 2 == 0) { xs[i] = new A(); } else { xs[i] = new B(); } }
        int s = 0;
        for (int i = 0; i < 4; i = i + 1) { s = s + xs[i].v(); }
        Sys.printlnInt(s);
     } }`,
}

// TestPropertyBlocksPartitionMethods: for each compiled method, the blocks
// tile the instruction sequence exactly, every non-final instruction of a
// block is a non-terminator, and every static successor edge lands on a
// block leader in the same method.
func TestPropertyBlocksPartitionMethods(t *testing.T) {
	for i, src := range mjPrograms {
		prog, err := minijava.Compile(src)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		pcfg, err := cfg.BuildProgram(prog)
		if err != nil {
			t.Fatalf("program %d: %v", i, err)
		}
		for _, mc := range pcfg.Methods {
			if mc == nil {
				continue
			}
			ins, err := bytecode.Decode(mc.Method.Code)
			if err != nil {
				t.Fatal(err)
			}
			var rebuilt []bytecode.Instr
			for _, b := range mc.Blocks {
				for j, in := range b.Instrs {
					rebuilt = append(rebuilt, in)
					if j < len(b.Instrs)-1 && in.Op.IsTerminator() {
						t.Errorf("%s: terminator %s mid-block", b, in.Op)
					}
				}
				for _, s := range b.StaticSuccessors() {
					sb := pcfg.Block(s)
					if sb == nil {
						t.Errorf("%s: successor %d not found", b, s)
						continue
					}
					if sb.Method != mc.Method {
						t.Errorf("%s: static successor in another method", b)
					}
					if mc.BlockAtPC(sb.StartPC()) != sb {
						t.Errorf("%s: successor %v is not a leader", b, sb)
					}
				}
			}
			if len(rebuilt) != len(ins) {
				t.Errorf("%s: blocks contain %d instrs, method has %d", mc.Method.QName(), len(rebuilt), len(ins))
				continue
			}
			for j := range ins {
				if !rebuilt[j].Equal(ins[j]) || rebuilt[j].PC != ins[j].PC {
					t.Errorf("%s: instruction %d differs in block partition", mc.Method.QName(), j)
				}
			}
		}
	}
}

// TestPropertyEveryBlockReachableOrDead: quick structural check that entry
// block index is 0 and block indexes are consistent.
func TestPropertyBlockIndexes(t *testing.T) {
	f := func(n uint8) bool {
		// Generate a chain of if/else statements; depth bounded.
		depth := int(n%6) + 1
		var sb strings.Builder
		sb.WriteString("class Main { static void main() { int x = 0;\n")
		for i := 0; i < depth; i++ {
			sb.WriteString("if (x % 2 == 0) { x = x + 1; } else { x = x + 2; }\n")
		}
		sb.WriteString("Sys.printlnInt(x); } }")
		prog, err := minijava.Compile(sb.String())
		if err != nil {
			return false
		}
		pcfg, err := cfg.BuildProgram(prog)
		if err != nil {
			return false
		}
		for _, mc := range pcfg.Methods {
			if mc == nil {
				continue
			}
			if mc.Entry.Index != 0 {
				return false
			}
			for i, b := range mc.Blocks {
				if b.Index != i {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDumpRendersBlocks(t *testing.T) {
	pcfg := build(t, loopSrc)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	dump := mc.Dump()
	if !strings.Contains(dump, "block 0") || !strings.Contains(dump, "goto") {
		t.Errorf("dump missing content:\n%s", dump)
	}
}

func TestHandlerBlocksAreLeaders(t *testing.T) {
	pcfg := build(t, `
.class Boom
.end
.class Main
.method static main ( ) void
a:
    new Boom throw
b:
handler:
    pop
    return
.catch * from a to b using handler
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	// The throw block has no static successors; the handler starts a block.
	var throwBlock, handlerBlock *cfg.Block
	for _, b := range mc.Blocks {
		if b.Kind == bytecode.FlowThrow {
			throwBlock = b
		}
	}
	if throwBlock == nil {
		t.Fatal("no throw block found")
	}
	if len(throwBlock.StaticSuccessors()) != 0 {
		t.Errorf("throw block has static successors: %v", throwBlock.StaticSuccessors())
	}
	h := pcfg.Program.Main.Handlers[0]
	handlerBlock = mc.BlockAtPC(h.HandlerPC)
	if handlerBlock == nil {
		t.Fatal("handler pc is not a block leader")
	}
}

func TestSwitchSuccessorsDeduplicated(t *testing.T) {
	// A switch whose default and every arm share one target must report a
	// single deduplicated static successor; partially shared arms dedup to
	// the distinct set.
	pcfg := build(t, `
.class Main
.method static degenerate ( int ) void
    iload 0
    tableswitch 0 s s s s
s:
    return
.end
.method static shared ( int ) void
    iload 0
    lookupswitch d 1:a 2:a 3:b
a:
    return
b:
    return
d:
    return
.end
.method static main ( ) void
    return
.end
.end
.entry Main main
`)
	var degen, shared *cfg.MethodCFG
	for _, m := range pcfg.Program.Methods {
		switch m.Name {
		case "degenerate":
			degen = pcfg.Methods[m.ID]
		case "shared":
			shared = pcfg.Methods[m.ID]
		}
	}
	dsw := degen.Entry
	if dsw.Kind != bytecode.FlowSwitch {
		t.Fatalf("degenerate entry kind = %v", dsw.Kind)
	}
	if len(dsw.SwitchTargets) != 3 {
		t.Fatalf("degenerate switch targets = %d, want 3", len(dsw.SwitchTargets))
	}
	if succ := dsw.StaticSuccessors(); len(succ) != 1 {
		t.Errorf("degenerate successors = %v, want 1 after dedup", succ)
	}
	ssw := shared.Entry
	if ssw.Kind != bytecode.FlowSwitch {
		t.Fatalf("shared entry kind = %v", ssw.Kind)
	}
	if succ := ssw.StaticSuccessors(); len(succ) != 3 {
		t.Errorf("shared successors = %v, want 3 distinct (a, b, d)", succ)
	}
}

func TestStaticSuccessorsExcludeHandlerEdges(t *testing.T) {
	// Exception edges are dynamic: a protected block never lists its
	// handler among StaticSuccessors, even though the handler entry is
	// reachable at runtime; HandlerEntries exposes it instead.
	pcfg := build(t, `
.class Boom
.end
.class Main
.method static main ( ) void
    .locals 1
a:
    iconst 1
    istore 0
    goto done
b:
handler:
    astore 0
done:
    return
.catch Boom from a to b using handler
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	h := pcfg.Program.Main.Handlers[0]
	handlerBlock := mc.BlockAtPC(h.HandlerPC)
	if handlerBlock == nil {
		t.Fatal("handler pc is not a block leader")
	}
	for _, b := range mc.Blocks {
		if b == handlerBlock {
			continue
		}
		covered := false
		for _, in := range b.Instrs {
			if h.Covers(in.PC) {
				covered = true
			}
		}
		if !covered {
			continue
		}
		for _, s := range b.StaticSuccessors() {
			if s == handlerBlock.ID {
				t.Errorf("block %v lists handler %v as a static successor", b, handlerBlock)
			}
		}
	}
	entries := mc.HandlerEntries()
	if len(entries) != 1 || entries[0] != handlerBlock {
		t.Fatalf("HandlerEntries = %v, want [%v]", entries, handlerBlock)
	}
}

func TestHandlerEntriesDeduplicated(t *testing.T) {
	// Two table entries sharing one handler block yield a single entry.
	pcfg := build(t, `
.class Boom
.end
.class Main
.method static main ( ) void
    .locals 1
a:
    iconst 1
    istore 0
b:
    iconst 2
    istore 0
    goto done
c:
handler:
    astore 0
done:
    return
.catch Boom from a to b using handler
.catch * from b to c using handler
.end
.end
.entry Main main
`)
	mc := pcfg.Methods[pcfg.Program.Main.ID]
	if got := mc.HandlerEntries(); len(got) != 1 {
		t.Fatalf("HandlerEntries = %v, want exactly 1 deduplicated entry", got)
	}
}
