// Package cfg discovers the basic blocks of every method in a linked
// program and assigns each block a dense, program-wide BlockID.
//
// Blocks follow the direct-threaded-inlining model of the paper: a block is
// a maximal straight-line instruction sequence ending at a branch, switch,
// method invocation, return, halt, or immediately before a branch target.
// Invocations end blocks because they are non-inlinable dispatch points —
// the interpreter performs one dispatch per block edge, and the profiler
// hook is attached to that dispatch, so BlockIDs are the vocabulary of the
// entire profiling and trace machinery.
package cfg

import (
	"fmt"
	"sort"

	"repro/internal/bytecode"
	"repro/internal/classfile"
)

// BlockID densely identifies a basic block across the whole program.
type BlockID uint32

// NoBlock is the sentinel for "no successor" / "unknown".
const NoBlock BlockID = ^BlockID(0)

// Block is one basic block.
type Block struct {
	ID     BlockID
	Method *classfile.Method
	Index  int // position within the method's block list
	Instrs []bytecode.Instr

	// Terminator classification (the flow of the last instruction, or
	// FlowNext for blocks split by a following leader).
	Kind bytecode.Flow

	// Static intraprocedural successors. FallThrough is the not-taken
	// successor of a conditional, the lexical successor of a split block,
	// or the return site of a call. Taken is the target of a goto or
	// conditional. Switch blocks use SwitchDefault and SwitchTargets.
	FallThrough   BlockID
	Taken         BlockID
	SwitchDefault BlockID
	SwitchTargets []BlockID
}

// StartPC returns the byte offset of the block's first instruction.
func (b *Block) StartPC() uint32 { return b.Instrs[0].PC }

// Terminator returns the block's final instruction.
func (b *Block) Terminator() bytecode.Instr { return b.Instrs[len(b.Instrs)-1] }

// NumInstrs returns the number of bytecode instructions in the block.
func (b *Block) NumInstrs() int { return len(b.Instrs) }

// StaticSuccessors returns every statically known successor BlockID
// (interprocedural edges — into callees and back to callers — are dynamic
// and not included).
func (b *Block) StaticSuccessors() []BlockID {
	var out []BlockID
	add := func(id BlockID) {
		if id == NoBlock {
			return
		}
		for _, x := range out {
			if x == id {
				return
			}
		}
		out = append(out, id)
	}
	add(b.Taken)
	add(b.FallThrough)
	add(b.SwitchDefault)
	for _, t := range b.SwitchTargets {
		add(t)
	}
	return out
}

// String identifies the block for diagnostics, e.g. "Main.run#3".
func (b *Block) String() string {
	return fmt.Sprintf("%s#%d", b.Method.QName(), b.Index)
}

// MethodCFG is the control-flow graph of one method.
type MethodCFG struct {
	Method *classfile.Method
	Blocks []*Block
	Entry  *Block

	byPC map[uint32]*Block
}

// BlockAtPC returns the block starting at the given byte offset, or nil.
func (m *MethodCFG) BlockAtPC(pc uint32) *Block { return m.byPC[pc] }

// HandlerEntries returns the blocks that begin the method's exception
// handlers, deduplicated, in exception-table order. These are the targets of
// the method's dynamic (throw) edges.
func (m *MethodCFG) HandlerEntries() []*Block {
	var out []*Block
	for _, h := range m.Method.Handlers {
		b := m.byPC[h.HandlerPC]
		if b == nil {
			continue
		}
		dup := false
		for _, x := range out {
			if x == b {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, b)
		}
	}
	return out
}

// ProgramCFG holds the CFGs of every method plus the global block table.
type ProgramCFG struct {
	Program *classfile.Program
	Methods []*MethodCFG // indexed by Method.ID; nil for native/abstract
	Blocks  []*Block     // indexed by BlockID
}

// Block returns the block with the given global ID, or nil if out of range.
func (p *ProgramCFG) Block(id BlockID) *Block {
	if int(id) >= len(p.Blocks) {
		return nil
	}
	return p.Blocks[id]
}

// MethodEntry returns the entry block of a method, or nil for methods
// without bytecode (native, abstract).
func (p *ProgramCFG) MethodEntry(m *classfile.Method) *Block {
	if m.ID >= len(p.Methods) || p.Methods[m.ID] == nil {
		return nil
	}
	return p.Methods[m.ID].Entry
}

// NumBlocks returns the total number of basic blocks in the program.
func (p *ProgramCFG) NumBlocks() int { return len(p.Blocks) }

// BuildProgram builds CFGs for every bytecode method of a linked program.
func BuildProgram(prog *classfile.Program) (*ProgramCFG, error) {
	if !prog.Linked() {
		return nil, fmt.Errorf("cfg: program is not linked")
	}
	pcfg := &ProgramCFG{
		Program: prog,
		Methods: make([]*MethodCFG, len(prog.Methods)),
	}
	for _, m := range prog.Methods {
		if len(m.Code) == 0 {
			continue // native or abstract
		}
		mc, err := buildMethod(m, BlockID(len(pcfg.Blocks)))
		if err != nil {
			return nil, err
		}
		pcfg.Methods[m.ID] = mc
		for _, b := range mc.Blocks {
			pcfg.Blocks = append(pcfg.Blocks, b)
		}
	}
	return pcfg, nil
}

func buildMethod(m *classfile.Method, firstID BlockID) (*MethodCFG, error) {
	ins, err := bytecode.Decode(m.Code)
	if err != nil {
		return nil, fmt.Errorf("cfg: method %s: %w", m.QName(), err)
	}

	// Find leaders: the entry, every branch/switch target, every exception
	// handler, and every instruction following a terminator.
	leaders := map[uint32]bool{0: true}
	for _, in := range ins {
		for _, t := range in.BranchTargets() {
			leaders[t] = true
		}
		if in.Op.IsTerminator() {
			leaders[in.Next()] = true
		}
	}
	for _, h := range m.Handlers {
		leaders[h.HandlerPC] = true
	}

	// Partition instructions into blocks.
	var mc = &MethodCFG{Method: m, byPC: make(map[uint32]*Block)}
	var cur *Block
	for _, in := range ins {
		if leaders[in.PC] || cur == nil {
			cur = &Block{
				ID:            firstID + BlockID(len(mc.Blocks)),
				Method:        m,
				Index:         len(mc.Blocks),
				FallThrough:   NoBlock,
				Taken:         NoBlock,
				SwitchDefault: NoBlock,
			}
			mc.Blocks = append(mc.Blocks, cur)
			mc.byPC[in.PC] = cur
		}
		cur.Instrs = append(cur.Instrs, in)
	}
	if len(mc.Blocks) == 0 {
		return nil, fmt.Errorf("cfg: method %s has no instructions", m.QName())
	}
	mc.Entry = mc.Blocks[0]

	// Resolve successors.
	for i, b := range mc.Blocks {
		term := b.Terminator()
		b.Kind = bytecode.InfoOf(term.Op).Flow
		next := func(pc uint32) (BlockID, error) {
			t := mc.byPC[pc]
			if t == nil {
				return NoBlock, fmt.Errorf("cfg: method %s: no block at pc %d", m.QName(), pc)
			}
			return t.ID, nil
		}
		switch b.Kind {
		case bytecode.FlowNext:
			// Block split by a following leader: fallthrough successor.
			if i+1 >= len(mc.Blocks) {
				return nil, fmt.Errorf("cfg: method %s: block %d falls off the method", m.QName(), i)
			}
			b.FallThrough = mc.Blocks[i+1].ID
		case bytecode.FlowGoto:
			id, err := next(uint32(term.A))
			if err != nil {
				return nil, err
			}
			b.Taken = id
		case bytecode.FlowCond:
			id, err := next(uint32(term.A))
			if err != nil {
				return nil, err
			}
			b.Taken = id
			ft, err := next(term.Next())
			if err != nil {
				return nil, err
			}
			b.FallThrough = ft
		case bytecode.FlowSwitch:
			id, err := next(term.Dflt)
			if err != nil {
				return nil, err
			}
			b.SwitchDefault = id
			b.SwitchTargets = make([]BlockID, len(term.Targets))
			for j, t := range term.Targets {
				tid, err := next(t)
				if err != nil {
					return nil, err
				}
				b.SwitchTargets[j] = tid
			}
		case bytecode.FlowCall:
			// The return site: the block after the call, if any code
			// follows (a call in tail position before a return still has
			// a following block because calls are terminators).
			ft, err := next(term.Next())
			if err != nil {
				return nil, fmt.Errorf("cfg: method %s: call at pc %d has no return site: %w", m.QName(), term.PC, err)
			}
			b.FallThrough = ft
		case bytecode.FlowReturn, bytecode.FlowHalt, bytecode.FlowThrow:
			// No static intraprocedural successors (throw successors are
			// resolved dynamically against the exception tables).
		}
	}
	return mc, nil
}

// Dump renders a method CFG for debugging.
func (m *MethodCFG) Dump() string {
	var s string
	for _, b := range m.Blocks {
		s += fmt.Sprintf("block %d (global %d) pc=%d kind=%v", b.Index, b.ID, b.StartPC(), b.Kind)
		succ := b.StaticSuccessors()
		if len(succ) > 0 {
			s += " ->"
			ids := make([]int, len(succ))
			for i, x := range succ {
				ids[i] = int(x)
			}
			sort.Ints(ids)
			for _, x := range ids {
				s += fmt.Sprintf(" %d", x)
			}
		}
		s += "\n"
		for _, in := range b.Instrs {
			s += fmt.Sprintf("    %6d: %s\n", in.PC, in)
		}
	}
	return s
}
