// Package api defines the versioned wire contract of the tracevmd HTTP
// daemon: the request/response structs, their schema-version constants, and
// the conversions to and from the serve layer. The daemon and every client
// (the load generator, tests, external tooling) share these types, so the
// wire shape is pinned in exactly one place.
//
// Versioning: every route lives under /v1/ and every response carries a
// "schema" string (e.g. "tracevm/run/v1"). The unversioned routes the
// daemon served before the API was versioned remain as aliases of their
// /v1/ twins and return byte-identical bodies.
package api

import (
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/stats"
)

// Schema version constants, one per response shape. Bump the suffix only on
// an incompatible change; additive fields keep the version.
const (
	SchemaRun    = "tracevm/run/v1"
	SchemaStats  = "tracevm/stats/v1"
	SchemaTraces = "tracevm/traces/v1"
	SchemaEvents = "tracevm/events/v1"
	SchemaHealth = "tracevm/health/v1"
	SchemaReady  = "tracevm/ready/v1"
	SchemaError  = "tracevm/error/v1"
	// SchemaSnapshotInfo tags the JSON summary of a profile snapshot
	// (PUT /v1/snapshot); the snapshot binary itself carries its own format
	// tag, snapshot.Schema ("tracevm/snapshot/v1").
	SchemaSnapshotInfo = "tracevm/snapshot-info/v1"
)

// RunRequest is the wire form of one execution order (POST /v1/run).
type RunRequest struct {
	Workload  string  `json:"workload,omitempty"`
	Source    string  `json:"source,omitempty"`
	Kind      string  `json:"kind,omitempty"` // "minijava" (default) or "jasm"
	Mode      string  `json:"mode,omitempty"` // default "trace"
	Threshold float64 `json:"threshold,omitempty"`
	Delay     int32   `json:"delay,omitempty"`
	Decay     uint32  `json:"decay,omitempty"`
	MaxSteps  int64   `json:"maxSteps,omitempty"`
	TimeoutMs int64   `json:"timeoutMs,omitempty"`
}

// ToServe validates the wire request and converts it to a serve.Request.
func (r RunRequest) ToServe() (serve.Request, error) {
	mode, err := ParseMode(r.Mode)
	if err != nil {
		return serve.Request{}, err
	}
	var kind serve.SourceKind
	switch r.Kind {
	case "", "minijava":
		kind = serve.KindMiniJava
	case "jasm":
		kind = serve.KindJasm
	default:
		return serve.Request{}, fmt.Errorf("unknown source kind %q (minijava, jasm)", r.Kind)
	}
	return serve.Request{
		Workload:      r.Workload,
		Source:        r.Source,
		Kind:          kind,
		Mode:          mode,
		Threshold:     r.Threshold,
		StartDelay:    r.Delay,
		DecayInterval: r.Decay,
		MaxSteps:      r.MaxSteps,
		Timeout:       time.Duration(r.TimeoutMs) * time.Millisecond,
	}, nil
}

// RunResponse is the wire form of one completed run.
type RunResponse struct {
	Schema    string         `json:"schema"`
	Program   string         `json:"program"`
	Key       string         `json:"key"`
	Mode      string         `json:"mode"`
	Output    string         `json:"output"`
	Counters  stats.Counters `json:"counters"`
	Metrics   stats.Metrics  `json:"metrics"`
	NumTraces int            `json:"numTraces"`
	BCGNodes  int            `json:"bcgNodes"`
	Cached    int            `json:"cachedBlocks"`
	Demoted   bool           `json:"demoted,omitempty"`
	WallMs    float64        `json:"wallMs"`
}

// RunResponseFrom converts a completed serve.Response to its wire form.
func RunResponseFrom(resp *serve.Response) RunResponse {
	return RunResponse{
		Schema:    SchemaRun,
		Program:   resp.Program,
		Key:       resp.Key,
		Mode:      resp.Mode.String(),
		Output:    resp.Output,
		Counters:  resp.Counters,
		Metrics:   resp.Metrics,
		NumTraces: resp.NumTraces,
		BCGNodes:  resp.BCGNodes,
		Cached:    resp.CachedBlocks,
		Demoted:   resp.Demoted,
		WallMs:    float64(resp.Wall) / float64(time.Millisecond),
	}
}

// ErrorResponse is the wire form of every non-2xx body.
type ErrorResponse struct {
	Schema string `json:"schema"`
	Error  string `json:"error"`
	// Report carries the structured verification findings when the program
	// was rejected by the bytecode verifier.
	Report *analysis.Report `json:"report,omitempty"`
}

// NewError builds an ErrorResponse with the schema stamped.
func NewError(msg string) ErrorResponse { return ErrorResponse{Schema: SchemaError, Error: msg} }

// StatsResponse wraps the service snapshot with its schema tag
// (GET /v1/stats). The Snapshot marshals inline, so existing consumers that
// decode straight into serve.Snapshot keep working.
type StatsResponse struct {
	Schema string `json:"schema"`
	serve.Snapshot
}

// MarshalJSON splices the schema tag into the snapshot's own serialization.
// Without it the embedded Snapshot's promoted MarshalJSON would serialize
// the whole response and silently drop the schema field.
func (s StatsResponse) MarshalJSON() ([]byte, error) {
	b, err := s.Snapshot.MarshalJSON()
	if err != nil {
		return nil, err
	}
	tag, _ := json.Marshal(s.Schema)
	out := make([]byte, 0, len(b)+len(tag)+12)
	out = append(out, `{"schema":`...)
	out = append(out, tag...)
	if len(b) > 2 { // non-empty object: keep its fields
		out = append(out, ',')
		out = append(out, b[1:]...)
		return out, nil
	}
	return append(out, '}'), nil
}

// TraceEntry is the wire form of one live trace: identity (canonical block
// key, entry block, length), execution tier, the proven/estimated guard
// split, and the tier-1 versus tier-2 dispatch accounting.
type TraceEntry struct {
	Key             string `json:"key"`
	EntryBlock      int    `json:"entryBlock"`
	Blocks          int    `json:"blocks"`
	Tier            int    `json:"tier"`
	Shards          int    `json:"shards"`
	Entered         int64  `json:"entered"`
	Completed       int64  `json:"completed"`
	ProvenGuards    int    `json:"provenGuards"`
	EstimatedGuards int    `json:"estimatedGuards"`
	CompiledEntered int64  `json:"compiledEntered"`
	// CompiledShare is the fraction of this trace's dispatches that ran the
	// compiled form (0 when the trace never promoted).
	CompiledShare      float64 `json:"compiledShare"`
	CompiledGuardExits int64   `json:"compiledGuardExits,omitempty"`
	CompileBarred      bool    `json:"compileBarred,omitempty"`
}

// ProgramTraces is one program's trace inventory on the wire.
type ProgramTraces struct {
	Program string       `json:"program"`
	Traces  []TraceEntry `json:"traces"`
}

// TracesResponse is the wire form of GET /v1/traces: the per-program live
// trace inventory, hottest traces first.
type TracesResponse struct {
	Schema   string          `json:"schema"`
	Programs []ProgramTraces `json:"programs"`
}

// TracesResponseFrom converts the service's trace inventory to its wire
// form, deriving each trace's compiled-dispatch share.
func TracesResponseFrom(inv []serve.ProgramTraces) TracesResponse {
	resp := TracesResponse{Schema: SchemaTraces, Programs: make([]ProgramTraces, 0, len(inv))}
	for _, p := range inv {
		wp := ProgramTraces{Program: p.Program, Traces: make([]TraceEntry, 0, len(p.Traces))}
		for _, t := range p.Traces {
			e := TraceEntry{
				Key:                t.Key,
				EntryBlock:         t.Entry,
				Blocks:             t.Blocks,
				Tier:               t.Tier,
				Shards:             t.Shards,
				Entered:            t.Entered,
				Completed:          t.Completed,
				ProvenGuards:       t.ProvenGuards,
				EstimatedGuards:    t.EstimatedGuards,
				CompiledEntered:    t.CompiledEntered,
				CompiledGuardExits: t.CompiledGuardExits,
				CompileBarred:      t.Barred,
			}
			if t.Entered > 0 {
				e.CompiledShare = float64(t.CompiledEntered) / float64(t.Entered)
			}
			wp.Traces = append(wp.Traces, e)
		}
		resp.Programs = append(resp.Programs, wp)
	}
	return resp
}

// EventsResponse is the wire form of GET /v1/events: the newest matching
// tail of the service's shared event ring, oldest first.
type EventsResponse struct {
	Schema string `json:"schema"`
	// Total is the number of events ever emitted; Held is the number the
	// ring currently retains; Cap is its fixed capacity (0 = tracing
	// disabled).
	Total uint64 `json:"total"`
	Held  int    `json:"held"`
	Cap   int    `json:"cap"`
	// Events is the filtered tail.
	Events []obs.Event `json:"events"`
}

// SnapshotInfoResponse summarizes an accepted profile snapshot
// (PUT /v1/snapshot): the program identity it is keyed to and how much
// learned state it carries.
type SnapshotInfoResponse struct {
	Schema  string `json:"schema"`
	Program string `json:"program,omitempty"`
	Key     string `json:"key"`
	Nodes   int    `json:"nodes"`
	Traces  int    `json:"traces"`
}

// HealthResponse is the wire form of GET /v1/healthz.
type HealthResponse struct {
	Schema     string `json:"schema"`
	Status     string `json:"status"`
	Workers    int    `json:"workers"`
	QueueDepth int    `json:"queueDepth"`
}

// ReadyResponse is the wire form of GET /v1/readyz.
type ReadyResponse struct {
	Schema              string `json:"schema"`
	Status              string `json:"status"`
	QueueDepth          int    `json:"queueDepth"`
	QueueCap            int    `json:"queueCap"`
	OpenBreakers        int    `json:"openBreakers"`
	HalfOpenBreakers    int    `json:"halfOpenBreakers"`
	QuarantinedPrograms int    `json:"quarantinedPrograms"`
}

// ModeNames maps wire mode names to dispatch modes.
var ModeNames = map[string]core.Mode{
	"plain":        core.ModePlain,
	"instr":        core.ModeInstr,
	"profile":      core.ModeProfile,
	"trace":        core.ModeTrace,
	"trace-deploy": core.ModeTraceDeploy,
}

// ParseMode maps a wire mode name to a dispatch mode; empty defaults to
// trace.
func ParseMode(s string) (core.Mode, error) {
	if s == "" {
		return core.ModeTrace, nil
	}
	if m, ok := ModeNames[s]; ok {
		return m, nil
	}
	return 0, fmt.Errorf("unknown mode %q (plain, instr, profile, trace, trace-deploy)", s)
}
