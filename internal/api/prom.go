package api

import (
	"fmt"
	"io"
	"math"
	"reflect"
	"sort"
	"strings"

	"repro/internal/serve"
)

// WriteMetrics renders a service snapshot in the Prometheus text exposition
// format (version 0.0.4). Every stats.Counters field is exported via a
// reflection walk — adding a counter to stats automatically adds a series
// here — plus the serve layer's request accounting, pool/registry gauges,
// breaker states, event-ring gauges, and the request latency histogram.
func WriteMetrics(w io.Writer, snap serve.Snapshot) error {
	pw := &promWriter{w: w}

	// Global merged VM counters, one series per stats.Counters field.
	cv := reflect.ValueOf(snap.Global)
	ct := cv.Type()
	for i := 0; i < ct.NumField(); i++ {
		f := ct.Field(i)
		pw.counter(CounterName(f.Name), "stats.Counters."+f.Name, float64(cv.Field(i).Int()))
	}

	// Derived §5.2 metrics as gauges; non-finite ratios are skipped rather
	// than emitted (Prometheus accepts +Inf but it poisons dashboards).
	mv := reflect.ValueOf(snap.Metrics)
	mt := mv.Type()
	for i := 0; i < mt.NumField(); i++ {
		v := mv.Field(i).Float()
		if math.IsInf(v, 0) || math.IsNaN(v) {
			continue
		}
		pw.gauge("tracevm_metric_"+snakeCase(mt.Field(i).Name), "derived §5.2 metric", v)
	}

	// Request accounting.
	pw.counter("tracevm_requests_accepted_total", "requests enqueued", float64(snap.Accepted))
	pw.counter("tracevm_requests_rejected_total", "requests refused by backpressure", float64(snap.Rejected))
	pw.counter("tracevm_requests_completed_total", "requests finished successfully", float64(snap.Completed))
	pw.counter("tracevm_requests_failed_total", "requests finished with a run error", float64(snap.Failed))
	pw.counter("tracevm_requests_timed_out_total", "requests cancelled by deadline", float64(snap.TimedOut))
	pw.counter("tracevm_worker_panics_total", "recovered worker panics", float64(snap.Panics))
	pw.counter("tracevm_compile_errors_total", "requests whose program failed to compile", float64(snap.CompileErrors))
	pw.counter("tracevm_programs_rejected_total", "requests whose program failed bytecode verification", float64(snap.ProgramsRejected))
	pw.counter("tracevm_quarantined_requests_total", "requests refused because the program is quarantined", float64(snap.Quarantined))
	pw.counter("tracevm_requests_recorded_total", "submissions captured by the record/replay tap", float64(snap.RecordedRequests))

	// Breaker accounting and current states.
	pw.counter("tracevm_breaker_trips_total", "churn breaker transitions into open", float64(snap.BreakerTrips))
	pw.counter("tracevm_breaker_demotions_total", "profiled runs demoted to plain dispatch", float64(snap.BreakerDemoted))
	pw.counter("tracevm_breaker_probes_total", "half-open probe runs admitted", float64(snap.BreakerProbes))
	pw.gauge("tracevm_breakers_open", "programs with an open churn breaker", float64(snap.OpenBreakers))
	pw.gauge("tracevm_breakers_half_open", "programs with a half-open churn breaker", float64(snap.HalfOpenBreakers))
	pw.gauge("tracevm_programs_quarantined", "programs past the panic quarantine threshold", float64(snap.QuarantinedPrograms))

	// Pool, registry, and event-ring state.
	pw.gauge("tracevm_queue_depth", "jobs waiting in the pool queue", float64(snap.QueueDepth))
	pw.gauge("tracevm_queue_capacity", "pool queue capacity", float64(snap.QueueCap))
	pw.gauge("tracevm_workers", "session worker goroutines", float64(snap.Workers))
	pw.gauge("tracevm_draining", "1 once Close has begun", b2f(snap.Draining))
	pw.gauge("tracevm_programs", "programs in the registry", float64(snap.Programs))
	pw.counter("tracevm_registry_hits_total", "program registry cache hits", float64(snap.RegistryHits))
	pw.counter("tracevm_registry_misses_total", "program registry cache misses", float64(snap.RegistryMisses))
	pw.gauge("tracevm_event_ring_capacity", "event trace ring capacity (0 = disabled)", float64(snap.EventCap))
	pw.gauge("tracevm_event_ring_held", "events currently retained by the ring", float64(snap.EventsHeld))
	pw.counter("tracevm_events_emitted_total", "observability events ever emitted", float64(snap.EventsTotal))
	pw.gauge("tracevm_snapshot_programs", "programs holding a warm profile snapshot", float64(snap.SnapshotPrograms))
	pw.gauge("tracevm_snapshots_pending", "programs with learning deltas awaiting the coalescing snapshot writer", float64(snap.SnapshotsPending))

	// Sharded-profiling state.
	pw.gauge("tracevm_shard_programs", "programs with a per-worker profiler shard set", float64(snap.ShardPrograms))
	pw.gauge("tracevm_shards_live", "live per-worker profiler shards", float64(snap.LiveShards))
	pw.counter("tracevm_epoch_merges_total", "completed epoch merges of per-worker profiler shards", float64(snap.EpochMerges))
	pw.counter("tracevm_epoch_shards_merged_total", "shards absorbed across all epoch merges", float64(snap.ShardsMerged))

	// Per-program breaker state, one labeled gauge per program
	// (0=closed, 1=open, 2=half-open), in sorted order for stable output.
	names := make([]string, 0, len(snap.PerProgram))
	for name, ps := range snap.PerProgram {
		if ps.Breaker != "" {
			names = append(names, name)
		}
	}
	if len(names) > 0 {
		sort.Strings(names)
		pw.header("tracevm_breaker_state", "per-program breaker state (0=closed, 1=open, 2=half-open)", "gauge")
		for _, name := range names {
			var v float64
			switch snap.PerProgram[name].Breaker {
			case "open":
				v = 1
			case "half-open":
				v = 2
			}
			pw.labeled("tracevm_breaker_state", "program", name, v)
		}
	}

	// Request latency histogram in the native Prometheus shape: cumulative
	// buckets, then _sum and _count.
	pw.header("tracevm_request_latency_ms", "accepted-to-finished request latency", "histogram")
	var cum int64
	for _, b := range snap.Latency {
		cum += b.Count
		le := "+Inf"
		if b.UpperMs > 0 {
			le = fmt.Sprintf("%d", b.UpperMs)
		}
		pw.labeled("tracevm_request_latency_ms_bucket", "le", le, float64(cum))
	}
	pw.plain("tracevm_request_latency_ms_sum", float64(snap.TotalLatency.Milliseconds()))
	pw.plain("tracevm_request_latency_ms_count", float64(cum))

	return pw.err
}

// CounterName maps a stats.Counters field name to its Prometheus series name
// (e.g. "BlockDispatches" -> "tracevm_block_dispatches_total"). Exported so
// tests can pin that every field is present in the rendered output.
func CounterName(field string) string { return "tracevm_" + snakeCase(field) + "_total" }

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	if help != "" {
		p.printf("# HELP %s %s\n", name, help)
	}
	p.printf("# TYPE %s %s\n", name, typ)
}

func (p *promWriter) counter(name, help string, v float64) {
	p.header(name, help, "counter")
	p.plain(name, v)
}

func (p *promWriter) gauge(name, help string, v float64) {
	p.header(name, help, "gauge")
	p.plain(name, v)
}

func (p *promWriter) plain(name string, v float64) {
	p.printf("%s %s\n", name, formatValue(v))
}

func (p *promWriter) labeled(name, label, value string, v float64) {
	p.printf("%s{%s=%q} %s\n", name, label, escapeLabel(value), formatValue(v))
}

// formatValue renders integral values without an exponent or trailing
// zeros; everything else falls back to %g.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// snakeCase converts a Go exported field name to snake_case
// ("BlockDispatches" -> "block_dispatches", "BCGNodes" -> "bcg_nodes").
func snakeCase(s string) string {
	var b strings.Builder
	rs := []rune(s)
	for i, r := range rs {
		if r >= 'A' && r <= 'Z' {
			prevLower := i > 0 && rs[i-1] >= 'a' && rs[i-1] <= 'z'
			nextLower := i+1 < len(rs) && rs[i+1] >= 'a' && rs[i+1] <= 'z'
			if i > 0 && (prevLower || nextLower) {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
