package api

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/stats"
)

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Instrs":                  "instrs",
		"BlockDispatches":         "block_dispatches",
		"InstrsInCompletedTraces": "instrs_in_completed_traces",
		"BCGNodes":                "bcg_nodes",
		"TracesBuilt":             "traces_built",
	}
	for in, want := range cases {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
	if got := CounterName("BlockDispatches"); got != "tracevm_block_dispatches_total" {
		t.Errorf("CounterName = %q", got)
	}
}

func TestRunRequestToServe(t *testing.T) {
	req, err := RunRequest{Workload: "soot", Mode: "trace-deploy", Kind: "jasm", TimeoutMs: 250}.ToServe()
	if err != nil {
		t.Fatal(err)
	}
	if req.Mode != core.ModeTraceDeploy || req.Kind != serve.KindJasm || req.Timeout != 250*time.Millisecond {
		t.Errorf("conversion lost fields: %+v", req)
	}
	if _, err := (RunRequest{Mode: "warp"}).ToServe(); err == nil {
		t.Error("bad mode accepted")
	}
	if _, err := (RunRequest{Kind: "cobol"}).ToServe(); err == nil {
		t.Error("bad kind accepted")
	}
	// Defaults: trace mode, minijava kind.
	req, err = RunRequest{Source: "x"}.ToServe()
	if err != nil || req.Mode != core.ModeTrace || req.Kind != serve.KindMiniJava {
		t.Errorf("defaults: %+v, %v", req, err)
	}
}

func TestWriteMetricsHistogramAndLabels(t *testing.T) {
	snap := serve.Snapshot{
		Workers:      2,
		Accepted:     5,
		LiveShards:   3,
		EpochMerges:  4,
		ShardsMerged: 9,
		Global:       stats.Counters{Instrs: 1234, BlockDispatches: 99},
		PerProgram: map[string]serve.ProgramStats{
			"zeta":  {Breaker: "open"},
			"alpha": {Breaker: "closed"},
		},
		Latency: []serve.LatencyBucket{
			{UpperMs: 1, Count: 3},
			{UpperMs: 2, Count: 1},
			{UpperMs: 0, Count: 1}, // +Inf overflow
		},
		TotalLatency: 7 * time.Millisecond,
	}
	var b strings.Builder
	if err := WriteMetrics(&b, snap); err != nil {
		t.Fatal(err)
	}
	out := b.String()

	for _, want := range []string{
		"tracevm_instrs_total 1234",
		"tracevm_block_dispatches_total 99",
		"tracevm_requests_accepted_total 5",
		"tracevm_workers 2",
		// Sharded-profiling gauges and counters.
		"tracevm_shards_live 3",
		"tracevm_epoch_merges_total 4",
		"tracevm_epoch_shards_merged_total 9",
		// Cumulative buckets: 3, 3+1, 3+1+1.
		`tracevm_request_latency_ms_bucket{le="1"} 3`,
		`tracevm_request_latency_ms_bucket{le="2"} 4`,
		`tracevm_request_latency_ms_bucket{le="+Inf"} 5`,
		"tracevm_request_latency_ms_sum 7",
		"tracevm_request_latency_ms_count 5",
		// Labeled breaker states in sorted program order.
		`tracevm_breaker_state{program="alpha"} 0`,
		`tracevm_breaker_state{program="zeta"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	if strings.Index(out, `program="alpha"`) > strings.Index(out, `program="zeta"`) {
		t.Error("breaker states not sorted by program")
	}
}

func TestStatsResponseMarshalKeepsSchema(t *testing.T) {
	resp := StatsResponse{Schema: SchemaStats, Snapshot: serve.Snapshot{
		Completed: 3,
		Global:    stats.Counters{Instrs: 42},
	}}
	b, err := json.Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["schema"] != SchemaStats {
		t.Errorf("schema missing from marshal: %s", b)
	}
	if m["Completed"].(float64) != 3 {
		t.Errorf("snapshot fields missing: %s", b)
	}
	var back StatsResponse
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaStats || back.Completed != 3 || back.Global.Instrs != 42 {
		t.Errorf("round trip lost fields: %+v", back)
	}
}

func TestRunResponseFrom(t *testing.T) {
	wire := RunResponseFrom(&serve.Response{
		Program:  "soot",
		Mode:     core.ModeTrace,
		Counters: stats.Counters{Instrs: 10},
		Wall:     1500 * time.Microsecond,
	})
	if wire.Schema != SchemaRun || wire.Mode != "trace" || wire.WallMs != 1.5 {
		t.Errorf("conversion: %+v", wire)
	}
}
