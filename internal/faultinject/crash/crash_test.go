package crash

import (
	"testing"
)

func swapExit(t *testing.T) *[]int {
	t.Helper()
	var codes []int
	old := exit
	exit = func(code int) { codes = append(codes, code) }
	t.Cleanup(func() {
		exit = old
		Arm("", 0)
	})
	return &codes
}

func TestUnarmedIsInert(t *testing.T) {
	codes := swapExit(t)
	Arm("", 0)
	for i := 0; i < 100; i++ {
		Here(PointSnapshotCommit)
		Here(PointEpochMerge)
	}
	if len(*codes) != 0 {
		t.Fatalf("unarmed crash point fired: %v", *codes)
	}
	if p, ok := Armed(); ok {
		t.Fatalf("Armed() = %q after disarm", p)
	}
}

func TestFiresOnNthHit(t *testing.T) {
	codes := swapExit(t)
	Arm(PointEpochMerge, 3)
	if p, ok := Armed(); !ok || p != PointEpochMerge {
		t.Fatalf("Armed() = %q, %v", p, ok)
	}
	Here(PointSnapshotCommit) // other points never count
	Here(PointEpochMerge)
	Here(PointEpochMerge)
	if len(*codes) != 0 {
		t.Fatalf("fired before the 3rd hit: %v", *codes)
	}
	Here(PointEpochMerge)
	if len(*codes) != 1 || (*codes)[0] != ExitCode {
		t.Fatalf("exit codes = %v, want [%d]", *codes, ExitCode)
	}
}

func TestArmFromEnv(t *testing.T) {
	codes := swapExit(t)
	t.Setenv("TRACEVM_CRASH_POINT", PointEviction)
	t.Setenv("TRACEVM_CRASH_AFTER", "2")
	ArmFromEnv()
	Here(PointEviction)
	if len(*codes) != 0 {
		t.Fatalf("fired on first hit with AFTER=2")
	}
	Here(PointEviction)
	if len(*codes) != 1 {
		t.Fatalf("did not fire on second hit")
	}

	t.Setenv("TRACEVM_CRASH_POINT", "")
	ArmFromEnv()
	if _, ok := Armed(); ok {
		t.Fatal("empty env left the point armed")
	}
}
