// Package crash provides named, environment-armed crash points: designated
// sites in the daemon where the process hard-exits mid-operation, so the
// recovery harness can kill it at a precise moment — just after a snapshot
// commit, in the middle of an epoch merge, during a trace eviction — instead
// of at whatever instant a SIGKILL happens to land.
//
// Arming is per process via the environment:
//
//	TRACEVM_CRASH_POINT=snapshot-commit   # which point fires
//	TRACEVM_CRASH_AFTER=3                 # on the nth hit (default 1)
//
// A fired point exits with no unwinding — no deferred cleanup, no flushes —
// so everything not already durable is lost, exactly like a kill -9 at that
// line. Unarmed (the production default), a crash point costs one atomic
// load. The package sits below everything (stdlib only) so any layer —
// core's eviction path, serve's snapshot writer — may declare a point
// without import cycles.
package crash

import (
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
)

// The named crash points wired into the daemon.
const (
	// PointSnapshotCommit fires immediately after a profile snapshot is
	// durably committed — recovery must see the committed file.
	PointSnapshotCommit = "snapshot-commit"
	// PointEpochMerge fires inside an epoch merge, after shard state has been
	// absorbed but before the merged view is published.
	PointEpochMerge = "epoch-merge"
	// PointEviction fires after a trace-cache eviction retires its victim.
	PointEviction = "eviction"
)

// ExitCode is the process exit status of a fired crash point, distinct from
// every ordinary daemon exit so supervisors can tell an injected crash from
// a real failure.
const ExitCode = 86

var (
	armedPoint atomic.Pointer[string]
	remaining  atomic.Int64

	// exit is swapped out by tests that verify arming semantics in-process.
	exit = os.Exit
)

func init() {
	ArmFromEnv()
}

// ArmFromEnv (re)arms from TRACEVM_CRASH_POINT / TRACEVM_CRASH_AFTER. It runs
// automatically at init; tests that mutate the environment may call it again.
func ArmFromEnv() {
	point := os.Getenv("TRACEVM_CRASH_POINT")
	after := 1
	if s := os.Getenv("TRACEVM_CRASH_AFTER"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			after = n
		}
	}
	Arm(point, after)
}

// Arm sets the live crash point programmatically: the process exits on the
// after-th Here(point). An empty point disarms.
func Arm(point string, after int) {
	if point == "" {
		armedPoint.Store(nil)
		return
	}
	remaining.Store(int64(after))
	armedPoint.Store(&point)
}

// Armed reports the live crash point, if any.
func Armed() (point string, ok bool) {
	p := armedPoint.Load()
	if p == nil {
		return "", false
	}
	return *p, true
}

// Here declares a crash point. If the process is armed for name and this is
// the configured hit, the process exits immediately with ExitCode.
func Here(name string) {
	p := armedPoint.Load()
	if p == nil || *p != name {
		return
	}
	if remaining.Add(-1) != 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "crash: injected hard exit at point %q\n", name)
	exit(ExitCode)
}
