package faultinject

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/replay"
	"repro/internal/serve"
)

// loopSource is a steady 2000-iteration loop: enough block dispatches for
// the profiler to converge and build loop traces, with a known output.
const loopSource = `class Main { static void main() { int i = 0; int s = 0; while (i < 2000) { s = s + i; i = i + 1; } Sys.printlnInt(s); } }`

const loopOutput = "1999000\n"

func newService(t *testing.T, cfg serve.Config) *serve.Service {
	t.Helper()
	s := serve.New(cfg)
	t.Cleanup(s.Close)
	return s
}

// TestStormRespectsBudgetsAndInvariants replays the head of the committed
// mixed-tenant traffic fixture (internal/replay/testdata) into a service
// under an injected signal storm with tight cache budgets: recorded
// production-shaped traffic, not a synthetic loop, must leave the cache
// structurally sound and inside its block budget after every injection, and
// the pressure must show up as evictions in the counters. The head (not the
// full 54-record storm) bounds the race-detector runtime of the chaos job.
func TestStormRespectsBudgetsAndInvariants(t *testing.T) {
	storm := &Storm{Seed: 7}
	storm.SetEnabled(true)
	const maxBlocks = 48
	s := newService(t, serve.Config{
		Workers:    2,
		QueueDepth: 8,
		TraceCache: core.Config{MaxTraces: 4, MaxCachedBlocks: maxBlocks},
		Injector:   &Faults{Storm: storm},
	})
	saveArtifactsOnFailure(t, s)

	full, err := replay.Load(filepath.Join("..", "replay", "testdata", "storm-mixed"+replay.FileExt))
	if err != nil {
		t.Fatalf("loading committed fixture: %v", err)
	}
	head := &replay.Log{Records: full.Records[:16]}
	if len(head.Programs()) < 4 {
		t.Fatalf("fixture head covers %d programs, want a mixed-tenant slice", len(head.Programs()))
	}

	var overBudget atomic.Int64
	res, err := replay.Play(context.Background(), head,
		// As-recorded pacing keeps the tenants overlapping the way they were
		// captured; in-flight stays below workers+queue so backpressure never
		// refuses a recorded request.
		replay.PlayOptions{Scale: 1, MaxInFlight: 4},
		func(ctx context.Context, rec replay.Record) error {
			resp, derr := s.Do(ctx, serve.RequestFromRecord(rec))
			if derr != nil {
				return derr
			}
			if resp.CachedBlocks > maxBlocks {
				overBudget.Add(1)
			}
			return nil
		})
	if err != nil {
		t.Fatalf("replaying fixture: %v", err)
	}
	if res.Failed > 0 {
		t.Fatalf("%d recorded requests failed under storm (first: %v)", res.Failed, res.Errors)
	}
	if n := overBudget.Load(); n != 0 {
		t.Fatalf("%d runs exceeded the %d-block cache budget", n, maxBlocks)
	}
	if v := storm.Violations(); v != 0 {
		t.Fatalf("%d invariant violations under storm: %v", v, storm.Err())
	}
	snap := s.Stats()
	if snap.Global.TracesEvicted == 0 || snap.Global.BudgetPressure == 0 {
		t.Errorf("storm caused no eviction pressure: evicted=%d pressure=%d",
			snap.Global.TracesEvicted, snap.Global.BudgetPressure)
	}
}

// TestStormBreakerRecovery is the acceptance chaos scenario: under an
// injected signal storm the cache stays within budget, the churn breaker
// trips (visible in the service metrics), demoted block-dispatch results
// stay correct, and once the storm ends the program returns to traced
// execution.
func TestStormBreakerRecovery(t *testing.T) {
	storm := &Storm{Seed: 99}
	storm.SetEnabled(true)
	clk := NewClock(time.Unix(1_000_000, 0))
	const cooldown = time.Minute
	const maxBlocks = 48
	s := newService(t, serve.Config{
		Workers:    2,
		TraceCache: core.Config{MaxTraces: 4, MaxCachedBlocks: maxBlocks},
		Breaker:    serve.BreakerConfig{ChurnPerK: 8, TripAfter: 2, Cooldown: cooldown},
		Clock:      clk.Now,
		Injector:   &Faults{Storm: storm},
	})
	saveArtifactsOnFailure(t, s)
	req := serve.Request{Source: loopSource, Mode: core.ModeTrace}

	// Phase 1: the storm rages. Within a few runs the breaker must trip;
	// every result — traced or demoted — must stay correct.
	tripped := false
	for i := 0; i < 10 && !tripped; i++ {
		resp, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("storm run %d: %v", i, err)
		}
		if resp.Output != loopOutput {
			t.Fatalf("storm run %d output = %q, want %q", i, resp.Output, loopOutput)
		}
		if resp.CachedBlocks > maxBlocks {
			t.Fatalf("storm run %d: cache over budget: %d > %d", i, resp.CachedBlocks, maxBlocks)
		}
		tripped = s.Stats().BreakerTrips > 0
	}
	if !tripped {
		t.Fatal("breaker never tripped under the signal storm")
	}
	if v := storm.Violations(); v != 0 {
		t.Fatalf("%d cache invariant violations: %v", v, storm.Err())
	}
	snap := s.Stats()
	if snap.Global.TracesEvicted == 0 {
		t.Error("no evictions despite storm under budget")
	}

	// Phase 2: the breaker is open — runs demote to plain dispatch and
	// still compute the right answer.
	resp, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Demoted || resp.Mode != core.ModePlain {
		t.Fatalf("open breaker: demoted=%v mode=%v", resp.Demoted, resp.Mode)
	}
	if resp.Output != loopOutput {
		t.Fatalf("demoted output = %q, want %q", resp.Output, loopOutput)
	}

	// Phase 3: the storm ends and the cool-down passes. The half-open
	// probe runs traced, measures calm churn, and the breaker closes —
	// the program is back to traced execution.
	storm.SetEnabled(false)
	clk.Advance(cooldown + time.Second)
	probe, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Demoted || probe.Mode != core.ModeTrace {
		t.Fatalf("probe: demoted=%v mode=%v, want traced", probe.Demoted, probe.Mode)
	}
	after, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if after.Demoted {
		t.Fatal("breaker still open after a calm probe")
	}
	if after.NumTraces == 0 || after.Counters.TraceDispatches == 0 {
		t.Errorf("no traced execution after recovery: traces=%d dispatches=%d",
			after.NumTraces, after.Counters.TraceDispatches)
	}
	if after.Output != loopOutput {
		t.Errorf("post-recovery output = %q, want %q", after.Output, loopOutput)
	}
}

// TestStormWithCompiledTraces runs the signal storm against a cache that
// compiles hot traces: synthetic storm signals churn the cache (retire,
// rebuild, evict) while real loop traces promote to tier 2 and execute as
// superinstructions. The compiled tier must ride the churn without
// corrupting anything — outputs stay correct, the storm's structural
// invariants hold, and tier-2 execution demonstrably happened. Storm
// signals name synthetic blocks outside the program's CFG; traces built
// from them must fail compilation safely (the compiler bails, the trace is
// barred) rather than crash the service.
func TestStormWithCompiledTraces(t *testing.T) {
	storm := &Storm{Seed: 21}
	storm.SetEnabled(true)
	const maxBlocks = 48
	s := newService(t, serve.Config{
		Workers: 2,
		TraceCache: core.Config{
			MaxTraces: 4, MaxCachedBlocks: maxBlocks,
			CompileTraces: true, TierUpDispatches: 2, TierDownGuardExits: 2,
		},
		Injector: &Faults{Storm: storm},
	})
	saveArtifactsOnFailure(t, s)
	req := serve.Request{Source: loopSource, Mode: core.ModeTrace}
	for i := 0; i < 8; i++ {
		resp, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("storm run %d: %v", i, err)
		}
		if resp.Output != loopOutput {
			t.Fatalf("storm run %d output = %q, want %q", i, resp.Output, loopOutput)
		}
		if resp.CachedBlocks > maxBlocks {
			t.Fatalf("storm run %d: cache over budget: %d > %d", i, resp.CachedBlocks, maxBlocks)
		}
	}
	if v := storm.Violations(); v != 0 {
		t.Fatalf("%d cache invariant violations with compiled traces: %v", v, storm.Err())
	}
	snap := s.Stats()
	if snap.Global.TracesCompiled == 0 || snap.Global.CompiledDispatches == 0 {
		t.Errorf("tier 2 never engaged under storm: compiled=%d dispatches=%d",
			snap.Global.TracesCompiled, snap.Global.CompiledDispatches)
	}
}

// TestPanicQuarantine crashes workers with the panic injector until the
// service quarantines the program, leaving other programs unharmed.
func TestPanicQuarantine(t *testing.T) {
	crash := NewPanic(-1, func(req serve.Request) bool { return req.Workload == "compress" })
	s := newService(t, serve.Config{
		Workers:         2,
		QuarantineAfter: 2,
		Injector:        &Faults{Panic: crash},
	})
	for i := 0; i < 2; i++ {
		_, err := s.Do(context.Background(), serve.Request{Workload: "compress"})
		if err == nil || errors.Is(err, serve.ErrQuarantined) {
			t.Fatalf("crash %d: err = %v, want raw panic error", i, err)
		}
	}
	if _, err := s.Do(context.Background(), serve.Request{Workload: "compress"}); !errors.Is(err, serve.ErrQuarantined) {
		t.Fatalf("err = %v, want ErrQuarantined", err)
	}
	if crash.Fired() != 2 {
		t.Errorf("injector fired %d times, want 2 (quarantine must reject before execution)", crash.Fired())
	}
	// A healthy program on the same service still runs.
	resp, err := s.Do(context.Background(), serve.Request{Source: loopSource})
	if err != nil || resp.Output != loopOutput {
		t.Fatalf("healthy program: %v, %+v", err, resp)
	}
	snap := s.Stats()
	if snap.QuarantinedPrograms != 1 || snap.Panics != 2 {
		t.Errorf("quarantinedPrograms=%d panics=%d, want 1/2", snap.QuarantinedPrograms, snap.Panics)
	}
}

// TestDelayedDispatchHitsDeadline slows every block dispatch down so a
// modest program blows its deadline, then checks the service recovered.
func TestDelayedDispatchHitsDeadline(t *testing.T) {
	delay := &Delay{Every: 64, Sleep: 2 * time.Millisecond}
	s := newService(t, serve.Config{
		Workers:  1,
		Injector: &Faults{Delay: delay},
	})
	_, err := s.Do(context.Background(), serve.Request{
		Source:  loopSource,
		Mode:    core.ModeProfile,
		Timeout: 50 * time.Millisecond,
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if snap := s.Stats(); snap.TimedOut != 1 {
		t.Errorf("timedOut = %d, want 1", snap.TimedOut)
	}
}

// TestLoadGenBackoffAbsorbsOverload overloads a deliberately tiny service;
// with the backoff helper engaged the load generator must complete every
// request, converting rejections into retries.
func TestLoadGenBackoffAbsorbsOverload(t *testing.T) {
	s := newService(t, serve.Config{Workers: 2, QueueDepth: 2})
	// The retry budget must dominate the drain time of the backlog even on
	// slow machines (the race detector makes runs ~10× slower), so it is
	// deliberately over-provisioned: ~20s of cumulative backoff against a
	// few seconds of actual work.
	res := serve.RunLoadGen(context.Background(), serve.LoadGenConfig{
		Concurrency: 8,
		Requests:    12,
		Workloads:   []string{"soot"},
		Mode:        core.ModePlain,
		Retry:       &serve.Backoff{Attempts: 90, Base: 5 * time.Millisecond, Max: 250 * time.Millisecond, Seed: 3},
	}, s.Do)
	if res.Failed != 0 {
		t.Fatalf("failures despite backoff: %+v", res)
	}
	if res.Completed != 12 {
		t.Fatalf("completed = %d, want 12", res.Completed)
	}
	t.Logf("absorbed %d rejections as retries", res.Retries)
}
