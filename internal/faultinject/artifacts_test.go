package faultinject

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/snapshot"
)

// saveArtifactsOnFailure registers a cleanup that, when the test fails and
// TRACEVM_ARTIFACT_DIR is set (CI exports it so failure artifacts can be
// uploaded), dumps the service's event-ring tail — the last few hundred
// observability events before the failure — as JSON into that directory.
// Without the env var (local runs) it is a no-op.
func saveArtifactsOnFailure(t *testing.T, s *serve.Service) {
	t.Helper()
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		dir := os.Getenv("TRACEVM_ARTIFACT_DIR")
		if dir == "" {
			return
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Logf("artifact dir: %v", err)
			return
		}
		events := s.Events(512, obs.EvNone, "")
		name := strings.ReplaceAll(t.Name(), "/", "_") + "-events.json"
		path := filepath.Join(dir, name)
		data, err := json.MarshalIndent(struct {
			Test   string      `json:"test"`
			Stats  any         `json:"stats"`
			Events []obs.Event `json:"events"`
		}{t.Name(), s.Stats(), events}, "", "  ")
		if err != nil {
			t.Logf("artifact marshal: %v", err)
			return
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Logf("artifact write: %v", err)
			return
		}
		t.Logf("wrote failure artifact %s (%d events)", path, len(events))
	})
}

// TestBreakerTripMidEpochNoStrandedDeltas: a breaker trip is an epoch
// boundary. The epoch quota is set far beyond the traffic and every other
// snapshot-writer trigger is disabled, so the only way the shards' learning
// can ever reach the merged view — and disk — is the trip-forced merge.
// Without it the program would demote to plain dispatch with all its
// tracing-phase learning stranded in unmerged shards for as long as the
// breaker stays open.
func TestBreakerTripMidEpochNoStrandedDeltas(t *testing.T) {
	storm := &Storm{Seed: 99}
	storm.SetEnabled(true)
	clk := NewClock(time.Unix(1_000_000, 0))
	dir := t.TempDir()
	s := newService(t, serve.Config{
		Workers:          2,
		TraceCache:       core.Config{MaxTraces: 4, MaxCachedBlocks: 48},
		Breaker:          serve.BreakerConfig{ChurnPerK: 8, TripAfter: 2, Cooldown: time.Minute},
		Clock:            clk.Now,
		Injector:         &Faults{Storm: storm},
		EventTrace:       512,
		EpochRuns:        1_000_000, // quota never reached by this traffic
		SnapshotDir:      dir,       // persistence on...
		SnapshotInterval: time.Hour, // ...but no periodic commit
		SnapshotNet:      1 << 40,   // ...and no net-threshold commit
	})
	saveArtifactsOnFailure(t, s)

	req := serve.Request{Source: loopSource, Mode: core.ModeTrace}
	tripped := false
	for i := 0; i < 10 && !tripped; i++ {
		resp, err := s.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("storm run %d: %v", i, err)
		}
		if resp.Output != loopOutput {
			t.Fatalf("storm run %d output = %q, want %q", i, resp.Output, loopOutput)
		}
		tripped = s.Stats().BreakerTrips > 0
	}
	if !tripped {
		t.Fatal("breaker never tripped under the signal storm")
	}

	snap := s.Stats()
	if snap.EpochMerges == 0 {
		t.Fatal("breaker trip did not force an epoch merge; shard deltas are stranded")
	}
	if snap.ShardsMerged == 0 {
		t.Fatal("trip-forced merge absorbed no shards")
	}

	// Drain. The writer's final flush pulls the merged view through the
	// coordinator and commits it — the learning survives to disk.
	s.Close()
	files, err := filepath.Glob(filepath.Join(dir, "*.tsnap"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no snapshot committed after drain (err=%v); learning was stranded", err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("committed snapshot does not decode: %v", err)
	}
	if len(decoded.Nodes) == 0 {
		t.Error("committed snapshot holds no learned nodes")
	}
	if decoded.Program == "" {
		t.Error("committed snapshot lost its program identity")
	}
}
