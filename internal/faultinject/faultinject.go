// Package faultinject is the deterministic chaos harness for the trace VM
// service: seedable injectors that drive the system into its degradation
// paths — signal storms that churn the trace cache, delayed block dispatch,
// worker panics, and (combined with tight cache budgets) forced eviction
// pressure — so the robustness machinery can be tested instead of trusted.
//
// Everything is deterministic by construction: randomness comes from a
// seeded SplitMix64 stream and time from a manually advanced Clock, so a
// failing chaos run replays exactly. The injectors plug into the serving
// layer through the serve.Injector seam and cost nothing when absent.
package faultinject

import (
	"sync"
	"time"
)

// Rand is a tiny seedable PRNG (SplitMix64). It is not safe for concurrent
// use; derive one stream per injection site.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next value of the stream.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Intn returns a value in [0, n).
func (r *Rand) Intn(n int) int { return int(r.Uint64() % uint64(n)) }

// Clock is a manually advanced time source, the deterministic stand-in for
// time.Now in breaker cool-down tests. The zero value starts at the zero
// time; all methods are safe for concurrent use.
type Clock struct {
	mu  sync.Mutex
	now time.Time
}

// NewClock returns a clock frozen at start.
func NewClock(start time.Time) *Clock { return &Clock{now: start} }

// Now returns the current frozen instant; pass the method value as a
// serve.Config.Clock.
func (c *Clock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}
