package faultinject

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/vm"
)

// Storm injects a signal storm: after each profiled run it feeds the
// session's live profiler an adversarial, phase-flipping dispatch stream
// over a synthetic block universe. Every phase establishes strong
// correlations (the cache builds traces), then the next phase rewires every
// successor (the cache invalidates and rebuilds) — the pathological program
// behaviour §3 of the paper profiles against, at maximum intensity. Because
// the stream goes through the ordinary profiler entry point, all the real
// machinery churns: signals, trace construction, invalidation, and — under
// cache budgets — eviction pressure.
//
// The injection happens after the program's own execution and before the
// serving layer snapshots counters, so block-dispatch results are untouched
// while the churn is fully visible to the circuit breaker. After each
// injection the trace cache's invariants are checked; violations are
// counted and the first is retained.
type Storm struct {
	// Blocks is the block count of each synthetic chain (default 16).
	Blocks int
	// Chains is the number of disjoint hot chains driven per phase; each
	// yields its own live traces, so more chains means more simultaneous
	// cache occupancy and, under budgets, eviction pressure (default 6).
	Chains int
	// Phases is the number of phase flips injected per run (default 8).
	Phases int
	// Repeats is how often each phase's chain is replayed, enough to push
	// correlations past the profiler's start delay (default 48).
	Repeats int
	// Seed selects the deterministic phase sequence.
	Seed uint64

	enabled    atomic.Bool
	runs       atomic.Uint64
	violations atomic.Int64

	mu      sync.Mutex
	lastErr error
}

// SetEnabled turns the storm on or off; a disabled storm is a no-op, which
// is how a test models "the storm ends".
func (s *Storm) SetEnabled(v bool) { s.enabled.Store(v) }

// Violations returns how many injections left the cache in an
// invariant-violating state (always 0 unless the cache is buggy).
func (s *Storm) Violations() int64 { return s.violations.Load() }

// Err returns the first invariant violation observed, or nil.
func (s *Storm) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// AfterRun implements the serve.Injector after-run hook.
func (s *Storm) AfterRun(_ serve.Request, sess *core.Session) {
	if !s.enabled.Load() || sess == nil || sess.Graph == nil {
		return
	}
	n := s.Blocks
	if n <= 0 {
		n = 16
	}
	chains := s.Chains
	if chains <= 0 {
		chains = 6
	}
	phases := s.Phases
	if phases <= 0 {
		phases = 8
	}
	repeats := s.Repeats
	if repeats <= 0 {
		repeats = 48
	}
	// Each run gets its own stream, derived deterministically from the
	// seed and the run ordinal.
	r := NewRand(s.Seed + s.runs.Add(1))

	// Synthetic blocks sit far above any real program's IDs, so the storm
	// traces can never be entered by actual execution.
	const off = 1 << 12
	g := sess.Graph
	g.ResetContext()
	for p := 0; p < phases; p++ {
		// One fresh stride per chain per phase. An odd stride is coprime
		// with the power-of-two chain length, so every phase visits every
		// block of the chain with a different successor pattern — the
		// previous phase's traces invalidate while new ones build.
		strides := make([]int, chains)
		for c := range strides {
			strides[c] = 1 + 2*r.Intn(n/2)
		}
		for rep := 0; rep < repeats; rep++ {
			for c := 0; c < chains; c++ {
				base := off + c*n
				prev := cfg.BlockID(base)
				for j := 1; j < n; j++ {
					next := cfg.BlockID(base + (j*strides[c])%n)
					g.OnDispatch(prev, next)
					prev = next
				}
			}
		}
	}
	g.ResetContext()

	if sess.Cache != nil {
		if err := sess.Cache.CheckInvariants(); err != nil {
			s.violations.Add(1)
			s.mu.Lock()
			if s.lastErr == nil {
				s.lastErr = err
			}
			s.mu.Unlock()
		}
	}
}

// Panic makes workers panic: the crash-injection half of the quarantine
// story. It fires on requests accepted by Match (nil matches everything),
// at most Times times in total.
type Panic struct {
	// Match selects which requests crash; nil matches all.
	Match func(serve.Request) bool

	mu    sync.Mutex
	times int // remaining panics; negative = unlimited
	fired int64
}

// NewPanic returns an injector that panics times times (negative =
// unlimited) on matching requests.
func NewPanic(times int, match func(serve.Request) bool) *Panic {
	return &Panic{Match: match, times: times}
}

// Fired returns how many panics have been injected.
func (p *Panic) Fired() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired
}

// BeforeExec implements the serve.Injector before-exec hook.
func (p *Panic) BeforeExec(req serve.Request) {
	if p.Match != nil && !p.Match(req) {
		return
	}
	p.mu.Lock()
	if p.times == 0 {
		p.mu.Unlock()
		return
	}
	if p.times > 0 {
		p.times--
	}
	p.fired++
	n := p.fired
	p.mu.Unlock()
	panic(fmt.Sprintf("faultinject: injected worker panic #%d", n))
}

// Delay slows block dispatch down: every Every-th dispatch across all
// wrapped sessions sleeps for Sleep. It turns fast programs into slow ones
// so deadline and interrupt paths can be exercised with real wall time.
type Delay struct {
	// Every is the dispatch period (default 1024).
	Every uint64
	// Sleep is the injected pause (default 1ms).
	Sleep time.Duration

	n atomic.Uint64
}

// Wrap implements the serve.Injector dispatch-wrapping hook.
func (d *Delay) Wrap(h vm.DispatchHook) vm.DispatchHook {
	every := d.Every
	if every == 0 {
		every = 1024
	}
	sleep := d.Sleep
	if sleep == 0 {
		sleep = time.Millisecond
	}
	return vm.HookFunc(func(from, to cfg.BlockID) {
		if d.n.Add(1)%every == 0 {
			time.Sleep(sleep)
		}
		if h != nil {
			h.OnDispatch(from, to)
		}
	})
}

// Misdirect poisons the profiler's view of one branch: every dispatch
// leaving From is reported as going to To, regardless of where execution
// actually went. The profiler then learns a perfectly correlated path
// through a successor the program never takes, the cache builds (and, under
// tiered execution, compiles) a trace along it, and real execution
// guard-exits out of that trace on every entry — the deterministic
// guard-exit storm the tier-down policy must absorb. Plug the method value
// Wrap into core.SessionOptions.WrapHook or the serve.Injector seam.
type Misdirect struct {
	// From is the branch block whose reported successor is replaced.
	From cfg.BlockID
	// To is the successor the profiler is told about.
	To cfg.BlockID

	lies atomic.Int64
}

// Lies returns how many dispatch reports were rewritten to a successor that
// differed from the real one.
func (m *Misdirect) Lies() int64 { return m.lies.Load() }

// Wrap implements the dispatch-wrapping hook.
func (m *Misdirect) Wrap(h vm.DispatchHook) vm.DispatchHook {
	return vm.HookFunc(func(from, to cfg.BlockID) {
		if from == m.From {
			if to != m.To {
				m.lies.Add(1)
			}
			to = m.To
		}
		if h != nil {
			h.OnDispatch(from, to)
		}
	})
}

// Faults bundles the injectors into one serve.Injector; nil fields inject
// nothing.
type Faults struct {
	Storm *Storm
	Panic *Panic
	Delay *Delay
}

var _ serve.Injector = (*Faults)(nil)

func (f *Faults) BeforeExec(req serve.Request) {
	if f.Panic != nil {
		f.Panic.BeforeExec(req)
	}
}

func (f *Faults) WrapDispatch(h vm.DispatchHook) vm.DispatchHook {
	if f.Delay != nil {
		return f.Delay.Wrap(h)
	}
	return h
}

func (f *Faults) AfterRun(req serve.Request, sess *core.Session) {
	if f.Storm != nil {
		f.Storm.AfterRun(req, sess)
	}
}
