// Package progen generates random, deterministic, terminating MiniJava
// programs for differential testing: every generated program must produce
// identical output under the per-instruction engine, the threaded block
// engine, trace dispatch (measurement and deployment modes), and after the
// static bytecode optimizer. Divergence anywhere in the pipeline —
// compiler, verifier, engines, profiler, trace cache, optimizer — surfaces
// as a concrete failing program.
//
// The generator is grammar-directed with hard bounds: loops have constant
// trip counts and read-only induction variables, functions only call
// earlier functions (no recursion), divisors are forced nonzero, and the
// only exceptions thrown are caught — so generated programs always
// terminate and never trap.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	// Funcs is the number of helper functions (default 3).
	Funcs int
	// MaxStmtsPerBlock bounds block length (default 5).
	MaxStmtsPerBlock int
	// MaxDepth bounds statement nesting (default 3).
	MaxDepth int
	// LoopBound is the constant trip count of generated loops (default 8).
	LoopBound int
}

func (c *Config) fill() {
	if c.Funcs <= 0 {
		c.Funcs = 3
	}
	if c.MaxStmtsPerBlock <= 0 {
		c.MaxStmtsPerBlock = 5
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 3
	}
	if c.LoopBound <= 0 {
		c.LoopBound = 8
	}
}

// Generate produces one program from the seed.
func Generate(seed int64, conf Config) string {
	conf.fill()
	g := &gen{r: rand.New(rand.NewSource(seed)), conf: conf}
	return g.program()
}

type gen struct {
	r    *rand.Rand
	conf Config

	locals []string // assignable int locals in scope
	ro     []string // read-only locals (loop variables): readable, never assigned
	funcs  int      // number of helper functions available to call
	depth  int
	inLoop bool
}

func (g *gen) program() string {
	var b strings.Builder
	b.WriteString("class Err { int code; void init(int c) { code = c; } }\n")
	b.WriteString("class Main {\n")
	for i := 0; i < g.conf.Funcs; i++ {
		g.funcs = i // a function may call only earlier functions: no recursion
		g.fn(&b, i)
	}
	g.funcs = g.conf.Funcs
	g.mainFn(&b)
	b.WriteString("}\n")
	return b.String()
}

// fn emits "static int f<i>(int a, int b)".
func (g *gen) fn(b *strings.Builder, i int) {
	fmt.Fprintf(b, "  static int f%d(int a, int b) {\n", i)
	g.locals = []string{"a", "b"}
	g.ro = nil
	g.depth = 0
	body := g.block(2)
	b.WriteString(body)
	fmt.Fprintf(b, "    return %s;\n  }\n", g.expr(2))
}

func (g *gen) mainFn(b *strings.Builder) {
	b.WriteString("  static void main() {\n")
	g.locals = []string{}
	g.ro = nil
	g.depth = 0
	// Seed locals.
	n := g.r.Intn(3) + 2
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("v%d", i)
		fmt.Fprintf(b, "    int %s = %d;\n", name, g.r.Intn(199)-99)
		g.locals = append(g.locals, name)
	}
	b.WriteString(g.block(2))
	// Print every local so all effects are observable.
	for _, l := range g.locals {
		fmt.Fprintf(b, "    Sys.printlnInt(%s);\n", l)
	}
	b.WriteString("  }\n")
}

// block emits up to MaxStmtsPerBlock statements.
func (g *gen) block(indent int) string {
	var b strings.Builder
	n := g.r.Intn(g.conf.MaxStmtsPerBlock) + 1
	for i := 0; i < n; i++ {
		b.WriteString(g.stmt(indent))
	}
	return b.String()
}

func (g *gen) pad(indent int) string { return strings.Repeat("  ", indent) }

func (g *gen) stmt(indent int) string {
	if g.depth >= g.conf.MaxDepth {
		return g.assign(indent)
	}
	switch g.r.Intn(10) {
	case 0, 1, 2, 3:
		return g.assign(indent)
	case 4:
		return g.ifStmt(indent)
	case 5:
		return g.forStmt(indent)
	case 6:
		return g.switchStmt(indent)
	case 7:
		return g.tryStmt(indent)
	case 8:
		if g.inLoop {
			// Guarded continue/break keeps loops terminating (the loop
			// variable advances in the header).
			if g.r.Intn(2) == 0 {
				return g.pad(indent) + "if (" + g.cond() + ") { continue; }\n"
			}
			return g.pad(indent) + "if (" + g.cond() + ") { break; }\n"
		}
		return g.assign(indent)
	default:
		return g.assign(indent)
	}
}

// assign mutates a random local (or declares a new one).
func (g *gen) assign(indent int) string {
	if len(g.locals) == 0 || g.r.Intn(6) == 0 {
		name := fmt.Sprintf("t%d_%d", g.depth, g.r.Intn(1000))
		// Avoid collisions: linear scan is fine at this scale.
		for _, l := range g.locals {
			if l == name {
				return g.assign(indent)
			}
		}
		// Generate the initializer before the name enters scope: a
		// declaration must not reference itself.
		init := g.expr(2)
		g.locals = append(g.locals, name)
		return fmt.Sprintf("%sint %s = %s;\n", g.pad(indent), name, init)
	}
	l := g.locals[g.r.Intn(len(g.locals))]
	return fmt.Sprintf("%s%s = %s;\n", g.pad(indent), l, g.expr(2))
}

// scoped emits a nested block and drops any locals it declared, mirroring
// MiniJava's block scoping.
func (g *gen) scoped(indent int) string {
	saved := len(g.locals)
	savedRO := len(g.ro)
	body := g.block(indent)
	g.locals = g.locals[:saved]
	g.ro = g.ro[:savedRO]
	return body
}

func (g *gen) ifStmt(indent int) string {
	g.depth++
	defer func() { g.depth-- }()
	s := g.pad(indent) + "if (" + g.cond() + ") {\n" + g.scoped(indent+1) + g.pad(indent) + "}"
	if g.r.Intn(2) == 0 {
		s += " else {\n" + g.scoped(indent+1) + g.pad(indent) + "}"
	}
	return s + "\n"
}

func (g *gen) forStmt(indent int) string {
	g.depth++
	wasInLoop := g.inLoop
	g.inLoop = true
	defer func() { g.depth--; g.inLoop = wasInLoop }()
	iv := fmt.Sprintf("i%d_%d", g.depth, g.r.Intn(1000))
	bound := g.r.Intn(g.conf.LoopBound) + 2
	savedLocals := len(g.locals)
	savedRO := len(g.ro)
	g.ro = append(g.ro, iv) // readable in the body, but never assignable
	body := g.block(indent + 1)
	s := fmt.Sprintf("%sfor (int %s = 0; %s < %d; %s = %s + 1) {\n%s%s}\n",
		g.pad(indent), iv, iv, bound, iv, iv, body, g.pad(indent))
	g.locals = g.locals[:savedLocals]
	g.ro = g.ro[:savedRO]
	return s
}

func (g *gen) switchStmt(indent int) string {
	g.depth++
	defer func() { g.depth-- }()
	tag := g.expr(1)
	n := g.r.Intn(3) + 2
	var b strings.Builder
	fmt.Fprintf(&b, "%sswitch ((%s) %% 7) {\n", g.pad(indent), tag)
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		v := g.r.Intn(13) - 6
		if used[v] {
			continue
		}
		used[v] = true
		fmt.Fprintf(&b, "%scase %d:\n%s", g.pad(indent), v, g.scoped(indent+1))
		if g.r.Intn(3) != 0 { // occasional fallthrough
			fmt.Fprintf(&b, "%s  break;\n", g.pad(indent))
		}
	}
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&b, "%sdefault:\n%s", g.pad(indent), g.scoped(indent+1))
	}
	fmt.Fprintf(&b, "%s}\n", g.pad(indent))
	return b.String()
}

func (g *gen) tryStmt(indent int) string {
	g.depth++
	defer func() { g.depth-- }()
	var b strings.Builder
	saved := len(g.locals)
	fmt.Fprintf(&b, "%stry {\n%s", g.pad(indent), g.block(indent+1))
	if g.r.Intn(2) == 0 {
		fmt.Fprintf(&b, "%s  if (%s) { throw new Err(%s); }\n", g.pad(indent), g.cond(), g.expr(1))
	}
	g.locals = g.locals[:saved] // try-body locals are out of scope in catch
	ev := fmt.Sprintf("e%d_%d", g.depth, g.r.Intn(1000))
	fmt.Fprintf(&b, "%s} catch (Err %s) {\n", g.pad(indent), ev)
	if len(g.locals) > 0 {
		l := g.locals[g.r.Intn(len(g.locals))]
		fmt.Fprintf(&b, "%s  %s = %s + %s.code;\n", g.pad(indent), l, l, ev)
	}
	fmt.Fprintf(&b, "%s}\n", g.pad(indent))
	return b.String()
}

// cond produces a boolean expression.
func (g *gen) cond() string {
	ops := []string{"<", "<=", ">", ">=", "==", "!="}
	c := fmt.Sprintf("(%s) %s (%s)", g.expr(1), ops[g.r.Intn(len(ops))], g.expr(1))
	if g.r.Intn(4) == 0 {
		join := "&&"
		if g.r.Intn(2) == 0 {
			join = "||"
		}
		c = fmt.Sprintf("%s %s (%s)", c, join, g.cond())
	}
	return c
}

// expr produces an int expression of bounded depth. Division and modulus
// get a forced-nonzero divisor.
func (g *gen) expr(depth int) string {
	if depth <= 0 || g.r.Intn(4) == 0 {
		return g.atom()
	}
	switch g.r.Intn(9) {
	case 0:
		return fmt.Sprintf("(%s + %s)", g.expr(depth-1), g.expr(depth-1))
	case 1:
		return fmt.Sprintf("(%s - %s)", g.expr(depth-1), g.expr(depth-1))
	case 2:
		return fmt.Sprintf("(%s * %s)", g.expr(depth-1), g.expr(depth-1))
	case 3:
		return fmt.Sprintf("(%s / ((%s & 15) + 1))", g.expr(depth-1), g.expr(depth-1))
	case 4:
		return fmt.Sprintf("(%s %% ((%s & 15) + 1))", g.expr(depth-1), g.expr(depth-1))
	case 5:
		return fmt.Sprintf("(%s ^ %s)", g.expr(depth-1), g.expr(depth-1))
	case 6:
		return fmt.Sprintf("(%s << %d)", g.expr(depth-1), g.r.Intn(8))
	case 7:
		return fmt.Sprintf("(%s >> %d)", g.expr(depth-1), g.r.Intn(8))
	default:
		if g.funcs > 0 {
			return fmt.Sprintf("f%d(%s, %s)", g.r.Intn(g.funcs), g.expr(depth-1), g.expr(depth-1))
		}
		return g.atom()
	}
}

func (g *gen) atom() string {
	readable := len(g.locals) + len(g.ro)
	if readable > 0 && g.r.Intn(3) != 0 {
		k := g.r.Intn(readable)
		if k < len(g.locals) {
			return g.locals[k]
		}
		return g.ro[k-len(g.locals)]
	}
	return fmt.Sprintf("%d", g.r.Intn(399)-199)
}
