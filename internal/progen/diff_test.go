package progen_test

import (
	"bytes"
	"testing"

	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/core"
	"repro/internal/minijava"
	"repro/internal/opt"
	"repro/internal/progen"
)

// runUnder executes a compiled program under one mode and returns output.
func runUnder(t *testing.T, prog *classfile.Program, pcfg *cfg.ProgramCFG, mode core.Mode) string {
	t.Helper()
	var out bytes.Buffer
	s, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode:     mode,
		Out:      &out,
		MaxSteps: 100_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(); err != nil {
		t.Fatalf("mode %s: %v", mode, err)
	}
	return out.String()
}

// TestDifferentialEnginesAndOptimizer is the pipeline's differential
// tester: for each random program, every engine and the optimized build
// must print exactly the same thing.
func TestDifferentialEnginesAndOptimizer(t *testing.T) {
	seeds := 60
	if testing.Short() {
		seeds = 10
	}
	modes := []core.Mode{core.ModePlain, core.ModeInstr, core.ModeProfile, core.ModeTrace, core.ModeTraceDeploy}
	for seed := int64(0); seed < int64(seeds); seed++ {
		src := progen.Generate(seed, progen.Config{})
		prog, err := minijava.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile failed: %v\nprogram:\n%s", seed, err, src)
		}
		pcfg, err := cfg.BuildProgram(prog)
		if err != nil {
			t.Fatalf("seed %d: cfg failed: %v", seed, err)
		}

		want := runUnder(t, prog, pcfg, core.ModePlain)
		for _, mode := range modes[1:] {
			if got := runUnder(t, prog, pcfg, mode); got != want {
				t.Errorf("seed %d: mode %s diverged:\nwant %q\ngot  %q\nprogram:\n%s",
					seed, mode, want, got, src)
			}
		}

		// Optimized build (fresh compile so the unoptimized runs above are
		// untouched).
		oprog, err := minijava.Compile(src)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := opt.Program(oprog); err != nil {
			t.Fatalf("seed %d: optimizer failed: %v\nprogram:\n%s", seed, err, src)
		}
		ocfg, err := cfg.BuildProgram(oprog)
		if err != nil {
			t.Fatalf("seed %d: cfg of optimized program failed: %v", seed, err)
		}
		if got := runUnder(t, oprog, ocfg, core.ModePlain); got != want {
			t.Errorf("seed %d: optimizer diverged:\nwant %q\ngot  %q\nprogram:\n%s",
				seed, want, got, src)
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	a := progen.Generate(7, progen.Config{})
	b := progen.Generate(7, progen.Config{})
	if a != b {
		t.Error("same seed produced different programs")
	}
	c := progen.Generate(8, progen.Config{})
	if a == c {
		t.Error("different seeds produced identical programs")
	}
}

func TestGeneratorProgramsCompile(t *testing.T) {
	for seed := int64(100); seed < 140; seed++ {
		src := progen.Generate(seed, progen.Config{Funcs: 5, MaxDepth: 4})
		if _, err := minijava.Compile(src); err != nil {
			t.Errorf("seed %d: %v\nprogram:\n%s", seed, err, src)
		}
	}
}
