// Package serve is the concurrent execution service over the trace-cache
// VM: a shared program registry (compile once, run many), a bounded worker
// pool with backpressure and per-request deadlines, and aggregated
// observability over every completed session.
//
// The layering contract that makes this safe: a linked *classfile.Program
// and its *cfg.ProgramCFG are immutable after linking — all mutable run
// state (operand stacks, heap, statics, profiler graph, trace cache) lives
// in the per-request core.Session. The registry therefore shares compiled
// programs freely across concurrent sessions, while every session gets its
// own profiler and trace cache, exactly as SableVM gives every thread its
// own dispatch state.
package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/analysis"
	"repro/internal/analysis/valueflow"
	"repro/internal/cfg"
	"repro/internal/classfile"
	"repro/internal/jasm"
	"repro/internal/minijava"
	"repro/internal/workload"
)

// SourceKind says how request source text is compiled.
type SourceKind uint8

const (
	// KindMiniJava compiles the source with the MiniJava frontend.
	KindMiniJava SourceKind = iota
	// KindJasm assembles the source with the jasm assembler.
	KindJasm
)

func (k SourceKind) String() string {
	switch k {
	case KindMiniJava:
		return "minijava"
	case KindJasm:
		return "jasm"
	}
	return "invalid"
}

// Compiled is one registry entry: a linked program plus its CFGs, shared
// read-only by every session that runs it.
type Compiled struct {
	// Key is the content hash the program is registered under.
	Key string
	// Name is a human label: the workload name, or "<kind>:<key prefix>"
	// for ad-hoc sources. Aggregated metrics are keyed by Name.
	Name string
	Prog *classfile.Program
	CFG  *cfg.ProgramCFG
	// Hints are the static dataflow facts computed once at registration and
	// shared by every session that runs the program (sessions only read
	// them).
	Hints *analysis.Hints
	// Facts are the whole-program value-flow facts (constants, decided
	// branches, nullness), computed once at registration alongside Hints.
	// They feed the Hints' decided-branch seeding and the guard oracle that
	// stamps traces with side-exit proofs; like Hints, they are immutable
	// and shared by every session.
	Facts *valueflow.Facts
}

const regShards = 16

// Registry caches compiled programs keyed by content hash behind an
// RWMutex-sharded map. Lookups are read-mostly and take only a shard read
// lock; a miss inserts a placeholder under the shard write lock and
// compiles outside it, so two concurrent first requests for the same
// program compile it once and a slow compile never blocks other shards.
type Registry struct {
	shards [regShards]regShard
	hits   atomic.Int64
	misses atomic.Int64

	// NoVerify skips bytecode verification of submitted sources. Set it
	// before the registry receives requests; built-in workloads are always
	// trusted and never verified here.
	NoVerify bool
}

type regShard struct {
	mu sync.RWMutex
	m  map[string]*regEntry
}

type regEntry struct {
	once sync.Once
	c    *Compiled
	err  error
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.shards {
		r.shards[i].m = make(map[string]*regEntry)
	}
	return r
}

func hashKey(domain string, body string) string {
	h := sha256.New()
	h.Write([]byte(domain))
	h.Write([]byte{0})
	h.Write([]byte(body))
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (r *Registry) shard(key string) *regShard {
	// Keys are hex, so the first byte is already uniformly distributed.
	return &r.shards[key[0]%regShards]
}

// lookup returns the entry for key, creating it if needed. The returned
// entry's compile function runs at most once across all callers.
func (r *Registry) lookup(key string) (*regEntry, bool) {
	s := r.shard(key)
	s.mu.RLock()
	e, ok := s.m[key]
	s.mu.RUnlock()
	if ok {
		return e, true
	}
	s.mu.Lock()
	e, ok = s.m[key]
	if !ok {
		e = &regEntry{}
		s.m[key] = e
	}
	s.mu.Unlock()
	return e, ok
}

func (r *Registry) resolve(key, name string, compile func() (*classfile.Program, *cfg.ProgramCFG, error)) (*Compiled, error) {
	e, hit := r.lookup(key)
	if hit {
		r.hits.Add(1)
	} else {
		r.misses.Add(1)
	}
	e.once.Do(func() {
		prog, pcfg, err := compile()
		if err != nil {
			e.err = err
			return
		}
		c := &Compiled{Key: key, Name: name, Prog: prog, CFG: pcfg}
		if pcfg != nil {
			c.Facts = valueflow.Compute(pcfg)
			c.Hints = analysis.ComputeHintsWithFacts(pcfg, c.Facts)
		}
		e.c = c
	})
	return e.c, e.err
}

// Source compiles (or returns cached) an ad-hoc source text.
func (r *Registry) Source(kind SourceKind, src string) (*Compiled, error) {
	key := hashKey(kind.String(), src)
	name := fmt.Sprintf("%s:%s", kind, key[:8])
	return r.resolve(key, name, func() (*classfile.Program, *cfg.ProgramCFG, error) {
		var (
			prog *classfile.Program
			err  error
		)
		switch kind {
		case KindMiniJava:
			prog, err = minijava.Compile(src)
		case KindJasm:
			prog, err = jasm.Assemble(src)
		default:
			return nil, nil, fmt.Errorf("serve: unknown source kind %d", kind)
		}
		if err != nil {
			return nil, nil, err
		}
		if !r.NoVerify {
			// Submitted bytecode is untrusted: reject structurally invalid
			// programs before they reach the dispatch engine. The rejection
			// (a *analysis.VerifyError carrying the full report) is cached
			// like any compile error, so resubmitting costs one map lookup.
			if rep := analysis.Verify(prog); rep.Reject() {
				return nil, nil, fmt.Errorf("serve: program rejected by verifier: %w", rep.Err())
			}
		}
		pcfg, err := cfg.BuildProgram(prog)
		if err != nil {
			return nil, nil, err
		}
		return prog, pcfg, nil
	})
}

// Workload compiles (or returns cached) a built-in benchmark by name.
func (r *Registry) Workload(name string) (*Compiled, error) {
	w, err := workload.ByName(name)
	if err != nil {
		return nil, err
	}
	key := hashKey("workload", w.Name)
	return r.resolve(key, w.Name, func() (*classfile.Program, *cfg.ProgramCFG, error) {
		return w.Compile()
	})
}

// Len reports the number of registered programs (including entries whose
// compilation failed; they cache the error).
func (r *Registry) Len() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.m)
		s.mu.RUnlock()
	}
	return n
}

// HitsMisses reports cache hit/miss totals since creation.
func (r *Registry) HitsMisses() (hits, misses int64) {
	return r.hits.Load(), r.misses.Load()
}
