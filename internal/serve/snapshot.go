package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/faultinject/crash"
	"repro/internal/obs"
	"repro/internal/snapshot"
)

// snapStore is the service's profile-persistence layer: the warm-start cache
// of per-program learned state and the coalescing writer that commits it.
//
// Sessions are per-request, so learned state would die with each run; the
// store retains the latest export per program key and seeds it into every
// later profiled session of the same program — the in-memory warm path. The
// durable path follows the coalescing-commit discipline (ROADMAP item 3):
// runs accumulate a per-program learning delta, and the background writer
// commits a program's snapshot when the accumulated delta crosses the net
// threshold or the interval elapses, never per run — keeping disk I/O off
// the request path and amortizing bursts into single writes.
//
// Store operations happen at session construction/teardown and in the
// writer goroutine; nothing here is ever called from the dispatch hot path.
type snapStore struct {
	dir      string
	interval time.Duration
	net      int64
	ring     *obs.Ring

	// exporter, when set (sharded profiling), produces the freshest learned
	// state for a program at commit time: each commit is a phase boundary
	// that pulls an epoch merge on demand. Runs then only accumulate deltas
	// (noteDirty) and never export. wait asks the merge to wait for busy
	// shards — true only on the final drain commit, when the workers have
	// exited. A nil return (no shard set, or nothing absorbed) falls back to
	// the entry's stored snapshot. Set once before the service starts; called
	// only outside st.mu.
	exporter func(key string, wait bool) *snapshot.Snapshot

	// journal counts store-level lifecycle events (saves, rejections);
	// session-level loads are counted by the sessions themselves.
	journal snapshot.Journal

	mu      sync.Mutex
	entries map[string]*snapEntry

	wake    chan struct{}
	stopped chan struct{}
	done    chan struct{}
}

// snapEntry is one program's persistence state.
type snapEntry struct {
	name string
	snap *snapshot.Snapshot
	// dirty accumulates the learning delta since the last commit; the
	// writer commits when it crosses the store's net threshold or on the
	// interval tick.
	dirty int64
	// loadTried marks the one-time disk probe (hit or miss), so a program
	// with no stored snapshot costs one stat per process, not per request.
	loadTried bool
}

// snapExt is the on-disk suffix; files are named <programKey>.tsnap.
const snapExt = ".tsnap"

const (
	defaultSnapshotInterval = 30 * time.Second
	defaultSnapshotNet      = 512
)

// newSnapStore builds the store and starts its writer. dir must be non-empty.
func newSnapStore(dir string, interval time.Duration, net int64, ring *obs.Ring) *snapStore {
	if interval <= 0 {
		interval = defaultSnapshotInterval
	}
	if net <= 0 {
		net = defaultSnapshotNet
	}
	_ = os.MkdirAll(dir, 0o755)
	st := &snapStore{
		dir:      dir,
		interval: interval,
		net:      net,
		ring:     ring,
		entries:  make(map[string]*snapEntry),
		wake:     make(chan struct{}, 1),
		stopped:  make(chan struct{}),
		done:     make(chan struct{}),
	}
	st.scrub()
	go st.flushLoop()
	return st
}

// scrub is the self-healing startup pass: before the store trusts a snapshot
// directory the process may have crashed over, every .tsnap file is
// decode-validated and corrupt ones are quarantined to .corrupt sidecars —
// a poisoned file must cost one counter bump and an event, never a failed
// warm start or silently loaded garbage.
func (st *snapStore) scrub() {
	rep, err := snapshot.ScrubDir(st.dir, true)
	if err != nil {
		return // an unreadable directory will surface on the first lookup
	}
	for _, f := range rep.Corrupt {
		st.journal.Quarantined()
		var size int64
		if f.Quarantined != "" {
			if fi, err := os.Stat(f.Quarantined); err == nil {
				size = fi.Size()
			}
		}
		st.emit(obs.EvSnapshotQuarantined, filepath.Base(f.Path), size)
	}
}

// validKey accepts only registry-style content-hash keys as file name
// material; anything else (in particular a hostile PUT body) is refused
// rather than spliced into a path.
func validKey(key string) bool {
	if key == "" || len(key) > 128 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		switch {
		case c >= '0' && c <= '9', c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '-', c == '_':
		default:
			return false
		}
	}
	return true
}

func (st *snapStore) fileFor(key string) string {
	return filepath.Join(st.dir, key+snapExt)
}

// lookup returns the warm snapshot for a program key, probing the snapshot
// directory once per key ("first sight of a known hash"). Returns nil when
// nothing valid is stored.
func (st *snapStore) lookup(key, name string) *snapshot.Snapshot {
	if !validKey(key) {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entry(key, name)
	if e.snap != nil || e.loadTried {
		return e.snap
	}
	e.loadTried = true
	data, err := os.ReadFile(st.fileFor(key))
	if err != nil {
		if !errors.Is(err, fs.ErrNotExist) {
			st.reject(name)
		}
		return nil
	}
	snap, err := snapshot.Decode(data)
	if err == nil {
		err = snap.VerifyKey(key)
	}
	if err != nil {
		st.reject(name)
		return nil
	}
	e.snap = snap
	st.emit(obs.EvSnapshotLoaded, name, int64(len(snap.Nodes)))
	return snap
}

// entry returns (creating) the record for key. Callers hold the lock.
func (st *snapStore) entry(key, name string) *snapEntry {
	e := st.entries[key]
	if e == nil {
		e = &snapEntry{name: name}
		st.entries[key] = e
	}
	if e.name == "" {
		e.name = name
	}
	return e
}

// update replaces a program's warm snapshot after a run and accumulates its
// learning delta toward the commit threshold.
func (st *snapStore) update(key, name string, snap *snapshot.Snapshot, delta int64) {
	if snap == nil || !validKey(key) {
		return
	}
	if delta < 1 {
		delta = 1
	}
	st.mu.Lock()
	e := st.entry(key, name)
	e.snap = snap
	e.loadTried = true
	e.dirty += delta
	over := e.dirty >= st.net
	st.mu.Unlock()
	if over {
		st.kick()
	}
}

// noteDirty accumulates a sharded run's learning delta toward the commit
// threshold without touching the warm snapshot — the exporter supplies the
// actual state when the writer commits.
func (st *snapStore) noteDirty(key, name string, delta int64) {
	if !validKey(key) {
		return
	}
	if delta < 1 {
		delta = 1
	}
	st.mu.Lock()
	e := st.entry(key, name)
	e.dirty += delta
	over := e.dirty >= st.net
	st.mu.Unlock()
	if over {
		st.kick()
	}
}

// install adopts an externally supplied snapshot (PUT /v1/snapshot) as the
// program's warm state and schedules it for commit.
func (st *snapStore) install(snap *snapshot.Snapshot) error {
	if !validKey(snap.ProgramKey) {
		return fmt.Errorf("%w: unusable program key %q", snapshot.ErrCorrupt, snap.ProgramKey)
	}
	st.mu.Lock()
	e := st.entry(snap.ProgramKey, snap.Program)
	e.snap = snap
	e.loadTried = true
	e.dirty += st.net // an explicit install always commits at the next wake
	st.mu.Unlock()
	st.emit(obs.EvSnapshotLoaded, snap.Program, int64(len(snap.Nodes)))
	st.kick()
	return nil
}

// kick nudges the writer without blocking; a pending nudge is enough.
func (st *snapStore) kick() {
	select {
	case st.wake <- struct{}{}:
	default:
	}
}

// encoded returns the serialized warm snapshot for key. Under sharded
// profiling it asks the exporter for a fresh merged view first — a snapshot
// GET should see the live learned state, not the last commit — and falls
// back to the stored entry (probing disk like lookup does) when the
// coordinator has nothing for the key.
func (st *snapStore) encoded(key, name string) ([]byte, bool) {
	if st.exporter != nil && validKey(key) {
		if snap := st.exporter(key, false); snap != nil {
			st.adopt(key, name, snap)
			return snapshot.Encode(snap), true
		}
	}
	snap := st.lookup(key, name)
	if snap == nil {
		return nil, false
	}
	return snapshot.Encode(snap), true
}

// adopt stores a freshly merged snapshot as the entry's warm state.
func (st *snapStore) adopt(key, name string, snap *snapshot.Snapshot) {
	st.mu.Lock()
	e := st.entry(key, name)
	e.snap = snap
	e.loadTried = true
	st.mu.Unlock()
}

// reject counts one refused snapshot and emits its event.
func (st *snapStore) reject(name string) {
	st.journal.Rejected()
	st.emit(obs.EvSnapshotRejected, name, 0)
}

func (st *snapStore) emit(typ obs.EventType, program string, val int64) {
	st.ring.Emit(obs.Event{
		Type: typ,
		X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
		Val: val, Program: program,
	})
}

// gauges reports (programs with a warm snapshot, programs with uncommitted
// deltas) for the stats snapshot.
func (st *snapStore) gauges() (programs, pending int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for _, e := range st.entries {
		if e.snap != nil {
			programs++
		}
		if e.dirty > 0 {
			pending++
		}
	}
	return programs, pending
}

// flushLoop is the coalescing writer: one goroutine, committing on the
// interval tick or when an accumulated delta crosses the net threshold.
func (st *snapStore) flushLoop() {
	defer close(st.done)
	t := time.NewTicker(st.interval)
	defer t.Stop()
	for {
		select {
		case <-st.stopped:
			return
		case <-t.C:
			st.flush(false, false)
		case <-st.wake:
			st.flush(true, false)
		}
	}
}

// flush commits dirty entries: every entry past the net threshold, plus —
// on interval ticks and the final drain — everything dirty at all. With an
// exporter attached, each committed entry's state is pulled fresh (an epoch
// merge) at this moment; wait is forwarded to it and is true only on the
// drain commit. Encoding, exporting and file I/O happen outside the entry
// lock; an entry that yields nothing committable (busy shards, failed write)
// is re-marked dirty so the next cycle retries it.
func (st *snapStore) flush(thresholdOnly, wait bool) {
	type pending struct {
		key, name string
		snap      *snapshot.Snapshot
		delta     int64
	}
	var work []pending
	st.mu.Lock()
	for key, e := range st.entries {
		if e.dirty == 0 || (thresholdOnly && e.dirty < st.net) {
			continue
		}
		if e.snap == nil && st.exporter == nil {
			continue
		}
		work = append(work, pending{key: key, name: e.name, snap: e.snap, delta: e.dirty})
		e.dirty = 0
	}
	st.mu.Unlock()

	requeue := func(key string, delta int64) {
		st.mu.Lock()
		if e := st.entries[key]; e != nil {
			e.dirty += delta
		}
		st.mu.Unlock()
	}
	for _, w := range work {
		snap := w.snap
		if st.exporter != nil {
			if m := st.exporter(w.key, wait); m != nil {
				snap = m
				st.adopt(w.key, w.name, m)
			}
		}
		if snap == nil {
			requeue(w.key, w.delta)
			continue
		}
		if err := snapshot.WriteAtomic(st.fileFor(w.key), snapshot.Encode(snap)); err != nil {
			requeue(w.key, w.delta)
			continue
		}
		// Crash point: the commit is durable but unaccounted — restart must
		// warm-start from exactly this file.
		crash.Here(crash.PointSnapshotCommit)
		st.journal.Saved()
		st.emit(obs.EvSnapshotSaved, w.name, int64(len(snap.Nodes)))
	}
}

// close stops the writer and performs the final save-on-drain commit. The
// workers have exited by now, so the drain flush may wait on every shard.
func (st *snapStore) close() {
	close(st.stopped)
	<-st.done
	st.flush(false, true)
}

// SnapshotEnabled reports whether the service was configured with profile
// persistence (Config.SnapshotDir).
func (s *Service) SnapshotEnabled() bool { return s.snaps != nil }

// SnapshotBytes returns the encoded warm snapshot for a registry key,
// probing the snapshot directory if the program has not been seen yet.
// The second result is false when persistence is disabled or nothing valid
// is stored for the key.
func (s *Service) SnapshotBytes(key string) ([]byte, bool) {
	if s.snaps == nil {
		return nil, false
	}
	return s.snaps.encoded(key, "")
}

// InstallSnapshot decodes, validates and adopts a serialized snapshot as a
// program's warm state (the PUT /v1/snapshot path), scheduling it for
// commit. The returned snapshot describes what was installed. Rejections
// are counted and emitted like any other refused snapshot.
func (s *Service) InstallSnapshot(data []byte) (*snapshot.Snapshot, error) {
	if s.snaps == nil {
		return nil, errors.New("serve: snapshot persistence disabled")
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		s.snaps.reject("")
		return nil, err
	}
	if err := s.snaps.install(snap); err != nil {
		s.snaps.reject(snap.Program)
		return nil, err
	}
	return snap, nil
}
