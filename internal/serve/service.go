package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Sentinel errors of the request path.
var (
	// ErrQueueFull is the backpressure signal: the request queue is at
	// capacity and the request was refused without queueing. Callers
	// should shed load or retry with delay.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed means the service is draining or closed.
	ErrClosed = errors.New("serve: service closed")
)

// Config sizes a Service.
type Config struct {
	// Workers is the number of concurrent sessions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-request queue beyond the running
	// sessions (default 4×Workers). A full queue rejects with
	// ErrQueueFull rather than blocking the submitter.
	QueueDepth int
	// DefaultTimeout applies to requests that set none (0 = no deadline).
	DefaultTimeout time.Duration
	// MaxSteps is a hard per-request instruction cap; request budgets are
	// clamped to it (0 = unlimited).
	MaxSteps int64
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
}

// Request is one execution order. Exactly one of Workload (a built-in
// benchmark name) or Source (inline program text compiled per Kind) must be
// set. Zero-valued tuning fields take the service/profiler defaults.
type Request struct {
	Workload string
	Source   string
	Kind     SourceKind

	// Mode is the dispatch configuration (zero value: ModePlain).
	Mode core.Mode
	// Threshold overrides the trace completion threshold when non-zero.
	Threshold float64
	// StartDelay overrides the start-state delay when non-zero.
	StartDelay int32
	// DecayInterval overrides the decay period when non-zero.
	DecayInterval uint32
	// MaxSteps bounds the run's instruction count (clamped to the service
	// cap when that is set).
	MaxSteps int64
	// Timeout overrides Config.DefaultTimeout when non-zero.
	Timeout time.Duration
}

// Response is one completed run.
type Response struct {
	// Program and Key identify the registry entry that ran.
	Program string
	Key     string
	Mode    core.Mode
	// Output is everything the program printed.
	Output string
	// Counters is a quiescent snapshot of the session's raw event record;
	// Metrics are its derived §5.2 values.
	Counters stats.Counters
	Metrics  stats.Metrics
	// NumTraces is the live trace cache size at exit (0 in plain modes).
	NumTraces int
	// BCGNodes is the number of branch contexts discovered (0 in plain
	// modes).
	BCGNodes int
	// Wall is the session execution time (queueing excluded).
	Wall time.Duration
}

// Service is the concurrent execution service: a program registry shared by
// a bounded pool of session workers, with aggregated metrics. Create with
// New, submit with Do from any number of goroutines, observe with Stats,
// and Close to drain.
type Service struct {
	cfg Config
	reg *Registry
	agg *aggregator

	jobs chan *job
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	// execHook, when non-nil, runs at the top of every session execution;
	// tests use it to inject faults (panics, delays) into workers.
	execHook func(Request)
}

// Job ownership states: a queued job is claimed either by a worker (which
// then publishes the result) or by its submitter's expired context (which
// then accounts the timeout); the CAS decides races exactly once.
const (
	jobPending int32 = iota
	jobRunning
	jobAbandoned
)

type job struct {
	req       Request
	comp      *Compiled
	interrupt atomic.Bool
	state     atomic.Int32
	enqueued  time.Time

	resp *Response
	err  error
	done chan struct{}
}

// New starts a service with cfg.Workers session workers.
func New(cfg Config) *Service {
	cfg.fillDefaults()
	s := &Service{
		cfg:  cfg,
		reg:  NewRegistry(),
		agg:  newAggregator(),
		jobs: make(chan *job, cfg.QueueDepth),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry exposes the shared program registry (e.g. for pre-warming).
func (s *Service) Registry() *Registry { return s.reg }

// resolve maps the request to a registry entry, compiling on first use.
func (s *Service) resolve(req Request) (*Compiled, error) {
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, errors.New("serve: request sets both Workload and Source")
	case req.Workload != "":
		return s.reg.Workload(req.Workload)
	case req.Source != "":
		return s.reg.Source(req.Kind, req.Source)
	}
	return nil, errors.New("serve: request names no program")
}

// Do executes one request and blocks until it finishes, fails, or the
// context/deadline cancels it. It is safe for concurrent use. A deadline
// that fires mid-run interrupts the session at the next block boundary, so
// a runaway program costs at most one dispatch beyond its budget; if the
// run completed before the cancellation was noticed its result is returned.
func (s *Service) Do(ctx context.Context, req Request) (*Response, error) {
	comp, err := s.resolve(req)
	if err != nil {
		s.agg.compileError()
		return nil, err
	}
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	j := &job{req: req, comp: comp, enqueued: time.Now(), done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
		s.agg.accept()
	default:
		s.mu.RUnlock()
		s.agg.reject()
		return nil, ErrQueueFull
	}

	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		j.interrupt.Store(true)
		if j.state.CompareAndSwap(jobPending, jobAbandoned) {
			// Never started; the dequeueing worker will discard it.
			s.agg.timeout(time.Since(j.enqueued))
			return nil, fmt.Errorf("serve: cancelled while queued: %w", ctx.Err())
		}
		// A worker owns it; the interrupt stops the session at the next
		// block boundary.
		<-j.done
		if j.err == nil {
			return j.resp, nil
		}
		return nil, fmt.Errorf("serve: cancelled while running: %w", ctx.Err())
	}
}

// Stats returns a self-contained snapshot of the aggregated metrics,
// readable at any time while the pool runs.
func (s *Service) Stats() Snapshot {
	snap := s.agg.snapshot()
	snap.QueueDepth = len(s.jobs)
	snap.Workers = s.cfg.Workers
	snap.Programs = s.reg.Len()
	snap.RegistryHits, snap.RegistryMisses = s.reg.HitsMisses()
	return snap
}

// Close drains the service: new submissions fail with ErrClosed, queued and
// running requests finish normally, and Close returns once every worker has
// exited. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// worker is one pool goroutine: it claims jobs, runs sessions, publishes
// results, and accounts outcomes. A panicking session is contained by
// runJob, so one bad program cannot take the service down.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if !j.state.CompareAndSwap(jobPending, jobRunning) {
			continue // abandoned while queued; submitter accounted it
		}
		resp, err := s.runJob(j)
		j.resp, j.err = resp, err
		lat := time.Since(j.enqueued)
		switch {
		case err == nil:
			s.agg.complete(j.comp.Name, &resp.Counters, lat)
		case isInterrupt(err):
			s.agg.timeout(lat)
		default:
			var pe *panicError
			s.agg.fail(lat, errors.As(err, &pe))
		}
		close(j.done)
	}
}

// isInterrupt reports whether err is the host-cancellation trap.
func isInterrupt(err error) bool {
	t, ok := vm.AsTrap(err)
	return ok && t.Kind == vm.TrapInterrupted
}

// panicError wraps a recovered session panic.
type panicError struct {
	val any
}

func (e *panicError) Error() string { return fmt.Sprintf("serve: session panic: %v", e.val) }

// runJob executes one session, recovering panics into errors.
func (s *Service) runJob(j *job) (resp *Response, err error) {
	defer func() {
		if r := recover(); r != nil {
			resp, err = nil, &panicError{val: r}
		}
	}()
	if s.execHook != nil {
		s.execHook(j.req)
	}

	params := profile.DefaultParams()
	if j.req.Threshold != 0 {
		params.Threshold = j.req.Threshold
	}
	if j.req.StartDelay != 0 {
		params.StartDelay = j.req.StartDelay
	}
	if j.req.DecayInterval != 0 {
		params.DecayInterval = j.req.DecayInterval
	}
	maxSteps := j.req.MaxSteps
	if s.cfg.MaxSteps > 0 && (maxSteps == 0 || maxSteps > s.cfg.MaxSteps) {
		maxSteps = s.cfg.MaxSteps
	}

	var out bytes.Buffer
	sess, err := core.NewSession(j.comp.Prog, j.comp.CFG, core.SessionOptions{
		Mode:      j.req.Mode,
		Params:    params,
		Out:       &out,
		MaxSteps:  maxSteps,
		Interrupt: &j.interrupt,
	})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sess.Run(); err != nil {
		return nil, err
	}
	resp = &Response{
		Program:  j.comp.Name,
		Key:      j.comp.Key,
		Mode:     j.req.Mode,
		Output:   out.String(),
		Counters: sess.Counters.Snapshot(),
		Metrics:  sess.Metrics(),
		Wall:     time.Since(start),
	}
	if sess.Cache != nil {
		resp.NumTraces = sess.Cache.NumTraces()
	}
	if sess.Graph != nil {
		resp.BCGNodes = sess.Graph.NumNodes()
	}
	return resp, nil
}
