package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/replay"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Sentinel errors of the request path.
var (
	// ErrQueueFull is the backpressure signal: the request queue is at
	// capacity and the request was refused without queueing. Callers
	// should shed load or retry with delay.
	ErrQueueFull = errors.New("serve: request queue full")
	// ErrClosed means the service is draining or closed.
	ErrClosed = errors.New("serve: service closed")
	// ErrQuarantined means the program has panicked the VM too many times
	// and the service refuses to run it again.
	ErrQuarantined = errors.New("serve: program quarantined after repeated panics")
)

// Config sizes a Service.
type Config struct {
	// Workers is the number of concurrent sessions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the pending-request queue beyond the running
	// sessions (default 4×Workers). A full queue rejects with
	// ErrQueueFull rather than blocking the submitter.
	QueueDepth int
	// DefaultTimeout applies to requests that set none (0 = no deadline).
	DefaultTimeout time.Duration
	// MaxSteps is a hard per-request instruction cap; request budgets are
	// clamped to it (0 = unlimited).
	MaxSteps int64
	// TraceCache configures every session's trace constructor; its
	// MaxTraces/MaxCachedBlocks budgets bound per-session cache growth
	// (zero values: unbounded, paper defaults for the rest).
	TraceCache core.Config
	// Breaker configures the per-program churn circuit breaker
	// (Breaker.ChurnPerK == 0 disables it).
	Breaker BreakerConfig
	// QuarantineAfter rejects a program with ErrQuarantined once it has
	// panicked the VM this many times (default 3; negative disables).
	QuarantineAfter int
	// Clock substitutes the time source for breaker cool-downs; tests use
	// a manual clock for deterministic transitions (default time.Now).
	Clock func() time.Time
	// Injector, when non-nil, interposes on every run (see Injector). The
	// fault-injection harness is its only intended user.
	Injector Injector
	// NoVerify disables bytecode verification of submitted sources (the
	// default is to verify and refuse invalid programs before they are
	// registered).
	NoVerify bool
	// EventTrace is the capacity of the service's shared observability ring
	// (0 disables event tracing). Sessions, breakers and the request path
	// all emit into it; read a tail with Events. The ring is preallocated
	// and emission never allocates, so an enabled trace on an idle or
	// steady-state service costs nothing.
	EventTrace int
	// SnapshotDir enables profile persistence: each program's learned state
	// (BCG nodes, traces, loop headers) is retained across requests, seeds
	// later sessions of the same program, and is committed to this directory
	// by a coalescing background writer. Empty disables persistence.
	SnapshotDir string
	// SnapshotInterval is the persistence writer's commit period
	// (default 30s).
	SnapshotInterval time.Duration
	// SnapshotNet is the accumulated per-program learning delta (new nodes,
	// signals, trace builds and retirements) that forces a commit before the
	// interval elapses — the coalescing net threshold (default 512).
	SnapshotNet int64
	// Recorder, when non-nil, receives every resolved submission as a
	// replay.Record — the record/replay tap. Refused requests (backpressure)
	// are recorded too: the log is a transcript of offered traffic.
	Recorder *replay.Recorder
	// EpochRuns is the epoch length of the sharded profiling path. Every
	// worker owns a private BCG profiler per program (a shard) whose learned
	// state persists across that worker's requests, and the epoch coordinator
	// merges a program's shards into a globally derived view every EpochRuns
	// profiled runs of that program — plus on breaker trips, snapshot-writer
	// commits, and drain. Default 32. Negative disables sharding and restores
	// the fully isolated per-request profiler (each profiled run then builds,
	// and discards, its own graph).
	EpochRuns int64
}

func (c *Config) fillDefaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QuarantineAfter == 0 {
		c.QuarantineAfter = 3
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.EpochRuns == 0 {
		c.EpochRuns = 32
	}
	c.Breaker.fillDefaults()
}

// Request is one execution order. Exactly one of Workload (a built-in
// benchmark name) or Source (inline program text compiled per Kind) must be
// set. Zero-valued tuning fields take the service/profiler defaults.
type Request struct {
	Workload string
	Source   string
	Kind     SourceKind

	// Mode is the dispatch configuration (zero value: ModePlain).
	Mode core.Mode
	// Threshold overrides the trace completion threshold when non-zero.
	Threshold float64
	// StartDelay overrides the start-state delay when non-zero.
	StartDelay int32
	// DecayInterval overrides the decay period when non-zero.
	DecayInterval uint32
	// MaxSteps bounds the run's instruction count (clamped to the service
	// cap when that is set).
	MaxSteps int64
	// Timeout overrides Config.DefaultTimeout when non-zero.
	Timeout time.Duration
}

// Response is one completed run.
type Response struct {
	// Program and Key identify the registry entry that ran.
	Program string
	Key     string
	Mode    core.Mode
	// Output is everything the program printed.
	Output string
	// Counters is a quiescent snapshot of the session's raw event record;
	// Metrics are its derived §5.2 values.
	Counters stats.Counters
	Metrics  stats.Metrics
	// NumTraces is the live trace cache size at exit (0 in plain modes).
	NumTraces int
	// BCGNodes is the number of branch contexts discovered (0 in plain
	// modes).
	BCGNodes int
	// CachedBlocks is the total block count held by live traces at exit.
	CachedBlocks int
	// Demoted reports that the churn breaker forced this run down to plain
	// block dispatch; when set, Mode records the effective (plain) mode.
	Demoted bool
	// Wall is the session execution time (queueing excluded).
	Wall time.Duration
}

// Service is the concurrent execution service: a program registry shared by
// a bounded pool of session workers, with aggregated metrics. Create with
// New, submit with Do from any number of goroutines, observe with Stats,
// and Close to drain.
type Service struct {
	cfg Config
	reg *Registry
	agg *aggregator

	// ring is the shared event trace (nil when Config.EventTrace == 0).
	ring *obs.Ring

	// snaps is the profile-persistence store (nil when Config.SnapshotDir
	// is empty).
	snaps *snapStore

	// epochs coordinates the per-worker profiler shards and their epoch
	// merges (nil when Config.EpochRuns is negative).
	epochs *epochCoordinator

	jobs chan *job
	wg   sync.WaitGroup

	mu     sync.RWMutex
	closed bool

	// breakers holds one churn breaker per registry entry, keyed by
	// Compiled.Key; nil map when the breaker is disabled.
	bmu      sync.Mutex
	breakers map[string]*breaker

	// panics counts recovered session panics per registry entry for the
	// quarantine decision.
	qmu    sync.Mutex
	panics map[string]int
}

// Job ownership states: a queued job is claimed either by a worker (which
// then publishes the result) or by its submitter's expired context (which
// then accounts the timeout); the CAS decides races exactly once.
const (
	jobPending int32 = iota
	jobRunning
	jobAbandoned
)

type job struct {
	req       Request
	comp      *Compiled
	interrupt atomic.Bool
	state     atomic.Int32
	enqueued  time.Time

	resp *Response
	err  error
	done chan struct{}
}

// New starts a service with cfg.Workers session workers.
func New(cfg Config) *Service {
	cfg.fillDefaults()
	s := &Service{
		cfg:    cfg,
		reg:    NewRegistry(),
		agg:    newAggregator(),
		jobs:   make(chan *job, cfg.QueueDepth),
		panics: make(map[string]int),
	}
	if cfg.EventTrace > 0 {
		s.ring = obs.NewRing(cfg.EventTrace)
	}
	if cfg.SnapshotDir != "" {
		s.snaps = newSnapStore(cfg.SnapshotDir, cfg.SnapshotInterval, cfg.SnapshotNet, s.ring)
	}
	if cfg.EpochRuns > 0 {
		s.epochs = newEpochCoordinator(cfg.Workers, cfg.EpochRuns, cfg.TraceCache, s.ring, s.snaps)
		if s.snaps != nil {
			// Shard runs never export; the snapshot writer pulls a fresh
			// merged view at commit time instead.
			s.snaps.exporter = s.epochs.exportForCommit
		}
	}
	s.reg.NoVerify = cfg.NoVerify
	if cfg.Breaker.ChurnPerK > 0 {
		s.breakers = make(map[string]*breaker)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker(i)
	}
	return s
}

// Registry exposes the shared program registry (e.g. for pre-warming).
func (s *Service) Registry() *Registry { return s.reg }

// resolve maps the request to a registry entry, compiling on first use.
func (s *Service) resolve(req Request) (*Compiled, error) {
	switch {
	case req.Workload != "" && req.Source != "":
		return nil, errors.New("serve: request sets both Workload and Source")
	case req.Workload != "":
		return s.reg.Workload(req.Workload)
	case req.Source != "":
		return s.reg.Source(req.Kind, req.Source)
	}
	return nil, errors.New("serve: request names no program")
}

// breakerFor returns the program's churn breaker, creating it on first use;
// nil when the breaker is disabled.
func (s *Service) breakerFor(comp *Compiled) *breaker {
	if s.breakers == nil {
		return nil
	}
	s.bmu.Lock()
	defer s.bmu.Unlock()
	b := s.breakers[comp.Key]
	if b == nil {
		b = &breaker{cfg: s.cfg.Breaker, name: comp.Name, sink: s.ring}
		s.breakers[comp.Key] = b
	}
	return b
}

// Events returns the newest n events from the service's shared ring, oldest
// first, optionally filtered: typ obs.EvNone matches every type, an empty
// program matches every program, n <= 0 means everything held. Nil when
// event tracing is disabled.
func (s *Service) Events(n int, typ obs.EventType, program string) []obs.Event {
	if s.ring == nil {
		return nil
	}
	if typ == obs.EvNone && program == "" {
		return s.ring.Tail(nil, n)
	}
	return s.ring.TailFunc(nil, n, func(e obs.Event) bool {
		return (typ == obs.EvNone || e.Type == typ) && (program == "" || e.Program == program)
	})
}

// EventRing exposes the shared ring (nil when tracing is disabled), for
// accounting endpoints that report totals without copying events.
func (s *Service) EventRing() *obs.Ring { return s.ring }

// quarantined reports whether the program's panic count has crossed the
// quarantine threshold.
func (s *Service) quarantined(comp *Compiled) bool {
	if s.cfg.QuarantineAfter < 0 {
		return false
	}
	s.qmu.Lock()
	defer s.qmu.Unlock()
	return s.panics[comp.Key] >= s.cfg.QuarantineAfter
}

// notePanic records one recovered session panic against the program,
// emitting the quarantine event at the exact crossing of the threshold.
func (s *Service) notePanic(comp *Compiled) {
	s.qmu.Lock()
	s.panics[comp.Key]++
	n := s.panics[comp.Key]
	s.qmu.Unlock()
	if s.cfg.QuarantineAfter >= 0 && n == s.cfg.QuarantineAfter {
		s.ring.Emit(obs.Event{
			Type: obs.EvQuarantine,
			X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
			Val: int64(n), Program: comp.Name,
		})
	}
}

// churnPerK converts one run's counters to the breaker's churn metric:
// trace construct+retire events per 1000 block dispatches.
func churnPerK(ctr *stats.Counters) float64 {
	d := ctr.BlockDispatches
	if d < 1 {
		d = 1
	}
	return 1000 * float64(ctr.TracesBuilt+ctr.TracesRetired) / float64(d)
}

// Do executes one request and blocks until it finishes, fails, or the
// context/deadline cancels it. It is safe for concurrent use. A deadline
// that fires mid-run interrupts the session at the next block boundary, so
// a runaway program costs at most one dispatch beyond its budget; if the
// run completed before the cancellation was noticed its result is returned.
func (s *Service) Do(ctx context.Context, req Request) (*Response, error) {
	comp, err := s.resolve(req)
	if err != nil {
		var verr *analysis.VerifyError
		if errors.As(err, &verr) {
			s.agg.verifyReject()
		} else {
			s.agg.compileError()
		}
		return nil, err
	}
	if s.quarantined(comp) {
		s.agg.quarantined()
		return nil, fmt.Errorf("serve: program %q: %w", comp.Name, ErrQuarantined)
	}
	s.record(req, comp.Key)
	timeout := req.Timeout
	if timeout == 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	j := &job{req: req, comp: comp, enqueued: time.Now(), done: make(chan struct{})}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		return nil, ErrClosed
	}
	select {
	case s.jobs <- j:
		s.mu.RUnlock()
		s.agg.accept()
	default:
		s.mu.RUnlock()
		s.agg.reject()
		s.ring.Emit(obs.Event{
			Type: obs.EvQueueSaturated,
			X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
			Val: int64(len(s.jobs)), Program: comp.Name,
		})
		return nil, ErrQueueFull
	}

	select {
	case <-j.done:
		return j.resp, j.err
	case <-ctx.Done():
		j.interrupt.Store(true)
		if j.state.CompareAndSwap(jobPending, jobAbandoned) {
			// Never started; the dequeueing worker will discard it.
			s.agg.timeout(time.Since(j.enqueued))
			return nil, fmt.Errorf("serve: cancelled while queued: %w", ctx.Err())
		}
		// A worker owns it; the interrupt stops the session at the next
		// block boundary.
		<-j.done
		if j.err == nil {
			return j.resp, nil
		}
		return nil, fmt.Errorf("serve: cancelled while running: %w", ctx.Err())
	}
}

// Metrics returns the derived §5.2 values of the merged counters of every
// completed session — the same accessor signature a single repro.VM has, so
// callers can treat one machine and a whole service interchangeably.
func (s *Service) Metrics() stats.Metrics { return s.agg.globalMetrics() }

// Stats returns a self-contained snapshot of the aggregated metrics,
// readable at any time while the pool runs.
func (s *Service) Stats() Snapshot {
	snap := s.agg.snapshot()
	snap.QueueDepth = len(s.jobs)
	snap.QueueCap = s.cfg.QueueDepth
	snap.Workers = s.cfg.Workers
	if s.ring != nil {
		snap.EventCap = s.ring.Cap()
		snap.EventsHeld = s.ring.Len()
		snap.EventsTotal = s.ring.Total()
	}
	snap.Programs = s.reg.Len()
	snap.RegistryHits, snap.RegistryMisses = s.reg.HitsMisses()
	snap.RecordedRequests = int64(s.cfg.Recorder.Len())
	s.mu.RLock()
	snap.Draining = s.closed
	s.mu.RUnlock()

	if s.breakers != nil {
		states := make(map[string]string)
		s.bmu.Lock()
		for _, b := range s.breakers {
			b.snapshotInto(&snap, states)
		}
		s.bmu.Unlock()
		for name, st := range states {
			p := snap.PerProgram[name]
			p.Breaker = st
			snap.PerProgram[name] = p
		}
	}
	if s.cfg.QuarantineAfter >= 0 {
		s.qmu.Lock()
		for _, n := range s.panics {
			if n >= s.cfg.QuarantineAfter {
				snap.QuarantinedPrograms++
			}
		}
		s.qmu.Unlock()
	}
	if s.snaps != nil {
		// Store-level lifecycle counters (saves, rejections) live in the
		// store's journal, not in any session; merge them into the global
		// counters so /v1/stats and the Prometheus export see them.
		jc := s.snaps.journal.Counters()
		snap.Global.Add(&jc)
		snap.SnapshotPrograms, snap.SnapshotsPending = s.snaps.gauges()
	}
	if s.epochs != nil {
		snap.ShardPrograms, snap.LiveShards = s.epochs.gauges()
		snap.EpochMerges = s.epochs.merges.Load()
		snap.ShardsMerged = s.epochs.shardsMerged.Load()
	}
	return snap
}

// Close drains the service: new submissions fail with ErrClosed, queued and
// running requests finish normally, and Close returns once every worker has
// exited. Close is idempotent.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
	if s.snaps != nil {
		// Save-on-drain: every worker has exited, so the store holds the
		// final exports; commit whatever is still dirty before returning.
		s.snaps.close()
	}
}

// worker is one pool goroutine: it claims jobs, runs sessions, publishes
// results, and accounts outcomes. A panicking session is contained by
// runJob, so one bad program cannot take the service down. id is the
// worker's stable index — its slot in every program's shard set.
func (s *Service) worker(id int) {
	defer s.wg.Done()
	for j := range s.jobs {
		if !j.state.CompareAndSwap(jobPending, jobRunning) {
			continue // abandoned while queued; submitter accounted it
		}
		mode := j.req.Mode
		var demote, probe bool
		brk := s.breakerFor(j.comp)
		if brk != nil {
			demote, probe = brk.plan(s.cfg.Clock(), mode.Profiled())
			if demote {
				mode = core.ModePlain
				s.ring.Emit(obs.Event{
					Type: obs.EvDemoted,
					X:    obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
					Program: j.comp.Name,
				})
			}
		}
		resp, err := s.runJob(j, mode, demote, id)
		j.resp, j.err = resp, err
		if brk != nil && mode.Profiled() {
			churn := -1.0 // inconclusive: failed runs yield no counters
			if err == nil {
				churn = churnPerK(&resp.Counters)
			}
			if brk.observe(s.cfg.Clock(), churn, demote, probe) && s.epochs != nil {
				// The program demotes to plain dispatch while the breaker is
				// open; merge now so the shards' learning up to the trip is
				// published (and committable) rather than stranded.
				s.epochs.mergeProgram(j.comp.Key)
			}
		}
		lat := time.Since(j.enqueued)
		switch {
		case err == nil:
			s.agg.complete(j.comp.Name, &resp.Counters, lat)
		case isInterrupt(err):
			s.agg.timeout(lat)
		default:
			var pe *panicError
			panicked := errors.As(err, &pe)
			if panicked {
				s.notePanic(j.comp)
			}
			s.agg.fail(lat, panicked)
		}
		close(j.done)
	}
}

// isInterrupt reports whether err is the host-cancellation trap.
func isInterrupt(err error) bool {
	t, ok := vm.AsTrap(err)
	return ok && t.Kind == vm.TrapInterrupted
}

// panicError wraps a recovered session panic.
type panicError struct {
	val any
}

func (e *panicError) Error() string { return fmt.Sprintf("serve: session panic: %v", e.val) }

// runJob executes one session, recovering panics into errors. mode is the
// effective dispatch mode after any breaker demotion; demoted records it in
// the response. workerID selects the worker's shard on the sharded profiling
// path.
func (s *Service) runJob(j *job, mode core.Mode, demoted bool, workerID int) (resp *Response, err error) {
	// sh, once non-nil, is this run's locked shard. The deferred handler is
	// the single release point: a clean (or failed-but-orderly) run releases
	// it, counting toward the program's epoch; a panicking run discards the
	// profiler first, since the dispatch hook may have died mid-update and
	// left the graph unusable — the worker's next run rebuilds the shard from
	// the merged view.
	var sh *workerShard
	var set *shardSet
	defer func() {
		r := recover()
		if sh != nil {
			if r != nil {
				s.epochs.discard(sh)
				sh.mu.Unlock()
			} else {
				s.epochs.release(sh, set)
			}
		}
		if r != nil {
			resp, err = nil, &panicError{val: r}
		}
	}()
	if s.cfg.Injector != nil {
		s.cfg.Injector.BeforeExec(j.req)
	}

	params := profile.DefaultParams()
	if j.req.Threshold != 0 {
		params.Threshold = j.req.Threshold
	}
	if j.req.StartDelay != 0 {
		params.StartDelay = j.req.StartDelay
	}
	if j.req.DecayInterval != 0 {
		params.DecayInterval = j.req.DecayInterval
	}
	maxSteps := j.req.MaxSteps
	if s.cfg.MaxSteps > 0 && (maxSteps == 0 || maxSteps > s.cfg.MaxSteps) {
		maxSteps = s.cfg.MaxSteps
	}

	var out bytes.Buffer
	sopts := core.SessionOptions{
		Mode:      mode,
		Params:    params,
		Config:    s.cfg.TraceCache,
		Out:       &out,
		MaxSteps:  maxSteps,
		Interrupt: &j.interrupt,
		Hints:     j.comp.Hints,
		Facts:     j.comp.Facts,
	}
	if s.cfg.Injector != nil {
		sopts.WrapHook = s.cfg.Injector.WrapDispatch
	}
	if s.ring != nil {
		// Session events flow into the shared ring tagged with the program,
		// so /v1/events can be filtered per program under live traffic.
		sopts.Sink = obs.Tagged{Sink: s.ring, Program: j.comp.Name}
	}
	if s.epochs != nil && mode.Profiled() {
		sh, set = s.epochs.acquire(j.comp, params, workerID)
	}
	if sh != nil {
		// Sharded path: attach the session to this worker's persistent
		// profiler. A fresh shard (first run, or rebuilt after a panic)
		// seeds from the latest merged view — falling back to the warm
		// store's snapshot — so it starts from global knowledge, not cold.
		prof := sh.prof
		if prof == nil {
			p, perr := s.epochs.newShard(sh, set)
			if perr != nil {
				sh.mu.Unlock()
				sh, set = nil, nil
			} else {
				prof = p
				if warm := s.epochs.warmSeed(set); warm != nil && warm.Params == params {
					sopts.Snapshot = warm
				}
			}
		}
		if prof != nil {
			sopts.Profiler = prof
		}
	}
	if sh == nil && s.snaps != nil && mode.Profiled() {
		// Isolated per-request path (sharding disabled, or the request's
		// profiler parameters differ from the shards'): seed the session
		// from the program's stored learned state. Applied only under the
		// exact parameters the state was learned with — a mismatched
		// request simply runs cold.
		if warm := s.snaps.lookup(j.comp.Key, j.comp.Name); warm != nil && warm.Params == params {
			sopts.Snapshot = warm
		}
	}
	sess, err := core.NewSession(j.comp.Prog, j.comp.CFG, sopts)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	if err := sess.Run(); err != nil {
		return nil, err
	}
	if s.cfg.Injector != nil {
		s.cfg.Injector.AfterRun(j.req, sess)
	}
	resp = &Response{
		Program:  j.comp.Name,
		Key:      j.comp.Key,
		Mode:     mode,
		Output:   out.String(),
		Counters: sess.Counters.Snapshot(),
		Metrics:  sess.Metrics(),
		Demoted:  demoted,
		Wall:     time.Since(start),
	}
	if sess.Cache != nil {
		resp.NumTraces = sess.Cache.NumTraces()
		resp.CachedBlocks = sess.Cache.CachedBlocks()
	}
	if sess.Graph != nil {
		resp.BCGNodes = sess.Graph.NumNodes()
	}
	if s.snaps != nil && sess.Graph != nil {
		// Accumulate this run's learning toward the commit threshold. A fully
		// warm, stable run has a zero delta and is skipped outright —
		// steady-state traffic neither re-exports nor re-commits anything.
		if delta := learnedDelta(&resp.Counters); delta > 0 {
			if sh != nil {
				// Sharded runs never export; the writer pulls a merged view
				// at commit time through the coordinator.
				s.snaps.noteDirty(j.comp.Key, j.comp.Name, delta)
			} else {
				s.snaps.update(j.comp.Key, j.comp.Name, sess.ExportSnapshot(j.comp.Key, j.comp.Name), delta)
			}
		}
	}
	return resp, nil
}

// learnedDelta measures how much a run changed the program's learned state:
// organically created nodes (seeded ones restored existing knowledge),
// profiler signals, and trace churn. It is both the "did anything change"
// gate for re-exporting and the coalescing writer's commit currency.
func learnedDelta(ctr *stats.Counters) int64 {
	return (ctr.NodesCreated - ctr.NodesSeededFromSnapshot) +
		ctr.Signals + ctr.TracesBuilt + ctr.TracesRetired
}
