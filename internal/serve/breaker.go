package serve

import (
	"sync"
	"time"

	"repro/internal/obs"
)

// BreakerConfig tunes the per-program churn circuit breaker. The breaker
// watches the trace construct/retire rate of every completed profiled run;
// a program whose phases change so fast that the cache rebuilds traces
// continuously (a signal storm) gets demoted to plain block dispatch for a
// cool-down — the Dynamo-style bail-out — then probed back to tracing.
type BreakerConfig struct {
	// ChurnPerK is the trace construct+retire events per 1000 block
	// dispatches above which a run counts as churny. 0 disables the
	// breaker entirely.
	ChurnPerK float64
	// TripAfter is the number of consecutive churny runs before the
	// breaker opens (default 3).
	TripAfter int
	// Cooldown is how long the breaker stays open before admitting a
	// half-open probe run (default 30s).
	Cooldown time.Duration
}

func (c *BreakerConfig) fillDefaults() {
	if c.ChurnPerK <= 0 {
		return // disabled
	}
	if c.TripAfter <= 0 {
		c.TripAfter = 3
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 30 * time.Second
	}
}

// BreakerState is a circuit breaker's position.
type BreakerState uint8

const (
	// BreakerClosed: the program traces normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: rebuild churn tripped the breaker; profiled runs are
	// demoted to plain block dispatch until the cool-down expires.
	BreakerOpen
	// BreakerHalfOpen: the cool-down expired; one probe run executes with
	// tracing while the rest stay demoted. A calm probe closes the
	// breaker, a churny one re-opens it.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "invalid"
}

// breaker is the per-registry-entry state machine. All methods are safe for
// concurrent workers.
type breaker struct {
	cfg  BreakerConfig
	name string    // Compiled.Name, for per-program reporting
	sink *obs.Ring // service event ring; nil drops the events

	mu         sync.Mutex
	state      BreakerState
	churnyRuns int       // consecutive churny runs while closed
	openedAt   time.Time // when the breaker last opened
	probing    bool      // a half-open probe run is in flight

	trips   int64 // closed/half-open -> open transitions
	demoted int64 // runs short-circuited to plain dispatch
	probes  int64 // half-open probe runs admitted
}

// setState moves the state machine and emits the transition as an
// observability event. Callers hold b.mu.
func (b *breaker) setState(to BreakerState) {
	if b.state == to {
		return
	}
	b.sink.Emit(obs.Event{
		Type: obs.EvBreaker,
		Old:  uint8(b.state), New: uint8(to),
		X: obs.NoID, Y: obs.NoID, TraceID: obs.NoID,
		Program: b.name,
	})
	b.state = to
}

// plan decides how the next run of this program executes. profiled says the
// request asked for a trace-constructing mode; unprofiled runs carry no
// churn information and pass through untouched. It returns demote (run in
// plain block-dispatch mode) and probe (this run is the half-open probe).
func (b *breaker) plan(now time.Time, profiled bool) (demote, probe bool) {
	if !profiled {
		return false, false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return false, false
	case BreakerOpen:
		if now.Sub(b.openedAt) < b.cfg.Cooldown {
			b.demoted++
			return true, false
		}
		b.setState(BreakerHalfOpen)
		b.probing = true
		b.probes++
		return false, true
	case BreakerHalfOpen:
		if b.probing {
			b.demoted++
			return true, false
		}
		b.probing = true
		b.probes++
		return false, true
	}
	return false, false
}

// observe feeds one finished run back. churnPerK < 0 means the run produced
// no usable churn measurement (it failed or was demoted); such runs never
// close the breaker. It reports whether this observation tripped the breaker
// open — the caller uses a trip as an epoch boundary for the program's
// profiler shards.
func (b *breaker) observe(now time.Time, churnPerK float64, demoted, probe bool) (tripped bool) {
	if demoted {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if probe {
		b.probing = false
		if churnPerK >= 0 && churnPerK <= b.cfg.ChurnPerK {
			b.setState(BreakerClosed)
			b.churnyRuns = 0
			return false
		}
		// Still churny (or inconclusive): back to open for another
		// cool-down. Only a measured churny probe counts as a trip.
		b.setState(BreakerOpen)
		b.openedAt = now
		if churnPerK >= 0 {
			b.trips++
			return true
		}
		return false
	}
	if b.state != BreakerClosed || churnPerK < 0 {
		return false // stale observation from a run planned before the trip
	}
	if churnPerK > b.cfg.ChurnPerK {
		b.churnyRuns++
		if b.churnyRuns >= b.cfg.TripAfter {
			b.setState(BreakerOpen)
			b.openedAt = now
			b.churnyRuns = 0
			b.trips++
			return true
		}
		return false
	}
	b.churnyRuns = 0
	return false
}

// snapshotInto accumulates this breaker's counters and state into the
// service snapshot.
func (b *breaker) snapshotInto(s *Snapshot, states map[string]string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	s.BreakerTrips += b.trips
	s.BreakerDemoted += b.demoted
	s.BreakerProbes += b.probes
	switch b.state {
	case BreakerOpen:
		s.OpenBreakers++
	case BreakerHalfOpen:
		s.HalfOpenBreakers++
	}
	states[b.name] = b.state.String()
}
