package serve

import (
	"sort"

	"repro/internal/trace"
)

// TraceRecord is one live trace in a program's inventory, aggregated across
// the program's worker shards by canonical block-sequence key (the same
// sequence learned independently by two shards is one logical trace).
type TraceRecord struct {
	// Key is the canonical block-sequence key; Entry is the entry block ID
	// and Blocks the trace length in blocks.
	Key    string
	Entry  int
	Blocks int
	// Tier is the highest execution tier across shards (2 = a compiled
	// superinstruction form is installed); Shards counts the shards
	// currently holding the sequence.
	Tier   int
	Shards int
	// Dispatch accounting, summed over shards.
	Entered   int64
	Completed int64
	// Guard split: ProvenGuards were proven dead by static value flow and
	// cost nothing at tier 2; EstimatedGuards remain live side-exit checks.
	ProvenGuards    int
	EstimatedGuards int
	// Tier-2 accounting, summed over shards.
	CompiledEntered    int64
	CompiledGuardExits int64
	// Barred reports that at least one shard pinned the trace at tier 1
	// (compilation bailed, or a guard-exit storm forced a tier-down).
	Barred bool
}

// ProgramTraces is one program's live trace inventory.
type ProgramTraces struct {
	Program string
	Traces  []TraceRecord
}

// TraceInventory reports every live trace of every program under sharded
// profiling, aggregated per program across worker shards (GET /v1/traces).
// Shards locked by an in-flight run are skipped, exactly like an epoch
// merge: the inventory is a best-effort observability read, never a stall.
// Nil when sharding is disabled — isolated per-request sessions discard
// their caches at completion, so there is no retained inventory to report.
func (s *Service) TraceInventory() []ProgramTraces {
	if s.epochs == nil {
		return nil
	}
	return s.epochs.traceInventory()
}

func (ec *epochCoordinator) traceInventory() []ProgramTraces {
	ec.mu.Lock()
	sets := make([]*shardSet, 0, len(ec.sets))
	for _, set := range ec.sets {
		sets = append(sets, set)
	}
	ec.mu.Unlock()
	sort.Slice(sets, func(i, j int) bool { return sets[i].name < sets[j].name })

	out := make([]ProgramTraces, 0, len(sets))
	for _, set := range sets {
		byKey := make(map[string]*TraceRecord)
		for _, sh := range set.shards {
			if !sh.mu.TryLock() {
				continue
			}
			if sh.prof != nil {
				for _, t := range sh.prof.Cache.Traces() {
					key := trace.Key(t.Blocks)
					r := byKey[key]
					if r == nil {
						r = &TraceRecord{
							Key:             key,
							Entry:           int(t.Entry()),
							Blocks:          t.Len(),
							ProvenGuards:    t.ProvenGuards(),
							EstimatedGuards: t.Len() - 1 - t.ProvenGuards(),
						}
						byKey[key] = r
					}
					r.Shards++
					r.Entered += t.Entered
					r.Completed += t.Completed
					r.CompiledEntered += t.CompiledEntered
					r.CompiledGuardExits += t.CompiledGuardExits
					if tier := t.Tier(); tier > r.Tier {
						r.Tier = tier
					}
					if t.CompileBarred {
						r.Barred = true
					}
				}
			}
			sh.mu.Unlock()
		}
		if len(byKey) == 0 {
			continue
		}
		recs := make([]TraceRecord, 0, len(byKey))
		for _, r := range byKey {
			recs = append(recs, *r)
		}
		sort.Slice(recs, func(i, j int) bool {
			if recs[i].Entered != recs[j].Entered {
				return recs[i].Entered > recs[j].Entered
			}
			return recs[i].Key < recs[j].Key
		})
		out = append(out, ProgramTraces{Program: set.name, Traces: recs})
	}
	return out
}
