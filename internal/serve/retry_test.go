package serve

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Base: 2 * time.Millisecond, Max: 16 * time.Millisecond, Factor: 2, Jitter: -1}
	want := []time.Duration{2, 4, 8, 16, 16, 16}
	for i, w := range want {
		if got := b.Delay(i); got != w*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	a := Backoff{Seed: 42}
	b := Backoff{Seed: 42}
	c := Backoff{Seed: 43}
	different := false
	for i := 0; i < 4; i++ {
		if a.Delay(i) != b.Delay(i) {
			t.Fatalf("same seed diverged at retry %d", i)
		}
		if a.Delay(i) != c.Delay(i) {
			different = true
		}
		lo, hi := 3*a.norm().Delay(i)/4, 5*a.norm().Delay(i)/4 // Jitter 0.5 ⇒ ±25%
		if d := a.Delay(i); d < lo/2 || d > 2*hi {
			t.Errorf("Delay(%d) = %v implausibly far from schedule", i, d)
		}
	}
	if !different {
		t.Error("different seeds produced identical schedules")
	}
}

func TestRetryRecoversFromBackpressure(t *testing.T) {
	rejections := 2
	calls := 0
	run := Runner(func(ctx context.Context, req Request) (*Response, error) {
		calls++
		if calls <= rejections {
			return nil, ErrQueueFull
		}
		return &Response{Program: "ok"}, nil
	})
	b := Backoff{Attempts: 5, Base: time.Microsecond, Max: 10 * time.Microsecond}
	resp, retries, err := b.Retry(context.Background(), run, Request{})
	if err != nil || resp == nil || resp.Program != "ok" {
		t.Fatalf("Retry = %v, %v", resp, err)
	}
	if retries != rejections || calls != rejections+1 {
		t.Errorf("retries=%d calls=%d, want %d/%d", retries, calls, rejections, rejections+1)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	calls := 0
	run := Runner(func(ctx context.Context, req Request) (*Response, error) {
		calls++
		return nil, ErrQueueFull
	})
	b := Backoff{Attempts: 3, Base: time.Microsecond, Max: 10 * time.Microsecond}
	_, retries, err := b.Retry(context.Background(), run, Request{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if calls != 3 || retries != 2 {
		t.Errorf("calls=%d retries=%d, want 3/2", calls, retries)
	}
}

func TestRetryPassesThroughOtherErrors(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	run := Runner(func(ctx context.Context, req Request) (*Response, error) {
		calls++
		return nil, boom
	})
	_, retries, err := b0().Retry(context.Background(), run, Request{})
	if !errors.Is(err, boom) || calls != 1 || retries != 0 {
		t.Errorf("err=%v calls=%d retries=%d, want boom/1/0", err, calls, retries)
	}
}

func TestRetryHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	run := Runner(func(ctx context.Context, req Request) (*Response, error) {
		cancel() // expire during the first backoff pause
		return nil, ErrQueueFull
	})
	b := Backoff{Attempts: 5, Base: time.Hour} // would hang without ctx
	start := time.Now()
	_, _, err := b.Retry(ctx, run, Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("Retry slept through a cancelled context")
	}
}

func b0() Backoff { return Backoff{Base: time.Microsecond, Max: 10 * time.Microsecond} }
