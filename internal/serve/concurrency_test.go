package serve

import (
	"bytes"
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/workload"
)

// serialRun executes one workload in a fresh single-threaded session — the
// ground truth the concurrent service must reproduce bit-for-bit.
func serialRun(t *testing.T, name string, mode core.Mode) (string, stats.Counters) {
	t.Helper()
	w, err := workload.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	prog, pcfg, err := w.Compile()
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	// The service attaches the registration-time static hints to every run;
	// the serial ground truth must match its configuration exactly.
	sess, err := core.NewSession(prog, pcfg, core.SessionOptions{
		Mode: mode, Out: &out, Hints: analysis.ComputeHints(pcfg),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.Run(); err != nil {
		t.Fatal(err)
	}
	return out.String(), sess.Counters.Snapshot()
}

// TestConcurrentIsolation runs every workload in parallel sessions (two
// requests each, twelve in flight across six programs sharing registry
// entries) and asserts each run's output and counters are identical to a
// serial run, and that the service's aggregated counters equal the exact
// sum of the per-request counters. Sessions must share no mutable state;
// under -race this also proves it mechanically. Sharded profiling is
// disabled (EpochRuns: -1): shards deliberately carry learned state across
// runs, which is exactly what this test's bit-for-bit equality forbids.
func TestConcurrentIsolation(t *testing.T) {
	const perWorkload = 2
	names := workload.Names()

	type truth struct {
		output string
		ctr    stats.Counters
	}
	want := make(map[string]truth, len(names))
	for _, name := range names {
		out, ctr := serialRun(t, name, core.ModeTrace)
		want[name] = truth{output: out, ctr: ctr}
	}

	s := newTestService(t, Config{Workers: 4, QueueDepth: len(names) * perWorkload, EpochRuns: -1})
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		wantAgg stats.Counters
	)
	for _, name := range names {
		for i := 0; i < perWorkload; i++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				resp, err := s.Do(context.Background(), Request{Workload: name, Mode: core.ModeTrace})
				if err != nil {
					t.Errorf("%s: %v", name, err)
					return
				}
				w := want[name]
				if resp.Output != w.output {
					t.Errorf("%s: concurrent output diverged from serial run:\ngot:  %q\nwant: %q", name, resp.Output, w.output)
				}
				if resp.Counters != w.ctr {
					t.Errorf("%s: concurrent counters diverged from serial run:\ngot:  %+v\nwant: %+v", name, resp.Counters, w.ctr)
				}
				mu.Lock()
				wantAgg.Add(&resp.Counters)
				mu.Unlock()
			}(name)
		}
	}
	wg.Wait()

	snap := s.Stats()
	if snap.Global != wantAgg {
		t.Errorf("aggregated counters != sum of per-request counters:\ngot:  %+v\nwant: %+v", snap.Global, wantAgg)
	}
	if snap.Completed != int64(len(names)*perWorkload) {
		t.Errorf("completed = %d, want %d", snap.Completed, len(names)*perWorkload)
	}
	for _, name := range names {
		ps := snap.PerProgram[name]
		if ps.Runs != perWorkload {
			t.Errorf("%s: runs = %d, want %d", name, ps.Runs, perWorkload)
			continue
		}
		var sum stats.Counters
		serial := want[name].ctr
		for i := 0; i < perWorkload; i++ {
			sum.Add(&serial)
		}
		if ps.Counters != sum {
			t.Errorf("%s: per-program aggregate mismatch:\ngot:  %+v\nwant: %+v", name, ps.Counters, sum)
		}
	}
}

// TestParallelThroughput demonstrates multi-core scaling: the same request
// mix through a 4-worker pool must finish materially faster than through a
// 1-worker pool. Skipped on small machines where there is nothing to scale
// onto, and under -short.
func TestParallelThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping throughput measurement in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need >= 4 CPUs to demonstrate scaling, have %d", runtime.NumCPU())
	}
	mix := LoadGenConfig{
		Concurrency: 4,
		Requests:    12,
		Workloads:   []string{"soot", "raytrace", "javac"},
		Mode:        core.ModeTrace,
	}
	measure := func(workers int) LoadGenResult {
		s := New(Config{Workers: workers, QueueDepth: mix.Requests})
		defer s.Close()
		// Pre-warm the registry so compilation is excluded from both sides.
		for _, w := range mix.Workloads {
			if _, err := s.Registry().Workload(w); err != nil {
				t.Fatal(err)
			}
		}
		res := RunLoadGen(context.Background(), mix, s.Do)
		if res.Completed != int64(mix.Requests) {
			t.Fatalf("%d workers: completed %d/%d, errs=%v", workers, res.Completed, mix.Requests, res.Errors)
		}
		return res
	}
	serial := measure(1)
	parallel := measure(4)
	speedup := serial.Wall.Seconds() / parallel.Wall.Seconds()
	t.Logf("serial(1 worker) %v, parallel(4 workers) %v, speedup %.2fx, throughput %.1f -> %.1f req/s",
		serial.Wall, parallel.Wall, speedup, serial.Throughput, parallel.Throughput)
	if speedup < 1.5 {
		t.Errorf("4-worker speedup %.2fx < 1.5x; sessions are not executing concurrently", speedup)
	}
}

// TestRegistrySharding exercises all shards concurrently: many distinct
// ad-hoc programs compiled and run at once, each exactly once.
func TestRegistrySharding(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 64})
	const n = 32
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			src := fmt.Sprintf(`class Main { static void main() { Sys.printlnInt(%d); } }`, i)
			resp, err := s.Do(context.Background(), Request{Source: src})
			if err != nil {
				t.Errorf("program %d: %v", i, err)
				return
			}
			if want := fmt.Sprintf("%d\n", i); resp.Output != want {
				t.Errorf("program %d printed %q", i, resp.Output)
			}
		}(i)
	}
	wg.Wait()
	if snap := s.Stats(); snap.Programs != n {
		t.Errorf("registry holds %d programs, want %d", snap.Programs, n)
	}
}
