package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// calmSource runs a long steady loop: thousands of block dispatches and at
// most a handful of trace builds, so its natural churn sits far below any
// sensible breaker threshold.
const calmSource = `class Main { static void main() { int i = 0; int s = 0; while (i < 2000) { s = s + i; i = i + 1; } Sys.printlnInt(s); } }`

const calmOutput = "1999000\n"

// fakeClock is a manually advanced time source for breaker cool-downs.
type fakeClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func mustDo(t *testing.T, s *Service, req Request) *Response {
	t.Helper()
	resp, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return resp
}

// breakerState returns the single test program's reported breaker state.
func breakerState(s *Service) string {
	for _, ps := range s.Stats().PerProgram {
		if ps.Breaker != "" {
			return ps.Breaker
		}
	}
	return ""
}

// TestBreakerLifecycle drives one program's breaker through every
// transition — closed, open (trip under churn), half-open (probe after the
// cool-down), closed again (calm probe), and re-open (churny probe) — with
// concurrent sessions in flight at the trip and probe points.
func TestBreakerLifecycle(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1_000_000, 0)}
	var storm, blockProbe atomic.Bool
	probeStarted := make(chan struct{})
	probeRelease := make(chan struct{})
	s := newTestService(t, Config{
		Workers: 4,
		Breaker: BreakerConfig{ChurnPerK: 50, TripAfter: 3, Cooldown: time.Minute},
		Clock:   clk.Now,
		Injector: InjectorFuncs{
			Exec: func(Request) {
				if blockProbe.CompareAndSwap(true, false) {
					probeStarted <- struct{}{}
					<-probeRelease
				}
			},
			// The storm models a program whose phase behaviour churns the
			// cache: it inflates the run's construct/retire counters after
			// the run, before the breaker reads them.
			After: func(_ Request, sess *core.Session) {
				if storm.Load() && sess.Graph != nil {
					sess.Counters.TracesBuilt += 10000
					sess.Counters.TracesRetired += 10000
				}
			},
		},
	})
	req := Request{Source: calmSource, Mode: core.ModeProfile}

	// Closed: calm runs trace normally.
	for i := 0; i < 3; i++ {
		if resp := mustDo(t, s, req); resp.Demoted {
			t.Fatal("calm run demoted while closed")
		}
	}
	if st := breakerState(s); st != "closed" {
		t.Fatalf("state after calm runs = %q, want closed", st)
	}

	// Storm: concurrent churny runs trip the breaker exactly once.
	storm.Store(true)
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _ = s.Do(context.Background(), req)
		}()
	}
	wg.Wait()
	snap := s.Stats()
	if snap.BreakerTrips != 1 || snap.OpenBreakers != 1 {
		t.Fatalf("after storm: trips=%d open=%d, want 1/1", snap.BreakerTrips, snap.OpenBreakers)
	}

	// Open: profiled requests demote to plain dispatch, results stay
	// correct, and the cool-down holds even after the storm ends.
	storm.Store(false)
	resp := mustDo(t, s, req)
	if !resp.Demoted || resp.Mode != core.ModePlain {
		t.Fatalf("open breaker: demoted=%v mode=%v, want plain demotion", resp.Demoted, resp.Mode)
	}
	if resp.Output != calmOutput {
		t.Fatalf("demoted output = %q, want %q", resp.Output, calmOutput)
	}
	if snap := s.Stats(); snap.BreakerDemoted == 0 {
		t.Error("demotions not counted")
	}

	// Cool-down expiry: the next profiled run becomes the half-open probe;
	// concurrent runs while it is in flight stay demoted.
	clk.Advance(2 * time.Minute)
	blockProbe.Store(true)
	probeDone := make(chan *Response, 1)
	go func() {
		r, _ := s.Do(context.Background(), req)
		probeDone <- r
	}()
	<-probeStarted
	if snap := s.Stats(); snap.HalfOpenBreakers != 1 || snap.BreakerProbes != 1 {
		t.Errorf("mid-probe: halfOpen=%d probes=%d, want 1/1", snap.HalfOpenBreakers, snap.BreakerProbes)
	}
	if r := mustDo(t, s, req); !r.Demoted {
		t.Error("concurrent run during probe was not demoted")
	}
	close(probeRelease)
	probe := <-probeDone
	if probe == nil || probe.Demoted {
		t.Fatalf("probe run demoted or failed: %+v", probe)
	}

	// Calm probe: breaker closes; tracing resumes.
	if st := breakerState(s); st != "closed" {
		t.Fatalf("state after calm probe = %q, want closed", st)
	}
	if resp := mustDo(t, s, req); resp.Demoted {
		t.Error("run demoted after breaker closed")
	}

	// Churny probe: trips again, then re-opens straight from half-open.
	storm.Store(true)
	for i := 0; i < 3; i++ {
		mustDo(t, s, req)
	}
	clk.Advance(2 * time.Minute)
	if resp := mustDo(t, s, req); resp.Demoted {
		t.Fatal("probe run was demoted")
	}
	snap = s.Stats()
	if snap.OpenBreakers != 1 {
		t.Error("churny probe did not re-open the breaker")
	}
	if snap.BreakerTrips != 3 {
		t.Errorf("trips = %d, want 3 (storm, re-trip, churny probe)", snap.BreakerTrips)
	}
}

// TestBreakerDisabled checks the zero-config path: no breaker state is
// created and nothing demotes, whatever the churn.
func TestBreakerDisabled(t *testing.T) {
	var storm atomic.Bool
	storm.Store(true)
	s := newTestService(t, Config{
		Workers: 2,
		Injector: InjectorFuncs{
			After: func(_ Request, sess *core.Session) {
				if sess.Graph != nil {
					sess.Counters.TracesBuilt += 10000
				}
			},
		},
	})
	req := Request{Source: calmSource, Mode: core.ModeProfile}
	for i := 0; i < 5; i++ {
		if resp := mustDo(t, s, req); resp.Demoted {
			t.Fatal("demotion with the breaker disabled")
		}
	}
	snap := s.Stats()
	if snap.BreakerTrips != 0 || snap.OpenBreakers != 0 {
		t.Errorf("breaker activity while disabled: %+v", snap)
	}
	if st := breakerState(s); st != "" {
		t.Errorf("program reports breaker state %q while disabled", st)
	}
}
