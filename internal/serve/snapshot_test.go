package serve

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/profile"
	"repro/internal/snapshot"
)

// loopSource is hot enough to classify nodes and build traces in one run.
const loopSource = `class Main { static void main() { int i = 0; int s = 0; while (i < 20000) { s = s + i; i = i + 1; } Sys.printlnInt(s); } }`

func runLoop(t *testing.T, s *Service, req Request) *Response {
	t.Helper()
	if req.Source == "" {
		req.Source = loopSource
	}
	if req.Mode == 0 {
		req.Mode = core.ModeTrace
	}
	resp, err := s.Do(context.Background(), req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	return resp
}

// TestWarmStartAcrossRuns: the second run of the same program on the same
// worker reuses the worker's live profiler shard — it relearns nothing, and
// no snapshot round-trip is involved at all (the export/seed cycle of the
// isolated path is gone from steady-state traffic).
func TestWarmStartAcrossRuns(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, SnapshotDir: t.TempDir()})

	cold := runLoop(t, s, Request{})
	if cold.Counters.NodesSeededFromSnapshot != 0 {
		t.Error("first run claims to have been seeded")
	}
	if cold.Counters.TracesBuilt == 0 {
		t.Fatal("cold run built no traces; warm start has nothing to prove")
	}

	warm := runLoop(t, s, Request{})
	if warm.Counters.NodesCreated != 0 {
		t.Errorf("shard reuse relearned %d nodes, want 0", warm.Counters.NodesCreated)
	}
	if warm.Counters.SnapshotsLoaded != 0 {
		t.Errorf("SnapshotsLoaded = %d, want 0: warm state lives in the shard, not a snapshot",
			warm.Counters.SnapshotsLoaded)
	}
	if warm.BCGNodes == 0 {
		t.Error("second run sees an empty graph; the shard did not carry over")
	}
	if warm.Output != cold.Output {
		t.Errorf("warm output %q differs from cold %q", warm.Output, cold.Output)
	}

	stats := s.Stats()
	if stats.ShardPrograms != 1 || stats.LiveShards != 1 {
		t.Errorf("shard gauges = (%d programs, %d shards), want (1, 1)",
			stats.ShardPrograms, stats.LiveShards)
	}
}

// TestWarmStartAcrossRunsIsolated: with sharding disabled the pre-shard warm
// path still works — the second run seeds from the first run's in-memory
// export.
func TestWarmStartAcrossRunsIsolated(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, SnapshotDir: t.TempDir(), EpochRuns: -1})

	cold := runLoop(t, s, Request{})
	if cold.Counters.TracesBuilt == 0 {
		t.Fatal("cold run built no traces; warm start has nothing to prove")
	}

	warm := runLoop(t, s, Request{})
	if warm.Counters.SnapshotsLoaded != 1 {
		t.Errorf("SnapshotsLoaded = %d, want 1", warm.Counters.SnapshotsLoaded)
	}
	if warm.Counters.NodesSeededFromSnapshot == 0 {
		t.Error("second run was not seeded")
	}
	if warm.Output != cold.Output {
		t.Errorf("warm output %q differs from cold %q", warm.Output, cold.Output)
	}

	stats := s.Stats()
	if stats.SnapshotPrograms != 1 {
		t.Errorf("SnapshotPrograms = %d, want 1", stats.SnapshotPrograms)
	}
	if stats.Global.SnapshotsLoaded != 1 {
		t.Errorf("global SnapshotsLoaded = %d, want 1", stats.Global.SnapshotsLoaded)
	}
}

// TestWarmStartAcrossServices: learned state survives a restart through the
// snapshot directory — service one drains and commits, service two probes
// the directory and seeds.
func TestWarmStartAcrossServices(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, SnapshotDir: dir})
	key := runLoop(t, s1, Request{}).Key
	s1.Close()

	files, err := filepath.Glob(filepath.Join(dir, "*"+snapExt))
	if err != nil || len(files) != 1 {
		t.Fatalf("after drain: snapshot files = %v (err %v), want exactly one", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	snap, err := snapshot.Decode(data)
	if err != nil {
		t.Fatalf("committed file does not decode: %v", err)
	}
	if err := snap.VerifyKey(key); err != nil {
		t.Errorf("committed snapshot keyed to the wrong program: %v", err)
	}

	s2 := newTestService(t, Config{Workers: 1, SnapshotDir: dir})
	warm := runLoop(t, s2, Request{})
	if warm.Counters.SnapshotsLoaded != 1 || warm.Counters.NodesSeededFromSnapshot == 0 {
		t.Errorf("restarted service did not warm start: loaded=%d seeded=%d",
			warm.Counters.SnapshotsLoaded, warm.Counters.NodesSeededFromSnapshot)
	}
	if s2.Stats().Global.SnapshotsSaved != 0 {
		// s2 merges its own journal only; s1's saves belong to s1.
		t.Log("note: s2 journal nonzero (coalescing writer committed during test)")
	}
}

// TestParamsMismatchRunsCold: a request under different profiler parameters
// must not seed from state learned under other ones — it silently runs cold.
func TestParamsMismatchRunsCold(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, SnapshotDir: t.TempDir()})
	runLoop(t, s, Request{})
	warm := runLoop(t, s, Request{Threshold: 0.99})
	if warm.Counters.SnapshotsLoaded != 0 || warm.Counters.NodesSeededFromSnapshot != 0 {
		t.Errorf("mismatched params still seeded: loaded=%d seeded=%d",
			warm.Counters.SnapshotsLoaded, warm.Counters.NodesSeededFromSnapshot)
	}
}

// TestCoalescingCommit: crossing the net threshold wakes the writer without
// waiting for the interval tick.
func TestCoalescingCommit(t *testing.T) {
	dir := t.TempDir()
	s := newTestService(t, Config{
		Workers: 1, SnapshotDir: dir,
		SnapshotInterval: time.Hour, // interval commits effectively disabled
		SnapshotNet:      1,         // every run's delta crosses the threshold
	})
	runLoop(t, s, Request{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		files, _ := filepath.Glob(filepath.Join(dir, "*"+snapExt))
		if len(files) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("net-threshold crossing never committed a snapshot")
		}
		time.Sleep(10 * time.Millisecond)
	}
	if saved := s.Stats().Global.SnapshotsSaved; saved == 0 {
		t.Error("journal counted no saves")
	}
}

// TestInstallAndFetchSnapshot covers the PUT/GET path at the service level:
// install adopts a snapshot as warm state, fetch returns it, and garbage is
// rejected and counted.
func TestInstallAndFetchSnapshot(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, SnapshotDir: t.TempDir()})

	want := &snapshot.Snapshot{
		ProgramKey: "abcdef0123456789",
		Program:    "external",
		Params:     profile.DefaultParams(),
	}
	got, err := s.InstallSnapshot(snapshot.Encode(want))
	if err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if got.ProgramKey != want.ProgramKey {
		t.Errorf("installed key %q", got.ProgramKey)
	}
	data, ok := s.SnapshotBytes(want.ProgramKey)
	if !ok {
		t.Fatal("installed snapshot not fetchable")
	}
	back, err := snapshot.Decode(data)
	if err != nil || back.ProgramKey != want.ProgramKey {
		t.Errorf("fetched snapshot: %+v, %v", back, err)
	}

	if _, err := s.InstallSnapshot([]byte("garbage")); err == nil {
		t.Fatal("garbage accepted")
	}
	if rej := s.Stats().Global.SnapshotsRejected; rej == 0 {
		t.Error("rejection not counted")
	}

	// A syntactically valid snapshot with a path-splicing key is refused.
	evil := &snapshot.Snapshot{ProgramKey: "../escape", Params: profile.DefaultParams()}
	if _, err := s.InstallSnapshot(snapshot.Encode(evil)); err == nil {
		t.Fatal("path-splicing key accepted")
	}
}

// TestStartupScrubQuarantinesCorruptSnapshot: a bit-flipped .tsnap in the
// snapshot directory is moved to a .corrupt sidecar at service construction,
// counted, and the service stays fully functional — the poisoned program
// simply runs cold while an intact neighbor still warm-starts.
func TestStartupScrubQuarantinesCorruptSnapshot(t *testing.T) {
	dir := t.TempDir()

	s1 := New(Config{Workers: 1, SnapshotDir: dir})
	key := runLoop(t, s1, Request{}).Key
	s1.Close()

	victim := filepath.Join(dir, key+snapExt)
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x04
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newTestService(t, Config{Workers: 1, SnapshotDir: dir})
	if q := s2.Stats().Global.SnapshotsQuarantined; q != 1 {
		t.Fatalf("SnapshotsQuarantined = %d, want 1", q)
	}
	if _, err := os.Stat(victim + snapshot.CorruptExt); err != nil {
		t.Errorf("no .corrupt sidecar: %v", err)
	}
	if _, err := os.Stat(victim); !os.IsNotExist(err) {
		t.Error("corrupt file still visible to loaders")
	}

	// The service is healthy: the program runs (cold) and learns again.
	resp := runLoop(t, s2, Request{})
	if resp.Counters.SnapshotsLoaded != 0 || resp.Counters.NodesSeededFromSnapshot != 0 {
		t.Errorf("run seeded from a quarantined snapshot: loaded=%d seeded=%d",
			resp.Counters.SnapshotsLoaded, resp.Counters.NodesSeededFromSnapshot)
	}
	if resp.Counters.TracesBuilt == 0 {
		t.Error("post-quarantine run learned nothing")
	}
}

// TestSnapshotDisabled: without a snapshot dir the service reports the
// feature off and runs stay cold.
func TestSnapshotDisabled(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	if s.SnapshotEnabled() {
		t.Error("SnapshotEnabled with no dir")
	}
	if _, ok := s.SnapshotBytes("anything"); ok {
		t.Error("SnapshotBytes returned data with persistence disabled")
	}
	runLoop(t, s, Request{})
	warm := runLoop(t, s, Request{})
	if warm.Counters.SnapshotsLoaded != 0 {
		t.Error("disabled store still seeded a session")
	}
}
